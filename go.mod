module dwatch

go 1.22
