# Standard verification gate: `make check` is what CI and pre-commit
# should run. `make race` repeats the test suite under the race
# detector — mandatory for changes touching internal/pipeline or
# internal/llrp.

GO ?= go

.PHONY: all build vet test race bench bench-figures check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Hot-path micro-benchmarks with fixed iteration counts so successive
# runs are benchstat-comparable; output lands in BENCH_hotpath.json for
# before/after diffing in perf PRs.
HOTPATH_BENCH = BenchmarkMusicSpectrum|BenchmarkBeamPower|BenchmarkLocalizeGrid|BenchmarkPipelineThroughput
bench:
	$(GO) test -run '^$$' -bench '$(HOTPATH_BENCH)' -benchtime 100x -count 3 -benchmem . | tee BENCH_hotpath.json

# The figure benchmarks run one iteration each; they reproduce the
# paper's evaluation, not machine performance.
bench-figures:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem .

check: vet build test race

clean:
	$(GO) clean ./...
