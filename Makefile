# Standard verification gate: `make check` is what CI and pre-commit
# should run. `make race` repeats the test suite under the race
# detector — mandatory for changes touching internal/pipeline or
# internal/llrp.

GO ?= go

.PHONY: all build vet test race bench check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The figure benchmarks run one iteration each; the pipeline benchmark
# is the scaling baseline for perf work.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem .

check: vet build test race

clean:
	$(GO) clean ./...
