# Standard verification gate: `make check` is what CI and pre-commit
# should run. `make race` repeats the test suite under the race
# detector — mandatory for changes touching internal/pipeline or
# internal/llrp.

GO ?= go

.PHONY: all build fmt vet test race chaos bench bench-smoke bench-figures check serve-smoke replay-smoke replay-ab fuzz-wal clean

all: check

build:
	$(GO) build ./...

# gofmt is enforced, not advisory: fail loudly with the offending files.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# -short here skips the chaos e2e, which gets its own race-enabled
# target below — no point running the slowest test twice per check.
race:
	$(GO) test -race -short ./...

# The fault-tolerance gate: kill and restart a reader mid-run over real
# TCP with injected link faults, under the race detector. Degraded
# fixes must flow during the outage and post-recovery fixes must be
# bit-identical to a fault-free run.
chaos:
	$(GO) test -race -run TestChaosEndToEnd ./internal/session/

# Hot-path micro-benchmarks with pinned methodology: fixed iteration
# counts (-benchtime 100x, never time-based) and -count 3 repeats, so
# successive runs are benchstat-comparable and min-of-N is meaningful —
# first iterations on a shared box are wildly noisy (WAL append has
# swung 8 µs ↔ 640 µs run to run), so compare the per-metric min (or
# max, for throughput metrics); the spread is the noise bound.
# dwatch-benchjson echoes the live stream and then writes
# BENCH_hotpath.json as structured JSON (per-benchmark metric
# min/max/mean + raw text embedded) so the perf trajectory is
# machine-diffable across PRs. BenchmarkWALAppend rides along because
# WAL append sits on the ingest hot path when -wal-dir is set — a
# regression there throttles every accepted report.
HOTPATH_BENCH = BenchmarkMusicSpectrum|BenchmarkPMusicSpectrum|BenchmarkBeamPower|BenchmarkLocalizeGrid|BenchmarkPipelineThroughput|BenchmarkWALAppend
bench:
	$(GO) test -run '^$$' -bench '$(HOTPATH_BENCH)' -benchtime 100x -count 3 -benchmem . ./internal/wal/ | $(GO) run ./cmd/dwatch-benchjson -o BENCH_hotpath.json

# CI's perf canary: one short fixed-count pass over the spectrum and
# pipeline benches. Proves the perf path compiles and runs — no timing
# gate, Actions boxes are too noisy for that.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkPMusicSpectrum|BenchmarkMusicSpectrum|BenchmarkPipelineThroughput' -benchtime 100x -benchmem .

# The figure benchmarks run one iteration each; they reproduce the
# paper's evaluation, not machine performance.
bench-figures:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem .

check: fmt vet build test race chaos

# Boots dwatchd -simulate with the observability plane and curls the
# endpoints a monitoring stack would: liveness, metrics, live stats.
serve-smoke:
	./scripts/serve-smoke.sh

# The durability gate at the binary level: record a simulated run into
# a WAL, kill -9 dwatchd mid-stream, restart and assert recovery via
# /api/v1/wal, then replay the WAL unthrottled twice and assert the fix
# parity hashes agree.
replay-smoke:
	./scripts/replay-smoke.sh

# Replay-driven A/B: one WAL capture through both eigensolvers and both
# 1-shard and N-shard fusion. Shard count must not move the parity hash
# (asserted); the jacobi/qr pair reports hashes and latency digests for
# eyeballing the documented tolerance.
replay-ab:
	./scripts/replay-ab.sh

# Throw malformed bytes at the WAL segment scanner; it must stop with a
# damage report, never panic. Run longer locally with FUZZTIME=5m.
FUZZTIME ?= 20s
fuzz-wal:
	$(GO) test -run '^$$' -fuzz FuzzSegmentScanner -fuzztime $(FUZZTIME) ./internal/wal/

clean:
	$(GO) clean ./...
