# Standard verification gate: `make check` is what CI and pre-commit
# should run. `make race` repeats the test suite under the race
# detector — mandatory for changes touching internal/pipeline or
# internal/llrp.

GO ?= go

.PHONY: all build fmt vet test race chaos bench bench-figures check serve-smoke replay-smoke fuzz-wal clean

all: check

build:
	$(GO) build ./...

# gofmt is enforced, not advisory: fail loudly with the offending files.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# -short here skips the chaos e2e, which gets its own race-enabled
# target below — no point running the slowest test twice per check.
race:
	$(GO) test -race -short ./...

# The fault-tolerance gate: kill and restart a reader mid-run over real
# TCP with injected link faults, under the race detector. Degraded
# fixes must flow during the outage and post-recovery fixes must be
# bit-identical to a fault-free run.
chaos:
	$(GO) test -race -run TestChaosEndToEnd ./internal/session/

# Hot-path micro-benchmarks with fixed iteration counts so successive
# runs are benchstat-comparable; output lands in BENCH_hotpath.json for
# before/after diffing in perf PRs. BenchmarkWALAppend rides along
# because WAL append sits on the ingest hot path when -wal-dir is set —
# a regression there throttles every accepted report.
HOTPATH_BENCH = BenchmarkMusicSpectrum|BenchmarkBeamPower|BenchmarkLocalizeGrid|BenchmarkPipelineThroughput|BenchmarkWALAppend
bench:
	$(GO) test -run '^$$' -bench '$(HOTPATH_BENCH)' -benchtime 100x -count 3 -benchmem . ./internal/wal/ | tee BENCH_hotpath.json

# The figure benchmarks run one iteration each; they reproduce the
# paper's evaluation, not machine performance.
bench-figures:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem .

check: fmt vet build test race chaos

# Boots dwatchd -simulate with the observability plane and curls the
# endpoints a monitoring stack would: liveness, metrics, live stats.
serve-smoke:
	./scripts/serve-smoke.sh

# The durability gate at the binary level: record a simulated run into
# a WAL, kill -9 dwatchd mid-stream, restart and assert recovery via
# /api/v1/wal, then replay the WAL unthrottled twice and assert the fix
# parity hashes agree.
replay-smoke:
	./scripts/replay-smoke.sh

# Throw malformed bytes at the WAL segment scanner; it must stop with a
# damage report, never panic. Run longer locally with FUZZTIME=5m.
FUZZTIME ?= 20s
fuzz-wal:
	$(GO) test -run '^$$' -fuzz FuzzSegmentScanner -fuzztime $(FUZZTIME) ./internal/wal/

clean:
	$(GO) clean ./...
