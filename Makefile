# Standard verification gate: `make check` is what CI and pre-commit
# should run. `make race` repeats the test suite under the race
# detector — mandatory for changes touching internal/pipeline or
# internal/llrp.

GO ?= go

.PHONY: all build fmt vet test race chaos bench bench-smoke bench-figures check serve-smoke replay-smoke replay-ab fleet-smoke cluster-smoke corpus perf-gate fuzz-wal clean

all: check

build:
	$(GO) build ./...

# gofmt is enforced, not advisory: fail loudly with the offending files.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# -short here skips the chaos e2e, which gets its own race-enabled
# target below — no point running the slowest test twice per check.
race:
	$(GO) test -race -short ./...

# The fault-tolerance gate: kill and restart a reader mid-run over real
# TCP with injected link faults, under the race detector. Degraded
# fixes must flow during the outage and post-recovery fixes must be
# bit-identical to a fault-free run.
chaos:
	$(GO) test -race -run TestChaosEndToEnd ./internal/session/

# Hot-path micro-benchmarks with pinned methodology: fixed iteration
# counts (-benchtime 100x, never time-based) and -count 3 repeats, so
# successive runs are benchstat-comparable and min-of-N is meaningful —
# first iterations on a shared box are wildly noisy (WAL append has
# swung 8 µs ↔ 640 µs run to run), so compare the per-metric min (or
# max, for throughput metrics); the spread is the noise bound.
# dwatch-benchjson echoes the live stream and then writes
# BENCH_hotpath.json as structured JSON (per-benchmark metric
# min/max/mean + raw text embedded) so the perf trajectory is
# machine-diffable across PRs. BenchmarkWALAppend rides along because
# WAL append sits on the ingest hot path when -wal-dir is set — a
# regression there throttles every accepted report.
# BenchmarkBrokerFanout sweeps API fan-out (100 → 100k subscribers,
# deprecated channel broker vs snapshot+delta hub): publish runs on the
# pipeline's fix callback, so a linear-in-subscribers broker would put
# fleet fan-out on the fusion hot path.
HOTPATH_BENCH = BenchmarkMusicSpectrum|BenchmarkPMusicSpectrum|BenchmarkBeamPower|BenchmarkLocalizeGrid|BenchmarkPipelineThroughput|BenchmarkWALAppend|BenchmarkBrokerFanout
bench:
	$(GO) test -run '^$$' -bench '$(HOTPATH_BENCH)' -benchtime 100x -count 3 -benchmem . ./internal/wal/ ./internal/serve/ | $(GO) run ./cmd/dwatch-benchjson -o BENCH_hotpath.json

# CI's perf canary: one short fixed-count pass over the spectrum and
# pipeline benches. Proves the perf path compiles and runs — no timing
# gate, Actions boxes are too noisy for that.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkPMusicSpectrum|BenchmarkMusicSpectrum|BenchmarkPipelineThroughput' -benchtime 100x -benchmem .

# The figure benchmarks run one iteration each; they reproduce the
# paper's evaluation, not machine performance.
bench-figures:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem .

check: fmt vet build test race chaos fleet-smoke cluster-smoke

# Boots dwatchd -simulate with the observability plane and curls the
# endpoints a monitoring stack would: liveness, metrics, live stats.
serve-smoke:
	./scripts/serve-smoke.sh

# The multi-tenant gate at the binary level: one dwatchd -env-dir
# process fronting the two pinned testdata/fleet deployments, with
# per-env positions/health routes and the /api/v1/envs listing curled
# and asserted. Part of `make check` — fleet mode is load-bearing.
fleet-smoke:
	./scripts/fleet-smoke.sh

# The cluster-plane gate at the binary level: a dwatch-gateway plus two
# dwatchd -cluster nodes sharing one WAL root, queried through the
# typed dwatch-api CLI; one node is SIGKILLed and the survivor must
# adopt its environments via WAL replay. Part of `make check`.
cluster-smoke:
	./scripts/cluster-smoke.sh

# Curated replay corpus: a multi-environment WAL root generated from
# the pinned testdata/fleet configs (deterministic sim, so the corpus
# is reproducible bit-for-bit per seed) and cached under
# testdata/corpus/ — rm -rf it to regenerate. Feed it back with
# `dwatchd -env-dir testdata/fleet -wal-dir testdata/corpus` (replay on
# add) or per-env via dwatch-replay -wal-dir testdata/corpus/site-a.
CORPUS_DIR ?= testdata/corpus
corpus:
	@if [ -d "$(CORPUS_DIR)/site-a" ] && [ -d "$(CORPUS_DIR)/site-b" ]; then \
		echo "corpus cached at $(CORPUS_DIR) (rm -rf to regenerate)"; \
	else \
		$(GO) run ./cmd/dwatchd -env-dir testdata/fleet -simulate -rounds 60 -sim-interval 0 -wal-dir "$(CORPUS_DIR)"; \
		echo "corpus generated at $(CORPUS_DIR):"; \
		du -sh "$(CORPUS_DIR)"/*/; \
	fi

# The replay-driven perf regression gate: replay the pinned corpus
# through a fresh pipeline per environment (best-of-3 repeats, same
# min/max-of-N methodology as `make bench`) and compare against the
# committed BENCH_baseline.json under the DESIGN.md three-tier policy:
# fix parity must match bit-for-bit (warn-only cross-arch), throughput
# may not halve, p50/p99 latency may not double. Non-zero exit on
# regression. Re-record after an intentional perf change with
# `go run ./cmd/dwatch-perfgate -update` on a quiet box.
perf-gate: corpus
	$(GO) run ./cmd/dwatch-perfgate

# The durability gate at the binary level: record a simulated run into
# a WAL, kill -9 dwatchd mid-stream, restart and assert recovery via
# /api/v1/wal, then replay the WAL unthrottled twice and assert the fix
# parity hashes agree.
replay-smoke:
	./scripts/replay-smoke.sh

# Replay-driven A/B: one WAL capture through both eigensolvers and both
# 1-shard and N-shard fusion. Shard count must not move the parity hash
# (asserted); the jacobi/qr pair reports hashes and latency digests for
# eyeballing the documented tolerance.
replay-ab:
	./scripts/replay-ab.sh

# Throw malformed bytes at the WAL segment scanner; it must stop with a
# damage report, never panic. Run longer locally with FUZZTIME=5m.
FUZZTIME ?= 20s
fuzz-wal:
	$(GO) test -run '^$$' -fuzz FuzzSegmentScanner -fuzztime $(FUZZTIME) ./internal/wal/

clean:
	$(GO) clean ./...
