# Standard verification gate: `make check` is what CI and pre-commit
# should run. `make race` repeats the test suite under the race
# detector — mandatory for changes touching internal/pipeline or
# internal/llrp.

GO ?= go

.PHONY: all build fmt vet test race chaos bench bench-figures check serve-smoke clean

all: check

build:
	$(GO) build ./...

# gofmt is enforced, not advisory: fail loudly with the offending files.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# -short here skips the chaos e2e, which gets its own race-enabled
# target below — no point running the slowest test twice per check.
race:
	$(GO) test -race -short ./...

# The fault-tolerance gate: kill and restart a reader mid-run over real
# TCP with injected link faults, under the race detector. Degraded
# fixes must flow during the outage and post-recovery fixes must be
# bit-identical to a fault-free run.
chaos:
	$(GO) test -race -run TestChaosEndToEnd ./internal/session/

# Hot-path micro-benchmarks with fixed iteration counts so successive
# runs are benchstat-comparable; output lands in BENCH_hotpath.json for
# before/after diffing in perf PRs.
HOTPATH_BENCH = BenchmarkMusicSpectrum|BenchmarkBeamPower|BenchmarkLocalizeGrid|BenchmarkPipelineThroughput
bench:
	$(GO) test -run '^$$' -bench '$(HOTPATH_BENCH)' -benchtime 100x -count 3 -benchmem . | tee BENCH_hotpath.json

# The figure benchmarks run one iteration each; they reproduce the
# paper's evaluation, not machine performance.
bench-figures:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem .

check: fmt vet build test race chaos

# Boots dwatchd -simulate with the observability plane and curls the
# endpoints a monitoring stack would: liveness, metrics, live stats.
serve-smoke:
	./scripts/serve-smoke.sh

clean:
	$(GO) clean ./...
