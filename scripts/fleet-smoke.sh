#!/bin/sh
# fleet-smoke: boot one dwatchd -env-dir process fronting the two
# pinned testdata/fleet deployments and verify the multi-tenant plane
# over real TCP: the /api/v1/envs listing, each environment's scoped
# positions and health routes, and the per-env fleet metrics. The
# curl-level counterpart to internal/fleet's e2e httptest coverage.
#
# The testdata/fleet seeds are pinned to layouts known to produce
# fixes (see testdata/fleet/README.md) — with -http set, fleet mode
# keeps serving after the simulation completes and the hub answers
# plain GETs from its latest-per-env snapshots, so the assertions
# below are deterministic, not racy.
set -eu

HTTP_ADDR="${HTTP_ADDR:-127.0.0.1:18081}"
ENV_DIR="${ENV_DIR:-testdata/fleet}"
BIN_DIR="$(mktemp -d)"
BIN="$BIN_DIR/dwatchd"
LOG="$(mktemp)"
WAL_ROOT="$(mktemp -d)"

# JSON assertions go through the typed dwatch-api CLI: every body is
# strict-decoded into the internal/api contract structs before the
# greps below ever see it.
api() { "$BIN_DIR/dwatch-api" -base "http://$HTTP_ADDR" "$@"; }

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS --max-time 5 "$1"
    elif command -v wget >/dev/null 2>&1; then
        wget -q -T 5 -O - "$1"
    else
        echo "fleet-smoke: neither curl nor wget available" >&2
        exit 1
    fi
}

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$BIN_DIR" "$WAL_ROOT"
    rm -f "$LOG"
}
trap cleanup EXIT INT TERM

echo "== building dwatchd and dwatch-api"
go build -o "$BIN" ./cmd/dwatchd
go build -o "$BIN_DIR/dwatch-api" ./cmd/dwatch-api

echo "== starting dwatchd -env-dir $ENV_DIR -simulate -http $HTTP_ADDR"
"$BIN" -env-dir "$ENV_DIR" -simulate -rounds 40 -sim-interval 10ms \
    -wal-dir "$WAL_ROOT" -http "$HTTP_ADDR" >"$LOG" 2>&1 &
PID=$!

i=0
until fetch "http://$HTTP_ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "FAIL: plane never served /healthz" >&2
        cat "$LOG" >&2
        exit 1
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "FAIL: dwatchd exited early" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.2
done
echo "ok: /healthz"

# Both environments must appear in the fleet listing.
ENVS="$(api envs)"
for env in site-a site-b; do
    if ! printf '%s\n' "$ENVS" | grep -Fq "\"$env\""; then
        echo "FAIL: /api/v1/envs missing $env: $ENVS" >&2
        exit 1
    fi
done
echo "ok: /api/v1/envs lists site-a and site-b"

# Each env must eventually serve a position fix through its own scoped
# route (the pinned seeds guarantee fixes; the hub snapshot answers
# plain GETs even after the simulation finishes).
for env in site-a site-b; do
    i=0
    until api positions "$env" 2>/dev/null | grep -q '"seq"'; do
        i=$((i + 1))
        if [ "$i" -ge 150 ]; then
            echo "FAIL: no position appeared for $env" >&2
            cat "$LOG" >&2
            exit 1
        fi
        if ! kill -0 "$PID" 2>/dev/null; then
            echo "FAIL: dwatchd exited before $env produced a position" >&2
            cat "$LOG" >&2
            exit 1
        fi
        sleep 0.2
    done
    echo "ok: /api/v1/$env/positions"

    HEALTH="$(api health "$env")"
    # Reader IDs are env-prefixed so tenants never collide in metrics,
    # health state, or WAL records.
    if ! printf '%s\n' "$HEALTH" | grep -Fq "\"$env/"; then
        echo "FAIL: /api/v1/$env/health lacks env-prefixed readers: $HEALTH" >&2
        exit 1
    fi
    echo "ok: /api/v1/$env/health"
done

# Per-env WAL subdirectories must exist and hold segments, and the
# env-scoped WAL status must strict-decode as api.WALStatus.
for env in site-a site-b; do
    if ! ls "$WAL_ROOT/$env/"*.wal >/dev/null 2>&1; then
        echo "FAIL: no WAL segments under $WAL_ROOT/$env/" >&2
        ls -R "$WAL_ROOT" >&2
        exit 1
    fi
    if ! api wal "$env" | grep -q '"appended_records"'; then
        echo "FAIL: /api/v1/$env/wal lacks appended_records" >&2
        exit 1
    fi
done
echo "ok: per-env WAL subdirectories and status"

# Fleet metrics: per-env fix counters plus the aggregate env gauge.
METRICS="$(fetch "http://$HTTP_ADDR/metrics")"
for want in \
    'dwatch_fleet_environments 2' \
    'dwatch_fleet_fixes_total{env="site-a"}' \
    'dwatch_fleet_fixes_total{env="site-b"}' \
    'dwatch_broker_publishes_total'; do
    if ! printf '%s\n' "$METRICS" | grep -Fq "$want"; then
        echo "FAIL: /metrics missing: $want" >&2
        exit 1
    fi
done
echo "ok: /metrics fleet families"

# An unknown environment must 404 with the structured envelope, not
# fall through to a panic or an empty 200.
NOTFOUND="$(api positions no-such-env 2>&1 >/dev/null || true)"
if ! printf '%s\n' "$NOTFOUND" | grep -Fq 'env_not_found'; then
    echo "FAIL: unknown env did not return env_not_found: $NOTFOUND" >&2
    exit 1
fi
echo "ok: unknown env 404s"

echo "fleet-smoke: PASS"
