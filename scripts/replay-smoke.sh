#!/bin/sh
# replay-smoke: the durability gate at the binary level. Records a
# simulated run into an ingest WAL, kills dwatchd with SIGKILL
# mid-stream (the crash a durable log exists for), restarts it and
# asserts the WAL recovered via /api/v1/wal, then replays the capture
# unthrottled twice with dwatch-replay and asserts the fix parity
# hashes agree — the same determinism contract the in-process e2e
# tests pin, but exercised through the real binaries and real files.
set -eu

HTTP_ADDR="${HTTP_ADDR:-127.0.0.1:18081}"
LLRP_ADDR="${LLRP_ADDR:-127.0.0.1:15085}"
WORK="$(mktemp -d)"
WALDIR="$WORK/wal"
LOG="$WORK/dwatchd.log"

fetch_body() {
    if command -v curl >/dev/null 2>&1; then
        curl -sS --max-time 5 "$1" 2>/dev/null || true
    else
        wget -q -T 5 -O - "$1" 2>/dev/null || true
    fi
}

cleanup() {
    [ -n "${PID:-}" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== building dwatchd and dwatch-replay"
go build -o "$WORK/dwatchd" ./cmd/dwatchd
go build -o "$WORK/dwatch-replay" ./cmd/dwatch-replay

echo "== recording a simulated run into $WALDIR"
"$WORK/dwatchd" -listen "$LLRP_ADDR" -env table -simulate -rounds 200 \
    -wal-dir "$WALDIR" -http "$HTTP_ADDR" >"$LOG" 2>&1 &
PID=$!

# Wait until a healthy number of reports has been appended, then crash.
i=0
until fetch_body "http://$HTTP_ADDR/api/v1/wal" |
    grep -Eq '"appended_records": *(1[2-9]|[2-9][0-9]|[0-9]{3,})'; do
    i=$((i + 1))
    if [ "$i" -ge 200 ]; then
        echo "FAIL: WAL never accumulated 12 reports" >&2
        cat "$LOG" >&2
        exit 1
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "FAIL: dwatchd exited before the crash point" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.2
done
echo "== crashing dwatchd (SIGKILL)"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=

if [ -z "$(ls "$WALDIR"/*.wal 2>/dev/null)" ]; then
    echo "FAIL: no WAL segments survived the crash" >&2
    exit 1
fi
echo "ok: WAL segments on disk"

echo "== restarting dwatchd over the crashed WAL"
"$WORK/dwatchd" -listen "$LLRP_ADDR" -env table \
    -wal-dir "$WALDIR" -http "$HTTP_ADDR" >"$LOG" 2>&1 &
PID=$!

i=0
until fetch_body "http://$HTTP_ADDR/api/v1/wal" |
    grep -Eq '"recovered_records": *[1-9]'; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "FAIL: restart never reported recovered records" >&2
        fetch_body "http://$HTTP_ADDR/api/v1/wal" >&2
        cat "$LOG" >&2
        exit 1
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "FAIL: dwatchd exited during recovery" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.2
done
echo "ok: /api/v1/wal reports recovery"

kill "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
PID=

parity() {
    sed -n 's/.*"fix_parity": *"\([^"]*\)".*/\1/p' "$1"
}

echo "== replaying the WAL unthrottled, twice"
"$WORK/dwatch-replay" -wal-dir "$WALDIR" -env table -json >"$WORK/run1.json"
"$WORK/dwatch-replay" -wal-dir "$WALDIR" -env table -json >"$WORK/run2.json"

P1="$(parity "$WORK/run1.json")"
P2="$(parity "$WORK/run2.json")"
if [ -z "$P1" ]; then
    echo "FAIL: replay summary has no fix_parity" >&2
    cat "$WORK/run1.json" >&2
    exit 1
fi
if [ "$P1" != "$P2" ]; then
    echo "FAIL: replay is not deterministic: $P1 != $P2" >&2
    exit 1
fi
echo "ok: fix parity stable across replays ($P1)"

if ! grep -Eq '"fixes": *[1-9]' "$WORK/run1.json"; then
    echo "FAIL: replay produced no fixes" >&2
    cat "$WORK/run1.json" >&2
    exit 1
fi
echo "ok: replay produced fixes"

echo "replay-smoke: PASS"
