#!/bin/sh
# replay-ab: replay-driven A/B comparison of pipeline configurations
# over one recorded capture. Records a simulated run into an ingest
# WAL, then replays the identical bytes through four configs — both
# eigensolvers (jacobi = the pre-QR reference, qr = the tridiagonal
# hot path) crossed with 1-shard and 4-shard fusion — and compares fix
# parity hashes and latency digests.
#
# Contract asserted here, at the binary level:
#   - the fusion shard count NEVER moves the parity hash (sharding
#     decides which goroutine fuses a sequence, not the arithmetic);
#   - both eigensolver configs must produce the same number of fixes
#     over the capture; their parity hashes are reported side by side
#     (they may legitimately differ inside the documented tolerance —
#     see DESIGN.md "Scaling the hot path").
set -eu

HTTP_ADDR="${HTTP_ADDR:-127.0.0.1:18082}"
LLRP_ADDR="${LLRP_ADDR:-127.0.0.1:15086}"
SHARDS="${SHARDS:-4}"
WORK="$(mktemp -d)"
WALDIR="$WORK/wal"
LOG="$WORK/dwatchd.log"

fetch_body() {
    if command -v curl >/dev/null 2>&1; then
        curl -sS --max-time 5 "$1" 2>/dev/null || true
    else
        wget -q -T 5 -O - "$1" 2>/dev/null || true
    fi
}

cleanup() {
    [ -n "${PID:-}" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== building dwatchd and dwatch-replay"
go build -o "$WORK/dwatchd" ./cmd/dwatchd
go build -o "$WORK/dwatch-replay" ./cmd/dwatch-replay

echo "== recording a simulated run into $WALDIR"
"$WORK/dwatchd" -listen "$LLRP_ADDR" -env table -simulate -rounds 200 \
    -wal-dir "$WALDIR" -http "$HTTP_ADDR" >"$LOG" 2>&1 &
PID=$!

i=0
until fetch_body "http://$HTTP_ADDR/api/v1/wal" |
    grep -Eq '"appended_records": *([3-9][0-9]|[0-9]{3,})'; do
    i=$((i + 1))
    if [ "$i" -ge 200 ]; then
        echo "FAIL: WAL never accumulated 30 reports" >&2
        cat "$LOG" >&2
        exit 1
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "FAIL: dwatchd exited during recording" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.2
done
kill "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
PID=
echo "ok: capture recorded"

field() {
    sed -n "s/.*\"$2\": *\"\{0,1\}\([^\",}]*\)\"\{0,1\}.*/\1/p" "$1" | head -n 1
}

replay() {
    # $1 = output json, $2 = eigensolver, $3 = shard count
    "$WORK/dwatch-replay" -wal-dir "$WALDIR" -env table -json \
        -eigensolver "$2" -asm-shards "$3" >"$1"
}

echo "== replaying the capture through 4 configs"
replay "$WORK/qr-1.json" qr 1
replay "$WORK/qr-N.json" qr "$SHARDS"
replay "$WORK/jacobi-1.json" jacobi 1
replay "$WORK/jacobi-N.json" jacobi "$SHARDS"

for f in qr-1 qr-N jacobi-1 jacobi-N; do
    if [ -z "$(field "$WORK/$f.json" fix_parity)" ]; then
        echo "FAIL: $f replay summary has no fix_parity" >&2
        cat "$WORK/$f.json" >&2
        exit 1
    fi
    if ! grep -Eq '"fixes": *[1-9]' "$WORK/$f.json"; then
        echo "FAIL: $f replay produced no fixes" >&2
        cat "$WORK/$f.json" >&2
        exit 1
    fi
done

# Shard-count independence: bit-identical parity within each solver.
for solver in qr jacobi; do
    P1="$(field "$WORK/$solver-1.json" fix_parity)"
    PN="$(field "$WORK/$solver-N.json" fix_parity)"
    if [ "$P1" != "$PN" ]; then
        echo "FAIL: $solver parity moved with shard count: 1-shard $P1 != $SHARDS-shard $PN" >&2
        exit 1
    fi
    echo "ok: $solver parity shard-independent ($P1)"
done

# Eigensolver A/B: same fix count required; hashes + latency reported.
FQ="$(field "$WORK/qr-1.json" fixes)"
FJ="$(field "$WORK/jacobi-1.json" fixes)"
if [ "$FQ" != "$FJ" ]; then
    echo "FAIL: fix counts diverge across eigensolvers: qr $FQ != jacobi $FJ" >&2
    exit 1
fi
echo "ok: both eigensolvers fixed $FQ sequences"

summarize() {
    printf '%-10s parity=%.16s... reports/s=%s compute_p50=%ss fuse_p50=%ss\n' \
        "$1" "$(field "$2" fix_parity)" "$(field "$2" reports_per_sec)" \
        "$(field "$2" P50)" "$(sed -n '/"fuse_latency"/,$p' "$2" | sed -n "s/.*\"P50\": *\([^,}]*\).*/\1/p" | head -n 1)"
}

echo "== A/B summary (identical capture, unthrottled)"
summarize "qr" "$WORK/qr-N.json"
summarize "jacobi" "$WORK/jacobi-N.json"

PQ="$(field "$WORK/qr-1.json" fix_parity)"
PJ="$(field "$WORK/jacobi-1.json" fix_parity)"
if [ "$PQ" = "$PJ" ]; then
    echo "note: eigensolver parity hashes agree bit-for-bit on this capture"
else
    echo "note: eigensolver parity hashes differ (expected: documented tolerance, see DESIGN.md)"
fi

echo "replay-ab: PASS"
