#!/bin/sh
# serve-smoke: boot dwatchd -simulate with the observability plane and
# verify the endpoints a monitoring stack scrapes. Exercises the real
# binary over real TCP — the curl-level counterpart to the httptest
# coverage in internal/serve.
set -eu

HTTP_ADDR="${HTTP_ADDR:-127.0.0.1:18080}"
LLRP_ADDR="${LLRP_ADDR:-127.0.0.1:15084}"
BIN_DIR="$(mktemp -d)"
BIN="$BIN_DIR/dwatchd"
LOG="$(mktemp)"

# The JSON assertions below go through the typed dwatch-api CLI, which
# strict-decodes every body into the internal/api contract structs —
# the smoke consumes the same shapes the Go clients do.
api() { "$BIN_DIR/dwatch-api" -base "http://$HTTP_ADDR" "$@"; }

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS --max-time 5 "$1"
    elif command -v wget >/dev/null 2>&1; then
        wget -q -T 5 -O - "$1"
    else
        echo "serve-smoke: neither curl nor wget available" >&2
        exit 1
    fi
}

# fetch_body tolerates non-200 responses: /readyz bodies matter even
# while the plane answers 503.
fetch_body() {
    if command -v curl >/dev/null 2>&1; then
        curl -sS --max-time 5 "$1"
    else
        wget -q -T 5 -O - "$1" 2>/dev/null || true
    fi
}

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$BIN_DIR"
    rm -f "$LOG"
}
trap cleanup EXIT INT TERM

echo "== building dwatchd and dwatch-api"
go build -o "$BIN" ./cmd/dwatchd
go build -o "$BIN_DIR/dwatch-api" ./cmd/dwatch-api

echo "== starting dwatchd -simulate -http $HTTP_ADDR"
"$BIN" -listen "$LLRP_ADDR" -env table -simulate -rounds 200 -http "$HTTP_ADDR" >"$LOG" 2>&1 &
PID=$!

# Wait for the plane to come up.
i=0
until fetch "http://$HTTP_ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "FAIL: plane never served /healthz" >&2
        cat "$LOG" >&2
        exit 1
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "FAIL: dwatchd exited early" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.2
done
echo "ok: /healthz"

# Metrics must be valid Prometheus exposition with pipeline families.
METRICS="$(fetch "http://$HTTP_ADDR/metrics")"
for want in \
    "# TYPE dwatch_pipeline_reports_total counter" \
    "# TYPE dwatch_stage_duration_seconds histogram" \
    "# TYPE dwatch_http_requests_total counter"; do
    if ! printf '%s\n' "$METRICS" | grep -Fq "$want"; then
        echo "FAIL: /metrics missing: $want" >&2
        exit 1
    fi
done
echo "ok: /metrics"

# Stats must strict-decode as the api.PipelineStats contract (the
# single-deployment server registers itself as the one-env fleet
# "table", so the env-scoped route serves it).
STATS="$(api stats table)"
if ! printf '%s\n' "$STATS" | grep -q '"ReportsIn"'; then
    echo "FAIL: stats lack ReportsIn: $STATS" >&2
    exit 1
fi
echo "ok: /api/v1/table/stats (strict api.PipelineStats)"

# A served position must carry a trace_id (schema 3) that resolves to
# a full per-sequence trace with a fuse-stage span.
i=0
TID=""
while [ -z "$TID" ]; do
    TID="$(api positions table 2>/dev/null |
        tr ',' '\n' | grep '"trace_id"' | head -n 1 |
        sed 's/.*"trace_id": *"\([^"]*\)".*/\1/')" || true
    [ -n "$TID" ] && break
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "FAIL: no position with a trace_id appeared" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
TRACE="$(api trace table "$TID")"
for want in '"outcome": "fix"' '"stage": "fuse"' '"stage": "spectrum"'; do
    if ! printf '%s\n' "$TRACE" | grep -Fq "$want"; then
        echo "FAIL: trace $TID missing $want: $TRACE" >&2
        exit 1
    fi
done
echo "ok: /api/v1/table/traces/{id} (strict api.Trace)"

# RF health must report live read rates per reader.
HEALTH="$(api health table)"
for want in '"readers"' '"rate_hz"' '"angle_deg"'; do
    if ! printf '%s\n' "$HEALTH" | grep -Fq "$want"; then
        echo "FAIL: health missing $want: $HEALTH" >&2
        exit 1
    fi
done
echo "ok: /api/v1/table/health (strict api.RFHealth)"

# Readiness flips once the simulated readers confirm their baselines.
i=0
until fetch "http://$HTTP_ADDR/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "FAIL: /readyz never turned ready" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.2
done
echo "ok: /readyz"

kill "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
PID=

# Phase 2: supervised chaos mode. dwatchd dials in-process simulated
# readers, kills one mid-run, and restarts it; /readyz must report the
# outage (a reader down, fusion degraded) and then the recovery.
echo "== starting dwatchd -chaos -http $HTTP_ADDR"
"$BIN" -env hall -chaos -chaos-flap 3s -rounds 40 -http "$HTTP_ADDR" >"$LOG" 2>&1 &
PID=$!

i=0
until fetch_body "http://$HTTP_ADDR/readyz" | grep -q '"ready": true'; do
    i=$((i + 1))
    if [ "$i" -ge 150 ]; then
        echo "FAIL: supervised /readyz never turned ready" >&2
        cat "$LOG" >&2
        exit 1
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "FAIL: dwatchd -chaos exited early" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.2
done
echo "ok: supervised /readyz ready"

# Down: the flapped reader shows up as non-up state + degraded flag.
i=0
until fetch_body "http://$HTTP_ADDR/readyz" | grep -q '"degraded": true'; do
    i=$((i + 1))
    if [ "$i" -ge 150 ]; then
        echo "FAIL: /readyz never reported the outage" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
echo "ok: /readyz reports outage (degraded quorum)"

# Up again: the supervisor reconnects and the degraded flag clears.
i=0
until fetch_body "http://$HTTP_ADDR/readyz" | grep -q '"degraded": false'; do
    i=$((i + 1))
    if [ "$i" -ge 200 ]; then
        echo "FAIL: /readyz never recovered after the flap" >&2
        cat "$LOG" >&2
        exit 1
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "FAIL: dwatchd -chaos exited before recovery was observed" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
echo "ok: /readyz recovered (reader reconnected)"

echo "serve-smoke: PASS"
