#!/bin/sh
# cluster-smoke: the failure-mode counterpart to fleet-smoke. Boot a
# dwatch-gateway and two dwatchd nodes that share one WAL root and
# catalog the same pinned testdata/fleet deployments, verify the
# fan-in surface through the typed dwatch-api CLI (strict contract
# decoding — shape drift fails loudly), then SIGKILL the node owning
# site-a and assert the survivor adopts its environments via WAL
# replay and keeps answering through the gateway.
set -eu

GW_ADDR="${GW_ADDR:-127.0.0.1:18090}"
NODE_A_ADDR="${NODE_A_ADDR:-127.0.0.1:18091}"
NODE_B_ADDR="${NODE_B_ADDR:-127.0.0.1:18092}"
ENV_DIR="${ENV_DIR:-testdata/fleet}"
BIN_DIR="$(mktemp -d)"
LOG_DIR="$(mktemp -d)"
WAL_ROOT="$(mktemp -d)"
GW="http://$GW_ADDR"

cleanup() {
    [ -n "${PID_A:-}" ] && kill "$PID_A" 2>/dev/null || true
    [ -n "${PID_B:-}" ] && kill "$PID_B" 2>/dev/null || true
    [ -n "${PID_GW:-}" ] && kill "$PID_GW" 2>/dev/null || true
    rm -rf "$BIN_DIR" "$LOG_DIR" "$WAL_ROOT"
}
trap cleanup EXIT INT TERM

api() { "$BIN_DIR/dwatch-api" -base "$GW" "$@"; }

echo "== building dwatchd, dwatch-gateway, dwatch-api"
go build -o "$BIN_DIR/dwatchd" ./cmd/dwatchd
go build -o "$BIN_DIR/dwatch-gateway" ./cmd/dwatch-gateway
go build -o "$BIN_DIR/dwatch-api" ./cmd/dwatch-api

echo "== starting gateway on $GW_ADDR"
"$BIN_DIR/dwatch-gateway" -listen "$GW_ADDR" -heartbeat 200ms -scrape-interval 200ms \
    >"$LOG_DIR/gateway.log" 2>&1 &
PID_GW=$!

i=0
until api cluster >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "FAIL: gateway never served /api/v1/cluster" >&2
        cat "$LOG_DIR/gateway.log" >&2
        exit 1
    fi
    sleep 0.2
done
echo "ok: gateway up"

echo "== starting node-a and node-b (shared WAL root, shared catalog)"
"$BIN_DIR/dwatchd" -env-dir "$ENV_DIR" -cluster "$GW" -node-id node-a \
    -http "$NODE_A_ADDR" -wal-dir "$WAL_ROOT" -profile-dir "$LOG_DIR/prof-node-a" \
    -simulate -rounds 40 -sim-interval 10ms \
    >"$LOG_DIR/node-a.log" 2>&1 &
PID_A=$!
"$BIN_DIR/dwatchd" -env-dir "$ENV_DIR" -cluster "$GW" -node-id node-b \
    -http "$NODE_B_ADDR" -wal-dir "$WAL_ROOT" -profile-dir "$LOG_DIR/prof-node-b" \
    -simulate -rounds 40 -sim-interval 10ms \
    >"$LOG_DIR/node-b.log" 2>&1 &
PID_B=$!

fail() {
    echo "FAIL: $1" >&2
    for f in "$LOG_DIR"/*.log; do
        echo "---- $f" >&2
        tail -30 "$f" >&2
    done
    exit 1
}

# Both environments must surface through the gateway's union listing
# once the nodes join and adopt their slot assignments.
i=0
until api envs 2>/dev/null | grep -Fq '"site-a"' &&
    api envs 2>/dev/null | grep -Fq '"site-b"'; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && fail "/api/v1/envs never listed both sites"
    kill -0 "$PID_A" 2>/dev/null || fail "node-a exited early"
    kill -0 "$PID_B" 2>/dev/null || fail "node-b exited early"
    sleep 0.2
done
echo "ok: gateway lists site-a and site-b"

CLUSTER="$(api cluster)"
printf '%s\n' "$CLUSTER" | grep -Fq '"node-a"' || fail "cluster status missing node-a: $CLUSTER"
printf '%s\n' "$CLUSTER" | grep -Fq '"node-b"' || fail "cluster status missing node-b: $CLUSTER"
echo "ok: both nodes in the directory"

# Positions for both environments through the fan-in proxy (the pinned
# seeds guarantee fixes; strict decoding proves the contract shape).
for env in site-a site-b; do
    i=0
    until api positions "$env" 2>/dev/null | grep -q '"seq"'; do
        i=$((i + 1))
        [ "$i" -ge 150 ] && fail "no position for $env through the gateway"
        sleep 0.2
    done
    echo "ok: positions for $env via gateway"
done

# Federated telemetry: the gateway scrapes every live node's /metrics
# and re-exposes the union with a node label spliced onto each sample.
# Each environment's fixes counter must carry its owner's label, and
# both nodes' runtime families must show up under distinct labels
# (rendezvous may colocate both envs on one node, so the fixes series
# alone cannot prove both nodes are scraped).
OWNER_A="$(api cluster | grep -o '"site-a": *"[^"]*"' | grep -o 'node-[ab]' | head -1)"
OWNER_B="$(api cluster | grep -o '"site-b": *"[^"]*"' | grep -o 'node-[ab]' | head -1)"
[ -n "$OWNER_A" ] && [ -n "$OWNER_B" ] || fail "could not resolve env owners from cluster status"
i=0
until METRICS="$(api metrics 2>/dev/null)" &&
    printf '%s\n' "$METRICS" | grep -Fq "dwatch_fleet_fixes_total{env=\"site-a\",node=\"$OWNER_A\"}" &&
    printf '%s\n' "$METRICS" | grep -Fq "dwatch_fleet_fixes_total{env=\"site-b\",node=\"$OWNER_B\"}" &&
    printf '%s\n' "$METRICS" | grep -Fq 'node="node-a"' &&
    printf '%s\n' "$METRICS" | grep -Fq 'node="node-b"'; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && fail "federated /metrics never carried both nodes' series"
    sleep 0.2
done
printf '%s\n' "$METRICS" | grep -Fq 'dwatch_go_goroutines' ||
    fail "federated /metrics lacks the runtime collector families"
echo "ok: federated /metrics carries both nodes (site-a on $OWNER_A, site-b on $OWNER_B)"

# The per-node proxy serves one node's un-federated page, and every
# binary's exposition self-identifies via the build-info gauge.
api -node "$OWNER_A" metrics | grep -Fq 'dwatch_build_info' ||
    fail "per-node metrics proxy missing dwatch_build_info for $OWNER_A"
echo "ok: per-node metrics proxy answers with build info"

# The profiling ring is live on both nodes; the smoke runs shorter than
# the 60s capture interval, so assert the gateway proxy plumbing (a
# well-formed, possibly empty listing), not captured profiles.
api -node "$OWNER_A" profiles | grep -Fq '"profiles"' ||
    fail "profiles listing via gateway proxy failed for $OWNER_A"
echo "ok: profiles listing via gateway proxy"

# The typed cluster rollup covers both environments.
CH="$(api cluster-health)" || fail "cluster-health rollup failed"
printf '%s\n' "$CH" | grep -Fq '"site-a"' || fail "cluster-health missing site-a: $CH"
printf '%s\n' "$CH" | grep -Fq '"site-b"' || fail "cluster-health missing site-b: $CH"
echo "ok: /api/v1/cluster/health rolls up both environments"

# Kill the node owning site-a (rendezvous decides which one that is)
# and watch the survivor adopt its environments from the shared WAL.
OWNER="$OWNER_A"
if [ "$OWNER" = node-a ]; then
    VICTIM_PID=$PID_A SURVIVOR=node-b
else
    VICTIM_PID=$PID_B SURVIVOR=node-a
fi
echo "== killing $OWNER (owner of site-a), survivor is $SURVIVOR"
kill -9 "$VICTIM_PID"
if [ "$OWNER" = node-a ]; then PID_A=""; else PID_B=""; fi

# The directory expires the dead node after 3 missed beats; the
# survivor's next heartbeat adopts everything via WAL replay.
i=0
until api cluster 2>/dev/null | grep -c '"id"' | grep -qx 1; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && fail "dead node never expired from the directory"
    sleep 0.2
done
echo "ok: $OWNER expired from the directory"

for env in site-a site-b; do
    i=0
    until api cluster 2>/dev/null | grep -Fq "\"$env\": \"$SURVIVOR\""; do
        i=$((i + 1))
        [ "$i" -ge 100 ] && fail "$env never reassigned to $SURVIVOR"
        sleep 0.2
    done
    i=0
    until api positions "$env" 2>/dev/null | grep -q '"seq"'; do
        i=$((i + 1))
        [ "$i" -ge 150 ] && fail "no position for $env after adoption by $SURVIVOR"
        sleep 0.2
    done
    echo "ok: $env adopted by $SURVIVOR and serving through the gateway"
done

# The adopted environments replayed the dead node's WAL: the survivor
# reports ingest progress for both sites.
STATS="$(api stats site-a)" || fail "stats for site-a after adoption"
printf '%s\n' "$STATS" | grep -q '"ReportsIn"' || fail "adopted stats lack ReportsIn: $STATS"
echo "ok: adopted site-a serves pipeline stats"

# Stale-series eviction: once the dead node left the directory, every
# one of its samples must vanish from the federated page (the gateway's
# own scrape counter labels targets with "target", never "node", so a
# zero match here really means zero federated series). The survivor's
# adopted fixes series must carry its label instead.
i=0
until METRICS="$(api metrics 2>/dev/null)" &&
    ! printf '%s\n' "$METRICS" | grep -Fq "node=\"$OWNER\"" &&
    printf '%s\n' "$METRICS" | grep -Fq "dwatch_fleet_fixes_total{env=\"site-a\",node=\"$SURVIVOR\"}"; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && fail "dead node's series never evicted from the federated /metrics"
    sleep 0.2
done
echo "ok: $OWNER's series evicted; site-a fixes now under $SURVIVOR"

echo "cluster-smoke: PASS"
