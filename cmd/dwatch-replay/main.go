// Command dwatch-replay re-runs localization over a recorded LLRP
// session (written by dwatchd -record): the offline workflow for tuning
// detection thresholds against captured traffic without the readers.
//
// Replay pumps the recorded reports through the same streaming
// pipeline dwatchd serves with, so the worker pool parallelizes the
// spectrum computation: -workers N trades cores for wall time, and the
// summary reports the achieved report throughput.
//
// Usage:
//
//	dwatch-replay -in session.dwrl [-env hall] [-drop-floor 0.2] [-workers N]
//	              [-http 127.0.0.1:8080]
//
// -http serves the observability plane during the replay — useful for
// watching /metrics or the /api/v1/positions SSE stream while a long
// capture re-runs, and for profiling via /debug/pprof.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"sort"
	"time"

	"dwatch/internal/dwatch"
	"dwatch/internal/health"
	"dwatch/internal/llrp"
	"dwatch/internal/obs"
	"dwatch/internal/pipeline"
	"dwatch/internal/rf"
	"dwatch/internal/serve"
	"dwatch/internal/sim"
	"dwatch/internal/tracing"
)

func main() {
	in := flag.String("in", "", "record file written by dwatchd -record")
	env := flag.String("env", "hall", "environment preset (array geometry)")
	dropFloor := flag.Float64("drop-floor", 0, "override the per-path drop floor (0 = default)")
	workers := flag.Int("workers", 0, "spectrum worker pool size (0 = GOMAXPROCS)")
	httpAddr := flag.String("http", "", "serve the observability plane (metrics, health, positions, pprof) on this address during replay; empty = disabled")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	flag.Parse()
	switch *logFormat {
	case "", "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fatal(fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat))
	}
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	cfg, err := preset(*env)
	if err != nil {
		fatal(err)
	}
	sc, err := sim.Build(cfg)
	if err != nil {
		fatal(err)
	}
	arrays := map[string]*rf.Array{}
	for _, r := range sc.Readers {
		arrays[r.ID] = r.Array
	}

	var reg *obs.Registry
	var broker *serve.Broker
	var tracer *tracing.Tracer
	var mon *health.Monitor
	if *httpAddr != "" {
		reg = obs.NewRegistry()
		broker = serve.NewBroker()
		tracer = tracing.New()
		mon = health.New(reg, health.Options{})
		obs.RegisterBuildInfo(reg)
	}
	p, err := pipeline.New(pipeline.Deployment{Arrays: arrays, Grid: sc.Grid},
		pipeline.WithWorkers(*workers),
		pipeline.WithFuser(dwatch.Config{DropFloor: *dropFloor}),
		pipeline.WithObs(reg),
		pipeline.WithTracer(tracer),
		pipeline.WithHealth(mon),
		pipeline.WithLogger(logger),
	)
	if err != nil {
		fatal(err)
	}
	var plane *serve.Server
	if *httpAddr != "" {
		p.SubscribeFixes(func(fix pipeline.Fix) {
			if fix.Err != nil {
				return
			}
			broker.Publish(serve.Position{
				Env: sc.Name, Seq: fix.Seq,
				X: fix.Pos.X, Y: fix.Pos.Y,
				Confidence: fix.Confidence, Views: fix.Views,
				Readers: fix.Readers, Degraded: fix.Degraded,
				TraceID: fix.TraceID,
				Time:    time.Now(),
			})
		})
		plane = serve.New(
			serve.WithRegistry(reg),
			serve.WithBroker(broker),
			serve.WithTracer(tracer),
			serve.WithHealth(mon),
			serve.WithStats(func() any { return p.Stats() }),
			serve.WithReady(func() error {
				if st := p.Stats(); st.BaselinesConfirmed < uint64(len(arrays)) {
					return fmt.Errorf("baseline: %d/%d readers confirmed", st.BaselinesConfirmed, len(arrays))
				}
				return nil
			}),
			serve.WithLogf(func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...))
			}),
		)
		planeAddr, err := plane.Start(*httpAddr)
		if err != nil {
			fatal(err)
		}
		logger.Info("observability plane up", "url", "http://"+planeAddr.String()+"/")
	}
	p.Start()

	// Collect fixes concurrently; they may complete out of seq order,
	// so buffer and sort for a stable report.
	type outcome struct {
		fix pipeline.Fix
	}
	collected := make(chan []outcome, 1)
	go func() {
		var out []outcome
		for fix := range p.Fixes() {
			out = append(out, outcome{fix})
		}
		collected <- out
	}()

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	start := time.Now()
	reports := 0
	err = llrp.Replay(f, false, func(rec llrp.RecordedMessage) error {
		if rec.Message.Type != llrp.MsgROAccessReport {
			return nil
		}
		rep, err := llrp.UnmarshalROAccessReport(rec.Message.Payload)
		if err != nil {
			return err
		}
		reports++
		// Unknown readers in a capture are skipped, as before;
		// anything else is fatal.
		if err := p.Ingest(rep); err != nil && !errors.Is(err, pipeline.ErrUnknownReader) {
			return err
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	p.Drain()
	elapsed := time.Since(start)
	out := <-collected
	if plane != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		plane.Shutdown(ctx)
		cancel()
	}

	sort.Slice(out, func(i, j int) bool { return out[i].fix.Seq < out[j].fix.Seq })
	fixes, misses := 0, 0
	for _, o := range out {
		if o.fix.Err != nil {
			misses++
			fmt.Printf("seq %d: no fix (%v)\n", o.fix.Seq, o.fix.Err)
			continue
		}
		fixes++
		fmt.Printf("seq %d: fix (%.2f, %.2f) confidence %.2f\n",
			o.fix.Seq, o.fix.Pos.X, o.fix.Pos.Y, o.fix.Confidence)
	}
	st := p.Stats()
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("replay complete: %d fixes, %d misses\n", fixes, misses)
	fmt.Printf("throughput: %d reports (%d spectra) in %.3fs with %d workers = %.1f reports/s\n",
		reports, st.SpectraComputed, elapsed.Seconds(), w,
		float64(reports)/elapsed.Seconds())
	if st.SequencesEvicted > 0 || st.LateReports > 0 || st.PendingSequences > 0 {
		fmt.Printf("warning: %d incomplete sequences evicted, %d still incomplete at EOF, %d late reports\n",
			st.SequencesEvicted, st.PendingSequences, st.LateReports)
	}
}

func preset(name string) (sim.Config, error) {
	switch name {
	case "library":
		return sim.LibraryConfig(), nil
	case "laboratory", "lab":
		return sim.LaboratoryConfig(), nil
	case "hall":
		return sim.HallConfig(), nil
	case "table":
		return sim.TableConfig(), nil
	default:
		return sim.Config{}, fmt.Errorf("unknown environment %q", name)
	}
}

// logger is the diagnostic sink; replay results still go to stdout so
// the tool stays pipeline-friendly.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func fatal(err error) {
	logger.Error("dwatch-replay failed", "error", err)
	os.Exit(1)
}
