// Command dwatch-replay re-runs localization over a recorded LLRP
// session (written by dwatchd -record): the offline workflow for tuning
// detection thresholds against captured traffic without the readers.
//
// Usage:
//
//	dwatch-replay -in session.dwrl [-env hall] [-drop-floor 0.2]
package main

import (
	"flag"
	"fmt"
	"os"

	"dwatch/internal/dwatch"
	"dwatch/internal/llrp"
	"dwatch/internal/loc"
	"dwatch/internal/pmusic"
	"dwatch/internal/rf"
	"dwatch/internal/sim"
)

func main() {
	in := flag.String("in", "", "record file written by dwatchd -record")
	env := flag.String("env", "hall", "environment preset (array geometry)")
	dropFloor := flag.Float64("drop-floor", 0, "override the per-path drop floor (0 = default)")
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	cfg, err := preset(*env)
	if err != nil {
		fatal(err)
	}
	sc, err := sim.Build(cfg)
	if err != nil {
		fatal(err)
	}
	arrays := map[string]*rf.Array{}
	readers := map[string]bool{}
	for _, r := range sc.Readers {
		arrays[r.ID] = r.Array
		readers[r.ID] = true
	}
	fuser := dwatch.NewFuser(arrays, dwatch.Config{DropFloor: *dropFloor})

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	rounds := map[string]int{}
	online := map[uint32]map[string]map[string]*pmusic.Spectrum{}
	fixes, misses := 0, 0

	err = llrp.Replay(f, false, func(rec llrp.RecordedMessage) error {
		if rec.Message.Type != llrp.MsgROAccessReport {
			return nil
		}
		rep, err := llrp.UnmarshalROAccessReport(rec.Message.Payload)
		if err != nil {
			return err
		}
		if !readers[rep.ReaderID] {
			return nil
		}
		arr := arrays[rep.ReaderID]
		spectra := map[string]*pmusic.Spectrum{}
		for _, tr := range rep.Reports {
			x, err := dwatch.RawSnapshotsToMatrix(tr.Snapshot)
			if err != nil {
				continue
			}
			sp, err := pmusic.Compute(x, arr, pmusic.Options{})
			if err != nil {
				continue
			}
			spectra[string(tr.EPC)] = sp
		}
		round := rounds[rep.ReaderID]
		rounds[rep.ReaderID] = round + 1
		if round < 2 {
			for epc, sp := range spectra {
				fuser.AddBaseline(rep.ReaderID, []byte(epc), sp)
			}
			if round == 1 {
				fuser.FinishBaseline()
			}
			return nil
		}
		bySeq := online[rep.Seq]
		if bySeq == nil {
			bySeq = map[string]map[string]*pmusic.Spectrum{}
			online[rep.Seq] = bySeq
		}
		bySeq[rep.ReaderID] = spectra
		if len(bySeq) < len(sc.Readers) {
			return nil
		}
		delete(online, rep.Seq)
		var views []*loc.View
		for _, rd := range sc.Readers {
			if on := bySeq[rd.ID]; on != nil {
				if v := fuser.BuildView(rd.ID, on); v != nil {
					views = append(views, v)
				}
			}
		}
		if len(views) < 2 {
			misses++
			return nil
		}
		res, lerr := loc.Localize(views, sc.Grid, loc.Options{})
		if lerr != nil {
			misses++
			fmt.Printf("seq %d: no fix (%v)\n", rep.Seq, lerr)
			return nil
		}
		fixes++
		fmt.Printf("seq %d: fix (%.2f, %.2f) confidence %.2f\n", rep.Seq, res.Pos.X, res.Pos.Y, res.Confidence)
		return nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replay complete: %d fixes, %d misses\n", fixes, misses)
}

func preset(name string) (sim.Config, error) {
	switch name {
	case "library":
		return sim.LibraryConfig(), nil
	case "laboratory", "lab":
		return sim.LaboratoryConfig(), nil
	case "hall":
		return sim.HallConfig(), nil
	case "table":
		return sim.TableConfig(), nil
	default:
		return sim.Config{}, fmt.Errorf("unknown environment %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwatch-replay:", err)
	os.Exit(1)
}
