// Command dwatch-replay re-runs localization over a recorded LLRP
// session (written by dwatchd -record): the offline workflow for tuning
// detection thresholds against captured traffic without the readers.
//
// Replay pumps the recorded reports through the same streaming
// pipeline dwatchd serves with, so the worker pool parallelizes the
// spectrum computation: -workers N trades cores for wall time, and the
// summary reports the achieved report throughput.
//
// Usage:
//
//	dwatch-replay -in session.dwrl [-env hall] [-drop-floor 0.2] [-workers N]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"dwatch/internal/dwatch"
	"dwatch/internal/llrp"
	"dwatch/internal/pipeline"
	"dwatch/internal/rf"
	"dwatch/internal/sim"
)

func main() {
	in := flag.String("in", "", "record file written by dwatchd -record")
	env := flag.String("env", "hall", "environment preset (array geometry)")
	dropFloor := flag.Float64("drop-floor", 0, "override the per-path drop floor (0 = default)")
	workers := flag.Int("workers", 0, "spectrum worker pool size (0 = GOMAXPROCS)")
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	cfg, err := preset(*env)
	if err != nil {
		fatal(err)
	}
	sc, err := sim.Build(cfg)
	if err != nil {
		fatal(err)
	}
	arrays := map[string]*rf.Array{}
	for _, r := range sc.Readers {
		arrays[r.ID] = r.Array
	}

	p, err := pipeline.New(pipeline.Config{
		Arrays:  arrays,
		Grid:    sc.Grid,
		Workers: *workers,
		Fuser:   dwatch.Config{DropFloor: *dropFloor},
	})
	if err != nil {
		fatal(err)
	}
	p.Start()

	// Collect fixes concurrently; they may complete out of seq order,
	// so buffer and sort for a stable report.
	type outcome struct {
		fix pipeline.Fix
	}
	collected := make(chan []outcome, 1)
	go func() {
		var out []outcome
		for fix := range p.Fixes() {
			out = append(out, outcome{fix})
		}
		collected <- out
	}()

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	start := time.Now()
	reports := 0
	err = llrp.Replay(f, false, func(rec llrp.RecordedMessage) error {
		if rec.Message.Type != llrp.MsgROAccessReport {
			return nil
		}
		rep, err := llrp.UnmarshalROAccessReport(rec.Message.Payload)
		if err != nil {
			return err
		}
		reports++
		// Unknown readers in a capture are skipped, as before;
		// anything else is fatal.
		if err := p.Ingest(rep); err != nil && !errors.Is(err, pipeline.ErrUnknownReader) {
			return err
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	p.Drain()
	elapsed := time.Since(start)
	out := <-collected

	sort.Slice(out, func(i, j int) bool { return out[i].fix.Seq < out[j].fix.Seq })
	fixes, misses := 0, 0
	for _, o := range out {
		if o.fix.Err != nil {
			misses++
			fmt.Printf("seq %d: no fix (%v)\n", o.fix.Seq, o.fix.Err)
			continue
		}
		fixes++
		fmt.Printf("seq %d: fix (%.2f, %.2f) confidence %.2f\n",
			o.fix.Seq, o.fix.Pos.X, o.fix.Pos.Y, o.fix.Confidence)
	}
	st := p.Stats()
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("replay complete: %d fixes, %d misses\n", fixes, misses)
	fmt.Printf("throughput: %d reports (%d spectra) in %.3fs with %d workers = %.1f reports/s\n",
		reports, st.SpectraComputed, elapsed.Seconds(), w,
		float64(reports)/elapsed.Seconds())
	if st.SequencesEvicted > 0 || st.LateReports > 0 || st.PendingSequences > 0 {
		fmt.Printf("warning: %d incomplete sequences evicted, %d still incomplete at EOF, %d late reports\n",
			st.SequencesEvicted, st.PendingSequences, st.LateReports)
	}
}

func preset(name string) (sim.Config, error) {
	switch name {
	case "library":
		return sim.LibraryConfig(), nil
	case "laboratory", "lab":
		return sim.LaboratoryConfig(), nil
	case "hall":
		return sim.HallConfig(), nil
	case "table":
		return sim.TableConfig(), nil
	default:
		return sim.Config{}, fmt.Errorf("unknown environment %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwatch-replay:", err)
	os.Exit(1)
}
