// Command dwatch-replay re-runs localization over recorded LLRP
// traffic: the offline workflow for tuning detection thresholds
// against captured deployments, and the throughput regression harness
// for the streaming pipeline.
//
// It replays two capture formats through internal/replay:
//
//   - a WAL directory written by dwatchd -wal-dir (-wal-dir here too),
//     the native segmented, checksummed format — replay stops cleanly
//     at the first damaged record and reports where;
//   - a legacy stream written by dwatchd -record (-in), deprecated but
//     still replayable; -convert graduates one into WAL segments.
//
// Replay paces at -speed× real time (0 = unthrottled: the pipeline is
// fed as fast as it accepts — the regression-harness mode). The run
// summary reports reports/s, spectra/s, latency digests, and a fix
// parity hash: SHA-256 over the seq-sorted fixes' raw float bits, so
// two runs over the same capture with the same configuration can be
// compared bit for bit. -json emits the summary as one JSON document
// on stdout for scripts (scripts/replay-smoke.sh diffs parity hashes
// across a crash/recover cycle).
//
// -eigensolver and -asm-shards pin the pipeline configuration for A/B
// replays of one capture (scripts/replay-ab.sh): the fusion shard
// count never moves the parity hash, while jacobi-vs-qr eigensolvers
// differ inside the documented tolerance (see DESIGN.md "Scaling the
// hot path").
//
// Usage:
//
//	dwatch-replay -wal-dir DIR [-env hall] [-speed N] [-workers N]
//	              [-eigensolver auto|qr|jacobi] [-asm-shards N] [-json]
//	dwatch-replay -in session.dwrl [...]
//	dwatch-replay -convert -in session.dwrl -wal-dir DIR
//	dwatch-replay -convert -in CORPUS_DIR -wal-dir ROOT   (batch: each *.dwrl → ROOT/<stem>/)
//	dwatch-replay ... [-http 127.0.0.1:8080]
//
// -http serves the observability plane during the replay — useful for
// watching /metrics or the /api/v1/positions SSE stream while a long
// capture re-runs, and for profiling via /debug/pprof.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"dwatch/internal/dwatch"
	"dwatch/internal/health"
	"dwatch/internal/music"
	"dwatch/internal/obs"
	"dwatch/internal/pipeline"
	"dwatch/internal/pmusic"
	"dwatch/internal/replay"
	"dwatch/internal/rf"
	"dwatch/internal/serve"
	"dwatch/internal/sim"
	"dwatch/internal/tracing"
	"dwatch/internal/wal"
)

func main() {
	in := flag.String("in", "", "legacy record file written by dwatchd -record (deprecated format); with -convert, may be a directory of *.dwrl fixtures")
	walDir := flag.String("wal-dir", "", "WAL directory written by dwatchd -wal-dir (with -convert: the destination)")
	convert := flag.Bool("convert", false, "convert -in (legacy) into WAL segments at -wal-dir instead of replaying")
	env := flag.String("env", "hall", "environment preset (array geometry)")
	speed := flag.Float64("speed", 0, "real-time multiplier: 1 = original pacing, 10 = 10x, 0 = unthrottled")
	dropFloor := flag.Float64("drop-floor", 0, "override the per-path drop floor (0 = default)")
	workers := flag.Int("workers", 0, "spectrum worker pool size (0 = GOMAXPROCS)")
	eigensolver := flag.String("eigensolver", "", "eigendecomposition backend for A/B replays: auto, qr, or jacobi (empty = auto)")
	asmShards := flag.Int("asm-shards", 0, "fusion shard count for A/B replays (0 = GOMAXPROCS, 1 = serialized fusion)")
	jsonOut := flag.Bool("json", false, "emit the run summary as JSON on stdout")
	httpAddr := flag.String("http", "", "serve the observability plane (metrics, health, positions, pprof) on this address during replay; empty = disabled")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	flag.Parse()
	switch *logFormat {
	case "", "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fatal(fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat))
	}

	if *convert {
		if err := runConvert(*in, *walDir); err != nil {
			fatal(err)
		}
		return
	}
	if (*in == "") == (*walDir == "") {
		fatal(fmt.Errorf("exactly one of -wal-dir or -in is required (or -convert with both)"))
	}
	if *speed < 0 {
		fatal(fmt.Errorf("-speed %v: must be >= 0", *speed))
	}

	cfg, err := preset(*env)
	if err != nil {
		fatal(err)
	}
	sc, err := sim.Build(cfg)
	if err != nil {
		fatal(err)
	}
	arrays := map[string]*rf.Array{}
	for _, r := range sc.Readers {
		arrays[r.ID] = r.Array
	}
	dep := pipeline.Deployment{Arrays: arrays, Grid: sc.Grid}

	var src replay.Source
	if *walDir != "" {
		s, err := replay.OpenWAL(*walDir)
		if err != nil {
			fatal(err)
		}
		src = s
	} else {
		logger.Warn("-in replays the deprecated legacy format; convert with -convert and use -wal-dir")
		s, err := replay.OpenLegacy(*in)
		if err != nil {
			fatal(err)
		}
		src = s
	}
	defer src.Close()

	solver, err := music.ParseEigensolver(*eigensolver)
	if err != nil {
		fatal(err)
	}
	popts := []pipeline.Option{
		pipeline.WithWorkers(*workers),
		pipeline.WithAssemblerShards(*asmShards),
		pipeline.WithPMusic(pmusic.Options{Music: music.Options{Eigensolver: solver}}),
		pipeline.WithFuser(dwatch.Config{DropFloor: *dropFloor}),
		pipeline.WithLogger(logger),
	}
	var plane *serve.Server
	var onFix func(pipeline.Fix)
	if *httpAddr != "" {
		reg := obs.NewRegistry()
		hub := serve.NewHub(serve.WithHubObs(reg))
		tracer := tracing.New()
		mon := health.New(reg, health.Options{})
		obs.RegisterBuildInfo(reg)
		obs.RegisterRuntime(reg)
		popts = append(popts,
			pipeline.WithObs(reg),
			pipeline.WithTracer(tracer),
			pipeline.WithHealth(mon),
		)
		envName := sc.Name
		onFix = func(fix pipeline.Fix) {
			hub.Publish(serve.Position{
				Env: envName, Seq: fix.Seq,
				X: fix.Pos.X, Y: fix.Pos.Y,
				Confidence: fix.Confidence, Views: fix.Views,
				Readers: fix.Readers, Degraded: fix.Degraded,
				TraceID: fix.TraceID,
				Time:    time.Now(),
			})
		}
		plane = serve.New(
			serve.WithRegistry(reg),
			serve.WithHub(hub),
			serve.WithTracer(tracer),
			serve.WithHealth(mon),
			serve.WithLogger(logger),
		)
		planeAddr, err := plane.Start(*httpAddr)
		if err != nil {
			fatal(err)
		}
		logger.Info("observability plane up", "url", "http://"+planeAddr.String()+"/")
	}

	sum, err := replay.Run(src, dep, replay.Options{
		Speed:    *speed,
		Pipeline: popts,
		Logger:   logger,
		OnFix:    onFix,
	})
	if plane != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		plane.Shutdown(ctx)
		cancel()
	}
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fatal(err)
		}
	} else {
		printSummary(sum)
	}
	if sum.SourceError != "" || sum.Damage != nil {
		// The capture ended early (torn tail or damaged segment): the
		// replay itself is still valid, but scripts should know.
		os.Exit(2)
	}
}

func printSummary(sum *replay.Summary) {
	fmt.Printf("replay complete: %d fixes, %d misses (parity %s)\n",
		sum.Fixes, sum.Misses, sum.FixParity)
	fmt.Printf("throughput: %d reports (%d spectra) in %.3fs = %.1f reports/s, %.1f spectra/s\n",
		sum.Reports, sum.Spectra, sum.WallSeconds, sum.ReportsPerSec, sum.SpectraPerSec)
	if sum.ComputeLatency.Count > 0 {
		fmt.Printf("latency: compute p50 %.2fms p99 %.2fms, fuse p50 %.2fms p99 %.2fms\n",
			1e3*sum.ComputeLatency.P50, 1e3*sum.ComputeLatency.P99,
			1e3*sum.FuseLatency.P50, 1e3*sum.FuseLatency.P99)
	}
	if sum.SkippedType > 0 || sum.SkippedUnknown > 0 || sum.BadReports > 0 {
		fmt.Printf("skipped: %d non-report messages, %d unknown-reader reports, %d bad payloads\n",
			sum.SkippedType, sum.SkippedUnknown, sum.BadReports)
	}
	if sum.SourceError != "" {
		fmt.Printf("warning: capture ended early: %s\n", sum.SourceError)
	}
	if sum.Damage != nil {
		fmt.Printf("warning: WAL damage in %s at offset %d: %s\n",
			sum.Damage.Segment, sum.Damage.Offset, sum.Damage.Reason)
	}
}

// runConvert graduates a legacy capture into WAL segments, preserving
// timestamps so pacing still works. When -in is a directory, every
// *.dwrl fixture inside becomes its own WAL at <wal-dir>/<stem>/ — the
// per-environment layout dwatchd -env-dir expects, so a corpus of
// legacy captures converts into a fleet-replayable root in one pass.
func runConvert(in, dir string) error {
	if in == "" || dir == "" {
		return fmt.Errorf("-convert needs both -in (legacy source) and -wal-dir (destination)")
	}
	if st, err := os.Stat(in); err == nil && st.IsDir() {
		counts, err := wal.ConvertLegacyDir(in, dir, wal.WithLogger(logger))
		for stem, n := range counts {
			logger.Info("converted legacy capture", "in", stem+".dwrl",
				"wal_dir", dir+"/"+stem, "records", n)
			fmt.Printf("converted %s.dwrl: %d records into %s/%s\n", stem, n, dir, stem)
		}
		if err != nil {
			return fmt.Errorf("batch convert: %w", err)
		}
		fmt.Printf("converted %d fixtures into %s\n", len(counts), dir)
		return nil
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := wal.Open(dir, wal.WithLogger(logger))
	if err != nil {
		return err
	}
	n, err := wal.ConvertLegacy(f, w)
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("converted %d records, then: %w", n, err)
	}
	st := w.Status()
	logger.Info("converted legacy capture", "in", in, "wal_dir", dir,
		"records", n, "segments", st.Segments, "bytes", st.Bytes)
	fmt.Printf("converted %d records into %s (%d segments, %d bytes)\n", n, dir, st.Segments, st.Bytes)
	return nil
}

func preset(name string) (sim.Config, error) {
	switch name {
	case "library":
		return sim.LibraryConfig(), nil
	case "laboratory", "lab":
		return sim.LaboratoryConfig(), nil
	case "hall":
		return sim.HallConfig(), nil
	case "table":
		return sim.TableConfig(), nil
	default:
		return sim.Config{}, fmt.Errorf("unknown environment %q", name)
	}
}

// logger is the diagnostic sink; replay results still go to stdout so
// the tool stays pipeline-friendly.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func fatal(err error) {
	logger.Error("dwatch-replay failed", "error", err)
	os.Exit(1)
}
