// Command dwatch-plan is the deployment planner Section 8's deadzone
// discussion implies: given an environment, it maps which positions a
// device-free target could stand in without blocking paths toward at
// least two readers (undetectable "deadzones"), and shows how adding
// tags shrinks them — the paper's prescribed mitigation.
//
// Usage:
//
//	dwatch-plan [-env hall] [-cell 0.25] [-min-readers 2] [-tags-sweep "21,31,41"]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dwatch/internal/channel"
	"dwatch/internal/geom"
	"dwatch/internal/sim"
)

func main() {
	env := flag.String("env", "hall", "environment preset: library, laboratory, hall")
	cell := flag.Float64("cell", 0.25, "analysis cell size (m)")
	minReaders := flag.Int("min-readers", 2, "readers required for a 2-D fix")
	sweep := flag.String("tags-sweep", "21,31,41", "tag counts to compare")
	flag.Parse()

	var counts []int
	for _, part := range strings.Split(*sweep, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad tag count %q", part))
		}
		counts = append(counts, n)
	}

	for i, n := range counts {
		cfg, err := preset(*env)
		if err != nil {
			fatal(err)
		}
		cfg.Tags = n
		sc, err := sim.Build(cfg)
		if err != nil {
			fatal(err)
		}
		template := channel.HumanTarget(geom.Pt(0, 0, 1.25))
		m, err := sc.CoverageMap(*cell, template)
		if err != nil {
			fatal(err)
		}
		rate := m.CoverageRate(*minReaders)
		dead := len(m.Deadzones(*minReaders))
		fmt.Printf("env %s, %d tags: %.0f%% of cells see ≥%d readers (%d deadzone cells)\n",
			cfg.Name, n, 100*rate, *minReaders, dead)
		if i == 0 {
			fmt.Println("\nreader-count map (digits = readers with a blocked path; '.' = invisible):")
			fmt.Println(m.Render())
		}
	}
	fmt.Println("(Section 8: \"increase the number of tags to reduce the amount of deadzones\")")
}

func preset(name string) (sim.Config, error) {
	switch name {
	case "library":
		return sim.LibraryConfig(), nil
	case "laboratory", "lab":
		return sim.LaboratoryConfig(), nil
	case "hall":
		return sim.HallConfig(), nil
	default:
		return sim.Config{}, fmt.Errorf("unknown environment %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwatch-plan:", err)
	os.Exit(1)
}
