// Command dwatch-calib demonstrates the wireless phase calibration of
// Section 4.1 against a simulated reader: it draws random RF-chain
// offsets, acquires uncalibrated snapshots of a few anchor tags with
// known positions, solves Eq. 11 with the GA+GD hybrid, and reports the
// estimation error against ground truth, alongside the Phaser-style
// baseline.
//
// Usage:
//
//	dwatch-calib [-tags N] [-antennas N] [-seed N] [-multipath]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dwatch/internal/calib"
	"dwatch/internal/channel"
	"dwatch/internal/cmatrix"
	"dwatch/internal/geom"
	"dwatch/internal/rf"
)

func main() {
	nTags := flag.Int("tags", 6, "number of calibration anchor tags")
	antennas := flag.Int("antennas", 8, "array elements")
	seed := flag.Int64("seed", 1, "random seed")
	multipath := flag.Bool("multipath", true, "include a reflector (harder)")
	flag.Parse()

	arr, err := rf.NewArray(geom.Pt(0, 0, 1.25), geom.Pt2(1, 0), *antennas)
	if err != nil {
		fatal(err)
	}
	var refl []channel.Reflector
	if *multipath {
		refl = append(refl, channel.Reflector{
			Wall: geom.NewWall(-6, 9, 6, 9, 0, 2.5), Coeff: 0.5,
		})
	}
	env := channel.NewEnv(refl)
	rng := rand.New(rand.NewSource(*seed))
	truth := calib.RandomOffsets(arr.Elements, rng)

	fmt.Printf("true RF-chain offsets (deg):")
	for _, o := range truth {
		fmt.Printf(" %+.1f", rf.Deg(o))
	}
	fmt.Println()

	var obs []calib.TagObs
	var snaps []*cmatrix.Matrix
	var plane [][]complex128
	for i := 0; i < *nTags; i++ {
		pos := geom.Pt(-2+4*rng.Float64(), 2+6*rng.Float64(), 1.25)
		x, _, err := env.Synthesize(pos, arr, nil, channel.SynthOpts{
			Snapshots: 12, NoiseStd: 0.002, PhaseOffsets: truth, Rng: rng,
		})
		if err != nil {
			fatal(err)
		}
		o, err := calib.NewTagObs(x, arr.SteeringAt(pos))
		if err != nil {
			fatal(err)
		}
		obs = append(obs, o)
		snaps = append(snaps, x)
		plane = append(plane, arr.Steering(arr.AngleTo(pos)))
		fmt.Printf("anchor tag %d at (%.2f, %.2f), LoS %.1f°\n", i+1, pos.X, pos.Y, rf.Deg(arr.AngleTo(pos)))
	}

	est, err := calib.Calibrate(arr, obs, calib.Options{Rng: rng})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("estimated offsets (deg):    ")
	for _, o := range est {
		fmt.Printf(" %+.1f", rf.Deg(o))
	}
	fmt.Println()
	fmt.Printf("d-watch error: %.4f rad (paper: < 0.05 with ≥ 4 tags)\n", calib.MeanAbsError(est, truth))

	ph, err := calib.Phaser(arr, snaps, plane)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("phaser  error: %.4f rad\n", calib.MeanAbsError(ph, truth))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwatch-calib:", err)
	os.Exit(1)
}
