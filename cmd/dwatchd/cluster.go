package main

import (
	"context"
	"errors"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dwatch/internal/api"
	"dwatch/internal/cluster"
	"dwatch/internal/fleet"
	"dwatch/internal/obs"
	"dwatch/internal/profiling"
	"dwatch/internal/serve"
)

// Clustered fleet mode (-env-dir plus -cluster): the env directory is
// a *catalog* of deployments this node can host, not a set it owns.
// Ownership comes from the gateway's directory — the agent joins,
// heartbeats, and reconciles the fleet against each response, adopting
// (WAL replay included) and draining environments as slot assignments
// move. -simulate starts traffic on each environment when this node
// adopts it and stops when the environment drains away.
func runFleetClustered(opts fleetRunOptions, reg *obs.Registry, hub *serve.Hub, f *fleet.Fleet, ring *profiling.Ring) error {
	if opts.httpAddr == "" {
		return errors.New("-cluster requires -http: the gateway proxies environment requests to this node")
	}
	catalog, ids, err := fleet.ReadConfigDir(opts.envDir)
	if err != nil {
		return err
	}

	nodeID := opts.nodeID
	if nodeID == "" {
		if nodeID, err = os.Hostname(); err != nil {
			return err
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	planeOpts := []serve.Option{
		serve.WithRegistry(reg),
		serve.WithHub(hub),
		serve.WithEnvs(f.Infos),
		serve.WithEnvLookup(f.EnvHandle),
		serve.WithReady(f.Ready),
		serve.WithFleetStats(func() api.FleetStats { return fleetStats(f) }),
		serve.WithCluster(func() api.ClusterStatus {
			st := api.ClusterStatus{Role: "node", Node: nodeID, Assignments: map[string]string{}}
			for _, id := range f.IDs() {
				st.Assignments[id] = nodeID
			}
			return st
		}),
		serve.WithLogger(logger),
	}
	planeOpts = append(planeOpts, profileOptions(ring)...)
	plane := serve.New(planeOpts...)
	planeAddr, err := plane.Start(opts.httpAddr)
	if err != nil {
		return err
	}
	advertise := opts.advertise
	if advertise == "" {
		advertise = "http://" + planeAddr.String()
	}

	var aopts []cluster.AgentOption
	aopts = append(aopts, cluster.WithAgentLogger(logger))
	if opts.simulate {
		aopts = append(aopts, cluster.WithOnAdopt(func(id string) {
			go func() {
				if err := f.Simulate(ctx, id, opts.rounds, 0, opts.simInterval); err != nil && ctx.Err() == nil {
					logger.Error("simulate failed", "env", id, "error", err)
				}
			}()
		}))
	}
	agent := cluster.NewAgent(nodeID, advertise, opts.clusterURL, f, catalog, aopts...)

	logger.Info("cluster node up", "node", nodeID, "gateway", opts.clusterURL,
		"advertise", advertise, "catalog", len(ids), "wal_root", opts.walDir)

	runDone := make(chan error, 1)
	go func() { runDone <- agent.Run(ctx) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
	case err := <-runDone:
		if err != nil && !errors.Is(err, context.Canceled) {
			logger.Error("cluster agent stopped", "error", err)
		}
	}
	agent.Close() // leaves the directory (waits for the Run loop)
	cancel()
	f.Close() // graceful drain: pipeline flush, WAL close
	sctx, scancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer scancel()
	return plane.Shutdown(sctx)
}
