// Command dwatchd is the D-Watch localization server: it listens for
// LLRP connections from RFID readers, consumes their RO_ACCESS_REPORTs
// (per-antenna I/Q snapshots per tag), maintains per-reader baseline
// AoA spectra, and prints localization fixes whenever enough readers
// have reported fresh evidence — the deployment of Section 5, where all
// backscatter packets are forwarded to a central server over Ethernet.
//
// With -simulate, dwatchd also spawns in-process simulated readers that
// connect over real TCP and stream reports from the chosen environment
// while a target walks through it, demonstrating the full network path.
//
// Usage:
//
//	dwatchd [-listen :5084] [-env hall] [-simulate] [-rounds N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"dwatch/internal/calib"
	"dwatch/internal/channel"
	"dwatch/internal/dwatch"
	"dwatch/internal/geom"
	"dwatch/internal/llrp"
	"dwatch/internal/loc"
	"dwatch/internal/pmusic"
	"dwatch/internal/reader"
	"dwatch/internal/rf"
	"dwatch/internal/sim"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5084", "LLRP listen address")
	env := flag.String("env", "hall", "environment preset (geometry shared with the readers)")
	simulate := flag.Bool("simulate", false, "spawn simulated readers and a walking target")
	rounds := flag.Int("rounds", 5, "simulated acquisition rounds")
	statePath := flag.String("state", "", "baseline state file: loaded at start when present, saved after baseline confirmation")
	recordPath := flag.String("record", "", "append every inbound RO_ACCESS_REPORT to this record file (replay with dwatch-replay)")
	flag.Parse()

	cfg, err := preset(*env)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := sim.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	srv := newServer(sc)
	srv.statePath = *statePath
	if *recordPath != "" {
		f, err := os.Create(*recordPath)
		if err != nil {
			log.Fatalf("record: %v", err)
		}
		srv.recorder = llrp.NewRecordWriter(f)
		defer srv.recorder.Close()
		log.Printf("recording reports to %s", *recordPath)
	}
	if *statePath != "" {
		if f, err := os.Open(*statePath); err == nil {
			err := srv.loadState(f)
			f.Close()
			if err != nil {
				log.Fatalf("load state %s: %v", *statePath, err)
			}
			log.Printf("baseline state restored from %s", *statePath)
		}
	}
	addr, err := srv.llrp.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("dwatchd listening on %s (env %s, %d readers expected)", addr, sc.Name, len(sc.Readers))

	done := make(chan error, 1)
	go func() { done <- srv.llrp.Serve() }()

	if *simulate {
		go func() {
			if err := runSimulatedReaders(sc, addr.String(), *rounds); err != nil {
				log.Printf("simulated readers: %v", err)
			}
			// Give the server a moment to drain, then stop.
			time.Sleep(300 * time.Millisecond)
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			srv.llrp.Shutdown(ctx)
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		srv.llrp.Shutdown(ctx)
		<-done
	case err := <-done:
		if err != nil && err != llrp.ErrServerClosed {
			log.Fatal(err)
		}
	}
	srv.summary()
}

func preset(name string) (sim.Config, error) {
	switch name {
	case "library":
		return sim.LibraryConfig(), nil
	case "laboratory", "lab":
		return sim.LaboratoryConfig(), nil
	case "hall":
		return sim.HallConfig(), nil
	case "table":
		return sim.TableConfig(), nil
	default:
		return sim.Config{}, fmt.Errorf("unknown environment %q", name)
	}
}

// server is the localization state machine fed by LLRP reports: the
// first two reports per reader are baseline rounds (the Fuser's
// stability confirmation), everything after is online evidence.
type server struct {
	llrp *llrp.Server
	sc   *sim.Scenario

	mu        sync.Mutex
	statePath string
	recorder  *llrp.RecordWriter
	fuser     *dwatch.Fuser
	// rounds counts reports per reader; the first two feed the baseline.
	rounds map[string]int
	// online[seq][reader][epc] groups online spectra by acquisition
	// sequence so evidence from different rounds never mixes.
	online map[uint32]map[string]map[string]*pmusic.Spectrum
	fixes  int
}

func newServer(sc *sim.Scenario) *server {
	arrays := map[string]*rf.Array{}
	for _, r := range sc.Readers {
		arrays[r.ID] = r.Array
	}
	s := &server{
		sc:     sc,
		fuser:  dwatch.NewFuser(arrays, dwatch.Config{}),
		rounds: map[string]int{},
		online: map[uint32]map[string]map[string]*pmusic.Spectrum{},
	}
	s.llrp = &llrp.Server{Handler: llrp.HandlerFunc(s.handle)}
	return s
}

func (s *server) handle(conn *llrp.Conn, msg llrp.Message) error {
	switch msg.Type {
	case llrp.MsgKeepalive:
		return conn.SendWithID(llrp.MsgKeepaliveAck, msg.ID, nil)
	case llrp.MsgGetReaderCapabilitiesResponse:
		caps, err := llrp.UnmarshalReaderCapabilities(msg.Payload)
		if err != nil {
			return err
		}
		rd := s.arrayFor(caps.ReaderID)
		if rd == nil {
			log.Printf("capabilities from unknown reader %q", caps.ReaderID)
			return nil
		}
		if int(caps.Antennas) != rd.Array.Elements {
			log.Printf("reader %q reports %d antennas, deployment expects %d — reports will be rejected",
				caps.ReaderID, caps.Antennas, rd.Array.Elements)
			return nil
		}
		log.Printf("reader %q online: %s, %d antennas", caps.ReaderID, caps.Model, caps.Antennas)
		// Control plane: install and start the acquisition spec — the
		// paper's cadence (0.1 s period, 10 snapshots per tag).
		spec := llrp.ROSpec{ID: 1, PeriodMs: 100, SnapshotsPerTag: 10}
		if _, err := conn.Send(llrp.MsgStartROSpec, spec.Marshal()); err != nil {
			return err
		}
		return nil
	case llrp.MsgROAccessReport:
		rep, err := llrp.UnmarshalROAccessReport(msg.Payload)
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.recorder != nil {
			if err := s.recorder.Record(time.Now(), msg); err != nil {
				log.Printf("record: %v", err)
			}
		}
		s.mu.Unlock()
		s.ingest(rep)
	}
	return nil
}

// arrayFor maps a reader ID to its array geometry (shared deployment
// knowledge: the server knows where its readers are mounted).
func (s *server) arrayFor(id string) *reader.Reader {
	for _, r := range s.sc.Readers {
		if r.ID == id {
			return r
		}
	}
	return nil
}

func (s *server) ingest(rep *llrp.ROAccessReport) {
	rd := s.arrayFor(rep.ReaderID)
	if rd == nil {
		log.Printf("report from unknown reader %q", rep.ReaderID)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	round := s.rounds[rep.ReaderID]
	s.rounds[rep.ReaderID] = round + 1

	spectra := map[string]*pmusic.Spectrum{}
	for _, tr := range rep.Reports {
		x, err := dwatch.RawSnapshotsToMatrix(tr.Snapshot)
		if err != nil {
			continue
		}
		sp, err := pmusic.Compute(x, rd.Array, pmusic.Options{})
		if err != nil {
			continue
		}
		spectra[string(tr.EPC)] = sp
	}

	if round < 2 {
		// Baseline rounds.
		for epc, sp := range spectra {
			s.fuser.AddBaseline(rep.ReaderID, []byte(epc), sp)
		}
		if round == 1 {
			s.fuser.FinishBaseline()
			log.Printf("baseline confirmed for %s (%d tags)", rep.ReaderID, len(spectra))
			s.maybeSaveState()
		}
		return
	}
	bySeq := s.online[rep.Seq]
	if bySeq == nil {
		bySeq = map[string]map[string]*pmusic.Spectrum{}
		s.online[rep.Seq] = bySeq
	}
	bySeq[rep.ReaderID] = spectra
	if len(bySeq) == len(s.sc.Readers) {
		s.tryLocalize(rep.Seq, bySeq)
		delete(s.online, rep.Seq)
	}
}

// tryLocalize builds drop views for one complete acquisition sequence
// and runs the likelihood localizer. Called with s.mu held.
func (s *server) tryLocalize(seq uint32, bySeq map[string]map[string]*pmusic.Spectrum) {
	var views []*loc.View
	for _, rd := range s.sc.Readers {
		if on := bySeq[rd.ID]; on != nil {
			if v := s.fuser.BuildView(rd.ID, on); v != nil {
				views = append(views, v)
			}
		}
	}
	if len(views) < 2 {
		log.Printf("seq %d: no fix (evidence from %d readers)", seq, len(views))
		return
	}
	res, err := loc.Localize(views, s.sc.Grid, loc.Options{})
	if err != nil {
		log.Printf("seq %d: no fix: %v", seq, err)
		return
	}
	s.fixes++
	log.Printf("seq %d: fix #%d (%.2f, %.2f) confidence %.2f", seq, s.fixes, res.Pos.X, res.Pos.Y, res.Confidence)
}

// loadState restores a saved baseline. Called before serving.
func (s *server) loadState(r *os.File) error {
	sys := dwatch.New(s.sc, dwatch.Config{})
	if err := sys.LoadState(r); err != nil {
		return err
	}
	s.fuser = sys.Fuser()
	// Mark all readers past the baseline phase.
	for _, rd := range s.sc.Readers {
		s.rounds[rd.ID] = 2
	}
	return nil
}

// maybeSaveState persists the baseline once every reader confirmed.
// Called with s.mu held.
func (s *server) maybeSaveState() {
	if s.statePath == "" {
		return
	}
	for _, rd := range s.sc.Readers {
		if s.rounds[rd.ID] < 2 {
			return
		}
	}
	sys := dwatch.New(s.sc, dwatch.Config{})
	sys.SetFuser(s.fuser)
	f, err := os.Create(s.statePath)
	if err != nil {
		log.Printf("save state: %v", err)
		return
	}
	defer f.Close()
	if err := sys.SaveState(f); err != nil {
		log.Printf("save state: %v", err)
		return
	}
	log.Printf("baseline state saved to %s", s.statePath)
}

func (s *server) summary() {
	s.mu.Lock()
	defer s.mu.Unlock()
	log.Printf("done: %d fixes emitted", s.fixes)
}

// runSimulatedReaders connects one LLRP client per scenario reader and
// streams reports: first a no-target baseline round, then rounds with a
// target walking across the room.
func runSimulatedReaders(sc *sim.Scenario, addr string, rounds int) error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	conns := make([]*llrp.Conn, len(sc.Readers))
	for i, rd := range sc.Readers {
		c, err := llrp.Dial(ctx, addr)
		if err != nil {
			return err
		}
		defer c.Close()
		conns[i] = c
		// Announce capabilities (real LLRP does this via the
		// GET_READER_CAPABILITIES exchange; our readers volunteer it).
		caps := llrp.ReaderCapabilities{
			ReaderID: rd.ID,
			Antennas: uint16(rd.Array.Elements),
			Model:    "speedway-r420-sim",
		}
		if _, err := c.Send(llrp.MsgGetReaderCapabilitiesResponse, caps.Marshal()); err != nil {
			return err
		}
	}
	// Each reader waits for its StartROSpec before transmitting, as the
	// protocol demands; the spec's snapshot count drives acquisition.
	snapshotsPerTag := 10
	for i := range conns {
		msg, err := conns[i].Recv()
		if err != nil {
			return err
		}
		if msg.Type != llrp.MsgStartROSpec {
			return fmt.Errorf("reader %d: expected StartROSpec, got type %d", i, msg.Type)
		}
		spec, err := llrp.UnmarshalROSpec(msg.Payload)
		if err != nil {
			return err
		}
		if int(spec.SnapshotsPerTag) > 0 {
			snapshotsPerTag = int(spec.SnapshotsPerTag)
		}
	}

	seq := uint32(0)
	send := func(targets []channel.Target) error {
		seq++
		for i, rd := range sc.Readers {
			snaps, err := rd.Acquire(sc.Env, sc.Tags, targets, reader.AcquireOptions{Snapshots: snapshotsPerTag})
			if err != nil {
				return err
			}
			rep := &llrp.ROAccessReport{ReaderID: rd.ID, Seq: seq}
			for _, sn := range snaps {
				// The readers stream *calibrated* samples: a production
				// deployment runs the Section 4.1 calibration once at
				// power-on; here the simulated reader knows its own
				// offsets (wired ground truth) for brevity.
				x, err := calib.Apply(sn.Data, rd.Offsets)
				if err != nil {
					return err
				}
				snapshot := make([][]complex128, x.Rows)
				for r := 0; r < x.Rows; r++ {
					snapshot[r] = append([]complex128(nil), x.Data[r*x.Cols:(r+1)*x.Cols]...)
				}
				rep.Reports = append(rep.Reports, llrp.TagReport{
					EPC:          sn.Tag.EPC,
					AntennaID:    1,
					PeakRSSIcdBm: sn.RSSIcdBm,
					Snapshot:     snapshot,
				})
			}
			payload, err := rep.Marshal()
			if err != nil {
				return err
			}
			if _, err := conns[i].Send(llrp.MsgROAccessReport, payload); err != nil {
				return err
			}
		}
		return nil
	}

	// Two baseline rounds (no target): the server's stability filter
	// needs a confirmation round.
	if err := send(nil); err != nil {
		return err
	}
	if err := send(nil); err != nil {
		return err
	}
	// Target walks across the middle of the room.
	for k := 0; k < rounds; k++ {
		f := float64(k+1) / float64(rounds+1)
		pos := geom.Pt(sc.Cfg.Width*(0.25+0.5*f), sc.Cfg.Depth/2, 1.25)
		log.Printf("simulated target at (%.2f, %.2f)", pos.X, pos.Y)
		if err := send([]channel.Target{channel.HumanTarget(pos)}); err != nil {
			return err
		}
	}
	return nil
}
