// Command dwatchd is the D-Watch localization server: it listens for
// LLRP connections from RFID readers, consumes their RO_ACCESS_REPORTs
// (per-antenna I/Q snapshots per tag), maintains per-reader baseline
// AoA spectra, and prints localization fixes whenever enough readers
// have reported fresh evidence — the deployment of Section 5, where all
// backscatter packets are forwarded to a central server over Ethernet.
//
// Reports flow through the internal/pipeline streaming pipeline:
// ingest validates and enqueues per-tag snapshot jobs, a worker pool
// computes P-MUSIC spectra in parallel, and a sequence assembler with
// TTL eviction fuses complete acquisition rounds into fixes, so one
// slow or dead reader can neither stall the others nor leak memory.
//
// With -simulate, dwatchd also spawns in-process simulated readers that
// connect over real TCP and stream reports from the chosen environment
// while a target walks through it, demonstrating the full network path.
//
// With -dial or -chaos, dwatchd runs in supervised mode instead: it
// dials its readers (the real LLRP direction) and a session.Supervisor
// keeps every connection alive with keepalive probes, jittered-backoff
// reconnects, and per-reader circuit breakers. When a reader dies the
// pipeline keeps fusing degraded fixes from the remaining live quorum.
// -chaos demonstrates the whole loop in-process: simulated reader
// endpoints are dialed through a deterministic fault injector and one
// of them is killed and restarted mid-run.
//
// Usage:
//
//	dwatchd [-listen :5084] [-env hall] [-simulate] [-rounds N]
//	        [-workers N] [-queue N] [-overload block|drop-oldest]
//	        [-http 127.0.0.1:8080]
//	        [-wal-dir DIR] [-wal-fsync interval=1s] [-wal-retention segments=16]
//	dwatchd -dial reader-1=host:port,reader-2=host:port [...]
//	dwatchd -chaos [-chaos-flap 2s] [-chaos-seed N] [-env table] [...]
//
// -http serves the observability plane (opt-in, off by default):
// Prometheus /metrics, /healthz, /readyz (ready once every reader's
// baseline is confirmed), /api/v1/stats, /api/v1/positions (latest fix
// per environment, or a live SSE stream with ?stream=1),
// /api/v1/traces (per-sequence pipeline traces; append /{id} for one
// trace, ?format=chrome for a chrome://tracing export), /api/v1/health
// (per-reader RF health: read rates, path power drift, calibration
// residuals), /api/v1/wal (ingest WAL status and recovery outcome),
// and /debug/pprof/* for profiling the spectrum and fusion hot paths.
// -pprof is a deprecated alias for -http.
//
// -wal-dir enables the durable ingest WAL (internal/wal): every
// accepted RO_ACCESS_REPORT is appended to a segmented, checksummed
// log before dispatch, and on restart the surviving records are
// replayed through the pipeline — a crash mid-run loses at most the
// torn tail of the final record. -wal-fsync trades throughput for
// machine-crash durability; -wal-retention bounds the on-disk
// footprint. Replay or benchmark a WAL offline with dwatch-replay.
//
// Logs are structured (log/slog); -log-format json switches the sink
// from human-readable text to JSON lines.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"dwatch/internal/api"
	"dwatch/internal/api/adapt"
	"dwatch/internal/calib"
	"dwatch/internal/channel"
	"dwatch/internal/dwatch"
	"dwatch/internal/geom"
	"dwatch/internal/health"
	"dwatch/internal/llrp"
	"dwatch/internal/obs"
	"dwatch/internal/pipeline"
	"dwatch/internal/profiling"
	"dwatch/internal/reader"
	"dwatch/internal/rf"
	"dwatch/internal/serve"
	"dwatch/internal/sim"
	"dwatch/internal/tracing"
	"dwatch/internal/wal"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5084", "LLRP listen address")
	env := flag.String("env", "hall", "environment preset (geometry shared with the readers)")
	simulate := flag.Bool("simulate", false, "spawn simulated readers and a walking target")
	rounds := flag.Int("rounds", 5, "simulated acquisition rounds")
	statePath := flag.String("state", "", "baseline state file: loaded at start when present, saved after baseline confirmation")
	recordPath := flag.String("record", "", "append every inbound RO_ACCESS_REPORT to this record file (deprecated legacy format; prefer -wal-dir, convert with dwatch-replay -convert)")
	walDir := flag.String("wal-dir", "", "durable ingest WAL directory: every accepted report is appended before dispatch, and surviving records are replayed through the pipeline on start")
	walFsync := flag.String("wal-fsync", "interval", "WAL fsync policy: always, never, interval, or interval=DURATION")
	walRetention := flag.String("wal-retention", "", "WAL retention bounds, e.g. segments=16,bytes=2GiB,age=24h (empty = keep everything)")
	walSegBytes := flag.String("wal-segment-bytes", "", "WAL segment rotation size, e.g. 64MiB (empty = default)")
	workers := flag.Int("workers", 0, "spectrum worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "snapshot queue size (0 = default)")
	overload := flag.String("overload", "block", "full-queue policy: block or drop-oldest")
	seqTTL := flag.Duration("seq-ttl", 30*time.Second, "evict incomplete acquisition sequences after this long")
	httpAddr := flag.String("http", "", "serve the observability plane (metrics, health, positions, pprof) on this address; empty = disabled")
	profileDir := flag.String("profile-dir", "", "continuous-profiling ring directory: periodic CPU+heap pprof captures, bounded on disk, listed on /api/v1/profiles")
	pprofAddr := flag.String("pprof", "", "deprecated alias for -http (pprof is part of the observability plane)")
	dial := flag.String("dial", "", "supervised mode: dial these reader endpoints (id=addr,id=addr) instead of listening")
	chaos := flag.Bool("chaos", false, "supervised chaos demo: dial in-process simulated readers through a fault injector and flap one mid-run")
	chaosFlap := flag.Duration("chaos-flap", 2*time.Second, "how long the chaos run keeps the flapped reader down")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the chaos fault injector and reconnect jitter")
	envDir := flag.String("env-dir", "", "multi-environment fleet mode: boot every *.json deployment config in this directory (file stem = environment ID) behind one serve plane; -simulate drives them all")
	simInterval := flag.Duration("sim-interval", 100*time.Millisecond, "fleet mode: pacing between simulated acquisition rounds")
	clusterURL := flag.String("cluster", "", "fleet mode: join the dwatch-gateway directory at this base URL; the env dir becomes a catalog and ownership follows slot assignment")
	nodeID := flag.String("node-id", "", "cluster mode: node name announced to the directory (default: hostname)")
	advertise := flag.String("advertise", "", "cluster mode: base URL the gateway proxies to (default: the -http listener address)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	flag.Parse()

	l, err := newLogger(*logFormat)
	if err != nil {
		fatal("bad flag", "error", err)
	}
	logger = l

	if *pprofAddr != "" {
		if *httpAddr == "" {
			*httpAddr = *pprofAddr
		}
		logger.Warn("-pprof is deprecated; use -http (serving full observability plane)", "addr", *httpAddr)
	}

	if *clusterURL != "" && *envDir == "" {
		fatal("bad flags", "error", errors.New("-cluster requires -env-dir (the catalog of deployments this node can host)"))
	}
	if *envDir != "" {
		if *dial != "" || *chaos {
			fatal("bad flags", "error", errors.New("-env-dir (fleet mode) is incompatible with -dial and -chaos"))
		}
		policy, err := parseOverload(*overload)
		if err != nil {
			fatal("bad flag", "error", err)
		}
		if err := runFleet(fleetRunOptions{
			envDir: *envDir, simulate: *simulate, rounds: *rounds,
			simInterval: *simInterval, httpAddr: *httpAddr, profileDir: *profileDir,
			clusterURL: *clusterURL, nodeID: *nodeID, advertise: *advertise,
			walDir: *walDir, walFsync: *walFsync,
			walRetention: *walRetention, walSegBytes: *walSegBytes,
			workers: *workers, queue: *queue, overload: policy, seqTTL: *seqTTL,
		}); err != nil {
			fatal("fleet run failed", "error", err)
		}
		return
	}

	cfg, err := preset(*env)
	if err != nil {
		fatal("bad environment", "error", err)
	}
	sc, err := sim.Build(cfg)
	if err != nil {
		fatal("scenario build failed", "error", err)
	}
	policy, err := parseOverload(*overload)
	if err != nil {
		fatal("bad flag", "error", err)
	}

	srv, err := newServer(sc, pipelineOptions{
		workers: *workers, queue: *queue, overload: policy, seqTTL: *seqTTL,
	})
	if err != nil {
		fatal("server init failed", "error", err)
	}
	if *httpAddr != "" {
		srv.obs = obs.NewRegistry()
		srv.hub = serve.NewHub(serve.WithHubObs(srv.obs))
		srv.tracer = tracing.New()
		srv.health = health.New(srv.obs, health.Options{})
		obs.RegisterBuildInfo(srv.obs)
		obs.RegisterRuntime(srv.obs)
	}
	if *profileDir != "" {
		ring, err := profiling.Open(*profileDir, profiling.Options{Obs: srv.obs, Logger: logger})
		if err != nil {
			fatal("profiling ring open failed", "dir", *profileDir, "error", err)
		}
		srv.ring = ring
		rctx, rcancel := context.WithCancel(context.Background())
		defer rcancel()
		go ring.Run(rctx)
		logger.Info("continuous profiling up", "dir", *profileDir)
	}
	srv.statePath = *statePath
	if *walDir != "" {
		w, err := openWAL(*walDir, *walFsync, *walRetention, *walSegBytes, srv.obs)
		if err != nil {
			fatal("wal open failed", "dir", *walDir, "error", err)
		}
		srv.wal = w
		st := w.Status()
		logger.Info("ingest WAL open", "dir", *walDir, "fsync", st.Fsync,
			"segments", st.Segments, "recovered", st.Recovered, "truncated_tail_bytes", st.Truncated)
	}
	if *recordPath != "" {
		f, err := os.Create(*recordPath)
		if err != nil {
			fatal("record file", "path", *recordPath, "error", err)
		}
		srv.recorder = llrp.NewRecordWriter(f)
		defer srv.recorder.Close()
		logger.Warn("-record writes the deprecated legacy format; prefer -wal-dir (convert old captures with dwatch-replay -convert)",
			"path", *recordPath)
	}
	if *statePath != "" {
		if f, err := os.Open(*statePath); err == nil {
			err := srv.loadState(f)
			f.Close()
			if err != nil {
				fatal("load state failed", "path", *statePath, "error", err)
			}
			logger.Info("baseline state restored", "path", *statePath)
		}
	}
	if *chaos || *dial != "" {
		if err := runSupervised(srv, supervisedOptions{
			dial: *dial, chaos: *chaos, chaosSeed: *chaosSeed,
			flap: *chaosFlap, rounds: *rounds, httpAddr: *httpAddr,
		}); err != nil {
			fatal("supervised run failed", "error", err)
		}
		return
	}

	srv.start()
	addr, err := srv.llrp.Listen(*listen)
	if err != nil {
		fatal("llrp listen failed", "addr", *listen, "error", err)
	}
	logger.Info("dwatchd listening", "addr", addr.String(), "env", sc.Name,
		"readers", len(sc.Readers), "workers", pipelineWorkers(*workers), "overload", policy.String())

	var plane *serve.Server
	if *httpAddr != "" {
		planeOpts := []serve.Option{
			serve.WithRegistry(srv.obs),
			serve.WithHub(srv.hub),
			serve.WithTracer(srv.tracer),
			serve.WithHealth(srv.health),
			serve.WithStats(func() api.PipelineStats { return adapt.PipelineStats(srv.pipe.Stats()) }),
			serve.WithReady(srv.ready),
			serve.WithLogger(logger),
		}
		if srv.wal != nil {
			planeOpts = append(planeOpts, serve.WithWALStatus(func() api.WALStatus { return adapt.WALStatus(srv.wal.Status()) }))
		}
		planeOpts = append(planeOpts, legacyFleetOptions(srv)...)
		planeOpts = append(planeOpts, profileOptions(srv.ring)...)
		plane = serve.New(planeOpts...)
		planeAddr, err := plane.Start(*httpAddr)
		if err != nil {
			fatal("observability plane failed", "error", err)
		}
		logger.Info("observability plane up", "url", "http://"+planeAddr.String()+"/",
			"endpoints", "metrics healthz readyz api/v1 debug/pprof")
	}

	done := make(chan error, 1)
	go func() { done <- srv.llrp.Serve() }()

	if *simulate {
		go func() {
			if err := runSimulatedReaders(sc, addr.String(), *rounds); err != nil {
				logger.Error("simulated readers failed", "error", err)
			}
			// Give the server a moment to drain, then stop.
			time.Sleep(300 * time.Millisecond)
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			srv.llrp.Shutdown(ctx)
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		srv.llrp.Shutdown(ctx)
		<-done
	case err := <-done:
		if err != nil && err != llrp.ErrServerClosed {
			fatal("llrp server failed", "error", err)
		}
	}
	srv.shutdown()
	if plane != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		if err := plane.Shutdown(ctx); err != nil {
			logger.Warn("observability plane shutdown", "error", err)
		}
	}
}

// walOptions builds WAL options from the -wal-* flags. reg may be nil
// (no -http): the WAL then runs uninstrumented.
func walOptions(fsync, retention, segBytes string, reg *obs.Registry) ([]wal.Option, error) {
	policy, interval, err := wal.ParseFsyncPolicy(fsync)
	if err != nil {
		return nil, err
	}
	opts := []wal.Option{
		wal.WithFsync(policy),
		wal.WithLogger(logger),
		wal.WithObs(reg),
	}
	if interval > 0 {
		opts = append(opts, wal.WithFsyncInterval(interval))
	}
	if retention != "" {
		ret, err := wal.ParseRetention(retention)
		if err != nil {
			return nil, err
		}
		opts = append(opts, wal.WithRetention(ret))
	}
	if segBytes != "" {
		n, err := wal.ParseBytes(segBytes)
		if err != nil {
			return nil, err
		}
		opts = append(opts, wal.WithSegmentMaxBytes(n))
	}
	return opts, nil
}

// openWAL builds the ingest WAL from the -wal-* flags.
func openWAL(dir, fsync, retention, segBytes string, reg *obs.Registry) (*wal.WAL, error) {
	opts, err := walOptions(fsync, retention, segBytes, reg)
	if err != nil {
		return nil, err
	}
	return wal.Open(dir, opts...)
}

func pipelineWorkers(flagVal int) int {
	if flagVal > 0 {
		return flagVal
	}
	return runtime.GOMAXPROCS(0)
}

func parseOverload(s string) (pipeline.OverloadPolicy, error) {
	switch s {
	case "block":
		return pipeline.Block, nil
	case "drop-oldest":
		return pipeline.DropOldest, nil
	default:
		return 0, fmt.Errorf("unknown overload policy %q (want block or drop-oldest)", s)
	}
}

func preset(name string) (sim.Config, error) {
	switch name {
	case "library":
		return sim.LibraryConfig(), nil
	case "laboratory", "lab":
		return sim.LaboratoryConfig(), nil
	case "hall":
		return sim.HallConfig(), nil
	case "table":
		return sim.TableConfig(), nil
	default:
		return sim.Config{}, fmt.Errorf("unknown environment %q", name)
	}
}

type pipelineOptions struct {
	workers  int
	queue    int
	overload pipeline.OverloadPolicy
	seqTTL   time.Duration
}

// server bridges LLRP connections to the streaming pipeline: the
// handler does protocol work (capabilities, keepalives, recording) and
// hands every report to pipeline.Ingest; baselines, spectra, and fixes
// are the pipeline's business.
type server struct {
	llrp *llrp.Server
	sc   *sim.Scenario
	pipe *pipeline.Pipeline
	opts pipelineOptions

	// obs, hub, tracer, and health are nil unless -http is set; the
	// pipeline and fix subscription tolerate all of them being absent.
	obs    *obs.Registry
	hub    *serve.Hub
	tracer *tracing.Tracer
	health *health.Monitor

	// liveReaders is set in supervised mode before start(): the
	// assembler's oracle for quorum-degraded fusion when readers die.
	liveReaders func() []string

	// ring is the continuous-profiling ring (-profile-dir), nil when
	// disabled; its captures are listed on /api/v1/profiles.
	ring *profiling.Ring

	// wal, when set, receives every accepted report before dispatch
	// (the WAL serializes its own appends; no s.mu involvement), and
	// its surviving records are replayed through the pipeline by
	// start().
	wal *wal.WAL

	mu        sync.Mutex
	statePath string
	recorder  *llrp.RecordWriter
	confirmed map[string]bool
	restored  *dwatch.Fuser

	fixWG sync.WaitGroup
	fixes int
}

func newServer(sc *sim.Scenario, opts pipelineOptions) (*server, error) {
	s := &server{sc: sc, opts: opts, confirmed: map[string]bool{}}
	s.llrp = &llrp.Server{Handler: llrp.HandlerFunc(s.handle)}
	return s, nil
}

// start builds and launches the pipeline; called after any state load.
func (s *server) start() {
	arrays := map[string]*rf.Array{}
	for _, r := range s.sc.Readers {
		arrays[r.ID] = r.Array
	}
	opts := []pipeline.Option{
		pipeline.WithWorkers(s.opts.workers),
		pipeline.WithQueueSize(s.opts.queue),
		pipeline.WithOverload(s.opts.overload),
		pipeline.WithSeqTTL(s.opts.seqTTL),
		pipeline.WithOnBaseline(s.onBaseline),
		pipeline.WithObs(s.obs),
		pipeline.WithTracer(s.tracer),
		pipeline.WithHealth(s.health),
		pipeline.WithLogger(logger),
	}
	if s.restored != nil {
		opts = append(opts, pipeline.WithRestored(s.restored))
	}
	if s.liveReaders != nil {
		opts = append(opts, pipeline.WithLiveReaders(s.liveReaders))
	}
	p, err := pipeline.New(pipeline.Deployment{Arrays: arrays, Grid: s.sc.Grid}, opts...)
	if err != nil {
		fatal("pipeline init failed", "error", err)
	}
	s.pipe = p
	if s.hub != nil {
		p.SubscribeFixes(func(fix pipeline.Fix) {
			if fix.Err != nil {
				return
			}
			s.hub.Publish(serve.Position{
				Env: s.sc.Name, Seq: fix.Seq,
				X: fix.Pos.X, Y: fix.Pos.Y,
				Confidence: fix.Confidence, Views: fix.Views,
				Readers: fix.Readers, Degraded: fix.Degraded,
				TraceID: fix.TraceID,
				Time:    time.Now(),
			})
		})
	}
	p.Start()
	s.fixWG.Add(1)
	go func() {
		defer s.fixWG.Done()
		for fix := range p.Fixes() {
			if fix.Err != nil {
				logger.Info("no fix", "seq", fix.Seq, "error", fix.Err)
				continue
			}
			s.mu.Lock()
			s.fixes++
			n := s.fixes
			s.mu.Unlock()
			args := []any{"seq", fix.Seq, "n", n,
				"x", fix.Pos.X, "y", fix.Pos.Y, "confidence", fix.Confidence}
			if fix.TraceID != "" {
				args = append(args, "trace", fix.TraceID)
			}
			if fix.Degraded {
				args = append(args, "degraded", true, "views", fix.Views, "readers", len(s.sc.Readers))
			}
			logger.Info("fix", args...)
		}
	}()
	// Recovery replay runs after the fix consumer is live (a large
	// backlog can emit more fixes than the channel buffers) and before
	// any listener or supervisor accepts new reports, so replayed and
	// live rounds never interleave.
	if s.wal != nil {
		s.replayWAL()
	}
}

// replayWAL re-ingests every record recovery salvaged, rebuilding
// pipeline state (baselines, rounds, fixes) exactly as the crashed
// process built it. Reports that no longer match the deployment are
// skipped, not fatal: a WAL may outlive a reader.
func (s *server) replayWAL() {
	start := time.Now()
	var replayed, skipped int
	res, err := wal.Scan(s.wal.Dir(), func(rec wal.Record) error {
		if rec.Type != llrp.MsgROAccessReport {
			return nil
		}
		rep, err := llrp.UnmarshalROAccessReport(rec.Payload)
		if err != nil {
			skipped++
			return nil
		}
		if err := s.pipe.Ingest(rep); err != nil {
			if errors.Is(err, pipeline.ErrUnknownReader) {
				skipped++
				return nil
			}
			return err
		}
		replayed++
		return nil
	})
	if err != nil {
		fatal("wal recovery replay failed", "error", err)
	}
	if res.Records > 0 {
		logger.Info("wal recovery replayed", "records", res.Records,
			"ingested", replayed, "skipped", skipped,
			"elapsed", time.Since(start).Round(time.Millisecond).String())
	}
}

// walAppendReport is the supervised-mode durability hook: session
// handlers receive parsed reports, so the payload is re-marshaled for
// the log. Returns nil when no WAL is configured.
func (s *server) walAppendReport(rep *llrp.ROAccessReport) error {
	if s.wal == nil {
		return nil
	}
	payload, err := rep.Marshal()
	if err != nil {
		return err
	}
	_, err = s.wal.Append(time.Now(), llrp.MsgROAccessReport, payload)
	return err
}

func (s *server) handle(conn *llrp.Conn, msg llrp.Message) error {
	switch msg.Type {
	case llrp.MsgKeepalive:
		return conn.SendWithID(llrp.MsgKeepaliveAck, msg.ID, nil)
	case llrp.MsgGetReaderCapabilitiesResponse:
		caps, err := llrp.UnmarshalReaderCapabilities(msg.Payload)
		if err != nil {
			return err
		}
		rd := s.arrayFor(caps.ReaderID)
		if rd == nil {
			logger.Warn("capabilities from unknown reader", "reader", caps.ReaderID)
			return nil
		}
		if int(caps.Antennas) != rd.Array.Elements {
			logger.Warn("antenna count mismatch — reports will be rejected",
				"reader", caps.ReaderID, "reported", caps.Antennas, "expected", rd.Array.Elements)
			return nil
		}
		logger.Info("reader online", "reader", caps.ReaderID, "model", caps.Model, "antennas", caps.Antennas)
		// Control plane: install and start the acquisition spec — the
		// paper's cadence (0.1 s period, 10 snapshots per tag).
		spec := llrp.ROSpec{ID: 1, PeriodMs: 100, SnapshotsPerTag: 10}
		if _, err := conn.Send(llrp.MsgStartROSpec, spec.Marshal()); err != nil {
			return err
		}
		return nil
	case llrp.MsgROAccessReport:
		rep, err := llrp.UnmarshalROAccessReport(msg.Payload)
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.recorder != nil {
			if err := s.recorder.Record(time.Now(), msg); err != nil {
				logger.Error("record failed", "error", err)
			}
		}
		s.mu.Unlock()
		// Durability before dispatch: once the append returns, the
		// report survives a process crash and will be replayed on
		// restart — so a fix the operator saw can always be reproduced.
		if s.wal != nil {
			if _, err := s.wal.Append(time.Now(), msg.Type, msg.Payload); err != nil {
				logger.Error("wal append failed", "error", err)
			}
		}
		if err := s.pipe.Ingest(rep); err != nil {
			logger.Warn("ingest failed", "reader", rep.ReaderID, "seq", rep.Seq, "error", err)
		}
	}
	return nil
}

// arrayFor maps a reader ID to its array geometry (shared deployment
// knowledge: the server knows where its readers are mounted).
func (s *server) arrayFor(id string) *reader.Reader {
	for _, r := range s.sc.Readers {
		if r.ID == id {
			return r
		}
	}
	return nil
}

// ready is the /readyz hook: the deployment is ready to localize once
// every expected reader's baseline has been confirmed (or restored).
func (s *server) ready() error {
	s.mu.Lock()
	confirmed := len(s.confirmed)
	s.mu.Unlock()
	if confirmed < len(s.sc.Readers) {
		return fmt.Errorf("baseline: %d/%d readers confirmed", confirmed, len(s.sc.Readers))
	}
	return nil
}

// onBaseline runs on the assembler goroutine once per confirmed reader
// baseline — the one moment the fuser is safe to snapshot for state
// persistence, since the assembler is parked in this callback.
func (s *server) onBaseline(readerID string, tags int) {
	// The pipeline already logs "baseline confirmed" per reader; this
	// callback only tracks readiness and state persistence.
	s.mu.Lock()
	s.confirmed[readerID] = true
	all := len(s.confirmed) == len(s.sc.Readers)
	s.mu.Unlock()
	if all {
		s.maybeSaveState()
	}
}

// loadState restores a saved baseline. Called before start.
func (s *server) loadState(r *os.File) error {
	sys := dwatch.New(s.sc)
	if err := sys.LoadState(r); err != nil {
		return err
	}
	s.restored = sys.Fuser()
	for _, rd := range s.sc.Readers {
		s.confirmed[rd.ID] = true
	}
	return nil
}

// maybeSaveState persists the baseline once every reader confirmed.
// Called from the assembler goroutine (via onBaseline) while it holds
// the fuser.
func (s *server) maybeSaveState() {
	if s.statePath == "" {
		return
	}
	sys := dwatch.New(s.sc)
	sys.SetFuser(s.pipe.Fuser())
	f, err := os.Create(s.statePath)
	if err != nil {
		logger.Error("save state failed", "path", s.statePath, "error", err)
		return
	}
	defer f.Close()
	if err := sys.SaveState(f); err != nil {
		logger.Error("save state failed", "path", s.statePath, "error", err)
		return
	}
	logger.Info("baseline state saved", "path", s.statePath)
}

// shutdown drains the pipeline and prints the session summary.
func (s *server) shutdown() {
	s.pipe.Drain()
	s.fixWG.Wait()
	if s.wal != nil {
		if err := s.wal.Close(); err != nil {
			logger.Warn("wal close", "error", err)
		}
	}
	st := s.pipe.Stats()
	s.mu.Lock()
	fixes := s.fixes
	s.mu.Unlock()
	logger.Info("done", "fixes", fixes)
	logger.Info("pipeline summary",
		"reports_in", st.ReportsIn, "snapshots", st.SnapshotsIn, "dropped", st.SnapshotsDropped,
		"spectra", st.SpectraComputed, "failed", st.SpectraFailed,
		"fused", st.SequencesAssembled, "evicted", st.SequencesEvicted, "late", st.LateReports)
	if st.ComputeLatency.Count > 0 {
		logger.Info("latency summary",
			"compute_p50_ms", 1e3*st.ComputeLatency.P50, "compute_p90_ms", 1e3*st.ComputeLatency.P90,
			"fuse_p50_ms", 1e3*st.FuseLatency.P50, "fuse_p90_ms", 1e3*st.FuseLatency.P90)
	}
}

// runSimulatedReaders connects one LLRP client per scenario reader and
// streams reports: first a no-target baseline round, then rounds with a
// target walking across the room.
func runSimulatedReaders(sc *sim.Scenario, addr string, rounds int) error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	conns := make([]*llrp.Conn, len(sc.Readers))
	for i, rd := range sc.Readers {
		c, err := llrp.Dial(ctx, addr)
		if err != nil {
			return err
		}
		defer c.Close()
		conns[i] = c
		// Announce capabilities (real LLRP does this via the
		// GET_READER_CAPABILITIES exchange; our readers volunteer it).
		caps := llrp.ReaderCapabilities{
			ReaderID: rd.ID,
			Antennas: uint16(rd.Array.Elements),
			Model:    "speedway-r420-sim",
		}
		if _, err := c.Send(llrp.MsgGetReaderCapabilitiesResponse, caps.Marshal()); err != nil {
			return err
		}
	}
	// Each reader waits for its StartROSpec before transmitting, as the
	// protocol demands; the spec's snapshot count drives acquisition.
	snapshotsPerTag := 10
	for i := range conns {
		msg, err := conns[i].Recv()
		if err != nil {
			return err
		}
		if msg.Type != llrp.MsgStartROSpec {
			return fmt.Errorf("reader %d: expected StartROSpec, got type %d", i, msg.Type)
		}
		spec, err := llrp.UnmarshalROSpec(msg.Payload)
		if err != nil {
			return err
		}
		if int(spec.SnapshotsPerTag) > 0 {
			snapshotsPerTag = int(spec.SnapshotsPerTag)
		}
	}

	seq := uint32(0)
	send := func(targets []channel.Target) error {
		seq++
		for i, rd := range sc.Readers {
			snaps, err := rd.Acquire(sc.Env, sc.Tags, targets, reader.AcquireOptions{Snapshots: snapshotsPerTag})
			if err != nil {
				return err
			}
			rep := &llrp.ROAccessReport{ReaderID: rd.ID, Seq: seq}
			for _, sn := range snaps {
				// The readers stream *calibrated* samples: a production
				// deployment runs the Section 4.1 calibration once at
				// power-on; here the simulated reader knows its own
				// offsets (wired ground truth) for brevity.
				x, err := calib.Apply(sn.Data, rd.Offsets)
				if err != nil {
					return err
				}
				snapshot := make([][]complex128, x.Rows)
				for r := 0; r < x.Rows; r++ {
					snapshot[r] = append([]complex128(nil), x.Data[r*x.Cols:(r+1)*x.Cols]...)
				}
				rep.Reports = append(rep.Reports, llrp.TagReport{
					EPC:          sn.Tag.EPC,
					AntennaID:    1,
					PeakRSSIcdBm: sn.RSSIcdBm,
					Snapshot:     snapshot,
				})
			}
			payload, err := rep.Marshal()
			if err != nil {
				return err
			}
			if _, err := conns[i].Send(llrp.MsgROAccessReport, payload); err != nil {
				return err
			}
		}
		return nil
	}

	// Two baseline rounds (no target): the server's stability filter
	// needs a confirmation round.
	if err := send(nil); err != nil {
		return err
	}
	if err := send(nil); err != nil {
		return err
	}
	// Target walks across the middle of the room.
	for k := 0; k < rounds; k++ {
		f := float64(k+1) / float64(rounds+1)
		pos := geom.Pt(sc.Cfg.Width*(0.25+0.5*f), sc.Cfg.Depth/2, 1.25)
		logger.Info("simulated target", "x", pos.X, "y", pos.Y)
		if err := send([]channel.Target{channel.HumanTarget(pos)}); err != nil {
			return err
		}
	}
	return nil
}
