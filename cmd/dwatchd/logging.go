package main

import (
	"fmt"
	"log/slog"
	"os"
)

// logger is the process-wide structured logger; main replaces it per
// the -log-format flag before any subsystem starts.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

// newLogger builds the slog sink selected by -log-format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// fatal logs at error level and exits, the structured replacement for
// log.Fatal.
func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

// slogf adapts the structured logger to printf-style sinks (the serve
// plane's Logf hook).
func slogf(l *slog.Logger) func(format string, args ...any) {
	return func(format string, args ...any) {
		l.Info(fmt.Sprintf(format, args...))
	}
}
