package main

import (
	"context"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"dwatch/internal/api"
	"dwatch/internal/api/adapt"
	"dwatch/internal/fleet"
	"dwatch/internal/obs"
	"dwatch/internal/pipeline"
	"dwatch/internal/profiling"
	"dwatch/internal/serve"
)

// Fleet mode (-env-dir): one dwatchd process fronting N deployments.
// Every *.json deployment config in the directory becomes an
// environment with its own pipeline, tracer, health monitor, and WAL
// subdirectory (-wal-dir is the root: <root>/<env>/), all behind one
// observability plane with per-env routes (/api/v1/{env}/...) and one
// snapshot+delta position hub. -simulate drives every environment
// concurrently with generated LLRP rounds; afterwards the process
// keeps serving (when -http is set) until SIGINT/SIGTERM so the fleet
// can be inspected. Ingest from real LLRP readers is not routed in
// fleet mode yet — environments are fed by simulation or WAL replay.

type fleetRunOptions struct {
	envDir      string
	simulate    bool
	rounds      int
	simInterval time.Duration
	httpAddr    string

	profileDir string

	clusterURL string // gateway base URL; non-empty switches to cluster mode
	nodeID     string
	advertise  string // base URL the gateway proxies to (default: the -http listener)

	walDir       string
	walFsync     string
	walRetention string
	walSegBytes  string

	workers  int
	queue    int
	overload pipeline.OverloadPolicy
	seqTTL   time.Duration
}

func runFleet(opts fleetRunOptions) error {
	reg := obs.NewRegistry()
	hub := serve.NewHub(serve.WithHubObs(reg))
	obs.RegisterBuildInfo(reg)
	obs.RegisterRuntime(reg)

	var ring *profiling.Ring
	if opts.profileDir != "" {
		var err error
		ring, err = profiling.Open(opts.profileDir, profiling.Options{Obs: reg, Logger: logger})
		if err != nil {
			return err
		}
		rctx, rcancel := context.WithCancel(context.Background())
		defer rcancel()
		go ring.Run(rctx)
		logger.Info("continuous profiling up", "dir", opts.profileDir)
	}

	fopts := []fleet.Option{
		fleet.WithObs(reg),
		fleet.WithHub(hub),
		fleet.WithLogger(logger),
		fleet.WithPipelineOptions(func(string) []pipeline.Option {
			return []pipeline.Option{
				pipeline.WithWorkers(opts.workers),
				pipeline.WithQueueSize(opts.queue),
				pipeline.WithOverload(opts.overload),
				pipeline.WithSeqTTL(opts.seqTTL),
			}
		}),
	}
	if opts.walDir != "" {
		wopts, err := walOptions(opts.walFsync, opts.walRetention, opts.walSegBytes, reg)
		if err != nil {
			return err
		}
		fopts = append(fopts, fleet.WithWALRoot(opts.walDir, wopts...))
	}
	f := fleet.New(fopts...)
	defer f.Close()

	if opts.clusterURL != "" {
		return runFleetClustered(opts, reg, hub, f, ring)
	}

	ids, err := f.LoadDir(opts.envDir)
	if err != nil {
		return err
	}
	logger.Info("fleet up", "envs", len(ids), "dir", opts.envDir,
		"workers", pipelineWorkers(opts.workers), "overload", opts.overload.String(),
		"wal_root", opts.walDir)

	var plane *serve.Server
	if opts.httpAddr != "" {
		planeOpts := []serve.Option{
			serve.WithRegistry(reg),
			serve.WithHub(hub),
			serve.WithEnvs(f.Infos),
			serve.WithEnvLookup(f.EnvHandle),
			serve.WithReady(f.Ready),
			serve.WithFleetStats(func() api.FleetStats { return fleetStats(f) }),
			serve.WithLogger(logger),
		}
		planeOpts = append(planeOpts, profileOptions(ring)...)
		plane = serve.New(planeOpts...)
		planeAddr, err := plane.Start(opts.httpAddr)
		if err != nil {
			return err
		}
		logger.Info("observability plane up", "url", "http://"+planeAddr.String()+"/",
			"endpoints", "metrics healthz readyz api/v1/envs api/v1/{env}")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	simDone := make(chan struct{})
	if opts.simulate {
		var wg sync.WaitGroup
		for _, id := range ids {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				if err := f.Simulate(ctx, id, opts.rounds, 0, opts.simInterval); err != nil && ctx.Err() == nil {
					logger.Error("simulate failed", "env", id, "error", err)
				}
			}(id)
		}
		go func() {
			wg.Wait()
			close(simDone)
			logger.Info("fleet simulation complete", "envs", len(ids), "rounds", opts.rounds)
		}()
	} else {
		close(simDone)
	}

	if plane == nil {
		// Nothing to serve: run the simulation (if any) to completion
		// and exit.
		<-simDone
		return nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	cancel()
	<-simDone
	f.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer scancel()
	return plane.Shutdown(sctx)
}

// fleetStats is the aggregate /api/v1/stats body in fleet mode: one
// pipeline snapshot per environment.
func fleetStats(f *fleet.Fleet) api.FleetStats {
	out := api.FleetStats{}
	for _, id := range f.IDs() {
		if e, ok := f.Env(id); ok && e.Pipeline() != nil {
			out[id] = adapt.PipelineStats(e.Pipeline().Stats())
		}
	}
	return out
}

// legacyFleetOptions registers the legacy single-deployment server as
// a one-environment fleet, so /api/v1/envs and the env-scoped routes
// serve identically whether dwatchd fronts one deployment or many.
func legacyFleetOptions(srv *server) []serve.Option {
	f := fleet.New(fleet.WithObs(srv.obs), fleet.WithHub(srv.hub), fleet.WithLogger(logger))
	a := fleet.Adopted{
		Name:    srv.sc.Name,
		Readers: len(srv.sc.Readers),
		Tags:    srv.sc.Cfg.Tags,
		Stats:   func() api.PipelineStats { return adapt.PipelineStats(srv.pipe.Stats()) },
		Tracer:  srv.tracer,
		Health:  srv.health,
	}
	if srv.wal != nil {
		a.WALStatus = func() api.WALStatus { return adapt.WALStatus(srv.wal.Status()) }
	}
	if _, err := f.Adopt(srv.sc.Name, a); err != nil {
		logger.Warn("legacy env adoption failed; env-scoped routes disabled", "error", err)
		return nil
	}
	return []serve.Option{
		serve.WithEnvs(f.Infos),
		serve.WithEnvLookup(f.EnvHandle),
	}
}

// profileOptions exposes a continuous-profiling ring on
// /api/v1/profiles; a nil ring registers nothing (404).
func profileOptions(ring *profiling.Ring) []serve.Option {
	if ring == nil {
		return nil
	}
	return []serve.Option{serve.WithProfiles(
		func() []api.ProfileInfo { return adapt.Profiles(ring.List()) },
		ring.Open,
	)}
}
