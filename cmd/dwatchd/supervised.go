package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dwatch/internal/api"
	"dwatch/internal/api/adapt"
	"dwatch/internal/llrp"
	"dwatch/internal/serve"
	"dwatch/internal/session"
	"dwatch/internal/sim"
)

// supervisedOptions parameterizes the outbound (supervised) mode,
// where dwatchd dials its readers — the real-LLRP direction — and a
// session.Supervisor keeps every connection alive through keepalive
// probing, backoff reconnect, and per-reader circuit breakers.
type supervisedOptions struct {
	// dial lists real reader endpoints as "id=addr,id=addr"; empty
	// with chaos set spawns in-process simulated readers instead.
	dial      string
	chaos     bool
	chaosSeed int64
	// flap is how long the chaos run keeps one reader dead mid-walk.
	flap     time.Duration
	rounds   int
	httpAddr string
}

// parseDial turns "reader-1=host:port,reader-2=host:port" into
// session endpoints.
func parseDial(s string) ([]session.Endpoint, error) {
	var eps []session.Endpoint
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad -dial entry %q (want id=addr)", part)
		}
		eps = append(eps, session.Endpoint{ID: id, Addr: addr})
	}
	if len(eps) == 0 {
		return nil, fmt.Errorf("-dial: no endpoints")
	}
	return eps, nil
}

// runSupervised is dwatchd's fault-tolerant mode: a supervisor owns
// one session per reader, the pipeline fuses from the live quorum when
// a reader is down, and /readyz exposes per-reader state. With -chaos
// the readers are in-process simulations dialed through the
// deterministic fault injector, and one of them is killed and
// restarted mid-run to demonstrate degraded fixes and recovery.
func runSupervised(srv *server, opts supervisedOptions) error {
	sc := srv.sc
	var eps []session.Endpoint
	var sims []*sim.ReaderEndpoint
	if opts.dial != "" {
		var err error
		if eps, err = parseDial(opts.dial); err != nil {
			return err
		}
	} else {
		for _, rd := range sc.Readers {
			e := sim.NewReaderEndpoint(rd.ID, rd.Array.Elements)
			addr, err := e.Start("127.0.0.1:0")
			if err != nil {
				return err
			}
			defer e.Stop()
			sims = append(sims, e)
			eps = append(eps, session.Endpoint{ID: rd.ID, Addr: addr.String()})
			logger.Info("simulated reader listening", "reader", rd.ID, "addr", addr.String())
		}
	}

	sopts := []session.Option{
		session.WithHandler(func(rep *llrp.ROAccessReport) error {
			// Durability before dispatch, as in listen mode; session
			// handlers get parsed reports, so walAppendReport
			// re-marshals for the log.
			if err := srv.walAppendReport(rep); err != nil {
				logger.Error("wal append failed", "reader", rep.ReaderID, "error", err)
			}
			return srv.pipe.Ingest(rep)
		}),
		session.WithObs(srv.obs),
		session.WithLogger(logger),
	}
	if opts.chaos {
		// Compressed fault-handling cadence so a short demo run shows
		// down-detection, degraded fixes, and reconnect.
		sopts = append(sopts,
			session.WithKeepalive(llrp.KeepaliveOptions{
				Interval: 100 * time.Millisecond, Timeout: 200 * time.Millisecond, Missed: 2,
			}),
			session.WithBackoff(llrp.BackoffOptions{
				Base: 50 * time.Millisecond, Cap: 500 * time.Millisecond,
			}),
			session.WithBreaker(3, 500*time.Millisecond),
			session.WithJitterSeed(opts.chaosSeed),
			session.WithFaults(session.FaultConfig{
				Seed:      opts.chaosSeed,
				DelayProb: 0.05, // visible jitter without breaking frames
			}),
		)
	}
	var sup *session.Supervisor
	// The state observer logs transitions and pokes the assembler so
	// pending sequences re-evaluate against the new live set.
	sopts = append(sopts, session.WithOnState(func(id string, st session.State) {
		logger.Info("reader state", "reader", id, "state", st.String())
		srv.pipe.NotifyLiveChange()
	}))
	sup, err := session.New(eps, sopts...)
	if err != nil {
		return err
	}
	srv.liveReaders = sup.Live
	srv.start()
	sup.Start()
	defer sup.Stop()
	logger.Info("dwatchd supervising", "readers", len(eps), "env", sc.Name,
		"workers", pipelineWorkers(srv.opts.workers), "overload", srv.opts.overload.String())

	var plane *serve.Server
	if opts.httpAddr != "" {
		planeOpts := []serve.Option{
			serve.WithRegistry(srv.obs),
			serve.WithHub(srv.hub),
			serve.WithTracer(srv.tracer),
			serve.WithHealth(srv.health),
			serve.WithStats(func() api.PipelineStats { return adapt.PipelineStats(srv.pipe.Stats()) }),
			serve.WithReady(srv.ready),
			serve.WithReaders(readerStatuses(sup)),
			serve.WithDegraded(sup.Degraded),
			serve.WithLogger(logger),
		}
		if srv.wal != nil {
			planeOpts = append(planeOpts, serve.WithWALStatus(func() api.WALStatus { return adapt.WALStatus(srv.wal.Status()) }))
		}
		planeOpts = append(planeOpts, legacyFleetOptions(srv)...)
		planeOpts = append(planeOpts, profileOptions(srv.ring)...)
		plane = serve.New(planeOpts...)
		planeAddr, err := plane.Start(opts.httpAddr)
		if err != nil {
			return fmt.Errorf("observability plane: %v", err)
		}
		logger.Info("observability plane up", "url", "http://"+planeAddr.String()+"/",
			"note", "readyz reports per-reader state")
	}

	done := make(chan error, 1)
	if opts.chaos && len(sims) > 0 {
		go func() { done <- runChaos(sc, sims, opts) }()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
	case err := <-done:
		if err != nil {
			logger.Error("chaos run failed", "error", err)
		}
		// Let the pipeline drain the tail of reports before stopping.
		time.Sleep(300 * time.Millisecond)
	}
	sup.Stop()
	srv.shutdown()
	if plane != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		if err := plane.Shutdown(ctx); err != nil {
			logger.Warn("observability plane shutdown", "error", err)
		}
	}
	return nil
}

// runChaos drives the simulated readers through pre-generated rounds
// and flaps the last reader mid-walk: stopped after the first walking
// round, restarted opts.flap later. While it is down the pipeline
// emits degraded fixes from the remaining live quorum.
func runChaos(sc *sim.Scenario, sims []*sim.ReaderEndpoint, opts supervisedOptions) error {
	rounds, err := sim.GenerateLLRPRounds(sc, opts.rounds, 10)
	if err != nil {
		return err
	}
	// Wait for every session to finish its handshake before streaming.
	for _, e := range sims {
		select {
		case <-e.WaitStreaming():
		case <-time.After(10 * time.Second):
			return fmt.Errorf("reader %s: no session after 10s", e.ID)
		}
	}
	victim := sims[len(sims)-1]
	const interval = 200 * time.Millisecond
	for i, rd := range rounds {
		if i == 3 && len(sims) > 2 { // first walking round delivered; kill one reader
			logger.Info("chaos: killing reader", "reader", victim.ID, "for", opts.flap.String())
			victim.Stop()
			time.AfterFunc(opts.flap, func() {
				if _, err := victim.Start(victim.Addr()); err != nil {
					logger.Error("chaos: restart failed", "reader", victim.ID, "error", err)
					return
				}
				logger.Info("chaos: reader restarted", "reader", victim.ID)
			})
		}
		for _, e := range sims {
			if err := e.Broadcast(rd.Payloads[e.ID]); err != nil {
				// A dead or reconnecting reader just misses the round.
				continue
			}
		}
		time.Sleep(interval)
	}
	return nil
}

// readerStatuses adapts supervisor status snapshots to the serve
// plane's reader-state shape.
func readerStatuses(sup *session.Supervisor) func() []serve.ReaderStatus {
	return func() []serve.ReaderStatus {
		sts := sup.Status()
		out := make([]serve.ReaderStatus, len(sts))
		for i, st := range sts {
			out[i] = serve.ReaderStatus{
				ID: st.ID, Addr: st.Addr, State: st.State.String(),
				Since: st.Since, Reconnects: st.Reconnects, LastError: st.LastError,
			}
		}
		return out
	}
}
