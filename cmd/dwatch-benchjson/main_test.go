package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: dwatch
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPipelineThroughput/workers=1   	     100	  53824172 ns/op	       297.3 reports/s	      7729 spectra/s	 4963889 B/op	    9435 allocs/op
BenchmarkPipelineThroughput/workers=1   	     100	  43771947 ns/op	       365.5 reports/s	      9504 spectra/s	 4963888 B/op	    9435 allocs/op
BenchmarkMusicSpectrum/solver=qr-4      	     200	     20419 ns/op	    4200 B/op	       8 allocs/op
PASS
ok  	dwatch	12.3s
`

func parse(t *testing.T, text string) *Doc {
	t.Helper()
	doc := &Doc{}
	byName := map[string]*Benchmark{}
	pkg := ""
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		}
		if m := benchLine.FindStringSubmatch(line); m != nil {
			record(doc, byName, pkg, m[1], m[3])
		}
	}
	for _, b := range doc.Benchmarks {
		for _, met := range b.Metrics {
			finish(met)
		}
	}
	return doc
}

func TestParseAggregatesRepeats(t *testing.T) {
	doc := parse(t, sample)
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkPipelineThroughput/workers=1" || b.Runs != 2 {
		t.Fatalf("first benchmark = %q runs=%d, want the 2-run throughput bench", b.Name, b.Runs)
	}
	var ns, rps *Metric
	for _, m := range b.Metrics {
		switch m.Unit {
		case "ns/op":
			ns = m
		case "reports/s":
			rps = m
		}
	}
	if ns == nil || rps == nil {
		t.Fatal("ns/op or reports/s metric missing")
	}
	if ns.Min != 43771947 || ns.Max != 53824172 {
		t.Fatalf("ns/op min/max = %v/%v", ns.Min, ns.Max)
	}
	if rps.Max != 365.5 || len(rps.Values) != 2 {
		t.Fatalf("reports/s = %+v", rps)
	}
}

func TestParseStripsProcsSuffix(t *testing.T) {
	doc := parse(t, sample)
	b := doc.Benchmarks[1]
	// The -4 GOMAXPROCS marker is metadata, not part of the name; the
	// "qr" in the subbench name must survive the strip.
	if b.Name != "BenchmarkMusicSpectrum/solver=qr" || b.Procs != 4 {
		t.Fatalf("got name=%q procs=%d, want solver=qr at 4 procs", b.Name, b.Procs)
	}
}

func TestParseEmptyStream(t *testing.T) {
	doc := parse(t, "PASS\nok \tdwatch\t0.1s\n")
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from a benchless stream", len(doc.Benchmarks))
	}
}
