// Command dwatch-benchjson converts `go test -bench` text output into
// the structured JSON document BENCH_hotpath.json holds, so the perf
// trajectory is machine-diffable across PRs instead of a pile of raw
// benchmark lines behind a .json name.
//
// It reads the benchmark stream on stdin, echoes every line through to
// stdout unchanged (so `make bench` still shows live progress), and on
// success writes the JSON document to -o atomically (temp file +
// rename — a failing bench run never clobbers the previous numbers).
// The document records, per benchmark (grouped across -count repeats
// with the GOMAXPROCS name suffix stripped): every reported metric's
// per-run values plus min/max/mean. Benchmark time is compared by
// min-of-N: first iterations on a shared box are wildly noisy (the WAL
// append benchmarks historically swung 8 µs ↔ 640 µs run to run), so
// the minimum is the reproducible number and the spread is the noise
// bound. For throughput-style metrics (reports/s, spectra/s) compare
// the max instead. The raw text is embedded verbatim under "raw" so
// nothing the old format carried is lost.
//
// Exit status: 0 on success; 1 if the stream contains a test failure
// or no benchmark lines at all (the output file is left untouched).
//
// Usage:
//
//	go test -run '^$' -bench ... -benchtime 100x -count 3 | dwatch-benchjson -o BENCH_hotpath.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Metric aggregates one reported unit (ns/op, B/op, allocs/op, or a
// custom b.ReportMetric unit) across the -count repeats of one
// benchmark.
type Metric struct {
	Unit   string    `json:"unit"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Mean   float64   `json:"mean"`
	Values []float64 `json:"values"` // per-run, in input order
}

// Benchmark is one benchmark's aggregated result.
type Benchmark struct {
	Name    string    `json:"name"`  // procs suffix stripped
	Pkg     string    `json:"pkg"`   // from the preceding pkg: header
	Procs   int       `json:"procs"` // GOMAXPROCS suffix (1 when absent)
	Runs    int       `json:"runs"`
	Metrics []*Metric `json:"metrics"`
}

// Doc is the BENCH_hotpath.json schema.
type Doc struct {
	Schema     string       `json:"schema"` // "dwatch-bench/v1"
	Generated  time.Time    `json:"generated"`
	Goos       string       `json:"goos,omitempty"`
	Goarch     string       `json:"goarch,omitempty"`
	CPU        string       `json:"cpu,omitempty"`
	HostCPUs   int          `json:"host_cpus"` // cores visible to this conversion run
	Benchmarks []*Benchmark `json:"benchmarks"`
	Raw        string       `json:"raw"`
}

// benchLine matches one result line: name, iteration count, then the
// measurement fields handled separately.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// procsSuffix is the trailing -N GOMAXPROCS marker go test appends when
// running with more than one proc.
var procsSuffix = regexp.MustCompile(`-(\d+)$`)

func main() {
	out := flag.String("o", "", "write the JSON document to this file (atomically); empty = stdout after the echoed stream")
	flag.Parse()

	var (
		raw    strings.Builder
		doc    = Doc{Schema: "dwatch-bench/v1", Generated: time.Now().UTC(), HostCPUs: runtime.NumCPU()}
		byName = map[string]*Benchmark{}
		pkg    string
		failed bool
	)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		raw.WriteString(line)
		raw.WriteByte('\n')

		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL"):
			failed = true
		}
		if m := benchLine.FindStringSubmatch(line); m != nil {
			record(&doc, byName, pkg, m[1], m[3])
		}
	}
	if err := sc.Err(); err != nil {
		fatal(fmt.Errorf("reading stdin: %w", err))
	}
	if failed {
		fatal(fmt.Errorf("benchmark stream contains a FAIL; not writing %s", *out))
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found on stdin"))
	}
	for _, b := range doc.Benchmarks {
		for _, met := range b.Metrics {
			finish(met)
		}
	}
	doc.Raw = raw.String()

	enc, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := writeAtomic(*out, enc); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dwatch-benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// record folds one result line into the per-name aggregation. rest is
// the whitespace-separated "value unit value unit ..." tail after the
// iteration count.
func record(doc *Doc, byName map[string]*Benchmark, pkg, name, rest string) {
	procs := 1
	if m := procsSuffix.FindStringSubmatch(name); m != nil {
		if n, err := strconv.Atoi(m[1]); err == nil && n > 0 {
			procs = n
			name = strings.TrimSuffix(name, m[0])
		}
	}
	key := pkg + "." + name
	b := byName[key]
	if b == nil {
		b = &Benchmark{Name: name, Pkg: pkg, Procs: procs}
		byName[key] = b
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	b.Runs++
	f := strings.Fields(rest)
	for i := 0; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		met := metricFor(b, f[i+1])
		met.Values = append(met.Values, v)
	}
}

func metricFor(b *Benchmark, unit string) *Metric {
	for _, m := range b.Metrics {
		if m.Unit == unit {
			return m
		}
	}
	m := &Metric{Unit: unit}
	b.Metrics = append(b.Metrics, m)
	return m
}

func finish(m *Metric) {
	m.Min, m.Max = m.Values[0], m.Values[0]
	var sum float64
	for _, v := range m.Values {
		if v < m.Min {
			m.Min = v
		}
		if v > m.Max {
			m.Max = v
		}
		sum += v
	}
	m.Mean = sum / float64(len(m.Values))
}

func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".benchjson-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwatch-benchjson:", err)
	os.Exit(1)
}
