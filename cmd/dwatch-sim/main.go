// Command dwatch-sim runs one D-Watch localization scenario end to end:
// build an environment, calibrate the readers wirelessly, collect the
// baseline, place device-free targets and localize them.
//
// Usage:
//
//	dwatch-sim [-env library|laboratory|hall|table] [-antennas N] [-tags N]
//	           [-seed N] [-targets "x,y;x,y;..."] [-multi] [-verbose]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dwatch/internal/channel"
	"dwatch/internal/dwatch"
	"dwatch/internal/geom"
	"dwatch/internal/loc"
	"dwatch/internal/rf"
	"dwatch/internal/sim"
)

func main() {
	env := flag.String("env", "hall", "environment preset: library, laboratory, hall, table")
	configPath := flag.String("config", "", "JSON deployment file (overrides -env)")
	antennas := flag.Int("antennas", 0, "antennas per array (0 = preset default)")
	tags := flag.Int("tags", 0, "tag population size (0 = preset default)")
	seed := flag.Int64("seed", 0, "simulation seed (0 = preset default)")
	targetsFlag := flag.String("targets", "", `device-free target positions as "x,y;x,y"; empty = room centre`)
	multi := flag.Bool("multi", false, "multi-target localization")
	verbose := flag.Bool("verbose", false, "print per-reader evidence")
	heatmap := flag.Bool("heatmap", false, "render the likelihood field (Fig. 19 style)")
	flag.Parse()

	var cfg sim.Config
	var err error
	if *configPath != "" {
		f, ferr := os.Open(*configPath)
		if ferr != nil {
			fatal(ferr)
		}
		cfg, err = sim.LoadConfig(f)
		f.Close()
	} else {
		cfg, err = preset(*env)
	}
	if err != nil {
		fatal(err)
	}
	if *antennas > 0 {
		cfg.Antennas = *antennas
	}
	if *tags > 0 {
		cfg.Tags = *tags
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	sc, err := sim.Build(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("environment %q: %.1f×%.1f m, %d readers × %d antennas, %d tags, %d reflectors\n",
		sc.Name, cfg.Width, cfg.Depth, len(sc.Readers), cfg.Antennas, sc.Tags.Len(), len(sc.Env.Reflectors))

	s := dwatch.New(sc)
	fmt.Print("wireless phase calibration... ")
	if err := s.Calibrate(); err != nil {
		fatal(err)
	}
	fmt.Println("done")
	fmt.Print("baseline AoA collection... ")
	if err := s.CollectBaseline(); err != nil {
		fatal(err)
	}
	fmt.Println("done")

	positions, err := parseTargets(*targetsFlag, cfg)
	if err != nil {
		fatal(err)
	}
	var scene []channel.Target
	for _, p := range positions {
		if cfg.Name == "table" {
			scene = append(scene, channel.BottleTarget(p, 0.75))
		} else {
			scene = append(scene, channel.HumanTarget(p))
		}
		fmt.Printf("target at (%.2f, %.2f)\n", p.X, p.Y)
	}

	if *verbose {
		views, err := s.Views(scene)
		if err != nil {
			fatal(err)
		}
		for i, v := range views {
			peak, idx := 0.0, 0
			for j, d := range v.Drop {
				if d > peak {
					peak, idx = d, j
				}
			}
			fmt.Printf("  reader %d: max drop %.2f at %.1f°\n", i+1, peak, rf.Deg(v.Angles[idx]))
		}
	}

	if *heatmap {
		views, err := s.Views(scene)
		if err != nil {
			fatal(err)
		}
		h, err := loc.ComputeHeatmap(views, sc.Grid, sc.Cfg.Width/60)
		if err != nil {
			fatal(err)
		}
		fmt.Println("likelihood heatmap (X = true target):")
		fmt.Print(h.Render(positions...))
	}

	if *multi {
		fixes, err := s.LocateMulti(scene, len(scene), 0.3)
		if err != nil {
			fatal(err)
		}
		for i, f := range fixes {
			fmt.Printf("fix %d: (%.2f, %.2f)  confidence %.2f\n", i+1, f.Pos.X, f.Pos.Y, f.Confidence)
		}
		if len(fixes) == 0 {
			fmt.Println("no targets localized")
		}
		return
	}
	res, err := s.LocateRobust(scene, 3)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fix: (%.2f, %.2f)  confidence %.2f\n", res.Pos.X, res.Pos.Y, res.Confidence)
	if len(positions) == 1 {
		fmt.Printf("error: %.1f cm\n", 100*res.Pos.Dist2D(positions[0]))
	}
}

func preset(name string) (sim.Config, error) {
	switch name {
	case "library":
		return sim.LibraryConfig(), nil
	case "laboratory", "lab":
		return sim.LaboratoryConfig(), nil
	case "hall":
		return sim.HallConfig(), nil
	case "table":
		return sim.TableConfig(), nil
	default:
		return sim.Config{}, fmt.Errorf("unknown environment %q", name)
	}
}

func parseTargets(s string, cfg sim.Config) ([]geom.Point, error) {
	z := cfg.ArrayZ
	if s == "" {
		return []geom.Point{geom.Pt(cfg.Width/2, cfg.Depth/2, z)}, nil
	}
	var out []geom.Point
	for _, part := range strings.Split(s, ";") {
		xy := strings.Split(strings.TrimSpace(part), ",")
		if len(xy) != 2 {
			return nil, fmt.Errorf("bad target %q, want x,y", part)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(xy[0]), 64)
		if err != nil {
			return nil, err
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(xy[1]), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, geom.Pt(x, y, z))
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwatch-sim:", err)
	os.Exit(1)
}
