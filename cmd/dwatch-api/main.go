// dwatch-api is a thin CLI over the typed /api/v1 client — the way
// smoke scripts and operators query a dwatchd node or a dwatch-gateway
// without hand-rolling curl+jq against response shapes. Every command
// decodes into the internal/api contract structs (strict by default,
// so shape drift fails loudly) and re-marshals the typed value to
// stdout as JSON.
//
//	dwatch-api -base http://127.0.0.1:8080 envs
//	dwatch-api -base ... positions <env>
//	dwatch-api -base ... stats [env]          # fleet stats when env omitted
//	dwatch-api -base ... health|wal|traces <env>
//	dwatch-api -base ... trace <env> <id>
//	dwatch-api -base ... cluster
//	dwatch-api -base ... cluster-health       # gateway worst-of rollup
//	dwatch-api -base ... metrics [-node N]    # raw exposition (gateway: federated; -node: one node's page)
//	dwatch-api -base ... profiles [-node N]   # continuous-profiling ring listing
//	dwatch-api -base ... profile <name> [-node N] [-o FILE]
//	dwatch-api -base ... ready
//	dwatch-api -base ... watch <env> -n 3     # stream N position frames
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"dwatch/internal/api"
)

func main() {
	base := flag.String("base", "http://127.0.0.1:8080", "node or gateway base URL")
	lax := flag.Bool("lax", false, "tolerate unknown fields in responses (default: strict contract decoding)")
	timeout := flag.Duration("timeout", 10*time.Second, "request deadline (watch: total stream time)")
	count := flag.Int("n", 1, "watch: exit after this many position frames")
	node := flag.String("node", "", "metrics/profiles/profile: target one cluster node through the gateway's /api/v1/nodes proxy")
	outPath := flag.String("o", "", "profile: write the raw pprof bytes to this file instead of stdout")
	flag.Parse()

	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	c := api.NewClient(*base)
	c.Strict = !*lax
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	out, err := run(ctx, c, flag.Arg(0), flag.Args()[1:], *count, *node, *outPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dwatch-api:", err)
		if code := api.ErrorCode(err); code != "" {
			os.Exit(4) // the server answered with a typed error envelope
		}
		os.Exit(1)
	}
	if out != nil {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "dwatch-api:", err)
			os.Exit(1)
		}
	}
}

func run(ctx context.Context, c *api.Client, cmd string, args []string, count int, node, outPath string) (any, error) {
	need := func(n int, usage string) error {
		if len(args) != n {
			return fmt.Errorf("usage: dwatch-api %s", usage)
		}
		return nil
	}
	switch cmd {
	case "envs":
		if err := need(0, "envs"); err != nil {
			return nil, err
		}
		return c.Envs(ctx)
	case "positions":
		if err := need(1, "positions <env>"); err != nil {
			return nil, err
		}
		return c.Positions(ctx, args[0])
	case "stats":
		switch len(args) {
		case 0:
			return c.FleetStats(ctx)
		case 1:
			return c.EnvStats(ctx, args[0])
		default:
			return nil, errors.New("usage: dwatch-api stats [env]")
		}
	case "health":
		if err := need(1, "health <env>"); err != nil {
			return nil, err
		}
		return c.Health(ctx, args[0])
	case "wal":
		if err := need(1, "wal <env>"); err != nil {
			return nil, err
		}
		return c.WAL(ctx, args[0])
	case "traces":
		if err := need(1, "traces <env>"); err != nil {
			return nil, err
		}
		return c.Traces(ctx, args[0])
	case "trace":
		if err := need(2, "trace <env> <id>"); err != nil {
			return nil, err
		}
		return c.Trace(ctx, args[0], args[1])
	case "cluster":
		if err := need(0, "cluster"); err != nil {
			return nil, err
		}
		return c.Cluster(ctx)
	case "cluster-health":
		if err := need(0, "cluster-health"); err != nil {
			return nil, err
		}
		return c.ClusterHealth(ctx)
	case "metrics":
		if err := need(0, "metrics [-node N]"); err != nil {
			return nil, err
		}
		page, err := fetchMetrics(ctx, c, node)
		if err != nil {
			return nil, err
		}
		_, err = os.Stdout.Write(page)
		return nil, err
	case "profiles":
		if err := need(0, "profiles [-node N]"); err != nil {
			return nil, err
		}
		if node != "" {
			return c.NodeProfiles(ctx, node)
		}
		return c.Profiles(ctx)
	case "profile":
		if err := need(1, "profile <name> [-node N] [-o FILE]"); err != nil {
			return nil, err
		}
		data, err := fetchProfile(ctx, c, node, args[0])
		if err != nil {
			return nil, err
		}
		if outPath != "" {
			return nil, os.WriteFile(outPath, data, 0o644)
		}
		_, err = os.Stdout.Write(data)
		return nil, err
	case "ready":
		if err := need(0, "ready"); err != nil {
			return nil, err
		}
		return c.Ready(ctx)
	case "watch":
		if err := need(1, "watch <env> [-n COUNT]"); err != nil {
			return nil, err
		}
		return nil, watch(ctx, c, args[0], count)
	default:
		return nil, fmt.Errorf("unknown command %q (envs, positions, stats, health, wal, traces, trace, cluster, cluster-health, metrics, profiles, profile, ready, watch)", cmd)
	}
}

// fetchMetrics pulls a raw exposition page: the base target's own
// (federated, on a gateway), or one node's un-federated page through
// the gateway proxy.
func fetchMetrics(ctx context.Context, c *api.Client, node string) ([]byte, error) {
	if node != "" {
		return c.NodeMetrics(ctx, node)
	}
	return c.Metrics(ctx)
}

// fetchProfile resolves one stored pprof capture, optionally through
// the gateway's node proxy.
func fetchProfile(ctx context.Context, c *api.Client, node, name string) ([]byte, error) {
	if node != "" {
		return c.NodeProfile(ctx, node, name)
	}
	return c.Profile(ctx, name)
}

// watch streams position frames, one raw JSON frame per stdout line,
// and returns once count frames arrived — the smoke-script shape for
// asserting SSE delivery through node or gateway.
func watch(ctx context.Context, c *api.Client, env string, count int) error {
	seen := 0
	done := errors.New("done")
	err := c.WatchPositions(ctx, env, func(raw []byte, _ api.Position) error {
		fmt.Printf("%s\n", raw)
		seen++
		if seen >= count {
			return done
		}
		return nil
	})
	if errors.Is(err, done) {
		return nil
	}
	if err != nil {
		return err
	}
	return fmt.Errorf("stream ended after %d/%d frames", seen, count)
}
