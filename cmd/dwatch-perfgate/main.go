// dwatch-perfgate is the replay-driven performance regression gate:
// it replays the pinned corpus (make corpus) through a fresh pipeline
// per environment, repeats each run N times, and compares the best
// result against the committed baseline (BENCH_baseline.json) under
// the three-tier tolerance policy documented in DESIGN.md:
//
//	tier 1 — exactness: the fix-parity hash and fix count must match
//	         the baseline bit-for-bit. A parity mismatch on a different
//	         GOOS/GOARCH than the baseline's recording box downgrades
//	         to a warning (float rounding may legitimately differ);
//	         on the same arch it fails the gate.
//	tier 2 — bounded throughput/latency drift: max-of-N spectra/s may
//	         not drop below half the baseline; min-of-N p50/p99 stage
//	         latencies may not exceed double. Max-of-N and min-of-N
//	         (never means) because first-run noise on shared boxes is
//	         wild; the best of N repeats is the stable estimator.
//	tier 3 — informational: wall time and reports/s are printed for
//	         trend-eyeballing, never gated.
//
// Usage:
//
//	dwatch-perfgate                      # compare against BENCH_baseline.json
//	dwatch-perfgate -update              # (re)record the baseline on this box
//	dwatch-perfgate -repeats 5           # more repeats = tighter best-of
//
// Exit status: 0 clean, 1 regression (or missing baseline), 2 bad
// invocation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"dwatch/internal/fleet"
	"dwatch/internal/pipeline"
	"dwatch/internal/replay"
	"dwatch/internal/rf"
	"dwatch/internal/sim"
)

// EnvResult is one environment's best-of-N measurement (and the shape
// stored per env in the baseline file).
type EnvResult struct {
	FixParity     string  `json:"fix_parity"`
	Fixes         int     `json:"fixes"`
	Spectra       uint64  `json:"spectra"`
	SpectraPerSec float64 `json:"spectra_per_sec"` // max over repeats
	ReportsPerSec float64 `json:"reports_per_sec"` // max over repeats
	ComputeP50    float64 `json:"compute_p50_seconds"`
	ComputeP99    float64 `json:"compute_p99_seconds"`
	FuseP50       float64 `json:"fuse_p50_seconds"`
	FuseP99       float64 `json:"fuse_p99_seconds"`
	WallSeconds   float64 `json:"wall_seconds"` // min over repeats
}

// Baseline is the committed BENCH_baseline.json shape.
type Baseline struct {
	// Arch records the measuring box (GOOS/GOARCH): parity mismatches
	// across architectures warn instead of failing.
	Arch    string               `json:"arch"`
	Repeats int                  `json:"repeats"`
	Envs    map[string]EnvResult `json:"envs"`
}

// Tolerance is the tier-2 policy knob set.
type Tolerance struct {
	// MinThroughputRatio fails when current/baseline spectra/s drops
	// below it (default 0.5: half the baseline throughput).
	MinThroughputRatio float64
	// MaxLatencyRatio fails when current/baseline p50 or p99 exceeds
	// it (default 2: latency may double, not more).
	MaxLatencyRatio float64
}

// DefaultTolerance is the documented DESIGN.md policy.
var DefaultTolerance = Tolerance{MinThroughputRatio: 0.5, MaxLatencyRatio: 2}

func main() {
	corpus := flag.String("corpus", "testdata/corpus", "replay corpus root (one WAL directory per environment; make corpus)")
	fleetDir := flag.String("fleet", "testdata/fleet", "deployment config directory matching the corpus")
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline to gate against")
	repeats := flag.Int("repeats", 3, "replay repeats per environment (best-of-N)")
	update := flag.Bool("update", false, "write the baseline from this run instead of gating")
	flag.Parse()
	if *repeats < 1 {
		fmt.Fprintln(os.Stderr, "dwatch-perfgate: -repeats must be >= 1")
		os.Exit(2)
	}

	current, err := measure(*corpus, *fleetDir, *repeats)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dwatch-perfgate:", err)
		os.Exit(2)
	}

	if *update {
		b := Baseline{Arch: runtime.GOOS + "/" + runtime.GOARCH, Repeats: *repeats, Envs: current}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dwatch-perfgate:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dwatch-perfgate:", err)
			os.Exit(2)
		}
		fmt.Printf("baseline written to %s (%d envs, %d repeats, %s)\n",
			*baselinePath, len(current), *repeats, b.Arch)
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dwatch-perfgate: no baseline at %s — record one with -update\n", *baselinePath)
		os.Exit(1)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "dwatch-perfgate: bad baseline %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}

	sameArch := base.Arch == runtime.GOOS+"/"+runtime.GOARCH
	failures, warnings := Evaluate(current, base, sameArch, DefaultTolerance)
	for _, r := range sorted(current) {
		fmt.Printf("%-8s  %8.0f spectra/s  p50 %.3gs  p99 %.3gs  (%d fixes, wall %.2fs)\n",
			r.key, r.val.SpectraPerSec, r.val.ComputeP50, r.val.ComputeP99, r.val.Fixes, r.val.WallSeconds)
	}
	for _, w := range warnings {
		fmt.Println("WARN:", w)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println("FAIL:", f)
		}
		fmt.Printf("perf gate FAILED: %d regression(s) against %s\n", len(failures), *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("perf gate passed against %s (%d envs)\n", *baselinePath, len(current))
}

// measure replays every corpus environment repeats times and keeps the
// best-of-N digest per environment.
func measure(corpus, fleetDir string, repeats int) (map[string]EnvResult, error) {
	catalog, ids, err := fleet.ReadConfigDir(fleetDir)
	if err != nil {
		return nil, err
	}
	out := map[string]EnvResult{}
	for _, env := range ids {
		dir := filepath.Join(corpus, env)
		if _, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("corpus env %s missing at %s (run `make corpus`)", env, dir)
		}
		dep, err := deployment(env, catalog[env])
		if err != nil {
			return nil, err
		}
		var best EnvResult
		for i := 0; i < repeats; i++ {
			sum, err := runOnce(dir, dep)
			if err != nil {
				return nil, fmt.Errorf("env %s repeat %d: %w", env, i, err)
			}
			r := EnvResult{
				FixParity:     sum.FixParity,
				Fixes:         sum.Fixes,
				Spectra:       sum.Spectra,
				SpectraPerSec: sum.SpectraPerSec,
				ReportsPerSec: sum.ReportsPerSec,
				ComputeP50:    sum.ComputeLatency.P50,
				ComputeP99:    sum.ComputeLatency.P99,
				FuseP50:       sum.FuseLatency.P50,
				FuseP99:       sum.FuseLatency.P99,
				WallSeconds:   sum.WallSeconds,
			}
			if i == 0 {
				best = r
				continue
			}
			if r.FixParity != best.FixParity || r.Fixes != best.Fixes {
				return nil, fmt.Errorf("env %s: repeat %d diverged from repeat 0 (parity %s vs %s, fixes %d vs %d) — the replay is not deterministic",
					env, i, r.FixParity, best.FixParity, r.Fixes, best.Fixes)
			}
			best = bestOf(best, r)
		}
		out[env] = best
	}
	return out, nil
}

// deployment rebuilds the pipeline deployment a fleet environment ran
// with: the corpus WAL records carry "<env>/" prefixed reader IDs, so
// the replay deployment must prefix identically or every report is
// skipped as unknown.
func deployment(env string, cfg sim.Config) (pipeline.Deployment, error) {
	sc, err := sim.Build(cfg)
	if err != nil {
		return pipeline.Deployment{}, fmt.Errorf("env %s: %w", env, err)
	}
	arrays := map[string]*rf.Array{}
	for _, r := range sc.Readers {
		arrays[env+"/"+r.ID] = r.Array
	}
	return pipeline.Deployment{Arrays: arrays, Grid: sc.Grid}, nil
}

// runOnce replays one environment's WAL unthrottled through a fresh
// pipeline.
func runOnce(dir string, dep pipeline.Deployment) (*replay.Summary, error) {
	src, err := replay.OpenWAL(dir)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	sum, err := replay.Run(src, dep, replay.Options{})
	if err != nil {
		return nil, err
	}
	if sum.Reports == 0 {
		return nil, fmt.Errorf("replayed 0 reports from %s (deployment/reader-ID mismatch?)", dir)
	}
	return sum, nil
}

// bestOf folds two repeats: throughput takes the max, latency and wall
// time the min — the per-metric best is the noise-resistant estimator
// (see the bench methodology note in the Makefile).
func bestOf(a, b EnvResult) EnvResult {
	out := a
	out.SpectraPerSec = max(a.SpectraPerSec, b.SpectraPerSec)
	out.ReportsPerSec = max(a.ReportsPerSec, b.ReportsPerSec)
	out.ComputeP50 = min(a.ComputeP50, b.ComputeP50)
	out.ComputeP99 = min(a.ComputeP99, b.ComputeP99)
	out.FuseP50 = min(a.FuseP50, b.FuseP50)
	out.FuseP99 = min(a.FuseP99, b.FuseP99)
	out.WallSeconds = min(a.WallSeconds, b.WallSeconds)
	return out
}

// Evaluate applies the three-tier policy, returning hard failures and
// advisory warnings. Pure so the gate's verdict logic is unit-testable
// without replaying anything.
func Evaluate(current map[string]EnvResult, base Baseline, sameArch bool, tol Tolerance) (failures, warnings []string) {
	envs := make([]string, 0, len(base.Envs))
	for env := range base.Envs {
		envs = append(envs, env)
	}
	sort.Strings(envs)
	for _, env := range envs {
		b := base.Envs[env]
		c, ok := current[env]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not measured (corpus env removed?)", env))
			continue
		}
		// Tier 1: exactness.
		if c.FixParity != b.FixParity || c.Fixes != b.Fixes {
			msg := fmt.Sprintf("%s: fix parity diverged from baseline (parity %s vs %s, fixes %d vs %d)",
				env, c.FixParity, b.FixParity, c.Fixes, b.Fixes)
			if sameArch {
				failures = append(failures, msg)
			} else {
				warnings = append(warnings, msg+fmt.Sprintf(" — cross-arch run (baseline %s), tolerated", base.Arch))
			}
		}
		// Tier 2: bounded drift.
		if b.SpectraPerSec > 0 && c.SpectraPerSec < b.SpectraPerSec*tol.MinThroughputRatio {
			failures = append(failures, fmt.Sprintf("%s: throughput %0.f spectra/s is below %.0f%% of baseline %.0f",
				env, c.SpectraPerSec, tol.MinThroughputRatio*100, b.SpectraPerSec))
		}
		for _, l := range []struct {
			name    string
			cur, bs float64
		}{
			{"compute p50", c.ComputeP50, b.ComputeP50},
			{"compute p99", c.ComputeP99, b.ComputeP99},
			{"fuse p50", c.FuseP50, b.FuseP50},
			{"fuse p99", c.FuseP99, b.FuseP99},
		} {
			if l.bs > 0 && l.cur > l.bs*tol.MaxLatencyRatio {
				failures = append(failures, fmt.Sprintf("%s: %s %.3gs exceeds %.1f× baseline %.3gs",
					env, l.name, l.cur, tol.MaxLatencyRatio, l.bs))
			}
		}
	}
	for env := range current {
		if _, ok := base.Envs[env]; !ok {
			warnings = append(warnings, fmt.Sprintf("%s: measured but absent from the baseline — re-record with -update", env))
		}
	}
	return failures, warnings
}

// sorted renders a map in key order for stable output.
type kv struct {
	key string
	val EnvResult
}

func sorted(m map[string]EnvResult) []kv {
	out := make([]kv, 0, len(m))
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}
