package main

import (
	"strings"
	"testing"
)

func healthyEnv() EnvResult {
	return EnvResult{
		FixParity:     "abc123",
		Fixes:         40,
		Spectra:       480,
		SpectraPerSec: 1000,
		ComputeP50:    0.001,
		ComputeP99:    0.004,
		FuseP50:       0.0005,
		FuseP99:       0.002,
		WallSeconds:   0.5,
	}
}

func baselineOf(envs map[string]EnvResult) Baseline {
	return Baseline{Arch: "linux/amd64", Repeats: 3, Envs: envs}
}

// A run identical to the baseline passes every tier.
func TestEvaluateClean(t *testing.T) {
	cur := map[string]EnvResult{"site-a": healthyEnv(), "site-b": healthyEnv()}
	base := baselineOf(map[string]EnvResult{"site-a": healthyEnv(), "site-b": healthyEnv()})
	failures, warnings := Evaluate(cur, base, true, DefaultTolerance)
	if len(failures) != 0 || len(warnings) != 0 {
		t.Fatalf("clean run: failures=%v warnings=%v", failures, warnings)
	}
}

// Tier 2: a deliberately slowed current run (simulating a perf
// regression, or equivalently a baseline recorded on a much faster
// box) must fail the gate on throughput and latency.
func TestEvaluateSlowedRunFails(t *testing.T) {
	slow := healthyEnv()
	slow.SpectraPerSec = 400 // < 0.5 × 1000
	slow.ComputeP99 = 0.009  // > 2 × 0.004
	cur := map[string]EnvResult{"site-a": slow}
	base := baselineOf(map[string]EnvResult{"site-a": healthyEnv()})

	failures, _ := Evaluate(cur, base, true, DefaultTolerance)
	if len(failures) != 2 {
		t.Fatalf("slowed run failures = %v, want throughput + compute p99", failures)
	}
	joined := strings.Join(failures, "\n")
	if !strings.Contains(joined, "throughput") || !strings.Contains(joined, "compute p99") {
		t.Fatalf("unexpected failure set:\n%s", joined)
	}
}

// Tier 2 boundary: exactly half the throughput and exactly double the
// latency still pass — the gate fires strictly beyond the ratios.
func TestEvaluateBoundary(t *testing.T) {
	edge := healthyEnv()
	edge.SpectraPerSec = 500
	edge.ComputeP50 = 0.002
	edge.ComputeP99 = 0.008
	edge.FuseP99 = 0.004
	cur := map[string]EnvResult{"site-a": edge}
	base := baselineOf(map[string]EnvResult{"site-a": healthyEnv()})

	failures, _ := Evaluate(cur, base, true, DefaultTolerance)
	if len(failures) != 0 {
		t.Fatalf("boundary run should pass, got %v", failures)
	}
}

// Tier 1: a parity/fix-count divergence fails on the recording arch
// but only warns cross-arch.
func TestEvaluateParity(t *testing.T) {
	diverged := healthyEnv()
	diverged.FixParity = "def456"
	cur := map[string]EnvResult{"site-a": diverged}
	base := baselineOf(map[string]EnvResult{"site-a": healthyEnv()})

	failures, warnings := Evaluate(cur, base, true, DefaultTolerance)
	if len(failures) != 1 || !strings.Contains(failures[0], "parity") {
		t.Fatalf("same-arch parity divergence: failures=%v", failures)
	}
	if len(warnings) != 0 {
		t.Fatalf("same-arch parity divergence: warnings=%v", warnings)
	}

	failures, warnings = Evaluate(cur, base, false, DefaultTolerance)
	if len(failures) != 0 {
		t.Fatalf("cross-arch parity divergence must not fail: %v", failures)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "cross-arch") {
		t.Fatalf("cross-arch parity divergence: warnings=%v", warnings)
	}
}

// A baseline env the current run never measured is a hard failure (a
// silently dropped corpus env must not pass the gate); an extra
// measured env only warns until the baseline is re-recorded.
func TestEvaluateEnvDrift(t *testing.T) {
	cur := map[string]EnvResult{"site-b": healthyEnv(), "site-c": healthyEnv()}
	base := baselineOf(map[string]EnvResult{"site-a": healthyEnv(), "site-b": healthyEnv()})

	failures, warnings := Evaluate(cur, base, true, DefaultTolerance)
	if len(failures) != 1 || !strings.Contains(failures[0], "site-a") {
		t.Fatalf("missing env: failures=%v", failures)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "site-c") {
		t.Fatalf("extra env: warnings=%v", warnings)
	}
}

// Faster-than-baseline runs never fail: the gate bounds regressions,
// not improvements.
func TestEvaluateImprovementPasses(t *testing.T) {
	fast := healthyEnv()
	fast.SpectraPerSec = 9000
	fast.ComputeP50 = 0.0001
	fast.ComputeP99 = 0.0002
	fast.FuseP50 = 0.00005
	fast.FuseP99 = 0.0001
	cur := map[string]EnvResult{"site-a": fast}
	base := baselineOf(map[string]EnvResult{"site-a": healthyEnv()})

	failures, warnings := Evaluate(cur, base, true, DefaultTolerance)
	if len(failures) != 0 || len(warnings) != 0 {
		t.Fatalf("improved run: failures=%v warnings=%v", failures, warnings)
	}
}

// bestOf folds per-metric: throughput keeps the max, latency and wall
// the min, exactness fields ride along from the first repeat.
func TestBestOf(t *testing.T) {
	a := healthyEnv()
	b := healthyEnv()
	b.SpectraPerSec = 2000
	b.ComputeP50 = 0.0005
	b.WallSeconds = 0.25
	a.FuseP99 = 0.001

	got := bestOf(a, b)
	if got.SpectraPerSec != 2000 || got.ComputeP50 != 0.0005 || got.WallSeconds != 0.25 || got.FuseP99 != 0.001 {
		t.Fatalf("bestOf = %+v", got)
	}
	if got.FixParity != a.FixParity || got.Fixes != a.Fixes {
		t.Fatalf("bestOf dropped exactness fields: %+v", got)
	}
}
