// Command dwatch-bench regenerates every figure of the D-Watch paper's
// evaluation as text tables: Figs. 3, 4, 9, 10, 12-19, 21/22, the
// Section 8 latency budget, and the design-choice ablations.
//
// Usage:
//
//	dwatch-bench [-fig all|3|4|9|10|12|13|14|15|16|17|18|19|21|latency|ablations]
//	             [-reps N] [-locations N] [-seed N] [-fast]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dwatch/internal/experiments"
)

type printer interface{ Print(io.Writer) }

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (all, 3, 4, 9, 10, 12, 13, 14, 15, 16, 17, 18, 19, 21, latency, doppler, ablations)")
	reps := flag.Int("reps", 0, "trials per measurement point (0 = default)")
	locations := flag.Int("locations", 0, "max test locations per room (0 = default)")
	seed := flag.Int64("seed", 0, "simulation seed (0 = default)")
	fast := flag.Bool("fast", false, "endpoint-only sweeps for a quick look")
	csvDir := flag.String("csv", "", "also write each figure's series as <dir>/fig<id>.csv")
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	opts := experiments.Options{Seed: *seed, Reps: *reps, MaxLocations: *locations, Fast: *fast}

	type entry struct {
		name string
		run  func(experiments.Options) (printer, error)
	}
	all := []entry{
		{"3", wrap(experiments.Fig3PhaseOffsets)},
		{"4", wrap(experiments.Fig4MusicBlocking)},
		{"9", wrap(experiments.Fig9Calibration)},
		{"10", wrap(experiments.Fig10AoAError)},
		{"12", wrap(experiments.Fig12PMusicBlocking)},
		{"13", wrap(experiments.Fig13DetectionRate)},
		{"14", wrap(experiments.Fig14Localization)},
		{"15", wrap(experiments.Fig15Antennas)},
		{"16", wrap(experiments.Fig16Reflectors)},
		{"17", wrap(experiments.Fig17Tags)},
		{"18", wrap(experiments.Fig18Height)},
		{"19", wrap(experiments.Fig19MultiTarget)},
		{"21", wrap(experiments.Fig21FistTracking)},
		{"latency", wrap(experiments.Latency)},
		{"doppler", wrap(experiments.ExtensionDoppler)},
		{"ablations", runAblations},
	}

	want := strings.Split(*fig, ",")
	matched := false
	for _, e := range all {
		if !selected(want, e.name) {
			continue
		}
		matched = true
		start := time.Now()
		p, err := e.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig %s: %v\n", e.name, err)
			os.Exit(1)
		}
		p.Print(os.Stdout)
		if *csvDir != "" {
			if cw, ok := p.(experiments.CSVWriter); ok {
				path := filepath.Join(*csvDir, "fig"+e.name+".csv")
				file, err := os.Create(path)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if err := cw.WriteCSV(file); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				file.Close()
				fmt.Printf("[csv: %s]\n", path)
			}
		}
		fmt.Printf("[fig %s took %s]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func selected(want []string, name string) bool {
	for _, w := range want {
		if w == "all" || w == name {
			return true
		}
	}
	return false
}

// wrap adapts a typed experiment function to the printer interface.
func wrap[T printer](f func(experiments.Options) (T, error)) func(experiments.Options) (printer, error) {
	return func(o experiments.Options) (printer, error) {
		r, err := f(o)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
}

// multiPrinter prints a sequence of results.
type multiPrinter []printer

func (m multiPrinter) Print(w io.Writer) {
	for _, p := range m {
		p.Print(w)
	}
}

func runAblations(opts experiments.Options) (printer, error) {
	var out multiPrinter
	r1, err := experiments.AblationSmoothing(opts)
	if err != nil {
		return nil, err
	}
	out = append(out, r1)
	r2, err := experiments.AblationNormalization(opts)
	if err != nil {
		return nil, err
	}
	out = append(out, r2)
	r3, err := experiments.AblationOptimizer(opts)
	if err != nil {
		return nil, err
	}
	out = append(out, r3)
	r4, err := experiments.AblationGridSize(opts)
	if err != nil {
		return nil, err
	}
	out = append(out, r4)
	r5, err := experiments.AblationOutlierRejection(opts)
	if err != nil {
		return nil, err
	}
	out = append(out, r5)
	r6, err := experiments.AblationSecondOrder(opts)
	if err != nil {
		return nil, err
	}
	out = append(out, r6)
	return out, nil
}
