package main

import (
	"fmt"
	"log/slog"
	"os"
)

// newLogger builds the slog sink selected by -log-format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}
