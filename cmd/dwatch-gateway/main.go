// dwatch-gateway is the fan-in front of a dwatchd cluster: one process
// hosting the membership directory (join / heartbeat / leave) and the
// /api/v1 proxy that routes every environment-scoped request — the
// positions SSE stream included — to the node currently owning that
// environment. Nodes join with `dwatchd -env-dir ... -cluster <url>`.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dwatch/internal/cluster"
	"dwatch/internal/obs"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "gateway listen address")
	slots := flag.Int("slots", 16, "environment slot count for the placement ring (must match across restarts)")
	heartbeat := flag.Duration("heartbeat", cluster.DefaultHeartbeat, "node heartbeat cadence; nodes missing 3 beats are expired")
	retries := flag.Int("proxy-retries", 5, "re-resolve attempts for a request landing mid-handoff")
	retryDelay := flag.Duration("proxy-retry-delay", 100*time.Millisecond, "pause between mid-handoff retries")
	scrapeInterval := flag.Duration("scrape-interval", 5*time.Second, "federation scrape cadence for node metrics/health pulls")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dwatch-gateway:", err)
		os.Exit(1)
	}

	dir := cluster.NewDirectory(
		cluster.WithSlots(*slots),
		cluster.WithHeartbeat(*heartbeat),
		cluster.WithDirLogger(logger),
	)
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg)
	obs.RegisterRuntime(reg)
	gw := cluster.NewGateway(dir,
		cluster.WithGatewayLogger(logger),
		cluster.WithRetry(*retries, *retryDelay),
		cluster.WithGatewayObs(reg),
		cluster.WithScrapeInterval(*scrapeInterval),
	)
	fedCtx, fedCancel := context.WithCancel(context.Background())
	defer fedCancel()
	go gw.RunFederation(fedCtx)

	srv := &http.Server{Addr: *listen, Handler: gw.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("gateway up", "addr", *listen, "slots", *slots, "heartbeat", *heartbeat)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Error("gateway listener failed", "error", err)
		os.Exit(1)
	case <-sig:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("shutdown", "error", err)
		os.Exit(1)
	}
}
