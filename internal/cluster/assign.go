// Package cluster is the multi-process fleet plane: a Directory that
// tracks dwatchd nodes and assigns environment slots to them, an Agent
// that runs inside each node and reconciles its fleet against the
// directory's orders, and a Gateway that fans /api/v1 requests in
// across the node set through the typed api.Client.
//
// Placement composes two hashes. An environment maps to a slot on the
// fleet's consistent-hash ring (fleet.Ring — the same slot surfaced on
// /api/v1/envs since the single-process fleet), and a slot maps to a
// node by rendezvous hashing over the live node set. Ring stability
// bounds churn when the slot count grows; rendezvous stability bounds
// churn when nodes come and go — losing one node moves only that
// node's slots, and every survivor keeps exactly what it had.
package cluster

import (
	"hash/fnv"
	"strconv"

	"dwatch/internal/fleet"
)

// AssignSlot picks the owning node for a slot by rendezvous (highest
// random weight) hashing: every node scores the slot and the highest
// score wins. Deterministic in the node *set* — order does not matter
// — and minimal-churn: removing a node reassigns only its own slots.
// Returns "" for an empty node set.
func AssignSlot(slot int, nodes []string) string {
	var best string
	var bestScore uint64
	for _, n := range nodes {
		h := fnv.New64a()
		h.Write([]byte("slot-" + strconv.Itoa(slot) + "@" + n))
		score := h.Sum64()
		// Tie-break on the node ID so equal scores (vanishingly rare
		// but possible) still resolve identically everywhere.
		if best == "" || score > bestScore || (score == bestScore && n > best) {
			best, bestScore = n, score
		}
	}
	return best
}

// Assignments maps every environment to its owning node: env → slot
// via the ring, slot → node via rendezvous. Returns nil for an empty
// node set.
func Assignments(envs []string, nodes []string, ring *fleet.Ring) map[string]string {
	if len(nodes) == 0 || len(envs) == 0 {
		return nil
	}
	// Slots repeat across envs; resolve each slot's owner once.
	slotOwner := map[int]string{}
	out := make(map[string]string, len(envs))
	for _, e := range envs {
		slot := ring.Slot(e)
		owner, ok := slotOwner[slot]
		if !ok {
			owner = AssignSlot(slot, nodes)
			slotOwner[slot] = owner
		}
		out[e] = owner
	}
	return out
}
