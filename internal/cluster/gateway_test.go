package cluster

import (
	"context"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"dwatch/internal/api"
	"dwatch/internal/api/adapt"
	"dwatch/internal/fleet"
	"dwatch/internal/obs"
	"dwatch/internal/serve"
	"dwatch/internal/sim"
)

// tableCfg is the cheap two-reader deployment the fleet tests use.
func tableCfg(seed int64) sim.Config {
	cfg := sim.TableConfig()
	cfg.Seed = seed
	return cfg
}

// testNode is one in-process dwatchd: fleet + serve plane + cluster
// agent, the same wiring cmd/dwatchd -cluster assembles.
type testNode struct {
	id    string
	fleet *fleet.Fleet
	hub   *serve.Hub
	reg   *obs.Registry
	ts    *httptest.Server
	agent *Agent
}

func newTestNode(t *testing.T, id, gatewayURL, walRoot string, catalog map[string]sim.Config) *testNode {
	t.Helper()
	reg := obs.NewRegistry()
	hub := serve.NewHub(serve.WithHubObs(reg))
	fopts := []fleet.Option{fleet.WithObs(reg), fleet.WithHub(hub)}
	if walRoot != "" {
		fopts = append(fopts, fleet.WithWALRoot(walRoot))
	}
	f := fleet.New(fopts...)
	plane := serve.New(
		serve.WithRegistry(reg),
		serve.WithHub(hub),
		serve.WithEnvs(f.Infos),
		serve.WithEnvLookup(f.EnvHandle),
		serve.WithReady(f.Ready),
		serve.WithFleetStats(func() api.FleetStats {
			out := api.FleetStats{}
			for _, id := range f.IDs() {
				if e, ok := f.Env(id); ok && e.Pipeline() != nil {
					out[id] = adapt.PipelineStats(e.Pipeline().Stats())
				}
			}
			return out
		}),
	)
	ts := httptest.NewServer(plane.Handler())
	n := &testNode{
		id: id, fleet: f, hub: hub, reg: reg, ts: ts,
		agent: NewAgent(id, ts.URL, gatewayURL, f, catalog),
	}
	t.Cleanup(func() {
		ts.Close()
		f.Close()
	})
	return n
}

// newTestGateway boots a directory + gateway over httptest.
func newTestGateway(t *testing.T, opts ...GatewayOption) (*Gateway, *httptest.Server) {
	t.Helper()
	dir := NewDirectory(WithHeartbeat(100 * time.Millisecond))
	gw := NewGateway(dir, append([]GatewayOption{WithRetry(10, 20*time.Millisecond)}, opts...)...)
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return gw, ts
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGatewayRouting: two nodes with disjoint catalogs behind one
// gateway — union listing, env-scoped routing to the owner, and the
// three 404 flavors (gateway's unknown-env, node's trace-not-found
// pass-through, unknown endpoint).
func TestGatewayRouting(t *testing.T) {
	ctx := context.Background()
	_, gts := newTestGateway(t)
	a := newTestNode(t, "node-a", gts.URL, "", map[string]sim.Config{"env-a": tableCfg(1)})
	b := newTestNode(t, "node-b", gts.URL, "", map[string]sim.Config{"env-b": tableCfg(2)})

	// Join adopts immediately: each node is its env's only candidate.
	for _, n := range []*testNode{a, b} {
		if err := n.agent.Join(ctx); err != nil {
			t.Fatal(err)
		}
		if err := n.agent.Sync(ctx); err != nil { // report ownership
			t.Fatal(err)
		}
	}
	if got := a.fleet.IDs(); len(got) != 1 || got[0] != "env-a" {
		t.Fatalf("node-a owns %v, want [env-a]", got)
	}
	if got := b.fleet.IDs(); len(got) != 1 || got[0] != "env-b" {
		t.Fatalf("node-b owns %v, want [env-b]", got)
	}

	// Traffic on both environments.
	for _, n := range []struct {
		node *testNode
		env  string
	}{{a, "env-a"}, {b, "env-b"}} {
		if err := n.node.fleet.Simulate(ctx, n.env, 1, 4, 0); err != nil {
			t.Fatal(err)
		}
		waitFor(t, n.env+" fix", func() bool {
			_, ok := n.node.hub.LatestForEnv(n.env)
			return ok
		})
	}

	client := api.NewClient(gts.URL)
	client.Strict = true

	// Union listing, stamped with the serving node.
	envs, err := client.Envs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs.Envs) != 2 {
		t.Fatalf("gateway envs = %+v, want 2", envs.Envs)
	}
	gotNodes := map[string]string{}
	for _, e := range envs.Envs {
		gotNodes[e.ID] = e.Node
	}
	if gotNodes["env-a"] != "node-a" || gotNodes["env-b"] != "node-b" {
		t.Fatalf("env→node stamping = %v", gotNodes)
	}

	// Env-scoped GETs route to the owner.
	pos, err := client.Positions(ctx, "env-a")
	if err != nil || len(pos.Positions) == 0 {
		t.Fatalf("positions via gateway = %+v, %v", pos, err)
	}
	if pos.Positions[0].Env != "env-a" {
		t.Fatalf("routed to the wrong env: %+v", pos.Positions[0])
	}
	stats, err := client.EnvStats(ctx, "env-b")
	if err != nil || stats.ReportsIn == 0 {
		t.Fatalf("stats via gateway = %+v, %v", stats, err)
	}
	if _, err := client.Health(ctx, "env-a"); err != nil {
		t.Fatalf("health via gateway: %v", err)
	}
	traces, err := client.Traces(ctx, "env-b")
	if err != nil || len(traces.Traces) == 0 {
		t.Fatalf("traces via gateway = %+v, %v", traces, err)
	}

	// Gateway 404: the env exists nowhere in the cluster.
	_, err = client.Positions(ctx, "no-such-env")
	if api.ErrorCode(err) != api.CodeEnvNotFound {
		t.Fatalf("unknown env error = %v, want %s", err, api.CodeEnvNotFound)
	}

	// Node 404 pass-through: the env resolves and routes, and the
	// node's own trace_not_found comes back verbatim.
	_, err = client.Trace(ctx, "env-a", "no-such-trace")
	if api.ErrorCode(err) != "trace_not_found" {
		t.Fatalf("missing trace error = %v, want trace_not_found", err)
	}

	// Unknown endpoint under a known env.
	_, err = client.EnvStats(ctx, "env-a/bogus")
	if api.ErrorCode(err) != "not_found" {
		t.Fatalf("unknown endpoint error = %v, want not_found", err)
	}

	// Cluster status through the gateway surface.
	st, err := client.Cluster(ctx)
	if err != nil || st.Role != "gateway" || len(st.Nodes) != 2 {
		t.Fatalf("cluster status = %+v, %v", st, err)
	}
	owners := []string{st.Assignments["env-a"], st.Assignments["env-b"]}
	sort.Strings(owners)
	if owners[0] != "node-a" || owners[1] != "node-b" {
		t.Fatalf("assignments = %v", st.Assignments)
	}
}

// TestGatewaySSEPassThrough: the position frame relayed through the
// gateway is byte-identical to the frame the node serves directly.
func TestGatewaySSEPassThrough(t *testing.T) {
	ctx := context.Background()
	_, gts := newTestGateway(t)
	n := newTestNode(t, "node-a", gts.URL, "", map[string]sim.Config{"hall": tableCfg(3)})
	if err := n.agent.Join(ctx); err != nil {
		t.Fatal(err)
	}
	if err := n.agent.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if err := n.fleet.Simulate(ctx, "hall", 1, 4, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "hall fix", func() bool { _, ok := n.hub.LatestForEnv("hall"); return ok })

	firstFrame := func(baseURL string) []byte {
		t.Helper()
		c := api.NewClient(baseURL)
		sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		var frame []byte
		stop := context.Canceled
		err := c.WatchPositions(sctx, "hall", func(raw []byte, _ api.Position) error {
			frame = append([]byte(nil), raw...)
			return stop
		})
		if err != stop {
			t.Fatalf("watch %s: %v", baseURL, err)
		}
		return frame
	}

	direct := firstFrame(n.ts.URL)
	viaGateway := firstFrame(gts.URL)
	if string(direct) != string(viaGateway) {
		t.Fatalf("gateway frame differs from the node's:\nnode:    %s\ngateway: %s", direct, viaGateway)
	}
}
