package cluster

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync/atomic"
	"time"

	"dwatch/internal/api"
	"dwatch/internal/fleet"
	"dwatch/internal/pipeline"
	"dwatch/internal/sim"
)

// Agent is the node side of the cluster plane: it joins the gateway's
// directory, heartbeats its owned-environment set, and reconciles its
// fleet against the Assigned set in every response — fleet.Add (WAL
// replay included) for gained environments, fleet.Remove (graceful
// drain, WAL close) for lost ones. The drain-before-adopt ordering of
// the two-phase handoff falls out of the heartbeat protocol: the agent
// removes first, then its *next* heartbeat stops reporting the env
// owned, and only then does the directory assign it to the gaining
// node.
type Agent struct {
	id      string
	addr    string
	client  *api.Client
	fleet   *fleet.Fleet
	catalog map[string]sim.Config
	logger  *slog.Logger
	popts   func(envID string) []pipeline.Option
	onAdopt func(envID string)

	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	running  atomic.Bool
}

// AgentOption configures NewAgent.
type AgentOption func(*Agent)

// WithAgentLogger sets the agent's log sink.
func WithAgentLogger(l *slog.Logger) AgentOption { return func(a *Agent) { a.logger = l } }

// WithPipelineOptions supplies per-environment pipeline options used
// when the agent adopts an environment.
func WithPipelineOptions(fn func(envID string) []pipeline.Option) AgentOption {
	return func(a *Agent) { a.popts = fn }
}

// WithOnAdopt registers a hook called after each successful adoption —
// the seam a driver uses to start traffic (e.g. fleet.Simulate) on the
// environments this node currently owns.
func WithOnAdopt(fn func(envID string)) AgentOption { return func(a *Agent) { a.onAdopt = fn } }

// NewAgent builds an agent for one node. id names the node in the
// directory, addr is the node's serve-plane base URL (what the gateway
// proxies to), gatewayURL locates the directory, and catalog maps
// every environment this node can host to its deployment config.
func NewAgent(id, addr, gatewayURL string, f *fleet.Fleet, catalog map[string]sim.Config, opts ...AgentOption) *Agent {
	a := &Agent{
		id: id, addr: addr,
		client:  api.NewClient(gatewayURL),
		fleet:   f,
		catalog: catalog,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, o := range opts {
		o(a)
	}
	if a.logger == nil {
		a.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return a
}

// CatalogIDs lists the environments the agent can host, sorted.
func (a *Agent) CatalogIDs() []string {
	ids := make([]string, 0, len(a.catalog))
	for id := range a.catalog {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Owned lists the environments the node's fleet is actively serving.
func (a *Agent) Owned() []string { return a.fleet.IDs() }

// Join announces the node and applies the directory's first orders.
func (a *Agent) Join(ctx context.Context) error {
	resp, err := a.client.Join(ctx, api.JoinRequest{
		ID: a.id, Addr: a.addr,
		Envs:  a.CatalogIDs(),
		Owned: a.Owned(),
	})
	if err != nil {
		return fmt.Errorf("cluster: join: %w", err)
	}
	a.apply(resp)
	return nil
}

// Sync performs one heartbeat + reconcile step — the deterministic
// unit the Run loop repeats and tests drive directly. An "unknown
// node" rejection (gateway restarted, or this node expired) re-joins.
func (a *Agent) Sync(ctx context.Context) error {
	resp, err := a.client.Heartbeat(ctx, api.HeartbeatRequest{ID: a.id, Owned: a.Owned()})
	if err != nil {
		if api.ErrorCode(err) == "" && ctx.Err() != nil {
			return ctx.Err()
		}
		a.logger.Warn("heartbeat rejected, re-joining", "node", a.id, "error", err)
		return a.Join(ctx)
	}
	a.apply(resp)
	return nil
}

// apply reconciles the fleet against the Assigned set: drains first
// (release shows up in the next heartbeat), then adopts.
func (a *Agent) apply(resp api.HeartbeatResponse) {
	if ms := resp.IntervalMS; ms > 0 {
		a.interval = time.Duration(ms) * time.Millisecond
	}
	assigned := toSet(resp.Assigned)
	for _, id := range a.Owned() {
		if !assigned[id] {
			a.logger.Info("draining environment", "env", id, "node", a.id, "epoch", resp.Epoch)
			if err := a.fleet.Remove(id); err != nil {
				a.logger.Error("drain failed", "env", id, "error", err)
			}
		}
	}
	owned := toSet(a.Owned())
	for _, id := range resp.Assigned {
		if owned[id] {
			continue
		}
		cfg, ok := a.catalog[id]
		if !ok {
			a.logger.Error("assigned an environment outside the catalog", "env", id, "node", a.id)
			continue
		}
		var popts []pipeline.Option
		if a.popts != nil {
			popts = a.popts(id)
		}
		a.logger.Info("adopting environment", "env", id, "node", a.id, "epoch", resp.Epoch)
		if _, err := a.fleet.Add(id, cfg, popts...); err != nil {
			a.logger.Error("adoption failed", "env", id, "error", err)
			continue
		}
		if a.onAdopt != nil {
			a.onAdopt(id)
		}
	}
}

// Run joins and then heartbeats at the directory's cadence until ctx
// ends or Close is called, then leaves. Errors inside the loop are
// logged and retried on the next beat — a gateway blip must not take
// the node's environments down with it.
func (a *Agent) Run(ctx context.Context) error {
	a.running.Store(true)
	defer close(a.done)
	if err := a.Join(ctx); err != nil {
		a.logger.Warn("initial join failed, will retry", "error", err)
	}
	for {
		interval := a.interval
		if interval <= 0 {
			interval = DefaultHeartbeat
		}
		select {
		case <-ctx.Done():
			a.leave()
			return ctx.Err()
		case <-a.stop:
			a.leave()
			return nil
		case <-time.After(interval):
			if err := a.Sync(ctx); err != nil && ctx.Err() == nil {
				a.logger.Warn("sync failed", "node", a.id, "error", err)
			}
		}
	}
}

// Close stops a Run loop (waiting for it to leave the directory); on
// an agent driven purely through Join/Sync it just sends the leave.
func (a *Agent) Close() {
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	if a.running.Load() {
		<-a.done
		return
	}
	a.leave()
}

func (a *Agent) leave() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := a.client.Leave(ctx, api.LeaveRequest{ID: a.id}); err != nil {
		a.logger.Warn("leave failed", "node", a.id, "error", err)
	}
}
