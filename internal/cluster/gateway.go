package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"dwatch/internal/api"
	"dwatch/internal/obs"
)

// Gateway is the fan-in front of a dwatchd cluster: one address that
// serves the whole /api/v1 surface by routing each request to the node
// that owns the environment. It embeds the Directory (so nodes join
// and heartbeat against the same process) and talks to nodes
// exclusively through the typed api.Client — the gateway never
// hand-assembles a node URL or parses a response shape of its own.
//
// Routing is ownership-first: requests go to the node currently
// reporting the environment owned. A request that lands mid-handoff
// (the old owner already drained, the new owner not yet adopted) is
// retried against the freshly-resolved owner a few times before the
// node's 404 is passed through.
type Gateway struct {
	dir    *Directory
	logger *slog.Logger

	// retry caps the re-resolve attempts for a request that hits a
	// node which no longer serves the environment.
	retries    int
	retryDelay time.Duration

	mu      sync.Mutex
	clients map[string]*api.Client // node addr → client

	// Federation scraper state (federation.go): the gateway's own
	// registry plus the last-good pull from each live node.
	reg            *obs.Registry
	scrapeInterval time.Duration
	scrapes        *obs.CounterVec
	fedNodes       *obs.Gauge
	fedMu          sync.Mutex
	fed            map[string]*nodeScrape // node ID → last scrape
}

// GatewayOption configures NewGateway.
type GatewayOption func(*Gateway)

// WithGatewayLogger sets the gateway's log sink.
func WithGatewayLogger(l *slog.Logger) GatewayOption { return func(g *Gateway) { g.logger = l } }

// WithRetry tunes the mid-handoff retry policy (default 5 attempts,
// 100ms apart).
func WithRetry(attempts int, delay time.Duration) GatewayOption {
	return func(g *Gateway) { g.retries = attempts; g.retryDelay = delay }
}

// WithGatewayObs backs the gateway's own /metrics page (build info,
// runtime collector, federation-scraper telemetry) with reg. Without
// it the gateway still federates node pages but contributes no
// node="gateway" series of its own.
func WithGatewayObs(reg *obs.Registry) GatewayOption { return func(g *Gateway) { g.reg = reg } }

// WithScrapeInterval sets the federation scrape cadence (default 5 s).
func WithScrapeInterval(d time.Duration) GatewayOption {
	return func(g *Gateway) {
		if d > 0 {
			g.scrapeInterval = d
		}
	}
}

// NewGateway builds a gateway around a directory.
func NewGateway(dir *Directory, opts ...GatewayOption) *Gateway {
	g := &Gateway{
		dir:            dir,
		retries:        5,
		retryDelay:     100 * time.Millisecond,
		clients:        map[string]*api.Client{},
		scrapeInterval: 5 * time.Second,
		fed:            map[string]*nodeScrape{},
	}
	for _, o := range opts {
		o(g)
	}
	if g.logger == nil {
		g.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	// The label is "target", not "node": every sample on the federated
	// page gets a node label spliced in, and the gateway's own series
	// must not already carry one.
	g.scrapes = g.reg.CounterVec("dwatch_federation_scrapes_total",
		"Federation scrape attempts by target node and outcome.", "target", "outcome")
	g.fedNodes = g.reg.Gauge("dwatch_federation_nodes",
		"Live nodes the federation scraper holds fresh data for.")
	return g
}

// client returns (building once) the typed client for a node address.
func (g *Gateway) client(addr string) *api.Client {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.clients[addr]
	if c == nil {
		c = api.NewClient(addr)
		g.clients[addr] = c
	}
	return c
}

// Handler returns the gateway's HTTP surface.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", g.handleMetrics)
	mux.HandleFunc("/api/v1/cluster", g.handleCluster)
	// The literal health route is more specific than the control-plane
	// prefix below, so ServeMux ranks it first.
	mux.HandleFunc("/api/v1/cluster/health", g.handleClusterHealth)
	mux.HandleFunc("/api/v1/cluster/", g.handleClusterControl)
	mux.HandleFunc("/api/v1/envs", g.handleEnvs)
	mux.HandleFunc("/api/v1/nodes/{node}/metrics", g.handleNodeMetrics)
	mux.HandleFunc("/api/v1/nodes/{node}/profiles", g.handleNodeProfiles)
	mux.HandleFunc("/api/v1/nodes/{node}/profiles/{name}", g.handleNodeProfile)
	mux.HandleFunc("/api/v1/", g.handleEnvRoutes)
	return mux
}

func (g *Gateway) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("%s not allowed on /api/v1/cluster", r.Method))
		return
	}
	writeJSON(w, g.dir.Status())
}

// handleClusterControl is the node-facing control surface: join,
// heartbeat, leave.
func (g *Gateway) handleClusterControl(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("%s not allowed on %s", r.Method, r.URL.Path))
		return
	}
	op := strings.TrimPrefix(r.URL.Path, "/api/v1/cluster/")
	switch op {
	case "join":
		var req api.JoinRequest
		if !decodeBody(w, r, &req) {
			return
		}
		resp, err := g.dir.Join(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_join", err.Error())
			return
		}
		writeJSON(w, resp)
	case "heartbeat":
		var req api.HeartbeatRequest
		if !decodeBody(w, r, &req) {
			return
		}
		resp, err := g.dir.Heartbeat(req)
		if err != nil {
			writeError(w, http.StatusConflict, "unknown_node", err.Error())
			return
		}
		writeJSON(w, resp)
	case "leave":
		var req api.LeaveRequest
		if !decodeBody(w, r, &req) {
			return
		}
		resp, err := g.dir.Leave(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_leave", err.Error())
			return
		}
		writeJSON(w, resp)
	default:
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("no cluster operation %q", op))
	}
}

// handleEnvs unions every live node's environment listing, stamping
// each entry with the serving node's ID.
func (g *Gateway) handleEnvs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("%s not allowed on /api/v1/envs", r.Method))
		return
	}
	var envs []api.EnvInfo
	for _, n := range g.dir.Nodes() {
		resp, err := g.client(n.Addr).Envs(r.Context())
		if err != nil {
			g.logger.Warn("envs fan-in: node unreachable", "node", n.ID, "error", err)
			continue
		}
		for _, e := range resp.Envs {
			e.Node = n.ID
			envs = append(envs, e)
		}
	}
	sort.Slice(envs, func(i, j int) bool { return envs[i].ID < envs[j].ID })
	writeJSON(w, api.EnvsResponse{Envs: envs})
}

// handleEnvRoutes routes /api/v1/{env}/{endpoint} to the owning node.
func (g *Gateway) handleEnvRoutes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("%s not allowed on %s", r.Method, r.URL.Path))
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/")
	env, endpoint, ok := strings.Cut(rest, "/")
	if !ok || env == "" || endpoint == "" {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("no route %s on the gateway", r.URL.Path))
		return
	}
	if endpoint == "positions" && wantsEventStream(r) {
		g.streamPositions(w, r, env)
		return
	}
	g.proxyTyped(w, r, env, endpoint)
}

// proxyTyped resolves the owner and relays one env-scoped GET through
// the typed client, retrying on mid-handoff misses.
func (g *Gateway) proxyTyped(w http.ResponseWriter, r *http.Request, env, endpoint string) {
	var lastErr error
	for attempt := 0; attempt <= g.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(g.retryDelay):
			}
		}
		nodeID, addr, known := g.dir.Owner(env)
		if !known {
			writeError(w, http.StatusNotFound, api.CodeEnvNotFound,
				fmt.Sprintf("no environment %q in the cluster", env))
			return
		}
		if addr == "" {
			lastErr = fmt.Errorf("environment %q has no live owner", env)
			continue
		}
		v, err := g.callTyped(r.Context(), g.client(addr), env, endpoint)
		if err == nil {
			writeJSON(w, v)
			return
		}
		var apiErr *api.APIError
		if errors.As(err, &apiErr) {
			if apiErr.Code == api.CodeEnvNotFound {
				// The node we reached no longer (or does not yet)
				// serve this env — a handoff is in flight. Re-resolve.
				g.logger.Debug("retrying mid-handoff request", "env", env,
					"node", nodeID, "attempt", attempt)
				lastErr = err
				continue
			}
			// Any other API error (trace_not_found, wal_unavailable,
			// ...) is the node's real answer: pass it through.
			writeError(w, apiErr.Status, apiErr.Code, apiErr.Message)
			return
		}
		lastErr = err
	}
	if apiErr := (*api.APIError)(nil); errors.As(lastErr, &apiErr) {
		writeError(w, apiErr.Status, apiErr.Code, apiErr.Message)
		return
	}
	writeError(w, http.StatusBadGateway, "bad_gateway",
		fmt.Sprintf("environment %q: %v", env, lastErr))
}

// callTyped dispatches one env-scoped endpoint through the typed
// client. Adding an endpoint to the API surface means adding an arm
// here — the compiler keeps the gateway and the contract in lockstep.
func (g *Gateway) callTyped(ctx context.Context, c *api.Client, env, endpoint string) (any, error) {
	switch {
	case endpoint == "positions":
		return c.Positions(ctx, env)
	case endpoint == "stats":
		return c.EnvStats(ctx, env)
	case endpoint == "health":
		return c.Health(ctx, env)
	case endpoint == "wal":
		return c.WAL(ctx, env)
	case endpoint == "traces":
		return c.Traces(ctx, env)
	case strings.HasPrefix(endpoint, "traces/") && !strings.Contains(endpoint[len("traces/"):], "/"):
		return c.Trace(ctx, env, endpoint[len("traces/"):])
	default:
		return nil, &api.APIError{Status: http.StatusNotFound, Code: "not_found",
			Message: fmt.Sprintf("no endpoint %q under an environment", endpoint)}
	}
}

// streamPositions relays an environment's SSE feed. Frames arrive
// through the typed client's watcher and are re-emitted byte-for-byte,
// so a consumer sees the same stream it would reading the node
// directly. The relay follows ownership: when the directory re-homes
// the environment mid-stream the gateway drops the old node's feed,
// attaches to the new owner, and resumes with its snapshot — the
// WAL-replayed prefix re-delivers under the same sequence numbers
// (identical payloads apart from the publish timestamp), exactly like
// a single node restarting, so consumers key on seq.
func (g *Gateway) streamPositions(w http.ResponseWriter, r *http.Request, env string) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "stream_unsupported",
			"response writer does not support streaming")
		return
	}
	if _, _, known := g.dir.Owner(env); !known {
		writeError(w, http.StatusNotFound, api.CodeEnvNotFound,
			fmt.Sprintf("no environment %q in the cluster", env))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for r.Context().Err() == nil {
		_, addr, known := g.dir.Owner(env)
		if !known || addr == "" {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(g.retryDelay):
			}
			continue
		}
		g.relayOnce(w, r, fl, env, addr)
		// Reattach (ownership moved, or the node went away) after a
		// beat, unless the client hung up.
		select {
		case <-r.Context().Done():
			return
		case <-time.After(g.retryDelay):
		}
	}
}

// relayOnce streams from one owner until the client hangs up, the node
// drops the stream, or the directory re-homes the environment. The
// ownership watch runs beside the blocking SSE read and cancels it the
// moment addr stops being the owner.
func (g *Gateway) relayOnce(w http.ResponseWriter, r *http.Request, fl http.Flusher, env, addr string) {
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		tick := time.NewTicker(g.retryDelay)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				if _, cur, _ := g.dir.Owner(env); cur != addr {
					cancel()
					return
				}
			}
		}
	}()
	err := g.client(addr).WatchPositions(ctx, env, func(raw []byte, p api.Position) error {
		if _, werr := fmt.Fprintf(w, "event: position\ndata: %s\n\n", raw); werr != nil {
			return werr
		}
		fl.Flush()
		return nil
	})
	if err != nil && r.Context().Err() == nil {
		g.logger.Debug("position stream interrupted", "env", env, "node_addr", addr, "error", err)
	}
}

// decodeBody strict-decodes a JSON request body, writing the uniform
// envelope on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return false
	}
	return true
}

func wantsEventStream(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "1" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError emits the same api.Error envelope the nodes use, so a
// client cannot tell (nor needs to) whether an error came from the
// gateway or the node behind it.
func writeError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(api.Error{Error: api.ErrorBody{Code: code, Message: message}})
}
