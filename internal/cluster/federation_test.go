package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dwatch/internal/api"
	"dwatch/internal/obs"
	"dwatch/internal/sim"
)

// fedPage pulls the gateway's federated exposition as text.
func fedPage(t *testing.T, gatewayURL string) string {
	t.Helper()
	page, err := api.NewClient(gatewayURL).Metrics(context.Background())
	if err != nil {
		t.Fatalf("federated metrics: %v", err)
	}
	return string(page)
}

// envRow finds one environment's row in a cluster-health rollup.
func envRow(t *testing.T, ch api.ClusterHealth, env string) api.EnvClusterHealth {
	t.Helper()
	for _, e := range ch.Envs {
		if e.Env == env {
			return e
		}
	}
	t.Fatalf("env %q missing from rollup %+v", env, ch)
	return api.EnvClusterHealth{}
}

// TestFederationEndToEnd is the observability plane's acceptance test:
// a gateway federating two in-process nodes. The federated /metrics
// page carries both nodes' families under distinct node labels, an env
// handoff moves the per-env series to the new owner without
// duplicating or resurrecting the old owner's, and the cluster-health
// rollup worst-ofs a burning env on one node while the other stays
// healthy.
func TestFederationEndToEnd(t *testing.T) {
	const env = "hall"
	ctx := context.Background()
	loser, winner := handoffPair(env)

	// Hand-stepped protocol: heartbeat TTL must not fire between syncs.
	dir := NewDirectory(WithHeartbeat(time.Hour))
	greg := obs.NewRegistry()
	obs.RegisterBuildInfo(greg)
	gw := NewGateway(dir, WithRetry(10, 20*time.Millisecond), WithGatewayObs(greg))
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(gts.Close)
	client := api.NewClient(gts.URL)
	client.Strict = true

	// aux-l runs an impossible SLO (sub-microsecond target, 0.5
	// objective) so every fix breaches: fast burn = 1/(1-0.5) = 2,
	// squarely in the degraded band. The contested env and aux-w carry
	// no SLO and must stay ok.
	cfg := tableCfg(7)
	burning := tableCfg(8)
	burning.SLO = &sim.SLOConfig{TargetMS: 1e-6, Objective: 0.5}
	walRoot := t.TempDir()
	nodeL := newTestNode(t, loser, gts.URL, walRoot,
		map[string]sim.Config{env: cfg, "aux-l": burning})
	nodeW := newTestNode(t, winner, gts.URL, walRoot,
		map[string]sim.Config{env: cfg, "aux-w": tableCfg(9)})

	// ---- Phase 1: the loser alone owns hall and aux-l. ----
	if err := nodeL.agent.Join(ctx); err != nil {
		t.Fatal(err)
	}
	if err := nodeL.agent.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "loser adoption", func() bool { return len(nodeL.fleet.IDs()) == 2 })
	for _, id := range []string{env, "aux-l"} {
		if err := nodeL.fleet.Simulate(ctx, id, 1, 4, 0); err != nil {
			t.Fatal(err)
		}
		waitFor(t, id+" fix", func() bool { _, ok := nodeL.hub.LatestForEnv(id); return ok })
	}

	gw.ScrapeOnce(ctx)
	page := fedPage(t, gts.URL)
	if !strings.Contains(page, `dwatch_federation_nodes{node="gateway"} 1`) {
		t.Fatalf("gateway's own series missing or wrong:\n%s", page)
	}
	if !strings.Contains(page, fmt.Sprintf(`dwatch_fleet_fixes_total{env=%q,node=%q}`, env, loser)) {
		t.Fatalf("loser's hall fixes series missing:\n%s", page)
	}
	if !strings.Contains(page, fmt.Sprintf(`dwatch_slo_burn_rate{env="aux-l",window="fast",node=%q}`, loser)) {
		t.Fatalf("aux-l SLO burn series missing:\n%s", page)
	}

	ch, err := client.ClusterHealth(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Status != api.HealthDegraded || ch.Nodes != 1 || ch.ScrapedNodes != 1 {
		t.Fatalf("phase-1 rollup = %+v, want degraded 1/1", ch)
	}
	// The walking target IS a drifting multipath (that is the paper's
	// premise), so hall's readers report drift: the rollup must carry
	// it through as a degraded env on the owner.
	row := envRow(t, ch, env)
	if row.Status != api.HealthDegraded || row.Node != loser || row.DriftingReaders == 0 {
		t.Fatalf("hall row = %+v, want degraded on %s with drifting readers", row, loser)
	}
	aux := envRow(t, ch, "aux-l")
	if aux.Status != api.HealthDegraded || aux.SLOFastBurn <= 1 || len(aux.Reasons) == 0 {
		t.Fatalf("aux-l row = %+v, want degraded with burn > 1", aux)
	}
	if aux.Fixes == 0 {
		t.Fatalf("aux-l fixes did not federate from the owner's stats: %+v", aux)
	}

	// ---- Phase 2: the winner joins; hall is mid-handoff. ----
	if err := nodeW.agent.Join(ctx); err != nil {
		t.Fatal(err)
	}
	if err := nodeW.agent.Sync(ctx); err != nil { // adopts aux-w, hall withheld
		t.Fatal(err)
	}
	gw.ScrapeOnce(ctx)
	page = fedPage(t, gts.URL)
	for _, want := range []string{
		fmt.Sprintf(`dwatch_fleet_fixes_total{env=%q,node=%q}`, env, loser),
		fmt.Sprintf(`dwatch_fleet_fixes_total{env="aux-w",node=%q}`, winner),
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("federated page missing %s:\n%s", want, page)
		}
	}
	// One merged family: a single TYPE header despite samples from two
	// nodes and the gateway's parser re-emitting both pages.
	if n := strings.Count(page, "# TYPE dwatch_fleet_fixes_total counter"); n != 1 {
		t.Fatalf("dwatch_fleet_fixes_total TYPE header appears %d times, want 1", n)
	}
	ch, err = client.ClusterHealth(ctx)
	if err != nil {
		t.Fatal(err)
	}
	row = envRow(t, ch, env)
	if !row.HandoffInProgress || row.Status != api.HealthDegraded {
		t.Fatalf("mid-handoff hall row = %+v, want handoff_in_progress degraded", row)
	}
	// The winner's idle env carries no traffic, no drift, no SLO: the
	// healthy-node contrast the worst-of rollup must preserve.
	if w := envRow(t, ch, "aux-w"); w.Status != api.HealthOK || w.Node != winner {
		t.Fatalf("aux-w row = %+v, want ok on %s", w, winner)
	}

	// ---- Phase 3: handoff completes; series must move, not multiply. ----
	if err := nodeL.agent.Sync(ctx); err != nil { // drains hall
		t.Fatal(err)
	}
	if err := nodeL.agent.Sync(ctx); err != nil { // reports release
		t.Fatal(err)
	}
	if err := nodeW.agent.Sync(ctx); err != nil { // adopts hall
		t.Fatal(err)
	}
	waitFor(t, "winner adoption", func() bool { return len(nodeW.fleet.IDs()) == 2 })
	if err := nodeW.agent.Sync(ctx); err != nil { // reports ownership
		t.Fatal(err)
	}
	if err := nodeW.fleet.Simulate(ctx, env, 1, 4, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "hall fix on the winner", func() bool {
		_, ok := nodeW.hub.LatestForEnv(env)
		return ok
	})

	gw.ScrapeOnce(ctx)
	page = fedPage(t, gts.URL)
	if !strings.Contains(page, fmt.Sprintf(`dwatch_fleet_fixes_total{env=%q,node=%q}`, env, winner)) {
		t.Fatalf("hall fixes did not move to the winner:\n%s", page)
	}
	// The drained owner's per-env series were Vec.Remove'd on drain and
	// must not resurrect on its page after the handoff.
	if strings.Contains(page, fmt.Sprintf(`{env=%q,node=%q}`, env, loser)) {
		t.Fatalf("loser still exports hall series after the handoff:\n%s", page)
	}
	if !strings.Contains(page, fmt.Sprintf(`dwatch_fleet_fixes_total{env="aux-l",node=%q}`, loser)) {
		t.Fatalf("loser's surviving aux-l series vanished:\n%s", page)
	}

	ch, err = client.ClusterHealth(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Nodes != 2 || ch.ScrapedNodes != 2 {
		t.Fatalf("phase-3 rollup = %+v, want 2 nodes scraped", ch)
	}
	row = envRow(t, ch, env)
	if row.Node != winner || row.HandoffInProgress {
		t.Fatalf("post-handoff hall row = %+v, want settled on %s", row, winner)
	}
	if row.Fixes == 0 {
		t.Fatalf("post-handoff hall fixes = 0: %+v", row)
	}
	if w := envRow(t, ch, "aux-w"); w.Status != api.HealthOK {
		t.Fatalf("aux-w row = %+v, want still ok", w)
	}
	// aux-l still burns, so the fleet-wide worst-of stays degraded.
	if ch.Status != api.HealthDegraded {
		t.Fatalf("overall status = %s, want degraded while aux-l burns", ch.Status)
	}
}

// TestFederationStaleEviction: a node that stops answering mid-scrape
// is evicted from the federated page at the next scrape, and a node
// that leaves the directory vanishes at render time without waiting
// for one.
func TestFederationStaleEviction(t *testing.T) {
	ctx := context.Background()
	dir := NewDirectory(WithHeartbeat(time.Hour))
	gw := NewGateway(dir, WithGatewayObs(obs.NewRegistry()))
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(gts.Close)

	a := newTestNode(t, "node-a", gts.URL, "", map[string]sim.Config{"env-a": tableCfg(1)})
	b := newTestNode(t, "node-b", gts.URL, "", map[string]sim.Config{"env-b": tableCfg(2)})
	for _, n := range []*testNode{a, b} {
		if err := n.agent.Join(ctx); err != nil {
			t.Fatal(err)
		}
		if err := n.agent.Sync(ctx); err != nil {
			t.Fatal(err)
		}
	}
	gw.ScrapeOnce(ctx)
	page := fedPage(t, gts.URL)
	if !strings.Contains(page, `node="node-a"`) || !strings.Contains(page, `node="node-b"`) {
		t.Fatalf("both nodes expected on the federated page:\n%s", page)
	}

	// Directory leave: the cached scrape is filtered out at render
	// time, before any rescrape happens.
	if _, err := dir.Leave(api.LeaveRequest{ID: "node-b"}); err != nil {
		t.Fatal(err)
	}
	page = fedPage(t, gts.URL)
	if strings.Contains(page, `node="node-b"`) {
		t.Fatalf("left node still on the federated page:\n%s", page)
	}
	if !strings.Contains(page, `node="node-a"`) {
		t.Fatalf("surviving node vanished with the leaver:\n%s", page)
	}

	// Mid-scrape death: node-a's plane dies while its directory entry
	// is still live. The failed scrape drops its cache.
	a.ts.Close()
	gw.ScrapeOnce(ctx)
	page = fedPage(t, gts.URL)
	if strings.Contains(page, `node="node-a"`) {
		t.Fatalf("dead node survived a failed scrape:\n%s", page)
	}
	if !strings.Contains(page, `node="gateway"`) {
		t.Fatalf("gateway's own series must outlive every node:\n%s", page)
	}
}

// TestFederationEscapedLabels: a sample whose label values carry
// backslashes, quotes, and newlines round-trips through the gateway's
// parser byte-identically, with only the node label spliced in.
func TestFederationEscapedLabels(t *testing.T) {
	ctx := context.Background()
	const raw = `# HELP weird_paths Windows paths and quoted speech.
# TYPE weird_paths counter
weird_paths{dir="C:\\temp\\x",msg="say \"hi\"\nloudly"} 42
weird_paths{dir="plain"} 0.25
`
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", obs.ContentType)
		fmt.Fprint(w, raw)
	}))
	t.Cleanup(fake.Close)

	dir := NewDirectory(WithHeartbeat(time.Hour))
	gw := NewGateway(dir)
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(gts.Close)
	if _, err := dir.Join(api.JoinRequest{ID: "fake", Addr: fake.URL}); err != nil {
		t.Fatal(err)
	}
	gw.ScrapeOnce(ctx)

	page := fedPage(t, gts.URL)
	for _, want := range []string{
		`weird_paths{dir="C:\\temp\\x",msg="say \"hi\"\nloudly",node="fake"} 42`,
		`weird_paths{dir="plain",node="fake"} 0.25`,
		"# HELP weird_paths Windows paths and quoted speech.",
		"# TYPE weird_paths counter",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("federated page missing %q:\n%s", want, page)
		}
	}
}
