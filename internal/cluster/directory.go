package cluster

import (
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"dwatch/internal/api"
	"dwatch/internal/fleet"
)

// DefaultHeartbeat is the cadence the directory asks nodes to report
// at; a node is expired after missing DefaultTTLBeats of them.
const (
	DefaultHeartbeat = 2 * time.Second
	DefaultTTLBeats  = 3
)

// DirOption configures NewDirectory.
type DirOption func(*Directory)

// WithSlots sets the environment hash-ring size (default 16, matching
// the in-process fleet).
func WithSlots(n int) DirOption { return func(d *Directory) { d.ring = fleet.NewRing(n) } }

// WithHeartbeat sets the heartbeat interval handed to nodes and the
// base of the expiry TTL (interval × DefaultTTLBeats).
func WithHeartbeat(interval time.Duration) DirOption {
	return func(d *Directory) { d.interval = interval }
}

// WithDirLogger sets the directory's log sink.
func WithDirLogger(l *slog.Logger) DirOption { return func(d *Directory) { d.logger = l } }

// WithClock pins the directory's time source — the test seam for TTL
// expiry.
func WithClock(now func() time.Time) DirOption { return func(d *Directory) { d.now = now } }

// member is one node's directory entry.
type member struct {
	id       string
	addr     string
	catalog  map[string]bool // envs the node can host
	owned    map[string]bool // envs the node reports actively serving
	lastSeen time.Time
}

// Directory is the cluster's membership and assignment authority,
// embedded in the gateway. Nodes Join, then Heartbeat; each heartbeat
// response carries the full set of environments the node should own.
//
// Handoff is two-phase through the Owned sets nodes report: when the
// desired owner of an environment changes (a node joined, left, or
// expired), the losing node sees the env missing from its Assigned
// set and drains it, while the gaining node is *not* told to adopt
// until no other live node reports the env owned. The WAL on shared
// storage is therefore never open in two processes at once.
type Directory struct {
	ring     *fleet.Ring
	interval time.Duration
	logger   *slog.Logger
	now      func() time.Time

	mu      sync.Mutex
	epoch   uint64
	members map[string]*member
}

// NewDirectory builds an empty directory.
func NewDirectory(opts ...DirOption) *Directory {
	d := &Directory{
		interval: DefaultHeartbeat,
		now:      time.Now,
		members:  map[string]*member{},
	}
	for _, o := range opts {
		o(d)
	}
	if d.ring == nil {
		d.ring = fleet.NewRing(16)
	}
	if d.logger == nil {
		d.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return d
}

// Join registers (or re-registers) a node and returns its marching
// orders. Idempotent: a restarted node re-joins under its ID and the
// stale entry is replaced, keeping whatever ownership it reports.
func (d *Directory) Join(req api.JoinRequest) (api.HeartbeatResponse, error) {
	if req.ID == "" || req.Addr == "" {
		return api.HeartbeatResponse{}, fmt.Errorf("cluster: join needs id and addr")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked()
	m := &member{
		id: req.ID, addr: req.Addr,
		catalog:  toSet(req.Envs),
		owned:    toSet(req.Owned),
		lastSeen: d.now(),
	}
	d.members[req.ID] = m
	d.epoch++
	d.logger.Info("node joined", "node", req.ID, "addr", req.Addr,
		"envs", len(m.catalog), "epoch", d.epoch)
	return d.ordersLocked(m), nil
}

// Heartbeat refreshes a node's liveness and ownership report and
// returns its current orders. An unknown ID (expired, or the gateway
// restarted) is an error; the node should re-Join.
func (d *Directory) Heartbeat(req api.HeartbeatRequest) (api.HeartbeatResponse, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked()
	m := d.members[req.ID]
	if m == nil {
		return api.HeartbeatResponse{}, fmt.Errorf("cluster: unknown node %q (re-join)", req.ID)
	}
	m.lastSeen = d.now()
	owned := toSet(req.Owned)
	if !sameSet(m.owned, owned) {
		// Ownership moved — a drain completed or an adoption landed.
		m.owned = owned
		d.epoch++
	}
	return d.ordersLocked(m), nil
}

// Leave removes a node; its environments fall to the survivors on
// their next heartbeat.
func (d *Directory) Leave(req api.LeaveRequest) (api.LeaveResponse, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.members[req.ID]; ok {
		delete(d.members, req.ID)
		d.epoch++
		d.logger.Info("node left", "node", req.ID, "epoch", d.epoch)
	}
	return api.LeaveResponse{Epoch: d.epoch}, nil
}

// Status reports the directory view for GET /api/v1/cluster.
func (d *Directory) Status() api.ClusterStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked()
	st := api.ClusterStatus{
		Role:        "gateway",
		Epoch:       d.epoch,
		Slots:       d.ring.Slots(),
		Assignments: d.assignmentsLocked(),
	}
	for _, id := range d.sortedIDsLocked() {
		m := d.members[id]
		st.Nodes = append(st.Nodes, api.NodeInfo{
			ID: m.id, Addr: m.addr,
			Envs:     sortedKeys(m.catalog),
			Owned:    sortedKeys(m.owned),
			LastSeen: m.lastSeen,
		})
	}
	return st
}

// Owner resolves the node to route an environment's requests to:
// whichever live node currently reports it owned, else the desired
// assignee (mid-adoption), else "". The bool reports whether the env
// exists in any node's catalog at all.
func (d *Directory) Owner(env string) (id, addr string, known bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked()
	for _, m := range d.members {
		if m.catalog[env] || m.owned[env] {
			known = true
		}
		if m.owned[env] {
			return m.id, m.addr, true
		}
	}
	if !known {
		return "", "", false
	}
	if m := d.members[d.assignmentsLocked()[env]]; m != nil {
		return m.id, m.addr, true
	}
	return "", "", true
}

// Nodes lists the live members as (id, addr) pairs, sorted by ID.
func (d *Directory) Nodes() []api.NodeInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked()
	var out []api.NodeInfo
	for _, id := range d.sortedIDsLocked() {
		m := d.members[id]
		out = append(out, api.NodeInfo{ID: m.id, Addr: m.addr})
	}
	return out
}

// Interval returns the configured heartbeat cadence.
func (d *Directory) Interval() time.Duration { return d.interval }

// ordersLocked computes one node's Assigned set under the two-phase
// rule: desired envs minus those another live node still reports owned.
func (d *Directory) ordersLocked(m *member) api.HeartbeatResponse {
	assigned := []string{}
	desired := d.assignmentsLocked()
	for env, owner := range desired {
		if owner != m.id {
			continue
		}
		if o := d.ownedElsewhereLocked(env, m.id); o != "" {
			d.logger.Debug("withholding env mid-handoff", "env", env,
				"to", m.id, "still_owned_by", o)
			continue
		}
		assigned = append(assigned, env)
	}
	sort.Strings(assigned)
	return api.HeartbeatResponse{
		Epoch:      d.epoch,
		Assigned:   assigned,
		IntervalMS: d.interval.Milliseconds(),
	}
}

// assignmentsLocked maps every cataloged environment to its desired
// owner. Candidates for an environment are only the live nodes whose
// catalog (or current ownership) includes it — a node is never
// assigned a deployment it has no config for.
func (d *Directory) assignmentsLocked() map[string]string {
	candidates := map[string]map[string]bool{}
	for id, m := range d.members {
		for e := range m.catalog {
			if candidates[e] == nil {
				candidates[e] = map[string]bool{}
			}
			candidates[e][id] = true
		}
		for e := range m.owned {
			if candidates[e] == nil {
				candidates[e] = map[string]bool{}
			}
			candidates[e][id] = true
		}
	}
	out := make(map[string]string, len(candidates))
	for env, nodes := range candidates {
		out[env] = AssignSlot(d.ring.Slot(env), sortedKeys(nodes))
	}
	return out
}

// ownedElsewhereLocked reports which live node other than `except`
// claims env, or "".
func (d *Directory) ownedElsewhereLocked(env, except string) string {
	for id, m := range d.members {
		if id != except && m.owned[env] {
			return id
		}
	}
	return ""
}

// expireLocked prunes members whose heartbeats stopped. An expired
// node's envs become adoptable immediately: a dead process cannot hold
// its WAL, and the two-phase rule only defers to *live* claimants.
func (d *Directory) expireLocked() {
	ttl := d.interval * DefaultTTLBeats
	cut := d.now().Add(-ttl)
	for id, m := range d.members {
		if m.lastSeen.Before(cut) {
			delete(d.members, id)
			d.epoch++
			d.logger.Warn("node expired", "node", id, "last_seen", m.lastSeen, "epoch", d.epoch)
		}
	}
}

func (d *Directory) sortedIDsLocked() []string {
	ids := make([]string, 0, len(d.members))
	for id := range d.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func toSet(ss []string) map[string]bool {
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
