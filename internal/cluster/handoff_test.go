package cluster

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dwatch/internal/api"
	"dwatch/internal/fleet"
	"dwatch/internal/serve"
	"dwatch/internal/sim"
)

// ingestRound feeds one generated LLRP round (every reader's payload)
// into a fleet environment.
func ingestRound(t *testing.T, f *fleet.Fleet, env string, rd sim.LLRPRound) {
	t.Helper()
	for _, payload := range rd.Payloads {
		if err := f.Ingest(env, payload); err != nil {
			t.Fatal(err)
		}
	}
}

// collectFixes drains every position frame an in-process hub publishes
// for env until the feed stays quiet, returning the latest fix per
// sequence number.
func collectFixes(t *testing.T, hub *serve.Hub, w *serve.Watcher) map[uint32]api.Position {
	t.Helper()
	out := map[uint32]api.Position{}
	decode := func(frames [][]byte) {
		for _, raw := range frames {
			var p api.Position
			if err := json.Unmarshal(raw, &p); err != nil {
				t.Fatalf("bad frame %s: %v", raw, err)
			}
			out[p.Seq] = p
		}
	}
	decode(w.Snapshot())
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		frames, err := w.Next(ctx)
		cancel()
		if err != nil {
			return out
		}
		decode(frames)
	}
}

// samePosition compares the localization payload bit-for-bit (the
// publish timestamp legitimately differs between runs).
func samePosition(a, b api.Position) bool {
	if math.Float64bits(a.X) != math.Float64bits(b.X) ||
		math.Float64bits(a.Y) != math.Float64bits(b.Y) ||
		math.Float64bits(a.Confidence) != math.Float64bits(b.Confidence) {
		return false
	}
	if a.Env != b.Env || a.Seq != b.Seq || a.Views != b.Views ||
		a.Degraded != b.Degraded || len(a.Readers) != len(b.Readers) {
		return false
	}
	for i := range a.Readers {
		if a.Readers[i] != b.Readers[i] {
			return false
		}
	}
	return true
}

// TestHandoffEndToEnd is the cluster plane's acceptance test: an
// environment migrates from node to node mid-stream — graceful drain
// on the loser (pipeline flush, WAL close), WAL-replay adoption on the
// winner — while a consumer watches the positions feed through the
// gateway. Zero fixes are lost across the handoff, and every fix is
// bit-identical to a single-node run that never migrated.
func TestHandoffEndToEnd(t *testing.T) {
	const env = "hall"
	cfg := tableCfg(7)
	ctx := context.Background()

	// ---- Reference: one unmigrated fleet ingests every round. ----
	refHub := serve.NewHub()
	refFleet := fleet.New(fleet.WithHub(refHub))
	defer refFleet.Close()
	refEnv, err := refFleet.Add(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The rounds are generated ONCE from the deployment scenario and
	// shared by both runs, so any divergence is the cluster plane's.
	rounds, err := sim.GenerateLLRPRounds(refEnv.Scenario(), 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	refWatch := refHub.Watch(env)
	defer refWatch.Close()
	for _, rd := range rounds {
		ingestRound(t, refFleet, env, rd)
	}
	// Remove drains the pipeline, so every fix is published before
	// collection starts.
	if err := refFleet.Remove(env); err != nil {
		t.Fatal(err)
	}
	reference := collectFixes(t, refHub, refWatch)
	if len(reference) == 0 {
		t.Fatal("reference run produced no fixes")
	}

	// ---- Cluster run: the same rounds split across a handoff. ----
	walRoot := t.TempDir()
	loser, winner := handoffPair(env)
	// The test steps the heartbeat protocol by hand (Join/Sync calls),
	// so the directory's liveness TTL must not fire between steps.
	dir := NewDirectory(WithHeartbeat(time.Hour))
	gw := NewGateway(dir, WithRetry(10, 20*time.Millisecond))
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(gts.Close)
	catalog := map[string]sim.Config{env: cfg}
	nodeL := newTestNode(t, loser, gts.URL, walRoot, catalog)

	// Loser joins alone and adopts.
	if err := nodeL.agent.Join(ctx); err != nil {
		t.Fatal(err)
	}
	if err := nodeL.agent.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "loser adoption", func() bool { return len(nodeL.fleet.IDs()) == 1 })

	// A consumer watches the positions feed through the gateway for
	// the whole migration.
	var mu sync.Mutex
	streamed := map[uint32]api.Position{}
	frameCount := 0
	sctx, scancel := context.WithCancel(ctx)
	defer scancel()
	streamDone := make(chan error, 1)
	go func() {
		c := api.NewClient(gts.URL)
		streamDone <- c.WatchPositions(sctx, env, func(_ []byte, p api.Position) error {
			mu.Lock()
			streamed[p.Seq] = p
			frameCount++
			mu.Unlock()
			return nil
		})
	}()

	// The relay chain (client -> gateway -> node watcher) must be
	// attached before any fix publishes: the node-side snapshot only
	// carries the latest frame per environment, so frames published
	// before the attach would be coalesced away.
	loserWatchers := nodeL.reg.Gauge("dwatch_broker_watchers", "")
	waitFor(t, "gateway relay attach on the loser", func() bool {
		return loserWatchers.Value() >= 1
	})

	// First half of the traffic lands on the loser.
	half := len(rounds) / 2
	for _, rd := range rounds[:half] {
		ingestRound(t, nodeL.fleet, env, rd)
	}
	firstHalfSeqs := map[uint32]bool{}
	for s := range reference {
		if s <= rounds[half-1].Seq {
			firstHalfSeqs[s] = true
		}
	}
	waitFor(t, "first-half fixes through the gateway", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for s := range firstHalfSeqs {
			if _, ok := streamed[s]; !ok {
				return false
			}
		}
		return true
	})

	// The winner joins: it is now the desired owner, but adoption is
	// withheld until the loser's drain shows up in its heartbeat.
	nodeW := newTestNode(t, winner, gts.URL, walRoot, catalog)
	if err := nodeW.agent.Join(ctx); err != nil {
		t.Fatal(err)
	}
	if len(nodeW.fleet.IDs()) != 0 {
		t.Fatal("winner adopted while the loser still owned the env")
	}

	// Loser's next sync drains: pipeline flush, WAL close. Its next
	// heartbeat reports the release; the winner's next sync adopts via
	// WAL replay from the shared root.
	if err := nodeL.agent.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(nodeL.fleet.IDs()); got != 0 {
		t.Fatalf("loser still owns %d envs after drain sync", got)
	}
	if err := nodeL.agent.Sync(ctx); err != nil { // reports owned=[]
		t.Fatal(err)
	}
	if err := nodeW.agent.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "winner adoption", func() bool { return len(nodeW.fleet.IDs()) == 1 })
	if err := nodeW.agent.Sync(ctx); err != nil { // reports ownership → routing flips
		t.Fatal(err)
	}

	// The gateway reattaches to the winner; the replayed prefix
	// re-delivers at least the latest first-half fix, which is the
	// resume signal. (The loser published nothing after its drain, so
	// any new frame can only have come from the winner.)
	mu.Lock()
	resumeMark := frameCount
	mu.Unlock()
	waitFor(t, "gateway stream resume on the winner", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return frameCount > resumeMark
	})

	// Second half of the traffic lands on the winner.
	for _, rd := range rounds[half:] {
		ingestRound(t, nodeW.fleet, env, rd)
	}
	waitFor(t, "every reference fix through the gateway", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for s := range reference {
			if _, ok := streamed[s]; !ok {
				return false
			}
		}
		return true
	})
	scancel()
	<-streamDone

	// Zero fixes lost, nothing invented, and every fix bit-identical
	// to the unmigrated run.
	mu.Lock()
	defer mu.Unlock()
	for s := range streamed {
		if _, ok := reference[s]; !ok {
			t.Errorf("seq %d streamed but absent from the reference run", s)
		}
	}
	for s, want := range reference {
		got, ok := streamed[s]
		if !ok {
			t.Errorf("seq %d lost across the handoff", s)
			continue
		}
		if !samePosition(got, want) {
			t.Errorf("seq %d diverged across the handoff:\n  cluster:   %+v\n  reference: %+v", s, got, want)
		}
	}

	// The winner's WAL-replayed pipeline recomputed the loser's fixes
	// bit-identically too: its hub holds the full set.
	winnerWatch := nodeW.hub.Watch(env)
	defer winnerWatch.Close()
	winnerFixes := collectFixes(t, nodeW.hub, winnerWatch)
	for s, want := range reference {
		got, ok := winnerFixes[s]
		if !ok {
			// Only the latest replayed frame is guaranteed in the
			// hub's snapshot; earlier replayed seqs may have rolled
			// off. Presence in the stream already proved delivery.
			continue
		}
		if !samePosition(got, want) {
			t.Errorf("winner recomputed seq %d differently:\n  winner:    %+v\n  reference: %+v", s, got, want)
		}
	}
}
