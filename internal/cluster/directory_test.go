package cluster

import (
	"strings"
	"testing"
	"time"

	"dwatch/internal/api"
	"dwatch/internal/fleet"
)

// TestAssignSlotDeterministic: rendezvous assignment depends on the
// node *set*, not the order it is presented in.
func TestAssignSlotDeterministic(t *testing.T) {
	nodes := []string{"node-a", "node-b", "node-c"}
	perms := [][]string{
		{"node-a", "node-b", "node-c"},
		{"node-c", "node-a", "node-b"},
		{"node-b", "node-c", "node-a"},
	}
	for slot := 0; slot < 16; slot++ {
		want := AssignSlot(slot, nodes)
		for _, p := range perms {
			if got := AssignSlot(slot, p); got != want {
				t.Fatalf("slot %d: order %v gives %q, want %q", slot, p, got, want)
			}
		}
	}
	if AssignSlot(3, nil) != "" {
		t.Fatal("empty node set must assign nothing")
	}
}

// TestAssignSlotMinimalChurn: removing one node reassigns only that
// node's slots; every surviving node keeps exactly what it had.
func TestAssignSlotMinimalChurn(t *testing.T) {
	all := []string{"node-a", "node-b", "node-c", "node-d"}
	without := []string{"node-a", "node-b", "node-d"} // node-c gone
	for slot := 0; slot < 64; slot++ {
		before := AssignSlot(slot, all)
		after := AssignSlot(slot, without)
		if before != "node-c" && after != before {
			t.Errorf("slot %d moved %q → %q though its owner survived", slot, before, after)
		}
		if before == "node-c" && after == "node-c" {
			t.Errorf("slot %d still assigned to the removed node", slot)
		}
	}
}

// TestAssignments: every environment lands on some node, via its ring
// slot.
func TestAssignments(t *testing.T) {
	ring := fleet.NewRing(16)
	envs := []string{"hall", "atrium", "dock", "lab-3"}
	nodes := []string{"node-a", "node-b"}
	got := Assignments(envs, nodes, ring)
	if len(got) != len(envs) {
		t.Fatalf("assignments = %v, want one per env", got)
	}
	for env, owner := range got {
		if owner != AssignSlot(ring.Slot(env), nodes) {
			t.Errorf("env %s: owner %q does not match its slot's rendezvous winner", env, owner)
		}
	}
}

// handoffPair returns (first, second) node IDs such that env's slot
// belongs to `second` when both are live — so starting `first` alone
// and then adding `second` forces a handoff of env.
func handoffPair(env string) (first, second string) {
	ring := fleet.NewRing(16)
	n1, n2 := "node-a", "node-b"
	if AssignSlot(ring.Slot(env), []string{n1, n2}) == n1 {
		return n2, n1
	}
	return n1, n2
}

// TestDirectoryTwoPhaseHandoff drives the join/heartbeat protocol
// directly: when a new node becomes the desired owner of an env, the
// directory withholds the assignment until the old owner's heartbeat
// stops reporting it owned — the invariant that keeps the shared WAL
// single-writer.
func TestDirectoryTwoPhaseHandoff(t *testing.T) {
	const env = "hall"
	loser, winner := handoffPair(env)
	d := NewDirectory()

	// Loser joins alone: it is the only candidate, env is assigned.
	resp, err := d.Join(api.JoinRequest{ID: loser, Addr: "http://loser", Envs: []string{env}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Assigned) != 1 || resp.Assigned[0] != env {
		t.Fatalf("solo node assigned %v, want [%s]", resp.Assigned, env)
	}
	// Loser adopts and reports ownership.
	if _, err := d.Heartbeat(api.HeartbeatRequest{ID: loser, Owned: []string{env}}); err != nil {
		t.Fatal(err)
	}

	// Winner joins: it is now the desired owner, but the env is still
	// owned by the loser — the join orders must withhold it.
	resp, err = d.Join(api.JoinRequest{ID: winner, Addr: "http://winner", Envs: []string{env}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Assigned) != 0 {
		t.Fatalf("winner assigned %v before the old owner released", resp.Assigned)
	}

	// Loser's next heartbeat: env no longer in its Assigned set → it
	// drains. Still reporting owned this beat (drain not done yet).
	resp, err = d.Heartbeat(api.HeartbeatRequest{ID: loser, Owned: []string{env}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Assigned) != 0 {
		t.Fatalf("loser still assigned %v after the winner joined", resp.Assigned)
	}
	// Winner polls again: still withheld.
	resp, err = d.Heartbeat(api.HeartbeatRequest{ID: winner})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Assigned) != 0 {
		t.Fatalf("winner granted %v while the loser still owns", resp.Assigned)
	}

	// Loser finishes the drain and stops reporting ownership; the very
	// next winner heartbeat grants the env.
	if _, err := d.Heartbeat(api.HeartbeatRequest{ID: loser}); err != nil {
		t.Fatal(err)
	}
	resp, err = d.Heartbeat(api.HeartbeatRequest{ID: winner})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Assigned) != 1 || resp.Assigned[0] != env {
		t.Fatalf("winner assigned %v after release, want [%s]", resp.Assigned, env)
	}

	// Ownership routes requests.
	if _, err := d.Heartbeat(api.HeartbeatRequest{ID: winner, Owned: []string{env}}); err != nil {
		t.Fatal(err)
	}
	id, addr, known := d.Owner(env)
	if !known || id != winner || addr != "http://winner" {
		t.Fatalf("Owner(%s) = %q %q %v, want the winner", env, id, addr, known)
	}
}

// TestDirectoryExpiry: a node that stops heartbeating is pruned after
// the TTL and its environments fall to the survivors — including the
// two-phase gate, which only defers to *live* claimants.
func TestDirectoryExpiry(t *testing.T) {
	const env = "hall"
	dead, survivor := handoffPair(env) // dead will be the initial owner
	now := time.Unix(1700000000, 0)
	d := NewDirectory(WithClock(func() time.Time { return now }))

	for _, n := range []struct{ id, addr string }{{dead, "http://dead"}, {survivor, "http://live"}} {
		if _, err := d.Join(api.JoinRequest{ID: n.id, Addr: n.addr, Envs: []string{env}}); err != nil {
			t.Fatal(err)
		}
	}
	// Force ownership onto the node that will die, regardless of the
	// desired assignment, by reporting it owned there.
	if _, err := d.Heartbeat(api.HeartbeatRequest{ID: dead, Owned: []string{env}}); err != nil {
		t.Fatal(err)
	}

	// Advance past the TTL with only the survivor heartbeating.
	for i := 0; i < DefaultTTLBeats+1; i++ {
		now = now.Add(DefaultHeartbeat)
		if _, err := d.Heartbeat(api.HeartbeatRequest{ID: survivor}); err != nil {
			t.Fatal(err)
		}
	}
	now = now.Add(DefaultHeartbeat)

	st := d.Status()
	if len(st.Nodes) != 1 || st.Nodes[0].ID != survivor {
		t.Fatalf("nodes after expiry = %+v, want only %s", st.Nodes, survivor)
	}
	// The dead node's ownership claim died with it: the survivor is
	// granted the env immediately.
	resp, err := d.Heartbeat(api.HeartbeatRequest{ID: survivor})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Assigned) != 1 || resp.Assigned[0] != env {
		t.Fatalf("survivor assigned %v after expiry, want [%s]", resp.Assigned, env)
	}
	// The expired node's heartbeat is rejected — it must re-join.
	if _, err := d.Heartbeat(api.HeartbeatRequest{ID: dead}); err == nil ||
		!strings.Contains(err.Error(), "re-join") {
		t.Fatalf("expired node heartbeat = %v, want re-join error", err)
	}
}

// TestDirectoryStatus: epoch moves on membership and ownership
// changes, and the status carries assignments.
func TestDirectoryStatus(t *testing.T) {
	d := NewDirectory()
	if _, err := d.Join(api.JoinRequest{ID: "node-a", Addr: "http://a", Envs: []string{"hall"}}); err != nil {
		t.Fatal(err)
	}
	st := d.Status()
	if st.Role != "gateway" || st.Epoch == 0 || st.Slots != 16 {
		t.Fatalf("status = %+v", st)
	}
	if st.Assignments["hall"] != "node-a" {
		t.Fatalf("assignments = %v", st.Assignments)
	}
	before := st.Epoch
	if _, err := d.Heartbeat(api.HeartbeatRequest{ID: "node-a", Owned: []string{"hall"}}); err != nil {
		t.Fatal(err)
	}
	if got := d.Status().Epoch; got <= before {
		t.Fatalf("epoch %d did not advance on ownership change (was %d)", got, before)
	}
	if _, err := d.Leave(api.LeaveRequest{ID: "node-a"}); err != nil {
		t.Fatal(err)
	}
	if n := len(d.Status().Nodes); n != 0 {
		t.Fatalf("%d nodes after leave, want 0", n)
	}
	// Join validation.
	if _, err := d.Join(api.JoinRequest{ID: "", Addr: ""}); err == nil {
		t.Fatal("empty join accepted")
	}
}
