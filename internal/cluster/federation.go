package cluster

// Federation: the gateway periodically pulls every live node's
// /metrics page plus its per-env stats and RF-health snapshots, and
// re-exposes the union on its own /metrics with a `node` label — one
// scrape target for the whole fleet. The same cache feeds
// /api/v1/cluster/health, a typed worst-of rollup across environments.
//
// Staleness rules: a node's cached pull is dropped the moment a scrape
// of it fails (an unreachable node's last-good page is misleading, not
// comforting), and at render time any cache entry whose node has left
// the directory is skipped — so a SIGKILLed node's series vanish from
// the federated page no later than its TTL expiry, and usually at the
// next scrape tick.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"dwatch/internal/api"
	"dwatch/internal/obs"
)

// nodeScrape is one node's last successful federation pull.
type nodeScrape struct {
	addr   string
	at     time.Time
	fams   []*obs.ParsedFamily
	stats  api.FleetStats
	health map[string]api.RFHealth // env → RF-health snapshot
}

// RunFederation scrapes immediately, then on every scrape-interval
// tick, until ctx is cancelled. Run it in its own goroutine beside the
// gateway's HTTP server.
func (g *Gateway) RunFederation(ctx context.Context) {
	g.ScrapeOnce(ctx)
	tick := time.NewTicker(g.scrapeInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			g.ScrapeOnce(ctx)
		}
	}
}

// ScrapeOnce pulls every live node once and installs the results,
// evicting cache entries for nodes that left the directory and for
// nodes whose scrape failed. Exported so tests (and one-shot tools)
// can step the federation deterministically.
func (g *Gateway) ScrapeOnce(ctx context.Context) {
	st := g.dir.Status()
	fresh := map[string]*nodeScrape{}
	for _, n := range st.Nodes {
		sc, err := g.scrapeNode(ctx, n)
		if err != nil {
			g.scrapes.With(n.ID, "error").Inc()
			g.logger.Warn("federation scrape failed", "node", n.ID, "error", err)
			continue
		}
		g.scrapes.With(n.ID, "ok").Inc()
		fresh[n.ID] = sc
	}
	g.fedMu.Lock()
	for id := range g.fed {
		if fresh[id] == nil {
			// Node left, expired, or stopped answering: drop its series
			// and the gateway's own per-node scrape counters with it.
			g.scrapes.Remove(id, "ok")
			g.scrapes.Remove(id, "error")
		}
	}
	g.fed = fresh
	g.fedNodes.Set(float64(len(fresh)))
	g.fedMu.Unlock()
}

// scrapeNode pulls one node: metrics page (parsed), fleet stats, and
// an RF-health snapshot per owned environment. The metrics page is the
// load-bearing pull — its failure fails the scrape — while stats and
// health degrade to empty on error.
func (g *Gateway) scrapeNode(ctx context.Context, n api.NodeInfo) (*nodeScrape, error) {
	c := g.client(n.Addr)
	page, err := c.Metrics(ctx)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	fams, err := obs.ParsePrometheus(bytes.NewReader(page))
	if err != nil {
		return nil, fmt.Errorf("parse metrics: %w", err)
	}
	sc := &nodeScrape{addr: n.Addr, at: time.Now(), fams: fams, health: map[string]api.RFHealth{}}
	if stats, err := c.FleetStats(ctx); err == nil {
		sc.stats = stats
	} else {
		g.logger.Debug("federation stats pull failed", "node", n.ID, "error", err)
	}
	for _, env := range n.Owned {
		h, err := c.Health(ctx, env)
		if err != nil {
			g.logger.Debug("federation health pull failed", "node", n.ID, "env", env, "error", err)
			continue
		}
		sc.health[env] = h
	}
	return sc, nil
}

// liveScrape pairs a node ID with its cached pull.
type liveScrape struct {
	id string
	sc *nodeScrape
}

// liveScrapes snapshots the cache filtered against current directory
// membership, in node-ID order. Render-time filtering is what makes a
// dead node's series vanish even between scrape ticks.
func (g *Gateway) liveScrapes() []liveScrape {
	live := g.dir.Nodes()
	g.fedMu.Lock()
	defer g.fedMu.Unlock()
	var out []liveScrape
	for _, n := range live {
		if sc := g.fed[n.ID]; sc != nil {
			out = append(out, liveScrape{n.ID, sc})
		}
	}
	return out
}

// handleMetrics serves the federated exposition: the gateway's own
// registry under node="gateway", then every live node's cached page
// under its node ID, families merged by name so each HELP/TYPE header
// appears once.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var own []*obs.ParsedFamily
	if g.reg != nil {
		var buf bytes.Buffer
		if err := g.reg.WritePrometheus(&buf); err == nil {
			own, _ = obs.ParsePrometheus(&buf)
		}
	}
	merged := map[string]*obs.ParsedFamily{}
	var order []*obs.ParsedFamily
	add := func(nodeID string, fams []*obs.ParsedFamily) {
		for _, f := range fams {
			m := merged[f.Name]
			if m == nil {
				m = &obs.ParsedFamily{Name: f.Name, Help: f.Help, HasHelp: f.HasHelp, Type: f.Type}
				merged[f.Name] = m
				order = append(order, m)
			}
			for _, s := range f.Samples {
				m.Samples = append(m.Samples, s.WithLabel("node", nodeID))
			}
		}
	}
	add("gateway", own)
	for _, p := range g.liveScrapes() {
		add(p.id, p.sc.fams)
	}
	w.Header().Set("Content-Type", obs.ContentType)
	if err := obs.WriteFamilies(w, order); err != nil {
		g.logger.Debug("federated metrics write failed", "error", err)
	}
}

// handleClusterHealth rolls the fleet into one typed summary: per
// environment the worst of its ownership state, RF-plane drift, and
// SLO burn, and overall the worst environment.
func (g *Gateway) handleClusterHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("%s not allowed on /api/v1/cluster/health", r.Method))
		return
	}
	st := g.dir.Status()
	scrapes := map[string]*nodeScrape{}
	for _, p := range g.liveScrapes() {
		scrapes[p.id] = p.sc
	}
	// Who reports each env actively owned right now?
	reporting := map[string]string{}
	for _, n := range st.Nodes {
		for _, env := range n.Owned {
			reporting[env] = n.ID
		}
	}
	resp := api.ClusterHealth{
		Status:       api.HealthOK,
		Epoch:        st.Epoch,
		Nodes:        len(st.Nodes),
		ScrapedNodes: len(scrapes),
	}
	envs := make([]string, 0, len(st.Assignments))
	for env := range st.Assignments {
		envs = append(envs, env)
	}
	sort.Strings(envs)
	for _, env := range envs {
		eh := g.envHealth(env, st.Assignments[env], reporting[env], scrapes)
		if healthRank(eh.Status) > healthRank(resp.Status) {
			resp.Status = eh.Status
		}
		resp.Envs = append(resp.Envs, eh)
	}
	writeJSON(w, resp)
}

// envHealth builds one environment's rollup row.
func (g *Gateway) envHealth(env, desired, owner string, scrapes map[string]*nodeScrape) api.EnvClusterHealth {
	eh := api.EnvClusterHealth{Env: env, Node: owner, Status: api.HealthOK}
	degrade := func(status, reason string) {
		if healthRank(status) > healthRank(eh.Status) {
			eh.Status = status
		}
		eh.Reasons = append(eh.Reasons, reason)
	}
	if owner != desired {
		eh.HandoffInProgress = true
		if owner == "" {
			degrade(api.HealthDegraded, fmt.Sprintf("handoff in progress: no node serving yet (desired owner %s)", desired))
		} else {
			degrade(api.HealthDegraded, fmt.Sprintf("handoff in progress: %s draining toward %s", owner, desired))
		}
	}
	sc := scrapes[owner]
	if owner != "" && sc == nil {
		degrade(api.HealthCritical, fmt.Sprintf("owner %s not scraped: metrics unreachable", owner))
	}
	if sc == nil {
		return eh
	}
	if h, ok := sc.health[env]; ok {
		for _, rd := range h.Readers {
			if rd.Drifting > 0 {
				eh.DriftingReaders++
			}
			if rd.CalibrationResidual > eh.MaxCalibrationResidualRad {
				eh.MaxCalibrationResidualRad = rd.CalibrationResidual
			}
		}
		if eh.DriftingReaders > 0 {
			degrade(api.HealthDegraded, fmt.Sprintf("%d reader(s) drifting from calibration baseline", eh.DriftingReaders))
		}
	}
	eh.SLOFastBurn = sloBurn(sc.fams, env, "fast")
	eh.SLOSlowBurn = sloBurn(sc.fams, env, "slow")
	switch {
	case eh.SLOFastBurn >= 10:
		degrade(api.HealthCritical, fmt.Sprintf("SLO fast burn %.1f×: error budget exhausting in hours", eh.SLOFastBurn))
	case eh.SLOFastBurn > 1 || eh.SLOSlowBurn > 1:
		degrade(api.HealthDegraded, fmt.Sprintf("SLO burn above budget (fast %.2f×, slow %.2f×)", eh.SLOFastBurn, eh.SLOSlowBurn))
	}
	if ps, ok := sc.stats[env]; ok {
		eh.Fixes = ps.Fixes
		eh.DegradedFixes = ps.DegradedFixes
	}
	return eh
}

// sloBurn extracts dwatch_slo_burn_rate{env=...,window=...} from a
// parsed node page (0 when the env runs without an SLO).
func sloBurn(fams []*obs.ParsedFamily, env, window string) float64 {
	for _, f := range fams {
		if f.Name != "dwatch_slo_burn_rate" {
			continue
		}
		for _, s := range f.Samples {
			if s.Label("env") == env && s.Label("window") == window {
				v, err := s.Float()
				if err != nil {
					return 0
				}
				return v
			}
		}
	}
	return 0
}

func healthRank(status string) int {
	switch status {
	case api.HealthCritical:
		return 2
	case api.HealthDegraded:
		return 1
	default:
		return 0
	}
}

// nodeByID resolves a live node for the /api/v1/nodes/{node}/* proxies.
func (g *Gateway) nodeByID(w http.ResponseWriter, r *http.Request) (api.NodeInfo, bool) {
	id := r.PathValue("node")
	for _, n := range g.dir.Nodes() {
		if n.ID == id {
			return n, true
		}
	}
	writeError(w, http.StatusNotFound, "node_not_found",
		fmt.Sprintf("no live node %q in the cluster", id))
	return api.NodeInfo{}, false
}

// handleNodeMetrics proxies one node's raw (un-federated) metrics page.
func (g *Gateway) handleNodeMetrics(w http.ResponseWriter, r *http.Request) {
	n, ok := g.nodeByID(w, r)
	if !ok {
		return
	}
	page, err := g.client(n.Addr).Metrics(r.Context())
	if err != nil {
		writeError(w, http.StatusBadGateway, "bad_gateway",
			fmt.Sprintf("node %s metrics: %v", n.ID, err))
		return
	}
	w.Header().Set("Content-Type", obs.ContentType)
	_, _ = w.Write(page)
}

// handleNodeProfiles proxies one node's profiling-ring listing.
func (g *Gateway) handleNodeProfiles(w http.ResponseWriter, r *http.Request) {
	n, ok := g.nodeByID(w, r)
	if !ok {
		return
	}
	resp, err := g.client(n.Addr).Profiles(r.Context())
	if err != nil {
		relayError(w, n.ID, err)
		return
	}
	writeJSON(w, resp)
}

// handleNodeProfile proxies one stored pprof capture from a node.
func (g *Gateway) handleNodeProfile(w http.ResponseWriter, r *http.Request) {
	n, ok := g.nodeByID(w, r)
	if !ok {
		return
	}
	data, err := g.client(n.Addr).Profile(r.Context(), r.PathValue("name"))
	if err != nil {
		relayError(w, n.ID, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	_, _ = w.Write(data)
}

// relayError passes a node's typed API error through unchanged, or
// wraps a transport failure as 502.
func relayError(w http.ResponseWriter, nodeID string, err error) {
	var apiErr *api.APIError
	if errors.As(err, &apiErr) {
		writeError(w, apiErr.Status, apiErr.Code, apiErr.Message)
		return
	}
	writeError(w, http.StatusBadGateway, "bad_gateway",
		fmt.Sprintf("node %s: %v", nodeID, err))
}
