package music_test

// Cross-package regression test for the AoA sign convention: MUSIC run
// on physically synthesized samples (exact per-element path lengths)
// must peak at rf.Array.AngleTo of the source. This guards against the
// classic mirror bug (θ vs π−θ) that pointwise self-consistent tests
// cannot catch.

import (
	"math"
	"math/rand"
	"testing"

	"dwatch/internal/channel"
	"dwatch/internal/geom"
	"dwatch/internal/music"
	"dwatch/internal/rf"
)

func TestMusicMatchesPhysicalGeometry(t *testing.T) {
	arr, err := rf.NewArray(geom.Pt(0, 0, 1.25), geom.Pt2(1, 0), 8)
	if err != nil {
		t.Fatal(err)
	}
	env := channel.NewEnv(nil)
	rng := rand.New(rand.NewSource(1))
	c := arr.Center()
	// Several off-broadside source placements on both sides, far enough
	// (8 m) that plane-wave MUSIC applies.
	for _, azDeg := range []float64{40, 70, 90, 115, 150} {
		az := rf.Rad(azDeg)
		// Position at angle az from the -axis reference direction.
		dir := geom.Pt2(-math.Cos(az), math.Sin(az))
		pos := c.Add(dir.Scale(8))
		pos.Z = 1.25
		x, _, err := env.Synthesize(pos, arr, nil, channel.SynthOpts{Snapshots: 10, NoiseStd: 0.001, Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		res, err := music.Compute(x, arr, music.Options{})
		if err != nil {
			t.Fatal(err)
		}
		peaks := music.FindPeaks(res.Angles, res.Spectrum, 0.1)
		if len(peaks) == 0 {
			t.Fatalf("az=%v: no peaks", azDeg)
		}
		want := arr.AngleTo(pos)
		if math.Abs(want-az) > 1e-9 {
			t.Fatalf("placement bug: AngleTo = %v, want %v", rf.Deg(want), azDeg)
		}
		if got := peaks[0].Angle; math.Abs(got-want) > rf.Rad(3) {
			t.Errorf("az=%v: MUSIC peak at %.1f°, want %.1f° — sign convention broken?",
				azDeg, rf.Deg(got), rf.Deg(want))
		}
	}
}
