package music

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"dwatch/internal/cmatrix"
	"dwatch/internal/geom"
	"dwatch/internal/rf"
)

func testArray(t testing.TB, m int) *rf.Array {
	t.Helper()
	a, err := rf.NewArray(geom.Pt2(0, 0), geom.Pt2(1, 0), m)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// synthSnapshots builds N×M snapshots for plane waves from the given
// angles with the given amplitudes. coherent=true makes all sources
// share the per-snapshot phase (multipath of one emitter).
func synthSnapshots(arr *rf.Array, angles []float64, amps []float64, n int, noise float64, coherent bool, rng *rand.Rand) *cmatrix.Matrix {
	x := cmatrix.New(n, arr.Elements)
	for snap := 0; snap < n; snap++ {
		shared := cmplx.Exp(complex(0, rng.Float64()*2*math.Pi))
		for p, th := range angles {
			s := shared
			if !coherent {
				s = cmplx.Exp(complex(0, rng.Float64()*2*math.Pi))
			}
			s *= complex(amps[p], 0)
			st := arr.Steering(th)
			for m := 0; m < arr.Elements; m++ {
				x.Data[snap*arr.Elements+m] += s * st[m]
			}
		}
		for m := 0; m < arr.Elements; m++ {
			x.Data[snap*arr.Elements+m] += complex(rng.NormFloat64(), rng.NormFloat64()) * complex(noise/math.Sqrt2, 0)
		}
	}
	return x
}

func TestCorrelationHermitianPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	arr := testArray(t, 8)
	x := synthSnapshots(arr, []float64{1.0}, []float64{1}, 20, 0.1, false, rng)
	r, err := Correlation(x)
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsHermitian(1e-10) {
		t.Error("correlation not Hermitian")
	}
	eig, err := cmatrix.EigenHermitian(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range eig.Values {
		if v < -1e-10 {
			t.Errorf("negative eigenvalue %v", v)
		}
	}
}

func TestCorrelationEmpty(t *testing.T) {
	if _, err := Correlation(cmatrix.New(0, 0)); !errors.Is(err, ErrBadInput) {
		t.Errorf("err = %v", err)
	}
}

func TestSmoothValidation(t *testing.T) {
	r := cmatrix.New(8, 8)
	if _, err := SmoothForwardBackward(r, 1); !errors.Is(err, ErrBadInput) {
		t.Error("l=1 must error")
	}
	if _, err := SmoothForwardBackward(r, 9); !errors.Is(err, ErrBadInput) {
		t.Error("l>m must error")
	}
	if _, err := SmoothForwardBackward(cmatrix.New(3, 4), 2); !errors.Is(err, ErrBadInput) {
		t.Error("non-square must error")
	}
}

func TestSmoothingRestoresRank(t *testing.T) {
	// Two fully coherent sources: un-smoothed R has rank 1; smoothed R
	// must have two dominant eigenvalues.
	rng := rand.New(rand.NewSource(2))
	arr := testArray(t, 8)
	x := synthSnapshots(arr, []float64{rf.Rad(50), rf.Rad(110)}, []float64{1, 0.8}, 30, 0, true, rng)
	r, err := Correlation(x)
	if err != nil {
		t.Fatal(err)
	}
	eigRaw, err := cmatrix.EigenHermitian(r)
	if err != nil {
		t.Fatal(err)
	}
	if eigRaw.Values[1] > 1e-6*eigRaw.Values[0] {
		t.Fatalf("coherent correlation should be rank ≈1: %v", eigRaw.Values[:3])
	}
	sm, err := SmoothForwardBackward(r, 6)
	if err != nil {
		t.Fatal(err)
	}
	eigSm, err := cmatrix.EigenHermitian(sm)
	if err != nil {
		t.Fatal(err)
	}
	if eigSm.Values[1] < 0.05*eigSm.Values[0] {
		t.Errorf("smoothing failed to restore rank: %v", eigSm.Values[:3])
	}
}

func TestDefaultSubarray(t *testing.T) {
	cases := map[int]int{4: 3, 6: 4, 8: 6, 16: 11, 2: 2}
	for m, want := range cases {
		if got := DefaultSubarray(m); got != want {
			t.Errorf("DefaultSubarray(%d) = %d, want %d", m, got, want)
		}
	}
}

func TestEstimateSources(t *testing.T) {
	if got := EstimateSources([]float64{100, 90, 1, 1.1, 0.9}, 10); got != 2 {
		t.Errorf("EstimateSources = %d, want 2", got)
	}
	// Equal eigenvalues are the pure-noise signature: no sources.
	if got := EstimateSources([]float64{100, 100, 100}, 10); got != 0 {
		t.Errorf("equal eigenvalues = %d, want 0", got)
	}
	// All eigenvalues well above the floor caps at dim-1 so a noise
	// subspace always remains.
	if got := EstimateSources([]float64{1000, 500, 200, 1e-9}, 10); got != 3 {
		t.Errorf("cap = %d, want 3 (dim-1)", got)
	}
	if got := EstimateSources(nil, 10); got != 0 {
		t.Errorf("empty = %d", got)
	}
	if got := EstimateSources([]float64{5, 0}, 10); got != 1 {
		t.Errorf("zero floor = %d", got)
	}
}

func TestMusicSingleSource(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	arr := testArray(t, 8)
	want := rf.Rad(64)
	x := synthSnapshots(arr, []float64{want}, []float64{1}, 10, 0.02, false, rng)
	res, err := Compute(x, arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	peaks := FindPeaks(res.Angles, res.Spectrum, 0.1)
	if len(peaks) == 0 {
		t.Fatal("no peaks")
	}
	if got := peaks[0].Angle; math.Abs(got-want) > rf.Rad(2) {
		t.Errorf("peak at %.1f°, want %.1f°", rf.Deg(got), rf.Deg(want))
	}
}

func TestMusicTwoCoherentSources(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	arr := testArray(t, 8)
	a1, a2 := rf.Rad(50), rf.Rad(115)
	x := synthSnapshots(arr, []float64{a1, a2}, []float64{1, 0.7}, 20, 0.02, true, rng)
	res, err := Compute(x, arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	peaks := FindPeaks(res.Angles, res.Spectrum, 0.05)
	if len(peaks) < 2 {
		t.Fatalf("found %d peaks, want ≥2 (coherent sources need smoothing)", len(peaks))
	}
	if _, ok := NearestPeak(peaks, a1, rf.Rad(3)); !ok {
		t.Errorf("no peak near %.0f°", rf.Deg(a1))
	}
	if _, ok := NearestPeak(peaks, a2, rf.Rad(3)); !ok {
		t.Errorf("no peak near %.0f°", rf.Deg(a2))
	}
}

func TestMusicThreeSources(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	arr := testArray(t, 8)
	want := []float64{rf.Rad(40), rf.Rad(85), rf.Rad(130)}
	x := synthSnapshots(arr, want, []float64{1, 0.9, 0.8}, 30, 0.02, true, rng)
	res, err := Compute(x, arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	peaks := FindPeaks(res.Angles, res.Spectrum, 0.02)
	for _, w := range want {
		if _, ok := NearestPeak(peaks, w, rf.Rad(4)); !ok {
			t.Errorf("no peak near %.0f°; peaks: %v", rf.Deg(w), peakAngles(peaks))
		}
	}
}

func peakAngles(ps []Peak) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = rf.Deg(p.Angle)
	}
	return out
}

func TestComputeValidation(t *testing.T) {
	arr := testArray(t, 8)
	if _, err := Compute(cmatrix.New(5, 4), arr, Options{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("column mismatch: %v", err)
	}
}

func TestFindPeaksBasics(t *testing.T) {
	angles := rf.AngleGrid(11)
	spec := []float64{0, 1, 5, 1, 0, 3, 8, 3, 0, 1, 0}
	peaks := FindPeaks(angles, spec, 0.1)
	if len(peaks) != 3 {
		t.Fatalf("peaks = %d, want 3", len(peaks))
	}
	if peaks[0].Amplitude != 8 || peaks[1].Amplitude != 5 {
		t.Errorf("order wrong: %+v", peaks)
	}
	// minRatio filters small peaks.
	peaks = FindPeaks(angles, spec, 0.5)
	if len(peaks) != 2 {
		t.Errorf("ratio filter: %d peaks, want 2", len(peaks))
	}
}

func TestFindPeaksPlateau(t *testing.T) {
	angles := rf.AngleGrid(7)
	spec := []float64{0, 2, 2, 2, 0, 1, 0}
	peaks := FindPeaks(angles, spec, 0.1)
	count := 0
	for _, p := range peaks {
		if p.Amplitude == 2 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("plateau reported %d times, want 1", count)
	}
}

func TestFindPeaksEdgeCases(t *testing.T) {
	if got := FindPeaks([]float64{0, 1}, []float64{1, 2}, 0.1); got != nil {
		t.Error("too-short spectrum should return nil")
	}
	if got := FindPeaks(rf.AngleGrid(5), []float64{0, 0, 0, 0, 0}, 0.1); got != nil {
		t.Error("all-zero spectrum should return nil")
	}
	if got := FindPeaks(rf.AngleGrid(5), []float64{1, 2}, 0.1); got != nil {
		t.Error("length mismatch should return nil")
	}
}

func TestNearestPeak(t *testing.T) {
	peaks := []Peak{{Angle: 1.0, Amplitude: 5}, {Angle: 2.0, Amplitude: 3}}
	p, ok := NearestPeak(peaks, 1.9, 0.2)
	if !ok || p.Angle != 2.0 {
		t.Errorf("NearestPeak = %+v, %v", p, ok)
	}
	if _, ok := NearestPeak(peaks, 0.5, 0.2); ok {
		t.Error("should not match outside tolerance")
	}
	if _, ok := NearestPeak(nil, 1, 1); ok {
		t.Error("empty peaks")
	}
}

func TestProjectionOntoNoiseOrthogonal(t *testing.T) {
	// Construct a noise subspace orthogonal to a known steering vector
	// and verify the projection is ≈0 there and >0 elsewhere.
	rng := rand.New(rand.NewSource(6))
	arr := testArray(t, 8)
	th := rf.Rad(75)
	x := synthSnapshots(arr, []float64{th}, []float64{1}, 20, 0.001, false, rng)
	res, err := Compute(x, arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	at := ProjectionOntoNoise(arr.SteeringSub(th, res.Subarray), res.Noise)
	off := ProjectionOntoNoise(arr.SteeringSub(th+0.5, res.Subarray), res.Noise)
	if at > off/100 {
		t.Errorf("projection at source %v not ≪ off-source %v", at, off)
	}
}

func BenchmarkMusic8x10(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	arr := testArray(b, 8)
	x := synthSnapshots(arr, []float64{1.0, 2.0}, []float64{1, 0.8}, 10, 0.02, true, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(x, arr, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestInfoCriterionSources(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	arr := testArray(t, 8)
	// Two incoherent sources, decent SNR, many snapshots: both MDL and
	// AIC should find k=2 on the raw correlation eigenvalues.
	x := synthSnapshots(arr, []float64{rf.Rad(50), rf.Rad(120)}, []float64{1, 0.7}, 200, 0.05, false, rng)
	r, err := Correlation(x)
	if err != nil {
		t.Fatal(err)
	}
	eig, err := cmatrix.EigenHermitian(r)
	if err != nil {
		t.Fatal(err)
	}
	if got := InfoCriterionSources(eig.Values, 200, MethodMDL); got != 2 {
		t.Errorf("MDL = %d, want 2 (eig %.3g)", got, eig.Values)
	}
	if got := InfoCriterionSources(eig.Values, 200, MethodAIC); got < 2 {
		t.Errorf("AIC = %d, want ≥ 2", got)
	}
}

func TestInfoCriterionDegenerate(t *testing.T) {
	if got := InfoCriterionSources(nil, 10, MethodMDL); got != 0 {
		t.Errorf("empty = %d", got)
	}
	if got := InfoCriterionSources([]float64{1}, 10, MethodMDL); got != 0 {
		t.Errorf("single = %d", got)
	}
	if got := InfoCriterionSources([]float64{1, 0.5}, 0, MethodMDL); got != 0 {
		t.Errorf("n=0 = %d", got)
	}
	// Pure noise (equal eigenvalues): k=0.
	if got := InfoCriterionSources([]float64{1, 1, 1, 1, 1, 1}, 100, MethodMDL); got != 0 {
		t.Errorf("pure noise MDL = %d, want 0", got)
	}
}

func TestRefineAngleRecoversSubBin(t *testing.T) {
	// A Gaussian peak centred between grid points: refinement must land
	// closer to the true centre than the raw grid peak.
	angles := rf.AngleGrid(181) // 1° steps
	trueAngle := rf.Rad(60.37)
	spec := make([]float64, len(angles))
	for i, th := range angles {
		d := th - trueAngle
		spec[i] = math.Exp(-d * d / (2 * 0.001))
	}
	peaks := FindPeaks(angles, spec, 0.1)
	if len(peaks) != 1 {
		t.Fatalf("peaks = %d", len(peaks))
	}
	raw := peaks[0].Angle
	refined := RefineAngle(angles, spec, peaks[0].Index)
	if math.Abs(refined-trueAngle) >= math.Abs(raw-trueAngle) {
		t.Errorf("refinement did not improve: raw err %.4f°, refined %.4f°",
			rf.Deg(math.Abs(raw-trueAngle)), rf.Deg(math.Abs(refined-trueAngle)))
	}
	if math.Abs(refined-trueAngle) > rf.Rad(0.1) {
		t.Errorf("refined angle %.3f°, want %.3f°", rf.Deg(refined), rf.Deg(trueAngle))
	}
}

func TestRefineAngleEdgeCases(t *testing.T) {
	angles := rf.AngleGrid(5)
	spec := []float64{1, 2, 3, 2, 1}
	// Edge index returns the grid angle.
	if got := RefineAngle(angles, spec, 0); got != angles[0] {
		t.Errorf("edge = %v", got)
	}
	if got := RefineAngle(angles, spec, 4); got != angles[4] {
		t.Errorf("edge = %v", got)
	}
	// Zero neighbour returns the grid angle.
	z := []float64{0, 2, 3, 2, 0}
	if got := RefineAngle(angles, z, 1); got != angles[1] {
		t.Errorf("zero neighbour = %v", got)
	}
	// Flat (non-concave) region returns the grid angle.
	flat := []float64{1, 1, 1, 1, 1}
	if got := RefineAngle(angles, flat, 2); got != angles[2] {
		t.Errorf("flat = %v", got)
	}
}
