package music

import (
	"fmt"
	"math/cmplx"

	"dwatch/internal/cmatrix"
	"dwatch/internal/rf"
)

// Workspace is the reusable per-worker state for repeated MUSIC runs
// against one array with fixed options: the shared steering table plus
// correlation, smoothing, and Jacobi scratch. A steady-state spectrum
// computes with near-zero heap allocation — only the escaping Result
// (spectrum, noise subspace, eigendecomposition) is freshly allocated,
// so results stay valid forever and may be retained by callers.
//
// A Workspace is not safe for concurrent use; give each goroutine its
// own. The steering table underneath is shared process-wide and
// read-only.
type Workspace struct {
	arr  *rf.Array
	opts Options // resolved: GridSize/Subarray/Threshold are concrete
	tab  *rf.SteeringTable

	corr *cmatrix.Matrix // M×M correlation accumulator (Compute)
	row  []complex128    // snapshot row scratch
	sm   *cmatrix.Matrix // L×L smoothed matrix (nil when NoSmoothing)
	eig  cmatrix.EigenWorkspace
}

// NewWorkspace resolves the options for the array and precomputes (or
// fetches the shared) steering table.
func NewWorkspace(arr *rf.Array, opts Options) (*Workspace, error) {
	opts = opts.withDefaults(arr.Elements)
	if opts.NoSmoothing {
		opts.Subarray = arr.Elements
	}
	if opts.Subarray < 2 || opts.Subarray > arr.Elements {
		return nil, fmt.Errorf("%w: subarray size %d for %d elements", ErrBadInput, opts.Subarray, arr.Elements)
	}
	tab, err := rf.SteeringTableFor(arr, opts.GridSize, opts.Subarray)
	if err != nil {
		return nil, err
	}
	w := &Workspace{
		arr:  arr,
		opts: opts,
		tab:  tab,
		corr: cmatrix.New(arr.Elements, arr.Elements),
		row:  make([]complex128, arr.Elements),
	}
	if !opts.NoSmoothing {
		w.sm = cmatrix.New(opts.Subarray, opts.Subarray)
	}
	return w, nil
}

// Table exposes the steering table so P-MUSIC's beamformer can reuse
// the same precomputed weights.
func (w *Workspace) Table() *rf.SteeringTable { return w.tab }

// Correlation exposes the M×M correlation accumulator filled by the
// last Compute call, so P-MUSIC's beamformer can evaluate Eq. 13 in the
// correlation domain (PB = aᴴ·R̂·a / M²) without a second pass over the
// snapshots. The matrix is workspace scratch: read-only, valid until
// the next Compute.
func (w *Workspace) Correlation() *cmatrix.Matrix { return w.corr }

// Compute runs MUSIC on an N×M snapshot matrix, reusing the workspace
// for the correlation stage.
func (w *Workspace) Compute(x *cmatrix.Matrix) (*Result, error) {
	if x.Cols != w.arr.Elements {
		return nil, fmt.Errorf("%w: %d columns for %d-element array", ErrBadInput, x.Cols, w.arr.Elements)
	}
	if x.Rows == 0 {
		return nil, fmt.Errorf("%w: empty snapshot matrix", ErrBadInput)
	}
	w.correlate(x)
	return w.ComputeFromCorrelation(w.corr)
}

// correlate accumulates R = (1/N)·Σ xₙ·xₙᴴ into w.corr, matching
// Correlation's arithmetic exactly.
func (w *Workspace) correlate(x *cmatrix.Matrix) {
	m := x.Cols
	for i := range w.corr.Data {
		w.corr.Data[i] = 0
	}
	for n := 0; n < x.Rows; n++ {
		copy(w.row, x.Data[n*m:(n+1)*m])
		// OuterAdd cannot fail: dimensions were fixed at construction.
		_ = w.corr.OuterAdd(w.row, 1/float64(x.Rows))
	}
}

// ComputeFromCorrelation runs the MUSIC stages after correlation. The
// returned Result owns its memory (its Angles alias the immutable
// shared grid) and stays valid across further workspace calls.
func (w *Workspace) ComputeFromCorrelation(r *cmatrix.Matrix) (*Result, error) {
	if r.Rows != w.arr.Elements || r.Cols != w.arr.Elements {
		return nil, fmt.Errorf("%w: %dx%d correlation for %d-element array", ErrBadInput, r.Rows, r.Cols, w.arr.Elements)
	}
	sm := r
	if !w.opts.NoSmoothing {
		smoothInto(w.sm, r, w.opts.Subarray)
		sm = w.sm
	}
	var eig *cmatrix.Eigen
	var err error
	switch w.opts.Eigensolver {
	case EigenQR:
		eig, err = w.eig.EigenHermitianQR(sm)
	case EigenJacobi:
		eig, err = w.eig.EigenHermitianJacobi(sm)
	default:
		eig, err = w.eig.EigenHermitian(sm)
	}
	if err != nil {
		return nil, err
	}
	p := w.opts.Sources
	if p <= 0 {
		p = EstimateSources(eig.Values, w.opts.Threshold)
	}
	if p < 1 {
		p = 1
	}
	l := w.opts.Subarray
	if p >= l {
		p = l - 1
	}
	q := l - p
	noise := cmatrix.New(l, q)
	for j := 0; j < q; j++ {
		for i := 0; i < l; i++ {
			noise.Set(i, j, eig.Vectors.At(i, p+j))
		}
	}
	spec := make([]float64, w.tab.Len())
	for i := range spec {
		spec[i] = pseudoSpectrum(w.tab.Steering(i), noise)
	}
	return &Result{
		Angles:   w.tab.Angles,
		Spectrum: spec,
		Sources:  p,
		Noise:    noise,
		Eigen:    eig,
		Subarray: l,
	}, nil
}

// smoothInto is SmoothForwardBackward accumulating into dst (already
// sized L×L) — identical arithmetic, zero allocation.
func smoothInto(dst, r *cmatrix.Matrix, l int) {
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	m := r.Rows
	k := m - l + 1
	for s := 0; s < k; s++ {
		for i := 0; i < l; i++ {
			for j := 0; j < l; j++ {
				dst.Data[i*l+j] += r.At(s+i, s+j)
				dst.Data[i*l+j] += cmplx.Conj(r.At(s+l-1-i, s+l-1-j))
			}
		}
	}
	scale := complex(1/float64(2*k), 0)
	for i := range dst.Data {
		dst.Data[i] *= scale
	}
}
