// Package music implements the classic MUSIC (MUltiple SIgnal
// Classification) direction-finding algorithm of Schmidt (1986) as
// described in Section 2.2 of the D-Watch paper, together with the
// forward-backward spatial smoothing of Shan, Wax & Kailath (1985) that
// D-Watch applies to decorrelate the fully coherent multipath copies of
// a tag's backscatter (Section 4.2).
package music

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"dwatch/internal/cmatrix"
	"dwatch/internal/rf"
)

// ErrBadInput is returned for malformed snapshot matrices or parameters.
var ErrBadInput = errors.New("music: bad input")

// Correlation computes the sample correlation matrix R = (1/N)·Σ xₙ·xₙᴴ
// from an N×M snapshot matrix (rows are snapshots).
func Correlation(x *cmatrix.Matrix) (*cmatrix.Matrix, error) {
	if x.Rows == 0 || x.Cols == 0 {
		return nil, fmt.Errorf("%w: empty snapshot matrix", ErrBadInput)
	}
	m := x.Cols
	r := cmatrix.New(m, m)
	row := make([]complex128, m)
	for n := 0; n < x.Rows; n++ {
		copy(row, x.Data[n*m:(n+1)*m])
		if err := r.OuterAdd(row, 1/float64(x.Rows)); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// SmoothForwardBackward applies forward-backward spatial smoothing to an
// M×M correlation matrix, producing an L×L smoothed matrix from the
// K = M-L+1 forward subarrays and their backward (exchange-conjugated)
// counterparts. Coherent sources up to rank min(2K, L-1) are
// decorrelated.
func SmoothForwardBackward(r *cmatrix.Matrix, l int) (*cmatrix.Matrix, error) {
	m := r.Rows
	if r.Cols != m {
		return nil, fmt.Errorf("%w: correlation matrix must be square", ErrBadInput)
	}
	if l < 2 || l > m {
		return nil, fmt.Errorf("%w: subarray size %d for %d elements", ErrBadInput, l, m)
	}
	k := m - l + 1
	out := cmatrix.New(l, l)
	for s := 0; s < k; s++ {
		for i := 0; i < l; i++ {
			for j := 0; j < l; j++ {
				// Forward subarray starting at s.
				out.Data[i*l+j] += r.At(s+i, s+j)
				// Backward: J·R*·J over the same window.
				out.Data[i*l+j] += cmplx.Conj(r.At(s+l-1-i, s+l-1-j))
			}
		}
	}
	return out.Scale(complex(1/float64(2*k), 0)), nil
}

// DefaultSubarray returns the standard subarray size for an M-element
// array: ceil(2M/3), e.g. 6 for M=8 — leaving 3 forward subarrays,
// enough to decorrelate the ≤5 dominant indoor paths the paper assumes.
func DefaultSubarray(m int) int {
	l := (2*m + 2) / 3
	if l < 2 {
		l = 2
	}
	if l > m {
		l = m
	}
	return l
}

// EstimateSources returns the number of signal eigenvalues: those larger
// than thresh times the smallest eigenvalue (noise floor estimate), with
// the count capped at dim-1 so a noise subspace always remains. This is
// the paper's "eigenvalues larger than a threshold" rule.
func EstimateSources(eigenvalues []float64, thresh float64) int {
	n := len(eigenvalues)
	if n == 0 {
		return 0
	}
	floor := eigenvalues[n-1]
	if floor <= 0 {
		floor = 1e-18
	}
	p := 0
	for _, v := range eigenvalues {
		if v > thresh*floor {
			p++
		}
	}
	if p >= n {
		p = n - 1
	}
	return p
}

// DefaultSourceThreshold is the eigenvalue ratio separating signal from
// noise subspace.
const DefaultSourceThreshold = 10.0

// Result bundles a computed spectrum with the subspace decomposition it
// came from; calibration (Eq. 10-11) reuses the noise subspace.
type Result struct {
	Angles   []float64       // scanned angles, radians
	Spectrum []float64       // MUSIC pseudo-spectrum B(θ) (Eq. 8)
	Sources  int             // estimated source count P
	Noise    *cmatrix.Matrix // L×Q noise subspace Uₙ (columns)
	Eigen    *cmatrix.Eigen  // full eigendecomposition of the smoothed R
	Subarray int             // subarray size L used
}

// Options configures a MUSIC run.
type Options struct {
	GridSize  int     // number of scan angles over [0, π]; 0 = 361
	Subarray  int     // spatial smoothing subarray size; 0 = DefaultSubarray
	Threshold float64 // source detection eigenvalue ratio; 0 = default
	Sources   int     // force source count; 0 = estimate from eigenvalues
	// NoSmoothing skips spatial smoothing entirely (ablation): MUSIC
	// runs on the raw correlation matrix, which is rank-deficient for
	// coherent multipath.
	NoSmoothing bool
	// Eigensolver selects the eigendecomposition backend; the zero
	// value is EigenAuto (tridiagonal QR with Jacobi fallback).
	Eigensolver Eigensolver
}

func (o Options) withDefaults(m int) Options {
	if o.GridSize == 0 {
		o.GridSize = 361
	}
	if o.Subarray == 0 {
		o.Subarray = DefaultSubarray(m)
	}
	if o.Threshold == 0 {
		o.Threshold = DefaultSourceThreshold
	}
	return o
}

// Compute runs MUSIC on an N×M snapshot matrix for the given array:
// correlation, forward-backward smoothing, eigendecomposition, source
// estimation and the pseudo-spectrum scan of Eq. 8.
func Compute(x *cmatrix.Matrix, arr *rf.Array, opts Options) (*Result, error) {
	if x.Cols != arr.Elements {
		return nil, fmt.Errorf("%w: %d columns for %d-element array", ErrBadInput, x.Cols, arr.Elements)
	}
	r, err := Correlation(x)
	if err != nil {
		return nil, err
	}
	return ComputeFromCorrelation(r, arr, opts)
}

// ComputeFromCorrelation runs the MUSIC stages after correlation; use it
// when the correlation matrix is accumulated incrementally. The
// pseudo-spectrum scan consumes the shared precomputed steering table
// for the array — bit-identical to evaluating Array.SteeringSub at every
// grid angle, without the per-angle cmplx.Exp calls or allocations.
// Repeated callers should hold a Workspace instead, which also reuses
// the smoothing and eigendecomposition scratch.
func ComputeFromCorrelation(r *cmatrix.Matrix, arr *rf.Array, opts Options) (*Result, error) {
	ws, err := NewWorkspace(arr, opts)
	if err != nil {
		return nil, err
	}
	return ws.ComputeFromCorrelation(r)
}

// pseudoSpectrum evaluates 1 / (aᴴ·Uₙ·Uₙᴴ·a) for a steering vector a.
func pseudoSpectrum(a []complex128, noise *cmatrix.Matrix) float64 {
	denom := noiseProjection(a, noise)
	if denom < 1e-18 {
		denom = 1e-18
	}
	return 1 / denom
}

// ProjectionOntoNoise returns ‖a(θ)ᴴ·Uₙ‖² — the calibration objective's
// per-tag term (Eq. 10) — for a steering vector already multiplied by
// any phase-offset correction.
func ProjectionOntoNoise(a []complex128, noise *cmatrix.Matrix) float64 {
	return noiseProjection(a, noise)
}

// noiseProjection computes ‖aᴴ·Uₙ‖² — the pseudo-spectrum grid's inner
// kernel, evaluated once per scan angle, so it is written for the
// scalar hot path: each column dot accumulates in a register with
// direct strided indexing into the subspace data instead of At()
// calls. The per-column summation order (ascending row) is unchanged,
// so the result is bit-identical to the naive double loop.
func noiseProjection(a []complex128, noise *cmatrix.Matrix) float64 {
	rows, q := noise.Rows, noise.Cols
	data := noise.Data
	a = a[:rows]
	var s float64
	for j := 0; j < q; j++ {
		var dot complex128
		idx := j
		for i := 0; i < rows; i++ {
			dot += cmplx.Conj(a[i]) * data[idx]
			idx += q
		}
		s += real(dot)*real(dot) + imag(dot)*imag(dot)
	}
	return s
}

// Peak is a local maximum of a spectrum.
type Peak struct {
	Index     int     // grid index
	Angle     float64 // radians
	Amplitude float64
}

// FindPeaks returns local maxima of the spectrum that exceed minRatio
// times the global maximum, sorted by amplitude descending. Plateau tops
// are reported once at their left edge.
func FindPeaks(angles, spec []float64, minRatio float64) []Peak {
	if len(spec) != len(angles) || len(spec) < 3 {
		return nil
	}
	var max float64
	for _, v := range spec {
		if v > max {
			max = v
		}
	}
	if max <= 0 {
		return nil
	}
	var peaks []Peak
	for i := 1; i < len(spec)-1; i++ {
		if spec[i] < spec[i-1] || spec[i] < minRatio*max {
			continue
		}
		// Walk any plateau to the right.
		j := i
		for j+1 < len(spec) && spec[j+1] == spec[i] {
			j++
		}
		if j+1 < len(spec) && spec[j+1] >= spec[i] {
			continue // ascending, not a peak
		}
		if spec[i] > spec[i-1] || (j+1 < len(spec) && spec[i] > spec[j+1]) {
			peaks = append(peaks, Peak{Index: i, Angle: angles[i], Amplitude: spec[i]})
		}
		i = j
	}
	// Sort by amplitude descending (insertion sort, tiny n).
	for i := 1; i < len(peaks); i++ {
		for j := i; j > 0 && peaks[j].Amplitude > peaks[j-1].Amplitude; j-- {
			peaks[j], peaks[j-1] = peaks[j-1], peaks[j]
		}
	}
	return peaks
}

// NearestPeak returns the peak closest in angle to want, or ok=false if
// none is within tol radians.
func NearestPeak(peaks []Peak, want, tol float64) (Peak, bool) {
	best := Peak{}
	bestD := math.Inf(1)
	for _, p := range peaks {
		if d := math.Abs(p.Angle - want); d < bestD {
			best, bestD = p, d
		}
	}
	if bestD <= tol {
		return best, true
	}
	return Peak{}, false
}

// SourceMethod selects how the signal-subspace dimension is estimated.
type SourceMethod int

// Source-count estimators.
const (
	// MethodThreshold is the paper's rule: eigenvalues above a ratio of
	// the noise floor count as signals.
	MethodThreshold SourceMethod = iota
	// MethodMDL is Wax & Kailath's minimum description length
	// criterion — consistent (picks the true count as snapshots grow).
	MethodMDL
	// MethodAIC is the Akaike information criterion — less conservative
	// than MDL, tends to overestimate at high SNR.
	MethodAIC
)

// InfoCriterionSources estimates the source count from the
// eigenvalues of an L×L correlation matrix built from n snapshots,
// minimizing the MDL or AIC cost
//
//	-n·(L-k)·log( geoMean(λ_{k+1..L}) / mean(λ_{k+1..L}) ) + penalty(k)
//
// with penalty ½k(2L−k)·log n for MDL and k(2L−k) for AIC. The count is
// capped at L−1 so a noise subspace always remains.
func InfoCriterionSources(eigenvalues []float64, n int, method SourceMethod) int {
	l := len(eigenvalues)
	if l < 2 || n < 1 {
		return 0
	}
	bestK, bestCost := 0, math.Inf(1)
	for k := 0; k < l; k++ {
		q := l - k
		var logSum, sum float64
		degenerate := false
		for _, v := range eigenvalues[k:] {
			if v <= 0 {
				degenerate = true
				break
			}
			logSum += math.Log(v)
			sum += v
		}
		if degenerate {
			break
		}
		geo := logSum / float64(q)          // log of geometric mean
		arith := math.Log(sum / float64(q)) // log of arithmetic mean
		fit := -float64(n) * float64(q) * (geo - arith)
		var penalty float64
		switch method {
		case MethodAIC:
			penalty = float64(k * (2*l - k))
		default: // MDL
			penalty = 0.5 * float64(k*(2*l-k)) * math.Log(float64(n))
		}
		if cost := fit + penalty; cost < bestCost {
			bestK, bestCost = k, cost
		}
	}
	if bestK >= l {
		bestK = l - 1
	}
	return bestK
}

// RefineAngle returns a sub-grid estimate of a spectrum peak's angle by
// fitting a parabola to the log-spectrum at the peak and its two
// neighbours. Grid sampling quantizes peaks to the scan step (0.5° at
// the default 361-point grid); the refinement recovers a fraction of
// that. Edge peaks are returned unrefined.
func RefineAngle(angles, spec []float64, idx int) float64 {
	if idx <= 0 || idx >= len(spec)-1 || len(angles) != len(spec) {
		return angles[clampIdx(idx, len(angles))]
	}
	ym, y0, yp := spec[idx-1], spec[idx], spec[idx+1]
	if ym <= 0 || y0 <= 0 || yp <= 0 {
		return angles[idx]
	}
	lm, l0, lp := math.Log(ym), math.Log(y0), math.Log(yp)
	den := lm - 2*l0 + lp
	if den >= 0 { // not concave: no parabolic vertex above the samples
		return angles[idx]
	}
	delta := 0.5 * (lm - lp) / den
	if delta < -1 || delta > 1 {
		return angles[idx]
	}
	step := angles[1] - angles[0]
	return angles[idx] + delta*step
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
