package music

import "fmt"

// Eigensolver selects the Hermitian eigendecomposition backend for the
// subspace stage. The solvers agree on eigenvalues to ~1e-12·‖R‖ and on
// the noise-subspace projector Uₙ·Uₙᴴ (the quantity the pseudo-spectrum
// depends on) wherever the signal/noise eigenvalue gap exists;
// individual eigenvectors differ by per-column phase. The selector
// exists for A/B comparison (dwatch-replay -eigensolver) — production
// uses the default.
type Eigensolver int

const (
	// EigenAuto (the default) runs tridiagonal QL/QR with an automatic
	// Jacobi fallback on non-convergence — QR speed, Jacobi robustness.
	EigenAuto Eigensolver = iota
	// EigenQR runs only Householder tridiagonalization + implicit-shift
	// QL/QR; non-convergence is an error.
	EigenQR
	// EigenJacobi runs only the classical cyclic complex Jacobi sweep —
	// the pre-QR solver, retained as the A/B reference.
	EigenJacobi
)

func (e Eigensolver) String() string {
	switch e {
	case EigenAuto:
		return "auto"
	case EigenQR:
		return "qr"
	case EigenJacobi:
		return "jacobi"
	default:
		return fmt.Sprintf("Eigensolver(%d)", int(e))
	}
}

// ParseEigensolver maps the flag spellings to a solver; "" and "auto"
// both select the default.
func ParseEigensolver(s string) (Eigensolver, error) {
	switch s {
	case "", "auto":
		return EigenAuto, nil
	case "qr", "ql":
		return EigenQR, nil
	case "jacobi":
		return EigenJacobi, nil
	default:
		return 0, fmt.Errorf("music: unknown eigensolver %q (want auto, qr or jacobi)", s)
	}
}
