package music

import (
	"math/rand"
	"testing"

	"dwatch/internal/cmatrix"
	"dwatch/internal/rf"
)

// preTableCompute replicates the pre-steering-table MUSIC pipeline from
// primitives that did not change: it is the reference the cached path
// must match bit for bit.
func preTableCompute(t *testing.T, x *cmatrix.Matrix, arr *rf.Array, opts Options) *Result {
	t.Helper()
	opts = opts.withDefaults(arr.Elements)
	r, err := Correlation(x)
	if err != nil {
		t.Fatal(err)
	}
	sm := r
	if opts.NoSmoothing {
		opts.Subarray = arr.Elements
	} else {
		if sm, err = SmoothForwardBackward(r, opts.Subarray); err != nil {
			t.Fatal(err)
		}
	}
	eig, err := cmatrix.EigenHermitian(sm)
	if err != nil {
		t.Fatal(err)
	}
	p := opts.Sources
	if p <= 0 {
		p = EstimateSources(eig.Values, opts.Threshold)
	}
	if p < 1 {
		p = 1
	}
	l := opts.Subarray
	if p >= l {
		p = l - 1
	}
	q := l - p
	noise := cmatrix.New(l, q)
	for j := 0; j < q; j++ {
		col := eig.Vectors.Col(p + j)
		for i := 0; i < l; i++ {
			noise.Set(i, j, col[i])
		}
	}
	angles := rf.AngleGrid(opts.GridSize)
	spec := make([]float64, len(angles))
	for i, th := range angles {
		spec[i] = pseudoSpectrum(arr.SteeringSub(th, l), noise)
	}
	return &Result{Angles: angles, Spectrum: spec, Sources: p, Noise: noise, Eigen: eig, Subarray: l}
}

func sameResult(t *testing.T, tag string, got, want *Result) {
	t.Helper()
	if got.Sources != want.Sources || got.Subarray != want.Subarray {
		t.Fatalf("%s: sources/subarray = %d/%d, want %d/%d",
			tag, got.Sources, got.Subarray, want.Sources, want.Subarray)
	}
	if len(got.Angles) != len(want.Angles) || len(got.Spectrum) != len(want.Spectrum) {
		t.Fatalf("%s: grid sizes differ", tag)
	}
	for i := range want.Spectrum {
		if got.Angles[i] != want.Angles[i] {
			t.Fatalf("%s: Angles[%d] = %v, want %v", tag, i, got.Angles[i], want.Angles[i])
		}
		// Exact float equality: the cached path claims bit-identity.
		if got.Spectrum[i] != want.Spectrum[i] {
			t.Fatalf("%s: Spectrum[%d] = %v, want %v", tag, i, got.Spectrum[i], want.Spectrum[i])
		}
	}
	for i := range want.Noise.Data {
		if got.Noise.Data[i] != want.Noise.Data[i] {
			t.Fatalf("%s: noise subspace differs at %d", tag, i)
		}
	}
	for i := range want.Eigen.Values {
		if got.Eigen.Values[i] != want.Eigen.Values[i] {
			t.Fatalf("%s: eigenvalue %d differs", tag, i)
		}
	}
}

func TestWorkspaceBitIdenticalToPreTablePath(t *testing.T) {
	arr := testArray(t, 8)
	rng := rand.New(rand.NewSource(7))
	for _, opts := range []Options{
		{},
		{GridSize: 181},
		{Sources: 3},
		{NoSmoothing: true},
		{Subarray: 4, Threshold: 5},
	} {
		x := synthSnapshots(arr, []float64{0.7, 1.9}, []float64{1, 0.6}, 24, 0.05, true, rng)
		want := preTableCompute(t, x, arr, opts)

		got, err := Compute(x, arr, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		sameResult(t, "Compute", got, want)

		ws, err := NewWorkspace(arr, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err = ws.Compute(x)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "Workspace.Compute", got, want)
	}
}

func TestWorkspaceReuseDoesNotCrossContaminate(t *testing.T) {
	arr := testArray(t, 8)
	rng := rand.New(rand.NewSource(9))
	ws, err := NewWorkspace(arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]*cmatrix.Matrix, 4)
	for i := range inputs {
		inputs[i] = synthSnapshots(arr, []float64{0.4 + 0.5*float64(i)}, []float64{1}, 20, 0.1, true, rng)
	}
	// Results computed through one reused workspace must match fresh
	// per-call computation, and earlier results must stay intact after
	// later calls overwrite the scratch.
	results := make([]*Result, len(inputs))
	for i, x := range inputs {
		r, err := ws.Compute(x)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = r
	}
	for i, x := range inputs {
		want, err := Compute(x, arr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "reused workspace", results[i], want)
	}
}

func TestWorkspaceSteadyStateAllocs(t *testing.T) {
	arr := testArray(t, 8)
	rng := rand.New(rand.NewSource(11))
	x := synthSnapshots(arr, []float64{1.2}, []float64{1}, 20, 0.05, true, rng)
	ws, err := NewWorkspace(arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Compute(x); err != nil {
		t.Fatal(err)
	}
	// Only the escaping Result (spectrum, noise subspace, eigendecomp)
	// may allocate; all scan/smoothing/Jacobi scratch is reused.
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := ws.Compute(x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 16 {
		t.Errorf("steady-state Workspace.Compute allocates %.0f times per run, want ≤16", allocs)
	}
}
