package music

import (
	"fmt"

	"dwatch/internal/cmatrix"
)

// SlidingCorrelation maintains the correlation matrix of the last
// `window` snapshots with rank-1 update/downdate arithmetic: pushing a
// snapshot costs O(M²) — one OuterAdd for the new row and one negative
// OuterAdd evicting the oldest — instead of the O(N·M²) full recompute
// a naive sliding window pays. At the paper's N=10 window that is a
// ~10× cheaper correlation stage for continuously-sliding consumers.
//
// Floating-point downdates accumulate rounding drift (a subtraction
// cannot exactly cancel an addition performed at a different magnitude
// history), so every RefreshEvery slides the accumulator is rebuilt
// exactly from the retained ring — bounding the drift to what
// RefreshEvery slides can accumulate (~1e-13 relative in practice; see
// TestSlidingCorrelationDriftBounded).
//
// Not safe for concurrent use.
type SlidingCorrelation struct {
	m      int
	window int

	ring  *cmatrix.Matrix // window×m retained snapshots
	head  int             // ring slot the next push overwrites
	count int             // rows currently held (≤ window)

	sum *cmatrix.Matrix // Σ x·xᴴ over the held rows, unnormalized
	r   *cmatrix.Matrix // normalized output scratch for R()

	slides       int // downdates since the last exact rebuild
	refreshEvery int
}

// DefaultRefreshEvery is the rebuild period when none is configured:
// drift over 256 O(1)-magnitude rank-1 downdates stays ~1e-13 relative.
const DefaultRefreshEvery = 256

// NewSlidingCorrelation returns a sliding accumulator for M-element
// snapshots over the given window size. refreshEvery ≤ 0 selects
// DefaultRefreshEvery.
func NewSlidingCorrelation(m, window, refreshEvery int) (*SlidingCorrelation, error) {
	if m < 1 {
		return nil, fmt.Errorf("%w: %d-element snapshots", ErrBadInput, m)
	}
	if window < 1 {
		return nil, fmt.Errorf("%w: window %d", ErrBadInput, window)
	}
	if refreshEvery <= 0 {
		refreshEvery = DefaultRefreshEvery
	}
	return &SlidingCorrelation{
		m:            m,
		window:       window,
		ring:         cmatrix.New(window, m),
		sum:          cmatrix.New(m, m),
		r:            cmatrix.New(m, m),
		refreshEvery: refreshEvery,
	}, nil
}

// Len returns the number of snapshots currently in the window.
func (s *SlidingCorrelation) Len() int { return s.count }

// Window returns the configured window size.
func (s *SlidingCorrelation) Window() int { return s.window }

// Push slides the window by one snapshot: the oldest row (once the
// window is full) is downdated out of the accumulator and row takes its
// place. Zero allocations in steady state.
func (s *SlidingCorrelation) Push(row []complex128) error {
	if len(row) != s.m {
		return fmt.Errorf("%w: %d-element snapshot for %d-element window", ErrBadInput, len(row), s.m)
	}
	slot := s.ring.Data[s.head*s.m : (s.head+1)*s.m]
	if s.count == s.window {
		// OuterAdd cannot fail: dimensions were fixed at construction.
		_ = s.sum.OuterAdd(slot, -1)
		s.slides++
	} else {
		s.count++
	}
	copy(slot, row)
	_ = s.sum.OuterAdd(slot, 1)
	s.head = (s.head + 1) % s.window
	if s.slides >= s.refreshEvery {
		s.rebuild()
	}
	return nil
}

// rebuild re-accumulates sum exactly from the ring in chronological
// order, zeroing the drift the rank-1 downdates accumulated.
func (s *SlidingCorrelation) rebuild() {
	for i := range s.sum.Data {
		s.sum.Data[i] = 0
	}
	for k := 0; k < s.count; k++ {
		// Oldest-first: with a full ring the oldest row sits at head.
		slot := (s.head + k) % s.window
		if s.count < s.window {
			slot = k
		}
		_ = s.sum.OuterAdd(s.ring.Data[slot*s.m:(slot+1)*s.m], 1)
	}
	s.slides = 0
}

// R returns the normalized correlation matrix (1/N)·Σ x·xᴴ over the
// current window. The returned matrix is reused scratch: read-only,
// valid until the next Push. Feed it to Workspace.ComputeFromCorrelation
// to get a MUSIC/P-MUSIC spectrum per slide without recomputing R.
func (s *SlidingCorrelation) R() (*cmatrix.Matrix, error) {
	if s.count == 0 {
		return nil, fmt.Errorf("%w: empty window", ErrBadInput)
	}
	inv := complex(1/float64(s.count), 0)
	for i, v := range s.sum.Data {
		s.r.Data[i] = v * inv
	}
	return s.r, nil
}
