package music

import (
	"math"
	"math/rand"
	"testing"

	"dwatch/internal/cmatrix"
)

func randomRow(m int, rng *rand.Rand) []complex128 {
	row := make([]complex128, m)
	for i := range row {
		row[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return row
}

// windowMatrix collects the last min(pushed, window) rows in
// chronological order — the reference a full recompute would see.
func windowMatrix(rows [][]complex128, window int) *cmatrix.Matrix {
	start := 0
	if len(rows) > window {
		start = len(rows) - window
	}
	held := rows[start:]
	m := cmatrix.New(len(held), len(held[0]))
	for i, r := range held {
		copy(m.Data[i*len(r):(i+1)*len(r)], r)
	}
	return m
}

func relFrobDiff(t *testing.T, got, want *cmatrix.Matrix) float64 {
	t.Helper()
	d, err := got.Sub(want)
	if err != nil {
		t.Fatal(err)
	}
	return d.FrobNorm() / (1 + want.FrobNorm())
}

func TestSlidingCorrelationMatchesRecompute(t *testing.T) {
	const m, window = 6, 10
	rng := rand.New(rand.NewSource(21))
	s, err := NewSlidingCorrelation(m, window, 0)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]complex128
	for push := 0; push < 100; push++ {
		row := randomRow(m, rng)
		rows = append(rows, row)
		if err := s.Push(row); err != nil {
			t.Fatal(err)
		}
		wantLen := len(rows)
		if wantLen > window {
			wantLen = window
		}
		if s.Len() != wantLen {
			t.Fatalf("push %d: Len = %d, want %d", push, s.Len(), wantLen)
		}
		got, err := s.R()
		if err != nil {
			t.Fatal(err)
		}
		want, err := Correlation(windowMatrix(rows, window))
		if err != nil {
			t.Fatal(err)
		}
		if d := relFrobDiff(t, got, want); d > 1e-12 {
			t.Fatalf("push %d: sliding R drifted %v from recompute", push, d)
		}
	}
}

func TestSlidingCorrelationDriftBounded(t *testing.T) {
	const m, window = 8, 16
	rng := rand.New(rand.NewSource(23))
	// A tight refresh and an effectively-never refresh, fed identically.
	tight, err := NewSlidingCorrelation(m, window, 32)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := NewSlidingCorrelation(m, window, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]complex128
	for push := 0; push < 5000; push++ {
		row := randomRow(m, rng)
		rows = append(rows, row)
		if err := tight.Push(row); err != nil {
			t.Fatal(err)
		}
		if err := loose.Push(row); err != nil {
			t.Fatal(err)
		}
	}
	want, err := Correlation(windowMatrix(rows, window))
	if err != nil {
		t.Fatal(err)
	}
	gotTight, err := tight.R()
	if err != nil {
		t.Fatal(err)
	}
	gotLoose, err := loose.R()
	if err != nil {
		t.Fatal(err)
	}
	if d := relFrobDiff(t, gotTight, want); d > 1e-12 {
		t.Fatalf("refreshed accumulator drifted %v after 5000 slides", d)
	}
	// Even unrefreshed, O(1)-magnitude data stays tolerable — the
	// refresh exists to make the bound independent of run length.
	if d := relFrobDiff(t, gotLoose, want); d > 1e-9 {
		t.Fatalf("unrefreshed accumulator drifted %v after 5000 slides", d)
	}
}

func TestSlidingCorrelationSpectrum(t *testing.T) {
	arr := testArray(t, 8)
	const window = 12
	rng := rand.New(rand.NewSource(27))
	ws, err := NewWorkspace(arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wsRef, err := NewWorkspace(arr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSlidingCorrelation(arr.Elements, window, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := synthSnapshots(arr, []float64{0.9, 2.2}, []float64{1, 0.5}, 60, 0.05, false, rng)
	var rows [][]complex128
	for n := 0; n < x.Rows; n++ {
		row := x.Data[n*x.Cols : (n+1)*x.Cols]
		rows = append(rows, row)
		if err := s.Push(row); err != nil {
			t.Fatal(err)
		}
		if s.Len() < window {
			continue
		}
		r, err := s.R()
		if err != nil {
			t.Fatal(err)
		}
		got, err := ws.ComputeFromCorrelation(r)
		if err != nil {
			t.Fatal(err)
		}
		want, err := wsRef.Compute(windowMatrix(rows, window))
		if err != nil {
			t.Fatal(err)
		}
		if got.Sources != want.Sources {
			t.Fatalf("row %d: sliding sources %d, recompute %d", n, got.Sources, want.Sources)
		}
		for i := range want.Spectrum {
			scale := 1 + math.Abs(want.Spectrum[i])
			if math.Abs(got.Spectrum[i]-want.Spectrum[i])/scale > 1e-9 {
				t.Fatalf("row %d angle %d: sliding spectrum %v vs recompute %v",
					n, i, got.Spectrum[i], want.Spectrum[i])
			}
		}
	}
}

func TestSlidingCorrelationAllocs(t *testing.T) {
	const m, window = 8, 10
	rng := rand.New(rand.NewSource(29))
	s, err := NewSlidingCorrelation(m, window, 0)
	if err != nil {
		t.Fatal(err)
	}
	row := randomRow(m, rng)
	for i := 0; i < window+2; i++ {
		if err := s.Push(row); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.Push(row); err != nil {
			t.Fatal(err)
		}
		if _, err := s.R(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Push+R allocates %v/run, want 0", allocs)
	}
}

func TestSlidingCorrelationErrors(t *testing.T) {
	if _, err := NewSlidingCorrelation(0, 4, 0); err == nil {
		t.Fatal("zero-element snapshots accepted")
	}
	if _, err := NewSlidingCorrelation(4, 0, 0); err == nil {
		t.Fatal("zero window accepted")
	}
	s, err := NewSlidingCorrelation(4, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.R(); err == nil {
		t.Fatal("R on empty window accepted")
	}
	if err := s.Push(make([]complex128, 3)); err == nil {
		t.Fatal("mis-sized row accepted")
	}
}

func BenchmarkSlidingCorrelation(b *testing.B) {
	const m, window = 8, 10
	rng := rand.New(rand.NewSource(31))
	rows := make([][]complex128, 64)
	for i := range rows {
		rows[i] = randomRow(m, rng)
	}
	b.Run("slide", func(b *testing.B) {
		s, err := NewSlidingCorrelation(m, window, 0)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < window; i++ {
			_ = s.Push(rows[i%len(rows)])
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = s.Push(rows[i%len(rows)])
			if _, err := s.R(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		x := cmatrix.New(window, m)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < window; k++ {
				copy(x.Data[k*m:(k+1)*m], rows[(i+k)%len(rows)])
			}
			if _, err := Correlation(x); err != nil {
				b.Fatal(err)
			}
		}
	})
}
