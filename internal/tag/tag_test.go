package tag

import (
	"errors"
	"math/rand"
	"testing"

	"dwatch/internal/geom"
)

func TestNewUniqueEPCs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 50)
	for i := range pts {
		pts[i] = geom.Pt2(float64(i), 0)
	}
	p, err := New(pts, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 50 {
		t.Fatalf("Len = %d", p.Len())
	}
	seen := map[string]bool{}
	for _, tg := range p.Tags {
		if len(tg.EPC) != 12 {
			t.Fatalf("EPC len = %d", len(tg.EPC))
		}
		if seen[string(tg.EPC)] {
			t.Fatal("duplicate EPC")
		}
		seen[string(tg.EPC)] = true
	}
	if _, err := New(pts, nil); !errors.Is(err, ErrBadPopulation) {
		t.Errorf("nil rng: %v", err)
	}
}

func TestRandomInRect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p, err := RandomInRect(30, 0, 7, 0, 10, 1, 1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, tg := range p.Tags {
		if tg.Pos.X < 0 || tg.Pos.X > 7 || tg.Pos.Y < 0 || tg.Pos.Y > 10 {
			t.Errorf("tag outside rect: %v", tg.Pos)
		}
		if tg.Pos.Z < 1 || tg.Pos.Z > 1.5 {
			t.Errorf("tag height: %v", tg.Pos.Z)
		}
	}
	if _, err := RandomInRect(5, 1, 0, 0, 1, 0, 1, rng); !errors.Is(err, ErrBadPopulation) {
		t.Errorf("bad rect: %v", err)
	}
	if _, err := RandomInRect(5, 0, 1, 0, 1, 0, 1, nil); !errors.Is(err, ErrBadPopulation) {
		t.Errorf("nil rng: %v", err)
	}
}

func TestOnPerimeter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, err := OnPerimeter(26, geom.Pt2(0, 0), 2, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 26 {
		t.Fatalf("Len = %d", p.Len())
	}
	for _, tg := range p.Tags {
		onLeft := tg.Pos.X == 0 && tg.Pos.Y > 0 && tg.Pos.Y < 2
		onTop := tg.Pos.Y == 2 && tg.Pos.X > 0 && tg.Pos.X < 2
		if !onLeft && !onTop {
			t.Errorf("tag not on perimeter sides: %v", tg.Pos)
		}
		if tg.Pos.Z != 0.8 {
			t.Errorf("tag z = %v", tg.Pos.Z)
		}
	}
	if _, err := OnPerimeter(1, geom.Pt2(0, 0), 2, 0.8, rng); !errors.Is(err, ErrBadPopulation) {
		t.Errorf("n=1: %v", err)
	}
}

func TestByEPC(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p, err := New([]geom.Point{geom.Pt2(1, 2), geom.Pt2(3, 4)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := p.ByEPC(p.Tags[1].EPC)
	if !ok || got.Pos != geom.Pt2(3, 4) {
		t.Errorf("ByEPC = %v, %v", got, ok)
	}
	if _, ok := p.ByEPC([]byte("nonexistent!")); ok {
		t.Error("found nonexistent EPC")
	}
}

func TestEPCs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p, _ := New([]geom.Point{geom.Pt2(0, 0), geom.Pt2(1, 1), geom.Pt2(2, 2)}, rng)
	es := p.EPCs()
	if len(es) != 3 {
		t.Fatalf("EPCs len = %d", len(es))
	}
	for i := range es {
		if string(es[i]) != string(p.Tags[i].EPC) {
			t.Errorf("EPCs[%d] mismatch", i)
		}
	}
}
