// Package tag models the passive UHF RFID tag population D-Watch
// deploys: cheap Alien ALN-9634-class tags placed at arbitrary,
// possibly unknown positions (the system never needs tag locations
// except during phase calibration). Tags are pure backscatterers — no
// battery — so whether a tag is readable at all depends on the forward
// link budget from the reader.
package tag

import (
	"errors"
	"fmt"
	"math/rand"

	"dwatch/internal/epcgen2"
	"dwatch/internal/geom"
)

// Tag is one deployed passive tag.
type Tag struct {
	EPC []byte     // 96-bit identity
	Pos geom.Point // ground-truth position (used by the simulator; the
	// localization pipeline itself never reads it outside calibration)
}

// ErrBadPopulation is returned for invalid population parameters.
var ErrBadPopulation = errors.New("tag: bad population")

// Population is a set of deployed tags.
type Population struct {
	Tags []Tag
}

// New creates a population with the given positions and random EPCs.
func New(positions []geom.Point, rng *rand.Rand) (*Population, error) {
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadPopulation)
	}
	p := &Population{Tags: make([]Tag, len(positions))}
	seen := make(map[string]bool, len(positions))
	for i, pos := range positions {
		var epc []byte
		for {
			epc = epcgen2.RandomEPC(rng)
			if !seen[string(epc)] {
				seen[string(epc)] = true
				break
			}
		}
		p.Tags[i] = Tag{EPC: epc, Pos: pos}
	}
	return p, nil
}

// RandomInRect places n tags uniformly in an axis-aligned rectangle at
// heights uniform in [zMin, zMax] (the paper: tags on tables or held,
// 1-1.5 m up).
func RandomInRect(n int, xMin, xMax, yMin, yMax, zMin, zMax float64, rng *rand.Rand) (*Population, error) {
	if n < 0 || xMax < xMin || yMax < yMin || zMax < zMin {
		return nil, fmt.Errorf("%w: n=%d rect [%v,%v]x[%v,%v] z[%v,%v]", ErrBadPopulation, n, xMin, xMax, yMin, yMax, zMin, zMax)
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadPopulation)
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(
			xMin+rng.Float64()*(xMax-xMin),
			yMin+rng.Float64()*(yMax-yMin),
			zMin+rng.Float64()*(zMax-zMin),
		)
	}
	return New(pts, rng)
}

// OnPerimeter places n tags evenly along the two given sides of a
// rectangle, the table-area deployment of Fig. 20 (tags on two sides,
// arrays on the other two).
func OnPerimeter(n int, corner geom.Point, size, z float64, rng *rand.Rand) (*Population, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: perimeter needs ≥ 2 tags", ErrBadPopulation)
	}
	half := n / 2
	pts := make([]geom.Point, 0, n)
	// Left side (x = corner.X), spread along y.
	for i := 0; i < half; i++ {
		f := float64(i+1) / float64(half+1)
		pts = append(pts, geom.Pt(corner.X, corner.Y+f*size, z))
	}
	// Top side (y = corner.Y+size), spread along x.
	for i := 0; i < n-half; i++ {
		f := float64(i+1) / float64(n-half+1)
		pts = append(pts, geom.Pt(corner.X+f*size, corner.Y+size, z))
	}
	return New(pts, rng)
}

// EPCs returns the population's EPCs in order, for inventory simulation.
func (p *Population) EPCs() [][]byte {
	out := make([][]byte, len(p.Tags))
	for i, t := range p.Tags {
		out[i] = t.EPC
	}
	return out
}

// ByEPC returns the tag with the given EPC.
func (p *Population) ByEPC(epc []byte) (Tag, bool) {
	for _, t := range p.Tags {
		if string(t.EPC) == string(epc) {
			return t, true
		}
	}
	return Tag{}, false
}

// Len returns the number of tags.
func (p *Population) Len() int { return len(p.Tags) }
