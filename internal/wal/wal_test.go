package wal

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dwatch/internal/llrp"
	"dwatch/internal/obs"
)

// appendN appends n records with deterministic payloads and timestamps
// and returns them for comparison.
func appendN(t *testing.T, w *WAL, n int, payloadLen int) []Record {
	t.Helper()
	out := make([]Record, n)
	base := time.UnixMicro(1_700_000_000_000_000)
	for i := 0; i < n; i++ {
		payload := bytes.Repeat([]byte{byte(i + 1)}, payloadLen)
		at := base.Add(time.Duration(i) * 10 * time.Millisecond)
		seq, err := w.Append(at, uint16(60+i%4), payload)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		out[i] = Record{Seq: seq, At: at, Type: uint16(60 + i%4), Payload: payload}
	}
	return out
}

func readAll(t *testing.T, dir string) ([]Record, ScanResult) {
	t.Helper()
	var recs []Record
	res, err := Scan(dir, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return recs, res
}

func TestAppendReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, WithFsync(FsyncNever))
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, w, 25, 64)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, res := readAll(t, dir)
	if res.Damage != nil {
		t.Fatalf("unexpected damage: %s", res.Damage)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].Type != want[i].Type ||
			!got[i].At.Equal(want[i].At) || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, got[i], want[i])
		}
	}
	if res.LastSeq != want[len(want)-1].Seq {
		t.Fatalf("LastSeq = %d, want %d", res.LastSeq, want[len(want)-1].Seq)
	}
}

func TestAppendResumesAfterReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, WithFsync(FsyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	first := appendN(t, w, 5, 32)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := w2.Status()
	if st.Recovered != 5 {
		t.Fatalf("recovered %d records, want 5", st.Recovered)
	}
	if st.NextSeq != first[len(first)-1].Seq+1 {
		t.Fatalf("next seq %d, want %d", st.NextSeq, first[len(first)-1].Seq+1)
	}
	if st.Segments != 1 {
		t.Fatalf("reopen grew segments: %d, want 1 (should resume the tail segment)", st.Segments)
	}
	more := appendN(t, w2, 3, 32)
	if more[0].Seq != first[len(first)-1].Seq+1 {
		t.Fatalf("resumed seq %d, want %d", more[0].Seq, first[len(first)-1].Seq+1)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, res := readAll(t, dir)
	if res.Damage != nil || len(got) != 8 {
		t.Fatalf("after reopen: %d records (damage %v), want 8 clean", len(got), res.Damage)
	}
}

// TestRotationBoundaryExactFit pins the boundary condition: a record
// that lands exactly at the segment cap stays in the segment; the next
// byte rotates.
func TestRotationBoundaryExactFit(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 100)
	recLen := encodedLen(payload)
	// Room for the header plus exactly two records.
	max := int64(segHeaderLen) + 2*recLen
	dir := t.TempDir()
	w, err := Open(dir, WithFsync(FsyncNever), WithSegmentMaxBytes(max))
	if err != nil {
		t.Fatal(err)
	}
	at := time.UnixMicro(1_700_000_000_000_000)
	for i := 0; i < 2; i++ {
		if _, err := w.Append(at, 61, payload); err != nil {
			t.Fatal(err)
		}
	}
	if st := w.Status(); st.Segments != 1 || st.Rotations != 0 {
		t.Fatalf("exact fit rotated early: %+v", st)
	}
	// One byte over: must rotate into a second segment.
	if _, err := w.Append(at, 61, payload); err != nil {
		t.Fatal(err)
	}
	st := w.Status()
	if st.Segments != 2 || st.Rotations != 1 {
		t.Fatalf("overflow did not rotate: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, res := readAll(t, dir)
	if res.Damage != nil || len(got) != 3 || res.Segments != 2 {
		t.Fatalf("after rotation: %d records over %d segments (damage %v)", len(got), res.Segments, res.Damage)
	}
}

// TestOversizedRecordRotates covers the other rotation trigger path: a
// record larger than the remaining room in a non-empty segment.
func TestOversizedRecordRotates(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, WithFsync(FsyncNever), WithSegmentMaxBytes(4096))
	if err != nil {
		t.Fatal(err)
	}
	at := time.Now()
	if _, err := w.Append(at, 61, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	// Larger than the whole cap: allowed (a segment may hold a single
	// oversized record), but it must go into its own fresh segment.
	if _, err := w.Append(at, 61, make([]byte, 8000)); err != nil {
		t.Fatal(err)
	}
	if st := w.Status(); st.Segments != 2 {
		t.Fatalf("oversized record did not rotate: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got, res := readAll(t, dir); res.Damage != nil || len(got) != 2 {
		t.Fatalf("read back %d records (damage %v), want 2", len(got), res.Damage)
	}
}

func TestRetentionMaxSegments(t *testing.T) {
	payload := make([]byte, 100)
	recLen := encodedLen(payload)
	dir := t.TempDir()
	w, err := Open(dir,
		WithFsync(FsyncNever),
		WithSegmentMaxBytes(int64(segHeaderLen)+recLen), // one record per segment
		WithRetention(Retention{MaxSegments: 3}),
	)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 10, 100)
	st := w.Status()
	if st.Segments > 3 {
		t.Fatalf("retention kept %d segments, cap 3", st.Segments)
	}
	if st.Deleted == 0 {
		t.Fatal("retention deleted nothing")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The survivors must still read back cleanly, newest records last.
	got, res := readAll(t, dir)
	if res.Damage != nil {
		t.Fatalf("damage after retention: %s", res.Damage)
	}
	if len(got) == 0 || got[len(got)-1].Seq != 10 {
		t.Fatalf("tail record seq = %v, want 10", got)
	}
}

func TestRetentionMaxBytes(t *testing.T) {
	payload := make([]byte, 200)
	recLen := encodedLen(payload)
	segBytes := int64(segHeaderLen) + 2*recLen
	dir := t.TempDir()
	w, err := Open(dir,
		WithFsync(FsyncNever),
		WithSegmentMaxBytes(segBytes),
		WithRetention(Retention{MaxBytes: 3 * segBytes}),
	)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 20, 200)
	if st := w.Status(); st.Bytes > 3*segBytes {
		t.Fatalf("retention kept %d bytes, cap %d", st.Bytes, 3*segBytes)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRetentionMaxAge(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	payload := make([]byte, 100)
	recLen := encodedLen(payload)
	dir := t.TempDir()
	w, err := Open(dir,
		WithFsync(FsyncNever),
		WithSegmentMaxBytes(int64(segHeaderLen)+recLen),
		WithRetention(Retention{MaxAge: time.Hour}),
		withNow(clock),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(now, 61, payload); err != nil {
		t.Fatal(err)
	}
	// Jump the clock: the next two appends rotate twice, and the first
	// rotation's sealed segment is now ancient.
	now = now.Add(2 * time.Hour)
	if _, err := w.Append(now, 61, payload); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Hour)
	if _, err := w.Append(now, 61, payload); err != nil {
		t.Fatal(err)
	}
	st := w.Status()
	if st.Deleted == 0 {
		t.Fatalf("age retention deleted nothing: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentMaxAgeRotates(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	dir := t.TempDir()
	w, err := Open(dir, WithFsync(FsyncNever), WithSegmentMaxAge(time.Minute), withNow(clock))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(now, 61, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if _, err := w.Append(now, 61, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if st := w.Status(); st.Rotations != 1 {
		t.Fatalf("age rotation did not fire: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"always", []Option{WithFsync(FsyncAlways)}},
		{"interval", []Option{WithFsync(FsyncInterval), WithFsyncInterval(time.Millisecond)}},
		{"never", []Option{WithFsync(FsyncNever)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(dir, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, w, 10, 50)
			if tc.name == "interval" {
				// Give the background flusher a tick.
				time.Sleep(20 * time.Millisecond)
				if w.Status().Fsyncs == 0 {
					t.Fatal("interval policy never fsynced")
				}
			}
			if tc.name == "always" {
				if got := w.Status().Fsyncs; got < 10 {
					t.Fatalf("always policy fsynced %d times, want >= 10", got)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if got, res := readAll(t, dir); res.Damage != nil || len(got) != 10 {
				t.Fatalf("read %d records (damage %v)", len(got), res.Damage)
			}
		})
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	w, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(time.Now(), 61, nil); err == nil {
		t.Fatal("append after close succeeded")
	}
	// Close is idempotent.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		p    FsyncPolicy
		d    time.Duration
		fail bool
	}{
		{in: "always", p: FsyncAlways},
		{in: "never", p: FsyncNever},
		{in: "interval", p: FsyncInterval},
		{in: "", p: FsyncInterval},
		{in: "interval=250ms", p: FsyncInterval, d: 250 * time.Millisecond},
		{in: "interval=-1s", fail: true},
		{in: "sometimes", fail: true},
	} {
		p, d, err := ParseFsyncPolicy(tc.in)
		if tc.fail {
			if err == nil {
				t.Errorf("ParseFsyncPolicy(%q): no error", tc.in)
			}
			continue
		}
		if err != nil || p != tc.p || d != tc.d {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v, %v; want %v, %v", tc.in, p, d, err, tc.p, tc.d)
		}
	}
}

func TestParseRetention(t *testing.T) {
	r, err := ParseRetention("segments=4,bytes=64MiB,age=24h")
	if err != nil {
		t.Fatal(err)
	}
	want := Retention{MaxSegments: 4, MaxBytes: 64 << 20, MaxAge: 24 * time.Hour}
	if r != want {
		t.Fatalf("got %+v, want %+v", r, want)
	}
	if r, err = ParseRetention(""); err != nil || r != (Retention{}) {
		t.Fatalf("empty spec: %+v, %v", r, err)
	}
	for _, bad := range []string{"segments=0", "bytes=x", "age=never", "turtles=3", "oops"} {
		if _, err := ParseRetention(bad); err == nil {
			t.Errorf("ParseRetention(%q): no error", bad)
		}
	}
}

func TestObsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	w, err := Open(dir, WithFsync(FsyncAlways), WithObs(reg))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 4, 64)
	snap := reg.Snapshot()
	if got := snap["dwatch_wal_appends_total"]; got != 4 {
		t.Fatalf("appends metric = %v, want 4", got)
	}
	if got := snap["dwatch_wal_fsyncs_total"]; got < 4 {
		t.Fatalf("fsyncs metric = %v, want >= 4", got)
	}
	if got := snap["dwatch_wal_segments"]; got != 1 {
		t.Fatalf("segments gauge = %v, want 1", got)
	}
	if got := snap["dwatch_wal_append_seconds_count"]; got != 4 {
		t.Fatalf("append histogram count = %v, want 4", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConvertLegacy(t *testing.T) {
	// Write a legacy DWRL stream with the deprecated RecordWriter...
	var legacy bytes.Buffer
	rw := llrp.NewRecordWriter(&legacy)
	base := time.UnixMicro(1_650_000_000_000_000)
	msgs := []llrp.Message{
		{Type: llrp.MsgROAccessReport, Payload: []byte("report-1")},
		{Type: llrp.MsgKeepalive, Payload: nil},
		{Type: llrp.MsgROAccessReport, Payload: []byte("report-2")},
	}
	for i, m := range msgs {
		if err := rw.Record(base.Add(time.Duration(i)*time.Second), m); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}

	// ...convert it, and expect the same messages out of the WAL.
	dir := t.TempDir()
	w, err := Open(dir, WithFsync(FsyncNever))
	if err != nil {
		t.Fatal(err)
	}
	n, err := ConvertLegacy(&legacy, w)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(msgs) {
		t.Fatalf("converted %d records, want %d", n, len(msgs))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, res := readAll(t, dir)
	if res.Damage != nil || len(got) != len(msgs) {
		t.Fatalf("read %d records (damage %v)", len(got), res.Damage)
	}
	for i, m := range msgs {
		if got[i].Type != m.Type || !bytes.Equal(got[i].Payload, m.Payload) {
			t.Fatalf("record %d: got type=%d payload=%q, want type=%d payload=%q",
				i, got[i].Type, got[i].Payload, m.Type, m.Payload)
		}
		if !got[i].At.Equal(base.Add(time.Duration(i) * time.Second)) {
			t.Fatalf("record %d timestamp not preserved: %v", i, got[i].At)
		}
	}
}

// corruptAt flips one byte in the named segment at the given offset.
func corruptAt(t *testing.T, dir, seg string, off int64) {
	t.Helper()
	path := filepath.Join(dir, seg)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// segmentFiles lists the on-disk segments, oldest first.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	return segs
}

// readerDrain pulls every record through the streaming Reader (the
// Scan path is exercised elsewhere).
func readerDrain(t *testing.T, dir string) (*Reader, []Record) {
	t.Helper()
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return r, recs
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
}

// TestRecordEncodingGolden pins the byte layout so format drift cannot
// pass silently: a change here is a version bump, not a refactor.
func TestRecordEncodingGolden(t *testing.T) {
	buf := appendRecord(nil, 7, time.UnixMicro(0x0102030405060708), 61, []byte{0xAA, 0xBB})
	if len(buf) != recHeaderLen+recFixedLen+2 {
		t.Fatalf("encoded length %d", len(buf))
	}
	if got := binary.BigEndian.Uint32(buf[0:4]); got != recFixedLen+2 {
		t.Fatalf("length field %d", got)
	}
	body := buf[recHeaderLen:]
	if got := binary.BigEndian.Uint64(body[0:8]); got != 7 {
		t.Fatalf("seq field %d", got)
	}
	if got := binary.BigEndian.Uint64(body[8:16]); got != 0x0102030405060708 {
		t.Fatalf("timestamp field %x", got)
	}
	if got := binary.BigEndian.Uint16(body[16:18]); got != 61 {
		t.Fatalf("type field %d", got)
	}
	if !bytes.Equal(body[18:], []byte{0xAA, 0xBB}) {
		t.Fatalf("payload %x", body[18:])
	}
}

// TestConvertLegacyDir batch-converts a corpus of legacy fixtures into
// per-stem WAL directories — the fleet-shaped layout dwatch-replay
// -convert produces when -in is a directory.
func TestConvertLegacyDir(t *testing.T) {
	src := t.TempDir()
	base := time.UnixMicro(1_650_000_000_000_000)
	write := func(name string, payloads ...string) {
		f, err := os.Create(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		rw := llrp.NewRecordWriter(f)
		for i, p := range payloads {
			m := llrp.Message{Type: llrp.MsgROAccessReport, Payload: []byte(p)}
			if err := rw.Record(base.Add(time.Duration(i)*time.Second), m); err != nil {
				t.Fatal(err)
			}
		}
		if err := rw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write("site-a.dwrl", "a1", "a2", "a3")
	write("site-b.dwrl", "b1")
	if err := os.WriteFile(filepath.Join(src, "notes.txt"), []byte("ignored"), 0o644); err != nil {
		t.Fatal(err)
	}

	dst := t.TempDir()
	counts, err := ConvertLegacyDir(src, dst, WithFsync(FsyncNever))
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 2 || counts["site-a"] != 3 || counts["site-b"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	for stem, want := range map[string][]string{
		"site-a": {"a1", "a2", "a3"},
		"site-b": {"b1"},
	} {
		recs, res := readAll(t, filepath.Join(dst, stem))
		if res.Damage != nil || len(recs) != len(want) {
			t.Fatalf("%s: read %d records (damage %v)", stem, len(recs), res.Damage)
		}
		for i, p := range want {
			if string(recs[i].Payload) != p {
				t.Fatalf("%s record %d = %q, want %q", stem, i, recs[i].Payload, p)
			}
			if !recs[i].At.Equal(base.Add(time.Duration(i) * time.Second)) {
				t.Fatalf("%s record %d timestamp not preserved", stem, i)
			}
		}
	}

	// An empty corpus is an explicit error, not a silent no-op.
	if _, err := ConvertLegacyDir(t.TempDir(), t.TempDir()); err == nil {
		t.Fatal("empty corpus converted without error")
	}
}
