package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Segment format. Each segment is one append-only file:
//
//	header:  magic "DWAL" | version u8                      (5 bytes)
//	records: len u32 | crc u32 | body                       (8 + len bytes)
//	body:    seq u64 | unix-micro i64 | msg type u16 | payload
//
// All integers are big-endian. len counts the body only (18 bytes of
// fixed fields plus the payload); crc is CRC-32C (Castagnoli) over the
// body. seq is assigned by the WAL and strictly increases across the
// whole log, which is how the recovery scanner distinguishes stale
// bytes from valid continuation after a rotation or truncation.
//
// The length/CRC pair in front of every record is what makes recovery
// torn-tail tolerant: a crash mid-write leaves either a short header, a
// short body, or a body whose CRC does not match — all three scan as a
// clean end-of-log at the last good record instead of an error.
const (
	segMagic   = "DWAL"
	segVersion = 1
	// segHeaderLen is the fixed segment file header.
	segHeaderLen = 5
	// recHeaderLen prefixes every record: len u32 + crc u32.
	recHeaderLen = 8
	// recFixedLen is the fixed part of a record body.
	recFixedLen = 8 + 8 + 2
	// MaxPayload bounds one record's payload — matches
	// llrp.MaxMessageLen so any accepted LLRP message fits.
	MaxPayload = 1 << 20
	// segSuffix names segment files: <first-seq hex16>.wal.
	segSuffix = ".wal"
)

// castagnoli is the CRC-32C table (the polynomial with hardware
// support on amd64/arm64, the conventional WAL checksum).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadSegment is returned when a file carries the .wal suffix but
// not the segment magic/version — a foreign file, not a torn one, so
// it is never silently truncated.
var ErrBadSegment = errors.New("wal: not a WAL segment")

// Record is one durably logged entry: a timestamped message with the
// WAL-assigned sequence number.
type Record struct {
	// Seq is the log-wide monotonic sequence number (1-based).
	Seq uint64
	// At is the capture timestamp (microsecond precision survives the
	// round trip); replay paces on the inter-record gaps.
	At time.Time
	// Type is the LLRP message type of the payload.
	Type uint16
	// Payload is the raw message payload.
	Payload []byte
}

// encodedLen is the on-disk size of a record with the given payload.
func encodedLen(payload []byte) int64 {
	return int64(recHeaderLen + recFixedLen + len(payload))
}

// appendRecord encodes one record onto buf and returns the extended
// slice — the single-allocation (amortized) append hot path.
func appendRecord(buf []byte, seq uint64, at time.Time, typ uint16, payload []byte) []byte {
	bodyLen := recFixedLen + len(payload)
	need := recHeaderLen + bodyLen
	if cap(buf)-len(buf) < need {
		grown := make([]byte, len(buf), len(buf)+need)
		copy(grown, buf)
		buf = grown
	}
	base := len(buf)
	buf = buf[:base+need]
	body := buf[base+recHeaderLen:]
	binary.BigEndian.PutUint64(body[0:8], seq)
	binary.BigEndian.PutUint64(body[8:16], uint64(at.UnixMicro()))
	binary.BigEndian.PutUint16(body[16:18], typ)
	copy(body[recFixedLen:], payload)
	binary.BigEndian.PutUint32(buf[base:base+4], uint32(bodyLen))
	binary.BigEndian.PutUint32(buf[base+4:base+8], crc32.Checksum(body, castagnoli))
	return buf
}

// segmentName renders the file name for a segment created at seq.
func segmentName(seq uint64) string {
	return fmt.Sprintf("%016x%s", seq, segSuffix)
}

// listSegments returns the segment file names in dir in log order
// (names embed the creation-time sequence number, so lexicographic is
// chronological).
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hexPart := strings.TrimSuffix(name, segSuffix)
		if len(hexPart) != 16 || !isHex(hexPart) {
			continue
		}
		segs = append(segs, name)
	}
	sort.Strings(segs)
	return segs, nil
}

func isHex(s string) bool {
	for _, r := range s {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// Damage pinpoints where a scan stopped before the end of the data:
// the segment, the byte offset of the first unreadable record, and
// why. A torn tail after a crash and a flipped bit mid-segment both
// surface here; recovery decides what to do with it (Open truncates a
// damaged final segment, OpenReader stops cleanly and reports).
type Damage struct {
	Segment string `json:"segment"`
	Offset  int64  `json:"offset"`
	Reason  string `json:"reason"`
}

func (d *Damage) String() string {
	return fmt.Sprintf("%s at offset %d: %s", d.Segment, d.Offset, d.Reason)
}

// segmentScanner iterates one segment's records, tolerating a torn or
// corrupt tail: next returns done=true at the first byte it cannot
// validate, and damage() reports whether that end was clean EOF or
// damage (and where).
type segmentScanner struct {
	name    string
	r       *bufio.Reader
	off     int64 // offset just past the last good record
	records int
	prevSeq uint64 // last accepted seq (0 = none yet)
	dmg     *Damage

	hdr  [recHeaderLen]byte
	body []byte
}

// newSegmentScanner validates the segment header. A completely empty
// file is treated as damage at offset 0 (a crash between create and
// header write), not an error; a wrong magic or version is
// ErrBadSegment.
func newSegmentScanner(name string, r io.Reader, prevSeq uint64) (*segmentScanner, error) {
	s := &segmentScanner{name: name, r: bufio.NewReaderSize(r, 64<<10), prevSeq: prevSeq}
	var hdr [segHeaderLen]byte
	n, err := io.ReadFull(s.r, hdr[:])
	if err != nil {
		if n == 0 && errors.Is(err, io.EOF) {
			s.dmg = &Damage{Segment: name, Offset: 0, Reason: "empty segment (no header)"}
			return s, nil
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			s.dmg = &Damage{Segment: name, Offset: 0, Reason: "torn segment header"}
			return s, nil
		}
		return nil, err
	}
	if string(hdr[:4]) != segMagic {
		return nil, fmt.Errorf("%w: %s: bad magic %q", ErrBadSegment, name, hdr[:4])
	}
	if hdr[4] != segVersion {
		return nil, fmt.Errorf("%w: %s: version %d (want %d)", ErrBadSegment, name, hdr[4], segVersion)
	}
	s.off = segHeaderLen
	return s, nil
}

// next returns the next valid record. done=true means the scan is
// over — either clean EOF or damage; check damage(). The returned
// record's Payload is a fresh copy, safe to retain.
func (s *segmentScanner) next() (rec Record, done bool, err error) {
	if s.dmg != nil {
		return Record{}, true, nil
	}
	n, rerr := io.ReadFull(s.r, s.hdr[:])
	if rerr != nil {
		if n == 0 && errors.Is(rerr, io.EOF) {
			return Record{}, true, nil // clean end
		}
		if errors.Is(rerr, io.EOF) || errors.Is(rerr, io.ErrUnexpectedEOF) {
			s.fail("torn record header")
			return Record{}, true, nil
		}
		return Record{}, true, rerr
	}
	bodyLen := binary.BigEndian.Uint32(s.hdr[0:4])
	if bodyLen < recFixedLen || bodyLen > recFixedLen+MaxPayload {
		s.fail(fmt.Sprintf("bad record length %d", bodyLen))
		return Record{}, true, nil
	}
	if cap(s.body) < int(bodyLen) {
		s.body = make([]byte, bodyLen)
	}
	s.body = s.body[:bodyLen]
	if _, rerr := io.ReadFull(s.r, s.body); rerr != nil {
		if errors.Is(rerr, io.EOF) || errors.Is(rerr, io.ErrUnexpectedEOF) {
			s.fail("torn record body")
			return Record{}, true, nil
		}
		return Record{}, true, rerr
	}
	if got, want := crc32.Checksum(s.body, castagnoli), binary.BigEndian.Uint32(s.hdr[4:8]); got != want {
		s.fail(fmt.Sprintf("crc mismatch (got %08x want %08x)", got, want))
		return Record{}, true, nil
	}
	seq := binary.BigEndian.Uint64(s.body[0:8])
	if seq <= s.prevSeq {
		s.fail(fmt.Sprintf("sequence regression (%d after %d)", seq, s.prevSeq))
		return Record{}, true, nil
	}
	rec = Record{
		Seq:     seq,
		At:      time.UnixMicro(int64(binary.BigEndian.Uint64(s.body[8:16]))),
		Type:    binary.BigEndian.Uint16(s.body[16:18]),
		Payload: append([]byte(nil), s.body[recFixedLen:]...),
	}
	s.prevSeq = seq
	s.off += int64(recHeaderLen) + int64(bodyLen)
	s.records++
	return rec, false, nil
}

func (s *segmentScanner) fail(reason string) {
	s.dmg = &Damage{Segment: s.name, Offset: s.off, Reason: reason}
}

// damage reports why the scan ended early (nil = clean end).
func (s *segmentScanner) damage() *Damage { return s.dmg }

// Reader streams every valid record in a WAL directory in log order,
// stopping cleanly at the first record it cannot validate (torn tail
// after a crash, or real corruption). After Next returns io.EOF,
// Records counts what was read and Damage is non-nil when the stop was
// early. Reading a directory that is concurrently being appended to is
// safe: the scanner simply sees a prefix of the log.
type Reader struct {
	dir     string
	segs    []string
	idx     int
	f       *os.File
	sc      *segmentScanner
	prevSeq uint64
	records int
	dmg     *Damage
}

// OpenReader opens a WAL directory for sequential reading. A missing
// or empty directory yields a reader that is immediately at EOF.
func OpenReader(dir string) (*Reader, error) {
	segs, err := listSegments(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return &Reader{dir: dir}, nil
		}
		return nil, err
	}
	return &Reader{dir: dir, segs: segs}, nil
}

// Next returns the next record, or io.EOF at the end of the readable
// log. Any other error is an I/O failure.
func (r *Reader) Next() (Record, error) {
	for {
		if r.sc == nil {
			if r.idx >= len(r.segs) {
				return Record{}, io.EOF
			}
			name := r.segs[r.idx]
			f, err := os.Open(filepath.Join(r.dir, name))
			if err != nil {
				return Record{}, err
			}
			sc, err := newSegmentScanner(name, f, r.prevSeq)
			if err != nil {
				f.Close()
				return Record{}, err
			}
			r.f, r.sc = f, sc
			r.idx++
		}
		rec, done, err := r.sc.next()
		if err != nil {
			return Record{}, err
		}
		if !done {
			r.prevSeq = rec.Seq
			r.records++
			return rec, nil
		}
		dmg := r.sc.damage()
		r.f.Close()
		r.f, r.sc = nil, nil
		if dmg != nil {
			// Stop at the first damaged record: anything after it (in
			// this segment or later ones) cannot be trusted to be a
			// contiguous continuation of the log.
			r.dmg = dmg
			r.idx = len(r.segs)
			return Record{}, io.EOF
		}
	}
}

// Records counts the valid records returned so far.
func (r *Reader) Records() int { return r.records }

// Damage reports why reading stopped early (nil = clean end so far).
func (r *Reader) Damage() *Damage { return r.dmg }

// Close releases the currently open segment, if any.
func (r *Reader) Close() error {
	if r.f != nil {
		err := r.f.Close()
		r.f, r.sc = nil, nil
		return err
	}
	return nil
}

// ScanResult summarizes one pass over a WAL directory.
type ScanResult struct {
	// Records is how many valid records were visited.
	Records int
	// Segments is how many segment files exist.
	Segments int
	// LastSeq is the sequence number of the final valid record (0 when
	// the log is empty).
	LastSeq uint64
	// Damage is non-nil when the scan stopped before the end of the
	// data — the count above is then "records before the damage".
	Damage *Damage
}

// Scan visits every valid record in dir in order. Damage stops the
// scan cleanly (reported in the result, not as an error); an error
// from fn or the filesystem aborts it.
func Scan(dir string, fn func(Record) error) (ScanResult, error) {
	r, err := OpenReader(dir)
	if err != nil {
		return ScanResult{}, err
	}
	defer r.Close()
	res := ScanResult{Segments: len(r.segs)}
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			res.Records = r.Records()
			res.LastSeq = r.prevSeq
			res.Damage = r.Damage()
			return res, nil
		}
		if err != nil {
			return res, err
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return res, err
			}
		}
	}
}
