package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dwatch/internal/llrp"
)

// ConvertLegacy reads a legacy llrp.RecordWriter stream ("DWRL",
// dwatchd -record before the WAL existed) and appends every message to
// w, preserving the original timestamps so a converted capture still
// paces correctly at Nx real time. Returns the number of records
// converted. The legacy fixtures thereby graduate into the segment
// format without a flag day: dwatch-replay -convert is a thin wrapper
// over this.
func ConvertLegacy(r io.Reader, w *WAL) (int, error) {
	rr := llrp.NewRecordReader(r)
	n := 0
	for {
		rec, err := rr.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("wal: legacy record %d: %w", n, err)
		}
		if _, err := w.Append(rec.At, rec.Message.Type, rec.Message.Payload); err != nil {
			return n, err
		}
		n++
	}
}

// ConvertLegacyDir batch-converts a corpus of legacy captures: every
// *.dwrl file in srcDir becomes its own WAL at dstRoot/<stem>/ (the
// per-environment layout fleet mode's -wal-dir expects, when fixtures
// are named after their environments). Files are processed in name
// order; non-.dwrl entries are ignored. Returns per-fixture record
// counts keyed by stem. The first failure aborts the batch — already
// converted fixtures are left in place, the failed fixture's partial
// WAL is not cleaned up (re-running after fixing the input resumes by
// appending, so point dstRoot at a fresh directory per attempt).
func ConvertLegacyDir(srcDir, dstRoot string, opts ...Option) (map[string]int, error) {
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, ent := range entries {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".dwrl") {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("wal: no *.dwrl legacy captures in %s", srcDir)
	}
	out := make(map[string]int, len(names))
	for _, name := range names {
		stem := strings.TrimSuffix(name, ".dwrl")
		n, err := convertOne(filepath.Join(srcDir, name), filepath.Join(dstRoot, stem), opts...)
		if err != nil {
			return out, fmt.Errorf("wal: convert %s: %w", name, err)
		}
		out[stem] = n
	}
	return out, nil
}

func convertOne(src, dst string, opts ...Option) (int, error) {
	f, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	w, err := Open(dst, opts...)
	if err != nil {
		return 0, err
	}
	n, err := ConvertLegacy(f, w)
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	return n, err
}
