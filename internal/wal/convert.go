package wal

import (
	"errors"
	"fmt"
	"io"

	"dwatch/internal/llrp"
)

// ConvertLegacy reads a legacy llrp.RecordWriter stream ("DWRL",
// dwatchd -record before the WAL existed) and appends every message to
// w, preserving the original timestamps so a converted capture still
// paces correctly at Nx real time. Returns the number of records
// converted. The legacy fixtures thereby graduate into the segment
// format without a flag day: dwatch-replay -convert is a thin wrapper
// over this.
func ConvertLegacy(r io.Reader, w *WAL) (int, error) {
	rr := llrp.NewRecordReader(r)
	n := 0
	for {
		rec, err := rr.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("wal: legacy record %d: %w", n, err)
		}
		if _, err := w.Append(rec.At, rec.Message.Type, rec.Message.Payload); err != nil {
			return n, err
		}
		n++
	}
}
