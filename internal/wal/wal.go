// Package wal is the durable ingest log underneath the D-Watch
// daemons: a segmented, length-prefixed, CRC-checked write-ahead log
// for LLRP reports. Every accepted report is appended before dispatch
// into the pipeline, so a crash loses nothing the OS had accepted, and
// yesterday's traffic can be replayed at Nx real time against a new
// eigensolver or fusion config (internal/replay, cmd/dwatch-replay) —
// the recorded-corpus evaluation loop the paper's authors ran against
// logged LLRP traffic.
//
// Design points, in order:
//
//   - Torn-tail tolerance: every record is framed len|crc32c|body, so
//     recovery truncates at the first byte it cannot validate instead
//     of failing. A kill -9 mid-append costs at most the record being
//     written (and with fsync=never/interval, what the OS had not yet
//     flushed on a machine crash).
//   - One write syscall per append: records are encoded into a reused
//     buffer and written whole. There is no user-space buffering, so a
//     process crash (as opposed to a machine crash) loses nothing
//     regardless of fsync policy.
//   - Segments: the log rotates by size (and optionally age) into
//     16-hex-digit, sequence-named files, so retention is file
//     deletion and replay can start anywhere.
//   - Explicit durability policy: fsync always (every append),
//     interval (a background flusher), or never (page cache only).
package wal

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"dwatch/internal/obs"
)

// FsyncPolicy selects when appends are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncInterval syncs on a background ticker (default 1s): bounded
	// loss on machine crash, near-zero append overhead. The default.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs after every append: zero loss, highest cost.
	FsyncAlways
	// FsyncNever leaves flushing to the OS: fastest, loses whatever the
	// page cache held on a machine crash (a process crash still loses
	// nothing — appends are unbuffered writes).
	FsyncNever
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy parses "always", "never", "interval", or
// "interval=DUR" (e.g. "interval=250ms"). The returned duration is
// zero unless the interval form carried one.
func ParseFsyncPolicy(s string) (FsyncPolicy, time.Duration, error) {
	switch s {
	case "always":
		return FsyncAlways, 0, nil
	case "never":
		return FsyncNever, 0, nil
	case "", "interval":
		return FsyncInterval, 0, nil
	}
	if rest, ok := strings.CutPrefix(s, "interval="); ok {
		d, err := time.ParseDuration(rest)
		if err != nil || d <= 0 {
			return 0, 0, fmt.Errorf("wal: bad fsync interval %q", rest)
		}
		return FsyncInterval, d, nil
	}
	return 0, 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval[=DUR], or never)", s)
}

// Retention bounds how much closed history the log keeps. Zero fields
// mean unlimited; the active segment is never deleted.
type Retention struct {
	// MaxSegments caps the total segment count.
	MaxSegments int
	// MaxBytes caps the total on-disk size.
	MaxBytes int64
	// MaxAge deletes closed segments whose last write is older.
	MaxAge time.Duration
}

// ParseRetention parses a comma-separated retention spec:
// "segments=16,bytes=2GiB,age=24h". Empty or "none" means unlimited.
func ParseRetention(s string) (Retention, error) {
	var r Retention
	if s == "" || s == "none" {
		return r, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return r, fmt.Errorf("wal: bad retention entry %q (want key=value)", part)
		}
		switch k {
		case "segments":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return r, fmt.Errorf("wal: bad retention segments %q", v)
			}
			r.MaxSegments = n
		case "bytes":
			n, err := ParseBytes(v)
			if err != nil {
				return r, err
			}
			r.MaxBytes = n
		case "age":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return r, fmt.Errorf("wal: bad retention age %q", v)
			}
			r.MaxAge = d
		default:
			return r, fmt.Errorf("wal: unknown retention key %q (want segments, bytes, or age)", k)
		}
	}
	return r, nil
}

// ParseBytes parses a byte count with an optional KB/MB/GB or
// KiB/MiB/GiB suffix (both binary, case-insensitive): "64MiB" →
// 67108864.
func ParseBytes(s string) (int64, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	for _, suf := range []struct {
		s string
		m int64
	}{{"gib", 1 << 30}, {"gb", 1 << 30}, {"mib", 1 << 20}, {"mb", 1 << 20}, {"kib", 1 << 10}, {"kb", 1 << 10}, {"b", 1}} {
		if strings.HasSuffix(t, suf.s) {
			t = strings.TrimSuffix(t, suf.s)
			mult = suf.m
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("wal: bad byte size %q", s)
	}
	return n * mult, nil
}

// options collects the Open knobs.
type options struct {
	fsync         FsyncPolicy
	fsyncInterval time.Duration
	segMaxBytes   int64
	segMaxAge     time.Duration
	retention     Retention
	reg           *obs.Registry
	logger        *slog.Logger
	now           func() time.Time
}

// Option configures Open.
type Option func(*options)

// WithFsync selects the durability policy.
func WithFsync(p FsyncPolicy) Option { return func(o *options) { o.fsync = p } }

// WithFsyncInterval sets the background sync cadence for
// FsyncInterval (0 = 1s).
func WithFsyncInterval(d time.Duration) Option { return func(o *options) { o.fsyncInterval = d } }

// WithSegmentMaxBytes rotates segments at this size (0 = 64 MiB).
func WithSegmentMaxBytes(n int64) Option { return func(o *options) { o.segMaxBytes = n } }

// WithSegmentMaxAge rotates the active segment once it has been open
// this long, so retention-by-age has boundaries to delete at even
// under a trickle of traffic (0 = size-only rotation).
func WithSegmentMaxAge(d time.Duration) Option { return func(o *options) { o.segMaxAge = d } }

// WithRetention bounds the kept history.
func WithRetention(r Retention) Option { return func(o *options) { o.retention = r } }

// WithObs attaches the log to a metrics registry (dwatch_wal_*
// families). Nil disables instrumentation.
func WithObs(reg *obs.Registry) Option { return func(o *options) { o.reg = reg } }

// WithLogger attaches a structured logger for recovery, rotation, and
// retention events.
func WithLogger(l *slog.Logger) Option { return func(o *options) { o.logger = l } }

// withNow is the test seam for rotation-by-age and retention-by-age.
func withNow(now func() time.Time) Option { return func(o *options) { o.now = now } }

// segInfo tracks one closed segment for retention accounting.
type segInfo struct {
	name  string
	bytes int64
	// mtime is the segment's last write, the retention-by-age clock.
	mtime time.Time
}

// WAL is an open write-ahead log. All methods are safe for concurrent
// use.
type WAL struct {
	dir  string
	opts options

	mu         sync.Mutex
	f          *os.File
	active     string // active segment file name
	activeSize int64
	opened     time.Time // active segment open time (age rotation)
	closed     []segInfo // closed segments, oldest first
	nextSeq    uint64
	buf        []byte
	isClosed   bool

	// Recovery findings, fixed at Open.
	recovered      int
	truncatedBytes int64
	damage         *Damage

	// Counters mirrored into Status and (when attached) obs.
	appended   uint64
	appendedB  uint64
	syncs      uint64
	rotations  uint64
	deleted    uint64
	lastAppend time.Time

	stopSync chan struct{}
	syncWG   sync.WaitGroup

	ins *instruments
}

// Open opens (creating if needed) the WAL in dir and recovers it: all
// existing segments are scanned, a torn or corrupt tail in the final
// segment is truncated at the last valid record, and appending resumes
// with the next sequence number. Damage in a non-final segment is an
// error — that is disk rot, not a crash artifact, and silently
// dropping the segments after it would lose good data.
func Open(dir string, opts ...Option) (*WAL, error) {
	o := options{
		fsync:         FsyncInterval,
		fsyncInterval: time.Second,
		segMaxBytes:   64 << 20,
		now:           time.Now,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.fsyncInterval <= 0 {
		o.fsyncInterval = time.Second
	}
	if o.segMaxBytes < segHeaderLen+recHeaderLen+recFixedLen {
		return nil, fmt.Errorf("wal: segment max bytes %d too small", o.segMaxBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, opts: o, stopSync: make(chan struct{})}

	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	var lastSeq uint64
	for i, name := range segs {
		path := filepath.Join(dir, name)
		res, size, err := w.scanSegmentFile(path, name, lastSeq)
		if err != nil {
			return nil, err
		}
		w.recovered += res.records
		if res.records > 0 {
			lastSeq = res.lastSeq
		}
		if res.dmg != nil {
			if i != len(segs)-1 {
				return nil, fmt.Errorf("wal: segment %s damaged mid-log (%s); refusing to open — repair or remove it and every later segment", name, res.dmg)
			}
			// Torn tail of the final segment: truncate back to the last
			// valid record and carry on appending after it.
			if err := os.Truncate(path, res.goodOffset); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", name, err)
			}
			w.truncatedBytes += size - res.goodOffset
			w.damage = res.dmg
			size = res.goodOffset
			w.logf("wal: truncated torn tail", "segment", name, "offset", res.goodOffset, "reason", res.dmg.Reason)
		}
		st, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		w.closed = append(w.closed, segInfo{name: name, bytes: size, mtime: st.ModTime()})
	}
	w.nextSeq = lastSeq + 1

	// Resume the final segment when it still has room; otherwise start
	// a fresh one. A tail truncated all the way to (or before) its
	// header is rewritten in place.
	if n := len(w.closed); n > 0 && w.closed[n-1].bytes < o.segMaxBytes {
		last := w.closed[n-1]
		w.closed = w.closed[:n-1]
		if err := w.openActive(last.name, last.bytes); err != nil {
			return nil, err
		}
	} else if err := w.openActive(segmentName(w.nextSeq), 0); err != nil {
		return nil, err
	}

	if w.recovered > 0 || w.truncatedBytes > 0 {
		w.logf("wal: recovered", "records", w.recovered, "next_seq", w.nextSeq,
			"segments", len(w.closed)+1, "truncated_bytes", w.truncatedBytes)
	}
	w.ins = newInstruments(o.reg, w)

	if o.fsync == FsyncInterval {
		w.syncWG.Add(1)
		go w.syncLoop()
	}
	return w, nil
}

// scanResultInternal carries what Open needs from one segment scan.
type scanResultInternal struct {
	records    int
	lastSeq    uint64
	goodOffset int64
	dmg        *Damage
}

func (w *WAL) scanSegmentFile(path, name string, prevSeq uint64) (scanResultInternal, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return scanResultInternal{}, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return scanResultInternal{}, 0, err
	}
	sc, err := newSegmentScanner(name, f, prevSeq)
	if err != nil {
		return scanResultInternal{}, 0, err
	}
	for {
		rec, done, err := sc.next()
		if err != nil {
			return scanResultInternal{}, 0, err
		}
		if done {
			return scanResultInternal{
				records:    sc.records,
				lastSeq:    sc.prevSeq,
				goodOffset: sc.off,
				dmg:        sc.damage(),
			}, st.Size(), nil
		}
		_ = rec
	}
}

// openActive opens (or creates) the named segment for appending,
// writing the header when the file is new or was truncated below it.
func (w *WAL) openActive(name string, size int64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if size < segHeaderLen {
		// A brand-new segment, or a tail torn inside the header: the
		// file was truncated to `size` bytes, so O_APPEND lands the
		// missing header suffix exactly where it belongs.
		hdr := append([]byte(segMagic), segVersion)
		if _, err := f.Write(hdr[size:]); err != nil {
			f.Close()
			return err
		}
		size = segHeaderLen
	}
	w.f, w.active, w.activeSize = f, name, size
	w.opened = w.opts.now()
	return nil
}

// Append durably logs one message and returns its sequence number.
// The record is written with a single write syscall; under FsyncAlways
// it is also synced before Append returns.
func (w *WAL) Append(at time.Time, typ uint16, payload []byte) (uint64, error) {
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("wal: payload %d exceeds MaxPayload", len(payload))
	}
	start := w.opts.now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.isClosed {
		return 0, errors.New("wal: closed")
	}
	recLen := encodedLen(payload)
	if w.activeSize+recLen > w.opts.segMaxBytes && w.activeSize > segHeaderLen {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	} else if w.opts.segMaxAge > 0 && w.activeSize > segHeaderLen &&
		w.opts.now().Sub(w.opened) >= w.opts.segMaxAge {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	seq := w.nextSeq
	w.buf = appendRecord(w.buf[:0], seq, at, typ, payload)
	if _, err := w.f.Write(w.buf); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if w.opts.fsync == FsyncAlways {
		if err := w.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: fsync: %w", err)
		}
		w.syncs++
		w.ins.fsync()
	}
	w.nextSeq++
	w.activeSize += recLen
	w.appended++
	w.appendedB += uint64(recLen)
	w.lastAppend = w.opts.now()
	w.ins.append(w.opts.now().Sub(start), recLen)
	return seq, nil
}

// rotateLocked seals the active segment and opens the next one, then
// applies retention. Caller holds w.mu.
func (w *WAL) rotateLocked() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: rotate sync: %w", err)
	}
	w.syncs++
	w.ins.fsync()
	if err := w.f.Close(); err != nil {
		return err
	}
	sealed := w.active
	w.closed = append(w.closed, segInfo{name: sealed, bytes: w.activeSize, mtime: w.opts.now()})
	w.rotations++
	w.ins.rotate()
	if err := w.openActive(segmentName(w.nextSeq), 0); err != nil {
		return err
	}
	w.logf("wal: rotated segment", "sealed", sealed, "active", w.active, "closed_segments", len(w.closed))
	w.enforceRetentionLocked()
	return nil
}

// enforceRetentionLocked deletes the oldest closed segments until the
// retention bounds hold. Caller holds w.mu.
func (w *WAL) enforceRetentionLocked() {
	r := w.opts.retention
	if r.MaxSegments == 0 && r.MaxBytes == 0 && r.MaxAge == 0 {
		return
	}
	now := w.opts.now()
	for len(w.closed) > 0 {
		total := w.activeSize
		for _, s := range w.closed {
			total += s.bytes
		}
		oldest := w.closed[0]
		drop := (r.MaxSegments > 0 && len(w.closed)+1 > r.MaxSegments) ||
			(r.MaxBytes > 0 && total > r.MaxBytes) ||
			(r.MaxAge > 0 && now.Sub(oldest.mtime) > r.MaxAge)
		if !drop {
			return
		}
		if err := os.Remove(filepath.Join(w.dir, oldest.name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			w.logf("wal: retention delete failed", "segment", oldest.name, "error", err)
			return
		}
		w.closed = w.closed[1:]
		w.deleted++
		w.ins.retentionDelete()
		w.logf("wal: retention deleted segment", "segment", oldest.name)
	}
}

// Sync forces the active segment to stable storage regardless of
// policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.isClosed {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncs++
	w.ins.fsync()
	return nil
}

// syncLoop is the FsyncInterval background flusher.
func (w *WAL) syncLoop() {
	defer w.syncWG.Done()
	t := time.NewTicker(w.opts.fsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stopSync:
			return
		case <-t.C:
			if err := w.Sync(); err != nil {
				w.logf("wal: interval fsync failed", "error", err)
			}
		}
	}
}

// Close syncs and closes the log. Further Appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.isClosed {
		w.mu.Unlock()
		return nil
	}
	w.isClosed = true
	close(w.stopSync)
	syncErr := w.f.Sync()
	if syncErr == nil {
		w.syncs++
		w.ins.fsync()
	}
	closeErr := w.f.Close()
	w.mu.Unlock()
	w.syncWG.Wait()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Dir returns the log directory.
func (w *WAL) Dir() string { return w.dir }

// Status is the point-in-time WAL state served on /api/v1/wal.
type Status struct {
	Dir           string    `json:"dir"`
	Fsync         string    `json:"fsync"`
	Segments      int       `json:"segments"`
	ActiveSegment string    `json:"active_segment"`
	Bytes         int64     `json:"bytes"`
	NextSeq       uint64    `json:"next_seq"`
	Appended      uint64    `json:"appended_records"`
	AppendedBytes uint64    `json:"appended_bytes"`
	Fsyncs        uint64    `json:"fsyncs"`
	Rotations     uint64    `json:"rotations"`
	Deleted       uint64    `json:"retention_deleted_segments"`
	Recovered     int       `json:"recovered_records"`
	Truncated     int64     `json:"truncated_tail_bytes"`
	Damage        *Damage   `json:"damage,omitempty"`
	LastAppend    time.Time `json:"last_append,omitempty"`
}

// Status snapshots the log state.
func (w *WAL) Status() Status {
	w.mu.Lock()
	defer w.mu.Unlock()
	total := w.activeSize
	for _, s := range w.closed {
		total += s.bytes
	}
	return Status{
		Dir:           w.dir,
		Fsync:         w.opts.fsync.String(),
		Segments:      len(w.closed) + 1,
		ActiveSegment: w.active,
		Bytes:         total,
		NextSeq:       w.nextSeq,
		Appended:      w.appended,
		AppendedBytes: w.appendedB,
		Fsyncs:        w.syncs,
		Rotations:     w.rotations,
		Deleted:       w.deleted,
		Recovered:     w.recovered,
		Truncated:     w.truncatedBytes,
		Damage:        w.damage,
		LastAppend:    w.lastAppend,
	}
}

func (w *WAL) logf(msg string, args ...any) {
	if w.opts.logger != nil {
		w.opts.logger.Info(msg, args...)
	}
}
