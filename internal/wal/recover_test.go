package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The recovery contract, edge case by edge case: recovery must never
// fail on anything a crash can produce, must stop cleanly (with a
// records-before count) on anything it cannot trust, and must lose
// nothing that was fully written.

func TestRecoverEmptyDir(t *testing.T) {
	dir := t.TempDir()
	got, res := readAll(t, dir)
	if len(got) != 0 || res.Damage != nil || res.Segments != 0 {
		t.Fatalf("empty dir scan: %d records, %+v", len(got), res)
	}
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := w.Status()
	if st.Recovered != 0 || st.NextSeq != 1 || st.Segments != 1 {
		t.Fatalf("fresh open status: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverMissingDirScansClean(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "never-created")
	got, res := readAll(t, dir)
	if len(got) != 0 || res.Damage != nil {
		t.Fatalf("missing dir scan: %d records, %+v", len(got), res)
	}
}

// TestRecoverMagicOnlySegment: a crash right after segment creation
// leaves a header and nothing else — a valid, empty log.
func TestRecoverMagicOnlySegment(t *testing.T) {
	dir := t.TempDir()
	name := segmentName(1)
	if err := os.WriteFile(filepath.Join(dir, name), append([]byte(segMagic), segVersion), 0o644); err != nil {
		t.Fatal(err)
	}
	got, res := readAll(t, dir)
	if len(got) != 0 || res.Damage != nil {
		t.Fatalf("magic-only scan: %d records, damage %v", len(got), res.Damage)
	}
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if st := w.Status(); st.Recovered != 0 || st.NextSeq != 1 || st.Truncated != 0 {
		t.Fatalf("magic-only open: %+v", st)
	}
	// And it must be appendable right where it left off.
	if _, err := w.Append(time.Now(), 61, []byte("x")); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverTornFinalRecord: kill -9 mid-append leaves a partial
// record at the tail. Recovery truncates it; every complete record
// survives; appends resume.
func TestRecoverTornFinalRecord(t *testing.T) {
	for _, cut := range []struct {
		name string
		keep int64 // bytes of the final record to keep
	}{
		{"torn header", 3},
		{"torn body", recHeaderLen + 5},
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(dir, WithFsync(FsyncNever))
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, w, 5, 40)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			seg := segmentFiles(t, dir)[0]
			path := filepath.Join(dir, seg)
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			recLen := encodedLen(make([]byte, 40))
			// Shear the final record down to a stub.
			if err := os.Truncate(path, st.Size()-recLen+cut.keep); err != nil {
				t.Fatal(err)
			}

			got, res := readAll(t, dir)
			if len(got) != 4 {
				t.Fatalf("scan found %d records before the tear, want 4", len(got))
			}
			if res.Damage == nil {
				t.Fatal("scan did not report the torn tail")
			}

			w2, err := Open(dir, WithFsync(FsyncNever))
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			stw := w2.Status()
			if stw.Recovered != 4 || stw.Truncated != cut.keep || stw.NextSeq != 5 {
				t.Fatalf("recovery status: %+v (want recovered=4 truncated=%d next=5)", stw, cut.keep)
			}
			if _, err := w2.Append(time.Now(), 61, bytes.Repeat([]byte{9}, 40)); err != nil {
				t.Fatal(err)
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			got, res = readAll(t, dir)
			if res.Damage != nil || len(got) != 5 {
				t.Fatalf("post-recovery log: %d records, damage %v", len(got), res.Damage)
			}
			if got[4].Seq != 5 {
				t.Fatalf("resumed record seq %d, want 5", got[4].Seq)
			}
		})
	}
}

// TestRecoverCRCCorruptMidSegment: a flipped bit in the middle of a
// segment. The scanner must stop cleanly at the corrupt record,
// reporting exactly how many records preceded it — not panic, not
// error, not resync past it.
func TestRecoverCRCCorruptMidSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, WithFsync(FsyncNever))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 10, 40)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := segmentFiles(t, dir)[0]
	recLen := encodedLen(make([]byte, 40))
	// Flip a payload byte inside record 4 (0-indexed 3).
	off := int64(segHeaderLen) + 3*recLen + recHeaderLen + recFixedLen + 10
	corruptAt(t, dir, seg, off)

	r, got := readerDrain(t, dir)
	if len(got) != 3 || r.Records() != 3 {
		t.Fatalf("reader returned %d records before corruption, want 3", len(got))
	}
	dmg := r.Damage()
	if dmg == nil {
		t.Fatal("reader did not report damage")
	}
	if dmg.Offset != int64(segHeaderLen)+3*recLen {
		t.Fatalf("damage offset %d, want %d (start of the corrupt record)", dmg.Offset, int64(segHeaderLen)+3*recLen)
	}
	if dmg.Segment != seg {
		t.Fatalf("damage segment %q, want %q", dmg.Segment, seg)
	}

	// Open treats the same damage in the *final* segment as a torn
	// tail: truncate and continue with what is provably good.
	w2, err := Open(dir, WithFsync(FsyncNever))
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	st := w2.Status()
	if st.Recovered != 3 || st.NextSeq != 4 {
		t.Fatalf("open after mid-segment corruption: %+v", st)
	}
	if st.Damage == nil || st.Truncated == 0 {
		t.Fatalf("open did not surface the truncation: %+v", st)
	}
}

// TestRecoverCorruptNonFinalSegmentRefusesOpen: damage before the
// final segment is disk rot, not a crash artifact. Open must refuse
// (silently truncating would orphan the good segments after it), while
// the scanner still stops cleanly for replay purposes.
func TestRecoverCorruptNonFinalSegmentRefusesOpen(t *testing.T) {
	payload := make([]byte, 60)
	recLen := encodedLen(payload)
	dir := t.TempDir()
	w, err := Open(dir, WithFsync(FsyncNever), WithSegmentMaxBytes(int64(segHeaderLen)+2*recLen))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 6, 60) // 3 segments, 2 records each
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segmentFiles(t, dir)
	if len(segs) != 3 {
		t.Fatalf("made %d segments, want 3", len(segs))
	}
	corruptAt(t, dir, segs[0], int64(segHeaderLen)+recHeaderLen+4)

	if _, err := Open(dir); err == nil {
		t.Fatal("open accepted a corrupt non-final segment")
	}
	got, res := readAll(t, dir)
	if len(got) != 0 || res.Damage == nil {
		t.Fatalf("scan past corruption: %d records, damage %v", len(got), res.Damage)
	}
}

// TestRecoverSequenceRegression: stale segment bytes that pass the CRC
// but repeat an old sequence number must read as damage — they are not
// a valid continuation.
func TestRecoverSequenceRegression(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, WithFsync(FsyncNever))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 3, 20)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Forge a duplicate of record seq=2 at the tail: framing and CRC
	// valid, ordering not.
	seg := segmentFiles(t, dir)[0]
	forged := appendRecord(nil, 2, time.Now(), 61, []byte("stale"))
	f, err := os.OpenFile(filepath.Join(dir, seg), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(forged); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, res := readAll(t, dir)
	if len(got) != 3 {
		t.Fatalf("accepted %d records, want 3", len(got))
	}
	if res.Damage == nil || res.Damage.Reason == "" {
		t.Fatal("sequence regression not reported as damage")
	}
	// Open truncates the forgery and resumes at seq 4.
	w2, err := Open(dir, WithFsync(FsyncNever))
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if st := w2.Status(); st.NextSeq != 4 {
		t.Fatalf("next seq %d, want 4", st.NextSeq)
	}
}

// TestRecoverEmptyFileSegment: a zero-byte segment file (crash between
// create and header write) recovers as an empty log tail.
func TestRecoverEmptyFileSegment(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	got, res := readAll(t, dir)
	if len(got) != 0 || res.Damage == nil {
		t.Fatalf("zero-byte segment: %d records, damage %v", len(got), res.Damage)
	}
	w, err := Open(dir, WithFsync(FsyncNever))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(time.Now(), 61, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if got, res := readAll(t, dir); len(got) != 1 || res.Damage != nil {
		t.Fatalf("append after empty-file recovery: %d records, damage %v", len(got), res.Damage)
	}
}

// TestRecoverBadMagicIsError: a .wal file that is not a segment is a
// hard error everywhere — never silently truncated or skipped.
func TestRecoverBadMagicIsError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), []byte("JUNKJUNKJUNK"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("open accepted a non-segment file")
	}
	if _, err := Scan(dir, nil); err == nil {
		t.Fatal("scan accepted a non-segment file")
	}
}
