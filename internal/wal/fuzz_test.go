package wal

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// FuzzSegmentScanner feeds arbitrary bytes to the recovery scanner as
// a segment file. Whatever is on disk after a crash — torn frames,
// bit rot, garbage lengths, hostile CRC-valid forgeries — the scanner
// must classify it (records, damage, or bad segment) without panicking
// and without accepting a record it cannot prove whole.
func FuzzSegmentScanner(f *testing.F) {
	// Seed the corpus with the interesting shapes: a clean segment, a
	// bare header, truncations at every boundary of a real record, and
	// near-miss corruptions.
	valid := append([]byte(segMagic), segVersion)
	valid = appendRecord(valid, 1, time.UnixMicro(1_700_000_000_000_000), 61, []byte("payload-one"))
	valid = appendRecord(valid, 2, time.UnixMicro(1_700_000_000_100_000), 61, []byte("payload-two"))

	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add(append([]byte(segMagic), segVersion))
	f.Add(append([]byte(segMagic), segVersion+1))
	f.Add([]byte("DWRLx")) // legacy magic, not a segment
	f.Add(valid)
	f.Add(valid[:len(valid)-1])              // torn body
	f.Add(valid[:segHeaderLen+recHeaderLen]) // header, then torn record header
	f.Add(valid[:segHeaderLen+3])
	huge := append([]byte(segMagic), segVersion, 0xff, 0xff, 0xff, 0xff) // absurd length
	f.Add(append(huge, 0, 0, 0, 0))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-3] ^= 0x40 // CRC mismatch in final record
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}

		var scanned []Record
		res, err := Scan(dir, func(rec Record) error {
			scanned = append(scanned, rec)
			return nil
		})
		if err != nil {
			return // bad magic/version: hard error is a valid outcome
		}
		if res.Records != len(scanned) {
			t.Fatalf("result says %d records, callback saw %d", res.Records, len(scanned))
		}
		// Every accepted record must satisfy the format invariants.
		prev := uint64(0)
		for _, rec := range scanned {
			if rec.Seq <= prev {
				t.Fatalf("non-monotonic seq %d after %d", rec.Seq, prev)
			}
			prev = rec.Seq
			if len(rec.Payload) > MaxPayload {
				t.Fatalf("oversized payload %d accepted", len(rec.Payload))
			}
		}
		if res.LastSeq != prev {
			t.Fatalf("LastSeq %d, want %d", res.LastSeq, prev)
		}
		if res.Damage != nil {
			if res.Damage.Reason == "" {
				t.Fatal("damage with empty reason")
			}
			if res.Damage.Offset < 0 || res.Damage.Offset > int64(len(data)) {
				t.Fatalf("damage offset %d outside segment of %d bytes", res.Damage.Offset, len(data))
			}
		}

		// The Reader view must agree with Scan record for record.
		r, err := OpenReader(dir)
		if err != nil {
			t.Fatalf("Scan succeeded but OpenReader failed: %v", err)
		}
		defer r.Close()
		n := 0
		for {
			rec, err := r.Next()
			if err != nil {
				break
			}
			if rec.Seq != scanned[n].Seq {
				t.Fatalf("reader record %d seq %d, scan saw %d", n, rec.Seq, scanned[n].Seq)
			}
			n++
		}
		if n != len(scanned) {
			t.Fatalf("reader yielded %d records, scan yielded %d", n, len(scanned))
		}

		// And recovery must accept whatever the scanner classified:
		// Open truncates the tail and leaves an appendable log.
		w, err := Open(dir, WithFsync(FsyncNever))
		if err != nil {
			t.Fatalf("Scan succeeded but Open failed: %v", err)
		}
		defer w.Close()
		if _, err := w.Append(time.Now(), 61, []byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		res2, err := Scan(dir, nil)
		if err != nil {
			t.Fatalf("scan after recovery: %v", err)
		}
		if res2.Records != len(scanned)+1 || res2.Damage != nil {
			t.Fatalf("after recovery+append: %d records (want %d), damage %v",
				res2.Records, len(scanned)+1, res2.Damage)
		}
	})
}
