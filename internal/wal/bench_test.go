package wal

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkWALAppend measures the append hot path under each fsync
// policy with a payload sized like a real ROAccessReport (~200 bytes of
// LLRP framing + EPC + RSSI/phase parameters). This is the number that
// bounds ingest throughput when durability is on; the always/interval
// spread is the cost of per-report fsync.
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 200)
	for i := range payload {
		payload[i] = byte(i)
	}
	for _, bc := range []struct {
		name string
		opts []Option
	}{
		{"fsync=never", []Option{WithFsync(FsyncNever)}},
		{"fsync=interval", []Option{WithFsync(FsyncInterval), WithFsyncInterval(50 * time.Millisecond)}},
		{"fsync=always", []Option{WithFsync(FsyncAlways)}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			w, err := Open(b.TempDir(), bc.opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			at := time.UnixMicro(1_700_000_000_000_000)
			b.SetBytes(encodedLen(payload))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Append(at, 61, payload); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := w.Status()
			b.ReportMetric(float64(st.Fsyncs)/float64(b.N), "fsyncs/op")
		})
	}
}

// BenchmarkWALAppendPayloadSizes pins the per-byte cost: CRC32C is
// hardware-accelerated, so append time should stay flat until the
// write syscall dominates.
func BenchmarkWALAppendPayloadSizes(b *testing.B) {
	for _, size := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			w, err := Open(b.TempDir(), WithFsync(FsyncNever))
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			payload := make([]byte, size)
			at := time.UnixMicro(1_700_000_000_000_000)
			b.SetBytes(encodedLen(payload))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Append(at, 61, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
