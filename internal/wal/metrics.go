package wal

import (
	"time"

	"dwatch/internal/obs"
	"dwatch/internal/stats"
)

// instruments mirrors the WAL's counters onto an obs.Registry. All
// methods are no-ops on a nil receiver, so the append hot path carries
// no "is observability on?" branches.
type instruments struct {
	appends       *obs.Counter
	appendedBytes *obs.Counter
	appendLatency *obs.Histogram
	fsyncs        *obs.Counter
	rotations     *obs.Counter
	deletes       *obs.Counter
	recovered     *obs.Counter
	truncated     *obs.Counter
}

// newInstruments registers the dwatch_wal_* families and seeds the
// recovery counters from what Open found. Returns nil when reg is nil.
func newInstruments(reg *obs.Registry, w *WAL) *instruments {
	if reg == nil {
		return nil
	}
	ins := &instruments{
		appends: reg.Counter("dwatch_wal_appends_total",
			"Records appended to the ingest WAL."),
		appendedBytes: reg.Counter("dwatch_wal_appended_bytes_total",
			"Bytes appended to the ingest WAL (framing included)."),
		appendLatency: reg.Histogram("dwatch_wal_append_seconds",
			"WAL append latency (encode + write, plus fsync under the always policy).",
			stats.LatencyBounds()),
		fsyncs: reg.Counter("dwatch_wal_fsyncs_total",
			"fsync calls issued by the WAL (per-append, interval, rotation, and close)."),
		rotations: reg.Counter("dwatch_wal_rotations_total",
			"WAL segment rotations."),
		deletes: reg.Counter("dwatch_wal_retention_deleted_segments_total",
			"WAL segments deleted by retention."),
		recovered: reg.Counter("dwatch_wal_recovered_records_total",
			"Records recovered from the WAL at open."),
		truncated: reg.Counter("dwatch_wal_truncated_tail_bytes_total",
			"Bytes truncated from torn WAL tails at open."),
	}
	ins.recovered.Add(uint64(w.recovered))
	ins.truncated.Add(uint64(w.truncatedBytes))
	reg.GaugeFunc("dwatch_wal_segments",
		"WAL segment files currently on disk.", func() float64 {
			return float64(w.Status().Segments)
		})
	reg.GaugeFunc("dwatch_wal_bytes",
		"Total WAL bytes currently on disk.", func() float64 {
			return float64(w.Status().Bytes)
		})
	return ins
}

func (i *instruments) append(d time.Duration, recLen int64) {
	if i == nil {
		return
	}
	i.appends.Inc()
	i.appendedBytes.Add(uint64(recLen))
	i.appendLatency.ObserveDuration(d)
}

func (i *instruments) fsync() {
	if i == nil {
		return
	}
	i.fsyncs.Inc()
}

func (i *instruments) rotate() {
	if i == nil {
		return
	}
	i.rotations.Inc()
}

func (i *instruments) retentionDelete() {
	if i == nil {
		return
	}
	i.deletes.Inc()
}
