package health

import (
	"math"
	"sync"
	"testing"
	"time"

	"dwatch/internal/obs"
	"dwatch/internal/pmusic"
)

var h0 = time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)

// spectrum builds a synthetic P-MUSIC spectrum with triangular peaks
// of the given (angleDeg, power) pairs on a 1-degree grid.
func spectrum(peaks ...[2]float64) *pmusic.Spectrum {
	n := 181
	sp := &pmusic.Spectrum{Angles: make([]float64, n), Power: make([]float64, n)}
	for i := 0; i < n; i++ {
		sp.Angles[i] = float64(i-90) * math.Pi / 180
	}
	for _, pk := range peaks {
		idx := int(pk[0]) + 90
		if idx < 1 || idx > n-2 {
			continue
		}
		sp.Power[idx] = pk[1]
		if sp.Power[idx-1] < pk[1]/2 {
			sp.Power[idx-1] = pk[1] / 2
		}
		if sp.Power[idx+1] < pk[1]/2 {
			sp.Power[idx+1] = pk[1] / 2
		}
	}
	return sp
}

func TestReadRateEWMA(t *testing.T) {
	m := New(nil, Options{})
	// 10 reads at exactly 10 Hz.
	for i := 0; i < 10; i++ {
		m.Observe("r1", "\x01\x02", nil, h0.Add(time.Duration(i)*100*time.Millisecond))
	}
	s := m.Snapshot()
	if len(s.Readers) != 1 || len(s.Readers[0].Tags) != 1 {
		t.Fatalf("snapshot shape: %+v", s)
	}
	tag := s.Readers[0].Tags[0]
	if tag.EPC != "0102" {
		t.Fatalf("epc = %q, want hex 0102", tag.EPC)
	}
	if tag.Reads != 10 {
		t.Fatalf("reads = %d", tag.Reads)
	}
	if math.Abs(tag.RateHz-10) > 0.01 {
		t.Fatalf("rate = %.3f Hz, want ~10", tag.RateHz)
	}
}

func TestPathBaselineAndDrift(t *testing.T) {
	reg := obs.NewRegistry()
	m := New(reg, Options{})
	// 30 observations of two stable paths at -20 and +40 degrees.
	for i := 0; i < 30; i++ {
		m.Observe("r1", "e", spectrum([2]float64{-20, 1.0}, [2]float64{40, 0.6}), h0.Add(time.Duration(i)*100*time.Millisecond))
	}
	s := m.Snapshot()
	paths := s.Readers[0].Tags[0].Paths
	if len(paths) != 2 {
		t.Fatalf("tracked %d paths, want 2", len(paths))
	}
	for _, p := range paths {
		if p.Drift {
			t.Fatalf("stable path flagged as drifting: %+v", p)
		}
		if math.Abs(p.Power-p.Baseline)/p.Baseline > 0.05 {
			t.Fatalf("converged path power %f vs baseline %f", p.Power, p.Baseline)
		}
	}
	if s.Readers[0].Drifting != 0 {
		t.Fatal("drifting count nonzero on stable channel")
	}

	// The -20 degree path collapses to 10% power: fast EWMA dives,
	// slow baseline holds, drift flag raises, anomaly counts once on
	// the rising edge.
	for i := 0; i < 10; i++ {
		m.Observe("r1", "e", spectrum([2]float64{-20, 0.1}, [2]float64{40, 0.6}), h0.Add(3*time.Second+time.Duration(i)*100*time.Millisecond))
	}
	s = m.Snapshot()
	var dropped *PathHealth
	for i := range s.Readers[0].Tags[0].Paths {
		p := &s.Readers[0].Tags[0].Paths[i]
		if math.Abs(p.AngleDeg-(-20)) < 3 {
			dropped = p
		}
	}
	if dropped == nil {
		t.Fatal("lost the -20 degree path")
	}
	if !dropped.Drift {
		t.Fatalf("collapsed path not flagged: %+v", dropped)
	}
	if s.Readers[0].Drifting != 1 {
		t.Fatalf("drifting = %d, want 1", s.Readers[0].Drifting)
	}
	snap := reg.Snapshot()
	if got := snap[`dwatch_rf_anomalies_total{reader="r1",kind="power_drift"}`]; got != 1 {
		t.Fatalf("power_drift anomalies = %v, want 1 (rising edge only)", got)
	}
	if got := snap[`dwatch_rf_reads_total{reader="r1",epc="65"}`]; got != 40 {
		t.Fatalf("reads metric = %v, want 40", got)
	}
}

func TestCalibrationResidualTracksAngleDeviation(t *testing.T) {
	m := New(nil, Options{})
	// Establish paths, then observe with a consistent 2-degree offset:
	// the residual EWMA should settle near 2 degrees.
	for i := 0; i < 10; i++ {
		m.Observe("r1", "e", spectrum([2]float64{0, 1.0}), h0.Add(time.Duration(i)*time.Second))
	}
	for i := 0; i < 40; i++ {
		m.Observe("r1", "e", spectrum([2]float64{2, 1.0}), h0.Add(time.Duration(10+i)*time.Second))
	}
	s := m.Snapshot()
	resDeg := s.Readers[0].CalibrationResidual * 180 / math.Pi
	if resDeg < 0.5 || resDeg > 2.5 {
		t.Fatalf("calibration residual = %.2f deg, want near 2", resDeg)
	}
}

func TestMaxPathsEvictsStalest(t *testing.T) {
	m := New(obs.NewRegistry(), Options{MaxPaths: 2})
	m.Observe("r1", "e", spectrum([2]float64{-40, 1}, [2]float64{40, 1}), h0)
	// A third path arrives much later; the path at -40 was refreshed
	// recently, +40 was not.
	m.Observe("r1", "e", spectrum([2]float64{-40, 1}), h0.Add(time.Second))
	m.Observe("r1", "e", spectrum([2]float64{0, 1}), h0.Add(2*time.Second))
	s := m.Snapshot()
	paths := s.Readers[0].Tags[0].Paths
	if len(paths) != 2 {
		t.Fatalf("tracked %d paths, want capped 2", len(paths))
	}
	for _, p := range paths {
		if math.Abs(p.AngleDeg-40) < 3 {
			t.Fatalf("stalest path (+40) survived eviction: %+v", paths)
		}
	}
}

func TestNilMonitorAndNilSpectrum(t *testing.T) {
	var m *Monitor
	m.Observe("r1", "e", nil, h0) // must not panic
	if s := m.Snapshot(); len(s.Readers) != 0 {
		t.Fatal("nil monitor has state")
	}
	m2 := New(nil, Options{})
	m2.Observe("r1", "e", nil, h0) // read counted, no paths
	s := m2.Snapshot()
	if s.Readers[0].Tags[0].Reads != 1 || len(s.Readers[0].Tags[0].Paths) != 0 {
		t.Fatalf("nil-spectrum observe: %+v", s.Readers[0].Tags[0])
	}
}

// TestConcurrentObserveAndSnapshot is the race proof for the
// assembler-writes / HTTP-reads sharing pattern.
func TestConcurrentObserveAndSnapshot(t *testing.T) {
	m := New(obs.NewRegistry(), Options{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m.Observe("r1", "e", spectrum([2]float64{float64(i%40 - 20), 1}), h0.Add(time.Duration(i)*time.Millisecond))
		}
	}()
	for i := 0; i < 50; i++ {
		m.Snapshot()
	}
	close(stop)
	wg.Wait()
}
