// Package health is the RF physical-layer health monitor: where
// internal/obs watches the pipeline's control flow and internal/session
// watches reader TCP liveness, this package watches the radio channel
// itself — the long-horizon link-quality statistics DFL systems depend
// on (cf. Kaltiokallio et al. on RSS spectral properties, Schmidhammer
// et al. on calibration drift) that the pipeline computes per snapshot
// and would otherwise throw away.
//
// For every (reader, tag) pair the Monitor maintains:
//
//   - Read-rate counters: total reads plus an EWMA reads/sec estimate
//     from inter-read intervals, so a tag whose inventory rate quietly
//     degrades (detuned, occluded, forward-link starved) is visible
//     without replaying a capture.
//   - Per-path P-MUSIC power baselines: each observed spectrum's peaks
//     are matched by angle (within pmusic.PeakMatchTol) to tracked
//     paths; each path carries a slow EWMA baseline and a fast EWMA of
//     current peak power. A fast/slow divergence beyond DriftRatio
//     flags the path as drifting — the signature of furniture moved, a
//     reader bumped, or genuine persistent blockage — and rising edges
//     count as anomalies.
//   - Calibration residual: an EWMA of the mean absolute angular
//     deviation of matched peaks from their tracked path angles, per
//     reader. Phase-calibration drift shifts every AoA estimate, so a
//     growing residual says "re-run Section 4.1 calibration" before
//     fixes silently walk away.
//
// Observations arrive from the pipeline's assembler goroutine (one
// call per applied tag spectrum); snapshots are read concurrently by
// the /api/v1/health endpoint. When a metrics registry is attached the
// same state is exported as dwatch_rf_* families.
package health

import (
	"encoding/hex"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"dwatch/internal/obs"
	"dwatch/internal/pmusic"
)

// Metric families exported when a registry is attached.
const (
	metricReads     = "dwatch_rf_reads_total"
	metricReadRate  = "dwatch_rf_read_rate_hz"
	metricPathPower = "dwatch_rf_path_power"
	metricPathBase  = "dwatch_rf_path_power_baseline"
	metricDrift     = "dwatch_rf_path_drift"
	metricAnomalies = "dwatch_rf_anomalies_total"
	metricResidual  = "dwatch_rf_calibration_residual_radians"
	metricTags      = "dwatch_rf_tags_tracked"
)

// Options tunes the monitor. The zero value is production-ready.
type Options struct {
	// RateAlpha is the EWMA weight for the read-rate estimate (0 = 0.2).
	RateAlpha float64
	// FastAlpha is the EWMA weight for current path power (0 = 0.3).
	FastAlpha float64
	// SlowAlpha is the EWMA weight for the path-power baseline
	// (0 = 0.02, ~50-observation horizon).
	SlowAlpha float64
	// DriftRatio flags a path when |fast-baseline|/baseline exceeds it
	// (0 = 0.5, the half-power change the paper's drop detector also
	// treats as significant).
	DriftRatio float64
	// PeakRatio is the minimum peak-to-max ratio for a spectrum local
	// maximum to be tracked as a path (0 = 0.1).
	PeakRatio float64
	// MaxPaths caps tracked paths per (reader, tag); the stalest path
	// is evicted for a new arrival (0 = 8).
	MaxPaths int
	// MatchTol is the angular tolerance for matching an observed peak
	// to a tracked path (0 = pmusic.PeakMatchTol).
	MatchTol float64
}

func (o Options) withDefaults() Options {
	if o.RateAlpha == 0 {
		o.RateAlpha = 0.2
	}
	if o.FastAlpha == 0 {
		o.FastAlpha = 0.3
	}
	if o.SlowAlpha == 0 {
		o.SlowAlpha = 0.02
	}
	if o.DriftRatio == 0 {
		o.DriftRatio = 0.5
	}
	if o.PeakRatio == 0 {
		o.PeakRatio = 0.1
	}
	if o.MaxPaths == 0 {
		o.MaxPaths = 8
	}
	if o.MatchTol == 0 {
		o.MatchTol = pmusic.PeakMatchTol
	}
	return o
}

// path is one tracked propagation path of a (reader, tag) pair.
type path struct {
	angle    float64 // EWMA of matched peak angle, radians
	baseline float64 // slow EWMA of peak power
	fast     float64 // fast EWMA of peak power
	lastSeen time.Time
	drift    bool

	powerG *obs.Gauge
	baseG  *obs.Gauge
	driftG *obs.Gauge
}

// tagState is the per-(reader, tag) record.
type tagState struct {
	epc      string // hex
	reads    uint64
	lastSeen time.Time
	rate     float64 // EWMA reads/sec
	paths    []*path

	readsC *obs.Counter
	rateG  *obs.Gauge
}

// readerState groups a reader's tags and its calibration residual.
type readerState struct {
	tags     map[string]*tagState
	residual float64 // EWMA |angle deviation|, radians
	resSet   bool

	residualG *obs.Gauge
}

// Monitor is the RF-health monitor. A nil *Monitor no-ops everywhere
// so the pipeline threads it unconditionally.
type Monitor struct {
	opts Options
	reg  *obs.Registry

	mu      sync.Mutex
	readers map[string]*readerState

	reads     *obs.CounterVec
	rateVec   *obs.GaugeVec
	powerVec  *obs.GaugeVec
	baseVec   *obs.GaugeVec
	driftVec  *obs.GaugeVec
	anomalies *obs.CounterVec
	resVec    *obs.GaugeVec
}

// New builds a Monitor. reg may be nil (no metric export; snapshots
// still work).
func New(reg *obs.Registry, opts Options) *Monitor {
	m := &Monitor{
		opts:    opts.withDefaults(),
		reg:     reg,
		readers: map[string]*readerState{},
	}
	if reg != nil {
		m.reads = reg.CounterVec(metricReads, "Tag reads observed per (reader, tag).", "reader", "epc")
		m.rateVec = reg.GaugeVec(metricReadRate, "EWMA tag read rate in reads/sec.", "reader", "epc")
		m.powerVec = reg.GaugeVec(metricPathPower, "Fast EWMA of per-path P-MUSIC peak power.", "reader", "epc", "path")
		m.baseVec = reg.GaugeVec(metricPathBase, "Slow EWMA baseline of per-path P-MUSIC peak power.", "reader", "epc", "path")
		m.driftVec = reg.GaugeVec(metricDrift, "1 when a path's power has drifted beyond the ratio threshold.", "reader", "epc", "path")
		m.anomalies = reg.CounterVec(metricAnomalies, "RF anomalies by kind (power_drift, new_path).", "reader", "kind")
		m.resVec = reg.GaugeVec(metricResidual, "EWMA absolute peak-angle deviation from tracked paths.", "reader")
		reg.GaugeFunc(metricTags, "Distinct (reader, tag) pairs tracked.", m.tagCount)
	}
	return m
}

func (m *Monitor) tagCount() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, r := range m.readers {
		n += len(r.tags)
	}
	return float64(n)
}

// EPCKey renders a raw EPC as the hex form used for labels and JSON
// (EPCs are arbitrary 96-bit identifiers, not printable text).
func EPCKey(epc string) string { return hex.EncodeToString([]byte(epc)) }

// Observe folds one computed tag spectrum into the monitor. reader is
// the deployment reader ID, epc the raw (unencoded) tag identity, sp
// the P-MUSIC spectrum the pipeline just computed. Nil-safe; a nil sp
// still counts the read.
func (m *Monitor) Observe(reader, epc string, sp *pmusic.Spectrum, now time.Time) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	rs := m.readers[reader]
	if rs == nil {
		rs = &readerState{tags: map[string]*tagState{}}
		if m.reg != nil {
			rs.residualG = m.resVec.With(reader)
		}
		m.readers[reader] = rs
	}
	key := EPCKey(epc)
	ts := rs.tags[key]
	if ts == nil {
		ts = &tagState{epc: key}
		if m.reg != nil {
			ts.readsC = m.reads.With(reader, key)
			ts.rateG = m.rateVec.With(reader, key)
		}
		rs.tags[key] = ts
	}

	// Read accounting: count, then fold the inter-read interval into
	// the rate EWMA (first read seeds nothing — one sample is not a
	// rate).
	ts.reads++
	ts.readsC.Inc()
	if !ts.lastSeen.IsZero() {
		if dt := now.Sub(ts.lastSeen).Seconds(); dt > 0 {
			inst := 1 / dt
			if ts.rate == 0 {
				ts.rate = inst
			} else {
				ts.rate += m.opts.RateAlpha * (inst - ts.rate)
			}
			ts.rateG.Set(ts.rate)
		}
	}
	ts.lastSeen = now

	if sp == nil {
		return
	}
	m.observePaths(reader, rs, ts, sp, now)
}

// observePaths matches the spectrum's peaks to tracked paths and
// updates the power baselines, drift flags, and calibration residual.
func (m *Monitor) observePaths(reader string, rs *readerState, ts *tagState, sp *pmusic.Spectrum, now time.Time) {
	peaks := sp.Peaks(m.opts.PeakRatio)
	if len(peaks) > m.opts.MaxPaths {
		peaks = peaks[:m.opts.MaxPaths] // strongest first
	}
	var devSum float64
	matched := 0
	for _, pk := range peaks {
		var best *path
		bestD := math.Inf(1)
		for _, p := range ts.paths {
			if d := math.Abs(p.angle - pk.Angle); d < bestD {
				best, bestD = p, d
			}
		}
		if best == nil || bestD > m.opts.MatchTol {
			// New path: track it, evicting the stalest when full.
			p := &path{angle: pk.Angle, baseline: pk.Amplitude, fast: pk.Amplitude, lastSeen: now}
			if len(ts.paths) >= m.opts.MaxPaths {
				si := 0
				for i, q := range ts.paths {
					if q.lastSeen.Before(ts.paths[si].lastSeen) {
						si = i
					}
				}
				if m.reg != nil {
					// Reuse the evicted slot's gauges so label
					// cardinality stays bounded at MaxPaths.
					p.powerG, p.baseG, p.driftG = ts.paths[si].powerG, ts.paths[si].baseG, ts.paths[si].driftG
				}
				ts.paths[si] = p
			} else {
				if m.reg != nil {
					idx := pathLabel(len(ts.paths))
					p.powerG = m.powerVec.With(reader, ts.epc, idx)
					p.baseG = m.baseVec.With(reader, ts.epc, idx)
					p.driftG = m.driftVec.With(reader, ts.epc, idx)
				}
				ts.paths = append(ts.paths, p)
			}
			p.powerG.Set(p.fast)
			p.baseG.Set(p.baseline)
			p.driftG.Set(0)
			m.anomaly(reader, "new_path")
			continue
		}
		// Matched: update EWMAs and the drift flag.
		devSum += bestD
		matched++
		// Angle adapts at the slow rate: path geometry is quasi-static,
		// and a persistent angular offset must stay visible in the
		// calibration residual instead of being absorbed.
		best.angle += m.opts.SlowAlpha * (pk.Angle - best.angle)
		best.fast += m.opts.FastAlpha * (pk.Amplitude - best.fast)
		best.baseline += m.opts.SlowAlpha * (pk.Amplitude - best.baseline)
		best.lastSeen = now
		drift := best.baseline > 0 &&
			math.Abs(best.fast-best.baseline)/best.baseline > m.opts.DriftRatio
		if drift && !best.drift {
			m.anomaly(reader, "power_drift")
		}
		best.drift = drift
		best.powerG.Set(best.fast)
		best.baseG.Set(best.baseline)
		if drift {
			best.driftG.Set(1)
		} else {
			best.driftG.Set(0)
		}
	}
	if matched > 0 {
		dev := devSum / float64(matched)
		if !rs.resSet {
			rs.residual, rs.resSet = dev, true
		} else {
			rs.residual += m.opts.RateAlpha * (dev - rs.residual)
		}
		rs.residualG.Set(rs.residual)
	}
}

func (m *Monitor) anomaly(reader, kind string) {
	if m.reg != nil {
		m.anomalies.With(reader, kind).Inc()
	}
}

// pathLabel renders a path slot index as its metric label value.
func pathLabel(i int) string { return strconv.Itoa(i) }

// PathHealth is one tracked path as /api/v1/health exposes it.
type PathHealth struct {
	AngleDeg float64   `json:"angle_deg"`
	Power    float64   `json:"power"`
	Baseline float64   `json:"baseline"`
	Drift    bool      `json:"drift"`
	LastSeen time.Time `json:"last_seen"`
}

// TagHealth is one (reader, tag) record.
type TagHealth struct {
	EPC      string       `json:"epc"` // hex
	Reads    uint64       `json:"reads"`
	RateHz   float64      `json:"rate_hz"`
	LastSeen time.Time    `json:"last_seen"`
	Paths    []PathHealth `json:"paths,omitempty"`
}

// ReaderHealth is one reader's RF state.
type ReaderHealth struct {
	ID string `json:"id"`
	// CalibrationResidual is the EWMA absolute peak-angle deviation in
	// radians; growth over time indicates phase-calibration drift.
	CalibrationResidual float64     `json:"calibration_residual_rad"`
	Drifting            int         `json:"drifting_paths"`
	Tags                []TagHealth `json:"tags"`
}

// Snapshot is the /api/v1/health body.
type Snapshot struct {
	Readers []ReaderHealth `json:"readers"`
}

// Snapshot returns a deterministic (sorted) copy of the monitor state.
func (m *Monitor) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Snapshot{Readers: make([]ReaderHealth, 0, len(m.readers))}
	for id, rs := range m.readers {
		rh := ReaderHealth{ID: id, CalibrationResidual: rs.residual}
		for _, ts := range rs.tags {
			th := TagHealth{EPC: ts.epc, Reads: ts.reads, RateHz: ts.rate, LastSeen: ts.lastSeen}
			for _, p := range ts.paths {
				if p.drift {
					rh.Drifting++
				}
				th.Paths = append(th.Paths, PathHealth{
					AngleDeg: p.angle * 180 / math.Pi,
					Power:    p.fast, Baseline: p.baseline,
					Drift: p.drift, LastSeen: p.lastSeen,
				})
			}
			sort.Slice(th.Paths, func(i, j int) bool { return th.Paths[i].AngleDeg < th.Paths[j].AngleDeg })
			rh.Tags = append(rh.Tags, th)
		}
		sort.Slice(rh.Tags, func(i, j int) bool { return rh.Tags[i].EPC < rh.Tags[j].EPC })
		out.Readers = append(out.Readers, rh)
	}
	sort.Slice(out.Readers, func(i, j int) bool { return out.Readers[i].ID < out.Readers[j].ID })
	return out
}
