package obs

import "testing"

// TestRegisterRuntime: the dwatch_go_* families collect live, nonzero
// readings from runtime/metrics.
func TestRegisterRuntime(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	s := r.Snapshot()
	if s["dwatch_go_goroutines"] < 1 {
		t.Fatalf("goroutines = %v, want >= 1", s["dwatch_go_goroutines"])
	}
	if s["dwatch_go_heap_objects_bytes"] <= 0 {
		t.Fatalf("heap bytes = %v, want > 0", s["dwatch_go_heap_objects_bytes"])
	}
	if s["dwatch_go_mem_total_bytes"] <= 0 {
		t.Fatalf("total mem = %v, want > 0", s["dwatch_go_mem_total_bytes"])
	}
	// Quantile gauges must exist (possibly 0 before the first GC).
	for _, id := range []string{
		`dwatch_go_gc_pause_seconds{quantile="0.5"}`,
		`dwatch_go_gc_pause_seconds{quantile="0.99"}`,
		`dwatch_go_sched_latency_seconds{quantile="0.5"}`,
		`dwatch_go_sched_latency_seconds{quantile="0.99"}`,
	} {
		if _, ok := s[id]; !ok {
			t.Fatalf("missing %s in snapshot", id)
		}
	}
	RegisterRuntime(nil) // nil-safe
}
