package obs

import (
	"sync"
	"time"
)

// SLO tracking: each environment can declare an ingest→fix latency
// objective ("99% of fixes within 250ms") in its deployment config,
// and the tracker turns the fix stream into the dwatch_slo_* families
// plus multi-window burn rates. Burn rate is the standard SRE measure:
// (observed error ratio over a window) / (allowed error ratio), so 1.0
// burns the error budget exactly at the sustainable pace, and a fast
// window >> 1 while the slow window is still low flags an incident
// that just started. Buckets are coarse (a minute by default) because
// the consumer is a scrape loop, not a query engine.

// SLOOptions configures one environment's latency objective.
type SLOOptions struct {
	// Target is the per-event latency objective (default 250ms).
	Target time.Duration
	// Objective is the fraction of events that must meet Target
	// (default 0.99). Values outside (0,1) are clamped.
	Objective float64
	// BucketWidth is the burn-rate accounting granularity (default
	// 1 minute).
	BucketWidth time.Duration
	// FastWindow and SlowWindow are the two burn-rate horizons
	// (defaults 5 minutes and 1 hour).
	FastWindow, SlowWindow time.Duration
	// Now overrides the clock (tests).
	Now func() time.Time
}

// sloBucket is one BucketWidth of event accounting.
type sloBucket struct {
	id         int64 // bucket sequence number (unix / width)
	total, bad uint64
}

// SLOTracker accounts one environment's fix latencies against its
// objective. A nil tracker is a no-op, so environments without an SLO
// block cost nothing. Close ends the env's series (handoff-safe: a
// removed env's SLO series must not linger on /metrics).
type SLOTracker struct {
	env       string
	target    float64 // seconds
	objective float64
	width     time.Duration
	fast      int // buckets per fast window
	slow      int // buckets per slow window
	now       func() time.Time

	reg      *Registry
	events   *Counter
	breaches *Counter

	mu      sync.Mutex
	closed  bool
	buckets []sloBucket // ring indexed by id % len
}

// NewSLOTracker registers the dwatch_slo_* series for env and returns
// the tracker. A nil registry still returns a working tracker (burn
// rates queryable) with no exposition.
func NewSLOTracker(r *Registry, env string, o SLOOptions) *SLOTracker {
	if o.Target <= 0 {
		o.Target = 250 * time.Millisecond
	}
	if o.Objective <= 0 || o.Objective >= 1 {
		o.Objective = 0.99
	}
	if o.BucketWidth <= 0 {
		o.BucketWidth = time.Minute
	}
	if o.FastWindow <= 0 {
		o.FastWindow = 5 * time.Minute
	}
	if o.SlowWindow <= 0 {
		o.SlowWindow = time.Hour
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	t := &SLOTracker{
		env:       env,
		target:    o.Target.Seconds(),
		objective: o.Objective,
		width:     o.BucketWidth,
		fast:      windowBuckets(o.FastWindow, o.BucketWidth),
		slow:      windowBuckets(o.SlowWindow, o.BucketWidth),
		now:       o.Now,
		reg:       r,
	}
	t.buckets = make([]sloBucket, t.slow+1)
	if r != nil {
		r.GaugeVec("dwatch_slo_target_seconds",
			"Per-environment ingest-to-fix latency objective.", "env").
			With(env).Set(t.target)
		r.GaugeVec("dwatch_slo_objective",
			"Fraction of fixes that must meet the latency target.", "env").
			With(env).Set(t.objective)
		t.events = r.CounterVec("dwatch_slo_events_total",
			"Fixes accounted against the environment's latency SLO.", "env").With(env)
		t.breaches = r.CounterVec("dwatch_slo_breaches_total",
			"Fixes that missed the environment's latency target.", "env").With(env)
		burn := r.GaugeVec("dwatch_slo_burn_rate",
			"Error-budget burn rate over the fast/slow window (1.0 = budget consumed exactly at the sustainable pace).",
			"env", "window")
		burn.Func(t.burnFunc(func() int { return t.fast }), env, "fast")
		burn.Func(t.burnFunc(func() int { return t.slow }), env, "slow")
	}
	return t
}

func windowBuckets(window, width time.Duration) int {
	n := int((window + width - 1) / width)
	if n < 1 {
		n = 1
	}
	return n
}

// Observe accounts one fix latency.
func (t *SLOTracker) Observe(latency time.Duration) {
	if t == nil {
		return
	}
	bad := latency.Seconds() > t.target
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	b := t.bucketLocked(t.nowBucket())
	b.total++
	if bad {
		b.bad++
	}
	t.mu.Unlock()
	t.events.Inc()
	if bad {
		t.breaches.Inc()
	}
}

func (t *SLOTracker) nowBucket() int64 {
	return t.now().UnixNano() / int64(t.width)
}

// bucketLocked returns the ring slot for bucket id, recycling slots
// whose id has aged out.
func (t *SLOTracker) bucketLocked(id int64) *sloBucket {
	b := &t.buckets[int(id%int64(len(t.buckets)))]
	if b.id != id {
		*b = sloBucket{id: id}
	}
	return b
}

// BurnRate returns the burn rate over the last n buckets:
// (bad/total over the window) / (1 - objective). Zero when the window
// saw no events.
func (t *SLOTracker) burnRate(n int) float64 {
	if t == nil {
		return 0
	}
	nowID := t.nowBucket()
	t.mu.Lock()
	defer t.mu.Unlock()
	var total, bad uint64
	for i := range t.buckets {
		b := &t.buckets[i]
		if b.id > nowID-int64(n) && b.id <= nowID {
			total += b.total
			bad += b.bad
		}
	}
	if total == 0 {
		return 0
	}
	ratio := float64(bad) / float64(total)
	return ratio / (1 - t.objective)
}

// FastBurn returns the burn rate over the fast window.
func (t *SLOTracker) FastBurn() float64 {
	if t == nil {
		return 0
	}
	return t.burnRate(t.fast)
}

// SlowBurn returns the burn rate over the slow window.
func (t *SLOTracker) SlowBurn() float64 {
	if t == nil {
		return 0
	}
	return t.burnRate(t.slow)
}

// burnFunc is the collection-time gauge body; it reads 0 once the
// tracker is closed so a drained environment's (already-removed)
// series cannot report stale burn if something re-creates the child.
func (t *SLOTracker) burnFunc(n func() int) func() float64 {
	return func() float64 {
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return 0
		}
		return t.burnRate(n())
	}
}

// Close ends the environment's dwatch_slo_* series and stops
// accounting. Idempotent.
func (t *SLOTracker) Close() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.mu.Unlock()
	if t.reg == nil {
		return
	}
	// Re-resolving the vecs is idempotent registration; Remove drops
	// the env's children (and the burn gauge funcs with them).
	t.reg.GaugeVec("dwatch_slo_target_seconds", "", "env").Remove(t.env)
	t.reg.GaugeVec("dwatch_slo_objective", "", "env").Remove(t.env)
	t.reg.CounterVec("dwatch_slo_events_total", "", "env").Remove(t.env)
	t.reg.CounterVec("dwatch_slo_breaches_total", "", "env").Remove(t.env)
	burn := t.reg.GaugeVec("dwatch_slo_burn_rate", "", "env", "window")
	burn.Remove(t.env, "fast")
	burn.Remove(t.env, "slow")
}
