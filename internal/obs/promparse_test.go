package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestPromParseRoundTrip: WritePrometheus output — including label
// values exercising every escape (backslash, quote, newline) and
// histogram bucket expansion — must survive parse → re-emit
// byte-identically. The gateway federates by re-emitting parsed
// samples, so any corruption here corrupts every node's series.
func TestPromParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain_total", "A plain counter.").Add(7)
	v := r.CounterVec("escaped_total", `Help with \backslash and newline`+"\n end.", "env", "path")
	v.With(`quo"te`, `back\slash`).Add(3)
	v.With("multi\nline", "plain").Add(1)
	r.GaugeVec("temp", "Gauge with labels.", "site").With("lab-3").Set(-2.25)
	r.Histogram("lat_seconds", "A histogram.", []float64{0.001, 0.01, 0.1}).Observe(0.004)
	r.GaugeVec("dwatch_slo_burn_rate", "Burn.", "env", "window").With("site-a", "fast").Set(1.5)

	var orig bytes.Buffer
	if err := r.WritePrometheus(&orig); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v\npage:\n%s", err, orig.String())
	}
	var back bytes.Buffer
	if err := WriteFamilies(&back, fams); err != nil {
		t.Fatal(err)
	}
	if back.String() != orig.String() {
		t.Fatalf("round trip not byte-identical\n--- original:\n%s--- re-emitted:\n%s", orig.String(), back.String())
	}
}

// TestPromParseStructure: histogram samples attach to the base family,
// label decoding unescapes, and values parse.
func TestPromParseStructure(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat_seconds", "h", []float64{0.01}).Observe(0.004)
	r.CounterVec("fixes_total", "c", "env").With(`we"ird`).Add(9)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*ParsedFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	h := byName["lat_seconds"]
	if h == nil || h.Type != "histogram" {
		t.Fatalf("lat_seconds family missing or untyped: %+v", h)
	}
	// 1 finite bucket + +Inf bucket + _sum + _count = 4 samples.
	if len(h.Samples) != 4 {
		t.Fatalf("histogram samples = %d, want 4: %+v", len(h.Samples), h.Samples)
	}
	c := byName["fixes_total"]
	if c == nil || len(c.Samples) != 1 {
		t.Fatalf("fixes_total family wrong: %+v", c)
	}
	if got := c.Samples[0].Label("env"); got != `we"ird` {
		t.Fatalf("env label = %q, want %q", got, `we"ird`)
	}
	if v, err := c.Samples[0].Float(); err != nil || v != 9 {
		t.Fatalf("value = %v, %v; want 9", v, err)
	}
}

// TestPromParseWithLabel: appending a label preserves the original
// block bytes and escapes the new value.
func TestPromParseWithLabel(t *testing.T) {
	s := ParsedSample{Name: "m", LabelBlock: `env="a\"b"`, Value: "1"}
	out := s.WithLabel("node", `no"de`)
	want := `m{env="a\"b",node="no\"de"} 1`
	if out.Line() != want {
		t.Fatalf("Line() = %q, want %q", out.Line(), want)
	}
	bare := ParsedSample{Name: "m", Value: "2"}
	if got := bare.WithLabel("node", "n1").Line(); got != `m{node="n1"} 2` {
		t.Fatalf("bare Line() = %q", got)
	}
}

// TestPromParseMalformed: truncated blocks and empty samples error
// rather than silently dropping series.
func TestPromParseMalformed(t *testing.T) {
	for _, page := range []string{
		"m{env=\"a\" 1\n", // unterminated block
		"m{env=\"a\"}\n",  // missing value
		"{env=\"a\"} 1\n", // missing name
		"m{env=\"a\\\n 1", // escape at end of quoted value
	} {
		if _, err := ParsePrometheus(strings.NewReader(page)); err == nil {
			t.Errorf("page %q parsed without error", page)
		}
	}
}
