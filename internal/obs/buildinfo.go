package obs

import "runtime/debug"

// RegisterBuildInfo exports the dwatch_build_info gauge in the
// node-exporter idiom: a constant 1 whose labels carry the build
// identity (module version, Go toolchain, VCS revision), so dashboards
// can join any series against the version that produced it.
func RegisterBuildInfo(r *Registry) {
	if r == nil {
		return
	}
	version, goversion, revision := buildIdentity(debug.ReadBuildInfo())
	r.GaugeVec("dwatch_build_info",
		"Build identity of the running dwatch binary (value is always 1).",
		"version", "goversion", "revision").
		With(version, goversion, revision).Set(1)
}

// buildIdentity flattens a debug.BuildInfo into the three label values,
// substituting "unknown" wherever the binary was built without the
// relevant metadata (e.g. go test binaries have no VCS stamp).
func buildIdentity(bi *debug.BuildInfo, ok bool) (version, goversion, revision string) {
	version, goversion, revision = "unknown", "unknown", "unknown"
	if !ok || bi == nil {
		return
	}
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		goversion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			revision = s.Value
			if len(revision) > 12 {
				revision = revision[:12]
			}
		}
	}
	return
}
