package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestSLOTrackerBurn: burn rate = windowed error ratio / error budget,
// the fast window forgets old failures, the slow window remembers.
func TestSLOTrackerBurn(t *testing.T) {
	now := time.Unix(1000000, 0)
	r := NewRegistry()
	tr := NewSLOTracker(r, "site-a", SLOOptions{
		Target:      100 * time.Millisecond,
		Objective:   0.9, // error budget 0.1
		BucketWidth: time.Minute,
		FastWindow:  5 * time.Minute,
		SlowWindow:  time.Hour,
		Now:         func() time.Time { return now },
	})
	// 10 events, 5 breaches: ratio 0.5, burn 5.
	for i := 0; i < 5; i++ {
		tr.Observe(10 * time.Millisecond)
		tr.Observe(500 * time.Millisecond)
	}
	if got := tr.FastBurn(); !near(got, 5) {
		t.Fatalf("fast burn = %v, want 5", got)
	}
	if got := tr.SlowBurn(); !near(got, 5) {
		t.Fatalf("slow burn = %v, want 5", got)
	}
	s := r.Snapshot()
	if s[`dwatch_slo_events_total{env="site-a"}`] != 10 {
		t.Fatalf("events_total = %v", s[`dwatch_slo_events_total{env="site-a"}`])
	}
	if s[`dwatch_slo_breaches_total{env="site-a"}`] != 5 {
		t.Fatalf("breaches_total = %v", s[`dwatch_slo_breaches_total{env="site-a"}`])
	}
	if !near(s[`dwatch_slo_burn_rate{env="site-a",window="fast"}`], 5) {
		t.Fatalf("burn gauge = %v", s[`dwatch_slo_burn_rate{env="site-a",window="fast"}`])
	}

	// 10 minutes later the fast window is clean but the slow window
	// still carries the breaches; fresh good traffic dilutes it.
	now = now.Add(10 * time.Minute)
	for i := 0; i < 10; i++ {
		tr.Observe(10 * time.Millisecond)
	}
	if got := tr.FastBurn(); got != 0 {
		t.Fatalf("fast burn after quiet period = %v, want 0", got)
	}
	if got := tr.SlowBurn(); !near(got, 2.5) { // 5 bad / 20 total / 0.1
		t.Fatalf("slow burn = %v, want 2.5", got)
	}
}

// TestSLOTrackerClose: closing removes every dwatch_slo_* series for
// the env — the handoff invariant — and further observes are dropped.
func TestSLOTrackerClose(t *testing.T) {
	r := NewRegistry()
	tr := NewSLOTracker(r, "hall", SLOOptions{})
	other := NewSLOTracker(r, "keep", SLOOptions{})
	tr.Observe(time.Millisecond)
	other.Observe(time.Millisecond)
	tr.Close()
	tr.Observe(time.Second) // must not resurrect series
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	if strings.Contains(page, `env="hall"`) {
		t.Fatalf("closed env's series survive:\n%s", page)
	}
	if !strings.Contains(page, `dwatch_slo_events_total{env="keep"} 1`) {
		t.Fatalf("other env's series lost:\n%s", page)
	}
	tr.Close() // idempotent
}

// TestSLOTrackerNil: a nil tracker is a full no-op.
func TestSLOTrackerNil(t *testing.T) {
	var tr *SLOTracker
	tr.Observe(time.Second)
	if tr.FastBurn() != 0 || tr.SlowBurn() != 0 {
		t.Fatal("nil tracker reports burn")
	}
	tr.Close()
}

// TestSLOTrackerDefaults: zero options get sane defaults and a nil
// registry still accounts.
func TestSLOTrackerDefaults(t *testing.T) {
	tr := NewSLOTracker(nil, "x", SLOOptions{})
	tr.Observe(time.Second) // > default 250ms target
	tr.Observe(time.Millisecond)
	if got := tr.FastBurn(); !near(got, 0.5/(1-0.99)) {
		t.Fatalf("default burn = %v, want %v", got, 0.5/(1-0.99))
	}
}
