package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// ContentType is the HTTP Content-Type of WritePrometheus output — the
// Prometheus text exposition format, version 0.0.4.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes every family in the registry in the
// Prometheus text exposition format (0.0.4): one # HELP and # TYPE
// header per family, then one sample line per child, with histograms
// expanded into cumulative le buckets plus _sum and _count. Families
// appear in registration order and children in creation order, so
// output is deterministic. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		children := make([]*child, len(f.order))
		for i, k := range f.order {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		if len(children) == 0 {
			continue
		}
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, ch := range children {
			switch f.kind {
			case KindCounter:
				writeSample(bw, f.name, f.labels, ch.values, "", "", strconv.FormatUint(ch.c.Value(), 10))
			case KindGauge:
				writeSample(bw, f.name, f.labels, ch.values, "", "", formatFloat(ch.gaugeValue()))
			case KindHistogram:
				b := ch.h.Buckets()
				var cum uint64
				for i, bound := range b.Bounds {
					cum += b.Counts[i]
					writeSample(bw, f.name+"_bucket", f.labels, ch.values,
						"le", formatFloat(bound), strconv.FormatUint(cum, 10))
				}
				writeSample(bw, f.name+"_bucket", f.labels, ch.values,
					"le", "+Inf", strconv.FormatUint(b.Count, 10))
				writeSample(bw, f.name+"_sum", f.labels, ch.values, "", "", formatFloat(b.Sum))
				writeSample(bw, f.name+"_count", f.labels, ch.values, "", "", strconv.FormatUint(b.Count, 10))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one sample line, appending the optional extra
// label (used for histogram le) after the family labels.
func writeSample(bw *bufio.Writer, name string, labels, values []string, extraLabel, extraValue, sample string) {
	bw.WriteString(name)
	if len(labels) > 0 || extraLabel != "" {
		bw.WriteByte('{')
		sep := false
		for i, l := range labels {
			if sep {
				bw.WriteByte(',')
			}
			sep = true
			bw.WriteString(l)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(values[i]))
			bw.WriteByte('"')
		}
		if extraLabel != "" {
			if sep {
				bw.WriteByte(',')
			}
			bw.WriteString(extraLabel)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(extraValue))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(sample)
	bw.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
