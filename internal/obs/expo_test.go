package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exact exposition bytes for one
// registry with every metric kind: header lines, label rendering,
// cumulative histogram buckets with the +Inf terminator, and
// deterministic family/child ordering.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("dwatch_reports_total", "Reports accepted.").Add(7)
	rej := r.CounterVec("dwatch_rejects_total", "Reports rejected by reason.", "reason")
	rej.With("unknown-reader").Add(2)
	rej.With(`quo"te`).Inc()
	r.Gauge("dwatch_queue_depth", "Snapshot queue occupancy.").Set(3)
	r.GaugeFunc("dwatch_pending", "Pending sequences.", func() float64 { return 1.5 })
	h := r.Histogram("dwatch_fuse_seconds", "Fusion latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5) // overflow bucket
	// The build-info idiom: constant-1 gauge whose labels carry identity.
	r.GaugeVec("dwatch_build_info", "Build identity (value is always 1).",
		"version", "goversion", "revision").
		With("v1.2.3", "go1.22.0", "abcdef123456").Set(1)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP dwatch_reports_total Reports accepted.
# TYPE dwatch_reports_total counter
dwatch_reports_total 7
# HELP dwatch_rejects_total Reports rejected by reason.
# TYPE dwatch_rejects_total counter
dwatch_rejects_total{reason="unknown-reader"} 2
dwatch_rejects_total{reason="quo\"te"} 1
# HELP dwatch_queue_depth Snapshot queue occupancy.
# TYPE dwatch_queue_depth gauge
dwatch_queue_depth 3
# HELP dwatch_pending Pending sequences.
# TYPE dwatch_pending gauge
dwatch_pending 1.5
# HELP dwatch_fuse_seconds Fusion latency.
# TYPE dwatch_fuse_seconds histogram
dwatch_fuse_seconds_bucket{le="0.01"} 1
dwatch_fuse_seconds_bucket{le="0.1"} 3
dwatch_fuse_seconds_bucket{le="1"} 3
dwatch_fuse_seconds_bucket{le="+Inf"} 4
dwatch_fuse_seconds_sum 5.105
dwatch_fuse_seconds_count 4
# HELP dwatch_build_info Build identity (value is always 1).
# TYPE dwatch_build_info gauge
dwatch_build_info{version="v1.2.3",goversion="go1.22.0",revision="abcdef123456"} 1
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusHistogramLabels checks the le label composes with
// family labels on vec histograms.
func TestWritePrometheusHistogramLabels(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("stage_seconds", "Stage latency.", []float64{1}, "stage")
	v.With("fuse").Observe(0.5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		`stage_seconds_bucket{stage="fuse",le="1"} 1`,
		`stage_seconds_bucket{stage="fuse",le="+Inf"} 1`,
		`stage_seconds_sum{stage="fuse"} 0.5`,
		`stage_seconds_count{stage="fuse"} 1`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
}

// TestEmptyFamiliesOmitted: a vec with no children yet must not emit
// headers (Prometheus chokes on TYPE lines with no samples... it does
// not, but empty families are noise either way).
func TestEmptyFamiliesOmitted(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("never_used_total", "unused", "l")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("empty family emitted: %q", sb.String())
	}
}
