package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is the read side of the exposition format: a small parser
// for the Prometheus text format (0.0.4) that the cluster gateway uses
// to federate node /metrics pages. It deliberately does NOT model
// samples numerically — label blocks and values are kept as the raw
// bytes that arrived, so re-emitting a sample reproduces it
// byte-identically (escaping quirks included) and the gateway never
// corrupts a series it merely relays. The only rewrite the federation
// layer performs is appending one extra label, which WithLabel does by
// splicing escaped text into the preserved block.

// ParsedSample is one sample line from an exposition page. Name is the
// sample's own name (including any _bucket/_sum/_count suffix),
// LabelBlock is the raw text between the braces ("" when the sample
// had none), and Value is the raw value text exactly as written.
type ParsedSample struct {
	Name       string
	LabelBlock string
	Value      string
}

// Line renders the sample back into its exposition line (without the
// trailing newline), byte-identical to the input line it was parsed
// from.
func (s ParsedSample) Line() string {
	if s.LabelBlock == "" {
		return s.Name + " " + s.Value
	}
	return s.Name + "{" + s.LabelBlock + "} " + s.Value
}

// WithLabel returns a copy of the sample with one more label appended
// to its block. The existing block text is preserved verbatim; only
// the new pair is escaped.
func (s ParsedSample) WithLabel(name, value string) ParsedSample {
	pair := name + `="` + escapeLabel(value) + `"`
	if s.LabelBlock == "" {
		s.LabelBlock = pair
	} else {
		s.LabelBlock = s.LabelBlock + "," + pair
	}
	return s
}

// Labels decodes the sample's label block into (name, value) pairs,
// unescaping values. Malformed blocks return an error — the parser
// validated brace structure, not pair syntax, so this is where a
// hand-crafted page can still fail.
func (s ParsedSample) Labels() ([][2]string, error) {
	var pairs [][2]string
	rest := s.LabelBlock
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, fmt.Errorf("obs: label block %q: missing '='", s.LabelBlock)
		}
		name := strings.TrimSpace(rest[:eq])
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("obs: label block %q: value for %q not quoted", s.LabelBlock, name)
		}
		val, n, err := unquoteLabelValue(rest)
		if err != nil {
			return nil, fmt.Errorf("obs: label block %q: %w", s.LabelBlock, err)
		}
		pairs = append(pairs, [2]string{name, val})
		rest = rest[n:]
		rest = strings.TrimPrefix(rest, ",")
	}
	return pairs, nil
}

// Label returns the unescaped value of one label ("" when absent or
// the block is malformed).
func (s ParsedSample) Label(name string) string {
	pairs, err := s.Labels()
	if err != nil {
		return ""
	}
	for _, p := range pairs {
		if p[0] == name {
			return p[1]
		}
	}
	return ""
}

// Float parses the sample's value as a float64 (Prometheus values are
// floats; counters are written as integers but parse fine).
func (s ParsedSample) Float() (float64, error) {
	// A value may carry an optional timestamp after a space; our
	// writer never emits one but foreign pages can.
	v := s.Value
	if i := strings.IndexByte(v, ' '); i >= 0 {
		v = v[:i]
	}
	return strconv.ParseFloat(v, 64)
}

// unquoteLabelValue decodes a quoted label value starting at text[0]
// == '"', returning the unescaped value and the number of input bytes
// consumed (including both quotes).
func unquoteLabelValue(text string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(text); i++ {
		switch c := text[i]; c {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			i++
			if i >= len(text) {
				return "", 0, fmt.Errorf("trailing backslash")
			}
			switch text[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(text[i])
			default:
				// Prometheus treats unknown escapes literally.
				b.WriteByte('\\')
				b.WriteByte(text[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// ParsedFamily is one metric family from an exposition page: the HELP
// and TYPE headers (raw, as written) and the samples attached to it.
// Histogram _bucket/_sum/_count samples attach to their base family.
type ParsedFamily struct {
	Name    string
	Help    string // raw escaped help text
	HasHelp bool
	Type    string // "" when no TYPE header was seen
	Samples []ParsedSample
}

// ParsePrometheus reads a text exposition page into families, in
// first-appearance order. Samples keep their raw label blocks and
// value text so WriteFamilies reproduces them byte-identically.
func ParsePrometheus(r io.Reader) ([]*ParsedFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var fams []*ParsedFamily
	byName := map[string]*ParsedFamily{}
	get := func(name string) *ParsedFamily {
		f := byName[name]
		if f == nil {
			f = &ParsedFamily{Name: name}
			byName[name] = f
			fams = append(fams, f)
		}
		return f
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
				name, help, _ := strings.Cut(rest, " ")
				f := get(name)
				f.Help, f.HasHelp = help, true
			} else if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
				name, typ, _ := strings.Cut(rest, " ")
				get(name).Type = typ
			}
			// Other comments are dropped.
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		f := get(familyOf(s.Name, byName))
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// familyOf resolves a sample name to its family: histogram suffixes
// attach to an already-declared base family, anything else is its own.
func familyOf(sample string, byName map[string]*ParsedFamily) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sample, suf); ok {
			if f := byName[base]; f != nil && (f.Type == "histogram" || f.Type == "summary") {
				return base
			}
		}
	}
	return sample
}

// parseSampleLine splits one sample line into name, raw label block,
// and raw value, respecting quoted (and escaped) label values.
func parseSampleLine(line string) (ParsedSample, error) {
	var s ParsedSample
	end := strings.IndexAny(line, "{ ")
	if end < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:end]
	if s.Name == "" {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	rest := line[end:]
	if rest[0] == '{' {
		close, err := labelBlockEnd(rest)
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", line, err)
		}
		s.LabelBlock = rest[1:close]
		rest = rest[close+1:]
		if len(rest) == 0 || rest[0] != ' ' {
			return s, fmt.Errorf("sample %q: missing value", line)
		}
	}
	s.Value = strings.TrimSpace(rest)
	if s.Value == "" {
		return s, fmt.Errorf("sample %q: missing value", line)
	}
	return s, nil
}

// labelBlockEnd finds the index of the '}' closing the block opened at
// text[0] == '{', skipping over quoted strings with backslash escapes.
func labelBlockEnd(text string) (int, error) {
	inQuote := false
	for i := 1; i < len(text); i++ {
		switch text[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i, nil
			}
		}
	}
	return 0, fmt.Errorf("unterminated label block")
}

// WriteFamilies re-emits parsed families in order: HELP/TYPE headers
// exactly as recorded, then each sample via Line. Parsing a
// WritePrometheus page and writing it back through here is
// byte-identical.
func WriteFamilies(w io.Writer, fams []*ParsedFamily) error {
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.HasHelp {
			bw.WriteString("# HELP ")
			bw.WriteString(f.Name)
			bw.WriteByte(' ')
			bw.WriteString(f.Help)
			bw.WriteByte('\n')
		}
		if f.Type != "" {
			bw.WriteString("# TYPE ")
			bw.WriteString(f.Name)
			bw.WriteByte(' ')
			bw.WriteString(f.Type)
			bw.WriteByte('\n')
		}
		for _, s := range f.Samples {
			bw.WriteString(s.Line())
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// EscapeLabelValue escapes a string for inclusion in a label value —
// exported for federation code composing label pairs by hand.
func EscapeLabelValue(s string) string { return escapeLabel(s) }
