package obs

import (
	"regexp"
	"runtime/debug"
	"strings"
	"testing"
)

// TestRegisterBuildInfo: the gauge lands in the exposition with all
// three labels populated and a constant value of 1, whatever metadata
// the test binary carries.
func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE dwatch_build_info gauge\n") {
		t.Fatalf("missing build_info TYPE line:\n%s", out)
	}
	re := regexp.MustCompile(`dwatch_build_info\{version="[^"]+",goversion="[^"]+",revision="[^"]+"\} 1\n`)
	if !re.MatchString(out) {
		t.Fatalf("build_info sample malformed:\n%s", out)
	}
	// nil registry must be a no-op, matching the rest of the obs API.
	RegisterBuildInfo(nil)
}

// TestBuildIdentity covers the metadata fallbacks: missing build info,
// empty fields, and VCS revision truncation to 12 hex chars.
func TestBuildIdentity(t *testing.T) {
	v, g, rev := buildIdentity(nil, false)
	if v != "unknown" || g != "unknown" || rev != "unknown" {
		t.Fatalf("no build info = %q/%q/%q, want unknowns", v, g, rev)
	}

	bi := &debug.BuildInfo{GoVersion: "go1.22.0"}
	bi.Main.Version = "v0.3.1"
	bi.Settings = []debug.BuildSetting{
		{Key: "vcs.revision", Value: "0123456789abcdef0123456789abcdef01234567"},
	}
	v, g, rev = buildIdentity(bi, true)
	if v != "v0.3.1" || g != "go1.22.0" {
		t.Fatalf("identity = %q/%q", v, g)
	}
	if rev != "0123456789ab" {
		t.Fatalf("revision = %q, want 12-char truncation", rev)
	}
}
