package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Idempotent re-registration returns the same instance.
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}

	r.GaugeFunc("gf", "a func gauge", func() float64 { return 42 })
	if got := r.Snapshot()["gf"]; got != 42 {
		t.Fatalf("gauge func = %v, want 42", got)
	}
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reports_total", "reports", "reader")
	v.With("r1").Add(3)
	v.With("r2").Inc()
	if v.With("r1") != v.With("r1") {
		t.Fatal("With is not stable")
	}
	s := r.Snapshot()
	if s[`reports_total{reader="r1"}`] != 3 || s[`reports_total{reader="r2"}`] != 1 {
		t.Fatalf("snapshot = %v", s)
	}

	h := r.HistogramVec("lat", "latency", []float64{1, 10}, "stage")
	h.With("fuse").Observe(0.5)
	h.With("fuse").Observe(5)
	s = r.Snapshot()
	if s[`lat_count{stage="fuse"}`] != 2 || s[`lat_sum{stage="fuse"}`] != 5.5 {
		t.Fatalf("histogram snapshot = %v", s)
	}
}

func TestLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("x_total", "x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "m")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("m", "m")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("bad name", "nope")
}

// TestNilRegistry: every constructor and metric op must be a safe
// no-op on a nil registry — this is what lets the pipeline thread an
// optional registry through without branches.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.Counter("c_total", "c").Inc()
	r.Gauge("g", "g").Set(1)
	r.GaugeFunc("gf", "gf", func() float64 { return 1 })
	r.Histogram("h", "h", []float64{1}).Observe(1)
	r.CounterVec("cv_total", "cv", "l").With("x").Add(2)
	r.GaugeVec("gv", "gv", "l").With("x").Add(2)
	r.HistogramVec("hv", "hv", []float64{1}, "l").With("x").Observe(1)
	r.Event("boom")
	sp := r.StartSpan("stage")
	if d := sp.End(); d < 0 {
		t.Fatalf("nil-registry span elapsed %v", d)
	}
	if s := r.Snapshot(); len(s) != 0 {
		t.Fatalf("nil registry snapshot = %v, want empty", s)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition = %q, err %v", sb.String(), err)
	}
}

func TestSpanRecordsStage(t *testing.T) {
	r := NewRegistry()
	t0 := time.Unix(1000, 0)
	sp := r.StartSpanAt("spectrum", t0)
	d := sp.EndAt(t0.Add(250 * time.Millisecond))
	if d != 250*time.Millisecond {
		t.Fatalf("elapsed = %v, want 250ms", d)
	}
	s := r.Snapshot()
	if s[`dwatch_stage_duration_seconds_count{stage="spectrum"}`] != 1 {
		t.Fatalf("span not recorded: %v", s)
	}
	if got := s[`dwatch_stage_duration_seconds_sum{stage="spectrum"}`]; got != 0.25 {
		t.Fatalf("span sum = %v, want 0.25", got)
	}
}

func TestEventCounts(t *testing.T) {
	r := NewRegistry()
	r.Event("evict")
	r.Event("evict")
	r.Event("reconnect")
	s := r.Snapshot()
	if s[`dwatch_events_total{event="evict"}`] != 2 || s[`dwatch_events_total{event="reconnect"}`] != 1 {
		t.Fatalf("events = %v", s)
	}
}

// TestConcurrentUse hammers one family from many goroutines; run under
// -race this is the synchronization proof for the registry.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("hits_total", "hits", "worker")
	h := r.Histogram("lat", "lat", []float64{0.001, 0.01, 0.1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			for i := 0; i < 500; i++ {
				v.With(name).Inc()
				h.Observe(float64(i) / 1e4)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		r.Snapshot()
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	s := r.Snapshot()
	var total float64
	for _, id := range s.sortedIDs() {
		if strings.HasPrefix(id, "hits_total{") {
			total += s[id]
		}
	}
	if total != 8*500 {
		t.Fatalf("total hits = %v, want %d", total, 8*500)
	}
	if s["lat_count"] != 8*500 {
		t.Fatalf("lat count = %v", s["lat_count"])
	}
}

// TestVecRemove: Remove ends a labeled series — it disappears from
// Snapshot and exposition, attached gauge funcs die with the child,
// and a later With for the same values starts a fresh child.
func TestVecRemove(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("jobs_total", "jobs", "env")
	gv := r.GaugeVec("depth", "depth", "env")
	hv := r.HistogramVec("lat", "lat", []float64{0.01}, "env")

	cv.With("a").Add(5)
	cv.With("b").Add(7)
	gv.Func(func() float64 { return 42 }, "a")
	hv.With("a").Observe(0.005)

	cv.Remove("a")
	gv.Remove("a")
	hv.Remove("a")

	s := r.Snapshot()
	for _, id := range []string{`jobs_total{env="a"}`, `depth{env="a"}`, `lat_count{env="a"}`} {
		if _, ok := s[id]; ok {
			t.Errorf("%s survived Remove: %v", id, s[id])
		}
	}
	if s[`jobs_total{env="b"}`] != 7 {
		t.Errorf("sibling series disturbed: %v", s[`jobs_total{env="b"}`])
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `env="a"`) {
		t.Errorf("exposition still mentions removed series:\n%s", sb.String())
	}

	// Re-With starts from zero with no inherited gauge funcs.
	if v := cv.With("a").Value(); v != 0 {
		t.Errorf("recreated counter = %v, want 0", v)
	}
	if v := r.Snapshot()[`depth{env="a"}`]; v != 0 {
		t.Errorf("recreated gauge child inherited funcs: %v", v)
	}

	// Removing an absent child is a no-op.
	cv.Remove("never-existed")

	// A nil vec ignores Remove like every other method.
	var nilCV *CounterVec
	nilCV.Remove("x")
}
