// Package obs is the dependency-free observability plane underneath
// the D-Watch daemons: a small metrics registry (counters, gauges,
// histograms, with optional label dimensions), a Prometheus
// text-format exposition writer, and a lightweight span/event recorder
// the pipeline stages use to time ingest → spectrum → assemble → fuse.
//
// Design goals, in order:
//
//   - Zero dependencies: the whole repo is stdlib-only, so this is a
//     minimal re-derivation of the client_golang surface the daemons
//     actually need, not a port of it.
//   - Nil-safety: every constructor and metric method is safe on a nil
//     receiver and degrades to a no-op. Library code can thread a
//     `*Registry` through unconditionally ("instrument if attached")
//     without branching at every increment site.
//   - Hot-path friendliness: counters and gauges are single atomics;
//     histograms reuse stats.Histogram (one short lock, no per-sample
//     allocation). Labeled children can be resolved once up front and
//     cached by the caller, so steady-state increments never touch the
//     registry lock.
//
// Metric and label names follow the Prometheus conventions
// ([a-zA-Z_:][a-zA-Z0-9_:]* and [a-zA-Z_][a-zA-Z0-9_]*); violations
// panic at registration, because metric names are static program data.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dwatch/internal/stats"
)

// Kind discriminates the metric families a Registry can hold.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Counter is a monotonically increasing uint64. The zero value is
// usable; a nil *Counter is a no-op.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.n.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a float64 that may go up and down. The zero value is
// usable; a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d (negative d decrements).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram (a thin wrapper over
// stats.Histogram so the pipeline's latency digests and the exposition
// writer share one implementation). A nil *Histogram is a no-op.
type Histogram struct {
	h *stats.Histogram
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.h.Observe(v)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Summary digests the histogram (zero-valued on a nil receiver).
func (h *Histogram) Summary() stats.HistogramSummary {
	if h == nil {
		return stats.HistogramSummary{}
	}
	return h.h.Summary()
}

// Buckets exports the raw bucket state (empty on a nil receiver).
func (h *Histogram) Buckets() stats.Buckets {
	if h == nil {
		return stats.Buckets{}
	}
	return h.h.Buckets()
}

// gfnList is the set of collection-time value funcs attached to one
// gauge child. Held behind an atomic pointer so registration (rare)
// never races collection (frequent) without a per-sample lock.
type gfnList []func() float64

// child is one (label values → metric) instance inside a family.
type child struct {
	values []string
	c      *Counter
	g      *Gauge
	gfns   atomic.Pointer[gfnList]
	h      *Histogram
}

// addGaugeFunc attaches fn to the child's collection-time funcs.
func (ch *child) addGaugeFunc(fn func() float64) {
	for {
		old := ch.gfns.Load()
		var next gfnList
		if old != nil {
			next = append(next, *old...)
		}
		next = append(next, fn)
		if ch.gfns.CompareAndSwap(old, &next) {
			return
		}
	}
}

// gaugeValue reads the child's current value: the sum of every
// attached gauge func, or the stored gauge when none are attached.
func (ch *child) gaugeValue() float64 {
	fns := ch.gfns.Load()
	if fns == nil || len(*fns) == 0 {
		return ch.g.Value()
	}
	var v float64
	for _, fn := range *fns {
		v += fn()
	}
	return v
}

// family is one named metric family: a kind, a help string, a label
// schema, and the children keyed by their label values.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histogram bucket upper edges

	mu       sync.Mutex
	children map[string]*child
	order    []string
}

// Registry holds metric families in registration order. A nil
// *Registry hands out nil (no-op) metrics from every constructor, so
// instrumented code needs no "is observability on?" branches.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabel(s string) bool {
	return validName(s) && !strings.Contains(s, ":")
}

// family registers (or finds) a family, enforcing that re-registration
// uses an identical schema. Metric names and schemas are static
// program data, so mismatches panic rather than error.
func (r *Registry) family(name, help string, kind Kind, bounds []float64, labels []string) *family {
	if r == nil {
		return nil
	}
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabel(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.byName[name]; f != nil {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: %q re-registered as %v, was %v", name, kind, f.kind))
		}
		if len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: %q re-registered with %d labels, was %d", name, len(labels), len(f.labels)))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: %q re-registered with label %q, was %q", name, labels[i], f.labels[i]))
			}
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: map[string]*child{},
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// childFor finds or creates the child for the given label values.
func (f *family) childFor(values []string) *child {
	if f == nil {
		return nil
	}
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := f.children[key]
	if ch == nil {
		ch = &child{values: append([]string(nil), values...)}
		switch f.kind {
		case KindCounter:
			ch.c = &Counter{}
		case KindGauge:
			ch.g = &Gauge{}
		case KindHistogram:
			ch.h = &Histogram{h: stats.NewHistogram(f.bounds)}
		}
		f.children[key] = ch
		f.order = append(f.order, key)
	}
	return ch
}

// remove drops the child for the given label values; the series
// disappears from collection and a later childFor for the same values
// starts a fresh child (zeroed counters, no attached gauge funcs).
// Removing an absent child is a no-op.
func (f *family) remove(values []string) {
	if f == nil {
		return
	}
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.children[key]; !ok {
		return
	}
	delete(f.children, key)
	for i, k := range f.order {
		if k == key {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
}

// Counter registers (idempotently) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, KindCounter, nil, nil)
	if f == nil {
		return nil
	}
	return f.childFor(nil).c
}

// Gauge registers (idempotently) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, KindGauge, nil, nil)
	if f == nil {
		return nil
	}
	return f.childFor(nil).g
}

// GaugeFunc registers a gauge whose value is computed by fn at
// collection time — the right shape for instantaneous readings like
// queue depth that already have an owner. Registering the same name
// again *adds* another func: collection reports the sum, so N
// identical subsystems sharing one registry (a fleet of per-env
// pipelines, say) expose a meaningful aggregate instead of whichever
// registration happened last.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, KindGauge, nil, nil)
	if f == nil {
		return
	}
	f.childFor(nil).addGaugeFunc(fn)
}

// Histogram registers (idempotently) an unlabeled histogram with the
// given ascending bucket upper edges.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.family(name, help, KindHistogram, bounds, nil)
	if f == nil {
		return nil
	}
	return f.childFor(nil).h
}

// CounterVec is a counter family with label dimensions.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.family(name, help, KindCounter, nil, labels)
	if f == nil {
		return nil
	}
	return &CounterVec{f: f}
}

// With returns the child counter for the given label values, creating
// it on first use. Callers on hot paths should resolve children once
// and cache them.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.childFor(values).c
}

// Remove deletes the child counter for the given label values, ending
// the series. Callers holding the old *Counter keep a working but
// uncollected counter; With after Remove starts from zero.
func (v *CounterVec) Remove(values ...string) {
	if v == nil {
		return
	}
	v.f.remove(values)
}

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := r.family(name, help, KindGauge, nil, labels)
	if f == nil {
		return nil
	}
	return &GaugeVec{f: f}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.childFor(values).g
}

// Func attaches a collection-time value func to the child for the
// given label values — GaugeFunc with label dimensions. Like
// GaugeFunc, repeated attachment to one child sums at collection.
func (v *GaugeVec) Func(fn func() float64, values ...string) {
	if v == nil {
		return
	}
	v.f.childFor(values).addGaugeFunc(fn)
}

// Remove deletes the child gauge for the given label values, ending
// the series and dropping any gauge funcs attached to it.
func (v *GaugeVec) Remove(values ...string) {
	if v == nil {
		return
	}
	v.f.remove(values)
}

// HistogramVec is a histogram family with label dimensions.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	f := r.family(name, help, KindHistogram, bounds, labels)
	if f == nil {
		return nil
	}
	return &HistogramVec{f: f}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.childFor(values).h
}

// Remove deletes the child histogram for the given label values,
// ending the series.
func (v *HistogramVec) Remove(values ...string) {
	if v == nil {
		return
	}
	v.f.remove(values)
}

// Snapshot is a flat point-in-time view of a registry for tests and
// debugging: metric identity (name plus rendered labels) → value.
// Counters and gauges contribute one entry each; histograms contribute
// "<name>_count" and "<name>_sum" entries.
type Snapshot map[string]float64

// Snapshot collects every metric. Gauge funcs are evaluated.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		children := make([]*child, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		for _, ch := range children {
			id := metricID(f.name, f.labels, ch.values)
			switch f.kind {
			case KindCounter:
				s[id] = float64(ch.c.Value())
			case KindGauge:
				s[id] = ch.gaugeValue()
			case KindHistogram:
				b := ch.h.Buckets()
				s[metricID(f.name+"_count", f.labels, ch.values)] = float64(b.Count)
				s[metricID(f.name+"_sum", f.labels, ch.values)] = b.Sum
			}
		}
	}
	return s
}

// metricID renders name{k="v",...} (or the bare name when unlabeled).
func metricID(name string, labels, values []string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l, values[i])
	}
	b.WriteByte('}')
	return b.String()
}

// sortedIDs returns the snapshot's keys in sorted order — convenient
// for deterministic test output.
func (s Snapshot) sortedIDs() []string {
	ids := make([]string, 0, len(s))
	for id := range s {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
