package obs

import (
	"time"

	"dwatch/internal/stats"
)

// Canonical family names for the span/event recorder. Every span ends
// up in one histogram family labeled by stage, every event in one
// counter family labeled by event name, so dashboards get a uniform
// shape across subsystems.
const (
	SpanFamily  = "dwatch_stage_duration_seconds"
	EventFamily = "dwatch_events_total"
)

// Span times one unit of staged work. It is a value type: obtain one
// from StartSpan at the top of a stage and call End (or EndAt with an
// explicit clock) when the stage completes. The zero Span is a valid
// no-op recorder.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing the named stage now. On a nil registry the
// span still measures (End returns the true elapsed time) but records
// nothing.
func (r *Registry) StartSpan(stage string) Span {
	return r.StartSpanAt(stage, time.Now())
}

// StartSpanAt begins timing the named stage from an explicit start
// time — the seam for code with its own clock (the pipeline's
// fake-clock tests, or stages whose start predates the call, like
// sequence assembly that begins when the first report arrives).
func (r *Registry) StartSpanAt(stage string, start time.Time) Span {
	sp := Span{start: start}
	if r != nil {
		sp.h = r.HistogramVec(SpanFamily,
			"Per-stage processing latency in seconds.",
			stats.LatencyBounds(), "stage").With(stage)
	}
	return sp
}

// End records the span against the wall clock and returns the elapsed
// duration.
func (s Span) End() time.Duration { return s.EndAt(time.Now()) }

// EndAt records the span as finishing at now and returns the elapsed
// duration, so callers can feed the same measurement into legacy
// digests without re-reading the clock.
func (s Span) EndAt(now time.Time) time.Duration {
	d := now.Sub(s.start)
	if s.h != nil {
		s.h.Observe(d.Seconds())
	}
	return d
}

// Event counts one occurrence of a named event — the counter analogue
// of a span, for discrete happenings (evictions, reconnects, state
// saves) that want a uniform home. No-op on a nil registry.
func (r *Registry) Event(name string) {
	if r == nil {
		return
	}
	r.CounterVec(EventFamily, "Count of named events.", "event").With(name).Inc()
}
