package obs

import (
	"math"
	rtm "runtime/metrics"
)

// RegisterRuntime attaches the dwatch_go_* families to the registry,
// sourced from runtime/metrics at collection time: goroutine count,
// heap/total memory, GC cycles, and GC-pause / scheduler-latency
// quantiles. Every daemon binary registers this next to
// RegisterBuildInfo so a fleet operator can tell "node is slow because
// GC is thrashing" from "node is slow because the RF plane is" without
// attaching a profiler first.
func RegisterRuntime(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("dwatch_go_goroutines",
		"Current number of live goroutines.",
		runtimeValue("/sched/goroutines:goroutines"))
	r.GaugeFunc("dwatch_go_heap_objects_bytes",
		"Bytes of memory occupied by live heap objects.",
		runtimeValue("/memory/classes/heap/objects:bytes"))
	r.GaugeFunc("dwatch_go_mem_total_bytes",
		"Total bytes of memory mapped by the Go runtime.",
		runtimeValue("/memory/classes/total:bytes"))
	r.GaugeFunc("dwatch_go_gc_cycles",
		"Completed GC cycles since process start.",
		runtimeValue("/gc/cycles/total:gc-cycles"))
	quant := r.GaugeVec("dwatch_go_gc_pause_seconds",
		"Distribution of stop-the-world GC pause latencies.", "quantile")
	quant.Func(runtimeQuantile("/sched/pauses/total/gc:seconds", 0.5), "0.5")
	quant.Func(runtimeQuantile("/sched/pauses/total/gc:seconds", 0.99), "0.99")
	sched := r.GaugeVec("dwatch_go_sched_latency_seconds",
		"Distribution of goroutine scheduling latencies.", "quantile")
	sched.Func(runtimeQuantile("/sched/latencies:seconds", 0.5), "0.5")
	sched.Func(runtimeQuantile("/sched/latencies:seconds", 0.99), "0.99")
}

// runtimeValue reads one scalar runtime/metrics sample at collection
// time. Unknown or bad metrics read as 0 rather than failing the
// scrape — runtime/metrics names are version-dependent program data.
func runtimeValue(name string) func() float64 {
	return func() float64 {
		s := []rtm.Sample{{Name: name}}
		rtm.Read(s)
		switch s[0].Value.Kind() {
		case rtm.KindUint64:
			return float64(s[0].Value.Uint64())
		case rtm.KindFloat64:
			return s[0].Value.Float64()
		default:
			return 0
		}
	}
}

// runtimeQuantile reads a runtime/metrics histogram and computes the
// q-quantile from its cumulative bucket counts at collection time.
func runtimeQuantile(name string, q float64) func() float64 {
	return func() float64 {
		s := []rtm.Sample{{Name: name}}
		rtm.Read(s)
		if s[0].Value.Kind() != rtm.KindFloat64Histogram {
			return 0
		}
		return histQuantile(s[0].Value.Float64Histogram(), q)
	}
}

// histQuantile walks a runtime/metrics histogram to the bucket holding
// the q-quantile and returns that bucket's upper edge (the resolution
// runtime histograms offer). Infinite edges fall back to the nearest
// finite neighbour.
func histQuantile(h *rtm.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Bucket i spans Buckets[i]..Buckets[i+1].
			edge := h.Buckets[i+1]
			if math.IsInf(edge, 0) {
				edge = h.Buckets[i]
			}
			if math.IsInf(edge, 0) {
				return 0
			}
			return edge
		}
	}
	return 0
}
