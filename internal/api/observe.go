package api

import "time"

// The federated observability surface. Every daemon serves its own
// profile ring; the gateway federates node metrics pages and rolls the
// fleet's health into one worst-of summary.
//
//	GET /metrics                              → Prometheus text (gateway: federated, node-labeled)
//	GET /api/v1/profiles                      → ProfilesResponse
//	GET /api/v1/profiles/{name}               → raw pprof bytes
//	GET /api/v1/cluster/health                → ClusterHealth       (gateway)
//	GET /api/v1/nodes/{node}/metrics          → raw node page       (gateway)
//	GET /api/v1/nodes/{node}/profiles[/{name}] → proxied node ring  (gateway)

// ProfileInfo is one stored profile in a daemon's continuous-profiling
// ring.
type ProfileInfo struct {
	// Name is the fetch key for /api/v1/profiles/{name}.
	Name string `json:"name"`
	// Kind is "cpu" or "heap".
	Kind  string    `json:"kind"`
	Time  time.Time `json:"time"`
	Bytes int64     `json:"bytes"`
}

// ProfilesResponse is the GET /api/v1/profiles body, newest first.
type ProfilesResponse struct {
	Profiles []ProfileInfo `json:"profiles"`
}

// Health status ladder used by the cluster rollup: the overall status
// is the worst status of any environment.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
	HealthCritical = "critical"
)

// EnvClusterHealth is one environment's row in the cluster-wide
// rollup: ownership, RF-plane state, and SLO burn, worst-of'd into
// Status with human-readable Reasons.
type EnvClusterHealth struct {
	Env string `json:"env"`
	// Node is the environment's current owner ("" when orphaned).
	Node   string `json:"node,omitempty"`
	Status string `json:"status"`
	// Reasons explains any non-ok status, one clause per trigger.
	Reasons []string `json:"reasons,omitempty"`
	// HandoffInProgress is set while the directory's desired owner
	// differs from the reporting owner.
	HandoffInProgress bool `json:"handoff_in_progress,omitempty"`
	// DriftingReaders counts readers with at least one drifting path.
	DriftingReaders int `json:"drifting_readers"`
	// MaxCalibrationResidualRad is the worst per-reader calibration
	// residual (radians).
	MaxCalibrationResidualRad float64 `json:"max_calibration_residual_rad"`
	// SLOFastBurn / SLOSlowBurn are the env's burn rates as last
	// federated from the owner's metrics page (0 when no SLO is
	// configured).
	SLOFastBurn float64 `json:"slo_fast_burn"`
	SLOSlowBurn float64 `json:"slo_slow_burn"`
	// Fixes / DegradedFixes are the owner's pipeline counters.
	Fixes         uint64 `json:"fixes"`
	DegradedFixes uint64 `json:"degraded_fixes"`
}

// ClusterHealth is the GET /api/v1/cluster/health body.
type ClusterHealth struct {
	// Status is the worst environment status (ok when no envs).
	Status string `json:"status"`
	Epoch  uint64 `json:"epoch"`
	// Nodes is the live directory size; ScrapedNodes how many of them
	// the federation scraper has fresh data for.
	Nodes        int                `json:"nodes"`
	ScrapedNodes int                `json:"scraped_nodes"`
	Envs         []EnvClusterHealth `json:"envs"`
}
