// Package api is the machine-consumable contract for the D-Watch
// /api/v1 HTTP surface: one versioned Go struct per request and
// response body, plus a typed client (see Client).
//
// Everything that serves or consumes /api/v1 — the serve plane's
// handlers, the dwatch-gateway fan-in proxy, the smoke scripts'
// assertion tool (cmd/dwatch-api), and the tests — marshals these
// types, so a field rename is a compile error (or a golden-test
// failure) instead of a silently divergent wire shape.
//
// The package is deliberately stdlib-only: a consumer of the API
// should not inherit the server's DSP, pipeline, or WAL dependency
// graph. Types that mirror an internal producer (PipelineStats ↔
// pipeline.Stats, RFHealth ↔ health.Snapshot, WALStatus ↔ wal.Status,
// TraceSummary/Trace ↔ tracing.Summary/Data) are pinned against it by
// compatibility tests in this package, and against fixed JSON by
// golden round-trip tests.
package api

import "time"

// Error is the uniform error envelope every /api/v1 endpoint returns
// on failure:
//
//	{"error": {"code": "env_not_found", "message": "..."}}
//
// Code is a stable machine-readable identifier; Message is for humans.
type Error struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody is the envelope payload.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// PositionSchema is the version stamped on every published Position.
// v1 was the pre-fault-tolerance shape; v2 adds degraded-mode
// provenance (degraded flag + contributing readers); v3 adds the
// sequence trace ID.
const PositionSchema = 3

// Position is one localization fix as the API exposes it: flattened
// coordinates plus provenance, JSON-ready for both the latest-fix
// endpoint and the SSE stream.
type Position struct {
	// Schema is the Position JSON schema version (PositionSchema);
	// stamped by Publish so clients can detect shape changes.
	Schema     int     `json:"schema"`
	Env        string  `json:"env"`
	Seq        uint32  `json:"seq"`
	X          float64 `json:"x"`
	Y          float64 `json:"y"`
	Confidence float64 `json:"confidence"`
	Views      int     `json:"views"`
	// Readers lists the readers whose evidence joined the fix (sorted;
	// schema ≥ 2).
	Readers []string `json:"readers,omitempty"`
	// Degraded marks a fix fused from a live quorum while at least one
	// expected reader was down (schema ≥ 2).
	Degraded bool `json:"degraded,omitempty"`
	// TraceID names the sequence trace behind this fix when tracing is
	// enabled; resolve it at /api/v1/traces/{id} (schema ≥ 3).
	TraceID string    `json:"trace_id,omitempty"`
	Time    time.Time `json:"time"`
}

// PositionsResponse is the GET /api/v1/positions and
// /api/v1/{env}/positions body: the latest fix per covered
// environment.
type PositionsResponse struct {
	Positions []Position `json:"positions"`
}

// EnvInfo is one environment's listing entry on /api/v1/envs.
type EnvInfo struct {
	ID string `json:"id"`
	// Name is the scenario/deployment name when it differs from ID.
	Name string `json:"name,omitempty"`
	// Slot is the environment's home slot on the fleet's consistent
	// hash ring (stable under env add/remove; the placement unit the
	// cluster plane shards by).
	Slot    int       `json:"slot"`
	Readers int       `json:"readers"`
	Tags    int       `json:"tags,omitempty"`
	Fixes   uint64    `json:"fixes"`
	Reports uint64    `json:"reports"`
	Added   time.Time `json:"added"`
	// Node is the cluster node currently serving this environment.
	// Empty on a single-process fleet; stamped by the gateway.
	Node string `json:"node,omitempty"`
}

// EnvsResponse is the GET /api/v1/envs body.
type EnvsResponse struct {
	Envs []EnvInfo `json:"envs"`
}

// ReaderStatus is one reader's supervision state as /readyz exposes it.
type ReaderStatus struct {
	ID   string `json:"id"`
	Addr string `json:"addr,omitempty"`
	// State is "up", "down", "connecting", or "half-open".
	State      string    `json:"state"`
	Since      time.Time `json:"since,omitempty"`
	Reconnects uint64    `json:"reconnects,omitempty"`
	LastError  string    `json:"last_error,omitempty"`
}

// ReadyResponse is the /readyz body: overall readiness plus the
// per-reader session states and degraded-mode flag the fault-tolerant
// deployment exposes.
type ReadyResponse struct {
	Ready    bool           `json:"ready"`
	Reason   string         `json:"reason,omitempty"`
	Degraded bool           `json:"degraded"`
	Readers  []ReaderStatus `json:"readers,omitempty"`
}

// LatencySummary mirrors stats.HistogramSummary: the digest of one
// per-stage latency histogram (seconds).
type LatencySummary struct {
	Count uint64  `json:"Count"`
	Mean  float64 `json:"Mean"`
	Min   float64 `json:"Min"`
	Max   float64 `json:"Max"`
	P50   float64 `json:"P50"`
	P90   float64 `json:"P90"`
	P99   float64 `json:"P99"`
}

// PipelineStats mirrors pipeline.Stats: the /api/v1/stats and
// /api/v1/{env}/stats body. Field names are the wire contract
// (pipeline.Stats marshals bare Go field names); the compatibility
// test pins the two shapes against each other.
type PipelineStats struct {
	ReportsIn        uint64 `json:"ReportsIn"`
	ReportsRejected  uint64 `json:"ReportsRejected"`
	SnapshotsIn      uint64 `json:"SnapshotsIn"`
	SnapshotsDropped uint64 `json:"SnapshotsDropped"`

	SpectraComputed uint64 `json:"SpectraComputed"`
	SpectraFailed   uint64 `json:"SpectraFailed"`

	BaselinesConfirmed uint64 `json:"BaselinesConfirmed"`
	SequencesAssembled uint64 `json:"SequencesAssembled"`
	SequencesEvicted   uint64 `json:"SequencesEvicted"`
	LateReports        uint64 `json:"LateReports"`
	Fixes              uint64 `json:"Fixes"`
	DegradedFixes      uint64 `json:"DegradedFixes"`
	Misses             uint64 `json:"Misses"`

	QueueDepth       int `json:"QueueDepth"`
	PendingSequences int `json:"PendingSequences"`

	ComputeLatency LatencySummary `json:"ComputeLatency"`
	FuseLatency    LatencySummary `json:"FuseLatency"`
}

// FleetStats is the aggregate /api/v1/stats body of a multi-env
// deployment (dwatchd fleet mode, and the gateway's fan-in): one
// pipeline snapshot per environment ID.
type FleetStats map[string]PipelineStats

// PathHealth mirrors health.PathHealth: one tracked P-MUSIC path.
type PathHealth struct {
	AngleDeg float64   `json:"angle_deg"`
	Power    float64   `json:"power"`
	Baseline float64   `json:"baseline"`
	Drift    bool      `json:"drift"`
	LastSeen time.Time `json:"last_seen"`
}

// TagHealth mirrors health.TagHealth: one (reader, tag) read stream.
type TagHealth struct {
	EPC      string       `json:"epc"`
	Reads    uint64       `json:"reads"`
	RateHz   float64      `json:"rate_hz"`
	LastSeen time.Time    `json:"last_seen"`
	Paths    []PathHealth `json:"paths,omitempty"`
}

// ReaderHealth mirrors health.ReaderHealth.
type ReaderHealth struct {
	ID                  string      `json:"id"`
	CalibrationResidual float64     `json:"calibration_residual_rad"`
	Drifting            int         `json:"drifting_paths"`
	Tags                []TagHealth `json:"tags"`
}

// RFHealth mirrors health.Snapshot: the /api/v1/health body.
type RFHealth struct {
	Readers []ReaderHealth `json:"readers"`
}

// TraceSpan mirrors tracing.Span: one stage span inside a sequence
// trace. QueueNS is the queue-wait share in nanoseconds.
type TraceSpan struct {
	Stage   string    `json:"stage"`
	Reader  string    `json:"reader,omitempty"`
	Tag     string    `json:"tag,omitempty"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	QueueNS int64     `json:"queue_ns"`
}

// TraceEvent mirrors tracing.Event.
type TraceEvent struct {
	Time   time.Time `json:"time"`
	Name   string    `json:"name"`
	Detail string    `json:"detail,omitempty"`
}

// Trace mirrors tracing.Data: the GET /api/v1/traces/{id} body.
type Trace struct {
	ID       string       `json:"id"`
	Seq      uint32       `json:"seq"`
	Start    time.Time    `json:"start"`
	End      time.Time    `json:"end,omitempty"`
	Outcome  string       `json:"outcome,omitempty"`
	Degraded bool         `json:"degraded,omitempty"`
	Pinned   bool         `json:"pinned,omitempty"`
	Spans    []TraceSpan  `json:"spans"`
	Events   []TraceEvent `json:"events,omitempty"`
}

// TraceSummary mirrors tracing.Summary: one listing row on
// /api/v1/traces. DurationNS is nanoseconds.
type TraceSummary struct {
	ID         string    `json:"id"`
	Seq        uint32    `json:"seq"`
	Start      time.Time `json:"start"`
	DurationNS int64     `json:"duration_ns"`
	Outcome    string    `json:"outcome"`
	Degraded   bool      `json:"degraded,omitempty"`
	Pinned     bool      `json:"pinned,omitempty"`
	Spans      int       `json:"spans"`
	Events     int       `json:"events"`
}

// TracesResponse is the GET /api/v1/traces body (newest first).
type TracesResponse struct {
	Traces []TraceSummary `json:"traces"`
}

// WALDamage mirrors wal.Damage: where recovery stopped trusting a
// segment.
type WALDamage struct {
	Segment string `json:"segment"`
	Offset  int64  `json:"offset"`
	Reason  string `json:"reason"`
}

// WALStatus mirrors wal.Status: the /api/v1/wal body.
type WALStatus struct {
	Dir           string     `json:"dir"`
	Fsync         string     `json:"fsync"`
	Segments      int        `json:"segments"`
	ActiveSegment string     `json:"active_segment"`
	Bytes         int64      `json:"bytes"`
	NextSeq       uint64     `json:"next_seq"`
	Appended      uint64     `json:"appended_records"`
	AppendedBytes uint64     `json:"appended_bytes"`
	Fsyncs        uint64     `json:"fsyncs"`
	Rotations     uint64     `json:"rotations"`
	Deleted       uint64     `json:"retention_deleted_segments"`
	Recovered     int        `json:"recovered_records"`
	Truncated     int64      `json:"truncated_tail_bytes"`
	Damage        *WALDamage `json:"damage,omitempty"`
	LastAppend    time.Time  `json:"last_append,omitempty"`
}
