package api

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// roundTrip marshals v, pins the bytes against want (insignificant
// whitespace normalized via compaction), then unmarshals back into a
// fresh value with unknown fields rejected and asserts equality. Any
// field rename, tag change, or type change in the contract breaks one
// of the three legs.
func roundTrip(t *testing.T, v any, want string) {
	t.Helper()
	got, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var wb bytes.Buffer
	if err := json.Compact(&wb, []byte(want)); err != nil {
		t.Fatalf("bad golden JSON: %v", err)
	}
	if string(got) != wb.String() {
		t.Fatalf("wire shape drifted:\n got: %s\nwant: %s", got, wb.String())
	}
	back := reflect.New(reflect.TypeOf(v))
	dec := json.NewDecoder(bytes.NewReader(got))
	dec.DisallowUnknownFields()
	if err := dec.Decode(back.Interface()); err != nil {
		t.Fatalf("decode back: %v", err)
	}
	if !reflect.DeepEqual(back.Elem().Interface(), v) {
		t.Fatalf("round trip changed value:\n got: %#v\nwant: %#v", back.Elem().Interface(), v)
	}
}

var goldenTime = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

func TestGoldenErrorEnvelope(t *testing.T) {
	roundTrip(t, Error{Error: ErrorBody{Code: "env_not_found", Message: "unknown environment \"lab\""}},
		`{"error":{"code":"env_not_found","message":"unknown environment \"lab\""}}`)
}

// TestGoldenPosition pins the schema-3 Position: the one shape the SSE
// stream, the latest-fix endpoint, and every downstream consumer agree
// on. Changing it requires bumping PositionSchema.
func TestGoldenPosition(t *testing.T) {
	if PositionSchema != 3 {
		t.Fatalf("PositionSchema = %d; this golden pins schema 3 — add a new golden instead of editing this one", PositionSchema)
	}
	full := Position{
		Schema: 3, Env: "site-a", Seq: 42, X: 1.5, Y: -2.25, Confidence: 0.875,
		Views: 3, Readers: []string{"site-a/r1", "site-a/r2"}, Degraded: true,
		TraceID: "t-000042", Time: goldenTime,
	}
	roundTrip(t, full,
		`{"schema":3,"env":"site-a","seq":42,"x":1.5,"y":-2.25,"confidence":0.875,
		  "views":3,"readers":["site-a/r1","site-a/r2"],"degraded":true,
		  "trace_id":"t-000042","time":"2026-08-08T12:00:00Z"}`)

	// Minimal fix: the schema ≥2/≥3 provenance fields must omit, not
	// emit zero values, so schema-1-era consumers see an unchanged body.
	min := Position{Schema: 3, Env: "site-a", Seq: 1, X: 1, Y: 2, Confidence: 0.5, Views: 2, Time: goldenTime}
	roundTrip(t, min,
		`{"schema":3,"env":"site-a","seq":1,"x":1,"y":2,"confidence":0.5,"views":2,
		  "time":"2026-08-08T12:00:00Z"}`)
}

func TestGoldenPositionsResponse(t *testing.T) {
	roundTrip(t, PositionsResponse{Positions: []Position{
		{Schema: 3, Env: "a", Seq: 7, X: 0.5, Y: 0.5, Confidence: 1, Views: 2, Time: goldenTime},
	}},
		`{"positions":[{"schema":3,"env":"a","seq":7,"x":0.5,"y":0.5,"confidence":1,
		  "views":2,"time":"2026-08-08T12:00:00Z"}]}`)
}

func TestGoldenEnvs(t *testing.T) {
	roundTrip(t, EnvsResponse{Envs: []EnvInfo{{
		ID: "site-a", Name: "office", Slot: 11, Readers: 3, Tags: 12,
		Fixes: 40, Reports: 120, Added: goldenTime, Node: "node-1",
	}}},
		`{"envs":[{"id":"site-a","name":"office","slot":11,"readers":3,"tags":12,
		  "fixes":40,"reports":120,"added":"2026-08-08T12:00:00Z","node":"node-1"}]}`)
}

func TestGoldenReady(t *testing.T) {
	roundTrip(t, ReadyResponse{Ready: false, Reason: "1/2 readers up", Degraded: true,
		Readers: []ReaderStatus{{ID: "r1", Addr: "127.0.0.1:5084", State: "down",
			Since: goldenTime, Reconnects: 2, LastError: "dial refused"}}},
		`{"ready":false,"reason":"1/2 readers up","degraded":true,
		  "readers":[{"id":"r1","addr":"127.0.0.1:5084","state":"down",
		  "since":"2026-08-08T12:00:00Z","reconnects":2,"last_error":"dial refused"}]}`)
}

func TestGoldenPipelineStats(t *testing.T) {
	roundTrip(t, PipelineStats{
		ReportsIn: 10, ReportsRejected: 1, SnapshotsIn: 30, SnapshotsDropped: 2,
		SpectraComputed: 28, SpectraFailed: 0, BaselinesConfirmed: 3,
		SequencesAssembled: 9, SequencesEvicted: 1, LateReports: 2,
		Fixes: 8, DegradedFixes: 1, Misses: 1, QueueDepth: 4, PendingSequences: 2,
		ComputeLatency: LatencySummary{Count: 28, Mean: 0.001, Min: 0.0005, Max: 0.002, P50: 0.001, P90: 0.0015, P99: 0.002},
		FuseLatency:    LatencySummary{Count: 9},
	},
		`{"ReportsIn":10,"ReportsRejected":1,"SnapshotsIn":30,"SnapshotsDropped":2,
		  "SpectraComputed":28,"SpectraFailed":0,"BaselinesConfirmed":3,
		  "SequencesAssembled":9,"SequencesEvicted":1,"LateReports":2,
		  "Fixes":8,"DegradedFixes":1,"Misses":1,"QueueDepth":4,"PendingSequences":2,
		  "ComputeLatency":{"Count":28,"Mean":0.001,"Min":0.0005,"Max":0.002,"P50":0.001,"P90":0.0015,"P99":0.002},
		  "FuseLatency":{"Count":9,"Mean":0,"Min":0,"Max":0,"P50":0,"P90":0,"P99":0}}`)
}

func TestGoldenRFHealth(t *testing.T) {
	roundTrip(t, RFHealth{Readers: []ReaderHealth{{
		ID: "site-a/r1", CalibrationResidual: 0.05, Drifting: 1,
		Tags: []TagHealth{{EPC: "e280", Reads: 100, RateHz: 12.5, LastSeen: goldenTime,
			Paths: []PathHealth{{AngleDeg: 45, Power: 0.75, Baseline: 0.5, Drift: true, LastSeen: goldenTime}}}},
	}}},
		`{"readers":[{"id":"site-a/r1","calibration_residual_rad":0.05,"drifting_paths":1,
		  "tags":[{"epc":"e280","reads":100,"rate_hz":12.5,"last_seen":"2026-08-08T12:00:00Z",
		  "paths":[{"angle_deg":45,"power":0.75,"baseline":0.5,"drift":true,
		  "last_seen":"2026-08-08T12:00:00Z"}]}]}]}`)
}

func TestGoldenTraces(t *testing.T) {
	roundTrip(t, Trace{
		ID: "t-000007", Seq: 7, Start: goldenTime, End: goldenTime.Add(time.Millisecond),
		Outcome: "fix", Degraded: true, Pinned: true,
		Spans: []TraceSpan{{Stage: "compute", Reader: "r1", Tag: "e280",
			Start: goldenTime, End: goldenTime.Add(time.Millisecond), QueueNS: 250000}},
		Events: []TraceEvent{{Time: goldenTime, Name: "evict", Detail: "ttl"}},
	},
		`{"id":"t-000007","seq":7,"start":"2026-08-08T12:00:00Z",
		  "end":"2026-08-08T12:00:00.001Z","outcome":"fix","degraded":true,"pinned":true,
		  "spans":[{"stage":"compute","reader":"r1","tag":"e280",
		  "start":"2026-08-08T12:00:00Z","end":"2026-08-08T12:00:00.001Z","queue_ns":250000}],
		  "events":[{"time":"2026-08-08T12:00:00Z","name":"evict","detail":"ttl"}]}`)

	roundTrip(t, TracesResponse{Traces: []TraceSummary{{
		ID: "t-000007", Seq: 7, Start: goldenTime, DurationNS: 1000000,
		Outcome: "fix", Spans: 3, Events: 1,
	}}},
		`{"traces":[{"id":"t-000007","seq":7,"start":"2026-08-08T12:00:00Z",
		  "duration_ns":1000000,"outcome":"fix","spans":3,"events":1}]}`)
}

func TestGoldenWALStatus(t *testing.T) {
	roundTrip(t, WALStatus{
		Dir: "/tmp/wal", Fsync: "interval", Segments: 2, ActiveSegment: "000002.wal",
		Bytes: 4096, NextSeq: 101, Appended: 100, AppendedBytes: 3900, Fsyncs: 10,
		Rotations: 1, Deleted: 0, Recovered: 50, Truncated: 12,
		Damage:     &WALDamage{Segment: "000001.wal", Offset: 512, Reason: "crc mismatch"},
		LastAppend: goldenTime,
	},
		`{"dir":"/tmp/wal","fsync":"interval","segments":2,"active_segment":"000002.wal",
		  "bytes":4096,"next_seq":101,"appended_records":100,"appended_bytes":3900,
		  "fsyncs":10,"rotations":1,"retention_deleted_segments":0,"recovered_records":50,
		  "truncated_tail_bytes":12,
		  "damage":{"segment":"000001.wal","offset":512,"reason":"crc mismatch"},
		  "last_append":"2026-08-08T12:00:00Z"}`)
}

func TestGoldenCluster(t *testing.T) {
	roundTrip(t, ClusterStatus{
		Role: "gateway", Epoch: 4, Slots: 16,
		Nodes: []NodeInfo{{ID: "node-1", Addr: "http://127.0.0.1:8081",
			Envs: []string{"site-a", "site-b"}, Owned: []string{"site-a"}, LastSeen: goldenTime}},
		Assignments: map[string]string{"site-a": "node-1"},
	},
		`{"role":"gateway","epoch":4,"slots":16,
		  "nodes":[{"id":"node-1","addr":"http://127.0.0.1:8081",
		  "envs":["site-a","site-b"],"owned":["site-a"],"last_seen":"2026-08-08T12:00:00Z"}],
		  "assignments":{"site-a":"node-1"}}`)

	roundTrip(t, JoinRequest{ID: "node-1", Addr: "http://127.0.0.1:8081",
		Envs: []string{"site-a"}, Owned: []string{"site-a"}},
		`{"id":"node-1","addr":"http://127.0.0.1:8081","envs":["site-a"],"owned":["site-a"]}`)
	roundTrip(t, HeartbeatRequest{ID: "node-1", Owned: []string{"site-a"}},
		`{"id":"node-1","owned":["site-a"]}`)
	roundTrip(t, HeartbeatResponse{Epoch: 5, Assigned: []string{"site-a", "site-b"}, IntervalMS: 200},
		`{"epoch":5,"assigned":["site-a","site-b"],"interval_ms":200}`)
	roundTrip(t, LeaveRequest{ID: "node-1"}, `{"id":"node-1"}`)
	roundTrip(t, LeaveResponse{Epoch: 6}, `{"epoch":6}`)
}

func TestGoldenProfiles(t *testing.T) {
	roundTrip(t, ProfilesResponse{Profiles: []ProfileInfo{{
		Name: "cpu-1754650800000000000.pprof", Kind: "cpu", Time: goldenTime, Bytes: 2048,
	}}},
		`{"profiles":[{"name":"cpu-1754650800000000000.pprof","kind":"cpu",
		  "time":"2026-08-08T12:00:00Z","bytes":2048}]}`)
}

func TestGoldenClusterHealth(t *testing.T) {
	roundTrip(t, ClusterHealth{
		Status: "degraded", Epoch: 9, Nodes: 2, ScrapedNodes: 2,
		Envs: []EnvClusterHealth{{
			Env: "site-a", Node: "node-1", Status: "degraded",
			Reasons: []string{"2 drifting readers"}, HandoffInProgress: true,
			DriftingReaders: 2, MaxCalibrationResidualRad: 0.12,
			SLOFastBurn: 3.5, SLOSlowBurn: 0.5, Fixes: 40, DegradedFixes: 2,
		}, {
			Env: "site-b", Node: "node-2", Status: "ok",
			DriftingReaders: 0, MaxCalibrationResidualRad: 0,
		}},
	},
		`{"status":"degraded","epoch":9,"nodes":2,"scraped_nodes":2,
		  "envs":[{"env":"site-a","node":"node-1","status":"degraded",
		  "reasons":["2 drifting readers"],"handoff_in_progress":true,
		  "drifting_readers":2,"max_calibration_residual_rad":0.12,
		  "slo_fast_burn":3.5,"slo_slow_burn":0.5,"fixes":40,"degraded_fixes":2},
		  {"env":"site-b","node":"node-2","status":"ok",
		  "drifting_readers":0,"max_calibration_residual_rad":0,
		  "slo_fast_burn":0,"slo_slow_burn":0,"fixes":0,"degraded_fixes":0}]}`)
}

// TestGoldenFleetStats pins the map-of-env shape fleet-mode /api/v1/stats serves.
func TestGoldenFleetStats(t *testing.T) {
	got, err := json.Marshal(FleetStats{"site-a": {Fixes: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"site-a":{`, `"Fixes":3`} {
		if !strings.Contains(string(got), want) {
			t.Fatalf("FleetStats JSON missing %s: %s", want, got)
		}
	}
}
