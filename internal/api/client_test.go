package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestClientDecodesErrorEnvelope(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":{"code":"env_not_found","message":"unknown environment"}}`)
	}))
	defer srv.Close()

	_, err := NewClient(srv.URL).Positions(context.Background(), "nope")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if ae.Status != http.StatusNotFound || ae.Code != CodeEnvNotFound {
		t.Fatalf("bad APIError: %+v", ae)
	}
	if ErrorCode(err) != CodeEnvNotFound {
		t.Fatalf("ErrorCode = %q", ErrorCode(err))
	}
}

func TestClientStrictRejectsUnknownFields(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"envs":[],"bogus":1}`)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	if _, err := c.Envs(context.Background()); err != nil {
		t.Fatalf("lenient decode should tolerate extra fields: %v", err)
	}
	c.Strict = true
	if _, err := c.Envs(context.Background()); err == nil {
		t.Fatal("strict decode accepted an unknown field")
	}
}

func TestClientEnvPathScoping(t *testing.T) {
	var paths []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		paths = append(paths, r.URL.Path)
		fmt.Fprint(w, `{"positions":[]}`)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	ctx := context.Background()
	if _, err := c.Positions(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Positions(ctx, "site-a"); err != nil {
		t.Fatal(err)
	}
	if want := []string{"/api/v1/positions", "/api/v1/site-a/positions"}; len(paths) != 2 || paths[0] != want[0] || paths[1] != want[1] {
		t.Fatalf("paths = %v", paths)
	}
}

func TestWatchPositionsParsesSSE(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Accept") != "text/event-stream" {
			t.Errorf("missing Accept header")
		}
		w.Header().Set("Content-Type", "text/event-stream")
		// Two position frames separated by a keepalive comment, the
		// exact framing the serve plane emits.
		fmt.Fprint(w, "event: position\ndata: {\"schema\":3,\"env\":\"a\",\"seq\":1,\"x\":1,\"y\":2,\"confidence\":0.5,\"views\":2,\"time\":\"2026-08-08T12:00:00Z\"}\n\n")
		fmt.Fprint(w, ": keepalive\n\n")
		fmt.Fprint(w, "event: position\ndata: {\"schema\":3,\"env\":\"a\",\"seq\":2,\"x\":3,\"y\":4,\"confidence\":0.5,\"views\":2,\"time\":\"2026-08-08T12:00:01Z\"}\n\n")
	}))
	defer srv.Close()

	var seqs []uint32
	var raws []string
	err := NewClient(srv.URL).WatchPositions(context.Background(), "a", func(raw []byte, p Position) error {
		seqs = append(seqs, p.Seq)
		raws = append(raws, string(raw))
		return nil
	})
	if err != nil {
		t.Fatalf("WatchPositions: %v", err)
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("seqs = %v", seqs)
	}
	if raws[0] == "" || raws[0][0] != '{' {
		t.Fatalf("raw frame not passed through: %q", raws[0])
	}
}

func TestWatchPositionsCallbackErrorStops(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for i := 1; i <= 10; i++ {
			fmt.Fprintf(w, "event: position\ndata: {\"schema\":3,\"env\":\"a\",\"seq\":%d,\"x\":0,\"y\":0,\"confidence\":0,\"views\":0,\"time\":\"2026-08-08T12:00:00Z\"}\n\n", i)
		}
	}))
	defer srv.Close()

	stop := errors.New("enough")
	n := 0
	err := NewClient(srv.URL).WatchPositions(context.Background(), "a", func(raw []byte, p Position) error {
		n++
		if n == 3 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("want callback error back, got %v", err)
	}
	if n != 3 {
		t.Fatalf("callback ran %d times", n)
	}
}
