package api

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"dwatch/internal/health"
	"dwatch/internal/pipeline"
	"dwatch/internal/stats"
	"dwatch/internal/tracing"
	"dwatch/internal/wal"
)

// These tests pin the stdlib-only mirror types against their internal
// producers: a producer value marshaled to JSON must strict-decode
// (unknown fields rejected) into the api mirror, and the mirror must
// strict-decode back into the producer. They live here — not in the
// producer packages — so package api itself never imports the DSP
// graph, only its tests do.

// pins asserts a and b marshal to byte-identical JSON, and that each
// side's JSON strict-decodes into the other type.
func pins(t *testing.T, producer, mirror any) {
	t.Helper()
	pj, err := json.Marshal(producer)
	if err != nil {
		t.Fatalf("marshal producer: %v", err)
	}
	mj, err := json.Marshal(mirror)
	if err != nil {
		t.Fatalf("marshal mirror: %v", err)
	}
	if !bytes.Equal(pj, mj) {
		t.Fatalf("wire shapes diverged:\nproducer: %s\n  mirror: %s", pj, mj)
	}
	strict := func(data []byte, into any) {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(into); err != nil {
			t.Fatalf("strict decode into %T: %v", into, err)
		}
	}
	strict(pj, mirror)
	strict(mj, producer)
}

var compatTime = time.Date(2026, 8, 8, 9, 30, 0, 0, time.UTC)

func TestPipelineStatsCompat(t *testing.T) {
	hs := stats.HistogramSummary{Count: 5, Mean: 1, Min: 0.5, Max: 2, P50: 1, P90: 1.5, P99: 2}
	pins(t,
		&pipeline.Stats{
			ReportsIn: 1, ReportsRejected: 2, SnapshotsIn: 3, SnapshotsDropped: 4,
			SpectraComputed: 5, SpectraFailed: 6, BaselinesConfirmed: 7,
			SequencesAssembled: 8, SequencesEvicted: 9, LateReports: 10,
			Fixes: 11, DegradedFixes: 12, Misses: 13,
			QueueDepth: 14, PendingSequences: 15,
			ComputeLatency: hs, FuseLatency: hs,
		},
		&PipelineStats{
			ReportsIn: 1, ReportsRejected: 2, SnapshotsIn: 3, SnapshotsDropped: 4,
			SpectraComputed: 5, SpectraFailed: 6, BaselinesConfirmed: 7,
			SequencesAssembled: 8, SequencesEvicted: 9, LateReports: 10,
			Fixes: 11, DegradedFixes: 12, Misses: 13,
			QueueDepth: 14, PendingSequences: 15,
			ComputeLatency: LatencySummary{Count: 5, Mean: 1, Min: 0.5, Max: 2, P50: 1, P90: 1.5, P99: 2},
			FuseLatency:    LatencySummary{Count: 5, Mean: 1, Min: 0.5, Max: 2, P50: 1, P90: 1.5, P99: 2},
		})
}

func TestRFHealthCompat(t *testing.T) {
	pins(t,
		&health.Snapshot{Readers: []health.ReaderHealth{{
			ID: "r1", CalibrationResidual: 0.04, Drifting: 2,
			Tags: []health.TagHealth{{EPC: "e280", Reads: 9, RateHz: 3.5, LastSeen: compatTime,
				Paths: []health.PathHealth{{AngleDeg: 30, Power: 0.6, Baseline: 0.4, Drift: true, LastSeen: compatTime}}}},
		}}},
		&RFHealth{Readers: []ReaderHealth{{
			ID: "r1", CalibrationResidual: 0.04, Drifting: 2,
			Tags: []TagHealth{{EPC: "e280", Reads: 9, RateHz: 3.5, LastSeen: compatTime,
				Paths: []PathHealth{{AngleDeg: 30, Power: 0.6, Baseline: 0.4, Drift: true, LastSeen: compatTime}}}},
		}}})
}

func TestWALStatusCompat(t *testing.T) {
	pins(t,
		&wal.Status{Dir: "/w", Fsync: "always", Segments: 1, ActiveSegment: "000001.wal",
			Bytes: 10, NextSeq: 2, Appended: 1, AppendedBytes: 9, Fsyncs: 1, Rotations: 0,
			Deleted: 0, Recovered: 0, Truncated: 0,
			Damage:     &wal.Damage{Segment: "000001.wal", Offset: 4, Reason: "short record"},
			LastAppend: compatTime},
		&WALStatus{Dir: "/w", Fsync: "always", Segments: 1, ActiveSegment: "000001.wal",
			Bytes: 10, NextSeq: 2, Appended: 1, AppendedBytes: 9, Fsyncs: 1, Rotations: 0,
			Deleted: 0, Recovered: 0, Truncated: 0,
			Damage:     &WALDamage{Segment: "000001.wal", Offset: 4, Reason: "short record"},
			LastAppend: compatTime})
}

func TestTraceCompat(t *testing.T) {
	pins(t,
		&tracing.Data{ID: "t-1", Seq: 1, Start: compatTime, End: compatTime.Add(time.Millisecond),
			Outcome: "fix", Degraded: true, Pinned: true,
			Spans: []tracing.Span{{Stage: "fuse", Reader: "r1", Tag: "e280",
				Start: compatTime, End: compatTime.Add(time.Millisecond), Queue: 500 * time.Microsecond}},
			Events: []tracing.Event{{Time: compatTime, Name: "n", Detail: "d"}}},
		&Trace{ID: "t-1", Seq: 1, Start: compatTime, End: compatTime.Add(time.Millisecond),
			Outcome: "fix", Degraded: true, Pinned: true,
			Spans: []TraceSpan{{Stage: "fuse", Reader: "r1", Tag: "e280",
				Start: compatTime, End: compatTime.Add(time.Millisecond), QueueNS: 500000}},
			Events: []TraceEvent{{Time: compatTime, Name: "n", Detail: "d"}}})

	pins(t,
		&tracing.Summary{ID: "t-1", Seq: 1, Start: compatTime, Duration: time.Millisecond,
			Outcome: "fix", Degraded: true, Pinned: true, Spans: 2, Events: 1},
		&TraceSummary{ID: "t-1", Seq: 1, Start: compatTime, DurationNS: 1000000,
			Outcome: "fix", Degraded: true, Pinned: true, Spans: 2, Events: 1})
}
