package api

import "time"

// The cluster control surface. Nodes (dwatchd -cluster) announce
// themselves to the gateway over three POST endpoints and learn their
// assigned environments from the responses; GET /api/v1/cluster on
// either side reports the current view.
//
//	POST /api/v1/cluster/join       JoinRequest      → HeartbeatResponse
//	POST /api/v1/cluster/heartbeat  HeartbeatRequest → HeartbeatResponse
//	POST /api/v1/cluster/leave      LeaveRequest     → LeaveResponse
//	GET  /api/v1/cluster                             → ClusterStatus

// NodeInfo is one cluster node as the directory sees it.
type NodeInfo struct {
	ID string `json:"id"`
	// Addr is the base URL of the node's serve plane, e.g.
	// "http://127.0.0.1:8081" — where the gateway proxies to.
	Addr string `json:"addr"`
	// Envs is the node's environment catalog: every deployment it is
	// able to host (the shared -env-dir contents).
	Envs []string `json:"envs,omitempty"`
	// Owned is the set of environments the node is actively serving.
	Owned    []string  `json:"owned,omitempty"`
	LastSeen time.Time `json:"last_seen,omitempty"`
}

// ClusterStatus is the GET /api/v1/cluster body. The gateway reports
// the whole directory; a node reports itself plus its last-known
// assignment.
type ClusterStatus struct {
	// Role is "gateway" or "node".
	Role string `json:"role"`
	// Node is the reporting node's own ID (role "node" only).
	Node string `json:"node,omitempty"`
	// Epoch increments on every membership or assignment change.
	Epoch uint64 `json:"epoch"`
	// Slots is the consistent-hash ring size environments map onto.
	Slots int        `json:"slots"`
	Nodes []NodeInfo `json:"nodes"`
	// Assignments maps environment ID → owning node ID.
	Assignments map[string]string `json:"assignments,omitempty"`
}

// JoinRequest announces a node to the gateway. Joining is idempotent:
// a restarted node re-joins under its ID and the directory replaces
// the stale entry.
type JoinRequest struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// Envs is the node's environment catalog (IDs only).
	Envs []string `json:"envs,omitempty"`
	// Owned is what the node is already serving (rejoin after a
	// gateway restart keeps ownership stable).
	Owned []string `json:"owned,omitempty"`
}

// HeartbeatRequest reports liveness and current ownership; the
// response is the node's marching orders.
type HeartbeatRequest struct {
	ID string `json:"id"`
	// Owned is the set of environments the node is actively serving —
	// the directory's ground truth for the two-phase handoff: an env is
	// granted to its new owner only after the old owner stops
	// reporting it here.
	Owned []string `json:"owned,omitempty"`
}

// HeartbeatResponse tells the node which environments it should be
// serving. The node reconciles: drains owned-but-unassigned envs,
// adopts assigned-but-unowned ones (WAL replay).
type HeartbeatResponse struct {
	Epoch uint64 `json:"epoch"`
	// Assigned is the full set of environments this node should own.
	// Envs mid-handoff (still reported owned by another node) are
	// withheld until the release completes.
	Assigned []string `json:"assigned"`
	// IntervalMS is the heartbeat cadence the gateway wants, in
	// milliseconds.
	IntervalMS int64 `json:"interval_ms"`
}

// LeaveRequest removes a node from the directory; its environments are
// reassigned to the survivors.
type LeaveRequest struct {
	ID string `json:"id"`
}

// LeaveResponse acknowledges a leave.
type LeaveResponse struct {
	Epoch uint64 `json:"epoch"`
}
