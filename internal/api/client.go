package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// Client is the typed /api/v1 consumer: every method hits one endpoint
// and decodes its contract type. The gateway, the smoke-script
// assertion tool, and the cluster agent are all built on it.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080" (no
	// trailing slash needed).
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Strict rejects response bodies carrying fields this package does
	// not know about — the smoke scripts' defense against silently
	// divergent wire shapes. Leave false for forward-compatible
	// consumers.
	Strict bool
}

// NewClient builds a client for a base URL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

// APIError is a decoded error envelope plus its HTTP status — what
// every client method returns when the server answered with the
// uniform {"error":{code,message}} body.
type APIError struct {
	Status  int
	Code    string
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("api: %d %s: %s", e.Status, e.Code, e.Message)
}

// ErrorCode extracts the envelope code from an error returned by a
// client method ("" when err is not an *APIError).
func ErrorCode(err error) string {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Code
	}
	return ""
}

// CodeEnvNotFound is the envelope code for a missing environment —
// the signal the gateway's retry-on-handoff path keys on.
const CodeEnvNotFound = "env_not_found"

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// envPath scopes an endpoint to an environment: env "" yields the
// legacy process-wide route, anything else the /api/v1/{env}/ form.
func envPath(env, endpoint string) string {
	if env == "" {
		return "/api/v1/" + endpoint
	}
	return "/api/v1/" + url.PathEscape(env) + "/" + endpoint
}

// decode unmarshals body bytes into v, honoring Strict.
func (c *Client) decode(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	if c.Strict {
		dec.DisallowUnknownFields()
	}
	return dec.Decode(v)
}

// do performs one request and decodes the response into out (skipped
// when out is nil). Non-2xx responses are decoded into *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var env Error
		if jerr := json.Unmarshal(data, &env); jerr == nil && env.Error.Code != "" {
			return &APIError{Status: resp.StatusCode, Code: env.Error.Code, Message: env.Error.Message}
		}
		return &APIError{Status: resp.StatusCode, Code: "http_error",
			Message: strings.TrimSpace(string(data))}
	}
	if out == nil {
		return nil
	}
	return c.decode(data, out)
}

// Envs fetches the environment listing.
func (c *Client) Envs(ctx context.Context) (EnvsResponse, error) {
	var out EnvsResponse
	err := c.do(ctx, http.MethodGet, "/api/v1/envs", nil, &out)
	return out, err
}

// Positions fetches the latest fix per environment. env "" uses the
// process-wide aggregate route.
func (c *Client) Positions(ctx context.Context, env string) (PositionsResponse, error) {
	var out PositionsResponse
	err := c.do(ctx, http.MethodGet, envPath(env, "positions"), nil, &out)
	return out, err
}

// EnvStats fetches one environment's pipeline snapshot (env "" hits
// the legacy single-deployment /api/v1/stats, which only decodes as a
// PipelineStats on a single-env daemon — use FleetStats on a fleet).
func (c *Client) EnvStats(ctx context.Context, env string) (PipelineStats, error) {
	var out PipelineStats
	err := c.do(ctx, http.MethodGet, envPath(env, "stats"), nil, &out)
	return out, err
}

// FleetStats fetches the aggregate per-environment stats map served by
// fleet-mode daemons and the gateway.
func (c *Client) FleetStats(ctx context.Context) (FleetStats, error) {
	var out FleetStats
	err := c.do(ctx, http.MethodGet, "/api/v1/stats", nil, &out)
	return out, err
}

// Health fetches the RF-health snapshot (env "" = process-wide).
func (c *Client) Health(ctx context.Context, env string) (RFHealth, error) {
	var out RFHealth
	err := c.do(ctx, http.MethodGet, envPath(env, "health"), nil, &out)
	return out, err
}

// Traces fetches the retained trace listing (env "" = process-wide).
func (c *Client) Traces(ctx context.Context, env string) (TracesResponse, error) {
	var out TracesResponse
	err := c.do(ctx, http.MethodGet, envPath(env, "traces"), nil, &out)
	return out, err
}

// Trace resolves one trace ID (env "" = process-wide).
func (c *Client) Trace(ctx context.Context, env, id string) (Trace, error) {
	var out Trace
	err := c.do(ctx, http.MethodGet, envPath(env, "traces/"+url.PathEscape(id)), nil, &out)
	return out, err
}

// WAL fetches the ingest WAL status (env "" = process-wide).
func (c *Client) WAL(ctx context.Context, env string) (WALStatus, error) {
	var out WALStatus
	err := c.do(ctx, http.MethodGet, envPath(env, "wal"), nil, &out)
	return out, err
}

// Ready fetches /readyz. Both 200 and 503 decode into the response
// (Ready reports which); other statuses surface as errors.
func (c *Client) Ready(ctx context.Context) (ReadyResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/readyz"), nil)
	if err != nil {
		return ReadyResponse{}, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return ReadyResponse{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return ReadyResponse{}, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return ReadyResponse{}, &APIError{Status: resp.StatusCode, Code: "http_error",
			Message: strings.TrimSpace(string(data))}
	}
	var out ReadyResponse
	if err := c.decode(data, &out); err != nil {
		return ReadyResponse{}, err
	}
	return out, nil
}

// Cluster fetches the cluster view (directory on a gateway, self view
// on a node).
func (c *Client) Cluster(ctx context.Context) (ClusterStatus, error) {
	var out ClusterStatus
	err := c.do(ctx, http.MethodGet, "/api/v1/cluster", nil, &out)
	return out, err
}

// Join announces a node to the gateway's directory.
func (c *Client) Join(ctx context.Context, req JoinRequest) (HeartbeatResponse, error) {
	var out HeartbeatResponse
	err := c.do(ctx, http.MethodPost, "/api/v1/cluster/join", req, &out)
	return out, err
}

// Heartbeat reports liveness/ownership and returns the node's
// assigned environment set.
func (c *Client) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	var out HeartbeatResponse
	err := c.do(ctx, http.MethodPost, "/api/v1/cluster/heartbeat", req, &out)
	return out, err
}

// Leave removes a node from the directory.
func (c *Client) Leave(ctx context.Context, req LeaveRequest) (LeaveResponse, error) {
	var out LeaveResponse
	err := c.do(ctx, http.MethodPost, "/api/v1/cluster/leave", req, &out)
	return out, err
}

// raw performs one GET and returns the body bytes verbatim — for
// endpoints whose payload is not JSON (Prometheus pages, pprof
// profiles). Non-2xx responses still decode the error envelope.
func (c *Client) raw(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var env Error
		if jerr := json.Unmarshal(data, &env); jerr == nil && env.Error.Code != "" {
			return nil, &APIError{Status: resp.StatusCode, Code: env.Error.Code, Message: env.Error.Message}
		}
		return nil, &APIError{Status: resp.StatusCode, Code: "http_error",
			Message: strings.TrimSpace(string(data))}
	}
	return data, nil
}

// Metrics fetches the server's /metrics page (Prometheus text format;
// on a gateway this is the federated, node-labeled union).
func (c *Client) Metrics(ctx context.Context) ([]byte, error) {
	return c.raw(ctx, "/metrics")
}

// NodeMetrics fetches one node's raw /metrics page through a gateway.
func (c *Client) NodeMetrics(ctx context.Context, node string) ([]byte, error) {
	return c.raw(ctx, "/api/v1/nodes/"+url.PathEscape(node)+"/metrics")
}

// ClusterHealth fetches the gateway's cluster-wide health rollup.
func (c *Client) ClusterHealth(ctx context.Context) (ClusterHealth, error) {
	var out ClusterHealth
	err := c.do(ctx, http.MethodGet, "/api/v1/cluster/health", nil, &out)
	return out, err
}

// Profiles lists the server's continuous-profiling ring.
func (c *Client) Profiles(ctx context.Context) (ProfilesResponse, error) {
	var out ProfilesResponse
	err := c.do(ctx, http.MethodGet, "/api/v1/profiles", nil, &out)
	return out, err
}

// Profile fetches one stored profile's raw pprof bytes.
func (c *Client) Profile(ctx context.Context, name string) ([]byte, error) {
	return c.raw(ctx, "/api/v1/profiles/"+url.PathEscape(name))
}

// NodeProfiles lists one node's profiling ring through a gateway.
func (c *Client) NodeProfiles(ctx context.Context, node string) (ProfilesResponse, error) {
	var out ProfilesResponse
	err := c.do(ctx, http.MethodGet, "/api/v1/nodes/"+url.PathEscape(node)+"/profiles", nil, &out)
	return out, err
}

// NodeProfile fetches one node's stored profile through a gateway.
func (c *Client) NodeProfile(ctx context.Context, node, name string) ([]byte, error) {
	return c.raw(ctx, "/api/v1/nodes/"+url.PathEscape(node)+"/profiles/"+url.PathEscape(name))
}

// WatchPositions consumes the SSE position stream for env ("" = the
// whole fleet), invoking fn for every "position" event with both the
// raw frame payload (the bytes the server published — forward these
// for a bit-identical pass-through) and the decoded Position. It
// returns nil when the stream ends cleanly, ctx.Err() on cancellation,
// and the transport or callback error otherwise.
func (c *Client) WatchPositions(ctx context.Context, env string, fn func(raw []byte, p Position) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(envPath(env, "positions")), nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		var envl Error
		if jerr := json.Unmarshal(data, &envl); jerr == nil && envl.Error.Code != "" {
			return &APIError{Status: resp.StatusCode, Code: envl.Error.Code, Message: envl.Error.Message}
		}
		return &APIError{Status: resp.StatusCode, Code: "http_error",
			Message: strings.TrimSpace(string(data))}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case strings.HasPrefix(line, ":"): // keepalive comment frame
		case line == "" && data != nil:
			var p Position
			if err := c.decode(data, &p); err != nil {
				return fmt.Errorf("api: bad position frame: %w", err)
			}
			if err := fn(data, p); err != nil {
				return err
			}
			data = nil
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	return nil
}
