// Package adapt converts the internal producer types (pipeline stats,
// RF health, WAL status, traces) into their internal/api wire mirrors.
// It is the one place the contract package's stdlib-only rule is
// bridged: package api never imports the DSP graph, so the daemons and
// the serve plane import adapt to produce api values from live
// subsystems. Every conversion is a field-by-field copy; the compat
// tests in internal/api pin both sides to identical JSON.
package adapt

import (
	"dwatch/internal/api"
	"dwatch/internal/health"
	"dwatch/internal/pipeline"
	"dwatch/internal/profiling"
	"dwatch/internal/stats"
	"dwatch/internal/tracing"
	"dwatch/internal/wal"
)

// Latency mirrors a histogram digest.
func Latency(h stats.HistogramSummary) api.LatencySummary {
	return api.LatencySummary{Count: h.Count, Mean: h.Mean, Min: h.Min, Max: h.Max,
		P50: h.P50, P90: h.P90, P99: h.P99}
}

// PipelineStats mirrors a pipeline snapshot.
func PipelineStats(s pipeline.Stats) api.PipelineStats {
	return api.PipelineStats{
		ReportsIn:          s.ReportsIn,
		ReportsRejected:    s.ReportsRejected,
		SnapshotsIn:        s.SnapshotsIn,
		SnapshotsDropped:   s.SnapshotsDropped,
		SpectraComputed:    s.SpectraComputed,
		SpectraFailed:      s.SpectraFailed,
		BaselinesConfirmed: s.BaselinesConfirmed,
		SequencesAssembled: s.SequencesAssembled,
		SequencesEvicted:   s.SequencesEvicted,
		LateReports:        s.LateReports,
		Fixes:              s.Fixes,
		DegradedFixes:      s.DegradedFixes,
		Misses:             s.Misses,
		QueueDepth:         s.QueueDepth,
		PendingSequences:   s.PendingSequences,
		ComputeLatency:     Latency(s.ComputeLatency),
		FuseLatency:        Latency(s.FuseLatency),
	}
}

// RFHealth mirrors an RF-health snapshot.
func RFHealth(s health.Snapshot) api.RFHealth {
	out := api.RFHealth{Readers: make([]api.ReaderHealth, len(s.Readers))}
	for i, r := range s.Readers {
		rh := api.ReaderHealth{ID: r.ID, CalibrationResidual: r.CalibrationResidual,
			Drifting: r.Drifting, Tags: make([]api.TagHealth, len(r.Tags))}
		for j, tg := range r.Tags {
			th := api.TagHealth{EPC: tg.EPC, Reads: tg.Reads, RateHz: tg.RateHz, LastSeen: tg.LastSeen}
			if len(tg.Paths) > 0 {
				th.Paths = make([]api.PathHealth, len(tg.Paths))
				for k, p := range tg.Paths {
					th.Paths[k] = api.PathHealth{AngleDeg: p.AngleDeg, Power: p.Power,
						Baseline: p.Baseline, Drift: p.Drift, LastSeen: p.LastSeen}
				}
			}
			rh.Tags[j] = th
		}
		out.Readers[i] = rh
	}
	return out
}

// WALStatus mirrors a WAL status snapshot.
func WALStatus(s wal.Status) api.WALStatus {
	out := api.WALStatus{
		Dir:           s.Dir,
		Fsync:         s.Fsync,
		Segments:      s.Segments,
		ActiveSegment: s.ActiveSegment,
		Bytes:         s.Bytes,
		NextSeq:       s.NextSeq,
		Appended:      s.Appended,
		AppendedBytes: s.AppendedBytes,
		Fsyncs:        s.Fsyncs,
		Rotations:     s.Rotations,
		Deleted:       s.Deleted,
		Recovered:     s.Recovered,
		Truncated:     s.Truncated,
		LastAppend:    s.LastAppend,
	}
	if s.Damage != nil {
		out.Damage = &api.WALDamage{Segment: s.Damage.Segment, Offset: s.Damage.Offset,
			Reason: s.Damage.Reason}
	}
	return out
}

// Trace mirrors one full trace record.
func Trace(d tracing.Data) api.Trace {
	out := api.Trace{ID: d.ID, Seq: d.Seq, Start: d.Start, End: d.End,
		Outcome: d.Outcome, Degraded: d.Degraded, Pinned: d.Pinned,
		Spans: make([]api.TraceSpan, len(d.Spans))}
	for i, sp := range d.Spans {
		out.Spans[i] = api.TraceSpan{Stage: sp.Stage, Reader: sp.Reader, Tag: sp.Tag,
			Start: sp.Start, End: sp.End, QueueNS: int64(sp.Queue)}
	}
	if len(d.Events) > 0 {
		out.Events = make([]api.TraceEvent, len(d.Events))
		for i, ev := range d.Events {
			out.Events[i] = api.TraceEvent{Time: ev.Time, Name: ev.Name, Detail: ev.Detail}
		}
	}
	return out
}

// TraceSummaries mirrors a trace listing.
func TraceSummaries(ss []tracing.Summary) []api.TraceSummary {
	out := make([]api.TraceSummary, len(ss))
	for i, s := range ss {
		out[i] = api.TraceSummary{ID: s.ID, Seq: s.Seq, Start: s.Start,
			DurationNS: int64(s.Duration), Outcome: s.Outcome, Degraded: s.Degraded,
			Pinned: s.Pinned, Spans: s.Spans, Events: s.Events}
	}
	return out
}

// Profiles mirrors a continuous-profiling ring listing.
func Profiles(infos []profiling.Info) []api.ProfileInfo {
	out := make([]api.ProfileInfo, len(infos))
	for i, p := range infos {
		out[i] = api.ProfileInfo{Name: p.Name, Kind: p.Kind, Time: p.Time, Bytes: p.Bytes}
	}
	return out
}
