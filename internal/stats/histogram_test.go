package stats

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(LatencyBounds())
	s := h.Summary()
	if s.Count != 0 || s.Mean != 0 || s.P50 != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	s := h.Summary()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.Min != 3 || s.Max != 3 {
		t.Fatalf("min/max = %v/%v, want 3/3", s.Min, s.Max)
	}
	// All mass in one bucket with min==max: quantiles clamp to the
	// observed value exactly.
	if s.P50 != 3 || s.P90 != 3 || s.P99 != 3 {
		t.Fatalf("quantiles not clamped to 3: %+v", s)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	h := NewHistogram(LatencyBounds())
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 1e-5)
	}
	s := h.Summary()
	if !(s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max) {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
	// P50 of a uniform 10µs..10ms sample should sit well inside the
	// range, not at an edge.
	if s.P50 <= s.Min || s.P50 >= s.Max {
		t.Fatalf("P50 %v at edge [%v, %v]", s.P50, s.Min, s.Max)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(LatencyBounds())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.ObserveDuration(time.Duration(g*i+1) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Summary().Count; got != 8*500 {
		t.Fatalf("count = %d, want %d", got, 8*500)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds did not panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}

// TestHistogramBuckets checks the raw export used by the Prometheus
// exposition writer: copied slices, per-bucket (non-cumulative)
// counts, and the trailing overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	b := h.Buckets()
	if len(b.Bounds) != 3 || len(b.Counts) != 4 {
		t.Fatalf("shape = %d bounds / %d counts", len(b.Bounds), len(b.Counts))
	}
	want := []uint64{1, 2, 1, 1}
	for i, c := range want {
		if b.Counts[i] != c {
			t.Fatalf("counts = %v, want %v", b.Counts, want)
		}
	}
	if b.Count != 5 || b.Sum != 106.5 {
		t.Fatalf("count/sum = %d/%v, want 5/106.5", b.Count, b.Sum)
	}
	// The export is a snapshot: mutating it must not touch the histogram.
	b.Counts[0] = 99
	if h.Buckets().Counts[0] != 1 {
		t.Fatal("Buckets returned live state")
	}
}
