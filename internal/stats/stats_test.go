package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if m, err := Mean([]float64{1, 2, 3, 4}); err != nil || m != 2.5 {
		t.Errorf("Mean = %v, %v", m, err)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: %v", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil || math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v (%v), want %v", c.p, got, err, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Percentile sorted the input in place")
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Error("empty must error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("out-of-range p must error")
	}
	if got, _ := Percentile([]float64{7}, 90); got != 7 {
		t.Errorf("single sample = %v", got)
	}
}

func TestMedianOdd(t *testing.T) {
	if m, _ := Median([]float64{9, 1, 5}); m != 5 {
		t.Errorf("Median = %v", m)
	}
}

func TestStdDev(t *testing.T) {
	s, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", s, want)
	}
	if _, err := StdDev([]float64{1}); !errors.Is(err, ErrEmpty) {
		t.Error("n<2 must error")
	}
}

func TestCDF(t *testing.T) {
	c := CDF([]float64{3, 1, 2})
	if len(c) != 3 {
		t.Fatalf("len = %d", len(c))
	}
	if c[0].Value != 1 || math.Abs(c[0].P-1.0/3) > 1e-12 {
		t.Errorf("c[0] = %+v", c[0])
	}
	if c[2].Value != 3 || c[2].P != 1 {
		t.Errorf("c[2] = %+v", c[2])
	}
	if CDF(nil) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(xs []float64) bool {
		c := CDF(xs)
		for i := 1; i < len(c); i++ {
			if c[i].Value < c[i-1].Value || c[i].P <= c[i-1].P {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestHumanError(t *testing.T) {
	if HumanError(0.2) != 0 {
		t.Error("inside extent should be 0")
	}
	if HumanError(0.36) != 0 {
		t.Error("boundary should be 0")
	}
	if got := HumanError(0.5); math.Abs(got-0.14) > 1e-12 {
		t.Errorf("HumanError(0.5) = %v", got)
	}
}

func TestCollector(t *testing.T) {
	var c Collector
	c.AddError(0.1)
	c.AddError(0.3)
	c.AddError(0.2)
	c.AddMiss()
	s, err := c.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 {
		t.Errorf("N = %d", s.N)
	}
	if math.Abs(s.Coverage-0.75) > 1e-12 {
		t.Errorf("Coverage = %v", s.Coverage)
	}
	if math.Abs(s.Median-0.2) > 1e-12 || math.Abs(s.Mean-0.2) > 1e-12 {
		t.Errorf("Median/Mean = %v/%v", s.Median, s.Mean)
	}
	if s.Max != 0.3 {
		t.Errorf("Max = %v", s.Max)
	}
}

func TestCollectorEmpty(t *testing.T) {
	var c Collector
	if _, err := c.Summarize(); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v", err)
	}
	c.AddMiss()
	s, err := c.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Coverage != 0 || s.N != 0 {
		t.Errorf("all-miss summary = %+v", s)
	}
}
