// Package stats provides the summary statistics and error metrics the
// D-Watch evaluation reports: medians, percentiles, CDFs, and the
// paper's human-extent error rule (Section 6.2: a human target is 32-40
// cm wide, so any estimate within 36 cm of the true centre counts as
// zero error; beyond that, the error is the distance to the 36 cm
// disc).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic of an empty sample is requested.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) with linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of [0,100]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Median returns the 50th percentile.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	m, _ := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1)), nil
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value float64
	P     float64 // cumulative probability in (0, 1]
}

// CDF returns the empirical CDF of the sample.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, v := range s {
		out[i] = CDFPoint{Value: v, P: float64(i+1) / float64(len(s))}
	}
	return out
}

// HumanExtent is the paper's 36 cm rule radius.
const HumanExtent = 0.36

// HumanError applies Section 6.2's rule to a raw distance-to-centre
// error: distances within HumanExtent count as zero; beyond it, the
// excess over HumanExtent is the error.
func HumanError(dist float64) float64 {
	if dist <= HumanExtent {
		return 0
	}
	return dist - HumanExtent
}

// Summary bundles the error statistics the paper tables report.
type Summary struct {
	N        int
	Mean     float64
	Median   float64
	P90      float64
	Max      float64
	Coverage float64 // fraction of attempts that produced a fix
}

// Collector accumulates localization errors and coverage.
type Collector struct {
	errs     []float64
	attempts int
}

// AddError records a successful fix's error.
func (c *Collector) AddError(e float64) {
	c.errs = append(c.errs, e)
	c.attempts++
}

// AddMiss records an attempt with no fix (deadzone / not covered).
func (c *Collector) AddMiss() { c.attempts++ }

// Errors returns the recorded errors (not a copy).
func (c *Collector) Errors() []float64 { return c.errs }

// Summarize computes the summary statistics.
func (c *Collector) Summarize() (Summary, error) {
	if c.attempts == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(c.errs)}
	s.Coverage = float64(len(c.errs)) / float64(c.attempts)
	if len(c.errs) == 0 {
		return s, nil
	}
	s.Mean, _ = Mean(c.errs)
	s.Median, _ = Median(c.errs)
	s.P90, _ = Percentile(c.errs, 90)
	for _, e := range c.errs {
		if e > s.Max {
			s.Max = e
		}
	}
	return s, nil
}
