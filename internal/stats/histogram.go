package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram is a fixed-bucket histogram safe for concurrent Observe
// calls, sized for latency tracking in the streaming pipeline: the
// bucket layout is immutable after construction, so recording is one
// binary search plus a counter bump under a short lock, with no
// per-sample allocation.
//
// Bounds are bucket upper edges in ascending order; a sample lands in
// the first bucket whose bound is ≥ the value, with one implicit
// overflow bucket above the last bound.
type Histogram struct {
	bounds []float64

	mu     sync.Mutex
	counts []uint64
	sum    float64
	min    float64
	max    float64
	n      uint64
}

// NewHistogram creates a histogram with the given ascending bucket
// upper bounds. It panics on an empty or unsorted layout — bucket
// layouts are static program data, not runtime input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// LatencyBounds is an exponential layout from 1 µs to ~10 s expressed
// in seconds, suitable for NewHistogram when observing durations via
// ObserveDuration.
func LatencyBounds() []float64 {
	var b []float64
	for v := 1e-6; v < 10; v *= 2 {
		b = append(b, v)
	}
	return b
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSummary is a point-in-time digest of a Histogram.
type HistogramSummary struct {
	Count    uint64
	Mean     float64
	Min      float64
	Max      float64
	P50, P90 float64
	P99      float64
}

// Summary digests the histogram. Quantiles are estimated by linear
// interpolation inside the winning bucket and clamped to the observed
// min/max, so they are exact for single-bucket data and never invent
// values outside the observed range.
func (h *Histogram) Summary() HistogramSummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSummary{Count: h.n, Min: h.min, Max: h.max}
	if h.n == 0 {
		return s
	}
	s.Mean = h.sum / float64(h.n)
	s.P50 = h.quantileLocked(0.50)
	s.P90 = h.quantileLocked(0.90)
	s.P99 = h.quantileLocked(0.99)
	return s
}

// Buckets is a raw dump of a Histogram's state: the immutable bucket
// upper edges and the per-bucket sample counts, plus the running sum
// and total. Counts has len(Bounds)+1 entries — the last is the
// implicit overflow bucket above the final bound. This is the export
// shape Prometheus-style exposition writers need (cumulate the counts,
// append a +Inf bucket).
type Buckets struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Buckets snapshots the histogram's buckets under the lock. The
// returned slices are copies and safe to retain.
func (h *Histogram) Buckets() Buckets {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Buckets{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.n,
	}
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1).
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo, hi := h.bucketEdges(i)
			frac := 0.5
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			v := lo + frac*(hi-lo)
			return math.Min(math.Max(v, h.min), h.max)
		}
		cum = next
	}
	return h.max
}

// bucketEdges returns the [lo, hi] value range of bucket i, clamping
// the open-ended edges to the observed extremes.
func (h *Histogram) bucketEdges(i int) (lo, hi float64) {
	if i == 0 {
		lo = h.min
	} else {
		lo = h.bounds[i-1]
	}
	if i >= len(h.bounds) {
		hi = h.max
	} else {
		hi = h.bounds[i]
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}
