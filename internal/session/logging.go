package session

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
)

// nopLogger swallows everything; the supervisor logs through it when no
// sink is configured so call sites stay unconditional.
var nopLogger = slog.New(nopHandler{})

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// logfHandler adapts a printf-style sink to slog for WithLogf callers:
// each record renders as "msg key=value ..." through the legacy fn.
type logfHandler struct {
	fn     func(format string, args ...any)
	prefix string // accumulated group prefix ("grp.")
	attrs  []slog.Attr
}

func (h logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h logfHandler) Handle(_ context.Context, r slog.Record) error {
	var sb strings.Builder
	sb.WriteString(r.Message)
	for _, a := range h.attrs {
		fmt.Fprintf(&sb, " %s=%v", a.Key, a.Value)
	}
	r.Attrs(func(a slog.Attr) bool {
		fmt.Fprintf(&sb, " %s%s=%v", h.prefix, a.Key, a.Value)
		return true
	})
	h.fn("%s", sb.String())
	return nil
}

func (h logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	// The group prefix applies at bind time, so attrs bound before a
	// WithGroup keep their bare keys.
	bound := append([]slog.Attr(nil), h.attrs...)
	for _, a := range attrs {
		bound = append(bound, slog.Attr{Key: h.prefix + a.Key, Value: a.Value})
	}
	h.attrs = bound
	return h
}

func (h logfHandler) WithGroup(name string) slog.Handler {
	h.prefix = h.prefix + name + "."
	return h
}
