package session

import (
	"context"
	"log/slog"
)

// nopLogger swallows everything; the supervisor logs through it when no
// sink is configured so call sites stay unconditional.
var nopLogger = slog.New(nopHandler{})

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
