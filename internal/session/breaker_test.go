package session

import (
	"testing"
	"time"
)

// TestBreakerLifecycle walks the breaker through the full state machine:
// closed absorbs failures below the threshold, opens at the threshold,
// rejects attempts during the cooldown, half-opens after it, and the
// probe's outcome decides between closing and re-opening.
func TestBreakerLifecycle(t *testing.T) {
	var transitions []string
	b := newBreaker(3, 100*time.Millisecond)
	b.onTransition = func(to breakerState) { transitions = append(transitions, to.String()) }
	now := time.Unix(0, 0)

	// Closed: attempts always allowed; failures below threshold keep it closed.
	for i := 0; i < 2; i++ {
		if ok, _ := b.allow(now); !ok {
			t.Fatalf("closed breaker rejected attempt %d", i)
		}
		b.failure(now)
		if b.state != breakerClosed {
			t.Fatalf("opened after %d failures, threshold is 3", i+1)
		}
	}

	// Third consecutive failure opens it.
	b.failure(now)
	if b.state != breakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", b.state)
	}

	// During the cooldown attempts are rejected with the remaining wait.
	ok, wait := b.allow(now.Add(40 * time.Millisecond))
	if ok {
		t.Fatal("open breaker allowed attempt inside cooldown")
	}
	if want := 60 * time.Millisecond; wait != want {
		t.Fatalf("cooldown wait = %v, want %v", wait, want)
	}

	// Past the cooldown the next attempt is the half-open probe.
	if ok, _ := b.allow(now.Add(150 * time.Millisecond)); !ok {
		t.Fatal("breaker did not half-open after cooldown")
	}
	if b.state != breakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.state)
	}

	// Probe failure re-opens immediately (no threshold accumulation).
	b.failure(now.Add(160 * time.Millisecond))
	if b.state != breakerOpen {
		t.Fatalf("state after probe failure = %v, want open", b.state)
	}

	// Second probe succeeds: breaker closes and the streak resets.
	if ok, _ := b.allow(now.Add(300 * time.Millisecond)); !ok {
		t.Fatal("breaker did not half-open for second probe")
	}
	b.success()
	if b.state != breakerClosed || b.failures != 0 {
		t.Fatalf("state=%v failures=%d after probe success, want closed/0", b.state, b.failures)
	}

	want := []string{"open", "half-open", "open", "half-open", "closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q (full: %v)", i, transitions[i], want[i], transitions)
		}
	}
}

// TestBreakerSuccessResetsStreak verifies a success between failures
// clears the consecutive count, so intermittent flaps don't open it.
func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := newBreaker(2, time.Second)
	now := time.Unix(0, 0)
	b.failure(now)
	b.success()
	b.failure(now)
	if b.state != breakerClosed {
		t.Fatal("breaker opened despite interleaved success")
	}
	b.failure(now)
	if b.state != breakerOpen {
		t.Fatal("breaker did not open after two consecutive failures")
	}
}
