package session

import "time"

// breakerState is the classic three-state circuit breaker: closed
// (attempts flow), open (attempts rejected until the cooldown expires),
// half-open (exactly one probe in flight; its outcome decides).
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is a per-reader circuit breaker. It is driven from a single
// session goroutine, so it needs no lock; observers see its state only
// through the supervisor's status table.
type breaker struct {
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open → half-open delay

	state    breakerState
	failures int
	openedAt time.Time

	// onTransition, when set, observes every state change (metrics).
	onTransition func(to breakerState)
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a connection attempt may proceed now. When the
// breaker is open and cooling down it returns false and how long until
// the half-open probe unlocks. An allowed attempt from the open state
// transitions to half-open (the probe).
func (b *breaker) allow(now time.Time) (bool, time.Duration) {
	switch b.state {
	case breakerClosed, breakerHalfOpen:
		return true, 0
	default: // open
		if wait := b.cooldown - now.Sub(b.openedAt); wait > 0 {
			return false, wait
		}
		b.transition(breakerHalfOpen)
		return true, 0
	}
}

// success records a successful connection: the breaker closes and the
// failure streak resets.
func (b *breaker) success() {
	b.failures = 0
	if b.state != breakerClosed {
		b.transition(breakerClosed)
	}
}

// failure records a failed attempt at the given time. A half-open
// probe's failure re-opens immediately; in the closed state the breaker
// opens once the consecutive-failure threshold is reached.
func (b *breaker) failure(now time.Time) {
	b.failures++
	switch b.state {
	case breakerHalfOpen:
		b.openedAt = now
		b.transition(breakerOpen)
	case breakerClosed:
		if b.failures >= b.threshold {
			b.openedAt = now
			b.transition(breakerOpen)
		}
	}
}

func (b *breaker) transition(to breakerState) {
	b.state = to
	if b.onTransition != nil {
		b.onTransition(to)
	}
}
