package session

import (
	"fmt"
	"log/slog"
	"strings"
	"testing"
)

// TestLogfHandlerRendersRecords: the WithLogf shim renders structured
// records as "msg key=value ..." lines through the legacy sink,
// including bound attrs and group prefixes.
func TestLogfHandlerRendersRecords(t *testing.T) {
	var lines []string
	l := slog.New(logfHandler{fn: func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}})
	l.Warn("connection lost", "reader", "r1", "error", "EOF")
	l.With("reader", "r2").WithGroup("backoff").Info("retry", "attempt", 3)
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "connection lost reader=r1 error=EOF" {
		t.Fatalf("line 0 = %q", lines[0])
	}
	if !strings.Contains(lines[1], "retry") || !strings.Contains(lines[1], "reader=r2") ||
		!strings.Contains(lines[1], "backoff.attempt=3") {
		t.Fatalf("line 1 = %q", lines[1])
	}
}

// TestSupervisorDefaultLoggerIsNop: with no sink configured, logging
// goes to the silent logger rather than panicking on nil.
func TestSupervisorDefaultLoggerIsNop(t *testing.T) {
	s := &Supervisor{}
	s.log().Error("must not panic", "reader", "x")
	if s.log() != nopLogger {
		t.Fatal("unconfigured supervisor does not use the nop logger")
	}
}
