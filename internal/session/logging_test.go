package session

import (
	"testing"
)

// TestSupervisorDefaultLoggerIsNop: with no sink configured, logging
// goes to the silent logger rather than panicking on nil.
func TestSupervisorDefaultLoggerIsNop(t *testing.T) {
	s := &Supervisor{}
	s.log().Error("must not panic", "reader", "x")
	if s.log() != nopLogger {
		t.Fatal("unconfigured supervisor does not use the nop logger")
	}
}
