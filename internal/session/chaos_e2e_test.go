package session

import (
	"sort"
	"sync"
	"testing"
	"time"

	"dwatch/internal/geom"
	"dwatch/internal/llrp"
	"dwatch/internal/pipeline"
	"dwatch/internal/rf"
	"dwatch/internal/sim"
)

// chaosPositions is a walk through spots the 4-reader hall deployment
// covers both with all four views and with the three survivors after
// reader-4 (right wall) dies — verified against the deployment's
// deadzone map. Coverage holes are real (Section 8), so the chaos test
// must walk where fusion can actually produce fixes in both modes.
func chaosPositions() []geom.Point {
	z := 1.25 // hall ArrayZ
	return []geom.Point{
		geom.Pt(4.0, 2.0, z), geom.Pt(4.0, 3.0, z), geom.Pt(3.0, 3.0, z),
		geom.Pt(3.0, 4.0, z), geom.Pt(3.0, 6.0, z), geom.Pt(3.0, 7.0, z),
		geom.Pt(2.0, 6.0, z),
	}
}

const (
	chaosWalkRounds = 7
	chaosSnapshots  = 4
	// killAfter is the number of rounds delivered to every reader before
	// the victim dies; reviveAfter is when it comes back. Rounds in
	// [killAfter, reviveAfter) reach only the survivors.
	chaosKillAfter   = 4 // 2 baseline + 2 healthy walk rounds
	chaosReviveAfter = 6
)

// chaosResult captures one full run through the supervised stack.
type chaosResult struct {
	fixes map[uint32]pipeline.Fix
	stats pipeline.Stats
}

// runChaosScenario drives pre-generated LLRP rounds through real TCP:
// simulated reader endpoints → (optionally faulty) supervisor sessions →
// pipeline. With flap set, the last reader is stopped after
// chaosKillAfter rounds and restarted on the same port before round
// chaosReviveAfter; the rounds in between are delivered only to the
// survivors and must fuse degraded via the live-quorum oracle.
func runChaosScenario(t *testing.T, sc *sim.Scenario, rounds []sim.LLRPRound, flap bool, faults *FaultConfig) chaosResult {
	t.Helper()

	var eps []Endpoint
	var sims []*sim.ReaderEndpoint
	for _, rd := range sc.Readers {
		e := sim.NewReaderEndpoint(rd.ID, rd.Array.Elements)
		addr, err := e.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer e.Stop()
		sims = append(sims, e)
		eps = append(eps, Endpoint{ID: rd.ID, Addr: addr.String()})
	}

	var p *pipeline.Pipeline
	// Keepalive knobs are looser than fastOptions: spectrum compute on a
	// loaded (or race-instrumented) box can starve the read pump for
	// hundreds of milliseconds, and a false-positive kill here would
	// silently drop an in-flight report.
	opts := []Option{
		WithKeepalive(llrp.KeepaliveOptions{
			Interval: 100 * time.Millisecond, Timeout: 300 * time.Millisecond, Missed: 5,
		}),
		WithBackoff(llrp.BackoffOptions{Base: 10 * time.Millisecond, Cap: 100 * time.Millisecond}),
		WithBreaker(3, 200*time.Millisecond),
		WithJitterSeed(1),
		WithHandler(func(rep *llrp.ROAccessReport) error { return p.Ingest(rep) }),
		WithOnState(func(string, State) { p.NotifyLiveChange() }),
	}
	if faults != nil {
		opts = append(opts, WithFaults(*faults))
	}
	sup, err := New(eps, opts...)
	if err != nil {
		t.Fatal(err)
	}

	arrays := map[string]*rf.Array{}
	for _, rd := range sc.Readers {
		arrays[rd.ID] = rd.Array
	}
	p, err = pipeline.New(pipeline.Deployment{Arrays: arrays, Grid: sc.Grid},
		pipeline.WithWorkers(2),
		// A long TTL proves the degraded path — not eviction — rescues
		// the outage rounds.
		pipeline.WithSeqTTL(time.Minute),
		pipeline.WithLiveReaders(sup.Live),
	)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	fixes := map[uint32]pipeline.Fix{}
	fixesDone := make(chan struct{})
	go func() {
		defer close(fixesDone)
		for fix := range p.Fixes() {
			mu.Lock()
			fixes[fix.Seq] = fix
			mu.Unlock()
		}
	}()

	p.Start()
	sup.Start()
	defer sup.Stop()
	waitFor(t, "all sessions up", 10*time.Second, func() bool {
		if len(sup.Live()) != len(eps) {
			return false
		}
		for _, e := range sims {
			if !e.Streaming() {
				return false
			}
		}
		return true
	})

	victim := sims[len(sims)-1]
	countFixes := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(fixes)
	}
	for i, rd := range rounds {
		if flap && i == chaosKillAfter {
			victim.Stop()
			waitFor(t, "victim detected down", 10*time.Second, func() bool {
				return len(sup.Live()) == len(eps)-1 && sup.Degraded()
			})
		}
		if flap && i == chaosReviveAfter {
			if _, err := victim.Start(victim.Addr()); err != nil {
				t.Fatal(err)
			}
			waitFor(t, "victim reconnected", 10*time.Second, func() bool {
				return len(sup.Live()) == len(eps) && !sup.Degraded() && victim.Streaming()
			})
		}
		for _, e := range sims {
			if err := e.Broadcast(rd.Payloads[e.ID]); err != nil && !(flap && e == victim) {
				t.Fatalf("round %d: broadcast to %s: %v", i, e.ID, err)
			}
		}
		// Serialize on each round's outcome before sending the next: on
		// outage rounds this proves the degraded path — not TTL eviction
		// or the victim's return — produced the fix, and everywhere it
		// keeps slow spectrum compute from backing up the read pumps.
		// Seq is 1-based over all rounds; baselines emit no fix.
		if i == 1 {
			waitFor(t, "baselines confirmed", 60*time.Second, func() bool {
				return p.Stats().BaselinesConfirmed == uint64(len(sc.Readers))
			})
		}
		if i >= 2 {
			seq := uint32(i + 1)
			waitFor(t, "fix for round "+string(rune('0'+i)), 60*time.Second, func() bool {
				mu.Lock()
				defer mu.Unlock()
				_, ok := fixes[seq]
				return ok
			})
		}
	}
	if countFixes() != chaosWalkRounds {
		t.Fatalf("emitted %d fixes, want %d", countFixes(), chaosWalkRounds)
	}
	sup.Stop()
	p.Drain()
	<-fixesDone
	return chaosResult{fixes: fixes, stats: p.Stats()}
}

// TestChaosEndToEnd is the headline fault-tolerance test: a clean run
// and a chaos run (fault-injected links, one reader killed and
// restarted mid-walk) over the *same* pre-generated report bytes.
// During the outage the pipeline emits degraded two-view fixes instead
// of stalling; after recovery its fixes are bit-identical to the clean
// run's. Run under -race via `make chaos`.
func TestChaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e is slow; skipped with -short")
	}
	sc, err := sim.Build(sim.HallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// One set of report payloads shared by both runs: determinism of the
	// comparison depends on byte-identical inputs.
	rounds, err := sim.GenerateLLRPRoundsAt(sc, chaosPositions(), chaosSnapshots)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != chaosWalkRounds+2 {
		t.Fatalf("generated %d rounds, want %d", len(rounds), chaosWalkRounds+2)
	}

	clean := runChaosScenario(t, sc, rounds, false, nil)
	// Delay faults only: they stress timing without corrupting frames,
	// so the delivered bytes — and therefore the fixes — stay identical.
	chaos := runChaosScenario(t, sc, rounds, true, &FaultConfig{
		Seed: 99, DelayProb: 0.15, MaxDelay: 2 * time.Millisecond,
	})

	if len(clean.fixes) != chaosWalkRounds || len(chaos.fixes) != chaosWalkRounds {
		t.Fatalf("fix counts: clean=%d chaos=%d, want %d each",
			len(clean.fixes), len(chaos.fixes), chaosWalkRounds)
	}

	var seqs []int
	for seq := range chaos.fixes {
		seqs = append(seqs, int(seq))
	}
	sort.Ints(seqs)
	allReaders := make([]string, 0, len(sc.Readers))
	for _, rd := range sc.Readers {
		allReaders = append(allReaders, rd.ID)
	}
	sort.Strings(allReaders)
	victimID := sc.Readers[len(sc.Readers)-1].ID

	for _, s := range seqs {
		seq := uint32(s)
		cf, hf := chaos.fixes[seq], clean.fixes[seq]
		if hf.Err != nil {
			t.Fatalf("clean run seq %d failed: %v", seq, hf.Err)
		}
		if hf.Degraded {
			t.Fatalf("clean run seq %d marked degraded", seq)
		}
		outage := s > chaosKillAfter && s <= chaosReviveAfter
		if outage {
			if cf.Err != nil {
				t.Fatalf("outage seq %d: no fix (%v), want degraded fix", seq, cf.Err)
			}
			if !cf.Degraded || cf.Views != len(sc.Readers)-1 {
				t.Fatalf("outage seq %d: degraded=%v views=%d, want degraded 2-view fix",
					seq, cf.Degraded, cf.Views)
			}
			for _, id := range cf.Readers {
				if id == victimID {
					t.Fatalf("outage seq %d lists dead reader %s as contributing", seq, victimID)
				}
			}
			continue
		}
		// Healthy rounds — including every post-recovery one — must match
		// the clean run bit for bit.
		if cf.Err != nil {
			t.Fatalf("seq %d: chaos run fix failed: %v", seq, cf.Err)
		}
		if cf.Degraded {
			t.Fatalf("seq %d: spuriously degraded outside the outage window", seq)
		}
		if cf.Pos != hf.Pos || cf.Confidence != hf.Confidence || cf.Views != hf.Views {
			t.Fatalf("seq %d: chaos fix (%v conf %v views %d) != clean fix (%v conf %v views %d)",
				seq, cf.Pos, cf.Confidence, cf.Views, hf.Pos, hf.Confidence, hf.Views)
		}
		if len(cf.Readers) != len(allReaders) {
			t.Fatalf("seq %d: contributing readers %v, want %v", seq, cf.Readers, allReaders)
		}
	}

	if chaos.stats.DegradedFixes != uint64(chaosReviveAfter-chaosKillAfter) {
		t.Fatalf("DegradedFixes = %d, want %d",
			chaos.stats.DegradedFixes, chaosReviveAfter-chaosKillAfter)
	}
	if clean.stats.DegradedFixes != 0 {
		t.Fatalf("clean run recorded %d degraded fixes", clean.stats.DegradedFixes)
	}
	if chaos.stats.SequencesEvicted != 0 {
		t.Fatalf("chaos run evicted %d sequences; degraded fusion should have rescued them",
			chaos.stats.SequencesEvicted)
	}
}
