// Package session is the fault-tolerant reader-session layer between
// internal/llrp and internal/pipeline: where dwatchd used to trust
// every reader TCP connection to live forever, a session.Supervisor
// owns one supervised Session per expected reader and treats dropout
// as the common case.
//
// Each session runs a small state machine:
//
//	          dial+handshake ok
//	connecting ────────────────▶ up ──▶ (keepalive misses / read error)
//	    ▲  │ fail                         │
//	    │  ▼                              ▼
//	  backoff ◀──────────────────────── down
//	    │  ▲
//	    ▼  │ breaker open (consecutive failures)
//	 half-open probe (one attempt after cooldown)
//
// Liveness is probed with periodic LLRP KEEPALIVEs; a configurable
// number of consecutive unacknowledged probes declares the reader
// down. Reconnects use jittered exponential backoff
// (llrp.BackoffOptions), and every reader is wrapped in a circuit
// breaker so a persistently dead endpoint is probed at the cooldown
// cadence instead of hammered. The supervisor publishes the live
// reader set — the seam the pipeline's quorum-degraded fusion and the
// /readyz endpoint consume — and, when a metrics registry is attached,
// exports dwatch_reader_state, dwatch_reconnects_total,
// dwatch_breaker_transitions_total, and backoff spans.
package session

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dwatch/internal/llrp"
	"dwatch/internal/obs"
)

// Breaker defaults: three consecutive failed connection attempts open
// the breaker; a half-open probe unlocks after the cooldown.
const (
	defaultBreakerThreshold = 3
	defaultBreakerCooldown  = 2 * time.Second
)

// State is a session's externally visible condition.
type State int

const (
	// StateDown: no usable connection (initial, after loss, or while
	// the breaker cools down).
	StateDown State = iota
	// StateConnecting: a dial + handshake attempt is in flight.
	StateConnecting
	// StateHalfOpen: the circuit breaker is letting one probe attempt
	// through after its cooldown.
	StateHalfOpen
	// StateUp: connected, handshaken, keepalives acknowledged.
	StateUp
)

func (s State) String() string {
	switch s {
	case StateDown:
		return "down"
	case StateConnecting:
		return "connecting"
	case StateHalfOpen:
		return "half-open"
	case StateUp:
		return "up"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Code renders the state as the numeric gauge value exported on
// dwatch_reader_state (0=down 1=connecting 2=half-open 3=up).
func (s State) Code() float64 { return float64(s) }

// Endpoint names one expected reader and where to reach it.
type Endpoint struct {
	// ID is the deployment reader ID; the capabilities handshake must
	// confirm it or the connection is rejected.
	ID string
	// Addr is the reader's LLRP TCP address.
	Addr string
}

// Status is a point-in-time snapshot of one session.
type Status struct {
	ID    string
	Addr  string
	State State
	// Since is when the session entered its current state.
	Since time.Time
	// Attempts counts consecutive failed connection attempts since the
	// last successful connect.
	Attempts int
	// Reconnects counts successful re-establishments after the first
	// connect.
	Reconnects uint64
	// LastError describes the most recent failure ("" when none).
	LastError string
}

// Errors.
var (
	ErrNoEndpoints  = errors.New("session: no endpoints configured")
	ErrDuplicateID  = errors.New("session: duplicate endpoint ID")
	ErrWrongReader  = errors.New("session: endpoint identified as a different reader")
	ErrBadHandshake = errors.New("session: handshake failed")
)

// config is assembled by the functional options.
type config struct {
	keepalive        llrp.KeepaliveOptions
	backoff          llrp.BackoffOptions
	breakerThreshold int
	breakerCooldown  time.Duration
	rospec           llrp.ROSpec
	dialer           func(ctx context.Context, addr string) (net.Conn, error)
	handler          func(*llrp.ROAccessReport) error
	onState          func(id string, st State)
	checkCaps        func(*llrp.ReaderCapabilities) error
	obs              *obs.Registry
	logger           *slog.Logger
	jitterSeed       int64
	jitterSeedSet    bool
}

// Option configures a Supervisor.
type Option func(*config)

// WithKeepalive sets the liveness-probe cadence (interval, per-probe
// timeout, missed-ack threshold). Unset fields inherit the llrp
// defaults.
func WithKeepalive(o llrp.KeepaliveOptions) Option {
	return func(c *config) { c.keepalive = o }
}

// WithBackoff sets the reconnect backoff schedule.
func WithBackoff(o llrp.BackoffOptions) Option {
	return func(c *config) { c.backoff = o }
}

// WithBreaker tunes the per-reader circuit breaker: threshold
// consecutive failures open it, and a half-open probe is allowed after
// cooldown. Zero values keep the defaults.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *config) {
		c.breakerThreshold = threshold
		c.breakerCooldown = cooldown
	}
}

// WithROSpec sets the reader-operation spec installed after each
// handshake. Default: ID 1, 100 ms period, 10 snapshots per tag (the
// paper's cadence).
func WithROSpec(spec llrp.ROSpec) Option {
	return func(c *config) { c.rospec = spec }
}

// WithDialer replaces the raw transport dialer — the seam for fault
// injection (see FaultDialer) and for tests.
func WithDialer(d func(ctx context.Context, addr string) (net.Conn, error)) Option {
	return func(c *config) { c.dialer = d }
}

// WithFaults wraps the transport in the deterministic fault injector.
// Shorthand for WithDialer(FaultDialer(cfg)).
func WithFaults(fc FaultConfig) Option {
	return func(c *config) { c.dialer = FaultDialer(fc) }
}

// WithHandler sets the report sink — typically a closure over
// pipeline.Ingest. A nil handler discards reports.
func WithHandler(fn func(*llrp.ROAccessReport) error) Option {
	return func(c *config) { c.handler = fn }
}

// WithOnState registers a state-change observer, invoked outside the
// supervisor's lock (safe to call back into Supervisor methods). The
// pipeline's NotifyLiveChange hangs off this.
func WithOnState(fn func(id string, st State)) Option {
	return func(c *config) { c.onState = fn }
}

// WithCapabilitiesCheck validates the handshake's capabilities beyond
// the built-in reader-ID match (e.g. antenna count vs deployment).
func WithCapabilitiesCheck(fn func(*llrp.ReaderCapabilities) error) Option {
	return func(c *config) { c.checkCaps = fn }
}

// WithObs attaches a metrics registry.
func WithObs(reg *obs.Registry) Option {
	return func(c *config) { c.obs = reg }
}

// WithLogger sets the structured log sink (nil discards). Records
// carry reader/attempt/error fields.
func WithLogger(l *slog.Logger) Option {
	return func(c *config) { c.logger = l }
}

// WithJitterSeed pins the backoff-jitter random source, making
// reconnect schedules reproducible in tests.
func WithJitterSeed(seed int64) Option {
	return func(c *config) { c.jitterSeed = seed; c.jitterSeedSet = true }
}

// Supervisor owns one supervised session per expected reader.
type Supervisor struct {
	cfg config
	eps []Endpoint

	mu       sync.Mutex
	status   map[string]*Status
	sessions map[string]*Session
	started  bool
	cancel   context.CancelFunc
	wg       sync.WaitGroup

	// Pre-resolved metric children (nil without a registry).
	stateG     map[string]*obs.Gauge
	reconnects map[string]*obs.Counter
	breakerT   *obs.CounterVec
}

// New validates the endpoints and builds a supervisor. Start launches
// the sessions.
func New(endpoints []Endpoint, opts ...Option) (*Supervisor, error) {
	if len(endpoints) == 0 {
		return nil, ErrNoEndpoints
	}
	cfg := config{
		rospec: llrp.ROSpec{ID: 1, PeriodMs: 100, SnapshotsPerTag: 10},
	}
	for _, o := range opts {
		o(&cfg)
	}
	cfg.keepalive = cfg.keepalive.WithDefaults()
	cfg.backoff = cfg.backoff.WithDefaults()
	if !cfg.jitterSeedSet {
		cfg.jitterSeed = time.Now().UnixNano()
	}
	s := &Supervisor{
		cfg:      cfg,
		eps:      append([]Endpoint(nil), endpoints...),
		status:   make(map[string]*Status, len(endpoints)),
		sessions: make(map[string]*Session, len(endpoints)),
	}
	now := time.Now()
	for i, ep := range s.eps {
		if ep.ID == "" || ep.Addr == "" {
			return nil, fmt.Errorf("session: endpoint %d: empty ID or Addr", i)
		}
		if _, dup := s.status[ep.ID]; dup {
			return nil, fmt.Errorf("%w %q", ErrDuplicateID, ep.ID)
		}
		s.status[ep.ID] = &Status{ID: ep.ID, Addr: ep.Addr, State: StateDown, Since: now}
	}
	if reg := cfg.obs; reg != nil {
		stateVec := reg.GaugeVec("dwatch_reader_state",
			"Reader session state (0=down 1=connecting 2=half-open 3=up).", "reader")
		recVec := reg.CounterVec("dwatch_reconnects_total",
			"Successful reader session re-establishments.", "reader")
		s.breakerT = reg.CounterVec("dwatch_breaker_transitions_total",
			"Per-reader circuit-breaker state transitions.", "reader", "to")
		s.stateG = make(map[string]*obs.Gauge, len(s.eps))
		s.reconnects = make(map[string]*obs.Counter, len(s.eps))
		for _, ep := range s.eps {
			s.stateG[ep.ID] = stateVec.With(ep.ID)
			s.reconnects[ep.ID] = recVec.With(ep.ID)
			s.stateG[ep.ID].Set(StateDown.Code())
		}
	}
	for i, ep := range s.eps {
		sess := &Session{
			sup: s,
			ep:  ep,
			br:  newBreaker(cfg.breakerThreshold, cfg.breakerCooldown),
			rng: rand.New(rand.NewSource(cfg.jitterSeed + int64(i)*104729)),
		}
		if s.breakerT != nil {
			to := s.breakerT
			id := ep.ID
			sess.br.onTransition = func(st breakerState) { to.With(id, st.String()).Inc() }
		}
		s.sessions[ep.ID] = sess
	}
	return s, nil
}

// Start launches one supervision goroutine per reader. It may be
// called once.
func (s *Supervisor) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		s.wg.Add(1)
		go func(sess *Session) {
			defer s.wg.Done()
			sess.run(ctx)
		}(sess)
	}
}

// Stop tears every session down and waits for their goroutines.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	cancel := s.cancel
	s.cancel = nil
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.wg.Wait()
}

// Status returns a snapshot of every session, sorted by reader ID.
func (s *Supervisor) Status() []Status {
	s.mu.Lock()
	out := make([]Status, 0, len(s.status))
	for _, st := range s.status {
		out = append(out, *st)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Live returns the IDs of the readers currently up, sorted — the live
// set the pipeline's quorum fusion consumes.
func (s *Supervisor) Live() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.status))
	for id, st := range s.status {
		if st.State == StateUp {
			out = append(out, id)
		}
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// Degraded reports whether any expected reader is not up.
func (s *Supervisor) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.status {
		if st.State != StateUp {
			return true
		}
	}
	return false
}

// log returns the configured structured logger (a no-op logger when
// none was set) so call sites log unconditionally.
func (s *Supervisor) log() *slog.Logger {
	if s.cfg.logger != nil {
		return s.cfg.logger
	}
	return nopLogger
}

// Session supervises one reader: connect, probe, reconnect.
type Session struct {
	sup *Supervisor
	ep  Endpoint
	br  *breaker
	rng *rand.Rand
}

// setState publishes a state change (status table, gauge, observer).
func (s *Session) setState(st State, cause error) {
	sup := s.sup
	sup.mu.Lock()
	rec := sup.status[s.ep.ID]
	changed := rec.State != st
	rec.State = st
	if changed {
		rec.Since = time.Now()
	}
	if cause != nil {
		rec.LastError = cause.Error()
	} else if st == StateUp {
		rec.LastError = ""
	}
	sup.mu.Unlock()
	if g := sup.stateG[s.ep.ID]; g != nil {
		g.Set(st.Code())
	}
	if changed && sup.cfg.onState != nil {
		sup.cfg.onState(s.ep.ID, st)
	}
}

func (s *Session) bumpAttempts(n int) {
	s.sup.mu.Lock()
	s.sup.status[s.ep.ID].Attempts = n
	s.sup.mu.Unlock()
}

func (s *Session) markReconnect() {
	s.sup.mu.Lock()
	s.sup.status[s.ep.ID].Reconnects++
	s.sup.mu.Unlock()
	s.sup.reconnects[s.ep.ID].Inc()
	s.sup.cfg.obs.Event("reader_reconnect")
}

// run is the session's supervision loop.
func (s *Session) run(ctx context.Context) {
	attempts := 0
	connectedBefore := false
	for ctx.Err() == nil {
		// Circuit-breaker gate: while open, park until the half-open
		// probe unlocks.
		for {
			ok, wait := s.br.allow(time.Now())
			if ok {
				break
			}
			if !sleepCtx(ctx, wait) {
				return
			}
		}
		if s.br.state == breakerHalfOpen {
			s.setState(StateHalfOpen, nil)
		} else {
			s.setState(StateConnecting, nil)
		}
		conn, err := s.connect(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			s.br.failure(time.Now())
			attempts++
			s.bumpAttempts(attempts)
			s.setState(StateDown, err)
			s.sup.log().Warn("connect attempt failed", "reader", s.ep.ID, "attempt", attempts, "error", err)
			if max := s.sup.cfg.backoff.MaxAttempts; max > 0 && attempts >= max {
				s.sup.log().Error("giving up on reader", "reader", s.ep.ID, "attempts", attempts)
				return
			}
			// Backoff sleep, recorded as a span so dashboards can see
			// time lost to reconnect waits.
			span := s.sup.cfg.obs.StartSpan("backoff")
			ok := sleepCtx(ctx, s.sup.cfg.backoff.Delay(attempts, s.rng))
			span.End()
			if !ok {
				return
			}
			continue
		}
		s.br.success()
		attempts = 0
		s.bumpAttempts(0)
		if connectedBefore {
			s.markReconnect()
		}
		connectedBefore = true
		s.setState(StateUp, nil)
		s.sup.log().Info("session up", "reader", s.ep.ID, "addr", s.ep.Addr)
		err = s.serve(ctx, conn)
		conn.Close()
		if ctx.Err() != nil {
			return
		}
		s.setState(StateDown, err)
		s.sup.log().Warn("connection lost", "reader", s.ep.ID, "error", err)
		// Loss after a healthy connection retries immediately once; the
		// breaker and backoff only engage on consecutive failures.
	}
}

// connect dials and performs the LLRP handshake: greeting (consumed by
// DialWith), capabilities exchange with identity check, ROSpec
// install.
func (s *Session) connect(ctx context.Context) (*llrp.Conn, error) {
	conn, err := llrp.DialWith(ctx, s.ep.Addr, llrp.DialOptions{
		Dialer:  s.sup.cfg.dialer,
		Timeout: s.sup.cfg.keepalive.Interval + s.sup.cfg.keepalive.Timeout,
		Backoff: llrp.BackoffOptions{MaxAttempts: 1},
	})
	if err != nil {
		return nil, err
	}
	if _, err := conn.Send(llrp.MsgGetReaderCapabilities, nil); err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: capabilities request: %v", ErrBadHandshake, err)
	}
	msg, err := conn.Recv()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: capabilities response: %v", ErrBadHandshake, err)
	}
	if msg.Type != llrp.MsgGetReaderCapabilitiesResponse {
		conn.Close()
		return nil, fmt.Errorf("%w: expected capabilities response, got type %d", ErrBadHandshake, msg.Type)
	}
	caps, err := llrp.UnmarshalReaderCapabilities(msg.Payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if caps.ReaderID != s.ep.ID {
		conn.Close()
		return nil, fmt.Errorf("%w: dialed %q, got %q", ErrWrongReader, s.ep.ID, caps.ReaderID)
	}
	if s.sup.cfg.checkCaps != nil {
		if err := s.sup.cfg.checkCaps(caps); err != nil {
			conn.Close()
			return nil, fmt.Errorf("%w: %v", ErrBadHandshake, err)
		}
	}
	if _, err := conn.Send(llrp.MsgStartROSpec, s.sup.cfg.rospec.Marshal()); err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: start rospec: %v", ErrBadHandshake, err)
	}
	return conn, nil
}

// serve pumps one established connection: a read goroutine dispatches
// reports and keepalive acks while the control loop probes liveness.
// Returns when the connection dies or the missed-ack threshold trips.
func (s *Session) serve(ctx context.Context, conn *llrp.Conn) error {
	ka := s.sup.cfg.keepalive
	// The read deadline must outlive a full missed-ack window, or idle
	// (reportless) periods would kill healthy connections early.
	conn.SetTimeout(ka.Interval*time.Duration(ka.Missed+1) + ka.Timeout)

	var pending atomic.Int32
	readErr := make(chan error, 1)
	go func() {
		for {
			msg, err := conn.Recv()
			if err != nil {
				readErr <- err
				return
			}
			switch msg.Type {
			case llrp.MsgKeepaliveAck:
				pending.Store(0)
			case llrp.MsgROAccessReport:
				rep, err := llrp.UnmarshalROAccessReport(msg.Payload)
				if err != nil {
					// A malformed report inside a well-framed message:
					// count and carry on, the stream is still in sync.
					s.sup.cfg.obs.Event("reader_bad_report")
					s.sup.log().Warn("bad report", "reader", s.ep.ID, "error", err)
					continue
				}
				if h := s.sup.cfg.handler; h != nil {
					if err := h(rep); err != nil {
						s.sup.log().Warn("report handler failed", "reader", s.ep.ID, "error", err)
					}
				}
			case llrp.MsgReaderEventNotification, llrp.MsgStartROSpecResponse,
				llrp.MsgStopROSpecResponse, llrp.MsgKeepalive:
				// Informational (readers may also probe us; the server
				// side answers those at the llrp layer).
			case llrp.MsgError:
				s.sup.log().Warn("reader error message", "reader", s.ep.ID)
			}
		}
	}()

	tick := time.NewTicker(ka.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case err := <-readErr:
			return err
		case <-tick.C:
			if int(pending.Load()) >= ka.Missed {
				return fmt.Errorf("session: %s: %d keepalives unacknowledged", s.ep.ID, pending.Load())
			}
			if _, err := conn.Send(llrp.MsgKeepalive, nil); err != nil {
				return fmt.Errorf("session: %s: keepalive send: %w", s.ep.ID, err)
			}
			pending.Add(1)
		}
	}
}

// sleepCtx sleeps for d, returning false if the context fired first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
