package session

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset is returned by FaultConn reads/writes when the
// injector tears the connection down mid-message.
var ErrInjectedReset = errors.New("session: injected connection reset")

// FaultConfig parameterizes the deterministic fault injector. All
// probabilities are per-operation (one fault at most per Read/Write);
// the zero value injects nothing.
type FaultConfig struct {
	// Seed makes the fault sequence reproducible: the same seed and the
	// same operation sequence yield the same faults.
	Seed int64

	// DropProb silently discards a whole Write (reported as successful).
	// Because LLRP frames span multiple writes, a dropped write
	// desynchronizes the stream and exercises the peer's parser errors.
	DropProb float64
	// DelayProb stalls an operation for up to MaxDelay.
	DelayProb float64
	// MaxDelay bounds an injected stall. 0 = 5ms.
	MaxDelay time.Duration
	// PartialProb writes only a prefix of the buffer and returns
	// io.ErrShortWrite — a partial-frame write.
	PartialProb float64
	// ResetProb closes the underlying connection mid-message and
	// returns ErrInjectedReset.
	ResetProb float64
	// CorruptProb flips one byte of the buffer before writing it.
	CorruptProb float64
}

func (c FaultConfig) withDefaults() FaultConfig {
	if c.MaxDelay <= 0 {
		c.MaxDelay = 5 * time.Millisecond
	}
	return c
}

// FaultConn wraps a net.Conn with seeded fault injection: drops,
// delays, partial-frame writes, mid-message resets, and byte
// corruption. It is deterministic given the seed and the sequence of
// operations, which is what lets chaos tests assert exact recovery
// behavior. Safe for one concurrent reader plus one concurrent writer
// (the rand source is locked).
type FaultConn struct {
	net.Conn
	cfg FaultConfig

	mu  sync.Mutex
	rng *rand.Rand
}

// NewFaultConn wraps c with the given fault profile.
func NewFaultConn(c net.Conn, cfg FaultConfig) *FaultConn {
	cfg = cfg.withDefaults()
	return &FaultConn{Conn: c, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// fault is one injected failure mode.
type fault int

const (
	faultNone fault = iota
	faultDrop
	faultDelay
	faultPartial
	faultReset
	faultCorrupt
)

// roll draws at most one fault for an operation. The candidate order is
// fixed so the draw sequence is reproducible.
func (f *FaultConn) roll(write bool) (fault, float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	u := f.rng.Float64()
	aux := f.rng.Float64() // second draw: delay length / corrupt position
	p := u
	if p < f.cfg.ResetProb {
		return faultReset, aux
	}
	p -= f.cfg.ResetProb
	if p < f.cfg.DelayProb {
		return faultDelay, aux
	}
	p -= f.cfg.DelayProb
	if write {
		if p < f.cfg.DropProb {
			return faultDrop, aux
		}
		p -= f.cfg.DropProb
		if p < f.cfg.PartialProb {
			return faultPartial, aux
		}
		p -= f.cfg.PartialProb
		if p < f.cfg.CorruptProb {
			return faultCorrupt, aux
		}
	}
	return faultNone, aux
}

// Read applies reset/delay faults, then reads.
func (f *FaultConn) Read(b []byte) (int, error) {
	switch kind, aux := f.roll(false); kind {
	case faultReset:
		f.Conn.Close()
		return 0, ErrInjectedReset
	case faultDelay:
		time.Sleep(time.Duration(aux * float64(f.cfg.MaxDelay)))
	}
	return f.Conn.Read(b)
}

// Write applies one fault (reset, delay, drop, partial, corrupt), then
// writes.
func (f *FaultConn) Write(b []byte) (int, error) {
	switch kind, aux := f.roll(true); kind {
	case faultReset:
		f.Conn.Close()
		return 0, ErrInjectedReset
	case faultDelay:
		time.Sleep(time.Duration(aux * float64(f.cfg.MaxDelay)))
	case faultDrop:
		return len(b), nil
	case faultPartial:
		n := int(aux * float64(len(b)))
		if n >= len(b) {
			n = len(b) - 1
		}
		if n < 0 {
			n = 0
		}
		if n > 0 {
			if w, err := f.Conn.Write(b[:n]); err != nil {
				return w, err
			}
		}
		return n, io.ErrShortWrite
	case faultCorrupt:
		if len(b) > 0 {
			c := make([]byte, len(b))
			copy(c, b)
			c[int(aux*float64(len(c)))%len(c)] ^= 0xFF
			b = c
		}
	}
	return f.Conn.Write(b)
}

// FaultDialer returns a dial function that wraps every new connection
// in a FaultConn. Each connection derives its own seed from the base
// seed and a connection counter, so the fault sequence is reproducible
// across reconnects, not identical on every one.
func FaultDialer(cfg FaultConfig) func(ctx context.Context, addr string) (net.Conn, error) {
	var mu sync.Mutex
	var conns int64
	var d net.Dialer
	return func(ctx context.Context, addr string) (net.Conn, error) {
		nc, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		conns++
		c := cfg
		c.Seed = cfg.Seed + conns*7919 // distinct stream per connection
		mu.Unlock()
		return NewFaultConn(nc, c), nil
	}
}
