package session

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// memConn is an in-memory net.Conn stub: writes accumulate in a
// buffer, reads drain a preloaded one. Enough surface for the injector.
type memConn struct {
	net.Conn
	rd  bytes.Reader
	wr  bytes.Buffer
	cls bool
}

func (m *memConn) Read(b []byte) (int, error)  { return m.rd.Read(b) }
func (m *memConn) Write(b []byte) (int, error) { return m.wr.Write(b) }
func (m *memConn) Close() error                { m.cls = true; return nil }

// TestFaultConnDeterministic asserts the injector's core contract: the
// same seed and the same operation sequence produce the same fault
// sequence, byte for byte. Chaos tests lean on this to compare a
// faulted run against a clean one.
func TestFaultConnDeterministic(t *testing.T) {
	cfg := FaultConfig{
		Seed:        7,
		DropProb:    0.2,
		PartialProb: 0.2,
		CorruptProb: 0.2,
		MaxDelay:    time.Microsecond, // keep injected delays invisible
		DelayProb:   0.1,
	}
	run := func() ([]byte, []error) {
		mc := &memConn{}
		fc := NewFaultConn(mc, cfg)
		var errs []error
		for i := 0; i < 64; i++ {
			msg := bytes.Repeat([]byte{byte(i)}, 16)
			_, err := fc.Write(msg)
			errs = append(errs, err)
		}
		return mc.wr.Bytes(), errs
	}
	b1, e1 := run()
	b2, e2 := run()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same seed produced different byte streams (%d vs %d bytes)", len(b1), len(b2))
	}
	if len(e1) != len(e2) {
		t.Fatalf("error counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if !errors.Is(e1[i], e2[i]) && (e1[i] == nil) != (e2[i] == nil) {
			t.Fatalf("op %d: error mismatch %v vs %v", i, e1[i], e2[i])
		}
	}
	// With these probabilities over 64 writes the stream must actually
	// diverge from the clean transcript — otherwise the test is vacuous.
	clean := &memConn{}
	for i := 0; i < 64; i++ {
		clean.wr.Write(bytes.Repeat([]byte{byte(i)}, 16))
	}
	if bytes.Equal(b1, clean.wr.Bytes()) {
		t.Fatal("fault injector produced a fault-free transcript")
	}
}

// TestFaultConnSeedsDiverge: different seeds give different fault
// sequences (the per-connection seed derivation in FaultDialer depends
// on this).
func TestFaultConnSeedsDiverge(t *testing.T) {
	write := func(seed int64) []byte {
		mc := &memConn{}
		fc := NewFaultConn(mc, FaultConfig{Seed: seed, DropProb: 0.5})
		for i := 0; i < 32; i++ {
			fc.Write(bytes.Repeat([]byte{byte(i)}, 8))
		}
		return mc.wr.Bytes()
	}
	if bytes.Equal(write(1), write(2)) {
		t.Fatal("seeds 1 and 2 produced identical fault sequences")
	}
}

// TestFaultConnReset: a reset fault closes the underlying conn and
// surfaces ErrInjectedReset to the caller.
func TestFaultConnReset(t *testing.T) {
	mc := &memConn{}
	fc := NewFaultConn(mc, FaultConfig{Seed: 1, ResetProb: 1})
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v, want ErrInjectedReset", err)
	}
	if !mc.cls {
		t.Fatal("underlying conn not closed on injected reset")
	}
}

// TestFaultConnPartial: a partial fault writes a strict prefix and
// returns io.ErrShortWrite, so frame writers see a torn frame.
func TestFaultConnPartial(t *testing.T) {
	mc := &memConn{}
	fc := NewFaultConn(mc, FaultConfig{Seed: 1, PartialProb: 1})
	msg := []byte("0123456789")
	n, err := fc.Write(msg)
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v, want io.ErrShortWrite", err)
	}
	if n >= len(msg) {
		t.Fatalf("partial write wrote %d of %d bytes", n, len(msg))
	}
	if got := mc.wr.Bytes(); !bytes.Equal(got, msg[:n]) {
		t.Fatalf("wire bytes %q are not a prefix of the message", got)
	}
}

// TestFaultConnCorrupt: corruption flips exactly one byte and does not
// mutate the caller's buffer.
func TestFaultConnCorrupt(t *testing.T) {
	mc := &memConn{}
	fc := NewFaultConn(mc, FaultConfig{Seed: 1, CorruptProb: 1})
	msg := []byte("0123456789")
	orig := append([]byte(nil), msg...)
	if _, err := fc.Write(msg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg, orig) {
		t.Fatal("corrupt fault mutated the caller's buffer")
	}
	got := mc.wr.Bytes()
	if len(got) != len(msg) {
		t.Fatalf("wire length %d != %d", len(got), len(msg))
	}
	diff := 0
	for i := range got {
		if got[i] != msg[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt fault flipped %d bytes, want exactly 1", diff)
	}
}
