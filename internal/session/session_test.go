package session

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"dwatch/internal/llrp"
	"dwatch/internal/obs"
	"dwatch/internal/sim"
)

// fastOptions returns timing knobs compressed for tests: down-detection
// within ~100ms, reconnect within ~50ms.
func fastOptions() []Option {
	return []Option{
		WithKeepalive(llrp.KeepaliveOptions{
			Interval: 25 * time.Millisecond, Timeout: 50 * time.Millisecond, Missed: 2,
		}),
		WithBackoff(llrp.BackoffOptions{Base: 10 * time.Millisecond, Cap: 50 * time.Millisecond}),
		WithBreaker(3, 100*time.Millisecond),
		WithJitterSeed(1),
	}
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSupervisorValidation: construction rejects empty and duplicate
// endpoint sets.
func TestSupervisorValidation(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrNoEndpoints) {
		t.Fatalf("New(nil) err = %v, want ErrNoEndpoints", err)
	}
	eps := []Endpoint{{ID: "r", Addr: "a"}, {ID: "r", Addr: "b"}}
	if _, err := New(eps); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate IDs err = %v, want ErrDuplicateID", err)
	}
}

// TestSupervisorStreamsReports runs the full happy path over real TCP:
// the supervisor dials two simulated reader endpoints, completes the
// capabilities + StartROSpec handshake, survives several keepalive
// cycles, and delivers broadcast RO_ACCESS_REPORTs to the handler.
func TestSupervisorStreamsReports(t *testing.T) {
	sc, err := sim.Build(sim.TableConfig())
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := sim.GenerateLLRPRounds(sc, 1, 4)
	if err != nil {
		t.Fatal(err)
	}

	var eps []Endpoint
	var sims []*sim.ReaderEndpoint
	for _, rd := range sc.Readers {
		e := sim.NewReaderEndpoint(rd.ID, rd.Array.Elements)
		addr, err := e.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer e.Stop()
		sims = append(sims, e)
		eps = append(eps, Endpoint{ID: rd.ID, Addr: addr.String()})
	}

	var mu sync.Mutex
	got := map[string]int{}
	opts := append(fastOptions(),
		WithHandler(func(rep *llrp.ROAccessReport) error {
			mu.Lock()
			got[rep.ReaderID]++
			mu.Unlock()
			return nil
		}),
		WithObs(obs.NewRegistry()),
	)
	sup, err := New(eps, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sup.Start()
	defer sup.Stop()

	waitFor(t, "all sessions up", 5*time.Second, func() bool {
		return len(sup.Live()) == len(eps) && !sup.Degraded()
	})
	for _, e := range sims {
		if !e.Streaming() {
			t.Fatalf("endpoint %s saw no StartROSpec", e.ID)
		}
	}

	// Idle across several keepalive intervals: probes must keep the
	// sessions alive, not kill them.
	time.Sleep(120 * time.Millisecond)
	if live := sup.Live(); len(live) != len(eps) {
		t.Fatalf("sessions died while idle: live=%v", live)
	}

	for _, rd := range rounds {
		for _, e := range sims {
			if err := e.Broadcast(rd.Payloads[e.ID]); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor(t, "reports delivered", 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, e := range sims {
			if got[e.ID] != len(rounds) {
				return false
			}
		}
		return true
	})

	for _, st := range sup.Status() {
		if st.State != StateUp || st.Reconnects != 0 {
			t.Fatalf("status %+v, want up with 0 reconnects", st)
		}
	}
}

// TestSupervisorReconnect kills one endpoint, waits for the supervisor
// to notice (degraded, reader down), restarts it on the same port, and
// asserts the session comes back with a counted reconnect — the
// keepalive → backoff → breaker loop end to end.
func TestSupervisorReconnect(t *testing.T) {
	sc, err := sim.Build(sim.TableConfig())
	if err != nil {
		t.Fatal(err)
	}
	victimID := sc.Readers[0].ID
	var eps []Endpoint
	sims := map[string]*sim.ReaderEndpoint{}
	for _, rd := range sc.Readers {
		e := sim.NewReaderEndpoint(rd.ID, rd.Array.Elements)
		addr, err := e.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer e.Stop()
		sims[rd.ID] = e
		eps = append(eps, Endpoint{ID: rd.ID, Addr: addr.String()})
	}

	states := make(chan string, 64)
	opts := append(fastOptions(), WithOnState(func(id string, st State) {
		select {
		case states <- id + ":" + st.String():
		default:
		}
	}))
	sup, err := New(eps, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sup.Start()
	defer sup.Stop()

	waitFor(t, "all up", 5*time.Second, func() bool { return len(sup.Live()) == len(eps) })

	victim := sims[victimID]
	victim.Stop()
	waitFor(t, "victim detected down", 5*time.Second, func() bool {
		for _, id := range sup.Live() {
			if id == victimID {
				return false
			}
		}
		return sup.Degraded()
	})

	if _, err := victim.Start(victim.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "victim reconnected", 5*time.Second, func() bool {
		for _, id := range sup.Live() {
			if id == victimID {
				return !sup.Degraded()
			}
		}
		return false
	})
	for _, st := range sup.Status() {
		if st.ID == victimID && st.Reconnects < 1 {
			t.Fatalf("victim status %+v, want Reconnects >= 1", st)
		}
	}

	// The observer saw the victim go down and come back.
	downSeen, upAgain := false, 0
	for {
		select {
		case s := <-states:
			if s == victimID+":down" {
				downSeen = true
			}
			if s == victimID+":up" {
				upAgain++
			}
			continue
		default:
		}
		break
	}
	if !downSeen || upAgain < 2 {
		t.Fatalf("state observer missed the flap (down=%v ups=%d)", downSeen, upAgain)
	}
}

// TestSupervisorWrongReader: an endpoint reporting a different reader ID
// is rejected during the handshake and the session stays down.
func TestSupervisorWrongReader(t *testing.T) {
	e := sim.NewReaderEndpoint("imposter", 8)
	addr, err := e.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	sup, err := New([]Endpoint{{ID: "reader-1", Addr: addr.String()}}, fastOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	sup.Start()
	defer sup.Stop()

	waitFor(t, "handshake rejection recorded", 5*time.Second, func() bool {
		st := sup.Status()[0]
		return st.State != StateUp && strings.Contains(st.LastError, "imposter")
	})
	if live := sup.Live(); len(live) != 0 {
		t.Fatalf("imposter session reported live: %v", live)
	}
}

// TestSupervisorFaultyLink runs the happy path through the fault
// injector with delay and occasional reset faults: the supervisor must
// still deliver every broadcast round, reconnecting as needed.
func TestSupervisorFaultyLink(t *testing.T) {
	sc, err := sim.Build(sim.TableConfig())
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := sim.GenerateLLRPRounds(sc, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	var eps []Endpoint
	var sims []*sim.ReaderEndpoint
	for _, rd := range sc.Readers {
		e := sim.NewReaderEndpoint(rd.ID, rd.Array.Elements)
		addr, err := e.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer e.Stop()
		sims = append(sims, e)
		eps = append(eps, Endpoint{ID: rd.ID, Addr: addr.String()})
	}

	var mu sync.Mutex
	got := map[string]int{}
	opts := append(fastOptions(),
		WithFaults(FaultConfig{Seed: 42, DelayProb: 0.2, MaxDelay: 2 * time.Millisecond}),
		WithHandler(func(rep *llrp.ROAccessReport) error {
			mu.Lock()
			got[rep.ReaderID]++
			mu.Unlock()
			return nil
		}),
	)
	sup, err := New(eps, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sup.Start()
	defer sup.Stop()

	waitFor(t, "all up through faults", 10*time.Second, func() bool {
		return len(sup.Live()) == len(eps)
	})
	for _, rd := range rounds {
		for _, e := range sims {
			if err := e.Broadcast(rd.Payloads[e.ID]); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor(t, "reports through faulty link", 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, e := range sims {
			if got[e.ID] < len(rounds) {
				return false
			}
		}
		return true
	})
}
