package loc

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dwatch/internal/geom"
)

func TestKalmanConvergesOnStraightLine(t *testing.T) {
	k := &KalmanTracker{}
	rng := rand.New(rand.NewSource(1))
	// Walker at 1 m/s along x, noisy decimetre fixes at 10 Hz.
	var last geom.Point
	for i := 0; i <= 60; i++ {
		truth := geom.Pt(0.1*float64(i), 2, 1.25)
		fix := geom.Pt(truth.X+rng.NormFloat64()*0.1, truth.Y+rng.NormFloat64()*0.1, 1.25)
		last, _ = k.Update(fix, true)
	}
	truth := geom.Pt(6, 2, 1.25)
	if d := last.Dist2D(truth); d > 0.15 {
		t.Errorf("converged estimate %.2f m off", d)
	}
	v := k.Velocity()
	if math.Abs(v.X-1) > 0.3 || math.Abs(v.Y) > 0.3 {
		t.Errorf("velocity estimate %v, want ≈(1, 0)", v)
	}
	if s := k.PositionStd(); s > 0.2 {
		t.Errorf("steady-state position std %.2f m", s)
	}
}

func TestKalmanSmoothsBetterThanRaw(t *testing.T) {
	k := &KalmanTracker{}
	rng := rand.New(rand.NewSource(2))
	var rawErr, kfErr float64
	n := 0
	for i := 0; i <= 80; i++ {
		truth := geom.Pt(0.05*float64(i), 1+0.03*float64(i), 1.25)
		fix := geom.Pt(truth.X+rng.NormFloat64()*0.12, truth.Y+rng.NormFloat64()*0.12, 1.25)
		est, _ := k.Update(fix, true)
		if i >= 20 { // after convergence
			rawErr += fix.Dist2D(truth)
			kfErr += est.Dist2D(truth)
			n++
		}
	}
	if kfErr >= rawErr {
		t.Errorf("filter (%.3f m mean) not better than raw fixes (%.3f m)", kfErr/float64(n), rawErr/float64(n))
	}
}

func TestKalmanGateRejectsOutliers(t *testing.T) {
	k := &KalmanTracker{}
	for i := 0; i <= 30; i++ {
		k.Update(geom.Pt(0.1*float64(i), 2, 1.25), true)
	}
	before, err := k.Position()
	if err != nil {
		t.Fatal(err)
	}
	// A wrong-mode fix 4 m away must be gated out.
	_, accepted := k.Update(geom.Pt(before.X, 6, 1.25), true)
	if accepted {
		t.Error("4 m outlier accepted")
	}
	after, _ := k.Position()
	if after.Dist2D(before) > 0.3 {
		t.Errorf("outlier moved the track %.2f m", after.Dist2D(before))
	}
}

func TestKalmanMissesWidenGate(t *testing.T) {
	k := &KalmanTracker{}
	for i := 0; i <= 30; i++ {
		k.Update(geom.Pt(0.1*float64(i), 2, 1.25), true)
	}
	stdBefore := k.PositionStd()
	// Ten deadzone snapshots: uncertainty must grow.
	for i := 0; i < 10; i++ {
		k.Update(geom.Point{}, false)
	}
	stdAfter := k.PositionStd()
	if stdAfter <= stdBefore {
		t.Errorf("misses did not widen uncertainty: %.3f -> %.3f", stdBefore, stdAfter)
	}
	// A fix that would have been gated in steady state is now inside
	// the widened gate and re-acquires the track.
	jump := geom.Pt(3.0+1.0, 2.6, 1.25) // coasted x ≈ 4.0, offset 0.6 m
	_, accepted := k.Update(jump, true)
	if !accepted {
		t.Error("re-acquisition fix rejected despite widened gate")
	}
}

func TestKalmanDeadzoneCoasts(t *testing.T) {
	k := &KalmanTracker{}
	for i := 0; i <= 20; i++ {
		k.Update(geom.Pt(0.1*float64(i), 2, 1.25), true)
	}
	p0, _ := k.Position()
	k.Update(geom.Point{}, false)
	k.Update(geom.Point{}, false)
	p2, _ := k.Position()
	// Coasting continues along +x at ≈1 m/s for 0.2 s.
	if p2.X <= p0.X {
		t.Error("no coasting through deadzone")
	}
	if math.Abs(p2.X-p0.X-0.2) > 0.15 {
		t.Errorf("coasted %.2f m in 0.2 s, want ≈0.2", p2.X-p0.X)
	}
}

func TestKalmanUninitialized(t *testing.T) {
	k := &KalmanTracker{}
	if _, err := k.Position(); !errors.Is(err, ErrNotTracking) {
		t.Errorf("err = %v", err)
	}
	if !math.IsInf(k.PositionStd(), 1) {
		t.Error("uninitialized std should be +Inf")
	}
	if _, accepted := k.Update(geom.Point{}, false); accepted {
		t.Error("miss before init accepted")
	}
	if v := k.Velocity(); v != (geom.Point{}) {
		t.Errorf("uninitialized velocity %v", v)
	}
}

// Head-to-head: on a noisy turn the Kalman tracker should track at
// least as well as the α-β Tracker.
func TestKalmanVsAlphaBetaOnTurn(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	kf := &KalmanTracker{}
	ab := &Tracker{}
	var kfErr, abErr float64
	n := 0
	pos := geom.Pt(0, 0, 1.25)
	vel := geom.Pt(1, 0, 0)
	for i := 0; i < 100; i++ {
		if i == 50 {
			vel = geom.Pt(0, 1, 0) // sharp 90° turn
		}
		pos = pos.Add(vel.Scale(0.1))
		fix := geom.Pt(pos.X+rng.NormFloat64()*0.1, pos.Y+rng.NormFloat64()*0.1, 1.25)
		ke, _ := kf.Update(fix, true)
		ae := ab.Update(fix, true)
		if i >= 20 {
			kfErr += ke.Dist2D(pos)
			abErr += ae.Dist2D(pos)
			n++
		}
	}
	if kfErr > abErr*1.2 {
		t.Errorf("kalman mean error %.3f m ≫ alpha-beta %.3f m", kfErr/float64(n), abErr/float64(n))
	}
}
