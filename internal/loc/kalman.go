package loc

import (
	"errors"
	"math"

	"dwatch/internal/geom"
)

// KalmanTracker is a constant-velocity Kalman filter over the planar
// state [x y vx vy] — the principled version of the Tracker's
// exponential smoothing for the paper's tracking applications (fist
// writing, intruder following). It adds what the α-β Tracker lacks:
// innovation gating calibrated to the filter's own uncertainty, and a
// covariance that grows through deadzones so re-acquisition after
// misses widens the gate automatically instead of needing a hard
// re-initialization counter.
type KalmanTracker struct {
	// Interval is the snapshot period in seconds; 0 = 0.1.
	Interval float64
	// ProcessStd is the white-acceleration density (m/s²); larger
	// tracks manoeuvres faster at the cost of noise. 0 = 2.
	ProcessStd float64
	// MeasStd is the fix noise standard deviation (m); 0 = 0.15, in
	// line with the decimetre fixes the system produces.
	MeasStd float64
	// GateSigma is the Mahalanobis gate on innovations; fixes farther
	// than GateSigma standard deviations are rejected as wrong-mode
	// outliers. 0 = 3.
	GateSigma float64

	init bool
	x    [4]float64    // state [x y vx vy]
	p    [4][4]float64 // covariance
	z    float64       // carried z for reporting
}

// ErrNotTracking is returned by Position before any fix arrived.
var ErrNotTracking = errors.New("loc: kalman tracker has no state")

func (k *KalmanTracker) params() (dt, q, r, gate float64) {
	dt, q, r, gate = k.Interval, k.ProcessStd, k.MeasStd, k.GateSigma
	if dt == 0 {
		dt = 0.1
	}
	if q == 0 {
		q = 2
	}
	if r == 0 {
		r = 0.15
	}
	if gate == 0 {
		gate = 3
	}
	return
}

// Update feeds a fix (ok=false for a deadzone miss) and returns the
// filtered position estimate together with whether the fix was
// accepted by the gate.
func (k *KalmanTracker) Update(fix geom.Point, ok bool) (geom.Point, bool) {
	dt, q, r, gate := k.params()
	if !k.init {
		if !ok {
			return geom.Point{}, false
		}
		k.x = [4]float64{fix.X, fix.Y, 0, 0}
		// Diffuse-ish prior: confident in position, not in velocity.
		k.p = [4][4]float64{}
		k.p[0][0], k.p[1][1] = r*r, r*r
		k.p[2][2], k.p[3][3] = 4, 4
		k.z = fix.Z
		k.init = true
		return geom.Pt(k.x[0], k.x[1], k.z), true
	}

	k.predict(dt, q)

	if !ok {
		return geom.Pt(k.x[0], k.x[1], k.z), false
	}
	// Innovation and its covariance S = H·P·Hᵀ + R (H picks x, y).
	iy0 := fix.X - k.x[0]
	iy1 := fix.Y - k.x[1]
	s00 := k.p[0][0] + r*r
	s01 := k.p[0][1]
	s11 := k.p[1][1] + r*r
	det := s00*s11 - s01*s01
	if det <= 0 {
		det = 1e-12
	}
	// Mahalanobis gate.
	m2 := (iy0*iy0*s11 - 2*iy0*iy1*s01 + iy1*iy1*s00) / det
	if m2 > gate*gate {
		return geom.Pt(k.x[0], k.x[1], k.z), false
	}
	// Kalman gain K = P·Hᵀ·S⁻¹ (4×2).
	inv00, inv01, inv11 := s11/det, -s01/det, s00/det
	var kg [4][2]float64
	for i := 0; i < 4; i++ {
		kg[i][0] = k.p[i][0]*inv00 + k.p[i][1]*inv01
		kg[i][1] = k.p[i][0]*inv01 + k.p[i][1]*inv11
	}
	for i := 0; i < 4; i++ {
		k.x[i] += kg[i][0]*iy0 + kg[i][1]*iy1
	}
	// Covariance update P ← (I − K·H)·P.
	var np [4][4]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			np[i][j] = k.p[i][j] - kg[i][0]*k.p[0][j] - kg[i][1]*k.p[1][j]
		}
	}
	k.p = np
	k.z = fix.Z
	return geom.Pt(k.x[0], k.x[1], k.z), true
}

// predict advances the state by dt with the constant-velocity model and
// white-acceleration process noise.
func (k *KalmanTracker) predict(dt, q float64) {
	// x ← F·x with F = [I, dt·I; 0, I].
	k.x[0] += dt * k.x[2]
	k.x[1] += dt * k.x[3]
	// P ← F·P·Fᵀ + Q.
	var fp [4][4]float64
	f := [4][4]float64{
		{1, 0, dt, 0},
		{0, 1, 0, dt},
		{0, 0, 1, 0},
		{0, 0, 0, 1},
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for l := 0; l < 4; l++ {
				fp[i][j] += f[i][l] * k.p[l][j]
			}
		}
	}
	var fpf [4][4]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for l := 0; l < 4; l++ {
				fpf[i][j] += fp[i][l] * f[j][l]
			}
		}
	}
	// Discrete white-acceleration Q (per axis):
	// [dt⁴/4, dt³/2; dt³/2, dt²]·q².
	q2 := q * q
	q11 := dt * dt * dt * dt / 4 * q2
	q12 := dt * dt * dt / 2 * q2
	q22 := dt * dt * q2
	fpf[0][0] += q11
	fpf[1][1] += q11
	fpf[0][2] += q12
	fpf[2][0] += q12
	fpf[1][3] += q12
	fpf[3][1] += q12
	fpf[2][2] += q22
	fpf[3][3] += q22
	k.p = fpf
}

// Position returns the current estimate, or an error before the first
// accepted fix.
func (k *KalmanTracker) Position() (geom.Point, error) {
	if !k.init {
		return geom.Point{}, ErrNotTracking
	}
	return geom.Pt(k.x[0], k.x[1], k.z), nil
}

// Velocity returns the current velocity estimate (zero before init).
func (k *KalmanTracker) Velocity() geom.Point {
	return geom.Pt(k.x[2], k.x[3], 0)
}

// PositionStd returns the filter's 1-σ position uncertainty (the
// root of the mean of the x/y variances) — useful for display and for
// deciding when a track has gone stale.
func (k *KalmanTracker) PositionStd() float64 {
	if !k.init {
		return math.Inf(1)
	}
	return math.Sqrt((k.p[0][0] + k.p[1][1]) / 2)
}
