// Grid-to-angle index: the precomputed half of the fusion hot path.
//
// Evaluating the Eq. 15 likelihood at a grid cell needs the AoA under
// which each reader's array sees that cell — vector math plus an acos
// per (cell, view). Both are pure functions of the array geometry, the
// search grid, and the angle-grid size, all fixed for a session.
// GridIndex computes the cell→angle-bin mapping once; the grid search
// then reduces to Πᵢ (ε + Dropᵢ[binᵢ[cell]]), a pure table walk.
package loc

import (
	"fmt"

	"dwatch/internal/rf"
)

// GridIndex maps every cell of one search Grid to the rf.AngleGrid bin
// one array sees it under. Immutable after construction and safe to
// share across goroutines.
type GridIndex struct {
	NX, NY int // grid cells, matching Grid.Cells()
	Bins   int // angle-grid size the entries index into
	bins   []int32
}

// NewGridIndex precomputes the cell→angle-bin table for an array over a
// grid, for views scanned on rf.AngleGrid(angleBins). Each entry is
// rf.GridBin(arr.AngleTo(cell), angleBins) — exactly the lookup
// View.DropAt performs — so indexed likelihoods are bit-identical to
// the uncached path.
func NewGridIndex(arr *rf.Array, grid Grid, angleBins int) (*GridIndex, error) {
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	if angleBins < 1 {
		return nil, fmt.Errorf("loc: angle grid size %d", angleBins)
	}
	nx, ny := grid.Cells()
	g := &GridIndex{NX: nx, NY: ny, Bins: angleBins, bins: make([]int32, nx*ny)}
	k := 0
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			g.bins[k] = int32(rf.GridBin(arr.AngleTo(grid.CellAt(ix, iy)), angleBins))
			k++
		}
	}
	return g, nil
}

// Bin returns the angle bin of cell (ix, iy).
func (g *GridIndex) Bin(ix, iy int) int { return int(g.bins[iy*g.NX+ix]) }

// checkIndexes validates that every view has a matching index table for
// this grid.
func checkIndexes(views []*View, indexes []*GridIndex, grid Grid) (nx, ny int, err error) {
	if len(indexes) != len(views) {
		return 0, 0, fmt.Errorf("loc: %d index tables for %d views", len(indexes), len(views))
	}
	nx, ny = grid.Cells()
	for i, g := range indexes {
		if g == nil {
			return 0, 0, fmt.Errorf("loc: nil index table for view %d", i)
		}
		if g.NX != nx || g.NY != ny {
			return 0, 0, fmt.Errorf("loc: index table %d is %dx%d, grid is %dx%d", i, g.NX, g.NY, nx, ny)
		}
		if g.Bins != len(views[i].Angles) {
			return 0, 0, fmt.Errorf("loc: index table %d has %d angle bins, view has %d", i, g.Bins, len(views[i].Angles))
		}
	}
	return nx, ny, nil
}

// LocalizeIndexed is Localize with the grid search driven by
// precomputed GridIndex tables (one per view, built for the same grid
// and each view's angle-grid size). The coarse search is a pure table
// walk; hill-climb refinement still evaluates exact angles off-grid.
// Results are bit-identical to Localize.
func LocalizeIndexed(views []*View, indexes []*GridIndex, grid Grid, opts Options) (Result, error) {
	if len(views) == 0 {
		return Result{}, ErrNoViews
	}
	if err := grid.Validate(); err != nil {
		return Result{}, err
	}
	nx, _, err := checkIndexes(views, indexes, grid)
	if err != nil {
		return Result{}, err
	}
	opts = opts.withDefaults()

	bestK, bestL := 0, -1.0
	for k := range indexes[0].bins {
		l := 1.0
		for v, g := range indexes {
			l *= epsilon + views[v].Drop[g.bins[k]]
		}
		if l > bestL {
			bestK, bestL = k, l
		}
	}
	best := Result{Pos: grid.CellAt(bestK%nx, bestK/nx), Likelihood: bestL}
	best = hillClimb(views, grid, best, opts.HillClimbIters)
	max := theoreticalMax(len(views))
	best.Confidence = best.Likelihood / max
	if best.Confidence < opts.MinPeak {
		return Result{}, ErrNotCovered
	}
	return best, nil
}

// LocalizeMultiIndexed is LocalizeMulti with the likelihood field
// filled by table walk. Results are bit-identical to LocalizeMulti.
func LocalizeMultiIndexed(views []*View, indexes []*GridIndex, grid Grid, maxTargets int, minSep float64, opts Options) ([]Result, error) {
	if len(views) == 0 {
		return nil, ErrNoViews
	}
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	if maxTargets <= 0 {
		return nil, nil
	}
	nx, ny, err := checkIndexes(views, indexes, grid)
	if err != nil {
		return nil, err
	}
	field := make([]float64, nx*ny)
	for k := range field {
		l := 1.0
		for v, g := range indexes {
			l *= epsilon + views[v].Drop[g.bins[k]]
		}
		field[k] = l
	}
	return extractTargets(views, grid, field, nx, ny, maxTargets, minSep, opts), nil
}
