package loc

import (
	"errors"
	"math"
	"strings"
	"testing"

	"dwatch/internal/geom"
	"dwatch/internal/rf"
)

func mkArray(t testing.TB, origin geom.Point, axis geom.Point) *rf.Array {
	t.Helper()
	a, err := rf.NewArray(origin, axis, 8)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// bumpView builds a View whose drop spectrum has Gaussian bumps (σ in
// radians) at the given angles.
func bumpView(arr *rf.Array, angles []float64, amps []float64, sigma float64) *View {
	grid := rf.AngleGrid(361)
	drop := make([]float64, len(grid))
	for i, th := range grid {
		for k, a := range angles {
			d := th - a
			drop[i] += amps[k] * math.Exp(-d*d/(2*sigma*sigma))
		}
	}
	return &View{Array: arr, Angles: grid, Drop: drop}
}

// viewsToward builds one view per array with a bump exactly at the angle
// to target.
func viewsToward(t testing.TB, arrays []*rf.Array, target geom.Point) []*View {
	t.Helper()
	var views []*View
	for _, a := range arrays {
		views = append(views, bumpView(a, []float64{a.AngleTo(target)}, []float64{1}, rf.Rad(3)))
	}
	return views
}

func roomGrid() Grid {
	return Grid{XMin: 0, XMax: 8, YMin: 0, YMax: 8, Cell: 0.05, Z: 1.25}
}

func TestLocalizeTwoReaders(t *testing.T) {
	a1 := mkArray(t, geom.Pt(2, 0, 1.25), geom.Pt2(1, 0))
	a2 := mkArray(t, geom.Pt(0, 2, 1.25), geom.Pt2(0, 1))
	target := geom.Pt(4, 5, 1.25)
	views := viewsToward(t, []*rf.Array{a1, a2}, target)
	res, err := Localize(views, roomGrid(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Pos.Dist2D(target); d > 0.15 {
		t.Errorf("fix %v is %.3f m from target %v", res.Pos, d, target)
	}
	if res.Confidence <= 0 || res.Confidence > 1.01 {
		t.Errorf("confidence = %v", res.Confidence)
	}
}

func TestLocalizeFourReaders(t *testing.T) {
	arrays := []*rf.Array{
		mkArray(t, geom.Pt(2, 0, 1.25), geom.Pt2(1, 0)),
		mkArray(t, geom.Pt(0, 2, 1.25), geom.Pt2(0, 1)),
		mkArray(t, geom.Pt(2, 8, 1.25), geom.Pt2(1, 0)),
		mkArray(t, geom.Pt(8, 2, 1.25), geom.Pt2(0, 1)),
	}
	target := geom.Pt(3.3, 4.7, 1.25)
	views := viewsToward(t, arrays, target)
	res, err := Localize(views, roomGrid(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Pos.Dist2D(target); d > 0.12 {
		t.Errorf("fix error %.3f m", d)
	}
}

func TestLocalizeRejectsWrongAngle(t *testing.T) {
	// Reader 1 sees two blocked paths: the true angle plus a "wrong"
	// reflection angle (Fig. 1(c)). Reader 2 sees only the true angle.
	// The likelihood product must land on the true target.
	a1 := mkArray(t, geom.Pt(2, 0, 1.25), geom.Pt2(1, 0))
	a2 := mkArray(t, geom.Pt(0, 2, 1.25), geom.Pt2(0, 1))
	target := geom.Pt(5, 4, 1.25)
	wrongAngle := a1.AngleTo(target) + rf.Rad(40)
	v1 := bumpView(a1, []float64{a1.AngleTo(target), wrongAngle}, []float64{1, 1}, rf.Rad(3))
	v2 := bumpView(a2, []float64{a2.AngleTo(target)}, []float64{1}, rf.Rad(3))
	res, err := Localize([]*View{v1, v2}, roomGrid(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Pos.Dist2D(target); d > 0.2 {
		t.Errorf("wrong angle won: fix %v, %.2f m from target", res.Pos, d)
	}
}

func TestLocalizeNotCovered(t *testing.T) {
	a1 := mkArray(t, geom.Pt(2, 0, 1.25), geom.Pt2(1, 0))
	a2 := mkArray(t, geom.Pt(0, 2, 1.25), geom.Pt2(0, 1))
	// No drops anywhere.
	g := rf.AngleGrid(361)
	v1 := &View{Array: a1, Angles: g, Drop: make([]float64, len(g))}
	v2 := &View{Array: a2, Angles: g, Drop: make([]float64, len(g))}
	if _, err := Localize([]*View{v1, v2}, roomGrid(), Options{}); !errors.Is(err, ErrNotCovered) {
		t.Errorf("err = %v, want ErrNotCovered", err)
	}
}

func TestLocalizeValidation(t *testing.T) {
	if _, err := Localize(nil, roomGrid(), Options{}); !errors.Is(err, ErrNoViews) {
		t.Errorf("err = %v", err)
	}
	a1 := mkArray(t, geom.Pt(2, 0, 1.25), geom.Pt2(1, 0))
	v := bumpView(a1, []float64{1}, []float64{1}, 0.05)
	if _, err := Localize([]*View{v}, Grid{XMin: 1, XMax: 0, YMin: 0, YMax: 1, Cell: 0.1}, Options{}); err == nil {
		t.Error("empty grid must error")
	}
	if _, err := Localize([]*View{v}, Grid{XMin: 0, XMax: 1, YMin: 0, YMax: 1, Cell: 0}, Options{}); err == nil {
		t.Error("zero cell must error")
	}
}

func TestLocalizeMultiTwoTargets(t *testing.T) {
	a1 := mkArray(t, geom.Pt(2, 0, 1.25), geom.Pt2(1, 0))
	a2 := mkArray(t, geom.Pt(0, 2, 1.25), geom.Pt2(0, 1))
	t1 := geom.Pt(2.5, 5.5, 1.25)
	t2 := geom.Pt(6, 3, 1.25)
	mk := func(a *rf.Array) *View {
		return bumpView(a, []float64{a.AngleTo(t1), a.AngleTo(t2)}, []float64{1, 0.9}, rf.Rad(3))
	}
	res, err := LocalizeMulti([]*View{mk(a1), mk(a2)}, roomGrid(), 3, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 2 {
		t.Fatalf("found %d targets, want ≥2", len(res))
	}
	found1, found2 := false, false
	for _, r := range res {
		if r.Pos.Dist2D(t1) < 0.3 {
			found1 = true
		}
		if r.Pos.Dist2D(t2) < 0.3 {
			found2 = true
		}
	}
	if !found1 || !found2 {
		positions := make([]geom.Point, len(res))
		for i, r := range res {
			positions[i] = r.Pos
		}
		t.Errorf("targets not both found: %v", positions)
	}
}

func TestLocalizeMultiRespectsLimits(t *testing.T) {
	a1 := mkArray(t, geom.Pt(2, 0, 1.25), geom.Pt2(1, 0))
	a2 := mkArray(t, geom.Pt(0, 2, 1.25), geom.Pt2(0, 1))
	target := geom.Pt(4, 4, 1.25)
	views := viewsToward(t, []*rf.Array{a1, a2}, target)
	res, err := LocalizeMulti(views, roomGrid(), 5, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Errorf("single target produced %d fixes", len(res))
	}
	if got, err := LocalizeMulti(views, roomGrid(), 0, 0.5, Options{}); err != nil || got != nil {
		t.Errorf("maxTargets=0: %v, %v", got, err)
	}
	if _, err := LocalizeMulti(nil, roomGrid(), 2, 0.5, Options{}); !errors.Is(err, ErrNoViews) {
		t.Errorf("no views: %v", err)
	}
}

func TestViewDropAtAndNormalize(t *testing.T) {
	g := rf.AngleGrid(181)
	drop := make([]float64, 181)
	drop[90] = 4 // at π/2
	a := mkArray(t, geom.Pt2(0, 0), geom.Pt2(1, 0))
	v := &View{Array: a, Angles: g, Drop: drop}
	if got := v.DropAt(math.Pi / 2); got != 4 {
		t.Errorf("DropAt = %v", got)
	}
	if got := v.DropAt(-1); got != drop[0] {
		t.Errorf("clamp low = %v", got)
	}
	if got := v.DropAt(10); got != drop[180] {
		t.Errorf("clamp high = %v", got)
	}
	v.Normalize()
	if v.Drop[90] != 1 {
		t.Errorf("normalized peak = %v", v.Drop[90])
	}
	empty := &View{Array: a}
	if empty.DropAt(1) != 0 {
		t.Error("empty view DropAt != 0")
	}
	empty.Normalize() // must not panic
}

func TestTriangulateBroadside(t *testing.T) {
	a1 := mkArray(t, geom.Pt(2, 0, 0), geom.Pt2(1, 0))
	a2 := mkArray(t, geom.Pt(0, 2, 0), geom.Pt2(0, 1))
	target := geom.Pt2(4, 5)
	pts := Triangulate(
		AngleObservation{Array: a1, Angle: a1.AngleTo(target)},
		AngleObservation{Array: a2, Angle: a2.AngleTo(target)},
		roomGrid(),
	)
	if len(pts) == 0 {
		t.Fatal("no intersections")
	}
	found := false
	for _, p := range pts {
		if p.Dist2D(target) < 0.05 {
			found = true
		}
	}
	if !found {
		t.Errorf("no intersection near target: %v", pts)
	}
}

func TestTriangulateParallelRays(t *testing.T) {
	a1 := mkArray(t, geom.Pt(0, 0, 0), geom.Pt2(1, 0))
	a2 := mkArray(t, geom.Pt(3, 0, 0), geom.Pt2(1, 0))
	// Both looking broadside (π/2): rays parallel, no intersection.
	pts := Triangulate(
		AngleObservation{Array: a1, Angle: math.Pi / 2},
		AngleObservation{Array: a2, Angle: math.Pi / 2},
		roomGrid(),
	)
	if len(pts) != 0 {
		t.Errorf("parallel rays intersected: %v", pts)
	}
}

func TestFuseCandidatesRejectsOutlier(t *testing.T) {
	// Three readers agree on the target; one reader also reports a wrong
	// reflection angle. The densest cluster must win.
	a1 := mkArray(t, geom.Pt(2, 0, 0), geom.Pt2(1, 0))
	a2 := mkArray(t, geom.Pt(0, 2, 0), geom.Pt2(0, 1))
	a3 := mkArray(t, geom.Pt(2, 8, 0), geom.Pt2(1, 0))
	target := geom.Pt2(5, 4)
	obs := []AngleObservation{
		{Array: a1, Angle: a1.AngleTo(target)},
		{Array: a1, Angle: a1.AngleTo(target) + rf.Rad(35)}, // wrong angle
		{Array: a2, Angle: a2.AngleTo(target)},
		{Array: a3, Angle: a3.AngleTo(target)},
	}
	p, err := FuseCandidates(obs, roomGrid(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if d := p.Dist2D(target); d > 0.3 {
		t.Errorf("fused %v is %.2f m from target", p, d)
	}
}

func TestFuseCandidatesSkipsSameReaderPairs(t *testing.T) {
	a1 := mkArray(t, geom.Pt(2, 0, 0), geom.Pt2(1, 0))
	obs := []AngleObservation{
		{Array: a1, Angle: 1.0},
		{Array: a1, Angle: 1.5},
	}
	if _, err := FuseCandidates(obs, roomGrid(), 0.3); !errors.Is(err, ErrNotCovered) {
		t.Errorf("err = %v, want ErrNotCovered (same-reader pairs skipped)", err)
	}
}

func TestTrackerSmoothing(t *testing.T) {
	tr := &Tracker{}
	p := tr.Update(geom.Pt2(1, 1), true)
	if p != geom.Pt2(1, 1) {
		t.Errorf("first fix = %v", p)
	}
	if !tr.Initialized() {
		t.Error("not initialized after first fix")
	}
	// Steady motion along x at 1 m/s, 0.1 s steps.
	var last geom.Point
	for i := 1; i <= 10; i++ {
		last = tr.Update(geom.Pt2(1+0.1*float64(i), 1), true)
	}
	if math.Abs(last.Y-1) > 1e-9 {
		t.Errorf("drifted in y: %v", last)
	}
	if last.X < 1.5 || last.X > 2.05 {
		t.Errorf("x estimate = %v, want near 2", last.X)
	}
}

func TestTrackerSpeedGate(t *testing.T) {
	tr := &Tracker{}
	tr.Update(geom.Pt2(1, 1), true)
	// A 5 m jump in 0.1 s (50 m/s) must be rejected.
	p := tr.Update(geom.Pt2(6, 1), true)
	if p.Dist2D(geom.Pt2(1, 1)) > 0.5 {
		t.Errorf("outlier accepted: %v", p)
	}
}

func TestTrackerDeadzoneCoast(t *testing.T) {
	tr := &Tracker{}
	tr.Update(geom.Pt2(0, 0), true)
	for i := 1; i <= 5; i++ {
		tr.Update(geom.Pt2(0.1*float64(i), 0), true)
	}
	before := tr.Position()
	// Deadzone for 3 snapshots: the tracker must coast forward, not stall.
	var coasted geom.Point
	for i := 0; i < 3; i++ {
		coasted = tr.Update(geom.Point{}, false)
	}
	if coasted.X <= before.X {
		t.Errorf("no coasting: %v -> %v", before, coasted)
	}
	// And not explode.
	if coasted.X > before.X+1 {
		t.Errorf("coasted too far: %v", coasted)
	}
}

func TestTrackerUninitializedMiss(t *testing.T) {
	tr := &Tracker{}
	p := tr.Update(geom.Point{}, false)
	if tr.Initialized() || p != (geom.Point{}) {
		t.Error("miss before init must not initialize")
	}
}

func TestGridContains(t *testing.T) {
	g := roomGrid()
	if !g.Contains(geom.Pt2(4, 4)) {
		t.Error("inside point reported outside")
	}
	if g.Contains(geom.Pt2(-1, 4)) || g.Contains(geom.Pt2(4, 9)) {
		t.Error("outside point reported inside")
	}
}

func BenchmarkLocalize(b *testing.B) {
	a1, _ := rf.NewArray(geom.Pt(2, 0, 1.25), geom.Pt2(1, 0), 8)
	a2, _ := rf.NewArray(geom.Pt(0, 2, 1.25), geom.Pt2(0, 1), 8)
	target := geom.Pt(4, 5, 1.25)
	views := []*View{
		bumpView(a1, []float64{a1.AngleTo(target)}, []float64{1}, rf.Rad(3)),
		bumpView(a2, []float64{a2.AngleTo(target)}, []float64{1}, rf.Rad(3)),
	}
	g := roomGrid()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Localize(views, g, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestComputeHeatmap(t *testing.T) {
	a1 := mkArray(t, geom.Pt(2, 0, 1.25), geom.Pt2(1, 0))
	a2 := mkArray(t, geom.Pt(0, 2, 1.25), geom.Pt2(0, 1))
	target := geom.Pt(4, 5, 1.25)
	views := viewsToward(t, []*rf.Array{a1, a2}, target)
	h, err := ComputeHeatmap(views, roomGrid(), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Max <= 0 {
		t.Fatal("empty heatmap")
	}
	// The hottest cell is near the target.
	if d := h.Peak().Dist2D(target); d > 0.3 {
		t.Errorf("heatmap peak %.2f m from target", d)
	}
	// Render is well-formed and marks the target.
	out := h.Render(target)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != h.NY+2 {
		t.Errorf("render lines = %d, want %d", len(lines), h.NY+2)
	}
	if !strings.Contains(out, "X") {
		t.Error("ground-truth mark missing")
	}
	// Unmarked render must show the brightest ramp character somewhere
	// (the marked render may cover the peak cell with 'X').
	if !strings.Contains(h.Render(), "@") {
		t.Error("no bright cell in render")
	}
}

func TestComputeHeatmapValidation(t *testing.T) {
	if _, err := ComputeHeatmap(nil, roomGrid(), 0.2); !errors.Is(err, ErrNoViews) {
		t.Errorf("no views: %v", err)
	}
	a1 := mkArray(t, geom.Pt(2, 0, 1.25), geom.Pt2(1, 0))
	v := bumpView(a1, []float64{1}, []float64{1}, 0.05)
	if _, err := ComputeHeatmap([]*View{v}, Grid{XMin: 1, XMax: 0, YMin: 0, YMax: 1, Cell: 0.1}, 0.2); err == nil {
		t.Error("bad grid must error")
	}
}
