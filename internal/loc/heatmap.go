package loc

import (
	"strings"

	"dwatch/internal/geom"
)

// Heatmap is a sampled likelihood field over the search grid — the data
// behind the paper's Fig. 19 heatmaps.
type Heatmap struct {
	NX, NY int
	Cell   float64
	XMin   float64
	YMin   float64
	Z      float64
	Values []float64 // row-major, [y*NX+x]
	Max    float64
}

// ComputeHeatmap evaluates the Eq. 15 likelihood over the grid at the
// given cell size (coarser than the localization grid is fine for
// display).
func ComputeHeatmap(views []*View, grid Grid, cell float64) (*Heatmap, error) {
	if len(views) == 0 {
		return nil, ErrNoViews
	}
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	if cell <= 0 {
		cell = grid.Cell
	}
	nx := int((grid.XMax-grid.XMin)/cell) + 1
	ny := int((grid.YMax-grid.YMin)/cell) + 1
	h := &Heatmap{NX: nx, NY: ny, Cell: cell, XMin: grid.XMin, YMin: grid.YMin, Z: grid.Z,
		Values: make([]float64, nx*ny)}
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			p := geom.Pt(grid.XMin+float64(ix)*cell, grid.YMin+float64(iy)*cell, grid.Z)
			v := Likelihood(views, p)
			h.Values[iy*nx+ix] = v
			if v > h.Max {
				h.Max = v
			}
		}
	}
	return h, nil
}

// heatRamp maps intensity (0..1) to display characters, dark to bright.
const heatRamp = " .:-=+*#%@"

// Render draws the heatmap as ASCII art, north (larger y) up, with
// optional ground-truth markers drawn as 'X'.
func (h *Heatmap) Render(marks ...geom.Point) string {
	var b strings.Builder
	max := h.Max
	if max <= 0 {
		max = 1
	}
	markAt := func(ix, iy int) bool {
		for _, m := range marks {
			mx := int((m.X - h.XMin) / h.Cell)
			my := int((m.Y - h.YMin) / h.Cell)
			if mx == ix && my == iy {
				return true
			}
		}
		return false
	}
	b.WriteString("+" + strings.Repeat("-", h.NX) + "+\n")
	for iy := h.NY - 1; iy >= 0; iy-- {
		b.WriteByte('|')
		for ix := 0; ix < h.NX; ix++ {
			if markAt(ix, iy) {
				b.WriteByte('X')
				continue
			}
			v := h.Values[iy*h.NX+ix] / max
			idx := int(v * float64(len(heatRamp)-1))
			if idx < 0 {
				idx = 0
			} else if idx >= len(heatRamp) {
				idx = len(heatRamp) - 1
			}
			b.WriteByte(heatRamp[idx])
		}
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", h.NX) + "+\n")
	return b.String()
}

// Peak returns the grid position of the strongest cell.
func (h *Heatmap) Peak() geom.Point {
	best := 0
	for i, v := range h.Values {
		if v > h.Values[best] {
			best = i
		}
	}
	return geom.Pt(h.XMin+float64(best%h.NX)*h.Cell, h.YMin+float64(best/h.NX)*h.Cell, h.Z)
}
