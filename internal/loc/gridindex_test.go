package loc

import (
	"math"
	"testing"

	"dwatch/internal/geom"
	"dwatch/internal/rf"
)

func mustIndexes(t *testing.T, views []*View, grid Grid) []*GridIndex {
	t.Helper()
	idx := make([]*GridIndex, len(views))
	for i, v := range views {
		g, err := NewGridIndex(v.Array, grid, len(v.Angles))
		if err != nil {
			t.Fatal(err)
		}
		idx[i] = g
	}
	return idx
}

func TestGridIndexMatchesDirectLookup(t *testing.T) {
	arr := mkArray(t, geom.Pt(2, 0, 1.25), geom.Pt2(1, 0))
	grid := roomGrid()
	g, err := NewGridIndex(arr, grid, 361)
	if err != nil {
		t.Fatal(err)
	}
	nx, ny := grid.Cells()
	if g.NX != nx || g.NY != ny || g.Bins != 361 {
		t.Fatalf("index dims = %dx%d/%d, want %dx%d/361", g.NX, g.NY, g.Bins, nx, ny)
	}
	for iy := 0; iy < ny; iy += 7 {
		for ix := 0; ix < nx; ix += 7 {
			want := rf.GridBin(arr.AngleTo(grid.CellAt(ix, iy)), 361)
			if got := g.Bin(ix, iy); got != want {
				t.Fatalf("Bin(%d,%d) = %d, want %d", ix, iy, got, want)
			}
		}
	}
}

func TestLocalizeIndexedBitIdentical(t *testing.T) {
	arrays := []*rf.Array{
		mkArray(t, geom.Pt(2, 0, 1.25), geom.Pt2(1, 0)),
		mkArray(t, geom.Pt(0, 2, 1.25), geom.Pt2(0, 1)),
		mkArray(t, geom.Pt(2, 8, 1.25), geom.Pt2(1, 0)),
	}
	grid := roomGrid()
	for _, target := range []geom.Point{
		geom.Pt(4, 5, 1.25),
		geom.Pt(1.1, 6.3, 1.25),
		geom.Pt(7.9, 7.9, 1.25), // last row/column: regression for drift-free cell iteration
	} {
		views := viewsToward(t, arrays, target)
		want, err := Localize(views, grid, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := LocalizeIndexed(views, mustIndexes(t, views, grid), grid, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Exact equality, not tolerance: the indexed search must visit
		// the same cells with the same likelihood arithmetic.
		if got.Pos != want.Pos || got.Likelihood != want.Likelihood || got.Confidence != want.Confidence {
			t.Errorf("target %v: indexed %+v, direct %+v", target, got, want)
		}
	}
}

func TestLocalizeMultiIndexedBitIdentical(t *testing.T) {
	a1 := mkArray(t, geom.Pt(2, 0, 1.25), geom.Pt2(1, 0))
	a2 := mkArray(t, geom.Pt(0, 2, 1.25), geom.Pt2(0, 1))
	t1 := geom.Pt(2.5, 5.5, 1.25)
	t2 := geom.Pt(6, 2.5, 1.25)
	mk := func(a *rf.Array) *View {
		return bumpView(a, []float64{a.AngleTo(t1), a.AngleTo(t2)}, []float64{1, 0.8}, rf.Rad(3))
	}
	views := []*View{mk(a1), mk(a2)}
	grid := roomGrid()
	want, err := LocalizeMulti(views, grid, 3, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := LocalizeMultiIndexed(views, mustIndexes(t, views, grid), grid, 3, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("indexed found %d targets, direct %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Pos != want[i].Pos || got[i].Likelihood != want[i].Likelihood {
			t.Errorf("target %d: indexed %+v, direct %+v", i, got[i], want[i])
		}
	}
}

func TestLocalizeIndexedValidation(t *testing.T) {
	arr := mkArray(t, geom.Pt(2, 0, 1.25), geom.Pt2(1, 0))
	grid := roomGrid()
	v := bumpView(arr, []float64{math.Pi / 2}, []float64{1}, rf.Rad(3))
	good, err := NewGridIndex(arr, grid, len(v.Angles))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LocalizeIndexed([]*View{v}, nil, grid, Options{}); err == nil {
		t.Error("missing index tables must be rejected")
	}
	if _, err := LocalizeIndexed([]*View{v}, []*GridIndex{nil}, grid, Options{}); err == nil {
		t.Error("nil index table must be rejected")
	}
	wrongBins, err := NewGridIndex(arr, grid, 91)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LocalizeIndexed([]*View{v}, []*GridIndex{wrongBins}, grid, Options{}); err == nil {
		t.Error("angle-bin mismatch must be rejected")
	}
	smaller := grid
	smaller.XMax = 4
	wrongGrid, err := NewGridIndex(arr, smaller, len(v.Angles))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LocalizeIndexed([]*View{v}, []*GridIndex{wrongGrid}, grid, Options{}); err == nil {
		t.Error("grid-shape mismatch must be rejected")
	}
	if _, err := NewGridIndex(arr, grid, 0); err == nil {
		t.Error("zero angle bins must be rejected")
	}
	if good == nil {
		t.Fatal("unreachable")
	}
}

// TestGridCellsCoverFullExtent guards the integer-index grid iteration:
// the float-accumulation loop it replaced could lose the last row or
// column to rounding drift.
func TestGridCellsCoverFullExtent(t *testing.T) {
	g := Grid{XMin: 0, XMax: 8, YMin: 0, YMax: 8, Cell: 0.05, Z: 1.25}
	nx, ny := g.Cells()
	if nx != 161 || ny != 161 {
		t.Fatalf("Cells = %dx%d, want 161x161", nx, ny)
	}
	last := g.CellAt(nx-1, ny-1)
	if math.Abs(last.X-8) > 1e-9 || math.Abs(last.Y-8) > 1e-9 {
		t.Errorf("last cell = %v, want (8, 8)", last)
	}
	if first := g.CellAt(0, 0); first.X != 0 || first.Y != 0 || first.Z != 1.25 {
		t.Errorf("first cell = %v", first)
	}
}
