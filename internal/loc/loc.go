// Package loc turns per-reader AoA-spectrum drops into target
// locations, implementing Section 4.3 of the D-Watch paper.
//
// Each reader i contributes ΔΩᵢ(θ): the drop in its P-MUSIC spectrum
// between the no-target baseline and the online measurement. A grid
// search maximizes the likelihood L(O) = Πᵢ ΔΩᵢ(θᵢ(O)) (Eq. 15), where
// θᵢ(O) is the angle from reader i's array to the candidate point O. A
// hill-climbing refinement then polishes the coarse grid estimate. The
// product form automatically rejects the "wrong angle" a blocked
// reflection path reports (Fig. 1(c)): an angle consistent at only one
// reader cannot accumulate likelihood at any single point.
//
// The package also provides explicit pairwise triangulation with
// outlier rejection (the paper's alternative formulation), multi-target
// extraction by non-maximum suppression, and a snapshot tracker with the
// mobility smoothing Section 8 describes.
package loc

import (
	"errors"
	"fmt"
	"math"

	"dwatch/internal/geom"
	"dwatch/internal/rf"
)

// ErrNoViews is returned when localization is attempted with no reader
// views.
var ErrNoViews = errors.New("loc: no reader views")

// ErrNotCovered is returned when no grid point accumulates enough
// likelihood — the target is in a deadzone (Section 8).
var ErrNotCovered = errors.New("loc: target not covered by any blocked path")

// View is one reader's evidence: its array and the ΔΩ drop spectrum
// over the angle grid, normalized so the strongest drop is ≈1.
type View struct {
	Array  *rf.Array
	Angles []float64 // scan grid, radians, ascending over [0, π]
	Drop   []float64 // ΔΩ(θ) ≥ 0
}

// DropAt returns the drop at the grid angle nearest to theta. The grid
// is the uniform rf.AngleGrid, so the lookup is O(1) via the shared
// rf.GridBin helper (the same indexing pmusic.Spectrum.PowerAt and
// GridIndex use).
func (v *View) DropAt(theta float64) float64 {
	n := len(v.Angles)
	if n == 0 {
		return 0
	}
	return v.Drop[rf.GridBin(theta, n)]
}

// MaxDrop returns the maximum drop in the view.
func (v *View) MaxDrop() float64 {
	var m float64
	for _, d := range v.Drop {
		if d > m {
			m = d
		}
	}
	return m
}

// Normalize scales the view's drops so the maximum is 1. Views with no
// drop are left unchanged.
func (v *View) Normalize() {
	m := v.MaxDrop()
	if m <= 0 {
		return
	}
	for i := range v.Drop {
		v.Drop[i] /= m
	}
}

// Grid is the rectangular search area.
type Grid struct {
	XMin, XMax, YMin, YMax float64
	Cell                   float64 // grid cell size in metres (paper: 0.05 m rooms, 0.02 m table)
	Z                      float64 // height of the search plane
}

// Validate checks the grid is well-formed.
func (g Grid) Validate() error {
	if g.XMax <= g.XMin || g.YMax <= g.YMin {
		return fmt.Errorf("loc: empty grid [%v,%v]x[%v,%v]", g.XMin, g.XMax, g.YMin, g.YMax)
	}
	if g.Cell <= 0 {
		return fmt.Errorf("loc: non-positive cell size %v", g.Cell)
	}
	return nil
}

// Contains reports whether p lies inside the grid (x-y only).
func (g Grid) Contains(p geom.Point) bool {
	return p.X >= g.XMin && p.X <= g.XMax && p.Y >= g.YMin && p.Y <= g.YMax
}

// Cells returns the number of search cells along x and y. Every grid
// walk (Localize, LocalizeMulti, heatmaps, GridIndex) derives its cell
// count here so cached and uncached paths visit identical points.
func (g Grid) Cells() (nx, ny int) {
	nx = int((g.XMax-g.XMin)/g.Cell) + 1
	ny = int((g.YMax-g.YMin)/g.Cell) + 1
	return nx, ny
}

// CellAt returns the centre of cell (ix, iy) at the search height.
func (g Grid) CellAt(ix, iy int) geom.Point {
	return geom.Pt(g.XMin+float64(ix)*g.Cell, g.YMin+float64(iy)*g.Cell, g.Z)
}

// epsilon keeps the likelihood product alive when one reader
// contributes nothing at a point (it may simply not cover that spot).
const epsilon = 0.02

// Likelihood evaluates Eq. 15 at point p: Πᵢ (ε + ΔΩᵢ(θᵢ(p))).
func Likelihood(views []*View, p geom.Point) float64 {
	l := 1.0
	for _, v := range views {
		l *= epsilon + v.DropAt(v.Array.AngleTo(p))
	}
	return l
}

// Options configures Localize.
type Options struct {
	// MinPeak is the minimum confidence (likelihood relative to the
	// two-reader-agreement reference) for a fix to count as covered;
	// 0 = 0.12 — high enough that two intersecting marginal (~0.3)
	// drops cannot fake a fix, low enough that one solid and one
	// partial agreement still count.
	MinPeak float64
	// HillClimbIters bounds the refinement; 0 = 50.
	HillClimbIters int
}

func (o Options) withDefaults() Options {
	if o.MinPeak == 0 {
		o.MinPeak = 0.12
	}
	if o.HillClimbIters == 0 {
		o.HillClimbIters = 50
	}
	return o
}

// Result is a localization fix.
type Result struct {
	Pos        geom.Point
	Likelihood float64 // absolute likelihood at the fix
	Confidence float64 // likelihood relative to the theoretical maximum
}

// Localize runs the grid search of Eq. 15 followed by hill climbing and
// returns the maximum-likelihood target position.
func Localize(views []*View, grid Grid, opts Options) (Result, error) {
	if len(views) == 0 {
		return Result{}, ErrNoViews
	}
	if err := grid.Validate(); err != nil {
		return Result{}, err
	}
	opts = opts.withDefaults()

	// Integer cell indices: accumulating y += Cell drifts in floating
	// point and can drop the last row/column before reaching YMax.
	nx, ny := grid.Cells()
	best := Result{Likelihood: -1}
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			p := grid.CellAt(ix, iy)
			if l := Likelihood(views, p); l > best.Likelihood {
				best = Result{Pos: p, Likelihood: l}
			}
		}
	}
	best = hillClimb(views, grid, best, opts.HillClimbIters)
	max := theoreticalMax(len(views))
	best.Confidence = best.Likelihood / max
	if best.Confidence < opts.MinPeak {
		return Result{}, ErrNotCovered
	}
	return best, nil
}

// theoreticalMax is the likelihood of the strongest *plausible* fix: a
// target is typically seen by about two readers (it cannot block paths
// toward every array at once), so the reference is two full-strength
// agreements with every other reader silent. Confidence ≈ 1 therefore
// means "at least two readers agree here", and a single reader's ridge
// — or pure noise — scores around ε or ε² respectively.
func theoreticalMax(n int) float64 {
	agree := n
	if agree > 2 {
		agree = 2
	}
	return math.Pow(1+epsilon, float64(agree)) * math.Pow(epsilon, float64(n-agree))
}

// hillClimb refines a fix by repeated best-neighbour moves with a
// shrinking step, starting at the grid resolution.
func hillClimb(views []*View, grid Grid, start Result, iters int) Result {
	step := grid.Cell
	cur := start
	for i := 0; i < iters && step > 1e-4; i++ {
		improved := false
		for _, d := range [][2]float64{{step, 0}, {-step, 0}, {0, step}, {0, -step}, {step, step}, {step, -step}, {-step, step}, {-step, -step}} {
			p := geom.Pt(cur.Pos.X+d[0], cur.Pos.Y+d[1], grid.Z)
			if !grid.Contains(p) {
				continue
			}
			if l := Likelihood(views, p); l > cur.Likelihood {
				cur = Result{Pos: p, Likelihood: l}
				improved = true
			}
		}
		if !improved {
			step /= 2
		}
	}
	return cur
}

// LocalizeMulti extracts up to maxTargets likelihood maxima separated by
// at least minSep metres (non-maximum suppression over the grid). Peaks
// below MinPeak confidence are discarded. This reproduces the paper's
// multi-target capability (Section 6.7): sparsely located targets block
// disjoint path subsets and appear as separate likelihood modes.
func LocalizeMulti(views []*View, grid Grid, maxTargets int, minSep float64, opts Options) ([]Result, error) {
	if len(views) == 0 {
		return nil, ErrNoViews
	}
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	if maxTargets <= 0 {
		return nil, nil
	}
	nx, ny := grid.Cells()
	field := make([]float64, nx*ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			field[iy*nx+ix] = Likelihood(views, grid.CellAt(ix, iy))
		}
	}
	return extractTargets(views, grid, field, nx, ny, maxTargets, minSep, opts), nil
}

// extractTargets runs the non-maximum suppression of LocalizeMulti over
// an already-evaluated likelihood field; field is consumed (zeroed).
func extractTargets(views []*View, grid Grid, field []float64, nx, ny, maxTargets int, minSep float64, opts Options) []Result {
	opts = opts.withDefaults()
	max := theoreticalMax(len(views))
	var out []Result
	taken := make([]geom.Point, 0, maxTargets)
	for len(out) < maxTargets {
		bi, bl := -1, 0.0
		for i, l := range field {
			if l > bl {
				p := grid.CellAt(i%nx, i/nx)
				ok := true
				for _, tp := range taken {
					if p.Dist2D(tp) < minSep {
						ok = false
						break
					}
				}
				if ok {
					bi, bl = i, l
				}
			}
		}
		if bi < 0 || bl/max < opts.MinPeak {
			break
		}
		p := grid.CellAt(bi%nx, bi/nx)
		r := hillClimb(views, grid, Result{Pos: p, Likelihood: bl}, opts.HillClimbIters)
		r.Confidence = r.Likelihood / max
		// Hill climbing may converge onto an already-accepted mode (the
		// seed was a shoulder of the same ridge): suppress and move on.
		dup := false
		for _, tp := range taken {
			if r.Pos.Dist2D(tp) < minSep {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, r)
			taken = append(taken, r.Pos)
		}
		// Suppress the whole connected mode: flood-fill from the seed
		// across every cell still above the acceptance floor (kills
		// ridge shoulders disc suppression would miss — separate modes
		// stay separate because their connecting valleys sit below the
		// floor), plus a minSep disc around both the seed and the summit.
		floodSuppress(field, nx, ny, bi, 0.9*opts.MinPeak*max)
		for i := range field {
			q := grid.CellAt(i%nx, i/nx)
			if q.Dist2D(p) < minSep || q.Dist2D(r.Pos) < minSep {
				field[i] = 0
			}
		}
	}
	return out
}

// floodSuppress zeroes the 4-connected component of cells with value
// above thresh, starting from cell start.
func floodSuppress(field []float64, nx, ny, start int, thresh float64) {
	if field[start] <= 0 {
		return
	}
	stack := []int{start}
	field[start] = 0
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		x, y := i%nx, i/nx
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			qx, qy := x+d[0], y+d[1]
			if qx < 0 || qx >= nx || qy < 0 || qy >= ny {
				continue
			}
			j := qy*nx + qx
			if field[j] > thresh {
				field[j] = 0
				stack = append(stack, j)
			}
		}
	}
}

// AngleObservation is one blocked-path angle at one reader, for the
// explicit triangulation formulation.
type AngleObservation struct {
	Array *rf.Array
	Angle float64 // blocked-path AoA, radians
}

// Triangulate intersects the direction cones of two angle observations
// at different arrays and returns the intersection points that fall
// inside the grid. An AoA θ at a linear array defines two rays in the
// plane (mirror ambiguity about the array axis); all valid ray-pair
// intersections are returned.
func Triangulate(a, b AngleObservation, grid Grid) []geom.Point {
	var out []geom.Point
	for _, da := range rayDirs(a) {
		for _, db := range rayDirs(b) {
			p, ok := intersectRays(a.Array.Center(), da, b.Array.Center(), db)
			if !ok {
				continue
			}
			p.Z = grid.Z
			if grid.Contains(p) {
				out = append(out, p)
			}
		}
	}
	return out
}

// rayDirs returns the two planar unit directions at angle θ from the
// array's AoA reference direction (the negative element axis — see
// rf.Array.AngleTo), mirror-symmetric about the array line.
func rayDirs(o AngleObservation) [2]geom.Point {
	ax := o.Array.Axis.Scale(-1)
	// Perpendicular in the plane.
	perp := geom.Pt2(-ax.Y, ax.X)
	c, s := math.Cos(o.Angle), math.Sin(o.Angle)
	d1 := ax.Scale(c).Add(perp.Scale(s))
	d2 := ax.Scale(c).Add(perp.Scale(-s))
	return [2]geom.Point{d1, d2}
}

// intersectRays intersects two forward rays p + t·d (t ≥ 0) in the x-y
// plane.
func intersectRays(p1, d1, p2, d2 geom.Point) (geom.Point, bool) {
	den := d1.X*d2.Y - d1.Y*d2.X
	if math.Abs(den) < 1e-12 {
		return geom.Point{}, false
	}
	dx, dy := p2.X-p1.X, p2.Y-p1.Y
	t1 := (dx*d2.Y - dy*d2.X) / den
	t2 := (dx*d1.Y - dy*d1.X) / den
	if t1 < 0 || t2 < 0 {
		return geom.Point{}, false
	}
	return geom.Pt2(p1.X+t1*d1.X, p1.Y+t1*d1.Y), true
}

// FuseCandidates implements the paper's explicit outlier rejection:
// candidate locations triangulated from wrong (reflection) angles
// scatter at random or far outside the monitoring area, while correct
// angles agree. All pairwise candidates are clustered with radius
// clusterR and the centroid of the largest cluster is returned.
func FuseCandidates(obs []AngleObservation, grid Grid, clusterR float64) (geom.Point, error) {
	var cands []geom.Point
	for i := 0; i < len(obs); i++ {
		for j := i + 1; j < len(obs); j++ {
			if obs[i].Array == obs[j].Array {
				// A target cannot block two paths at one reader at the
				// same time (Section 4.3) — skip same-reader pairs.
				continue
			}
			cands = append(cands, Triangulate(obs[i], obs[j], grid)...)
		}
	}
	if len(cands) == 0 {
		return geom.Point{}, ErrNotCovered
	}
	// Greedy clustering: for each candidate, count neighbours within
	// clusterR; take the densest cluster's centroid.
	bestCount, bestIdx := 0, 0
	for i, c := range cands {
		count := 0
		for _, d := range cands {
			if c.Dist2D(d) <= clusterR {
				count++
			}
		}
		if count > bestCount {
			bestCount, bestIdx = count, i
		}
	}
	var cx, cy float64
	n := 0
	for _, d := range cands {
		if cands[bestIdx].Dist2D(d) <= clusterR {
			cx += d.X
			cy += d.Y
			n++
		}
	}
	return geom.Pt(cx/float64(n), cy/float64(n), grid.Z), nil
}

// Tracker smooths a sequence of localization fixes for a moving target
// (Section 8: ≈0.1 s snapshots, human walking 1-2 m/s). It applies a
// max-speed gate and exponential smoothing, and coasts through
// deadzones with the last velocity estimate.
type Tracker struct {
	// MaxSpeed gates fixes: jumps implying more than MaxSpeed m/s are
	// rejected as outliers. 0 = 3 m/s.
	MaxSpeed float64
	// Alpha is the exponential smoothing weight of the newest fix.
	// 0 = 0.6.
	Alpha float64
	// Interval is the snapshot period in seconds. 0 = 0.1.
	Interval float64
	// MaxMisses is how many consecutive rejected/missing fixes the
	// tracker coasts through before it abandons the track and accepts
	// the next fix unconditionally (re-initialization). 0 = 5.
	MaxMisses int

	init   bool
	pos    geom.Point
	vel    geom.Point
	misses int
}

func (t *Tracker) params() (maxSpeed, alpha, interval float64, maxMisses int) {
	maxSpeed, alpha, interval, maxMisses = t.MaxSpeed, t.Alpha, t.Interval, t.MaxMisses
	if maxSpeed == 0 {
		maxSpeed = 3
	}
	if alpha == 0 {
		alpha = 0.6
	}
	if interval == 0 {
		interval = 0.1
	}
	if maxMisses == 0 {
		maxMisses = 5
	}
	return
}

// Update feeds a new fix (ok=false for a deadzone miss) and returns the
// smoothed position estimate. After MaxMisses consecutive misses or
// gated fixes the track is considered lost: coasting stops (the
// velocity is zeroed so a poisoned estimate cannot drag the track away)
// and the next fix re-initializes the track unconditionally.
func (t *Tracker) Update(fix geom.Point, ok bool) geom.Point {
	maxSpeed, alpha, interval, maxMisses := t.params()
	if !t.init {
		if ok {
			t.pos, t.init = fix, true
		}
		return t.pos
	}
	lost := t.misses >= maxMisses
	if ok && lost {
		// Re-acquire: trust the new fix, restart smoothing.
		t.pos = fix
		t.vel = geom.Point{}
		t.misses = 0
		return t.pos
	}
	if !ok || fix.Dist2D(t.pos) > maxSpeed*interval*2 {
		t.misses++
		if t.misses >= maxMisses {
			// Track lost: hold position instead of coasting further.
			t.vel = geom.Point{}
			return t.pos
		}
		// Deadzone or speed-gate rejection: coast on prediction.
		t.vel = t.vel.Scale(0.9)
		t.pos = t.pos.Add(t.vel.Scale(interval))
		return t.pos
	}
	t.misses = 0
	newPos := t.pos.Scale(1 - alpha).Add(fix.Scale(alpha))
	t.vel = newPos.Sub(t.pos).Scale(1 / interval)
	t.pos = newPos
	return t.pos
}

// Position returns the current smoothed estimate.
func (t *Tracker) Position() geom.Point { return t.pos }

// Initialized reports whether the tracker has received any valid fix.
func (t *Tracker) Initialized() bool { return t.init }
