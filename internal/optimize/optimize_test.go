package optimize

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func sphere(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// rastrigin is the classic multimodal benchmark: global minimum 0 at the
// origin, dense local minima everywhere else.
func rastrigin(x []float64) float64 {
	s := 10 * float64(len(x))
	for _, v := range x {
		s += v*v - 10*math.Cos(2*math.Pi*v)
	}
	return s
}

func TestGradientDescentSphere(t *testing.T) {
	x, fx := GradientDescent(sphere, []float64{3, -2, 1.5}, GDOptions{})
	if fx > 1e-6 {
		t.Errorf("GD on sphere: f = %v at %v", fx, x)
	}
}

func TestGradientDescentQuadraticOffset(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-2)*(x[0]-2) + 3*(x[1]+1)*(x[1]+1)
	}
	x, fx := GradientDescent(f, []float64{0, 0}, GDOptions{MaxIter: 500})
	if fx > 1e-6 {
		t.Errorf("f = %v", fx)
	}
	if math.Abs(x[0]-2) > 1e-3 || math.Abs(x[1]+1) > 1e-3 {
		t.Errorf("x = %v, want (2, -1)", x)
	}
}

func TestGradientDescentDoesNotWorsen(t *testing.T) {
	x0 := []float64{0.1, 0.1}
	f0 := rastrigin(x0)
	_, fx := GradientDescent(rastrigin, x0, GDOptions{})
	if fx > f0 {
		t.Errorf("GD worsened objective: %v -> %v", f0, fx)
	}
}

func TestGeneticSphere(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, fx, err := Genetic(sphere, 4, GAOptions{Lo: -5, Hi: 5, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if fx > 0.5 {
		t.Errorf("GA on sphere: f = %v at %v", fx, x)
	}
}

func TestGeneticValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, _, err := Genetic(sphere, 3, GAOptions{Lo: 1, Hi: -1, Rng: rng}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("Lo>Hi: %v", err)
	}
	if _, _, err := Genetic(sphere, 0, GAOptions{Lo: -1, Hi: 1, Rng: rng}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("n=0: %v", err)
	}
	if _, _, err := Genetic(sphere, 3, GAOptions{Lo: -1, Hi: 1}); err == nil {
		t.Error("nil rng must error")
	}
}

func TestHybridBeatsPlainGDOnRastrigin(t *testing.T) {
	// Start GD from a deliberately bad point: it gets stuck in a local
	// minimum. The hybrid must find a much better one.
	bad := []float64{2.5, -3.5, 4.5}
	_, gdF := GradientDescent(rastrigin, bad, GDOptions{})

	rng := rand.New(rand.NewSource(3))
	_, hyF, err := Hybrid(rastrigin, 3, HybridOptions{
		GA: GAOptions{Lo: -5.12, Hi: 5.12, Rng: rng, Generations: 80, Population: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hyF >= gdF {
		t.Errorf("hybrid (%v) no better than stuck GD (%v)", hyF, gdF)
	}
	if hyF > 2 {
		t.Errorf("hybrid f = %v, want near 0", hyF)
	}
}

func TestHybridValidatesGA(t *testing.T) {
	if _, _, err := Hybrid(sphere, 2, HybridOptions{GA: GAOptions{Lo: -1, Hi: 1}}); err == nil {
		t.Error("nil rng must propagate as error")
	}
}

func TestGeneticDeterministicWithSeed(t *testing.T) {
	run := func() ([]float64, float64) {
		x, f, err := Genetic(sphere, 3, GAOptions{Lo: -2, Hi: 2, Rng: rand.New(rand.NewSource(42))})
		if err != nil {
			t.Fatal(err)
		}
		return x, f
	}
	x1, f1 := run()
	x2, f2 := run()
	if f1 != f2 {
		t.Errorf("nondeterministic: %v vs %v", f1, f2)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Errorf("nondeterministic genes: %v vs %v", x1, x2)
			break
		}
	}
}

func TestGradientDescentPreservesInput(t *testing.T) {
	x0 := []float64{1, 2}
	GradientDescent(sphere, x0, GDOptions{MaxIter: 5})
	if x0[0] != 1 || x0[1] != 2 {
		t.Errorf("input mutated: %v", x0)
	}
}
