// Package optimize provides the hybrid genetic-algorithm +
// gradient-descent solver D-Watch's wireless phase calibration uses for
// the non-convex subspace objective of Eq. 11 (Section 4.1: "GA starts
// initiating all the unknowns and then refines the solution with the GD
// algorithm to find the closest local minimum").
//
// The objective is a black-box function of a real vector; gradients are
// taken numerically by central differences, which is plenty for the
// 3-15 dimensional calibration problems the system solves.
package optimize

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Objective is a function to minimize.
type Objective func(x []float64) float64

// ErrBadConfig is returned for invalid optimizer configuration.
var ErrBadConfig = errors.New("optimize: bad configuration")

// GDOptions configures gradient descent.
type GDOptions struct {
	MaxIter  int     // 0 = 200
	Step     float64 // initial step; 0 = 0.5
	Eps      float64 // finite-difference epsilon; 0 = 1e-6
	Tol      float64 // stop when the improvement per iteration < Tol; 0 = 1e-12
	Backtrak int     // max backtracking halvings per iteration; 0 = 30
}

func (o GDOptions) withDefaults() GDOptions {
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
	if o.Step == 0 {
		o.Step = 0.5
	}
	if o.Eps == 0 {
		o.Eps = 1e-6
	}
	if o.Tol == 0 {
		o.Tol = 1e-12
	}
	if o.Backtrak == 0 {
		o.Backtrak = 30
	}
	return o
}

// GradientDescent minimizes f from x0 with numerical gradients and
// backtracking line search. It returns the best point found and its
// objective value.
func GradientDescent(f Objective, x0 []float64, opts GDOptions) ([]float64, float64) {
	opts = opts.withDefaults()
	n := len(x0)
	x := append([]float64(nil), x0...)
	fx := f(x)
	grad := make([]float64, n)
	trial := make([]float64, n)
	step := opts.Step
	for iter := 0; iter < opts.MaxIter; iter++ {
		// Central-difference gradient.
		var gnorm float64
		for i := 0; i < n; i++ {
			orig := x[i]
			x[i] = orig + opts.Eps
			fp := f(x)
			x[i] = orig - opts.Eps
			fm := f(x)
			x[i] = orig
			grad[i] = (fp - fm) / (2 * opts.Eps)
			gnorm += grad[i] * grad[i]
		}
		gnorm = math.Sqrt(gnorm)
		if gnorm < 1e-15 {
			break
		}
		// Backtracking line search along -grad.
		improved := false
		s := step
		for b := 0; b < opts.Backtrak; b++ {
			for i := 0; i < n; i++ {
				trial[i] = x[i] - s*grad[i]/gnorm
			}
			ft := f(trial)
			if ft < fx {
				copy(x, trial)
				if fx-ft < opts.Tol {
					fx = ft
					return x, fx
				}
				fx = ft
				improved = true
				step = s * 1.5 // be a little greedier next time
				break
			}
			s /= 2
		}
		if !improved {
			break
		}
	}
	return x, fx
}

// GAOptions configures the genetic algorithm.
type GAOptions struct {
	Population  int        // 0 = 40
	Generations int        // 0 = 60
	Elite       int        // survivors copied unchanged; 0 = 4
	MutateStd   float64    // Gaussian mutation std; 0 = 0.3
	CrossProb   float64    // per-gene crossover probability; 0 = 0.5
	Lo, Hi      float64    // gene initialization range (required: Lo < Hi)
	Rng         *rand.Rand // required
}

func (o GAOptions) withDefaults() GAOptions {
	if o.Population == 0 {
		o.Population = 40
	}
	if o.Generations == 0 {
		o.Generations = 60
	}
	if o.Elite == 0 {
		o.Elite = 4
	}
	if o.MutateStd == 0 {
		o.MutateStd = 0.3
	}
	if o.CrossProb == 0 {
		o.CrossProb = 0.5
	}
	return o
}

type individual struct {
	genes []float64
	fit   float64
}

// Genetic minimizes f over n-dimensional vectors with a simple
// generational GA: tournament selection, uniform crossover, Gaussian
// mutation, elitism. Returns the best individual found.
func Genetic(f Objective, n int, opts GAOptions) ([]float64, float64, error) {
	if opts.Rng == nil {
		return nil, 0, errors.New("optimize: GAOptions.Rng must be set")
	}
	if !(opts.Lo < opts.Hi) {
		return nil, 0, ErrBadConfig
	}
	if n <= 0 {
		return nil, 0, ErrBadConfig
	}
	opts = opts.withDefaults()
	rng := opts.Rng

	pop := make([]individual, opts.Population)
	for i := range pop {
		g := make([]float64, n)
		for j := range g {
			g[j] = opts.Lo + rng.Float64()*(opts.Hi-opts.Lo)
		}
		pop[i] = individual{genes: g, fit: f(g)}
	}
	sortPop(pop)

	tournament := func() individual {
		a := pop[rng.Intn(len(pop))]
		b := pop[rng.Intn(len(pop))]
		if a.fit <= b.fit {
			return a
		}
		return b
	}

	next := make([]individual, 0, opts.Population)
	for gen := 0; gen < opts.Generations; gen++ {
		next = next[:0]
		elite := opts.Elite
		if elite > len(pop) {
			elite = len(pop)
		}
		for i := 0; i < elite; i++ {
			next = append(next, individual{genes: append([]float64(nil), pop[i].genes...), fit: pop[i].fit})
		}
		for len(next) < opts.Population {
			p1, p2 := tournament(), tournament()
			child := make([]float64, n)
			for j := 0; j < n; j++ {
				if rng.Float64() < opts.CrossProb {
					child[j] = p1.genes[j]
				} else {
					child[j] = p2.genes[j]
				}
				if rng.Float64() < 0.2 {
					child[j] += rng.NormFloat64() * opts.MutateStd
				}
			}
			next = append(next, individual{genes: child, fit: f(child)})
		}
		pop, next = next, pop
		sortPop(pop)
	}
	best := pop[0]
	return append([]float64(nil), best.genes...), best.fit, nil
}

func sortPop(pop []individual) {
	sort.Slice(pop, func(i, j int) bool { return pop[i].fit < pop[j].fit })
}

// HybridOptions configures the GA+GD hybrid.
type HybridOptions struct {
	GA GAOptions
	GD GDOptions
	// Polish is how many of the GA's best individuals get a GD polish;
	// 0 = 3.
	Polish int
}

// Hybrid runs the paper's calibration optimizer: a GA global search
// whose best candidates are each refined by gradient descent, returning
// the overall best point.
func Hybrid(f Objective, n int, opts HybridOptions) ([]float64, float64, error) {
	if opts.Polish == 0 {
		opts.Polish = 3
	}
	best, bestF, err := Genetic(f, n, opts.GA)
	if err != nil {
		return nil, 0, err
	}
	// Collect GA-polished candidates: the GA winner plus random restarts
	// near it to escape shallow basins.
	rng := opts.GA.Rng
	cands := [][]float64{best}
	for i := 1; i < opts.Polish; i++ {
		c := make([]float64, n)
		for j := range c {
			c[j] = best[j] + rng.NormFloat64()*0.2
		}
		cands = append(cands, c)
	}
	for _, c := range cands {
		x, fx := GradientDescent(f, c, opts.GD)
		if fx < bestF {
			best, bestF = x, fx
		}
	}
	return best, bestF, nil
}
