package rf

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"dwatch/internal/geom"
)

func TestWavelength(t *testing.T) {
	l := Wavelength(DefaultFrequencyHz)
	if math.Abs(l-0.325) > 0.001 {
		t.Errorf("wavelength = %v, want ≈0.325 m", l)
	}
}

func TestWrapPhase(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-0.5, -0.5},
		{2*math.Pi + 0.25, 0.25},
	}
	for _, c := range cases {
		if got := WrapPhase(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WrapPhase(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWrapPhaseProperty(t *testing.T) {
	f := func(p float64) bool {
		p = math.Mod(p, 1000)
		w := WrapPhase(p)
		if w <= -math.Pi || w > math.Pi+1e-12 {
			return false
		}
		// Must differ from input by a multiple of 2π.
		k := (p - w) / (2 * math.Pi)
		return math.Abs(k-math.Round(k)) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDBRoundTrip(t *testing.T) {
	for _, r := range []float64{0.001, 0.5, 1, 2, 100} {
		if got := FromDB(DB(r)); math.Abs(got-r) > 1e-12*r {
			t.Errorf("FromDB(DB(%v)) = %v", r, got)
		}
	}
	if got := AmplitudeFromDB(-20); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("AmplitudeFromDB(-20) = %v, want 0.1", got)
	}
	if got := DB(10); math.Abs(got-10) > 1e-12 {
		t.Errorf("DB(10) = %v", got)
	}
}

func mustArray(t *testing.T, m int) *Array {
	t.Helper()
	a, err := NewArray(geom.Pt2(0, 0), geom.Pt2(1, 0), m)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewArrayValidation(t *testing.T) {
	if _, err := NewArray(geom.Pt2(0, 0), geom.Pt2(1, 0), 1); !errors.Is(err, ErrBadArray) {
		t.Error("1-element array must be rejected")
	}
	if _, err := NewArray(geom.Pt2(0, 0), geom.Pt2(0, 0), 4); !errors.Is(err, ErrBadArray) {
		t.Error("zero axis must be rejected")
	}
	if _, err := NewArrayFull(geom.Pt2(0, 0), geom.Pt2(1, 0), 4, -1, 0.3); !errors.Is(err, ErrBadArray) {
		t.Error("negative spacing must be rejected")
	}
}

func TestElementPosAndCenter(t *testing.T) {
	a := mustArray(t, 8)
	p7 := a.ElementPos(7)
	want := 7 * DefaultWavelength / 2
	if math.Abs(p7.X-want) > 1e-12 || p7.Y != 0 {
		t.Errorf("ElementPos(7) = %v, want x=%v", p7, want)
	}
	c := a.Center()
	if math.Abs(c.X-want/2) > 1e-12 {
		t.Errorf("Center = %v", c)
	}
}

func TestSteeringReference(t *testing.T) {
	a := mustArray(t, 8)
	for _, theta := range []float64{0.2, math.Pi / 2, 2.5} {
		s := a.Steering(theta)
		if s[0] != 1 {
			t.Errorf("steering[0] = %v, want 1", s[0])
		}
		for m := range s {
			if math.Abs(cmplx.Abs(s[m])-1) > 1e-12 {
				t.Errorf("steering magnitude = %v at m=%d", cmplx.Abs(s[m]), m)
			}
		}
	}
}

func TestSteeringBroadside(t *testing.T) {
	// At θ=π/2, cos θ = 0, so all elements see identical phase.
	a := mustArray(t, 8)
	s := a.Steering(math.Pi / 2)
	for m, v := range s {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("broadside steering[%d] = %v, want 1", m, v)
		}
	}
}

func TestSteeringEndfire(t *testing.T) {
	// At θ=0 with d=λ/2, adjacent phase lag is π: elements alternate ±1.
	a := mustArray(t, 4)
	s := a.Steering(0)
	for m, v := range s {
		want := complex(1, 0)
		if m%2 == 1 {
			want = -1
		}
		if cmplx.Abs(v-want) > 1e-9 {
			t.Errorf("endfire steering[%d] = %v, want %v", m, v, want)
		}
	}
}

func TestSteeringSub(t *testing.T) {
	a := mustArray(t, 8)
	full := a.Steering(1.1)
	sub := a.SteeringSub(1.1, 5)
	if len(sub) != 5 {
		t.Fatalf("len = %d", len(sub))
	}
	for i := range sub {
		if sub[i] != full[i] {
			t.Errorf("SteeringSub[%d] != Steering prefix", i)
		}
	}
}

func TestAngleTo(t *testing.T) {
	a := mustArray(t, 8)
	c := a.Center()
	// Point directly broadside of the centre.
	p := geom.Pt2(c.X, 5)
	if got := a.AngleTo(p); math.Abs(got-math.Pi/2) > 1e-9 {
		t.Errorf("AngleTo broadside = %v", Deg(got))
	}
	// A point beyond the last element (along +axis) is at θ = π; a
	// point behind the reference element is at θ = 0 (Fig. 2 geometry).
	if got := a.AngleTo(geom.Pt2(c.X+10, 0)); math.Abs(got-math.Pi) > 1e-9 {
		t.Errorf("AngleTo +axis = %v, want 180", Deg(got))
	}
	if got := a.AngleTo(geom.Pt2(c.X-10, 0)); math.Abs(got) > 1e-9 {
		t.Errorf("AngleTo -axis = %v, want 0", Deg(got))
	}
}

func TestAngleFromTwoPhases(t *testing.T) {
	a := mustArray(t, 2)
	// Simulate a plane wave from θ: phase at element m is -ω(m,θ)+const.
	for _, theta := range []float64{0.3, 1.0, math.Pi / 2, 2.6} {
		phi1 := 0.37 // arbitrary common phase
		phi2 := phi1 - a.Omega(1, theta)
		got, err := a.AngleFromTwoPhases(phi1, phi2)
		if err != nil {
			t.Fatalf("theta=%v: %v", theta, err)
		}
		if math.Abs(got-theta) > 1e-9 {
			t.Errorf("AngleFromTwoPhases = %v, want %v", got, theta)
		}
	}
	// With d=λ/2 every wrapped phase maps to a valid cos θ; use a λ/4
	// spacing where a large measured Δφ is unphysical and must error.
	l := DefaultWavelength
	quarter, err := NewArrayFull(geom.Pt2(0, 0), geom.Pt2(1, 0), 2, l/4, l)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := quarter.AngleFromTwoPhases(0.9*math.Pi, 0); err == nil {
		t.Error("expected error for unphysical phase difference")
	}
}

func TestAngleGrid(t *testing.T) {
	g := AngleGrid(181)
	if len(g) != 181 {
		t.Fatalf("len = %d", len(g))
	}
	if g[0] != 0 || math.Abs(g[180]-math.Pi) > 1e-12 {
		t.Errorf("grid ends = %v, %v", g[0], g[180])
	}
	if math.Abs(g[90]-math.Pi/2) > 1e-12 {
		t.Errorf("grid midpoint = %v", g[90])
	}
	if g := AngleGrid(1); len(g) != 1 || g[0] != math.Pi/2 {
		t.Errorf("degenerate grid = %v", g)
	}
}

func TestDegRad(t *testing.T) {
	if math.Abs(Deg(math.Pi)-180) > 1e-12 {
		t.Error("Deg(π) != 180")
	}
	if math.Abs(Rad(90)-math.Pi/2) > 1e-12 {
		t.Error("Rad(90) != π/2")
	}
}

func TestPhaseForDistance(t *testing.T) {
	l := 0.325
	// One full wavelength wraps to zero.
	if got := PhaseForDistance(l, l); math.Abs(got) > 1e-9 {
		t.Errorf("PhaseForDistance(λ) = %v", got)
	}
	// Half wavelength gives ±π.
	if got := math.Abs(PhaseForDistance(l/2, l)); math.Abs(got-math.Pi) > 1e-9 {
		t.Errorf("PhaseForDistance(λ/2) = %v", got)
	}
}
