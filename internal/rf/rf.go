// Package rf holds the radio-frequency primitives shared by the D-Watch
// stack: carrier constants for the 920.5-924.5 MHz UHF RFID band the
// paper uses, uniform-linear-array geometry, steering vectors (Eq. 2-4
// of the paper), and decibel helpers.
package rf

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"dwatch/internal/geom"
)

// SpeedOfLight is the propagation speed in m/s.
const SpeedOfLight = 299792458.0

// DefaultFrequencyHz is the centre of the paper's operating band
// (920.5-924.5 MHz, the legal UHF band in China).
const DefaultFrequencyHz = 922.5e6

// Wavelength returns the wavelength in metres for a carrier frequency.
func Wavelength(freqHz float64) float64 { return SpeedOfLight / freqHz }

// DefaultWavelength is the wavelength at DefaultFrequencyHz (≈ 0.325 m).
var DefaultWavelength = Wavelength(DefaultFrequencyHz)

// PhaseForDistance returns the propagation phase -2π·d/λ accumulated over
// distance d, wrapped to (-π, π].
func PhaseForDistance(d, lambda float64) float64 {
	return WrapPhase(-2 * math.Pi * d / lambda)
}

// WrapPhase wraps an angle in radians to (-π, π].
func WrapPhase(p float64) float64 {
	p = math.Mod(p, 2*math.Pi)
	if p > math.Pi {
		p -= 2 * math.Pi
	} else if p <= -math.Pi {
		p += 2 * math.Pi
	}
	return p
}

// PhaseDiff returns the wrapped difference a-b in (-π, π].
func PhaseDiff(a, b float64) float64 { return WrapPhase(a - b) }

// DB converts a power ratio to decibels.
func DB(ratio float64) float64 { return 10 * math.Log10(ratio) }

// FromDB converts decibels to a power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// AmplitudeFromDB converts a power change in dB to an amplitude factor.
func AmplitudeFromDB(db float64) float64 { return math.Pow(10, db/20) }

// ErrBadArray is returned for invalid array configurations.
var ErrBadArray = errors.New("rf: invalid array configuration")

// Array is a uniform linear antenna array. Element 0 is the reference
// antenna at Origin; element m sits at Origin + m·Spacing·Axis.
type Array struct {
	Origin   geom.Point // position of the reference element
	Axis     geom.Point // unit vector along the array (x-y plane)
	Elements int        // number of antennas M
	Spacing  float64    // inter-element spacing in metres (λ/2 by default)
	Lambda   float64    // carrier wavelength in metres
}

// NewArray constructs a uniform linear array with λ/2 spacing at the
// default carrier.
func NewArray(origin geom.Point, axis geom.Point, elements int) (*Array, error) {
	lambda := DefaultWavelength
	return NewArrayFull(origin, axis, elements, lambda/2, lambda)
}

// NewArrayFull constructs an array with explicit spacing and wavelength.
func NewArrayFull(origin, axis geom.Point, elements int, spacing, lambda float64) (*Array, error) {
	if elements < 2 {
		return nil, fmt.Errorf("%w: need at least 2 elements, got %d", ErrBadArray, elements)
	}
	if spacing <= 0 || lambda <= 0 {
		return nil, fmt.Errorf("%w: spacing %v, lambda %v", ErrBadArray, spacing, lambda)
	}
	u := axis.Unit()
	if u.Norm() == 0 {
		return nil, fmt.Errorf("%w: zero axis", ErrBadArray)
	}
	return &Array{Origin: origin, Axis: u, Elements: elements, Spacing: spacing, Lambda: lambda}, nil
}

// ElementPos returns the position of element m (0-based).
func (a *Array) ElementPos(m int) geom.Point {
	return a.Origin.Add(a.Axis.Scale(float64(m) * a.Spacing))
}

// Center returns the geometric centre of the array.
func (a *Array) Center() geom.Point {
	return a.Origin.Add(a.Axis.Scale(float64(a.Elements-1) * a.Spacing / 2))
}

// Omega returns ω(m, θ) = (m)·2πd/λ·cos θ, the phase lag of element m
// (0-based; the paper's Eq. 2 uses 1-based m with an (m-1) factor).
func (a *Array) Omega(m int, theta float64) float64 {
	return float64(m) * 2 * math.Pi * a.Spacing / a.Lambda * math.Cos(theta)
}

// Steering returns the steering vector a(θ) of Eq. 4:
// [1, e^{-jω(1,θ)}, …, e^{-jω(M-1,θ)}].
func (a *Array) Steering(theta float64) []complex128 {
	v := make([]complex128, a.Elements)
	for m := 0; m < a.Elements; m++ {
		v[m] = cmplx.Exp(complex(0, -a.Omega(m, theta)))
	}
	return v
}

// SteeringSub returns the steering vector truncated to the first n
// elements, used with spatially smoothed (subarray) covariances.
func (a *Array) SteeringSub(theta float64, n int) []complex128 {
	v := make([]complex128, n)
	for m := 0; m < n; m++ {
		v[m] = cmplx.Exp(complex(0, -a.Omega(m, theta)))
	}
	return v
}

// SteeringAt returns the exact near-field (spherical-wavefront) steering
// vector for a source at point p: element m's entry carries the phase of
// its path-length excess over the reference element. For far sources it
// converges to Steering(AngleTo(p)). Calibration uses it because tag
// positions are known during that one step (paper footnote 2), which
// removes the plane-wave approximation error across the 1.3 m aperture.
func (a *Array) SteeringAt(p geom.Point) []complex128 {
	v := make([]complex128, a.Elements)
	ref := p.Dist(a.ElementPos(0))
	for m := 0; m < a.Elements; m++ {
		dl := p.Dist(a.ElementPos(m)) - ref
		v[m] = cmplx.Exp(complex(0, -2*math.Pi*dl/a.Lambda))
	}
	return v
}

// AngleTo returns the AoA θ ∈ [0, π] at which a signal from p arrives
// at the array. Per the geometry of the paper's Fig. 2 (antenna 1 is
// nearest the source; the signal reaches element m with an extra path
// of (m−1)·d·cos θ), θ is measured from the direction OPPOSITE the
// element axis: a source beyond the last element is at θ = π, a
// broadside source at θ = π/2.
func (a *Array) AngleTo(p geom.Point) float64 {
	return geom.AngleFrom(a.Center(), p, a.Axis.Scale(-1))
}

// AngleFromTwoPhases implements the paper's Eq. 1: the AoA recovered
// from the phase difference measured at two adjacent antennas. It
// returns an error when the implied |cos θ| exceeds 1 (calibration or
// noise artefacts).
func (a *Array) AngleFromTwoPhases(phi1, phi2 float64) (float64, error) {
	c := PhaseDiff(phi1, phi2) * a.Lambda / (2 * math.Pi * a.Spacing)
	if c < -1 || c > 1 {
		return 0, fmt.Errorf("rf: phase difference implies cos θ = %v outside [-1,1]", c)
	}
	return math.Acos(c), nil
}

// AngleGrid returns n angles sampling [0, π] inclusive, the search grid
// both MUSIC and P-MUSIC scan.
func AngleGrid(n int) []float64 {
	if n < 2 {
		return []float64{math.Pi / 2}
	}
	g := make([]float64, n)
	for i := range g {
		g[i] = math.Pi * float64(i) / float64(n-1)
	}
	return g
}

// GridBin returns the index of the AngleGrid(n) angle nearest to theta,
// clamped to [0, n-1] — the O(1) lookup every uniform-grid spectrum
// consumer (loc.View.DropAt, pmusic.Spectrum.PowerAt, loc.GridIndex)
// shares so their rounding cannot drift apart.
func GridBin(theta float64, n int) int {
	if n < 2 {
		return 0
	}
	i := int(theta/math.Pi*float64(n-1) + 0.5)
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180 }
