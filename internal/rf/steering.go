// Steering tables: the precomputed half of the P-MUSIC hot path.
//
// Every spectrum scan evaluates the same steering vectors a(θ) and
// beamforming weights e^{+jω(m,θ)} at the same grid angles — all of it
// a pure function of the array geometry and the grid size, which never
// change during a session. SteeringTable computes them once into flat
// row-major matrices so the per-spectrum inner loops are pure table
// walks with zero cmplx.Exp calls and zero allocation per angle. Tables
// are immutable after construction and safe to share across goroutines;
// SteeringTableFor memoizes them process-wide by array geometry.
package rf

import (
	"fmt"
	"math/cmplx"
	"sync"

	"dwatch/internal/geom"
)

// SteeringTable holds the steering vectors and conjugate beamforming
// weights of one array over one angle grid. Steering rows are truncated
// to the subarray length the spatially smoothed MUSIC scan needs;
// weight rows span the full array for the Eq. 13 beamformer. The table
// is read-only after construction.
type SteeringTable struct {
	Elements int       // full array size M (weight row length)
	Sub      int       // subarray length L (steering row length)
	Angles   []float64 // AngleGrid(n); shared — callers must not mutate

	steer   []complex128 // len(Angles)×Sub, row-major: a(θᵢ) truncated to L
	weights []complex128 // len(Angles)×M, row-major: e^{+jω(m,θᵢ)}
}

// NewSteeringTable precomputes the table for an array, an angle-grid
// size, and a subarray length. Entries are built with the exact same
// expressions as Array.SteeringSub and the Eq. 13 weights, so consumers
// are bit-identical to the uncached per-angle path.
func NewSteeringTable(arr *Array, gridSize, sub int) (*SteeringTable, error) {
	if sub < 1 || sub > arr.Elements {
		return nil, fmt.Errorf("%w: subarray length %d for %d elements", ErrBadArray, sub, arr.Elements)
	}
	angles := AngleGrid(gridSize)
	t := &SteeringTable{
		Elements: arr.Elements,
		Sub:      sub,
		Angles:   angles,
		steer:    make([]complex128, len(angles)*sub),
		weights:  make([]complex128, len(angles)*arr.Elements),
	}
	for i, th := range angles {
		sr := t.steer[i*sub : (i+1)*sub]
		for m := range sr {
			sr[m] = cmplx.Exp(complex(0, -arr.Omega(m, th)))
		}
		wr := t.weights[i*arr.Elements : (i+1)*arr.Elements]
		for m := range wr {
			wr[m] = cmplx.Exp(complex(0, arr.Omega(m, th)))
		}
	}
	return t, nil
}

// Len returns the number of grid angles.
func (t *SteeringTable) Len() int { return len(t.Angles) }

// Steering returns the subarray steering vector at grid angle i —
// identical to Array.SteeringSub(Angles[i], Sub). The slice aliases the
// table and must not be modified.
func (t *SteeringTable) Steering(i int) []complex128 {
	return t.steer[i*t.Sub : (i+1)*t.Sub]
}

// Weights returns the full-array beamforming weights e^{+jω(m,θᵢ)} at
// grid angle i. The slice aliases the table and must not be modified.
func (t *SteeringTable) Weights(i int) []complex128 {
	return t.weights[i*t.Elements : (i+1)*t.Elements]
}

// tableKey identifies a steering table by array geometry (by value, so
// distinct Array instances with equal geometry share one table) plus
// the grid and subarray sizes.
type tableKey struct {
	origin, axis    geom.Point
	elements        int
	spacing, lambda float64
	gridSize, sub   int
}

var tableCache sync.Map // tableKey → *SteeringTable

// SteeringTableFor returns the memoized steering table for the given
// array geometry, grid size, and subarray length, computing it on first
// use. Concurrent callers may race to build the first table; one copy
// wins and the rest are discarded, so the returned table is always safe
// to share read-only across goroutines.
func SteeringTableFor(arr *Array, gridSize, sub int) (*SteeringTable, error) {
	key := tableKey{
		origin: arr.Origin, axis: arr.Axis,
		elements: arr.Elements, spacing: arr.Spacing, lambda: arr.Lambda,
		gridSize: gridSize, sub: sub,
	}
	if v, ok := tableCache.Load(key); ok {
		return v.(*SteeringTable), nil
	}
	t, err := NewSteeringTable(arr, gridSize, sub)
	if err != nil {
		return nil, err
	}
	v, _ := tableCache.LoadOrStore(key, t)
	return v.(*SteeringTable), nil
}
