package rf

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"
)

func TestSteeringTableMatchesSteeringSub(t *testing.T) {
	a := mustArray(t, 8)
	tab, err := NewSteeringTable(a, 181, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 181 || len(tab.Angles) != 181 {
		t.Fatalf("Len = %d, angles = %d", tab.Len(), len(tab.Angles))
	}
	grid := AngleGrid(181)
	for i, th := range grid {
		if tab.Angles[i] != th {
			t.Fatalf("Angles[%d] = %v, want %v", i, tab.Angles[i], th)
		}
		// Exact equality: the table must reproduce SteeringSub bit for
		// bit so cached spectra are bit-identical to uncached ones.
		want := a.SteeringSub(th, 5)
		got := tab.Steering(i)
		if len(got) != 5 {
			t.Fatalf("steering row %d: len = %d", i, len(got))
		}
		for m := range want {
			if got[m] != want[m] {
				t.Fatalf("steering[%d][%d] = %v, want %v", i, m, got[m], want[m])
			}
		}
		w := tab.Weights(i)
		if len(w) != a.Elements {
			t.Fatalf("weights row %d: len = %d", i, len(w))
		}
		for m := range w {
			if want := cmplx.Exp(complex(0, a.Omega(m, th))); w[m] != want {
				t.Fatalf("weights[%d][%d] = %v, want %v", i, m, w[m], want)
			}
		}
	}
}

func TestNewSteeringTableValidation(t *testing.T) {
	a := mustArray(t, 4)
	for _, sub := range []int{0, -1, 5} {
		if _, err := NewSteeringTable(a, 91, sub); !errors.Is(err, ErrBadArray) {
			t.Errorf("sub=%d: want ErrBadArray, got %v", sub, err)
		}
	}
	if _, err := NewSteeringTable(a, 91, 4); err != nil {
		t.Errorf("sub=Elements must be accepted: %v", err)
	}
}

func TestSteeringTableForCaches(t *testing.T) {
	a := mustArray(t, 8)
	t1, err := SteeringTableFor(a, 181, 5)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := SteeringTableFor(a, 181, 5)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("same geometry did not hit the cache")
	}
	// A distinct Array value with identical geometry shares the entry:
	// the key is the geometry, not the pointer.
	b := mustArray(t, 8)
	t3, err := SteeringTableFor(b, 181, 5)
	if err != nil {
		t.Fatal(err)
	}
	if t3 != t1 {
		t.Error("equal geometry through a different pointer missed the cache")
	}
	// Different parameters get their own table.
	t4, err := SteeringTableFor(a, 91, 5)
	if err != nil {
		t.Fatal(err)
	}
	if t4 == t1 {
		t.Error("different grid size shared a table")
	}
}

func TestGridBinMatchesLinearScan(t *testing.T) {
	grid := AngleGrid(181)
	nearest := func(theta float64) int {
		best, bestD := 0, math.Inf(1)
		for i, g := range grid {
			if d := math.Abs(g - theta); d < bestD {
				best, bestD = i, d
			}
		}
		return best
	}
	for theta := -0.5; theta <= math.Pi+0.5; theta += 0.013 {
		if got, want := GridBin(theta, 181), nearest(theta); got != want {
			t.Fatalf("GridBin(%v) = %d, linear scan = %d", theta, got, want)
		}
	}
	if GridBin(1.0, 1) != 0 || GridBin(1.0, 0) != 0 {
		t.Error("degenerate grids must map to bin 0")
	}
}
