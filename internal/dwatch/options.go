package dwatch

import (
	"dwatch/internal/loc"
	"dwatch/internal/music"
)

// Option configures a System at construction. Zero-valued fields keep
// the paper's defaults (see Config).
type Option func(*Config)

// WithConfig overlays a whole Config — the bridge for callers that
// assemble configuration programmatically (state restore, experiment
// sweeps).
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithSnapshots sets the per-tag snapshot count per acquisition
// (0 = 10, the paper's packet count).
func WithSnapshots(n int) Option { return func(c *Config) { c.Snapshots = n } }

// WithGridSize sets the AoA scan resolution (0 = 361, 0.5° steps).
func WithGridSize(n int) Option { return func(c *Config) { c.GridSize = n } }

// WithCalibration selects the RF-chain offset handling mode.
func WithCalibration(m CalibrationMode) Option { return func(c *Config) { c.Calibration = m } }

// WithMinDrop sets the per-peak fractional power drop that counts as a
// blocking event (0 = 0.35).
func WithMinDrop(d float64) Option { return func(c *Config) { c.MinDrop = d } }

// WithLoc sets the localization options.
func WithLoc(o loc.Options) Option { return func(c *Config) { c.Loc = o } }

// WithMusic sets the subspace options (grid size is still overridden
// by GridSize).
func WithMusic(o music.Options) Option { return func(c *Config) { c.Music = o } }

// WithInventory gates acquisitions on Gen2 slotted-ALOHA singulation.
func WithInventory(on bool) Option { return func(c *Config) { c.RunInventory = on } }
