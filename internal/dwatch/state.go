package dwatch

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"dwatch/internal/music"
	"dwatch/internal/pmusic"
	"dwatch/internal/rf"
)

// Persistence: the paper notes calibration is "a one-time effort for
// one power on-off cycle" and the baseline takes seconds — but a
// deployment restarting its *server* process should not have to redo
// either. SaveState/LoadState serialize the calibration offsets and the
// fused baseline (spectra + monitored peaks) as JSON.

// stateVersion guards the on-disk format.
const stateVersion = 1

// ErrBadState is returned when a state blob fails validation.
var ErrBadState = errors.New("dwatch: bad state")

type spectrumState struct {
	GridSize int       `json:"grid_size"`
	Power    []float64 `json:"power"`
	Beam     []float64 `json:"beam"`
}

type peakState struct {
	Index     int     `json:"index"`
	Angle     float64 `json:"angle"`
	Amplitude float64 `json:"amplitude"`
}

type state struct {
	Version int                  `json:"version"`
	Offsets map[string][]float64 `json:"offsets"`
	// Baseline and Monitored are keyed reader → hex(EPC).
	Baseline  map[string]map[string]spectrumState `json:"baseline"`
	Monitored map[string]map[string][]peakState   `json:"monitored"`
}

// SaveState writes the calibration offsets and baseline to w. It fails
// before Calibrate/CollectBaseline have run.
func (s *System) SaveState(w io.Writer) error {
	if s.offsets == nil {
		return ErrNotCalibrated
	}
	if s.fuser == nil {
		return ErrNoBaseline
	}
	st := state{
		Version:   stateVersion,
		Offsets:   s.offsets,
		Baseline:  map[string]map[string]spectrumState{},
		Monitored: map[string]map[string][]peakState{},
	}
	for rid, perTag := range s.fuser.round1 {
		bl := map[string]spectrumState{}
		mon := map[string][]peakState{}
		for epc, sp := range perTag {
			key := hex.EncodeToString([]byte(epc))
			bl[key] = spectrumState{GridSize: len(sp.Angles), Power: sp.Power, Beam: sp.Beam}
			for _, p := range s.fuser.monitored[rid][epc] {
				mon[key] = append(mon[key], peakState{Index: p.Index, Angle: p.Angle, Amplitude: p.Amplitude})
			}
		}
		st.Baseline[rid] = bl
		st.Monitored[rid] = mon
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&st)
}

// LoadState restores offsets and baseline from r, replacing any
// in-memory calibration/baseline. The scenario (readers, arrays) must
// match the one the state was saved from.
func (s *System) LoadState(r io.Reader) error {
	var st state
	dec := json.NewDecoder(r)
	if err := dec.Decode(&st); err != nil {
		return fmt.Errorf("%w: %v", ErrBadState, err)
	}
	if st.Version != stateVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrBadState, st.Version, stateVersion)
	}
	// Validate against the scenario.
	arrays := make(map[string]*rf.Array, len(s.Scenario.Readers))
	for _, rd := range s.Scenario.Readers {
		arrays[rd.ID] = rd.Array
	}
	for rid, offs := range st.Offsets {
		arr, ok := arrays[rid]
		if !ok {
			return fmt.Errorf("%w: unknown reader %q", ErrBadState, rid)
		}
		if len(offs) != arr.Elements {
			return fmt.Errorf("%w: %d offsets for %d-element array %q", ErrBadState, len(offs), arr.Elements, rid)
		}
	}
	fuser := NewFuser(arrays, s.cfg)
	for rid, perTag := range st.Baseline {
		if _, ok := arrays[rid]; !ok {
			return fmt.Errorf("%w: baseline for unknown reader %q", ErrBadState, rid)
		}
		fuser.round1[rid] = map[string]*pmusic.Spectrum{}
		fuser.monitored[rid] = map[string][]music.Peak{}
		for key, sp := range perTag {
			epc, err := hex.DecodeString(key)
			if err != nil {
				return fmt.Errorf("%w: EPC key %q", ErrBadState, key)
			}
			if sp.GridSize < 2 || len(sp.Power) != sp.GridSize || len(sp.Beam) != sp.GridSize {
				return fmt.Errorf("%w: spectrum shape for %q/%s", ErrBadState, rid, key)
			}
			spec := &pmusic.Spectrum{
				Angles: rf.AngleGrid(sp.GridSize),
				Power:  sp.Power,
				Beam:   sp.Beam,
			}
			fuser.round1[rid][string(epc)] = spec
			for _, p := range st.Monitored[rid][key] {
				if p.Index < 0 || p.Index >= sp.GridSize {
					return fmt.Errorf("%w: peak index %d for %q/%s", ErrBadState, p.Index, rid, key)
				}
				fuser.monitored[rid][string(epc)] = append(fuser.monitored[rid][string(epc)],
					music.Peak{Index: p.Index, Angle: p.Angle, Amplitude: p.Amplitude})
			}
		}
	}
	s.offsets = st.Offsets
	s.fuser = fuser
	return nil
}
