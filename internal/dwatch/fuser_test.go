package dwatch

import (
	"math"
	"testing"

	"dwatch/internal/geom"
	"dwatch/internal/pmusic"
	"dwatch/internal/rf"
)

func fuserArray(t *testing.T) *rf.Array {
	t.Helper()
	a, err := rf.NewArray(geom.Pt2(0, 0), geom.Pt2(1, 0), 8)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// synthSpectrum fabricates a P-MUSIC spectrum with Gaussian peaks at
// the given angles/powers on the standard 361-point grid, with beam
// power matching the P-MUSIC power.
func synthSpectrum(angles []float64, powers []float64) *pmusic.Spectrum {
	grid := rf.AngleGrid(361)
	power := make([]float64, len(grid))
	beam := make([]float64, len(grid))
	for i, th := range grid {
		for k := range angles {
			d := th - angles[k]
			v := powers[k] * math.Exp(-d*d/(2*0.03*0.03))
			power[i] += v
			beam[i] += v
		}
		beam[i] += 1e-9 // strictly positive floor
	}
	return &pmusic.Spectrum{Angles: grid, Power: power, Beam: beam}
}

func TestFuserBaselineStability(t *testing.T) {
	arr := fuserArray(t)
	f := NewFuser(map[string]*rf.Array{"r1": arr}, Config{})
	epc := []byte{1, 2}

	// Round 1: peaks at 60° (stable) and 120° (will vanish).
	b1 := synthSpectrum([]float64{rf.Rad(60), rf.Rad(120)}, []float64{1, 0.5})
	f.AddBaseline("r1", epc, b1)
	if peaks := f.MonitoredPeaks("r1", epc); peaks != nil {
		t.Fatalf("monitored before confirmation round: %v", peaks)
	}

	// Round 2: the 120° peak is gone.
	b2 := synthSpectrum([]float64{rf.Rad(60)}, []float64{1})
	f.AddBaseline("r1", epc, b2)
	f.FinishBaseline()

	peaks := f.MonitoredPeaks("r1", epc)
	if len(peaks) != 1 {
		t.Fatalf("monitored = %d peaks, want 1 (unstable peak filtered)", len(peaks))
	}
	if math.Abs(peaks[0].Angle-rf.Rad(60)) > rf.Rad(1) {
		t.Errorf("monitored angle = %.1f°", rf.Deg(peaks[0].Angle))
	}
}

func TestFuserEndfireBandExcluded(t *testing.T) {
	arr := fuserArray(t)
	f := NewFuser(map[string]*rf.Array{"r1": arr}, Config{})
	epc := []byte{1}
	// Peaks at 5° (endfire zone, default band 12°) and 90°.
	sp := synthSpectrum([]float64{rf.Rad(5), rf.Rad(90)}, []float64{1, 1})
	f.AddBaseline("r1", epc, sp)
	f.AddBaseline("r1", epc, sp)
	f.FinishBaseline()
	for _, p := range f.MonitoredPeaks("r1", epc) {
		if p.Angle < rf.Rad(12) || p.Angle > math.Pi-rf.Rad(12) {
			t.Errorf("endfire peak at %.1f° monitored", rf.Deg(p.Angle))
		}
	}
}

func TestFuserAbsoluteFloor(t *testing.T) {
	arr := fuserArray(t)
	f := NewFuser(map[string]*rf.Array{"r1": arr}, Config{})
	strong := []byte{1}
	weak := []byte{2}
	// Strong tag at power 1; weak tag at power 1e-4 (< default 1% floor).
	s1 := synthSpectrum([]float64{rf.Rad(70)}, []float64{1})
	s2 := synthSpectrum([]float64{rf.Rad(110)}, []float64{1e-4})
	f.AddBaseline("r1", strong, s1)
	f.AddBaseline("r1", weak, s2)
	f.AddBaseline("r1", strong, s1)
	f.AddBaseline("r1", weak, s2)
	f.FinishBaseline()
	if got := len(f.MonitoredPeaks("r1", strong)); got != 1 {
		t.Errorf("strong tag monitored = %d", got)
	}
	if got := len(f.MonitoredPeaks("r1", weak)); got != 0 {
		t.Errorf("weak tag monitored = %d, want 0 (below −20 dB floor)", got)
	}
}

func TestFuserBuildViewDrop(t *testing.T) {
	arr := fuserArray(t)
	f := NewFuser(map[string]*rf.Array{"r1": arr}, Config{})
	epc := []byte{1}
	base := synthSpectrum([]float64{rf.Rad(60), rf.Rad(120)}, []float64{1, 0.8})
	f.AddBaseline("r1", epc, base)
	f.AddBaseline("r1", epc, base)
	f.FinishBaseline()

	// Online: the 120° path lost 90% of its power.
	online := synthSpectrum([]float64{rf.Rad(60), rf.Rad(120)}, []float64{1, 0.08})
	v := f.BuildView("r1", map[string]*pmusic.Spectrum{string(epc): online})
	if v == nil {
		t.Fatal("no view")
	}
	if d := v.DropAt(rf.Rad(120)); d < 0.5 {
		t.Errorf("drop at blocked angle = %.2f", d)
	}
	if d := v.DropAt(rf.Rad(60)); d > 0.1 {
		t.Errorf("drop at unblocked angle = %.2f", d)
	}
	if d := v.DropAt(rf.Rad(90)); d > 0.1 {
		t.Errorf("drop at empty angle = %.2f", d)
	}
}

func TestFuserBuildViewNilCases(t *testing.T) {
	arr := fuserArray(t)
	f := NewFuser(map[string]*rf.Array{"r1": arr}, Config{})
	if v := f.BuildView("r1", nil); v != nil {
		t.Error("view without baseline should be nil")
	}
	if v := f.BuildView("unknown", nil); v != nil {
		t.Error("view for unknown reader should be nil")
	}
	epc := []byte{1}
	sp := synthSpectrum([]float64{rf.Rad(60)}, []float64{1})
	f.AddBaseline("r1", epc, sp)
	f.AddBaseline("r1", epc, sp)
	f.FinishBaseline()
	// Online missing the tag entirely: no evidence, nil view.
	if v := f.BuildView("r1", map[string]*pmusic.Spectrum{}); v != nil {
		t.Error("view without online overlap should be nil")
	}
}

func TestFuserHasBaselineAndSpectrum(t *testing.T) {
	arr := fuserArray(t)
	f := NewFuser(map[string]*rf.Array{"r1": arr}, Config{})
	if f.HasBaseline() {
		t.Error("fresh fuser reports baseline")
	}
	epc := []byte{9}
	sp := synthSpectrum([]float64{1.0}, []float64{1})
	f.AddBaseline("r1", epc, sp)
	if !f.HasBaseline() {
		t.Error("baseline not reported")
	}
	if f.BaselineSpectrum("r1", epc) != sp {
		t.Error("BaselineSpectrum mismatch")
	}
	if f.BaselineSpectrum("r1", []byte{8}) != nil {
		t.Error("unknown tag spectrum not nil")
	}
	if f.BaselineSpectrum("r2", epc) != nil {
		t.Error("unknown reader spectrum not nil")
	}
	if f.MonitoredPeaks("r2", epc) != nil {
		t.Error("unknown reader peaks not nil")
	}
}

func TestFuserWeightingFavorsStrongPaths(t *testing.T) {
	arr := fuserArray(t)
	f := NewFuser(map[string]*rf.Array{"r1": arr}, Config{MinAbsPeakFrac: 1e-9})
	epc := []byte{1}
	// One strong and one weak monitored path for the same tag.
	base := synthSpectrum([]float64{rf.Rad(60), rf.Rad(120)}, []float64{1, 0.05})
	f.AddBaseline("r1", epc, base)
	f.AddBaseline("r1", epc, base)
	f.FinishBaseline()
	// Both drop fully.
	online := synthSpectrum([]float64{rf.Rad(60), rf.Rad(120)}, []float64{1e-6, 1e-6})
	v := f.BuildView("r1", map[string]*pmusic.Spectrum{string(epc): online})
	if v == nil {
		t.Fatal("no view")
	}
	dStrong := v.DropAt(rf.Rad(60))
	dWeak := v.DropAt(rf.Rad(120))
	if dWeak >= dStrong {
		t.Errorf("weak-path evidence (%.2f) not below strong-path (%.2f)", dWeak, dStrong)
	}
}

// Regression: monitored peaks must carry indices valid for the online
// spectra grids (shared 361-point convention).
func TestFuserPeakIndicesValid(t *testing.T) {
	arr := fuserArray(t)
	f := NewFuser(map[string]*rf.Array{"r1": arr}, Config{})
	epc := []byte{1}
	sp := synthSpectrum([]float64{rf.Rad(45), rf.Rad(135)}, []float64{1, 1})
	f.AddBaseline("r1", epc, sp)
	f.AddBaseline("r1", epc, sp)
	f.FinishBaseline()
	for _, p := range f.MonitoredPeaks("r1", epc) {
		if p.Index < 0 || p.Index >= len(sp.Angles) {
			t.Fatalf("peak index %d out of grid", p.Index)
		}
		// Angle may be sub-bin refined, but must stay within half a
		// grid step of its index.
		step := sp.Angles[1] - sp.Angles[0]
		if math.Abs(sp.Angles[p.Index]-p.Angle) > step/2+1e-9 {
			t.Fatalf("peak angle %.4f too far from index angle %.4f", p.Angle, sp.Angles[p.Index])
		}
	}
}
