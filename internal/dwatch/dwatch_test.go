package dwatch

import (
	"errors"
	"math"
	"testing"

	"dwatch/internal/calib"
	"dwatch/internal/channel"
	"dwatch/internal/geom"
	"dwatch/internal/loc"
	"dwatch/internal/sim"
	"dwatch/internal/stats"
)

func buildSystem(t testing.TB, cfg sim.Config, dcfg Config) *System {
	t.Helper()
	sc, err := sim.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(sc, WithConfig(dcfg))
	if err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if err := s.CollectBaseline(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPipelineOrderEnforced(t *testing.T) {
	sc, err := sim.Build(sim.HallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := New(sc)
	if _, err := s.Views(nil); !errors.Is(err, ErrNoBaseline) {
		t.Errorf("Views before baseline: %v", err)
	}
	if err := s.CollectBaseline(); !errors.Is(err, ErrNotCalibrated) {
		t.Errorf("baseline before calibrate: %v", err)
	}
}

func TestWirelessCalibrationAccuracy(t *testing.T) {
	sc, err := sim.Build(sim.HallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := New(sc)
	if err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	for _, r := range sc.Readers {
		est := s.Offsets(r.ID)
		if est == nil {
			t.Fatalf("no offsets for %s", r.ID)
		}
		if e := calib.MeanAbsError(est, r.Offsets); e > 0.15 {
			t.Errorf("%s: calibration error %.3f rad", r.ID, e)
		}
	}
}

// locateMany runs single-target localization at several positions and
// returns the human-rule errors of covered fixes plus the attempt count.
func locateMany(t *testing.T, s *System, positions []geom.Point) (errs []float64, attempts int) {
	t.Helper()
	for _, p := range positions {
		attempts++
		res, err := s.Locate([]channel.Target{channel.HumanTarget(p)})
		if err != nil {
			continue
		}
		errs = append(errs, stats.HumanError(res.Pos.Dist2D(p)))
	}
	return errs, attempts
}

func roomPositions(w, d float64) []geom.Point {
	return []geom.Point{
		geom.Pt(w*0.5, d*0.5, 1.25),
		geom.Pt(w*0.3, d*0.4, 1.25),
		geom.Pt(w*0.65, d*0.6, 1.25),
		geom.Pt(w*0.45, d*0.3, 1.25),
		geom.Pt(w*0.55, d*0.7, 1.25),
		geom.Pt(w*0.35, d*0.55, 1.25),
	}
}

func TestLocateHumanInHall(t *testing.T) {
	// The hall is the paper's hardest room: low multipath means thin
	// coverage (Fig. 16 exists precisely to fix this by adding
	// reflectors). Require that at least half the positions produce a
	// fix and that the median human-rule error is decimetre-level.
	s := buildSystem(t, sim.HallConfig(), Config{})
	errs, attempts := locateMany(t, s, roomPositions(7.2, 10.4))
	if len(errs) < attempts/2 {
		t.Fatalf("covered %d of %d hall positions", len(errs), attempts)
	}
	med, _ := stats.Median(errs)
	if med > 0.5 {
		t.Errorf("hall median error %.2f m, errors %v", med, errs)
	}
}

func TestLocateHumanInLibrary(t *testing.T) {
	s := buildSystem(t, sim.LibraryConfig(), Config{})
	errs, attempts := locateMany(t, s, roomPositions(7, 10))
	if len(errs) < attempts/2 {
		t.Fatalf("covered %d of %d library positions", len(errs), attempts)
	}
	med, _ := stats.Median(errs)
	if med > 0.5 {
		t.Errorf("library median error %.2f m, errors %v", med, errs)
	}
}

func TestLocateNoTargetNotCovered(t *testing.T) {
	s := buildSystem(t, sim.HallConfig(), Config{})
	if _, err := s.Locate(nil); err == nil {
		t.Error("empty scene should not produce a fix")
	}
}

func TestDetectEventsSeeBlocking(t *testing.T) {
	s := buildSystem(t, sim.HallConfig(), Config{})
	// Put the target right between a tag and the bottom array so at
	// least one direct path is blocked.
	tagPos := s.Scenario.Tags.Tags[0].Pos
	arr := s.Scenario.Readers[0].Array
	mid := arr.Center().Lerp(tagPos, 0.5)
	events, err := s.DetectEvents([]channel.Target{channel.HumanTarget(geom.Pt(mid.X, mid.Y, 1.25))})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ev := range events {
		total += len(ev)
	}
	if total == 0 {
		t.Error("no blocked-path events detected")
	}
}

func TestWiredVsWirelessClose(t *testing.T) {
	// Wireless calibration should cover about as many positions as the
	// wired (ground-truth) calibration and with comparable error.
	positions := roomPositions(7.2, 10.4)
	wired := buildSystem(t, sim.HallConfig(), Config{Calibration: CalibWired})
	we, wa := locateMany(t, wired, positions)
	wireless := buildSystem(t, sim.HallConfig(), Config{Calibration: CalibWireless})
	le, la := locateMany(t, wireless, positions)
	if wa != la {
		t.Fatalf("attempt mismatch %d vs %d", wa, la)
	}
	// Wireless calibration carries a 0.05-0.11 rad multipath-induced
	// residual (the paper's Fig. 9 shows the same effect shrinking with
	// tag count), so allow it to lose a couple of marginal positions.
	if len(le) < len(we)-2 {
		t.Errorf("wireless covered %d positions, wired %d", len(le), len(we))
	}
	if len(we) > 0 && len(le) > 0 {
		wm, _ := stats.Median(we)
		lm, _ := stats.Median(le)
		if lm > wm+0.4 {
			t.Errorf("wireless median %.2f m ≫ wired %.2f m", lm, wm)
		}
	}
}

func TestNoCalibrationDegrades(t *testing.T) {
	// Without calibration the offsets corrupt all AoA spectra: the
	// system should cover fewer positions and/or have larger errors.
	positions := roomPositions(7.2, 10.4)
	good := buildSystem(t, sim.HallConfig(), Config{})
	ge, _ := locateMany(t, good, positions)
	bad := buildSystem(t, sim.HallConfig(), Config{Calibration: CalibNone})
	be, _ := locateMany(t, bad, positions)

	gm := math.Inf(1)
	if len(ge) > 0 {
		gm, _ = stats.Median(ge)
	}
	bm := math.Inf(1)
	if len(be) > 0 {
		bm, _ = stats.Median(be)
	}
	goodScore := float64(len(ge)) - gm
	badScore := float64(len(be)) - bm
	if math.IsInf(bm, 1) {
		return // uncalibrated produced no fixes at all: clearly degraded
	}
	if badScore > goodScore {
		t.Errorf("uncalibrated (cov %d, med %.2f) beat calibrated (cov %d, med %.2f)",
			len(be), bm, len(ge), gm)
	}
}

func TestRawSnapshotsToMatrix(t *testing.T) {
	m, err := RawSnapshotsToMatrix([][]complex128{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.Cols != 2 || m.At(1, 0) != 3 {
		t.Errorf("matrix = %+v", m)
	}
	if _, err := RawSnapshotsToMatrix(nil); err == nil {
		t.Error("empty must error")
	}
	if _, err := RawSnapshotsToMatrix([][]complex128{{1}, {1, 2}}); err == nil {
		t.Error("ragged must error")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Snapshots != 10 || c.GridSize != 361 || c.CalibTags != 6 {
		t.Errorf("defaults = %+v", c)
	}
	if c.MinDrop != 0.35 || c.PeakRatio != 0.05 {
		t.Errorf("thresholds = %+v", c)
	}
}

// Failure injection: RF-chain drift after calibration degrades the
// system; recalibrating plus a fresh baseline restores it. This is the
// operational boundary of the paper's "one-time per power cycle"
// calibration claim.
func TestDriftDegradesAndRecalibrationRecovers(t *testing.T) {
	s := buildSystem(t, sim.HallConfig(), Config{})
	target := geom.Pt(4.0, 3.0, 1.25)
	tgt := []channel.Target{channel.HumanTarget(target)}

	before, err := s.LocateRobust(tgt, 3)
	if err != nil {
		t.Fatalf("healthy system failed: %v", err)
	}
	if d := before.Pos.Dist2D(target); d > 0.4 {
		t.Fatalf("healthy fix off by %.2f m", d)
	}

	// Heavy drift: calibration and baseline now describe a different
	// radio.
	for _, r := range s.Scenario.Readers {
		r.Drift(1.2)
	}
	degraded := true
	if res, err := s.Locate(tgt); err == nil {
		if res.Pos.Dist2D(target) < 0.4 {
			degraded = false
		}
	}
	if !degraded {
		t.Error("heavy drift did not degrade localization")
	}

	// Recover: recalibrate and re-baseline.
	if err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if err := s.CollectBaseline(); err != nil {
		t.Fatal(err)
	}
	after, err := s.LocateRobust(tgt, 3)
	if err != nil {
		t.Fatalf("recalibrated system failed: %v", err)
	}
	if d := after.Pos.Dist2D(target); d > 0.4 {
		t.Errorf("post-recalibration fix off by %.2f m", d)
	}
}

// Failure injection: a reader missing from the online round (power
// loss, link down) must not break localization outright — the remaining
// readers still fuse, with coverage loss as the only cost.
func TestReaderLossGracefulDegradation(t *testing.T) {
	s := buildSystem(t, sim.HallConfig(), Config{})
	target := geom.Pt(4.0, 3.0, 1.25)
	tgt := []channel.Target{channel.HumanTarget(target)}
	views, err := s.Views(tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) < 3 {
		t.Skipf("only %d views at this position", len(views))
	}
	// Drop one reader's view and localize with the rest.
	res, err := loc.Localize(views[1:], s.Scenario.Grid, loc.Options{})
	if err != nil {
		t.Skipf("position not covered without reader 1: %v", err)
	}
	if d := res.Pos.Dist2D(target); d > 1.0 {
		t.Errorf("degraded fix off by %.2f m", d)
	}
}

func TestLocateMultiBottlesOnTable(t *testing.T) {
	s := buildSystem(t, sim.TableConfig(), Config{})
	const tableZ = 0.75
	positions := []geom.Point{
		geom.Pt(0.35, 0.45, tableZ),
		geom.Pt(1.0, 1.1, tableZ),
		geom.Pt(1.65, 1.55, tableZ),
	}
	var targets []channel.Target
	for _, p := range positions {
		targets = append(targets, channel.BottleTarget(p, tableZ))
	}
	fixes, err := s.LocateMulti(targets, 3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixes) < 2 {
		t.Fatalf("resolved %d of 3 bottles", len(fixes))
	}
	matched := 0
	for _, f := range fixes {
		for _, p := range positions {
			if f.Pos.Dist2D(p) < 0.4 {
				matched++
				break
			}
		}
	}
	if matched < 2 {
		t.Errorf("only %d fixes near true bottles", matched)
	}
}

func TestRunInventoryGatingStillLocalizes(t *testing.T) {
	// With Gen2 inventory gating on, acquisition order and per-cycle
	// reads vary, but the pipeline must still work end to end.
	s := buildSystem(t, sim.HallConfig(), Config{RunInventory: true})
	target := geom.Pt(4.0, 3.0, 1.25)
	res, err := s.LocateRobust([]channel.Target{channel.HumanTarget(target)}, 3)
	if err != nil {
		t.Skipf("position not covered under inventory gating: %v", err)
	}
	if d := res.Pos.Dist2D(target); d > 0.5 {
		t.Errorf("fix error %.2f m under inventory gating", d)
	}
}
