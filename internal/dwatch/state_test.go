package dwatch

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"dwatch/internal/channel"
	"dwatch/internal/geom"
	"dwatch/internal/sim"
)

func TestSaveLoadStateRoundTrip(t *testing.T) {
	// System A: calibrate + baseline, save, localize.
	a := buildSystem(t, sim.HallConfig(), Config{})
	var buf bytes.Buffer
	if err := a.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	target := geom.Pt(4.0, 3.0, 1.25)
	tgt := []channel.Target{channel.HumanTarget(target)}
	ra, errA := a.LocateRobust(tgt, 3)

	// System B: fresh scenario (same seed), restore state, localize —
	// no Calibrate/CollectBaseline calls.
	scB, err := sim.Build(sim.HallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := New(scB)
	if err := b.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	rb, errB := b.LocateRobust(tgt, 3)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("coverage mismatch after restore: %v vs %v", errA, errB)
	}
	if errA == nil {
		if d := ra.Pos.Dist2D(rb.Pos); d > 0.3 {
			t.Errorf("restored fix %.2f m from original", d)
		}
	}
}

func TestSaveStateRequiresPipeline(t *testing.T) {
	sc, err := sim.Build(sim.HallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := New(sc)
	var buf bytes.Buffer
	if err := s.SaveState(&buf); !errors.Is(err, ErrNotCalibrated) {
		t.Errorf("uncalibrated save: %v", err)
	}
	if err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveState(&buf); !errors.Is(err, ErrNoBaseline) {
		t.Errorf("no-baseline save: %v", err)
	}
}

func TestLoadStateValidation(t *testing.T) {
	sc, err := sim.Build(sim.HallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := New(sc)
	cases := []string{
		`not json`,
		`{"version": 99}`,
		`{"version": 1, "offsets": {"ghost-reader": [0,0,0,0,0,0,0,0]}}`,
		`{"version": 1, "offsets": {"reader-1": [0,0]}}`,
		`{"version": 1, "baseline": {"reader-1": {"zz": {"grid_size": 361, "power": [], "beam": []}}}}`,
		`{"version": 1, "baseline": {"ghost": {}}}`,
	}
	for _, c := range cases {
		if err := s.LoadState(strings.NewReader(c)); !errors.Is(err, ErrBadState) {
			t.Errorf("case %q: err = %v, want ErrBadState", c, err)
		}
	}
}

func TestLoadStatePeakIndexValidation(t *testing.T) {
	sc, err := sim.Build(sim.HallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := New(sc)
	blob := `{"version":1,
		"baseline":{"reader-1":{"0102":{"grid_size":361,
			"power":` + zeros(361) + `,"beam":` + zeros(361) + `}}},
		"monitored":{"reader-1":{"0102":[{"index":9999,"angle":1,"amplitude":1}]}}}`
	if err := s.LoadState(strings.NewReader(blob)); !errors.Is(err, ErrBadState) {
		t.Errorf("bad peak index: %v", err)
	}
}

func zeros(n int) string {
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('0')
	}
	b.WriteByte(']')
	return b.String()
}
