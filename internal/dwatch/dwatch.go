// Package dwatch is the top-level D-Watch pipeline — the public entry
// point gluing the substrates together along the workflow of Section
// 4.4 of the paper:
//
//	Step 1  Data collection: baseline AoA data with no target present
//	        (seconds, not the hours of fingerprint systems), then online
//	        data once targets may be present.
//	Step 2  Pre-processing: one-time wireless phase calibration removes
//	        the readers' RF-chain offsets.
//	Step 3  Target angle estimation: per reader and per tag, P-MUSIC
//	        spectra are compared between baseline and online; peaks that
//	        dropped mark blocked paths.
//	Step 4  Localization: the per-reader drop spectra are fused on a
//	        grid by the likelihood of Eq. 15 with hill climbing.
package dwatch

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dwatch/internal/calib"
	"dwatch/internal/channel"
	"dwatch/internal/cmatrix"
	"dwatch/internal/geom"
	"dwatch/internal/loc"
	"dwatch/internal/music"
	"dwatch/internal/pmusic"
	"dwatch/internal/reader"
	"dwatch/internal/rf"
	"dwatch/internal/sim"
	"dwatch/internal/tag"
)

// CalibrationMode selects how RF-chain offsets are handled.
type CalibrationMode int

// Calibration modes.
const (
	// CalibWireless runs the paper's subspace calibration (Section 4.1).
	CalibWireless CalibrationMode = iota
	// CalibWired uses the true offsets — the ArrayTrack-style wired
	// ground truth the paper treats as reference.
	CalibWired
	// CalibNone skips calibration (the "No" baseline of Fig. 10).
	CalibNone
)

// Config tunes the pipeline.
type Config struct {
	// Snapshots per tag per acquisition; 0 = 10 (the paper's packet count).
	Snapshots int
	// GridSize is the AoA scan resolution; 0 = 361 (0.5° steps).
	GridSize int
	// CalibTags is how many tags (nearest each array) serve as
	// calibration anchors; 0 = 6.
	CalibTags int
	// MinDrop is the per-peak fractional power drop that counts as a
	// blocking event; 0 = 0.35.
	MinDrop float64
	// PeakRatio is the baseline peak detection ratio; 0 = 0.05.
	PeakRatio float64
	// DropFloor is the per-path fractional drop below which a peak
	// change is treated as noise when building the fused drop spectrum;
	// 0 = 0.2.
	DropFloor float64
	// BumpSigma is the angular width (radians) of the evidence bump
	// rendered around each blocked-path angle; 0 = 2°.
	BumpSigma float64
	// AngleBand excludes peaks within this many radians of the array's
	// endfire directions (0 and π), where a linear array has no
	// resolution and MUSIC produces unstable artifacts; 0 = 12°.
	AngleBand float64
	// StabilityTol is the maximum fractional power difference between
	// the two baseline rounds for a path peak to be monitored at all;
	// 0 = 0.5.
	StabilityTol float64
	// MinAbsPeakFrac discards monitored peaks whose absolute P-MUSIC
	// power is below this fraction of the reader's strongest monitored
	// peak across all tags; such peaks sit in the coherent-sidelobe
	// floor of stronger paths and their "power" tracks other paths, not
	// their own. 0 = 0.01 (−20 dB).
	MinAbsPeakFrac float64
	// Calibration mode.
	Calibration CalibrationMode
	// Loc are the localization options.
	Loc loc.Options
	// Music are the subspace options (grid size is overridden by
	// GridSize).
	Music music.Options
	// RunInventory gates acquisitions on Gen2 slotted-ALOHA singulation.
	RunInventory bool
}

func (c Config) withDefaults() Config {
	if c.Snapshots == 0 {
		c.Snapshots = 10
	}
	if c.GridSize == 0 {
		c.GridSize = 361
	}
	if c.CalibTags == 0 {
		c.CalibTags = 6
	}
	if c.MinDrop == 0 {
		c.MinDrop = 0.35
	}
	if c.PeakRatio == 0 {
		c.PeakRatio = 0.05
	}
	if c.DropFloor == 0 {
		c.DropFloor = 0.2
	}
	if c.BumpSigma == 0 {
		c.BumpSigma = 2 * math.Pi / 180
	}
	if c.AngleBand == 0 {
		c.AngleBand = 12 * math.Pi / 180
	}
	if c.StabilityTol == 0 {
		c.StabilityTol = 0.5
	}
	if c.MinAbsPeakFrac == 0 {
		c.MinAbsPeakFrac = 0.01
	}
	c.Music.GridSize = c.GridSize
	return c
}

// System is an instantiated D-Watch deployment bound to a simulated
// scenario.
type System struct {
	Scenario *sim.Scenario
	cfg      Config

	offsets map[string][]float64 // reader ID → offset estimate
	fuser   *Fuser               // baseline state + view building
}

// Pipeline-state errors.
var (
	ErrNotCalibrated = errors.New("dwatch: system not calibrated")
	ErrNoBaseline    = errors.New("dwatch: baseline not collected")
)

// New binds a pipeline to a scenario, tuned by functional options
// (none = the paper's defaults).
func New(sc *sim.Scenario, opts ...Option) *System {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	return &System{Scenario: sc, cfg: cfg.withDefaults()}
}

// Config returns the effective (defaulted) configuration.
func (s *System) Config() Config { return s.cfg }

// Calibrate performs Step 2: estimate each reader's RF-chain offsets.
// With CalibWireless it uses the CalibTags tags nearest the array as
// anchors with known positions (only calibration needs tag locations —
// paper footnote 2).
func (s *System) Calibrate() error {
	s.offsets = make(map[string][]float64, len(s.Scenario.Readers))
	for _, r := range s.Scenario.Readers {
		switch s.cfg.Calibration {
		case CalibWired:
			s.offsets[r.ID] = append([]float64(nil), r.Offsets...)
		case CalibNone:
			s.offsets[r.ID] = make([]float64, r.Array.Elements)
		case CalibWireless:
			offs, err := s.calibrateReader(r)
			if err != nil {
				return fmt.Errorf("dwatch: calibrate %s: %w", r.ID, err)
			}
			s.offsets[r.ID] = offs
		default:
			return fmt.Errorf("dwatch: unknown calibration mode %d", s.cfg.Calibration)
		}
	}
	return nil
}

func (s *System) calibrateReader(r *reader.Reader) ([]float64, error) {
	anchors := nearestTags(s.Scenario.Tags, r, s.cfg.CalibTags)
	snaps, err := r.Acquire(s.Scenario.Env, &tag.Population{Tags: anchors}, nil,
		reader.AcquireOptions{Snapshots: s.cfg.Snapshots})
	if err != nil {
		return nil, err
	}
	obs := make([]calib.TagObs, 0, len(snaps))
	for _, sn := range snaps {
		o, err := calib.NewTagObs(sn.Data, r.Array.SteeringAt(sn.Tag.Pos))
		if err != nil {
			return nil, err
		}
		obs = append(obs, o)
	}
	return calib.Calibrate(r.Array, obs, calib.Options{Rng: s.Scenario.Rng})
}

// nearestTags returns the k tags closest to the reader's array centre.
func nearestTags(pop *tag.Population, r *reader.Reader, k int) []tag.Tag {
	c := r.Array.Center()
	tags := append([]tag.Tag(nil), pop.Tags...)
	// Partial selection sort: k is small.
	if k > len(tags) {
		k = len(tags)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(tags); j++ {
			if tags[j].Pos.Dist(c) < tags[best].Pos.Dist(c) {
				best = j
			}
		}
		tags[i], tags[best] = tags[best], tags[i]
	}
	return tags[:k]
}

// spectra acquires and computes calibrated P-MUSIC spectra for every
// readable tag at every reader, with the given targets in the scene.
func (s *System) spectra(targets []channel.Target) (map[string]map[string]*pmusic.Spectrum, error) {
	if s.offsets == nil {
		return nil, ErrNotCalibrated
	}
	out := make(map[string]map[string]*pmusic.Spectrum, len(s.Scenario.Readers))
	for _, r := range s.Scenario.Readers {
		snaps, err := r.Acquire(s.Scenario.Env, s.Scenario.Tags, targets,
			reader.AcquireOptions{Snapshots: s.cfg.Snapshots, RunInventory: s.cfg.RunInventory})
		if err != nil {
			return nil, fmt.Errorf("dwatch: acquire %s: %w", r.ID, err)
		}
		perTag := make(map[string]*pmusic.Spectrum, len(snaps))
		for _, sn := range snaps {
			x, err := calib.Apply(sn.Data, s.offsets[r.ID])
			if err != nil {
				return nil, err
			}
			sp, err := pmusic.Compute(x, r.Array, pmusic.Options{Music: s.cfg.Music, PeakRatio: s.cfg.PeakRatio})
			if err != nil {
				return nil, fmt.Errorf("dwatch: p-music %s tag %x: %w", r.ID, sn.Tag.EPC, err)
			}
			perTag[string(sn.Tag.EPC)] = sp
		}
		out[r.ID] = perTag
	}
	return out, nil
}

// CollectBaseline performs Step 1's no-target measurement. It acquires
// two baseline rounds and monitors only the path peaks that appear in
// both with consistent power: peaks that flicker between rounds (weak
// paths at the edge of the source-count estimate) would later read as
// phantom full drops.
func (s *System) CollectBaseline() error {
	arrays := make(map[string]*rf.Array, len(s.Scenario.Readers))
	for _, r := range s.Scenario.Readers {
		arrays[r.ID] = r.Array
	}
	fuser := NewFuser(arrays, s.cfg)
	for round := 0; round < 2; round++ {
		spectra, err := s.spectra(nil)
		if err != nil {
			return err
		}
		for _, r := range s.Scenario.Readers {
			for _, tg := range s.Scenario.Tags.Tags {
				if sp, ok := spectra[r.ID][string(tg.EPC)]; ok {
					fuser.AddBaseline(r.ID, tg.EPC, sp)
				}
			}
		}
	}
	fuser.FinishBaseline()
	s.fuser = fuser
	return nil
}

// Views performs Step 3 for the given targets: acquire online spectra
// and fuse per-tag path-peak drops into one drop view per reader.
func (s *System) Views(targets []channel.Target) ([]*loc.View, error) {
	if s.fuser == nil {
		return nil, ErrNoBaseline
	}
	online, err := s.spectra(targets)
	if err != nil {
		return nil, err
	}
	views := make([]*loc.View, 0, len(s.Scenario.Readers))
	for _, r := range s.Scenario.Readers {
		if v := s.fuser.BuildView(r.ID, online[r.ID]); v != nil {
			views = append(views, v)
		}
	}
	return views, nil
}

// addBump accumulates a Gaussian bump of the given amplitude and width
// centred at angle into the drop spectrum.
func addBump(angles, drop []float64, angle, amp, sigma float64) {
	for i, th := range angles {
		d := th - angle
		if d > 4*sigma || d < -4*sigma {
			continue
		}
		drop[i] += amp * math.Exp(-d*d/(2*sigma*sigma))
	}
}

// Locate performs the full Step 3 + Step 4 pipeline for a single
// target.
func (s *System) Locate(targets []channel.Target) (loc.Result, error) {
	views, err := s.Views(targets)
	if err != nil {
		return loc.Result{}, err
	}
	return loc.Localize(views, s.Scenario.Grid, s.cfg.Loc)
}

// LocateRobust performs `rounds` independent acquisition+localization
// cycles and returns the component-wise median fix — the snapshot-level
// outlier rejection Section 4.3 motivates: wrong-angle intersections
// wander between acquisitions while the true mode persists. It fails
// only when every round fails.
func (s *System) LocateRobust(targets []channel.Target, rounds int) (loc.Result, error) {
	if rounds < 1 {
		rounds = 1
	}
	var fixes []loc.Result
	var lastErr error
	for i := 0; i < rounds; i++ {
		res, err := s.Locate(targets)
		if err != nil {
			lastErr = err
			continue
		}
		fixes = append(fixes, res)
	}
	if len(fixes) == 0 {
		return loc.Result{}, lastErr
	}
	xs := make([]float64, len(fixes))
	ys := make([]float64, len(fixes))
	best := fixes[0]
	for i, f := range fixes {
		xs[i], ys[i] = f.Pos.X, f.Pos.Y
		if f.Confidence > best.Confidence {
			best = f
		}
	}
	sort.Float64s(xs)
	sort.Float64s(ys)
	best.Pos = geom.Pt(xs[len(xs)/2], ys[len(ys)/2], best.Pos.Z)
	return best, nil
}

// LocateMulti localizes up to maxTargets simultaneous targets separated
// by at least minSep metres.
func (s *System) LocateMulti(targets []channel.Target, maxTargets int, minSep float64) ([]loc.Result, error) {
	views, err := s.Views(targets)
	if err != nil {
		return nil, err
	}
	return loc.LocalizeMulti(views, s.Scenario.Grid, maxTargets, minSep, s.cfg.Loc)
}

// DetectEvents returns, per reader, the blocked-path events the online
// measurement shows against the baseline — the per-path detection of
// Figs. 12-13.
func (s *System) DetectEvents(targets []channel.Target) (map[string][]pmusic.BlockEvent, error) {
	if s.fuser == nil {
		return nil, ErrNoBaseline
	}
	online, err := s.spectra(targets)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]pmusic.BlockEvent, len(s.Scenario.Readers))
	for _, r := range s.Scenario.Readers {
		var events []pmusic.BlockEvent
		for _, tg := range s.Scenario.Tags.Tags {
			epc := string(tg.EPC)
			b := s.fuser.BaselineSpectrum(r.ID, tg.EPC)
			if b == nil {
				continue
			}
			o, ok := online[r.ID][epc]
			if !ok {
				continue
			}
			ev, err := pmusic.DetectBlocked(b, o, s.cfg.PeakRatio, s.cfg.MinDrop)
			if err != nil {
				return nil, err
			}
			events = append(events, ev...)
		}
		out[r.ID] = events
	}
	return out, nil
}

// Fuser returns the system's evidence fuser (nil before
// CollectBaseline or LoadState). Network consumers like cmd/dwatchd
// share it.
func (s *System) Fuser() *Fuser { return s.fuser }

// SetFuser installs an externally built fuser (e.g. one fed from LLRP
// reports) so SaveState can persist it. Readers calibrated elsewhere
// get zero offsets unless Calibrate ran.
func (s *System) SetFuser(f *Fuser) {
	s.fuser = f
	if s.offsets == nil {
		s.offsets = make(map[string][]float64, len(s.Scenario.Readers))
		for _, r := range s.Scenario.Readers {
			s.offsets[r.ID] = make([]float64, r.Array.Elements)
		}
	}
}

// Offsets returns the calibration estimate for a reader (nil before
// Calibrate).
func (s *System) Offsets(readerID string) []float64 { return s.offsets[readerID] }

// BaselineSpectrum returns a baseline spectrum for inspection (nil when
// absent or before CollectBaseline).
func (s *System) BaselineSpectrum(readerID string, epc []byte) *pmusic.Spectrum {
	if s.fuser == nil {
		return nil
	}
	return s.fuser.BaselineSpectrum(readerID, epc)
}

// RawSnapshotsToMatrix converts an LLRP snapshot payload back into the
// matrix the pipeline consumes — the glue for network-fed deployments
// (cmd/dwatchd).
func RawSnapshotsToMatrix(snapshot [][]complex128) (*cmatrix.Matrix, error) {
	rows := len(snapshot)
	if rows == 0 {
		return nil, errors.New("dwatch: empty snapshot")
	}
	cols := len(snapshot[0])
	m := cmatrix.New(rows, cols)
	for r, row := range snapshot {
		if len(row) != cols {
			return nil, errors.New("dwatch: ragged snapshot")
		}
		copy(m.Data[r*cols:(r+1)*cols], row)
	}
	return m, nil
}
