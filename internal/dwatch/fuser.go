package dwatch

import (
	"math"
	"sort"

	"dwatch/internal/loc"
	"dwatch/internal/music"
	"dwatch/internal/pmusic"
	"dwatch/internal/rf"
)

// Fuser turns per-reader, per-tag P-MUSIC spectra into the drop views
// the localizer consumes. It owns the baseline stability filtering of
// Step 1 and the peak-drop evidence rendering of Step 3, independent of
// how the spectra were obtained — the in-process System feeds it from
// simulated acquisitions, the dwatchd network server from LLRP reports.
type Fuser struct {
	cfg    Config
	arrays map[string]*rf.Array

	round1    map[string]map[string]*pmusic.Spectrum
	monitored map[string]map[string][]music.Peak
}

// NewFuser creates a fuser for readers identified by ID with the given
// array geometries.
func NewFuser(arrays map[string]*rf.Array, cfg Config) *Fuser {
	return &Fuser{
		cfg:       cfg.withDefaults(),
		arrays:    arrays,
		round1:    map[string]map[string]*pmusic.Spectrum{},
		monitored: map[string]map[string][]music.Peak{},
	}
}

// AddBaseline feeds one baseline spectrum for (reader, tag). The first
// call per pair records the reference round; the second confirms it:
// only path peaks present in both rounds with consistent power (within
// StabilityTol) and away from the endfire band are monitored. Further
// calls re-confirm against the stored reference (a rolling baseline).
func (f *Fuser) AddBaseline(readerID string, epc []byte, sp *pmusic.Spectrum) {
	key := string(epc)
	perTag := f.round1[readerID]
	if perTag == nil {
		perTag = map[string]*pmusic.Spectrum{}
		f.round1[readerID] = perTag
		f.monitored[readerID] = map[string][]music.Peak{}
	}
	b1, ok := perTag[key]
	if !ok {
		perTag[key] = sp
		return
	}
	// Confirmation round: compute the stable peak set.
	p2 := sp.Peaks(f.cfg.PeakRatio * 0.5)
	var stable []music.Peak
	for _, p := range b1.Peaks(f.cfg.PeakRatio) {
		if p.Angle < f.cfg.AngleBand || p.Angle > math.Pi-f.cfg.AngleBand {
			continue // endfire artifact zone
		}
		m, ok := music.NearestPeak(p2, p.Angle, pmusic.PeakMatchTol)
		if !ok {
			continue
		}
		if math.Abs(m.Amplitude-p.Amplitude)/p.Amplitude > f.cfg.StabilityTol {
			continue
		}
		// Sub-bin angle refinement: the grid quantizes peaks to the
		// scan step; the parabolic fit recovers a fraction of it for
		// evidence-bump placement (Index stays grid-aligned for the
		// beam-power lookups).
		p.Angle = music.RefineAngle(b1.Angles, b1.Power, p.Index)
		stable = append(stable, p)
	}
	f.monitored[readerID][key] = stable
}

// FinishBaseline applies the reader-wide absolute peak floor: monitored
// peaks more than MinAbsPeakFrac below the reader's strongest peak sit
// in the coherent-sidelobe floor of stronger paths and are discarded.
// Call once after all baseline spectra are fed.
func (f *Fuser) FinishBaseline() {
	for rid, mon := range f.monitored {
		var readerMax float64
		for _, peaks := range mon {
			for _, p := range peaks {
				if p.Amplitude > readerMax {
					readerMax = p.Amplitude
				}
			}
		}
		floor := readerMax * f.cfg.MinAbsPeakFrac
		for epc, peaks := range mon {
			kept := peaks[:0]
			for _, p := range peaks {
				if p.Amplitude >= floor {
					kept = append(kept, p)
				}
			}
			mon[epc] = kept
		}
		f.monitored[rid] = mon
	}
}

// HasBaseline reports whether any baseline has been recorded.
func (f *Fuser) HasBaseline() bool { return len(f.round1) > 0 }

// MonitoredPeaks returns the stable path peaks for a (reader, tag)
// pair, nil when absent.
func (f *Fuser) MonitoredPeaks(readerID string, epc []byte) []music.Peak {
	m := f.monitored[readerID]
	if m == nil {
		return nil
	}
	return m[string(epc)]
}

// BaselineSpectrum returns the stored reference spectrum.
func (f *Fuser) BaselineSpectrum(readerID string, epc []byte) *pmusic.Spectrum {
	m := f.round1[readerID]
	if m == nil {
		return nil
	}
	return m[string(epc)]
}

// BuildView fuses one reader's online spectra against its baseline into
// a drop view. Tag EPC keys are iterated in sorted order for
// reproducibility. Returns nil when the reader has no usable baseline
// or no online overlap.
func (f *Fuser) BuildView(readerID string, online map[string]*pmusic.Spectrum) *loc.View {
	arr := f.arrays[readerID]
	base := f.round1[readerID]
	if arr == nil || base == nil {
		return nil
	}
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var sum []float64
	var angles []float64
	for _, epc := range keys {
		b := base[epc]
		o, ok := online[epc]
		if !ok {
			continue // tag missed this cycle (inventory), skip
		}
		peaks := f.monitored[readerID][epc]
		if len(peaks) == 0 {
			continue
		}
		if sum == nil {
			sum = make([]float64, len(b.Angles))
			angles = b.Angles
		}
		// Strongest monitored peak sets the per-tag weight scale so
		// noisy weak paths cannot outvote solid ones.
		var maxAmp float64
		strongest := peaks[0]
		for _, p := range peaks {
			if p.Amplitude > maxAmp {
				maxAmp = p.Amplitude
				strongest = p
			}
		}
		// Power changes measured on the beamformed spectrum PB(θ)
		// (Eq. 13): unlike the MUSIC factor it does not depend on the
		// estimated source count, so a weak path flickering out of the
		// subspace estimate cannot fake a full drop — only a genuine
		// power change registers.
		drops := make([]float64, len(peaks))
		dropped := 0
		var maxDrop float64
		for i, p := range peaks {
			bb := b.Beam[p.Index]
			if bb <= 0 {
				continue
			}
			d := (bb - o.Beam[p.Index]) / bb
			if d > 1 {
				d = 1
			}
			drops[i] = d
			if d >= f.cfg.DropFloor {
				dropped++
				if d > maxDrop {
					maxDrop = d
				}
			}
		}
		// Forward-link block: when (nearly) every path of the tag dims
		// at once, the target is obstructing the reader→tag excitation
		// leg, which lies along the tag's direct angle — the drops at
		// the reflected angles are the "wrong angles" of Fig. 1(c) and
		// are suppressed in favour of a single direct-angle bump.
		if len(peaks) >= 2 && float64(dropped) >= 0.8*float64(len(peaks)) {
			addBump(angles, sum, strongest.Angle, maxDrop, f.cfg.BumpSigma)
			continue
		}
		for i, p := range peaks {
			if drops[i] < f.cfg.DropFloor {
				continue
			}
			w := math.Sqrt(p.Amplitude / maxAmp)
			addBump(angles, sum, p.Angle, drops[i]*w, f.cfg.BumpSigma)
		}
	}
	if sum == nil {
		return nil
	}
	// Cap at 1 but do NOT normalize: the drop fractions are already
	// physically meaningful ([0,1] of a path's power), and scaling a
	// reader whose best evidence is a marginal 0.3 drop up to full
	// strength would let weak phantom evidence outvote solid blocks.
	for i := range sum {
		if sum[i] > 1 {
			sum[i] = 1
		}
	}
	return &loc.View{Array: arr, Angles: angles, Drop: sum}
}
