package fleet

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"dwatch/internal/obs"
	"dwatch/internal/serve"
)

// TestFleetServeEndToEnd is the multi-tenant acceptance test: one
// process, one serve plane, two simulated environments driven
// concurrently — each env's routes serve its own data, a third env is
// added and a second removed at runtime, and the survivor keeps fusing
// fixes throughout.
func TestFleetServeEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	hub := serve.NewHub(serve.WithHubObs(reg))
	f := New(WithObs(reg), WithHub(hub), WithWALRoot(t.TempDir()))
	defer f.Close()

	plane := serve.New(
		serve.WithRegistry(reg),
		serve.WithHub(hub),
		serve.WithEnvs(f.Infos),
		serve.WithEnvLookup(f.EnvHandle),
		serve.WithReady(f.Ready),
	)
	ts := httptest.NewServer(plane.Handler())
	defer ts.Close()

	for i, id := range []string{"room-a", "room-b"} {
		if _, err := f.Add(id, tableCfg(int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}

	// Drive both environments concurrently — the single-daemon,
	// N-deployment mode of the fleet.
	var wg sync.WaitGroup
	for _, id := range []string{"room-a", "room-b"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if err := f.Simulate(context.Background(), id, 2, 4, 0); err != nil {
				t.Errorf("simulate %s: %v", id, err)
			}
		}(id)
	}
	wg.Wait()
	for _, id := range []string{"room-a", "room-b"} {
		waitFor(t, id+" fix", func() bool { _, ok := hub.LatestForEnv(id); return ok })
	}

	getJSON := func(path string, into any) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if into != nil && resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	// The listing covers both envs with live counters and ring slots.
	var listing struct {
		Envs []serve.EnvInfo `json:"envs"`
	}
	if code := getJSON("/api/v1/envs", &listing); code != 200 {
		t.Fatalf("/api/v1/envs = %d", code)
	}
	if len(listing.Envs) != 2 {
		t.Fatalf("envs = %+v", listing.Envs)
	}
	for _, info := range listing.Envs {
		if info.Fixes == 0 || info.Reports == 0 {
			t.Fatalf("env %s has no traffic: %+v", info.ID, info)
		}
	}

	// Per-env routes serve per-env data.
	for _, id := range []string{"room-a", "room-b"} {
		var body struct {
			Positions []serve.Position `json:"positions"`
		}
		if code := getJSON("/api/v1/"+id+"/positions", &body); code != 200 {
			t.Fatalf("%s positions = %d", id, code)
		}
		if len(body.Positions) != 1 || body.Positions[0].Env != id {
			t.Fatalf("%s positions = %+v", id, body.Positions)
		}
		var st struct {
			Fixes uint64 `json:"Fixes"`
		}
		if code := getJSON("/api/v1/"+id+"/stats", &st); code != 200 {
			t.Fatalf("%s stats = %d", id, code)
		}
		if st.Fixes == 0 {
			t.Fatalf("%s pipeline stats show no fixes", id)
		}
		if code := getJSON("/api/v1/"+id+"/health", nil); code != 200 {
			t.Fatalf("%s health = %d", id, code)
		}
		if code := getJSON("/api/v1/"+id+"/wal", nil); code != 200 {
			t.Fatalf("%s wal = %d", id, code)
		}
	}
	if code := getJSON("/readyz", nil); code != 200 {
		t.Fatalf("/readyz = %d after all baselines", code)
	}

	// Runtime add: a third environment joins the running fleet and
	// serves immediately.
	if _, err := f.Add("room-c", tableCfg(3)); err != nil {
		t.Fatal(err)
	}
	if err := f.Simulate(context.Background(), "room-c", 1, 4, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "room-c fix", func() bool { _, ok := hub.LatestForEnv("room-c"); return ok })
	if code := getJSON("/api/v1/room-c/positions", nil); code != 200 {
		t.Fatalf("room-c positions after runtime add = %d", code)
	}

	// Runtime remove: drain room-b while room-a keeps ingesting.
	aFixes := func() uint64 { e, _ := f.Env("room-a"); return e.Fixes() }
	before := aFixes()
	done := make(chan error, 1)
	go func() { done <- f.Simulate(context.Background(), "room-a", 2, 4, 0) }()
	if err := f.Remove("room-b"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("room-a simulate during room-b removal: %v", err)
	}
	waitFor(t, "room-a fixes after removal", func() bool { return aFixes() > before })

	// The removed env 404s with the uniform envelope; the others serve.
	resp, err := http.Get(ts.URL + "/api/v1/room-b/positions")
	if err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&envelope)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 404 || envelope.Error.Code != "env_not_found" {
		t.Fatalf("removed env: %d %+v (%v)", resp.StatusCode, envelope, err)
	}
	if code := getJSON("/api/v1/envs", &listing); code != 200 || len(listing.Envs) != 2 {
		t.Fatalf("post-remove listing = %+v", listing.Envs)
	}
	if listing.Envs[0].ID != "room-a" || listing.Envs[1].ID != "room-c" {
		t.Fatalf("post-remove listing = %+v", listing.Envs)
	}

	// Fleet and broker metrics are exposed on the shared registry.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	for _, want := range []string{
		"dwatch_fleet_environments 2",
		`dwatch_fleet_fixes_total{env="room-a"}`,
		"dwatch_broker_publishes_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
