package fleet

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dwatch/internal/api"
	"dwatch/internal/obs"
	"dwatch/internal/serve"
	"dwatch/internal/sim"
)

// tableCfg is the cheap two-reader scenario every pipeline test uses,
// reseeded per environment so fleets don't share tag layouts.
func tableCfg(seed int64) sim.Config {
	cfg := sim.TableConfig()
	cfg.Seed = seed
	return cfg
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestValidateID(t *testing.T) {
	for _, id := range []string{"room-a", "warehouse_3", "Lab.2"} {
		if err := validateID(id); err != nil {
			t.Errorf("validateID(%q) = %v, want nil", id, err)
		}
	}
	for _, id := range []string{"", "stats", "envs", "positions", "traces", "health", "wal", "a/b", "a b", "ümlaut"} {
		if err := validateID(id); err == nil {
			t.Errorf("validateID(%q) = nil, want error", id)
		}
	}
}

// TestFleetAddRemove covers the basic lifecycle: registration state,
// reader-ID prefixing, serve adapters, metrics, and graceful removal
// including the hub forgetting the env's latest fix.
func TestFleetAddRemove(t *testing.T) {
	reg := obs.NewRegistry()
	hub := serve.NewHub()
	f := New(WithObs(reg), WithHub(hub))
	defer f.Close()

	e, err := f.Add("room-a", tableCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range e.Scenario().Readers {
		if !strings.HasPrefix(r.ID, "room-a/") {
			t.Fatalf("reader ID %q lacks env prefix", r.ID)
		}
	}
	if got, ok := f.Env("room-a"); !ok || got != e {
		t.Fatal("Env lookup after Add failed")
	}
	if ids := f.IDs(); len(ids) != 1 || ids[0] != "room-a" {
		t.Fatalf("IDs = %v", ids)
	}

	infos := f.Infos()
	if len(infos) != 1 || infos[0].ID != "room-a" || infos[0].Readers != 2 {
		t.Fatalf("Infos = %+v", infos)
	}
	if infos[0].Slot != NewRing(16).Slot("room-a") {
		t.Fatalf("Slot = %d, want ring placement", infos[0].Slot)
	}
	h, ok := f.EnvHandle("room-a")
	if !ok || h.Stats == nil || h.Tracer == nil || h.Health == nil {
		t.Fatalf("EnvHandle = %+v %v", h, ok)
	}
	if _, ok := f.EnvHandle("ghost"); ok {
		t.Fatal("EnvHandle(ghost) = ok")
	}
	if v := reg.Snapshot()["dwatch_fleet_environments"]; v != 1 {
		t.Fatalf("dwatch_fleet_environments = %v, want 1", v)
	}

	// Duplicate IDs are rejected without disturbing the original.
	if _, err := f.Add("room-a", tableCfg(2)); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	if f.Len() != 1 {
		t.Fatalf("Len after duplicate Add = %d", f.Len())
	}

	hub.Publish(serve.Position{Env: "room-a", Seq: 1})
	if err := f.Remove("room-a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := hub.LatestForEnv("room-a"); ok {
		t.Fatal("hub still retains removed env's fix")
	}
	if v := reg.Snapshot()["dwatch_fleet_environments"]; v != 0 {
		t.Fatalf("dwatch_fleet_environments after Remove = %v, want 0", v)
	}
	if err := f.Remove("room-a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Remove = %v, want ErrNotFound", err)
	}
}

// TestFleetSimulate drives one environment end to end: generated LLRP
// rounds through WAL append + pipeline ingest to fixes on the hub.
func TestFleetSimulate(t *testing.T) {
	reg := obs.NewRegistry()
	hub := serve.NewHub()
	f := New(WithObs(reg), WithHub(hub), WithWALRoot(t.TempDir()))
	defer f.Close()

	if _, err := f.Add("room-a", tableCfg(1)); err != nil {
		t.Fatal(err)
	}
	if err := f.Simulate(context.Background(), "room-a", 2, 4, 0); err != nil {
		t.Fatal(err)
	}
	// Ingest is asynchronous past the queue: poll for a fused fix to
	// land on the hub (published after every counter update).
	waitFor(t, "hub fix", func() bool { _, ok := hub.LatestForEnv("room-a"); return ok })
	e, _ := f.Env("room-a")
	if e.Fixes() == 0 {
		t.Fatal("no fixes after Simulate")
	}
	p, ok := hub.LatestForEnv("room-a")
	if !ok || p.Env != "room-a" {
		t.Fatalf("hub latest = %+v %v", p, ok)
	}
	info := f.Infos()[0]
	if info.Reports == 0 || info.Fixes == 0 {
		t.Fatalf("info counters = %+v", info)
	}
	snap := reg.Snapshot()
	if snap[`dwatch_fleet_fixes_total{env="room-a"}`] == 0 {
		t.Fatalf("per-env fixes counter missing: %v", snap)
	}
	if snap[`dwatch_fleet_reports_total{env="room-a"}`] == 0 {
		t.Fatalf("per-env reports counter missing")
	}
	if err := f.Ready(); err != nil {
		t.Fatalf("Ready after baselines = %v", err)
	}
}

// TestFleetWALReplayOnReadd: a re-added environment replays its WAL
// subdirectory through the fresh pipeline, rebuilding the counters the
// previous incarnation had.
func TestFleetWALReplayOnReadd(t *testing.T) {
	root := t.TempDir()
	f := New(WithWALRoot(root))
	defer f.Close()

	if _, err := f.Add("room-a", tableCfg(1)); err != nil {
		t.Fatal(err)
	}
	if err := f.Simulate(context.Background(), "room-a", 1, 4, 0); err != nil {
		t.Fatal(err)
	}
	e, _ := f.Env("room-a")
	ingested := e.Pipeline().Stats().ReportsIn
	if ingested == 0 {
		t.Fatal("no reports ingested")
	}
	if err := f.Remove("room-a"); err != nil {
		t.Fatal(err)
	}

	e2, err := f.Reload("room-a", tableCfg(1))
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("Reload of removed env = %v, want ErrNotFound", err)
	}
	e2, err = f.Add("room-a", tableCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.Pipeline().Stats().ReportsIn; got != ingested {
		t.Fatalf("replayed ReportsIn = %d, want %d", got, ingested)
	}
}

// TestFleetLoadDir boots environments from a directory of JSON
// deployment configs, ignoring non-config files.
func TestFleetLoadDir(t *testing.T) {
	dir := t.TempDir()
	cfgJSON := `{"name":"cfg","width":8,"depth":8,"readers":2,"antennas":8,"tags":4,"seed":%d}`
	writeCfg := func(name, body string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeCfg("site-b.json", strings.Replace(cfgJSON, "%d", "2", 1))
	writeCfg("site-a.json", strings.Replace(cfgJSON, "%d", "1", 1))
	writeCfg("README.txt", "not a config")

	f := New()
	defer f.Close()
	ids, err := f.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "site-a" || ids[1] != "site-b" {
		t.Fatalf("LoadDir ids = %v", ids)
	}
	for _, id := range ids {
		if _, ok := f.Env(id); !ok {
			t.Fatalf("env %q not registered", id)
		}
	}

	empty := t.TempDir()
	if _, err := New().LoadDir(empty); err == nil {
		t.Fatal("LoadDir on empty dir succeeded")
	}
}

// TestFleetAdopt: adopted environments appear in listings and handles
// but their lifecycle stays with the caller.
func TestFleetAdopt(t *testing.T) {
	f := New()
	defer f.Close()
	stats := func() api.PipelineStats { return api.PipelineStats{ReportsIn: 7} }
	e, err := f.Adopt("legacy", Adopted{Name: "hall", Readers: 4, Tags: 30, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if e.Pipeline() != nil {
		t.Fatal("adopted env has a fleet pipeline")
	}
	info := f.Infos()[0]
	if info.ID != "legacy" || info.Name != "hall" || info.Readers != 4 || info.Tags != 30 {
		t.Fatalf("adopted info = %+v", info)
	}
	h, ok := f.EnvHandle("legacy")
	if !ok || h.Stats == nil {
		t.Fatal("adopted handle missing stats")
	}
	if err := f.Ready(); err != nil {
		t.Fatalf("Ready with adopted env = %v", err)
	}
	if err := f.Remove("legacy"); err != nil {
		t.Fatal(err)
	}
}

// TestFleetClosed: lifecycle calls after Close fail cleanly.
func TestFleetClosed(t *testing.T) {
	f := New()
	f.Close()
	if _, err := f.Add("x", tableCfg(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Add after Close = %v, want ErrClosed", err)
	}
	if _, err := f.Adopt("x", Adopted{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Adopt after Close = %v, want ErrClosed", err)
	}
}

// TestRemoveDropsEnvMetricSeries: the remove→re-add→remove seam. Every
// per-env series (fixes, reports, queue depth, pending sequences) must
// vanish from /metrics when its environment is removed — a re-added
// environment starts fresh series instead of inheriting counts or
// stale gauge closures from the previous incarnation.
func TestRemoveDropsEnvMetricSeries(t *testing.T) {
	reg := obs.NewRegistry()
	hub := serve.NewHub()
	f := New(WithObs(reg), WithHub(hub))
	defer f.Close()

	s := serve.New(serve.WithRegistry(reg), serve.WithHub(hub))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	assertNoEnvSeries := func(metrics, env string) {
		t.Helper()
		needle := `env="` + env + `"`
		for _, line := range strings.Split(metrics, "\n") {
			if strings.Contains(line, needle) {
				t.Errorf("stale series survived removal: %s", line)
			}
		}
	}

	drive := func() {
		t.Helper()
		if _, err := f.Add("room-a", tableCfg(1)); err != nil {
			t.Fatal(err)
		}
		if err := f.Simulate(context.Background(), "room-a", 1, 4, 0); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "room-a fix", func() bool {
			e, ok := f.Env("room-a")
			return ok && e.Fixes() > 0
		})
	}

	drive()
	metrics := scrape()
	for _, want := range []string{
		`dwatch_fleet_fixes_total{env="room-a"}`,
		`dwatch_fleet_reports_total{env="room-a"}`,
		`dwatch_fleet_queue_depth{env="room-a"}`,
		`dwatch_fleet_pending_sequences{env="room-a"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q while env registered", want)
		}
	}

	if err := f.Remove("room-a"); err != nil {
		t.Fatal(err)
	}
	assertNoEnvSeries(scrape(), "room-a")

	// Re-add: series come back, and come back from zero — the fresh
	// incarnation's counts must not include the first run's fixes.
	drive()
	snap := reg.Snapshot()
	e, _ := f.Env("room-a")
	if got := snap[`dwatch_fleet_fixes_total{env="room-a"}`]; got != float64(e.Fixes()) {
		t.Errorf("re-added fixes series = %v, want %d (fresh count)", got, e.Fixes())
	}

	if err := f.Remove("room-a"); err != nil {
		t.Fatal(err)
	}
	assertNoEnvSeries(scrape(), "room-a")
}
