package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring mapping environment IDs onto a fixed
// set of slots. A slot is the fleet's placement unit: today every slot
// lives in one process and the slot number is purely informational
// (surfaced on /api/v1/envs), but the hash is the contract that lets a
// future multi-process fleet shard environments across daemons without
// re-homing everything — growing the slot count from n to n+1 moves
// only ~1/(n+1) of the environments (TestRingStability pins this).
//
// Each slot projects vnodesPerSlot virtual points onto the 64-bit FNV-1a
// ring; an environment lands on the slot owning the first point at or
// after its own hash, wrapping at the top.
type Ring struct {
	slots  int
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	slot int
}

// defaultVnodes is the virtual-node multiplier per slot. 64 keeps the
// per-slot load imbalance in the few-percent range while the ring stays
// small enough to rebuild on every resize.
const defaultVnodes = 64

// NewRing builds a ring over `slots` slots (minimum 1) with the default
// virtual-node count.
func NewRing(slots int) *Ring { return NewRingVnodes(slots, defaultVnodes) }

// NewRingVnodes builds a ring with an explicit virtual-node multiplier.
func NewRingVnodes(slots, vnodesPerSlot int) *Ring {
	if slots < 1 {
		slots = 1
	}
	if vnodesPerSlot < 1 {
		vnodesPerSlot = 1
	}
	r := &Ring{slots: slots, points: make([]ringPoint, 0, slots*vnodesPerSlot)}
	for s := 0; s < slots; s++ {
		for v := 0; v < vnodesPerSlot; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64("slot-" + strconv.Itoa(s) + "#" + strconv.Itoa(v)),
				slot: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Slots reports the slot count.
func (r *Ring) Slots() int { return r.slots }

// Slot maps a key (an environment ID) to its home slot.
func (r *Ring) Slot(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the top of the ring
	}
	return r.points[i].slot
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
