// Package fleet is the multi-tenant environment registry: one dwatchd
// process fronting N deployments ("environments"), each with its own
// pipeline, tracer, RF-health monitor, and WAL subdirectory, all
// publishing into one shared serve.Hub and one shared obs.Registry.
//
// The fleet owns the whole per-environment lifecycle: Add builds and
// starts an environment from a sim deployment config (reader IDs are
// prefixed "<env>/" so metric labels and pipeline state never collide
// across tenants), Remove drains it gracefully without disturbing its
// neighbors, Reload is an atomic swap of the two, and LoadDir boots a
// directory of JSON deployment configs — the -env-dir mode of dwatchd.
//
// Environments are placed on a consistent-hash ring over their IDs
// (see Ring); the slot is surfaced per environment as the unit a
// future multi-process fleet would shard by.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dwatch/internal/api"
	"dwatch/internal/api/adapt"
	"dwatch/internal/health"
	"dwatch/internal/llrp"
	"dwatch/internal/obs"
	"dwatch/internal/pipeline"
	"dwatch/internal/rf"
	"dwatch/internal/serve"
	"dwatch/internal/sim"
	"dwatch/internal/tracing"
	"dwatch/internal/wal"
)

// ErrClosed is returned by lifecycle methods after Close.
var ErrClosed = errors.New("fleet: closed")

// ErrNotFound is returned when an environment ID is not registered.
var ErrNotFound = errors.New("fleet: environment not found")

// Option configures New.
type Option func(*options)

type options struct {
	reg     *obs.Registry
	hub     *serve.Hub
	logger  *slog.Logger
	walRoot string
	walOpts []wal.Option
	slots   int
	pipe    func(envID string) []pipeline.Option
}

// WithObs attaches the shared metrics registry. Per-environment
// pipelines register into the same families; counters aggregate and
// per-env series are distinguished by the reader-ID prefix and the
// fleet's own env-labeled vectors.
func WithObs(reg *obs.Registry) Option { return func(o *options) { o.reg = reg } }

// WithHub attaches the broadcast hub every environment publishes its
// fixes into (Position.Env carries the environment ID).
func WithHub(h *serve.Hub) Option { return func(o *options) { o.hub = h } }

// WithLogger sets the structured logger (default: discard).
func WithLogger(l *slog.Logger) Option { return func(o *options) { o.logger = l } }

// WithWALRoot enables per-environment durable ingest WALs: environment
// <id> logs to <root>/<id>/, and surviving records are replayed through
// its pipeline when the environment is (re-)added.
func WithWALRoot(root string, wopts ...wal.Option) Option {
	return func(o *options) { o.walRoot = root; o.walOpts = wopts }
}

// WithSlots sets the consistent-hash ring size (default 16).
func WithSlots(n int) Option { return func(o *options) { o.slots = n } }

// WithPipelineOptions supplies per-environment pipeline options
// (workers, queue size, overload policy, ...), appended after the
// fleet's own wiring so they can override it.
func WithPipelineOptions(fn func(envID string) []pipeline.Option) Option {
	return func(o *options) { o.pipe = fn }
}

// Env is one registered environment. Fields are immutable after Add;
// the counters are live.
type Env struct {
	id       string
	scenario *sim.Scenario
	pipe     *pipeline.Pipeline
	tracer   *tracing.Tracer
	health   *health.Monitor
	wal      *wal.WAL
	slot     int
	added    time.Time

	// adopted environments are registered for routing/listing only:
	// their pipeline lifecycle belongs to the caller (dwatchd's legacy
	// single-deployment path), so Remove unregisters without draining.
	adopted        bool
	adoptedReaders int
	stats          func() api.PipelineStats
	walStatus      func() api.WALStatus

	fixes   atomic.Uint64
	reports atomic.Uint64
	// slo accounts ingest→fix latency against the deployment's declared
	// objective (nil when the config has no "slo" block).
	slo *obs.SLOTracker
	// reportCtr is the env's dwatch_fleet_reports_total child, resolved
	// once at Add time: resolving by label in Ingest would resurrect
	// the series after Remove drops it.
	reportCtr *obs.Counter
	// nextSeq offsets generated acquisition sequences across Simulate
	// runs, so a later run's rounds are new sequences to the assembler
	// instead of late duplicates of already-fused ones.
	nextSeq atomic.Uint32

	stop  chan struct{} // closed by Remove: stops Simulate drivers
	fixWG sync.WaitGroup
}

// ID returns the environment ID.
func (e *Env) ID() string { return e.id }

// Scenario returns the built deployment scenario (reader IDs carry the
// "<env>/" prefix).
func (e *Env) Scenario() *sim.Scenario { return e.scenario }

// Pipeline returns the environment's pipeline (nil for adopted envs).
func (e *Env) Pipeline() *pipeline.Pipeline { return e.pipe }

// Slot returns the environment's home slot on the fleet's hash ring.
func (e *Env) Slot() int { return e.slot }

// Fixes returns how many fixes this environment has published.
func (e *Env) Fixes() uint64 { return e.fixes.Load() }

// Fleet is the environment registry. All methods are safe for
// concurrent use.
type Fleet struct {
	o    options
	ring *Ring

	mu     sync.Mutex
	envs   map[string]*Env
	closed bool

	envsGauge  *obs.Gauge
	adds       *obs.Counter
	removes    *obs.Counter
	fixesVec   *obs.CounterVec
	reportsVec *obs.CounterVec
	queueVec   *obs.GaugeVec
	pendingVec *obs.GaugeVec
}

// New builds an empty fleet.
func New(opts ...Option) *Fleet {
	var o options
	for _, op := range opts {
		op(&o)
	}
	if o.logger == nil {
		o.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if o.slots <= 0 {
		o.slots = 16
	}
	f := &Fleet{o: o, ring: NewRing(o.slots), envs: map[string]*Env{}}
	reg := o.reg
	f.envsGauge = reg.Gauge("dwatch_fleet_environments",
		"Environments currently registered on this fleet.")
	f.adds = reg.Counter("dwatch_fleet_env_adds_total",
		"Environments added over the fleet's lifetime (Reload counts once).")
	f.removes = reg.Counter("dwatch_fleet_env_removes_total",
		"Environments removed over the fleet's lifetime (Reload counts once).")
	f.fixesVec = reg.CounterVec("dwatch_fleet_fixes_total",
		"Localization fixes published, by environment.", "env")
	f.reportsVec = reg.CounterVec("dwatch_fleet_reports_total",
		"RO_ACCESS_REPORTs ingested via the fleet, by environment.", "env")
	f.queueVec = reg.GaugeVec("dwatch_fleet_queue_depth",
		"Instantaneous pipeline report-queue occupancy, by environment.", "env")
	f.pendingVec = reg.GaugeVec("dwatch_fleet_pending_sequences",
		"Sequences mid-assembly, by environment.", "env")
	return f
}

// reservedEnvIDs are single-segment literals under /api/v1/ that the
// serve plane owns; an environment with one of these IDs would be
// unreachable env-scoped (the literal route always wins).
var reservedEnvIDs = map[string]bool{
	"envs": true, "positions": true, "stats": true,
	"traces": true, "health": true, "wal": true,
	"profiles": true, "cluster": true, "nodes": true,
}

// validateID enforces the env-ID grammar: URL-path-safe, one segment,
// not a reserved route name.
func validateID(id string) error {
	if id == "" {
		return errors.New("fleet: empty environment ID")
	}
	if reservedEnvIDs[id] {
		return fmt.Errorf("fleet: environment ID %q collides with a reserved API route", id)
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("fleet: environment ID %q contains %q (want [A-Za-z0-9._-])", id, c)
		}
	}
	return nil
}

// Add builds, registers, and starts an environment from a deployment
// config. Reader IDs are prefixed "<id>/" before anything downstream
// sees them, so per-reader metric labels, health state, and WAL records
// stay disjoint across environments. When a WAL root is configured the
// environment's surviving records are replayed through the fresh
// pipeline before Add returns.
func (f *Fleet) Add(id string, cfg sim.Config, popts ...pipeline.Option) (*Env, error) {
	if err := validateID(id); err != nil {
		return nil, err
	}
	sc, err := sim.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("fleet: build %s: %w", id, err)
	}
	for _, r := range sc.Readers {
		if !strings.HasPrefix(r.ID, id+"/") {
			r.ID = id + "/" + r.ID
		}
	}

	e := &Env{
		id: id, scenario: sc, added: time.Now(),
		slot: f.ring.Slot(id), stop: make(chan struct{}),
	}
	e.tracer = tracing.New(tracing.WithObs(f.o.reg))
	e.health = health.New(f.o.reg, health.Options{})
	if cfg.SLO != nil {
		e.slo = obs.NewSLOTracker(f.o.reg, id, obs.SLOOptions{
			Target:    time.Duration(cfg.SLO.TargetMS * float64(time.Millisecond)),
			Objective: cfg.SLO.Objective,
		})
	}
	if f.o.walRoot != "" {
		w, err := wal.Open(filepath.Join(f.o.walRoot, id),
			append([]wal.Option{wal.WithLogger(f.o.logger), wal.WithObs(f.o.reg)}, f.o.walOpts...)...)
		if err != nil {
			return nil, fmt.Errorf("fleet: wal %s: %w", id, err)
		}
		e.wal = w
		e.walStatus = func() api.WALStatus { return adapt.WALStatus(w.Status()) }
	}

	arrays := map[string]*rf.Array{}
	for _, r := range sc.Readers {
		arrays[r.ID] = r.Array
	}
	pipeOpts := []pipeline.Option{
		pipeline.WithObs(f.o.reg),
		pipeline.WithTracer(e.tracer),
		pipeline.WithHealth(e.health),
		pipeline.WithLogger(f.o.logger.With("env", id)),
	}
	if f.o.pipe != nil {
		pipeOpts = append(pipeOpts, f.o.pipe(id)...)
	}
	pipeOpts = append(pipeOpts, popts...)
	p, err := pipeline.New(pipeline.Deployment{Arrays: arrays, Grid: sc.Grid}, pipeOpts...)
	if err != nil {
		if e.wal != nil {
			e.wal.Close()
		}
		return nil, fmt.Errorf("fleet: pipeline %s: %w", id, err)
	}
	e.pipe = p
	e.stats = func() api.PipelineStats { return adapt.PipelineStats(p.Stats()) }

	e.reportCtr = f.reportsVec.With(id)
	hub, fixCtr := f.o.hub, f.fixesVec.With(id)
	p.SubscribeFixes(func(fix pipeline.Fix) {
		if fix.Err != nil {
			return
		}
		e.fixes.Add(1)
		fixCtr.Add(1)
		if e.slo != nil && fix.TraceID != "" {
			// The trace's start is the sequence's first ingest — the
			// latency the deployment's SLO is declared over.
			if d, ok := e.tracer.Get(fix.TraceID); ok {
				e.slo.Observe(time.Since(d.Start))
			}
		}
		hub.Publish(serve.Position{
			Env: id, Seq: fix.Seq,
			X: fix.Pos.X, Y: fix.Pos.Y,
			Confidence: fix.Confidence, Views: fix.Views,
			Readers: fix.Readers, Degraded: fix.Degraded,
			TraceID: fix.TraceID,
			Time:    time.Now(),
		})
	})
	p.Start()

	// Log-only fix consumer: the pipeline requires Fixes() to be
	// drained; the hub publish above is the real delivery path.
	logger := f.o.logger
	e.fixWG.Add(1)
	go func() {
		defer e.fixWG.Done()
		for fix := range p.Fixes() {
			if fix.Err != nil {
				logger.Debug("no fix", "env", id, "seq", fix.Seq, "error", fix.Err)
				continue
			}
			logger.Info("fix", "env", id, "seq", fix.Seq,
				"x", fix.Pos.X, "y", fix.Pos.Y, "confidence", fix.Confidence)
		}
	}()

	if e.wal != nil {
		if err := f.replayWAL(e); err != nil {
			f.teardownEnv(e)
			return nil, fmt.Errorf("fleet: wal replay %s: %w", id, err)
		}
	}

	// Collection-time gauges. obs gauge funcs are additive and cannot
	// be unregistered, so the closure reports zero once this *Env is no
	// longer the registered owner of the label (Remove, then re-Add,
	// would otherwise double-count).
	f.queueVec.Func(func() float64 {
		if f.lookup(id) != e {
			return 0
		}
		return float64(p.Stats().QueueDepth)
	}, id)
	f.pendingVec.Func(func() float64 {
		if f.lookup(id) != e {
			return 0
		}
		return float64(p.Stats().PendingSequences)
	}, id)

	if err := f.register(e); err != nil {
		f.teardownEnv(e)
		return nil, err
	}
	f.o.logger.Info("environment added", "env", id, "slot", e.slot,
		"readers", len(sc.Readers), "tags", sc.Cfg.Tags, "wal", e.wal != nil)
	return e, nil
}

// Adopted describes an externally-managed environment for Adopt.
type Adopted struct {
	// Name is the scenario name shown on /api/v1/envs (default: the ID).
	Name    string
	Readers int
	Tags    int
	Stats   func() api.PipelineStats
	Tracer  *tracing.Tracer
	Health  *health.Monitor
	// WALStatus backs /api/v1/{env}/wal when set.
	WALStatus func() api.WALStatus
}

// Adopt registers an environment whose pipeline is owned elsewhere —
// dwatchd's legacy single-deployment modes adopt their one environment
// so the env-scoped routes and /api/v1/envs work identically in
// single- and multi-env deployments. Remove on an adopted environment
// unregisters it without touching the caller's pipeline.
func (f *Fleet) Adopt(id string, a Adopted) (*Env, error) {
	if err := validateID(id); err != nil {
		return nil, err
	}
	e := &Env{
		id: id, added: time.Now(), slot: f.ring.Slot(id),
		adopted: true, stop: make(chan struct{}),
		stats: a.Stats, walStatus: a.WALStatus,
		tracer: a.Tracer, health: a.Health,
	}
	e.scenario = &sim.Scenario{Name: a.Name, Cfg: sim.Config{Tags: a.Tags}}
	if a.Name == "" {
		e.scenario.Name = id
	}
	e.scenario.Readers = nil
	e.adoptedReaders = a.Readers
	if err := f.register(e); err != nil {
		return nil, err
	}
	return e, nil
}

// register inserts e under the fleet lock.
func (f *Fleet) register(e *Env) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if _, dup := f.envs[e.id]; dup {
		return fmt.Errorf("fleet: environment %q already registered", e.id)
	}
	f.envs[e.id] = e
	f.adds.Add(1)
	f.envsGauge.Set(float64(len(f.envs)))
	return nil
}

func (f *Fleet) lookup(id string) *Env {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.envs[id]
}

// Env returns a registered environment.
func (f *Fleet) Env(id string) (*Env, bool) {
	e := f.lookup(id)
	return e, e != nil
}

// IDs lists registered environment IDs, sorted.
func (f *Fleet) IDs() []string {
	f.mu.Lock()
	ids := make([]string, 0, len(f.envs))
	for id := range f.envs {
		ids = append(ids, id)
	}
	f.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// Len reports the registered environment count.
func (f *Fleet) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.envs)
}

// Remove deregisters an environment and, for fleet-owned environments,
// drains it gracefully: new lookups miss immediately, any Simulate
// driver stops, the pipeline flushes in-flight work, the WAL closes,
// and the hub forgets the environment's latest fix. Other environments
// are untouched.
func (f *Fleet) Remove(id string) error {
	f.mu.Lock()
	e, ok := f.envs[id]
	if ok {
		delete(f.envs, id)
		f.removes.Add(1)
		f.envsGauge.Set(float64(len(f.envs)))
		// Per-env series die with the environment, inside the lock so
		// a concurrent re-Add starts fresh children (and fresh gauge
		// closures) instead of inheriting stale ones. The ownership
		// guards on the queue/pending closures keep the old closures
		// silent in the window before the old children are dropped.
		f.fixesVec.Remove(id)
		f.reportsVec.Remove(id)
		f.queueVec.Remove(id)
		f.pendingVec.Remove(id)
		e.slo.Close()
	}
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	f.teardownEnv(e)
	f.o.logger.Info("environment removed", "env", id)
	return nil
}

// teardownEnv stops the environment's machinery outside the fleet lock.
func (f *Fleet) teardownEnv(e *Env) {
	e.slo.Close() // idempotent; covers Add-failure paths that skip Remove
	close(e.stop)
	if !e.adopted {
		if e.pipe != nil {
			e.pipe.Drain()
		}
		e.fixWG.Wait()
		if e.wal != nil {
			e.wal.Close()
		}
	}
	f.o.hub.Forget(e.id)
}

// Reload atomically replaces an environment with a rebuilt one from a
// (possibly changed) config: graceful drain of the old, then Add of the
// new under the same ID. The WAL subdirectory is reused — records from
// readers that no longer exist are skipped during replay.
func (f *Fleet) Reload(id string, cfg sim.Config, popts ...pipeline.Option) (*Env, error) {
	if err := f.Remove(id); err != nil {
		return nil, err
	}
	return f.Add(id, cfg, popts...)
}

// ReadConfigDir parses every *.json deployment config in dir without
// registering anything; the file stem is the environment ID
// ("warehouse-a.json" → "warehouse-a"). Returns the catalog plus the
// IDs sorted by filename — the shape a cluster agent announces to the
// directory before it owns anything.
func ReadConfigDir(dir string) (map[string]sim.Config, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: %w", err)
	}
	catalog := map[string]sim.Config{}
	var ids []string
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		file, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: %w", err)
		}
		cfg, err := sim.LoadConfig(file)
		file.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: %s: %w", name, err)
		}
		catalog[id] = cfg
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, nil, fmt.Errorf("fleet: no *.json deployment configs in %s", dir)
	}
	return catalog, ids, nil
}

// LoadDir registers every *.json deployment config in dir (see
// ReadConfigDir for the naming convention). Returns the IDs added,
// sorted by filename. The first failure aborts the load with earlier
// environments left running.
func (f *Fleet) LoadDir(dir string, popts ...pipeline.Option) ([]string, error) {
	catalog, ids, err := ReadConfigDir(dir)
	if err != nil {
		return nil, err
	}
	added := ids[:0]
	for _, id := range ids {
		if _, err := f.Add(id, catalog[id], popts...); err != nil {
			return added, err
		}
		added = append(added, id)
	}
	return added, nil
}

// Ingest appends a report to the environment's WAL (when configured)
// and dispatches it to the environment's pipeline — the fleet-mode
// equivalent of dwatchd's LLRP handler path.
func (f *Fleet) Ingest(id string, payload []byte) error {
	e := f.lookup(id)
	if e == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if e.adopted {
		return fmt.Errorf("fleet: environment %q is adopted; ingest through its owner", id)
	}
	rep, err := llrp.UnmarshalROAccessReport(payload)
	if err != nil {
		return fmt.Errorf("fleet: %s: %w", id, err)
	}
	if e.wal != nil {
		if _, err := e.wal.Append(time.Now(), llrp.MsgROAccessReport, payload); err != nil {
			return fmt.Errorf("fleet: %s: wal append: %w", id, err)
		}
	}
	if err := e.pipe.Ingest(rep); err != nil {
		return fmt.Errorf("fleet: %s: %w", id, err)
	}
	e.reports.Add(1)
	e.reportCtr.Add(1)
	return nil
}

// Simulate drives an environment with generated LLRP rounds (two
// baseline rounds, then a target walking for `rounds` acquisition
// periods), pacing one round per interval. It returns early when the
// context ends or the environment is removed. snapshotsPerTag ≤ 0 uses
// the paper's 10.
func (f *Fleet) Simulate(ctx context.Context, id string, rounds, snapshotsPerTag int, interval time.Duration) error {
	e := f.lookup(id)
	if e == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	gen, err := sim.GenerateLLRPRounds(e.scenario, rounds, snapshotsPerTag)
	if err != nil {
		return fmt.Errorf("fleet: %s: %w", id, err)
	}
	// Shift this run's sequences past everything already driven, so
	// repeated Simulate calls extend the stream instead of replaying
	// already-fused sequence numbers (which the assembler drops as
	// late).
	base := e.nextSeq.Load()
	var maxSeq uint32
	var tick *time.Ticker
	if interval > 0 {
		tick = time.NewTicker(interval)
		defer tick.Stop()
	}
	for _, round := range gen {
		seq := round.Seq + base
		if seq > maxSeq {
			maxSeq = seq
		}
		for _, payload := range payloadsInOrder(round) {
			if base != 0 {
				rep, err := llrp.UnmarshalROAccessReport(payload)
				if err != nil {
					return fmt.Errorf("fleet: %s: %w", id, err)
				}
				rep.Seq = seq
				if payload, err = rep.Marshal(); err != nil {
					return fmt.Errorf("fleet: %s: %w", id, err)
				}
			}
			if err := f.Ingest(id, payload); err != nil {
				if errors.Is(err, ErrNotFound) {
					return nil // removed mid-run: a clean stop, not an error
				}
				return err
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-e.stop:
			return nil
		default:
		}
		if tick != nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-e.stop:
				return nil
			case <-tick.C:
			}
		}
	}
	e.nextSeq.Store(maxSeq)
	return nil
}

// payloadsInOrder returns a round's per-reader payloads in a stable
// reader order, for deterministic ingest.
func payloadsInOrder(round sim.LLRPRound) [][]byte {
	ids := make([]string, 0, len(round.Payloads))
	for rid := range round.Payloads {
		ids = append(ids, rid)
	}
	sort.Strings(ids)
	out := make([][]byte, 0, len(ids))
	for _, rid := range ids {
		out = append(out, round.Payloads[rid])
	}
	return out
}

// replayWAL re-ingests an environment's surviving records through its
// fresh pipeline; reports for readers the (possibly reloaded) scenario
// no longer has are skipped.
func (f *Fleet) replayWAL(e *Env) error {
	var replayed, skipped int
	res, err := wal.Scan(e.wal.Dir(), func(rec wal.Record) error {
		if rec.Type != llrp.MsgROAccessReport {
			return nil
		}
		rep, err := llrp.UnmarshalROAccessReport(rec.Payload)
		if err != nil {
			skipped++
			return nil
		}
		if rep.Seq > e.nextSeq.Load() {
			// Future Simulate runs must start past the replayed stream.
			e.nextSeq.Store(rep.Seq)
		}
		if err := e.pipe.Ingest(rep); err != nil {
			if errors.Is(err, pipeline.ErrUnknownReader) {
				skipped++
				return nil
			}
			return err
		}
		replayed++
		return nil
	})
	if err != nil {
		return err
	}
	if res.Records > 0 {
		f.o.logger.Info("wal recovery replayed", "env", e.id,
			"records", res.Records, "ingested", replayed, "skipped", skipped)
	}
	return nil
}

// Ready reports nil once every fleet-owned environment has confirmed
// all its reader baselines — the /readyz hook for fleet mode.
func (f *Fleet) Ready() error {
	f.mu.Lock()
	envs := make([]*Env, 0, len(f.envs))
	for _, e := range f.envs {
		envs = append(envs, e)
	}
	f.mu.Unlock()
	for _, e := range envs {
		if e.adopted || e.pipe == nil {
			continue
		}
		st := e.pipe.Stats()
		if st.BaselinesConfirmed < uint64(len(e.scenario.Readers)) {
			return fmt.Errorf("environment %q: %d/%d baselines confirmed",
				e.id, st.BaselinesConfirmed, len(e.scenario.Readers))
		}
	}
	return nil
}

// Infos adapts the registry to serve.WithEnvs: a sorted listing with
// live fix/report counts.
func (f *Fleet) Infos() []serve.EnvInfo {
	f.mu.Lock()
	envs := make([]*Env, 0, len(f.envs))
	for _, e := range f.envs {
		envs = append(envs, e)
	}
	f.mu.Unlock()
	sort.Slice(envs, func(i, j int) bool { return envs[i].id < envs[j].id })
	out := make([]serve.EnvInfo, len(envs))
	for i, e := range envs {
		out[i] = e.info()
	}
	return out
}

func (e *Env) info() serve.EnvInfo {
	readers := len(e.scenario.Readers)
	if e.adopted {
		readers = e.adoptedReaders
	}
	name := e.scenario.Name
	if name == e.id {
		name = ""
	}
	return serve.EnvInfo{
		ID: e.id, Name: name, Slot: e.slot,
		Readers: readers, Tags: e.scenario.Cfg.Tags,
		Fixes: e.fixes.Load(), Reports: e.reports.Load(),
		Added: e.added,
	}
}

// EnvHandle adapts the registry to serve.WithEnvLookup.
func (f *Fleet) EnvHandle(id string) (serve.EnvHandle, bool) {
	e := f.lookup(id)
	if e == nil {
		return serve.EnvHandle{}, false
	}
	return serve.EnvHandle{
		Info:      e.info(),
		Stats:     e.stats,
		Tracer:    e.tracer,
		Health:    e.health,
		WALStatus: e.walStatus,
	}, true
}

// Close removes every environment (graceful drains included) and
// rejects further lifecycle calls.
func (f *Fleet) Close() {
	f.mu.Lock()
	f.closed = true
	envs := make([]*Env, 0, len(f.envs))
	for _, e := range f.envs {
		envs = append(envs, e)
	}
	f.envs = map[string]*Env{}
	f.envsGauge.Set(0)
	f.mu.Unlock()
	for _, e := range envs {
		f.teardownEnv(e)
	}
}
