package fleet

import (
	"fmt"
	"testing"
)

// TestRingDeterministic: placement is a pure function of the key and
// the ring shape.
func TestRingDeterministic(t *testing.T) {
	a, b := NewRing(8), NewRing(8)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("env-%d", i)
		if a.Slot(key) != b.Slot(key) {
			t.Fatalf("ring placement not deterministic for %q", key)
		}
	}
}

// TestRingCoverage: with enough keys every slot receives some, and no
// slot hoards the ring (loose bound — vnodes keep imbalance small, but
// this is a statistical property, not an exact one).
func TestRingCoverage(t *testing.T) {
	const slots, keys = 8, 4000
	r := NewRing(slots)
	counts := make([]int, slots)
	for i := 0; i < keys; i++ {
		counts[r.Slot(fmt.Sprintf("env-%d", i))]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Fatalf("slot %d received no keys", s)
		}
		if n > keys/2 {
			t.Fatalf("slot %d hoards %d/%d keys", s, n, keys)
		}
	}
}

// TestRingStability is the consistent-hashing contract: growing the
// ring from n to n+1 slots re-homes roughly 1/(n+1) of the keys, not
// all of them (modulo hashing would move ~n/(n+1)).
func TestRingStability(t *testing.T) {
	const keys = 4000
	small, big := NewRing(8), NewRing(9)
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("env-%d", i)
		if small.Slot(key) != big.Slot(key) {
			moved++
		}
	}
	frac := float64(moved) / keys
	if frac == 0 {
		t.Fatal("no keys moved when a slot was added — ring ignores slot count")
	}
	// Ideal is 1/9 ≈ 0.11; allow generous statistical slack but stay
	// far below the ~0.89 a mod-N scheme would show.
	if frac > 0.3 {
		t.Fatalf("adding one slot moved %.0f%% of keys, want ~11%%", frac*100)
	}
}

// TestRingDegenerate: slot counts below 1 clamp to a single slot.
func TestRingDegenerate(t *testing.T) {
	r := NewRing(0)
	if r.Slots() != 1 {
		t.Fatalf("Slots() = %d, want 1", r.Slots())
	}
	if s := r.Slot("anything"); s != 0 {
		t.Fatalf("Slot = %d, want 0", s)
	}
}
