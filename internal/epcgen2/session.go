package epcgen2

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Gen2 session state machine (Gen2 §6.3.2.2-6.3.2.3): every tag keeps
// one inventoried flag (A or B) per session S0-S3 plus a selected (SL)
// flag. A Query targeting A singulates only flag-A tags and flips each
// read tag to B, so a full inventory round naturally partitions the
// population; flags decay back to A after a session-specific
// persistence time once the tag is unpowered. The Select command
// pre-filters which tags participate by matching a mask against the
// EPC. The paper's Impinj readers run exactly this machinery under
// dense-reader Miller modes; D-Watch's per-tag acquisition cadence is
// governed by it.

// Flag is an inventoried flag value.
type Flag uint8

// Inventoried flag values.
const (
	FlagA Flag = iota
	FlagB
)

// String implements fmt.Stringer.
func (f Flag) String() string {
	if f == FlagA {
		return "A"
	}
	return "B"
}

// Persistence returns the nominal inventoried-flag persistence of a
// session when the tag loses power (Gen2 Table 6.20): S0 decays
// immediately, S1 holds 0.5-5 s, S2/S3 hold >2 s. Powered tags hold
// indefinitely except S1.
func Persistence(s Session) time.Duration {
	switch s {
	case S0:
		return 0
	case S1:
		return 2 * time.Second // within the 500 ms – 5 s band
	default:
		return 10 * time.Second // "greater than 2 s"; pick a concrete value
	}
}

// SessionTag is a tag's session-relevant state.
type SessionTag struct {
	EPC      []byte
	SL       bool
	flags    [4]Flag
	lastSeen [4]time.Time
}

// NewSessionTag creates a tag with all flags at A and SL deasserted.
func NewSessionTag(epc []byte) *SessionTag {
	return &SessionTag{EPC: epc}
}

// FlagOf returns the tag's inventoried flag for a session at time now,
// applying persistence decay (flags revert to A when their persistence
// lapses; the model treats tags as unpowered between reader visits,
// the conservative choice for multi-antenna TDM readers).
func (t *SessionTag) FlagOf(s Session, now time.Time) Flag {
	if t.flags[s] == FlagB {
		p := Persistence(s)
		if p == 0 || now.Sub(t.lastSeen[s]) > p {
			t.flags[s] = FlagA
		}
	}
	return t.flags[s]
}

// Invert flips the tag's flag for a session (the action of a successful
// singulation, or of a Select with the invert action).
func (t *SessionTag) Invert(s Session, now time.Time) {
	if t.FlagOf(s, now) == FlagA {
		t.flags[s] = FlagB
	} else {
		t.flags[s] = FlagA
	}
	t.lastSeen[s] = now
}

// SelectTarget says what a Select command modifies.
type SelectTarget uint8

// Select targets.
const (
	TargetSL SelectTarget = iota
	TargetS0
	TargetS1
	TargetS2
	TargetS3
)

// SelectAction is the subset of Gen2 select actions the simulator
// needs: assert/deassert on match, with the complementary effect on
// non-matching tags.
type SelectAction uint8

// Select actions.
const (
	// ActionAssert: matching tags set SL (or flag→A); others deassert.
	ActionAssert SelectAction = iota
	// ActionDeassert: matching tags clear SL (or flag→B); others assert.
	ActionDeassert
)

// Select is the population-filter command.
type Select struct {
	Target SelectTarget
	Action SelectAction
	// Mask matches tags whose EPC contains Mask at bit offset Pointer
	// (byte-aligned pointer for simplicity; Gen2 allows arbitrary bit
	// offsets).
	Pointer int
	Mask    []byte
}

// Matches reports whether the tag's EPC matches the select mask.
func (sel *Select) Matches(epc []byte) bool {
	if sel.Pointer < 0 || sel.Pointer+len(sel.Mask) > len(epc) {
		return false
	}
	for i, b := range sel.Mask {
		if epc[sel.Pointer+i] != b {
			return false
		}
	}
	return true
}

// Apply runs the select over a population at time now.
func (sel *Select) Apply(tags []*SessionTag, now time.Time) {
	for _, t := range tags {
		match := sel.Matches(t.EPC)
		assert := (match && sel.Action == ActionAssert) || (!match && sel.Action == ActionDeassert)
		switch sel.Target {
		case TargetSL:
			t.SL = assert
		case TargetS0, TargetS1, TargetS2, TargetS3:
			s := Session(sel.Target - TargetS0)
			if assert {
				t.flags[s] = FlagA
			} else {
				t.flags[s] = FlagB
				t.lastSeen[s] = now
			}
		}
	}
}

// SessionInventoryParams configures RunSessionInventory.
type SessionInventoryParams struct {
	Session Session
	Target  Flag // which flag value participates (usually A)
	// SelFilter: 0 = all tags, 1 = only SL asserted, 2 = only SL
	// deasserted (Gen2's Sel field, simplified).
	SelFilter uint8
	InitialQ  uint8
	C         float64
	MaxRounds int
	Rng       *rand.Rand
	Now       time.Time
}

// ErrNoSessionRng mirrors ErrNoRng for the session-aware inventory.
var ErrNoSessionRng = errors.New("epcgen2: SessionInventoryParams.Rng must be set")

// RunSessionInventory performs one inventory cycle against the session
// state machine: only tags whose session flag equals Target (and whose
// SL matches SelFilter) participate, and each successful singulation
// inverts the tag's flag — so immediately re-running the same cycle
// reads nothing until flags decay or a Select resets them.
func RunSessionInventory(tags []*SessionTag, p SessionInventoryParams) (*InventoryResult, error) {
	if p.Rng == nil {
		return nil, ErrNoSessionRng
	}
	if p.InitialQ > 15 {
		return nil, fmt.Errorf("epcgen2: initial Q %d out of range", p.InitialQ)
	}
	if p.Now.IsZero() {
		p.Now = time.Now()
	}
	var participating []*SessionTag
	for _, t := range tags {
		if t.FlagOf(p.Session, p.Now) != p.Target {
			continue
		}
		switch p.SelFilter {
		case 1:
			if !t.SL {
				continue
			}
		case 2:
			if t.SL {
				continue
			}
		}
		participating = append(participating, t)
	}
	epcs := make([][]byte, len(participating))
	for i, t := range participating {
		epcs[i] = t.EPC
	}
	res, err := RunInventory(epcs, InventoryParams{
		InitialQ: p.InitialQ, C: p.C, MaxRounds: p.MaxRounds, Rng: p.Rng,
	})
	if err != nil {
		return nil, err
	}
	// Flip the flags of every read tag.
	byEPC := map[string]*SessionTag{}
	for _, t := range participating {
		byEPC[string(t.EPC)] = t
	}
	for _, r := range res.Reads {
		if t, ok := byEPC[string(r.EPC)]; ok {
			t.Invert(p.Session, p.Now)
		}
	}
	return res, nil
}
