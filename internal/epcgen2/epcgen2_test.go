package epcgen2

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE of "123456789" is 0x29B1; Gen2 transmits its
	// complement, so our CRC16 (with final complement) gives ^0x29B1.
	got := CRC16([]byte("123456789"))
	if got != ^uint16(0x29B1) {
		t.Errorf("CRC16 = %#04x, want %#04x", got, ^uint16(0x29B1))
	}
}

func TestCRC16RoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		return CheckCRC16(AppendCRC16(append([]byte(nil), data...)))
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCRC16DetectsCorruption(t *testing.T) {
	frame := AppendCRC16([]byte{0x30, 0x00, 0xDE, 0xAD, 0xBE, 0xEF})
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x01
		if CheckCRC16(bad) {
			t.Errorf("single-bit corruption at byte %d not detected", i)
		}
	}
	if CheckCRC16([]byte{0x01}) {
		t.Error("too-short frame must fail")
	}
}

func TestCRC5FiveBitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		bits := make([]byte, 17)
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		if c := CRC5(bits); c > 0x1F {
			t.Fatalf("CRC5 = %#x exceeds 5 bits", c)
		}
	}
}

func TestQueryRoundTrip(t *testing.T) {
	q := Query{DR: true, M: 2, TRext: false, Sel: 1, Session: S2, Target: true, Q: 9}
	bits, err := EncodeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != 22 {
		t.Fatalf("query frame = %d bits", len(bits))
	}
	got, err := DecodeQuery(bits)
	if err != nil {
		t.Fatal(err)
	}
	if got != q {
		t.Errorf("round trip: %+v != %+v", got, q)
	}
}

func TestQueryRoundTripProperty(t *testing.T) {
	f := func(dr, trext, target bool, m, sel, sess, qv uint8) bool {
		q := Query{DR: dr, M: m % 4, TRext: trext, Sel: sel % 4, Session: Session(sess % 4), Target: target, Q: qv % 16}
		bits, err := EncodeQuery(q)
		if err != nil {
			return false
		}
		got, err := DecodeQuery(bits)
		return err == nil && got == q
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQueryValidation(t *testing.T) {
	if _, err := EncodeQuery(Query{Q: 16}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("Q=16: %v", err)
	}
	if _, err := EncodeQuery(Query{M: 4}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("M=4: %v", err)
	}
	if _, err := DecodeQuery(make([]byte, 10)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short: %v", err)
	}
	// Corrupt CRC.
	bits, _ := EncodeQuery(Query{Q: 4})
	bits[21] ^= 1
	if _, err := DecodeQuery(bits); !errors.Is(err, ErrBadFrame) {
		t.Errorf("bad CRC: %v", err)
	}
	// Corrupt command code.
	bits2, _ := EncodeQuery(Query{Q: 4})
	bits2[0] = 0
	if _, err := DecodeQuery(bits2); !errors.Is(err, ErrBadFrame) {
		t.Errorf("bad code: %v", err)
	}
}

func TestQueryRepRoundTrip(t *testing.T) {
	for s := S0; s <= S3; s++ {
		bits := EncodeQueryRep(s)
		got, err := DecodeQueryRep(bits)
		if err != nil || got != s {
			t.Errorf("session %d: got %d, %v", s, got, err)
		}
	}
	if _, err := DecodeQueryRep([]byte{1, 1, 0, 0}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("wrong code: %v", err)
	}
}

func TestACKRoundTrip(t *testing.T) {
	for _, rn := range []uint16{0, 1, 0xFFFF, 0xA5A5} {
		bits := EncodeACK(rn)
		got, err := DecodeACK(bits)
		if err != nil || got != rn {
			t.Errorf("rn %#x: got %#x, %v", rn, got, err)
		}
	}
	if _, err := DecodeACK(make([]byte, 5)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short ACK: %v", err)
	}
}

func TestEPCReplyRoundTrip(t *testing.T) {
	epc := []byte{0x30, 0x08, 0x33, 0xB2, 0xDD, 0xD9, 0x01, 0x40, 0x00, 0x00, 0x00, 0x01}
	frame, err := EncodeEPCReply(epc)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != 2+12+2 {
		t.Fatalf("frame len = %d", len(frame))
	}
	dec, err := DecodeEPCReply(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.EPC, epc) {
		t.Errorf("EPC = %x", dec.EPC)
	}
	if dec.PC>>11 != 6 {
		t.Errorf("PC words = %d, want 6", dec.PC>>11)
	}
}

func TestEPCReplyValidation(t *testing.T) {
	if _, err := EncodeEPCReply(nil); !errors.Is(err, ErrBadFrame) {
		t.Errorf("empty EPC: %v", err)
	}
	if _, err := EncodeEPCReply([]byte{1, 2, 3}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("odd EPC: %v", err)
	}
	frame, _ := EncodeEPCReply([]byte{1, 2})
	frame[2] ^= 0xFF
	if _, err := DecodeEPCReply(frame); !errors.Is(err, ErrBadFrame) {
		t.Errorf("corrupted: %v", err)
	}
	if _, err := DecodeEPCReply([]byte{1, 2}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short: %v", err)
	}
}

func TestRunInventoryReadsAllTags(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	epcs := make([][]byte, 21) // the paper's default population
	for i := range epcs {
		epcs[i] = RandomEPC(rng)
	}
	res, err := RunInventory(epcs, InventoryParams{InitialQ: 4, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reads) != 21 {
		t.Fatalf("reads = %d, want 21", len(res.Reads))
	}
	// Every EPC appears exactly once.
	seen := map[string]bool{}
	for _, r := range res.Reads {
		k := string(r.EPC)
		if seen[k] {
			t.Errorf("EPC %x read twice", r.EPC)
		}
		seen[k] = true
	}
	// Accounting: per round, singles+collisions+idles == slots.
	for i, st := range res.Rounds {
		if st.Singles+st.Collisions+st.Idles != st.Slots {
			t.Errorf("round %d accounting: %+v", i, st)
		}
	}
}

func TestRunInventoryQAdapts(t *testing.T) {
	// Many tags with tiny initial Q: collisions must push Q upward.
	rng := rand.New(rand.NewSource(5))
	epcs := make([][]byte, 60)
	for i := range epcs {
		epcs[i] = RandomEPC(rng)
	}
	res, err := RunInventory(epcs, InventoryParams{InitialQ: 1, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) < 2 {
		t.Fatal("expected multiple rounds")
	}
	grew := false
	for _, st := range res.Rounds[1:] {
		if st.Q > 1 {
			grew = true
		}
	}
	if !grew {
		t.Error("Q never adapted upward despite collisions")
	}
	if len(res.Reads) != 60 {
		t.Errorf("reads = %d, want 60", len(res.Reads))
	}
}

func TestRunInventoryValidation(t *testing.T) {
	if _, err := RunInventory(nil, InventoryParams{}); !errors.Is(err, ErrNoRng) {
		t.Errorf("nil rng: %v", err)
	}
	rng := rand.New(rand.NewSource(6))
	if _, err := RunInventory(nil, InventoryParams{InitialQ: 16, Rng: rng}); err == nil {
		t.Error("Q=16 must error")
	}
	res, err := RunInventory(nil, InventoryParams{Rng: rng})
	if err != nil || len(res.Reads) != 0 {
		t.Errorf("empty population: %v, %v", res, err)
	}
}

func TestSlotOutcomeString(t *testing.T) {
	if SlotIdle.String() != "idle" || SlotSingle.String() != "single" || SlotCollision.String() != "collision" {
		t.Error("SlotOutcome strings wrong")
	}
	if SlotOutcome(9).String() == "" {
		t.Error("unknown outcome should still format")
	}
}

func TestRandomEPCLength(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := RandomEPC(rng)
	if len(e) != 12 {
		t.Errorf("EPC length = %d", len(e))
	}
}
