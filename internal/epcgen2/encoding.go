package epcgen2

import (
	"errors"
	"fmt"
)

// Air-interface line codings of the tag→reader link (Gen2 §6.3.1.3):
// FM0 baseband and Miller-modulated subcarrier. The Query command's M
// field selects the coding (M=0 → FM0, M=1/2/3 → Miller with 2/4/8
// subcarrier cycles per symbol); slower codings trade data rate for
// noise immunity — the paper's readers run in dense-reader Miller modes.
//
// Symbols are represented at half-bit resolution: each data bit becomes
// 2 (FM0) or 2·m (Miller) half-bit levels of ±1. Encoders prepend the
// standard preamble; decoders verify and strip it.

// ErrBadEncoding is returned when a waveform fails to decode.
var ErrBadEncoding = errors.New("epcgen2: bad line coding")

// MillerM is the Miller subcarrier factor: cycles per symbol.
type MillerM int

// Supported Miller factors.
const (
	Miller2 MillerM = 2
	Miller4 MillerM = 4
	Miller8 MillerM = 8
)

// MFromQuery maps a Query command's 2-bit M field to the tag coding.
// M=0 selects FM0 (no Miller factor).
func MFromQuery(m uint8) (MillerM, bool) {
	switch m {
	case 1:
		return Miller2, true
	case 2:
		return Miller4, true
	case 3:
		return Miller8, true
	default:
		return 0, false
	}
}

// fm0Preamble is the 6-symbol FM0 preamble (TRext=0), at half-bit
// resolution, per Gen2 Fig. 6.11: bits 1 0 1 0 v 1 where v is a
// coding violation.
var fm0Preamble = []int8{
	+1, +1, // 1: no mid-bit flip (levels chosen canonical)
	-1, +1, // 0: mid-bit flip
	-1, -1, // 1
	+1, -1, // 0
	+1, +1, // v: violation (no boundary inversion where one is required)
	-1, -1, // 1
}

// EncodeFM0 renders data bits (0/1 per byte) as an FM0 waveform at
// half-bit resolution, preamble included. FM0 inverts phase at every
// bit boundary; a data-0 adds a mid-bit inversion.
func EncodeFM0(bits []byte) []int8 {
	out := make([]int8, 0, len(fm0Preamble)+2*len(bits)+2)
	out = append(out, fm0Preamble...)
	level := out[len(out)-1]
	for _, b := range bits {
		level = -level // boundary inversion
		first := level
		second := level
		if b&1 == 0 {
			second = -level // mid-bit inversion for 0
			level = second
		}
		out = append(out, first, second)
	}
	// Dummy data-1 end-of-signaling bit.
	level = -level
	out = append(out, level, level)
	return out
}

// DecodeFM0 recovers data bits from an FM0 waveform produced by
// EncodeFM0 (preamble and trailing dummy bit verified and stripped).
func DecodeFM0(wave []int8) ([]byte, error) {
	if len(wave) < len(fm0Preamble)+2 || len(wave)%2 != 0 {
		return nil, fmt.Errorf("%w: FM0 length %d", ErrBadEncoding, len(wave))
	}
	// The whole waveform may be globally inverted (backscatter phase);
	// normalize by the first preamble half-bit.
	inv := int8(1)
	if wave[0] == -1 {
		inv = -1
	}
	for i, want := range fm0Preamble {
		if wave[i]*inv != want {
			return nil, fmt.Errorf("%w: FM0 preamble mismatch at %d", ErrBadEncoding, i)
		}
	}
	body := wave[len(fm0Preamble):]
	nBits := len(body)/2 - 1 // last bit is the dummy terminator
	out := make([]byte, 0, nBits)
	prev := wave[len(wave)-len(body)-1] * inv
	for i := 0; i < nBits+1; i++ {
		first := body[2*i] * inv
		second := body[2*i+1] * inv
		if first != -prev {
			return nil, fmt.Errorf("%w: missing FM0 boundary inversion at bit %d", ErrBadEncoding, i)
		}
		var bit byte
		if second == first {
			bit = 1
		} else {
			bit = 0
		}
		if i < nBits {
			out = append(out, bit)
		} else if bit != 1 {
			return nil, fmt.Errorf("%w: FM0 terminator is not a data-1", ErrBadEncoding)
		}
		prev = second
	}
	return out, nil
}

// EncodeMiller renders data bits as Miller-M baseband-times-subcarrier,
// at half-subcarrier-cycle resolution: each bit spans 2·m levels.
// Miller baseband inverts phase between two data-0s in sequence and at
// the midpoint of a data-1; the subcarrier then toggles m times per
// bit. A 4-bit 0101 pilot precedes the data (TRext=0 per Gen2).
func EncodeMiller(bits []byte, m MillerM) ([]int8, error) {
	if m != Miller2 && m != Miller4 && m != Miller8 {
		return nil, fmt.Errorf("%w: Miller factor %d", ErrBadEncoding, m)
	}
	pilot := []byte{0, 1, 0, 1}
	all := append(append([]byte(nil), pilot...), bits...)
	out := make([]int8, 0, 2*int(m)*len(all))
	phase := int8(1)
	prev := byte(1) // so a leading 0 does not invert
	for i, b := range all {
		b &= 1
		if i > 0 && b == 0 && prev == 0 {
			phase = -phase // inversion between consecutive 0s
		}
		half := int(m) // half-bit = m half-subcarrier cycles
		for k := 0; k < half; k++ {
			out = append(out, phase*subcarrier(k))
		}
		if b == 1 {
			phase = -phase // mid-bit inversion for 1
		}
		for k := 0; k < half; k++ {
			out = append(out, phase*subcarrier(k))
		}
		prev = b
	}
	return out, nil
}

// subcarrier returns the k-th half-cycle level of the square subcarrier.
func subcarrier(k int) int8 {
	if k%2 == 0 {
		return 1
	}
	return -1
}

// DecodeMiller recovers data bits from a Miller-M waveform produced by
// EncodeMiller (pilot verified and stripped).
func DecodeMiller(wave []int8, m MillerM) ([]byte, error) {
	if m != Miller2 && m != Miller4 && m != Miller8 {
		return nil, fmt.Errorf("%w: Miller factor %d", ErrBadEncoding, m)
	}
	span := 2 * int(m)
	if len(wave) == 0 || len(wave)%span != 0 {
		return nil, fmt.Errorf("%w: Miller length %d", ErrBadEncoding, len(wave))
	}
	nSymbols := len(wave) / span
	if nSymbols < 4 {
		return nil, fmt.Errorf("%w: Miller waveform shorter than its pilot", ErrBadEncoding)
	}
	// Demodulate: correlate each half-bit against the subcarrier to get
	// its baseband phase, then decode Miller transitions.
	halves := make([]int8, 0, 2*nSymbols)
	for h := 0; h < 2*nSymbols; h++ {
		var acc int
		for k := 0; k < int(m); k++ {
			acc += int(wave[h*int(m)+k]) * int(subcarrier(k))
		}
		switch {
		case acc == int(m):
			halves = append(halves, 1)
		case acc == -int(m):
			halves = append(halves, -1)
		default:
			return nil, fmt.Errorf("%w: corrupted subcarrier in half-bit %d", ErrBadEncoding, h)
		}
	}
	bits := make([]byte, nSymbols)
	for i := 0; i < nSymbols; i++ {
		if halves[2*i] != halves[2*i+1] {
			bits[i] = 1 // mid-bit inversion
		}
	}
	// Verify baseband phase legality and the pilot.
	phase := halves[0]
	prev := byte(1)
	for i := 0; i < nSymbols; i++ {
		want := phase
		if i > 0 && bits[i] == 0 && prev == 0 {
			want = -want
		}
		if halves[2*i] != want {
			return nil, fmt.Errorf("%w: illegal Miller phase at symbol %d", ErrBadEncoding, i)
		}
		phase = want
		if bits[i] == 1 {
			phase = -phase
		}
		prev = bits[i]
	}
	pilot := []byte{0, 1, 0, 1}
	for i, p := range pilot {
		if bits[i] != p {
			return nil, fmt.Errorf("%w: Miller pilot mismatch", ErrBadEncoding)
		}
	}
	return bits[len(pilot):], nil
}

// SymbolRate returns the tag data rate in bits/s for a coding at the
// given backscatter link frequency (BLF): FM0 moves one bit per cycle,
// Miller-M one bit per M cycles.
func SymbolRate(blfHz float64, m MillerM) float64 {
	if m == 0 {
		return blfHz
	}
	return blfHz / float64(m)
}
