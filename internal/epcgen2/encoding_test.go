package epcgen2

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBits(n int, rng *rand.Rand) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(2))
	}
	return out
}

func TestFM0RoundTrip(t *testing.T) {
	cases := [][]byte{
		{},
		{0},
		{1},
		{0, 0, 0, 0},
		{1, 1, 1, 1},
		{1, 0, 1, 1, 0, 0, 1, 0},
	}
	for _, bits := range cases {
		wave := EncodeFM0(bits)
		got, err := DecodeFM0(wave)
		if err != nil {
			t.Fatalf("bits %v: %v", bits, err)
		}
		if !bytes.Equal(got, bits) && !(len(got) == 0 && len(bits) == 0) {
			t.Errorf("bits %v round-tripped to %v", bits, got)
		}
	}
}

func TestFM0RoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := randBits(int(n%64), rng)
		got, err := DecodeFM0(EncodeFM0(bits))
		if err != nil {
			return false
		}
		return bytes.Equal(got, bits) || (len(got) == 0 && len(bits) == 0)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFM0GlobalInversionTolerated(t *testing.T) {
	bits := []byte{1, 0, 0, 1}
	wave := EncodeFM0(bits)
	for i := range wave {
		wave[i] = -wave[i]
	}
	got, err := DecodeFM0(wave)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bits) {
		t.Errorf("inverted round trip = %v", got)
	}
}

func TestFM0PhaseInversionLaw(t *testing.T) {
	// Every bit boundary must invert the level — the defining FM0
	// property (and what gives it its DC-free spectrum).
	bits := randBits(32, rand.New(rand.NewSource(22)))
	wave := EncodeFM0(bits)
	body := wave[len(fm0Preamble):]
	prev := wave[len(fm0Preamble)-1]
	for i := 0; i+1 < len(body); i += 2 {
		if body[i] != -prev {
			t.Fatalf("no inversion at boundary %d", i/2)
		}
		prev = body[i+1]
	}
}

func TestFM0DecodeRejectsCorruption(t *testing.T) {
	bits := []byte{1, 0, 1, 1, 0}
	wave := EncodeFM0(bits)
	// Preamble corruption.
	bad := append([]int8(nil), wave...)
	bad[3] = -bad[3]
	if _, err := DecodeFM0(bad); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("preamble corruption: %v", err)
	}
	// Odd length.
	if _, err := DecodeFM0(wave[:len(wave)-1]); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("odd length: %v", err)
	}
	// Body boundary violation.
	bad2 := append([]int8(nil), wave...)
	bad2[len(fm0Preamble)] = -bad2[len(fm0Preamble)]
	if _, err := DecodeFM0(bad2); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("body violation: %v", err)
	}
}

func TestMillerRoundTripAllFactors(t *testing.T) {
	for _, m := range []MillerM{Miller2, Miller4, Miller8} {
		for _, bits := range [][]byte{{}, {0}, {1}, {1, 1, 0, 0, 1, 0, 1}} {
			wave, err := EncodeMiller(bits, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeMiller(wave, m)
			if err != nil {
				t.Fatalf("m=%d bits=%v: %v", m, bits, err)
			}
			if !bytes.Equal(got, bits) && !(len(got) == 0 && len(bits) == 0) {
				t.Errorf("m=%d: %v -> %v", m, bits, got)
			}
		}
	}
}

func TestMillerRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8, mSel uint8) bool {
		m := []MillerM{Miller2, Miller4, Miller8}[mSel%3]
		rng := rand.New(rand.NewSource(seed))
		bits := randBits(int(n%48), rng)
		wave, err := EncodeMiller(bits, m)
		if err != nil {
			return false
		}
		got, err := DecodeMiller(wave, m)
		if err != nil {
			return false
		}
		return bytes.Equal(got, bits) || (len(got) == 0 && len(bits) == 0)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMillerValidation(t *testing.T) {
	if _, err := EncodeMiller([]byte{1}, 3); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("bad factor encode: %v", err)
	}
	if _, err := DecodeMiller([]int8{1, 1}, 5); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("bad factor decode: %v", err)
	}
	if _, err := DecodeMiller([]int8{1, 1, 1}, Miller2); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("bad length: %v", err)
	}
	// Corrupt a subcarrier half-cycle.
	wave, err := EncodeMiller([]byte{1, 0, 1}, Miller4)
	if err != nil {
		t.Fatal(err)
	}
	wave[9] = -wave[9]
	if _, err := DecodeMiller(wave, Miller4); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("corrupted subcarrier: %v", err)
	}
}

func TestMFromQuery(t *testing.T) {
	if m, ok := MFromQuery(0); ok || m != 0 {
		t.Error("M=0 should select FM0 (no Miller)")
	}
	for q, want := range map[uint8]MillerM{1: Miller2, 2: Miller4, 3: Miller8} {
		if m, ok := MFromQuery(q); !ok || m != want {
			t.Errorf("MFromQuery(%d) = %d, %v", q, m, ok)
		}
	}
}

func TestSymbolRate(t *testing.T) {
	// BLF 320 kHz: FM0 → 320 kbps, Miller-4 → 80 kbps.
	if got := SymbolRate(320e3, 0); got != 320e3 {
		t.Errorf("FM0 rate = %v", got)
	}
	if got := SymbolRate(320e3, Miller4); got != 80e3 {
		t.Errorf("Miller-4 rate = %v", got)
	}
}

func TestMillerWaveLengthScalesWithM(t *testing.T) {
	bits := []byte{1, 0, 1}
	w2, _ := EncodeMiller(bits, Miller2)
	w8, _ := EncodeMiller(bits, Miller8)
	if len(w8) != 4*len(w2) {
		t.Errorf("Miller8 length %d, want 4× Miller2's %d", len(w8), len(w2))
	}
}
