// Package epcgen2 implements the parts of the EPCglobal Class-1
// Generation-2 (ISO 18000-6C) air protocol that D-Watch's readers and
// tags exercise: the CRC-5 and CRC-16 checks, bit-level command frames
// (Query / QueryRep / QueryAdjust / ACK), and a slotted-ALOHA inventory
// simulator with the standard Q-algorithm. The paper's Impinj readers
// are "compatible with EPC Gen2 standard" (Section 5); this package is
// the substrate that decides, per inventory round, which tags are read
// and therefore which backscatter snapshots the localization pipeline
// receives.
package epcgen2

// CRC5 computes the EPC Gen2 CRC-5 over the given bits (MSB-first bit
// slice). Polynomial x⁵+x³+1 (0b101001), preset 0b01001, as specified
// in Gen2 Annex F for the Query command.
func CRC5(bits []byte) byte {
	reg := byte(0b01001)
	for _, b := range bits {
		top := (reg >> 4) & 1
		reg = (reg << 1) & 0x1F
		if top^(b&1) == 1 {
			reg ^= 0b01001 // x³+1 taps (x⁵ is the implicit shift-out)
		}
	}
	return reg & 0x1F
}

// CRC16 computes the EPC Gen2 CRC-16 (CCITT: polynomial 0x1021, preset
// 0xFFFF, final complement) over the given bytes, as used to protect
// PC+EPC backscatter replies.
func CRC16(data []byte) uint16 {
	reg := uint16(0xFFFF)
	for _, b := range data {
		reg ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if reg&0x8000 != 0 {
				reg = reg<<1 ^ 0x1021
			} else {
				reg <<= 1
			}
		}
	}
	return ^reg
}

// CheckCRC16 verifies data whose last two bytes are the transmitted
// CRC-16 (big-endian).
func CheckCRC16(frame []byte) bool {
	if len(frame) < 2 {
		return false
	}
	want := uint16(frame[len(frame)-2])<<8 | uint16(frame[len(frame)-1])
	return CRC16(frame[:len(frame)-2]) == want
}

// AppendCRC16 appends the big-endian CRC-16 of data.
func AppendCRC16(data []byte) []byte {
	c := CRC16(data)
	return append(data, byte(c>>8), byte(c))
}
