package epcgen2

import (
	"errors"
	"fmt"
)

// Bit-level frames. EPC Gen2 commands are variable-length bit strings;
// we represent them as []byte with one bit per element (0 or 1,
// MSB-first), which keeps CRC-5 computation and round-trip tests exact.

// ErrBadFrame is returned when a frame fails to parse or verify.
var ErrBadFrame = errors.New("epcgen2: bad frame")

// Session is a Gen2 inventory session (S0-S3).
type Session uint8

// Gen2 sessions.
const (
	S0 Session = iota
	S1
	S2
	S3
)

// Query is the Gen2 Query command that starts an inventory round.
type Query struct {
	DR      bool    // divide ratio
	M       uint8   // cycles per symbol code, 2 bits
	TRext   bool    // pilot tone
	Sel     uint8   // which tags respond, 2 bits
	Session Session // 2 bits
	Target  bool    // inventoried flag A/B
	Q       uint8   // slot-count exponent, 4 bits (0-15)
}

const queryCommandCode = 0b1000 // 4-bit Query command code

// EncodeQuery renders the 22-bit Query frame including its CRC-5.
func EncodeQuery(q Query) ([]byte, error) {
	if q.M > 3 || q.Sel > 3 || q.Session > 3 || q.Q > 15 {
		return nil, fmt.Errorf("%w: field out of range in %+v", ErrBadFrame, q)
	}
	bits := make([]byte, 0, 22)
	bits = appendBits(bits, queryCommandCode, 4)
	bits = appendBits(bits, b2u(q.DR), 1)
	bits = appendBits(bits, uint(q.M), 2)
	bits = appendBits(bits, b2u(q.TRext), 1)
	bits = appendBits(bits, uint(q.Sel), 2)
	bits = appendBits(bits, uint(q.Session), 2)
	bits = appendBits(bits, b2u(q.Target), 1)
	bits = appendBits(bits, uint(q.Q), 4)
	crc := CRC5(bits)
	bits = appendBits(bits, uint(crc), 5)
	return bits, nil
}

// DecodeQuery parses and verifies a 22-bit Query frame.
func DecodeQuery(bits []byte) (Query, error) {
	if len(bits) != 22 {
		return Query{}, fmt.Errorf("%w: query length %d, want 22", ErrBadFrame, len(bits))
	}
	if got := readBits(bits, 0, 4); got != queryCommandCode {
		return Query{}, fmt.Errorf("%w: command code %04b", ErrBadFrame, got)
	}
	if CRC5(bits[:17]) != byte(readBits(bits, 17, 5)) {
		return Query{}, fmt.Errorf("%w: CRC-5 mismatch", ErrBadFrame)
	}
	return Query{
		DR:      readBits(bits, 4, 1) == 1,
		M:       uint8(readBits(bits, 5, 2)),
		TRext:   readBits(bits, 7, 1) == 1,
		Sel:     uint8(readBits(bits, 8, 2)),
		Session: Session(readBits(bits, 10, 2)),
		Target:  readBits(bits, 12, 1) == 1,
		Q:       uint8(readBits(bits, 13, 4)),
	}, nil
}

const queryRepCommandCode = 0b00 // 2-bit QueryRep command code

// EncodeQueryRep renders the 4-bit QueryRep frame (advance to the next
// slot within a session).
func EncodeQueryRep(s Session) []byte {
	bits := make([]byte, 0, 4)
	bits = appendBits(bits, queryRepCommandCode, 2)
	bits = appendBits(bits, uint(s), 2)
	return bits
}

// DecodeQueryRep parses a QueryRep frame.
func DecodeQueryRep(bits []byte) (Session, error) {
	if len(bits) != 4 || readBits(bits, 0, 2) != queryRepCommandCode {
		return 0, fmt.Errorf("%w: not a QueryRep", ErrBadFrame)
	}
	return Session(readBits(bits, 2, 2)), nil
}

const ackCommandCode = 0b01 // 2-bit ACK command code

// EncodeACK renders the 18-bit ACK frame echoing a tag's RN16.
func EncodeACK(rn16 uint16) []byte {
	bits := make([]byte, 0, 18)
	bits = appendBits(bits, ackCommandCode, 2)
	bits = appendBits(bits, uint(rn16), 16)
	return bits
}

// DecodeACK parses an ACK frame and returns the echoed RN16.
func DecodeACK(bits []byte) (uint16, error) {
	if len(bits) != 18 || readBits(bits, 0, 2) != ackCommandCode {
		return 0, fmt.Errorf("%w: not an ACK", ErrBadFrame)
	}
	return uint16(readBits(bits, 2, 16)), nil
}

// EPCReply is a tag's backscatter reply to an ACK: protocol control word
// + EPC + CRC-16.
type EPCReply struct {
	PC  uint16 // protocol control: EPC length in words, in bits 15-11
	EPC []byte // typically 12 bytes (96-bit EPC)
}

// EncodeEPCReply renders the byte-level PC+EPC+CRC16 reply.
func EncodeEPCReply(epc []byte) ([]byte, error) {
	if len(epc) == 0 || len(epc)%2 != 0 || len(epc) > 62 {
		return nil, fmt.Errorf("%w: EPC length %d must be a positive even number ≤ 62", ErrBadFrame, len(epc))
	}
	pc := uint16(len(epc)/2) << 11
	frame := make([]byte, 0, 2+len(epc)+2)
	frame = append(frame, byte(pc>>8), byte(pc))
	frame = append(frame, epc...)
	return AppendCRC16(frame), nil
}

// DecodeEPCReply parses and CRC-verifies a PC+EPC+CRC16 reply.
func DecodeEPCReply(frame []byte) (EPCReply, error) {
	if len(frame) < 4 {
		return EPCReply{}, fmt.Errorf("%w: reply too short (%d bytes)", ErrBadFrame, len(frame))
	}
	if !CheckCRC16(frame) {
		return EPCReply{}, fmt.Errorf("%w: CRC-16 mismatch", ErrBadFrame)
	}
	pc := uint16(frame[0])<<8 | uint16(frame[1])
	words := int(pc >> 11)
	epc := frame[2 : len(frame)-2]
	if len(epc) != words*2 {
		return EPCReply{}, fmt.Errorf("%w: PC says %d words, frame has %d EPC bytes", ErrBadFrame, words, len(epc))
	}
	return EPCReply{PC: pc, EPC: append([]byte(nil), epc...)}, nil
}

// appendBits appends the low n bits of v, MSB-first.
func appendBits(bits []byte, v uint, n int) []byte {
	for i := n - 1; i >= 0; i-- {
		bits = append(bits, byte((v>>uint(i))&1))
	}
	return bits
}

// readBits reads n bits MSB-first starting at off.
func readBits(bits []byte, off, n int) uint {
	var v uint
	for i := 0; i < n; i++ {
		v = v<<1 | uint(bits[off+i]&1)
	}
	return v
}

func b2u(b bool) uint {
	if b {
		return 1
	}
	return 0
}
