package epcgen2

import (
	"errors"
	"fmt"
	"math/rand"
)

// Inventory simulation: the slotted-ALOHA singulation process of Gen2.
// Each round the reader issues Query(Q); every participating tag draws a
// 16-bit RN and loads its slot counter from [0, 2^Q). Slot 0 tags
// backscatter their RN16; a clean singleton gets ACKed and replies with
// PC+EPC+CRC16; collisions and idle slots advance via QueryRep. Between
// rounds the reader adapts Q with the standard floating-point
// Q-algorithm (Gen2 Annex D): Qfp += C on collision, −C on idle.

// SlotOutcome classifies one slot of an inventory round.
type SlotOutcome int

// Slot outcomes.
const (
	SlotIdle SlotOutcome = iota
	SlotSingle
	SlotCollision
)

// String implements fmt.Stringer.
func (s SlotOutcome) String() string {
	switch s {
	case SlotIdle:
		return "idle"
	case SlotSingle:
		return "single"
	case SlotCollision:
		return "collision"
	default:
		return fmt.Sprintf("SlotOutcome(%d)", int(s))
	}
}

// TagState is a tag's inventory-relevant state.
type TagState struct {
	EPC  []byte
	slot int
	rn16 uint16
	read bool
}

// Read reports whether the tag has been singulated this inventory cycle.
func (t *TagState) Read() bool { return t.read }

// InventoryParams configures the simulator.
type InventoryParams struct {
	InitialQ  uint8   // starting Q (0-15); typical 4
	C         float64 // Q-algorithm step; Gen2 suggests 0.1 ≤ C ≤ 0.5; 0 = 0.3
	MaxRounds int     // give up after this many rounds; 0 = 64
	Rng       *rand.Rand
}

func (p InventoryParams) withDefaults() InventoryParams {
	if p.C == 0 {
		p.C = 0.3
	}
	if p.MaxRounds == 0 {
		p.MaxRounds = 64
	}
	return p
}

// Read is one successful singulation.
type Read struct {
	EPC   []byte
	Round int // inventory round index
	Slot  int // slot within the round
}

// RoundStats summarizes one inventory round.
type RoundStats struct {
	Q          uint8
	Slots      int
	Singles    int
	Collisions int
	Idles      int
}

// InventoryResult is the outcome of a full inventory cycle.
type InventoryResult struct {
	Reads  []Read
	Rounds []RoundStats
}

// ErrNoRng is returned when the params lack a randomness source.
var ErrNoRng = errors.New("epcgen2: InventoryParams.Rng must be set")

// RunInventory simulates inventory rounds until every tag has been read
// or MaxRounds is exhausted. It mirrors what the reader and tag state
// machines do on the air: Query starts a round, QueryRep walks slots,
// singletons are ACKed and verified via their EPC reply CRC.
func RunInventory(epcs [][]byte, params InventoryParams) (*InventoryResult, error) {
	params = params.withDefaults()
	if params.Rng == nil {
		return nil, ErrNoRng
	}
	if params.InitialQ > 15 {
		return nil, fmt.Errorf("epcgen2: initial Q %d out of range", params.InitialQ)
	}
	tags := make([]*TagState, len(epcs))
	for i, e := range epcs {
		tags[i] = &TagState{EPC: e}
	}
	res := &InventoryResult{}
	qfp := float64(params.InitialQ)

	remaining := len(tags)
	for round := 0; round < params.MaxRounds && remaining > 0; round++ {
		q := clampQ(qfp)
		nSlots := 1 << q
		stats := RoundStats{Q: q, Slots: nSlots}

		// Tags load slot counters; already-read tags sit out (target
		// flag flipped).
		for _, t := range tags {
			if t.read {
				t.slot = -1
				continue
			}
			t.slot = params.Rng.Intn(nSlots)
			t.rn16 = uint16(params.Rng.Intn(1 << 16))
		}
		for slot := 0; slot < nSlots; slot++ {
			var inSlot []*TagState
			for _, t := range tags {
				if t.slot == slot {
					inSlot = append(inSlot, t)
				}
			}
			switch len(inSlot) {
			case 0:
				stats.Idles++
				qfp -= params.C
			case 1:
				t := inSlot[0]
				// ACK handshake: the reader echoes the RN16; the tag
				// verifies and replies with its CRC-protected EPC.
				ack := EncodeACK(t.rn16)
				rn, err := DecodeACK(ack)
				if err != nil || rn != t.rn16 {
					stats.Collisions++ // treated as a failed slot
					continue
				}
				reply, err := EncodeEPCReply(t.EPC)
				if err != nil {
					return nil, fmt.Errorf("epcgen2: tag EPC invalid: %w", err)
				}
				dec, err := DecodeEPCReply(reply)
				if err != nil {
					return nil, err
				}
				t.read = true
				remaining--
				stats.Singles++
				res.Reads = append(res.Reads, Read{EPC: dec.EPC, Round: round, Slot: slot})
			default:
				stats.Collisions++
				qfp += params.C
			}
			if qfp < 0 {
				qfp = 0
			} else if qfp > 15 {
				qfp = 15
			}
		}
		res.Rounds = append(res.Rounds, stats)
	}
	return res, nil
}

func clampQ(qfp float64) uint8 {
	q := int(qfp + 0.5)
	if q < 0 {
		q = 0
	} else if q > 15 {
		q = 15
	}
	return uint8(q)
}

// RandomEPC draws a 96-bit (12-byte) EPC.
func RandomEPC(rng *rand.Rand) []byte {
	e := make([]byte, 12)
	for i := range e {
		e[i] = byte(rng.Intn(256))
	}
	return e
}
