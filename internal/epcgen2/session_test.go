package epcgen2

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

func sessionTags(n int, rng *rand.Rand) []*SessionTag {
	out := make([]*SessionTag, n)
	for i := range out {
		out[i] = NewSessionTag(RandomEPC(rng))
	}
	return out
}

func TestFlagPersistenceDecay(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tag := NewSessionTag(RandomEPC(rng))
	now := time.Unix(1000, 0)
	if tag.FlagOf(S2, now) != FlagA {
		t.Fatal("fresh tag not at A")
	}
	tag.Invert(S2, now)
	if tag.FlagOf(S2, now.Add(time.Second)) != FlagB {
		t.Error("S2 flag decayed within persistence")
	}
	if tag.FlagOf(S2, now.Add(time.Minute)) != FlagA {
		t.Error("S2 flag did not decay after persistence")
	}
	// S0 decays immediately.
	tag.Invert(S0, now)
	if tag.FlagOf(S0, now.Add(time.Millisecond)) != FlagA {
		t.Error("S0 flag persisted")
	}
}

func TestFlagStrings(t *testing.T) {
	if FlagA.String() != "A" || FlagB.String() != "B" {
		t.Error("flag strings")
	}
}

func TestPersistenceOrdering(t *testing.T) {
	if Persistence(S0) != 0 {
		t.Error("S0 persistence must be zero")
	}
	if Persistence(S1) >= Persistence(S2) {
		t.Error("S1 persistence must be below S2")
	}
}

func TestSelectMask(t *testing.T) {
	sel := &Select{Pointer: 2, Mask: []byte{0xAB, 0xCD}}
	if !sel.Matches([]byte{0, 0, 0xAB, 0xCD, 9}) {
		t.Error("should match")
	}
	if sel.Matches([]byte{0, 0, 0xAB, 0xCE, 9}) {
		t.Error("should not match")
	}
	if sel.Matches([]byte{0xAB, 0xCD}) {
		t.Error("mask past EPC end must not match")
	}
	neg := &Select{Pointer: -1, Mask: []byte{1}}
	if neg.Matches([]byte{1, 2}) {
		t.Error("negative pointer must not match")
	}
}

func TestSelectAssertSL(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tags := sessionTags(8, rng)
	// Mark half the population via a 1-byte mask on their first EPC byte.
	target := tags[0].EPC[0]
	sel := &Select{Target: TargetSL, Action: ActionAssert, Pointer: 0, Mask: []byte{target}}
	sel.Apply(tags, time.Unix(0, 0))
	for _, tg := range tags {
		want := tg.EPC[0] == target
		if tg.SL != want {
			t.Errorf("tag %x: SL=%v, want %v", tg.EPC[:2], tg.SL, want)
		}
	}
}

func TestSelectSessionFlags(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tags := sessionTags(4, rng)
	now := time.Unix(1000, 0)
	sel := &Select{Target: TargetS2, Action: ActionDeassert, Pointer: 0, Mask: tags[0].EPC[:1]}
	sel.Apply(tags, now)
	// Matching tag(s) got flag B; the rest A.
	for _, tg := range tags {
		want := FlagA
		if tg.EPC[0] == tags[0].EPC[0] {
			want = FlagB
		}
		if got := tg.FlagOf(S2, now); got != want {
			t.Errorf("tag %x flag %v, want %v", tg.EPC[:2], got, want)
		}
	}
}

func TestSessionInventoryPartitionsPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tags := sessionTags(15, rng)
	now := time.Unix(1000, 0)
	p := SessionInventoryParams{Session: S2, Target: FlagA, InitialQ: 4, Rng: rng, Now: now}

	res1, err := RunSessionInventory(tags, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Reads) != 15 {
		t.Fatalf("cycle 1 read %d of 15", len(res1.Reads))
	}
	// Immediately re-running the same Target-A cycle reads nothing: all
	// flags are now B.
	res2, err := RunSessionInventory(tags, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Reads) != 0 {
		t.Errorf("cycle 2 read %d tags, want 0 (flags at B)", len(res2.Reads))
	}
	// Target B reads them all again and flips them back.
	pB := p
	pB.Target = FlagB
	res3, err := RunSessionInventory(tags, pB)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Reads) != 15 {
		t.Errorf("cycle 3 read %d, want 15", len(res3.Reads))
	}
	// After persistence lapses, Target A works again.
	pLate := p
	pLate.Now = now.Add(time.Minute)
	res4, err := RunSessionInventory(tags, pLate)
	if err != nil {
		t.Fatal(err)
	}
	if len(res4.Reads) != 15 {
		t.Errorf("cycle 4 read %d after decay, want 15", len(res4.Reads))
	}
}

func TestSessionInventorySelFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tags := sessionTags(10, rng)
	now := time.Unix(1000, 0)
	// Assert SL on tags whose first byte matches tag 0's.
	sel := &Select{Target: TargetSL, Action: ActionAssert, Pointer: 0, Mask: tags[0].EPC[:1]}
	sel.Apply(tags, now)
	slCount := 0
	for _, tg := range tags {
		if tg.SL {
			slCount++
		}
	}
	res, err := RunSessionInventory(tags, SessionInventoryParams{
		Session: S1, Target: FlagA, SelFilter: 1, InitialQ: 3, Rng: rng, Now: now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reads) != slCount {
		t.Errorf("SL-filtered inventory read %d, want %d", len(res.Reads), slCount)
	}
}

func TestSessionInventoryValidation(t *testing.T) {
	if _, err := RunSessionInventory(nil, SessionInventoryParams{}); !errors.Is(err, ErrNoSessionRng) {
		t.Errorf("nil rng: %v", err)
	}
	rng := rand.New(rand.NewSource(6))
	if _, err := RunSessionInventory(nil, SessionInventoryParams{InitialQ: 16, Rng: rng}); err == nil {
		t.Error("Q out of range must error")
	}
}
