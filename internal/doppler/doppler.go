// Package doppler implements the walking-speed estimation the paper's
// Section 8 sketches: "Doppler shift can be applied to estimate the
// target's walking speed to further improve the location accuracy."
//
// A moving body weakly re-scatters a tag's backscatter toward the
// array. Over a burst of coherent snapshots the scatter path's length
// changes at dL/dt = v·(û₁+û₂) — the bistatic range rate — rotating its
// phase at the Doppler frequency f_d = (dL/dt)/λ. Beamforming the burst
// toward the target's direction isolates the scatter component; the
// dominant discrete-frequency of that time series gives f_d, and
//
//	v ≥ |f_d|·λ / 2
//
// lower-bounds the speed (equality when the motion is radial along both
// legs; the bound is what a single array can claim without knowing the
// motion direction).
package doppler

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"dwatch/internal/cmatrix"
	"dwatch/internal/geom"
	"dwatch/internal/rf"
)

// ErrBadInput is returned for malformed inputs.
var ErrBadInput = errors.New("doppler: bad input")

// Estimate is a Doppler measurement.
type Estimate struct {
	ShiftHz    float64 // signed dominant Doppler shift
	SpeedLBMps float64 // bistatic lower bound on the target speed, m/s
	Power      float64 // spectral power at the dominant shift
}

// Beamform aligns and sums the per-antenna samples of each snapshot
// toward direction theta (the P-MUSIC alignment of Eq. 13, kept complex
// instead of squared), returning the time series y(n).
func Beamform(x *cmatrix.Matrix, arr *rf.Array, theta float64) ([]complex128, error) {
	if x.Cols != arr.Elements {
		return nil, fmt.Errorf("%w: %d columns for %d-element array", ErrBadInput, x.Cols, arr.Elements)
	}
	if x.Rows == 0 {
		return nil, fmt.Errorf("%w: no snapshots", ErrBadInput)
	}
	m := arr.Elements
	w := make([]complex128, m)
	for mi := 0; mi < m; mi++ {
		w[mi] = cmplx.Exp(complex(0, arr.Omega(mi, theta)))
	}
	out := make([]complex128, x.Rows)
	for n := 0; n < x.Rows; n++ {
		var s complex128
		row := x.Data[n*m : (n+1)*m]
		for mi, v := range row {
			s += v * w[mi]
		}
		out[n] = s / complex(float64(m), 0)
	}
	return out, nil
}

// Spectrum computes the DFT power spectrum of a complex time series at
// nBins frequencies spanning (−fs/2, +fs/2). The series mean (the
// static-path DC component) is removed first so the Doppler line is not
// buried under the unmodulated multipath.
func Spectrum(y []complex128, fs float64, nBins int) (freqs []float64, power []float64, err error) {
	if len(y) < 4 {
		return nil, nil, fmt.Errorf("%w: %d samples", ErrBadInput, len(y))
	}
	if fs <= 0 || nBins < 2 {
		return nil, nil, fmt.Errorf("%w: fs=%v bins=%d", ErrBadInput, fs, nBins)
	}
	// Remove DC (static paths do not rotate).
	var mean complex128
	for _, v := range y {
		mean += v
	}
	mean /= complex(float64(len(y)), 0)
	freqs = make([]float64, nBins)
	power = make([]float64, nBins)
	n := float64(len(y))
	for b := 0; b < nBins; b++ {
		f := -fs/2 + fs*float64(b)/float64(nBins-1)
		freqs[b] = f
		var acc complex128
		for i, v := range y {
			ph := -2 * math.Pi * f * float64(i) / fs
			acc += (v - mean) * cmplx.Exp(complex(0, ph))
		}
		power[b] = (real(acc)*real(acc) + imag(acc)*imag(acc)) / (n * n)
	}
	return freqs, power, nil
}

// EstimateShift measures the dominant Doppler shift of a coherent
// snapshot burst beamformed toward theta, using the pulse-pair
// (lag-one autocorrelation) phase-slope estimator classic in Doppler
// radar: f = arg(Σ y*(n)·y(n+1)) / (2π·Δt) on the DC-removed series.
// Unlike a DFT peak its resolution is not limited to 1/T, so short
// bursts still resolve sub-Hz walking-speed shifts. interval is the
// snapshot spacing in seconds; the unambiguous band is ±1/(2·interval).
func EstimateShift(x *cmatrix.Matrix, arr *rf.Array, theta, interval float64) (Estimate, error) {
	if interval <= 0 {
		return Estimate{}, fmt.Errorf("%w: interval %v", ErrBadInput, interval)
	}
	y, err := Beamform(x, arr, theta)
	if err != nil {
		return Estimate{}, err
	}
	if len(y) < 4 {
		return Estimate{}, fmt.Errorf("%w: %d snapshots", ErrBadInput, len(y))
	}
	// Remove DC: static paths do not rotate and would bias the slope.
	var mean complex128
	for _, v := range y {
		mean += v
	}
	mean /= complex(float64(len(y)), 0)
	var acc complex128
	var pow float64
	for n := 0; n+1 < len(y); n++ {
		a := y[n] - mean
		b := y[n+1] - mean
		acc += cmplx.Conj(a) * b
		pow += real(a)*real(a) + imag(a)*imag(a)
	}
	fd := cmplx.Phase(acc) / (2 * math.Pi * interval)
	return Estimate{
		ShiftHz:    fd,
		SpeedLBMps: math.Abs(fd) * arr.Lambda / 2,
		Power:      pow / float64(len(y)-1),
	}, nil
}

// BistaticRate returns the expected dL/dt for a scatterer at pos moving
// with velocity vel, between a tag at tagPos and the array centre — the
// ground-truth counterpart of EstimateShift for tests and calibration:
// f_d = −BistaticRate/λ.
func BistaticRate(tagPos, pos, vel, arrCenter geom.Point) float64 {
	u1 := pos.Sub(tagPos).Unit()
	u2 := pos.Sub(arrCenter).Unit()
	return vel.Dot(u1.Add(u2))
}
