package doppler

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"dwatch/internal/channel"
	"dwatch/internal/cmatrix"
	"dwatch/internal/geom"
	"dwatch/internal/rf"
)

func dopplerArray(t testing.TB) *rf.Array {
	t.Helper()
	a, err := rf.NewArray(geom.Pt(0, 0, 1.25), geom.Pt2(1, 0), 8)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBeamformIsolatesDirection(t *testing.T) {
	arr := dopplerArray(t)
	theta := rf.Rad(70)
	st := arr.Steering(theta)
	x := cmatrix.New(4, 8)
	for n := 0; n < 4; n++ {
		for m := 0; m < 8; m++ {
			x.Set(n, m, st[m]*complex(2, 0))
		}
	}
	y, err := Beamform(x, arr, theta)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range y {
		if math.Abs(cmplx.Abs(v)-2) > 1e-9 {
			t.Fatalf("aligned beamform magnitude = %v, want 2", cmplx.Abs(v))
		}
	}
	// Away from the source, the output is much smaller.
	off, err := Beamform(x, arr, theta+0.6)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(off[0]) > 0.8 {
		t.Errorf("off-direction beamform = %v", cmplx.Abs(off[0]))
	}
}

func TestBeamformValidation(t *testing.T) {
	arr := dopplerArray(t)
	if _, err := Beamform(cmatrix.New(3, 4), arr, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("wrong cols: %v", err)
	}
	if _, err := Beamform(cmatrix.New(0, 8), arr, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("no rows: %v", err)
	}
}

func TestSpectrumFindsTone(t *testing.T) {
	const fs, f0 = 100.0, 12.0
	y := make([]complex128, 64)
	for i := range y {
		// DC offset + rotating tone: the DC must be removed.
		y[i] = 5 + cmplx.Exp(complex(0, 2*math.Pi*f0*float64(i)/fs))
	}
	freqs, power, err := Spectrum(y, fs, 512)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := range power {
		if power[i] > power[best] {
			best = i
		}
	}
	if math.Abs(freqs[best]-f0) > fs/64 {
		t.Errorf("tone found at %.2f Hz, want %.2f", freqs[best], f0)
	}
}

func TestSpectrumValidation(t *testing.T) {
	if _, _, err := Spectrum(make([]complex128, 2), 10, 64); !errors.Is(err, ErrBadInput) {
		t.Errorf("short: %v", err)
	}
	if _, _, err := Spectrum(make([]complex128, 16), 0, 64); !errors.Is(err, ErrBadInput) {
		t.Errorf("fs=0: %v", err)
	}
	if _, _, err := Spectrum(make([]complex128, 16), 10, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("bins=1: %v", err)
	}
}

// End-to-end: a walking scatterer's Doppler shift matches the bistatic
// ground truth, scales with speed, and the derived speed bound is below
// the true speed. The walker moves along the bistatic bisector (maximal
// range rate) well clear of the direct tag-array path, so the scatter
// tone is not contaminated by blocking amplitude modulation.
func TestEstimateShiftMovingTarget(t *testing.T) {
	arr := dopplerArray(t)
	env := channel.NewEnv(nil)
	tagPos := geom.Pt(3, 6, 1.25)
	start := geom.Pt(2.0, 1.5, 1.25)
	const interval = 0.01 // 10 ms coherent burst spacing

	var prevAbs float64
	for _, speed := range []float64{0.5, 1.0, 1.5} {
		u1 := start.Sub(tagPos).Unit()
		u2 := start.Sub(arr.Center()).Unit()
		vel := u1.Add(u2).Unit().Scale(-speed)
		mt := channel.MovingTarget{
			Target:       channel.HumanTarget(start),
			Vel:          vel,
			ScatterCoeff: 0.25,
		}
		rng := rand.New(rand.NewSource(3))
		x, err := env.SynthesizeMoving(tagPos, arr, []channel.MovingTarget{mt}, interval, channel.SynthOpts{
			Snapshots: 32, NoiseStd: 1e-4, Rng: rng,
		})
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimateShift(x, arr, arr.AngleTo(start), interval)
		if err != nil {
			t.Fatal(err)
		}
		wantFd := -BistaticRate(tagPos, start, vel, arr.Center()) / arr.Lambda
		if math.Abs(est.ShiftHz-wantFd) > 0.3+0.1*wantFd {
			t.Errorf("v=%.1f: doppler = %.2f Hz, want %.2f", speed, est.ShiftHz, wantFd)
		}
		if est.SpeedLBMps > speed+0.1 {
			t.Errorf("v=%.1f: speed bound %.2f exceeds true speed", speed, est.SpeedLBMps)
		}
		if math.Abs(est.ShiftHz) <= prevAbs {
			t.Errorf("v=%.1f: shift %.2f did not grow from %.2f", speed, math.Abs(est.ShiftHz), prevAbs)
		}
		prevAbs = math.Abs(est.ShiftHz)
	}
}

// A static scene has no dominant nonzero Doppler line: after DC
// removal, the residual spectrum is noise-flat and weak.
func TestEstimateShiftStaticScene(t *testing.T) {
	arr := dopplerArray(t)
	env := channel.NewEnv(nil)
	tagPos := geom.Pt(3, 6, 1.25)
	rng := rand.New(rand.NewSource(4))
	x, err := env.SynthesizeMoving(tagPos, arr, nil, 0.01, channel.SynthOpts{
		Snapshots: 64, NoiseStd: 1e-4, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateShift(x, arr, arr.AngleTo(tagPos), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the moving case: static spectral peak power must
	// be orders of magnitude below a scatterer's Doppler line.
	mt := channel.MovingTarget{Target: channel.HumanTarget(geom.Pt(2.0, 1.5, 1.25)), Vel: geom.Pt(1, 0, 0), ScatterCoeff: 0.25}
	xm, err := env.SynthesizeMoving(tagPos, arr, []channel.MovingTarget{mt}, 0.01, channel.SynthOpts{
		Snapshots: 64, NoiseStd: 1e-4, Rng: rand.New(rand.NewSource(5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	estM, err := EstimateShift(xm, arr, arr.AngleTo(geom.Pt(2.0, 1.5, 1.25)), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if est.Power > estM.Power/10 {
		t.Errorf("static peak power %v not ≪ moving %v", est.Power, estM.Power)
	}
}

func TestEstimateShiftValidation(t *testing.T) {
	arr := dopplerArray(t)
	if _, err := EstimateShift(cmatrix.New(8, 8), arr, 1, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("interval=0: %v", err)
	}
}

func TestSynthesizeMovingValidation(t *testing.T) {
	arr := dopplerArray(t)
	env := channel.NewEnv(nil)
	rng := rand.New(rand.NewSource(6))
	if _, err := env.SynthesizeMoving(geom.Pt(1, 3, 1.25), arr, nil, 0, channel.SynthOpts{Snapshots: 4, Rng: rng}); err == nil {
		t.Error("zero interval must error")
	}
	if _, err := env.SynthesizeMoving(geom.Pt(1, 3, 1.25), arr, nil, 0.01, channel.SynthOpts{Snapshots: 0, Rng: rng}); err == nil {
		t.Error("zero snapshots must error")
	}
}
