// Package geom provides the small amount of 3-D vector geometry D-Watch
// needs: points, segments, specular reflection by the image method, and
// point-to-segment distances used by the path-blocking model.
//
// Coordinates are metres in a right-handed frame with z up. Rooms are
// axis-aligned boxes in the x-y plane; reflectors are vertical planar
// facets described by a 2-D wall segment plus a height range.
package geom

import (
	"fmt"
	"math"
)

// Point is a location or free vector in 3-D space.
type Point struct {
	X, Y, Z float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y, z float64) Point { return Point{x, y, z} }

// Pt2 constructs a Point in the z=0 plane.
func Pt2(x, y float64) Point { return Point{x, y, 0} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y, p.Z + q.Z} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y, p.Z - q.Z} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s, p.Z * s} }

// Dot returns the dot product p · q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y + p.Z*q.Z }

// Cross returns the cross product p × q.
func (p Point) Cross(q Point) Point {
	return Point{
		p.Y*q.Z - p.Z*q.Y,
		p.Z*q.X - p.X*q.Z,
		p.X*q.Y - p.Y*q.X,
	}
}

// Norm returns the Euclidean length of p.
func (p Point) Norm() float64 { return math.Sqrt(p.Dot(p)) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Dist2D returns the distance between p and q projected onto the x-y plane.
func (p Point) Dist2D(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Unit returns p normalized to length 1. The zero vector is returned
// unchanged.
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		return p
	}
	return p.Scale(1 / n)
}

// Lerp returns the point (1-t)·p + t·q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{
		p.X + (q.X-p.X)*t,
		p.Y + (q.Y-p.Y)*t,
		p.Z + (q.Z-p.Z)*t,
	}
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.3f, %.3f, %.3f)", p.X, p.Y, p.Z)
}

// ApproxEq reports whether p and q agree within tol in every coordinate.
func (p Point) ApproxEq(q Point, tol float64) bool {
	return math.Abs(p.X-q.X) <= tol && math.Abs(p.Y-q.Y) <= tol && math.Abs(p.Z-q.Z) <= tol
}

// Segment is the directed line segment from A to B.
type Segment struct {
	A, B Point
}

// Seg is shorthand for constructing a Segment.
func Seg(a, b Point) Segment { return Segment{a, b} }

// Len returns the length of the segment.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// At returns the point A + t·(B−A). t is not clamped.
func (s Segment) At(t float64) Point { return s.A.Lerp(s.B, t) }

// Midpoint returns the midpoint of the segment.
func (s Segment) Midpoint() Point { return s.At(0.5) }

// ClosestParam returns the parameter t ∈ [0,1] of the point on the segment
// closest to p.
func (s Segment) ClosestParam(p Point) float64 {
	d := s.B.Sub(s.A)
	den := d.Dot(d)
	if den == 0 {
		return 0
	}
	t := p.Sub(s.A).Dot(d) / den
	return clamp(t, 0, 1)
}

// DistToPoint returns the minimum distance from p to the segment.
func (s Segment) DistToPoint(p Point) float64 {
	return p.Dist(s.At(s.ClosestParam(p)))
}

// DistToPoint2D returns the minimum distance, projected onto the x-y
// plane, from p to the segment. This models a vertical-cylinder obstacle
// (a standing person) intersecting a propagation path.
func (s Segment) DistToPoint2D(p Point) float64 {
	a := Point{s.A.X, s.A.Y, 0}
	b := Point{s.B.X, s.B.Y, 0}
	q := Point{p.X, p.Y, 0}
	return Segment{a, b}.DistToPoint(q)
}

// Wall is a vertical planar reflector facet: a 2-D segment in the x-y
// plane extruded from ZMin to ZMax. Book shelves, metal cabinets and
// laptop lids are modelled as Walls.
type Wall struct {
	Foot       Segment // endpoints' Z values are ignored
	ZMin, ZMax float64
}

// NewWall builds a vertical wall over the 2-D footprint from (x1,y1) to
// (x2,y2) spanning heights [zmin, zmax].
func NewWall(x1, y1, x2, y2, zmin, zmax float64) Wall {
	return Wall{Foot: Seg(Pt2(x1, y1), Pt2(x2, y2)), ZMin: zmin, ZMax: zmax}
}

// normal2D returns the unit normal of the wall's footprint line in the
// x-y plane.
func (w Wall) normal2D() Point {
	d := w.Foot.B.Sub(w.Foot.A)
	n := Point{-d.Y, d.X, 0}
	return n.Unit()
}

// Mirror returns the image of p reflected across the wall's (infinite)
// vertical plane. Used by the image method to enumerate first-order
// specular reflection paths.
func (w Wall) Mirror(p Point) Point {
	n := w.normal2D()
	// Signed distance from p to the plane through Foot.A with normal n.
	d := p.Sub(Pt(w.Foot.A.X, w.Foot.A.Y, p.Z)).Dot(n)
	return p.Sub(n.Scale(2 * d))
}

// ReflectionPoint computes where the specular path from src to dst via
// the wall hits the wall. It returns the hit point and true when the hit
// lies within the wall's finite footprint and height range and both
// endpoints are on the same side of the wall plane; otherwise ok=false.
func (w Wall) ReflectionPoint(src, dst Point) (hit Point, ok bool) {
	n := w.normal2D()
	a := Pt(w.Foot.A.X, w.Foot.A.Y, 0)
	ds := src.Sub(Pt(a.X, a.Y, src.Z)).Dot(n)
	dd := dst.Sub(Pt(a.X, a.Y, dst.Z)).Dot(n)
	if ds*dd <= 0 || ds == 0 {
		// Endpoints straddle or touch the plane: no specular bounce.
		return Point{}, false
	}
	img := w.Mirror(src)
	// Intersect segment img->dst with the wall plane.
	dir := dst.Sub(img)
	den := dir.Dot(n)
	if den == 0 {
		return Point{}, false
	}
	di := img.Sub(Pt(a.X, a.Y, img.Z)).Dot(n)
	t := -di / den
	if t <= 0 || t >= 1 {
		return Point{}, false
	}
	hit = img.Add(dir.Scale(t))
	// Check the hit is within the finite facet.
	foot2 := Segment{Pt2(w.Foot.A.X, w.Foot.A.Y), Pt2(w.Foot.B.X, w.Foot.B.Y)}
	u := foot2.ClosestParam(Pt2(hit.X, hit.Y))
	onFoot := foot2.At(u)
	if onFoot.Dist2D(hit) > 1e-9 {
		return Point{}, false
	}
	if u <= 0 || u >= 1 {
		return Point{}, false
	}
	if hit.Z < w.ZMin || hit.Z > w.ZMax {
		return Point{}, false
	}
	return hit, true
}

// Polyline is an ordered list of points, used for ground-truth
// trajectories (e.g. the fist-writing glyphs).
type Polyline []Point

// Length returns the total arc length of the polyline.
func (pl Polyline) Length() float64 {
	var sum float64
	for i := 1; i < len(pl); i++ {
		sum += pl[i].Dist(pl[i-1])
	}
	return sum
}

// PointAt returns the point at arc-length distance s from the start,
// clamped to the ends.
func (pl Polyline) PointAt(s float64) Point {
	if len(pl) == 0 {
		return Point{}
	}
	if s <= 0 {
		return pl[0]
	}
	for i := 1; i < len(pl); i++ {
		l := pl[i].Dist(pl[i-1])
		if s <= l {
			if l == 0 {
				return pl[i]
			}
			return pl[i-1].Lerp(pl[i], s/l)
		}
		s -= l
	}
	return pl[len(pl)-1]
}

// Resample returns n points spaced uniformly by arc length along the
// polyline, including both endpoints.
func (pl Polyline) Resample(n int) Polyline {
	if n <= 0 || len(pl) == 0 {
		return nil
	}
	out := make(Polyline, n)
	if n == 1 {
		out[0] = pl[0]
		return out
	}
	total := pl.Length()
	for i := 0; i < n; i++ {
		out[i] = pl.PointAt(total * float64(i) / float64(n-1))
	}
	return out
}

// MinDistToPoint returns the minimum distance from p to any segment of
// the polyline.
func (pl Polyline) MinDistToPoint(p Point) float64 {
	if len(pl) == 0 {
		return math.Inf(1)
	}
	if len(pl) == 1 {
		return pl[0].Dist(p)
	}
	best := math.Inf(1)
	for i := 1; i < len(pl); i++ {
		if d := Seg(pl[i-1], pl[i]).DistToPoint(p); d < best {
			best = d
		}
	}
	return best
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// AngleFrom returns the planar angle θ ∈ [0, π] between the direction
// from 'from' to 'to' and the unit axis 'axis', all projected onto the
// x-y plane. This is the AoA convention of the paper's Eq. 1-2: θ is
// measured from the array axis, broadside is π/2.
func AngleFrom(from, to, axis Point) float64 {
	d := Point{to.X - from.X, to.Y - from.Y, 0}
	a := Point{axis.X, axis.Y, 0}.Unit()
	dn := d.Norm()
	if dn == 0 {
		return math.Pi / 2
	}
	c := d.Dot(a) / dn
	return math.Acos(clamp(c, -1, 1))
}
