package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2, 3)
	q := Pt(4, -1, 0.5)
	if got := p.Add(q); got != Pt(5, 1, 3.5) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-3, 3, 2.5) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 1*4+2*-1+3*0.5 {
		t.Errorf("Dot = %v", got)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	p := Pt(1, 2, 3)
	q := Pt(-2, 0.5, 4)
	c := p.Cross(q)
	if !almostEq(c.Dot(p), 0, 1e-12) || !almostEq(c.Dot(q), 0, 1e-12) {
		t.Errorf("cross product not orthogonal: %v", c)
	}
}

func TestNormDist(t *testing.T) {
	if !almostEq(Pt(3, 4, 0).Norm(), 5, 1e-12) {
		t.Error("Norm(3,4,0) != 5")
	}
	if !almostEq(Pt(0, 0, 0).Dist(Pt(1, 1, 1)), math.Sqrt(3), 1e-12) {
		t.Error("Dist wrong")
	}
	if !almostEq(Pt(0, 0, 5).Dist2D(Pt(3, 4, -7)), 5, 1e-12) {
		t.Error("Dist2D must ignore z")
	}
}

func TestUnit(t *testing.T) {
	u := Pt(0, 3, 4).Unit()
	if !almostEq(u.Norm(), 1, 1e-12) {
		t.Errorf("Unit norm = %v", u.Norm())
	}
	z := Pt(0, 0, 0).Unit()
	if z != Pt(0, 0, 0) {
		t.Errorf("Unit of zero = %v", z)
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0, 0), Pt(2, 4, 6)
	if got := a.Lerp(b, 0.5); got != Pt(1, 2, 3) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp t=0 = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp t=1 = %v", got)
	}
}

func TestSegmentClosest(t *testing.T) {
	s := Seg(Pt2(0, 0), Pt2(10, 0))
	cases := []struct {
		p    Point
		t    float64
		dist float64
	}{
		{Pt2(5, 3), 0.5, 3},
		{Pt2(-2, 0), 0, 2},
		{Pt2(14, 3), 1, 5},
		{Pt2(0, 0), 0, 0},
	}
	for _, c := range cases {
		if got := s.ClosestParam(c.p); !almostEq(got, c.t, 1e-12) {
			t.Errorf("ClosestParam(%v) = %v, want %v", c.p, got, c.t)
		}
		if got := s.DistToPoint(c.p); !almostEq(got, c.dist, 1e-12) {
			t.Errorf("DistToPoint(%v) = %v, want %v", c.p, got, c.dist)
		}
	}
}

func TestSegmentDegenerate(t *testing.T) {
	s := Seg(Pt(1, 1, 1), Pt(1, 1, 1))
	if got := s.DistToPoint(Pt(1, 2, 1)); !almostEq(got, 1, 1e-12) {
		t.Errorf("degenerate segment dist = %v", got)
	}
	if s.Len() != 0 {
		t.Error("degenerate segment length != 0")
	}
}

func TestDistToPoint2DIgnoresHeight(t *testing.T) {
	// Path climbs in z; the 2-D (cylinder) distance must ignore z entirely.
	s := Seg(Pt(0, 0, 0), Pt(10, 0, 5))
	if got := s.DistToPoint2D(Pt(5, 2, 100)); !almostEq(got, 2, 1e-12) {
		t.Errorf("DistToPoint2D = %v, want 2", got)
	}
}

func TestWallMirror(t *testing.T) {
	// Wall along the y axis at x=2: mirror of (0,1) is (4,1).
	w := NewWall(2, -5, 2, 5, 0, 3)
	m := w.Mirror(Pt(0, 1, 1.5))
	if !m.ApproxEq(Pt(4, 1, 1.5), 1e-9) {
		t.Errorf("Mirror = %v, want (4,1,1.5)", m)
	}
	// Mirroring twice is the identity.
	if mm := w.Mirror(m); !mm.ApproxEq(Pt(0, 1, 1.5), 1e-9) {
		t.Errorf("double Mirror = %v", mm)
	}
}

func TestWallReflectionPoint(t *testing.T) {
	w := NewWall(0, -5, 0, 5, 0, 3) // wall in the y-z plane at x=0
	src := Pt(3, -2, 1)
	dst := Pt(3, 2, 1)
	hit, ok := w.ReflectionPoint(src, dst)
	if !ok {
		t.Fatal("expected a reflection point")
	}
	// By symmetry the bounce is at y=0, x=0.
	if !hit.ApproxEq(Pt(0, 0, 1), 1e-9) {
		t.Errorf("hit = %v, want (0,0,1)", hit)
	}
	// Specular law: incoming and outgoing path lengths via the image are equal
	// to the direct image distance.
	img := w.Mirror(src)
	want := img.Dist(dst)
	got := src.Dist(hit) + hit.Dist(dst)
	if !almostEq(got, want, 1e-9) {
		t.Errorf("path length = %v, want image distance %v", got, want)
	}
}

func TestWallReflectionRejectsOppositeSides(t *testing.T) {
	w := NewWall(0, -5, 0, 5, 0, 3)
	if _, ok := w.ReflectionPoint(Pt(-3, 0, 1), Pt(3, 0, 1)); ok {
		t.Error("reflection must be rejected when endpoints straddle the wall")
	}
}

func TestWallReflectionRejectsOutsideFootprint(t *testing.T) {
	w := NewWall(0, -1, 0, 1, 0, 3) // short wall
	// Specular point would be at y=5, outside [-1, 1].
	if _, ok := w.ReflectionPoint(Pt(3, 4, 1), Pt(3, 6, 1)); ok {
		t.Error("reflection must be rejected outside wall footprint")
	}
}

func TestWallReflectionRejectsAboveHeight(t *testing.T) {
	w := NewWall(0, -5, 0, 5, 0, 1) // low wall
	if _, ok := w.ReflectionPoint(Pt(3, -2, 2.5), Pt(3, 2, 2.5)); ok {
		t.Error("reflection must be rejected above wall height")
	}
}

func TestPolylineLengthAndAt(t *testing.T) {
	pl := Polyline{Pt2(0, 0), Pt2(3, 0), Pt2(3, 4)}
	if !almostEq(pl.Length(), 7, 1e-12) {
		t.Errorf("Length = %v", pl.Length())
	}
	if got := pl.PointAt(3); !got.ApproxEq(Pt2(3, 0), 1e-12) {
		t.Errorf("PointAt(3) = %v", got)
	}
	if got := pl.PointAt(5); !got.ApproxEq(Pt2(3, 2), 1e-12) {
		t.Errorf("PointAt(5) = %v", got)
	}
	if got := pl.PointAt(-1); got != pl[0] {
		t.Errorf("PointAt(-1) = %v", got)
	}
	if got := pl.PointAt(100); got != pl[2] {
		t.Errorf("PointAt(100) = %v", got)
	}
}

func TestPolylineResample(t *testing.T) {
	pl := Polyline{Pt2(0, 0), Pt2(10, 0)}
	r := pl.Resample(5)
	if len(r) != 5 {
		t.Fatalf("Resample len = %d", len(r))
	}
	for i, p := range r {
		want := 10 * float64(i) / 4
		if !almostEq(p.X, want, 1e-12) {
			t.Errorf("Resample[%d].X = %v, want %v", i, p.X, want)
		}
	}
	if got := pl.Resample(1); len(got) != 1 || got[0] != pl[0] {
		t.Errorf("Resample(1) = %v", got)
	}
	if got := pl.Resample(0); got != nil {
		t.Errorf("Resample(0) = %v", got)
	}
}

func TestPolylineMinDist(t *testing.T) {
	pl := Polyline{Pt2(0, 0), Pt2(10, 0), Pt2(10, 10)}
	if got := pl.MinDistToPoint(Pt2(5, 2)); !almostEq(got, 2, 1e-12) {
		t.Errorf("MinDistToPoint = %v", got)
	}
	if got := pl.MinDistToPoint(Pt2(12, 5)); !almostEq(got, 2, 1e-12) {
		t.Errorf("MinDistToPoint = %v", got)
	}
	one := Polyline{Pt2(1, 1)}
	if got := one.MinDistToPoint(Pt2(1, 3)); !almostEq(got, 2, 1e-12) {
		t.Errorf("single-point MinDist = %v", got)
	}
}

func TestAngleFrom(t *testing.T) {
	axis := Pt2(1, 0)
	cases := []struct {
		to   Point
		want float64
	}{
		{Pt2(5, 0), 0},
		{Pt2(0, 5), math.Pi / 2},
		{Pt2(-5, 0), math.Pi},
		{Pt2(5, 5), math.Pi / 4},
	}
	for _, c := range cases {
		if got := AngleFrom(Pt2(0, 0), c.to, axis); !almostEq(got, c.want, 1e-12) {
			t.Errorf("AngleFrom(->%v) = %v, want %v", c.to, got, c.want)
		}
	}
	// Degenerate: to == from returns broadside.
	if got := AngleFrom(Pt2(1, 1), Pt2(1, 1), axis); !almostEq(got, math.Pi/2, 1e-12) {
		t.Errorf("degenerate AngleFrom = %v", got)
	}
}

// Property: mirroring across any wall is an involution and preserves
// distance to the wall plane.
func TestMirrorInvolutionProperty(t *testing.T) {
	f := func(x1, y1, x2, y2, px, py, pz float64) bool {
		x1, y1 = math.Mod(x1, 50), math.Mod(y1, 50)
		x2, y2 = math.Mod(x2, 50), math.Mod(y2, 50)
		if math.Hypot(x2-x1, y2-y1) < 1e-6 {
			return true // degenerate wall, skip
		}
		w := NewWall(x1, y1, x2, y2, 0, 3)
		p := Pt(math.Mod(px, 50), math.Mod(py, 50), math.Mod(pz, 3))
		return w.Mirror(w.Mirror(p)).ApproxEq(p, 1e-6)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: ClosestParam always yields the true minimum over a dense
// sampling of the segment.
func TestClosestParamIsMinimumProperty(t *testing.T) {
	f := func(ax, ay, bx, by, px, py float64) bool {
		s := Seg(Pt2(math.Mod(ax, 20), math.Mod(ay, 20)), Pt2(math.Mod(bx, 20), math.Mod(by, 20)))
		p := Pt2(math.Mod(px, 20), math.Mod(py, 20))
		d := s.DistToPoint(p)
		for t := 0.0; t <= 1.0; t += 0.01 {
			if p.Dist(s.At(t)) < d-1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPolylineEmpty(t *testing.T) {
	var pl Polyline
	if pl.Length() != 0 {
		t.Error("empty polyline length != 0")
	}
	if got := pl.PointAt(1); got != (Point{}) {
		t.Errorf("empty PointAt = %v", got)
	}
	if !math.IsInf(pl.MinDistToPoint(Pt2(0, 0)), 1) {
		t.Error("empty MinDistToPoint should be +Inf")
	}
}
