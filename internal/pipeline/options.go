package pipeline

import (
	"log/slog"
	"time"

	"dwatch/internal/dwatch"
	"dwatch/internal/health"
	"dwatch/internal/loc"
	"dwatch/internal/obs"
	"dwatch/internal/pmusic"
	"dwatch/internal/rf"
	"dwatch/internal/tracing"
)

// Deployment is the required deployment knowledge a pipeline cannot
// run without: which readers exist (and their array geometries) and
// where to search. Everything else is an Option.
type Deployment struct {
	// Arrays maps reader IDs to their array geometries. Reports from
	// readers not listed here are rejected.
	Arrays map[string]*rf.Array
	// Grid is the localization search area.
	Grid loc.Grid
}

// Option configures a Pipeline at construction.
type Option func(*Config)

// WithWorkers sizes the spectrum worker pool (0 = GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithQueueSize bounds the snapshot job queue (0 = 256).
func WithQueueSize(n int) Option { return func(c *Config) { c.QueueSize = n } }

// WithOverload selects the full-queue policy.
func WithOverload(p OverloadPolicy) Option { return func(c *Config) { c.Overload = p } }

// WithAssemblerShards sizes the sharded fusion stage: sequences are
// distributed seq%N across N shard goroutines so independent
// sequences fuse in parallel (0 = GOMAXPROCS, 1 = serialized fusion).
func WithAssemblerShards(n int) Option { return func(c *Config) { c.AssemblerShards = n } }

// WithExpectReaders overrides how many distinct readers must report a
// sequence before it is fused (0 = all deployed readers).
func WithExpectReaders(n int) Option { return func(c *Config) { c.ExpectReaders = n } }

// WithBaselineRounds sets how many initial reports per reader feed the
// baseline (0 = 2).
func WithBaselineRounds(n int) Option { return func(c *Config) { c.BaselineRounds = n } }

// WithRestored supplies a fuser with a previously saved baseline; all
// readers then start directly in the online phase.
func WithRestored(f *dwatch.Fuser) Option { return func(c *Config) { c.Restored = f } }

// WithSeqTTL evicts incomplete sequences older than this (0 = 30 s).
func WithSeqTTL(d time.Duration) Option { return func(c *Config) { c.SeqTTL = d } }

// WithMaxPendingSeqs caps concurrently-assembling sequences (0 = 1024).
func WithMaxPendingSeqs(n int) Option { return func(c *Config) { c.MaxPendingSeqs = n } }

// WithFuser tunes the evidence fuser.
func WithFuser(cfg dwatch.Config) Option { return func(c *Config) { c.Fuser = cfg } }

// WithPMusic tunes the spectrum computation.
func WithPMusic(o pmusic.Options) Option { return func(c *Config) { c.PMusic = o } }

// WithLoc tunes the localizer.
func WithLoc(o loc.Options) Option { return func(c *Config) { c.Loc = o } }

// WithOnBaseline registers the per-reader baseline-confirmed callback
// (invoked on the assembler goroutine).
func WithOnBaseline(fn func(readerID string, tags int)) Option {
	return func(c *Config) { c.OnBaseline = fn }
}

// WithObs attaches the pipeline to a metrics registry.
func WithObs(reg *obs.Registry) Option { return func(c *Config) { c.Obs = reg } }

// WithTracer attaches a per-sequence tracer: trace IDs are minted at
// ingest, every stage records spans, and emitted Fixes carry the ID.
func WithTracer(tr *tracing.Tracer) Option { return func(c *Config) { c.Tracer = tr } }

// WithHealth attaches the RF-health monitor; every applied tag
// spectrum is folded into its read-rate and path-power statistics.
func WithHealth(m *health.Monitor) Option { return func(c *Config) { c.Health = m } }

// WithLogger attaches a structured logger for pipeline transitions
// (evictions, degraded fusion, baseline confirmation).
func WithLogger(l *slog.Logger) Option { return func(c *Config) { c.Logger = l } }

// WithLiveReaders supplies the live-reader oracle (typically
// session.Supervisor.Live) that enables quorum-degraded fusion: a
// sequence fuses once every live expected reader has reported and at
// least two reporting readers have non-collinear arrays, instead of
// stalling until SeqTTL when a reader is down. Call NotifyLiveChange
// when the live set changes so pending sequences are re-evaluated.
func WithLiveReaders(fn func() []string) Option {
	return func(c *Config) { c.LiveReaders = fn }
}

// New builds a pipeline for a deployment with functional options.
// Start must be called before Ingest.
func New(dep Deployment, opts ...Option) (*Pipeline, error) {
	cfg := Config{Arrays: dep.Arrays, Grid: dep.Grid}
	for _, o := range opts {
		o(&cfg)
	}
	return newFromConfig(cfg)
}
