package pipeline

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dwatch/internal/geom"
	"dwatch/internal/llrp"
	"dwatch/internal/rf"
	"dwatch/internal/sim"
)

// TestNonCollinear pins the quorum geometry predicate: two arrays can
// triangulate when their axes cross, or when they are parallel but
// laterally offset (facing walls); arrays strung along one line cannot.
func TestNonCollinear(t *testing.T) {
	mk := func(origin, axis geom.Point) *rf.Array {
		arr, err := rf.NewArrayFull(origin, axis, 8, rf.DefaultWavelength/2, rf.DefaultWavelength)
		if err != nil {
			t.Fatal(err)
		}
		return arr
	}
	bottom := mk(geom.Pt(1, 0, 1), geom.Pt2(1, 0))
	left := mk(geom.Pt(0, 1, 1), geom.Pt2(0, 1))
	top := mk(geom.Pt(1, 4, 1), geom.Pt2(1, 0))
	inline := mk(geom.Pt(3, 0, 1), geom.Pt2(1, 0)) // same wall as bottom

	if !nonCollinear(bottom, left) {
		t.Error("perpendicular arrays reported collinear")
	}
	if !nonCollinear(bottom, top) {
		t.Error("facing parallel walls reported collinear")
	}
	if nonCollinear(bottom, inline) {
		t.Error("arrays on the same line reported non-collinear")
	}
	if nonCollinear(bottom, bottom) {
		t.Error("an array is non-collinear with itself")
	}
}

// genReportsAt is genReports with an explicit trajectory, and the
// baseline rounds included, so callers can withhold readers per round.
func genReportsAt(tb testing.TB, sc *sim.Scenario, positions []geom.Point, snapshots int) [][]*llrp.ROAccessReport {
	tb.Helper()
	rounds, err := sim.GenerateLLRPRoundsAt(sc, positions, snapshots)
	if err != nil {
		tb.Fatal(err)
	}
	out := make([][]*llrp.ROAccessReport, len(rounds))
	for i, rd := range rounds {
		for _, r := range sc.Readers {
			rep, err := llrp.UnmarshalROAccessReport(rd.Payloads[r.ID])
			if err != nil {
				tb.Fatal(err)
			}
			out[i] = append(out[i], rep)
		}
	}
	return out
}

// TestQuorumDegradedFusion drives the assembler's live-reader oracle
// directly: a round missing one reader fuses as soon as every *live*
// reader has reported (degraded, with the contributors recorded), while
// a full round stays a normal fix. No supervisor, no TCP — just the
// pipeline and a swappable oracle.
func TestQuorumDegradedFusion(t *testing.T) {
	sc, err := sim.Build(sim.HallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Positions the hall covers with 4 views and with the 3 survivors
	// (see the session chaos test's deadzone scan).
	rounds := genReportsAt(t, sc,
		[]geom.Point{geom.Pt(4, 3, 1.25), geom.Pt(3, 3, 1.25)}, 3)

	arrays := map[string]*rf.Array{}
	var ids []string
	for _, r := range sc.Readers {
		arrays[r.ID] = r.Array
		ids = append(ids, r.ID)
	}
	victim := ids[len(ids)-1]
	survivors := ids[:len(ids)-1]

	var live atomic.Value
	live.Store(ids)
	p, err := New(Deployment{Arrays: arrays, Grid: sc.Grid},
		WithWorkers(2),
		WithSeqTTL(time.Minute),
		WithLiveReaders(func() []string { return live.Load().([]string) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	fixes := map[uint32]Fix{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for fix := range p.Fixes() {
			mu.Lock()
			fixes[fix.Seq] = fix
			mu.Unlock()
		}
	}()
	p.Start()

	get := func(seq uint32) (Fix, bool) {
		mu.Lock()
		defer mu.Unlock()
		f, ok := fixes[seq]
		return f, ok
	}
	wait := func(seq uint32) Fix {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			if f, ok := get(seq); ok {
				return f
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("no fix for seq %d", seq)
		return Fix{}
	}

	// Baselines (rounds 0,1) and a full healthy round (seq 3).
	for _, rep := range rounds[0] {
		if err := p.Ingest(rep); err != nil {
			t.Fatal(err)
		}
	}
	for _, rep := range rounds[1] {
		if err := p.Ingest(rep); err != nil {
			t.Fatal(err)
		}
	}
	for _, rep := range rounds[2] {
		if err := p.Ingest(rep); err != nil {
			t.Fatal(err)
		}
	}
	healthy := wait(3)
	if healthy.Degraded || healthy.Views != len(ids) {
		t.Fatalf("healthy fix = %+v, want %d-view non-degraded", healthy, len(ids))
	}
	if len(healthy.Readers) != len(ids) {
		t.Fatalf("healthy fix readers = %v, want all of %v", healthy.Readers, ids)
	}

	// Seq 4: withhold the victim's report. With the oracle still
	// reporting all readers live, the group must NOT fuse — a slow
	// reader is not a dead reader.
	for _, rep := range rounds[3] {
		if rep.ReaderID == victim {
			continue
		}
		if err := p.Ingest(rep); err != nil {
			t.Fatal(err)
		}
	}
	p.NotifyLiveChange()
	time.Sleep(200 * time.Millisecond)
	if f, ok := get(4); ok {
		t.Fatalf("incomplete group fused while all readers live: %+v", f)
	}

	// The victim goes down: the next re-evaluation fuses the pending
	// group from the survivor quorum.
	live.Store(survivors)
	p.NotifyLiveChange()
	deg := wait(4)
	if deg.Err != nil {
		t.Fatalf("degraded fuse failed: %v", deg.Err)
	}
	if !deg.Degraded || deg.Views != len(survivors) {
		t.Fatalf("degraded fix = %+v, want %d-view degraded", deg, len(survivors))
	}
	for _, id := range deg.Readers {
		if id == victim {
			t.Fatalf("degraded fix lists dead reader %s", victim)
		}
	}

	p.Drain()
	<-done
	st := p.Stats()
	if st.DegradedFixes != 1 {
		t.Fatalf("DegradedFixes = %d, want 1", st.DegradedFixes)
	}
	if st.SequencesEvicted != 0 {
		t.Fatalf("SequencesEvicted = %d, want 0", st.SequencesEvicted)
	}
}

// TestNoOracleNoQuorumFuse: without a live-reader oracle the assembler
// keeps its original contract — incomplete groups wait for SeqTTL, and
// a live-change notification is a no-op.
func TestNoOracleNoQuorumFuse(t *testing.T) {
	sc, err := sim.Build(sim.TableConfig())
	if err != nil {
		t.Fatal(err)
	}
	rounds := genReportsAt(t, sc, []geom.Point{geom.Pt(1, 1, 0.85)}, 3)
	arrays := map[string]*rf.Array{}
	for _, r := range sc.Readers {
		arrays[r.ID] = r.Array
	}
	p, err := New(Deployment{Arrays: arrays, Grid: sc.Grid},
		WithWorkers(1), WithSeqTTL(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range p.Fixes() {
		}
	}()
	p.Start()
	for _, round := range rounds[:2] {
		for _, rep := range round {
			if err := p.Ingest(rep); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Online round from only the first reader.
	if err := p.Ingest(rounds[2][0]); err != nil {
		t.Fatal(err)
	}
	p.NotifyLiveChange()
	time.Sleep(300 * time.Millisecond)
	st := p.Stats()
	if st.DegradedFixes != 0 {
		t.Fatalf("DegradedFixes = %d without an oracle", st.DegradedFixes)
	}
	if st.PendingSequences != 1 {
		t.Fatalf("PendingSequences = %d, want 1 (group must wait for TTL)", st.PendingSequences)
	}
	p.Drain()
}
