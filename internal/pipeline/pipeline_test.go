package pipeline

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dwatch/internal/llrp"
	"dwatch/internal/pmusic"
	"dwatch/internal/rf"
	"dwatch/internal/sim"
)

// testArrays builds the table scenario's two reader arrays.
func testArrays(tb testing.TB) (map[string]*rf.Array, *sim.Scenario) {
	tb.Helper()
	sc, err := sim.Build(sim.TableConfig())
	if err != nil {
		tb.Fatal(err)
	}
	arrays := map[string]*rf.Array{}
	for _, r := range sc.Readers {
		arrays[r.ID] = r.Array
	}
	return arrays, sc
}

// testConfig is a minimal valid config over the table scenario.
func testConfig(tb testing.TB) (Config, *sim.Scenario) {
	arrays, sc := testArrays(tb)
	return Config{Arrays: arrays, Grid: sc.Grid}, sc
}

// taglessReport builds a report with no tag data — enough to drive
// round accounting and sequence membership without spectrum work.
func taglessReport(reader string, seq uint32) *llrp.ROAccessReport {
	return &llrp.ROAccessReport{ReaderID: reader, Seq: seq}
}

// fakeReport builds a report with n placeholder tags; pair it with a
// stubbed compute.
func fakeReport(reader string, seq uint32, n int) *llrp.ROAccessReport {
	rep := &llrp.ROAccessReport{ReaderID: reader, Seq: seq}
	for i := 0; i < n; i++ {
		rep.Reports = append(rep.Reports, llrp.TagReport{
			EPC:      []byte(fmt.Sprintf("tag-%d", i)),
			Snapshot: [][]complex128{{1}},
		})
	}
	return rep
}

// drainFixes consumes the fixes channel in the background and returns
// a func that waits for the channel to close and yields the fixes.
func drainFixes(p *Pipeline) func() []Fix {
	ch := make(chan []Fix, 1)
	go func() {
		var out []Fix
		for f := range p.Fixes() {
			out = append(out, f)
		}
		ch <- out
	}()
	return func() []Fix { return <-ch }
}

func TestNewValidates(t *testing.T) {
	if _, err := newFromConfig(Config{}); err == nil {
		t.Fatal("New accepted empty config")
	}
	arrays, sc := testArrays(t)
	if _, err := newFromConfig(Config{Arrays: arrays}); err == nil {
		t.Fatal("New accepted zero grid")
	}
	if _, err := newFromConfig(Config{Arrays: arrays, Grid: sc.Grid}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestIngestUnknownReaderRejected(t *testing.T) {
	cfg, _ := testConfig(t)
	p, err := newFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	wait := drainFixes(p)
	if err := p.Ingest(taglessReport("nobody", 1)); !errors.Is(err, ErrUnknownReader) {
		t.Fatalf("unknown reader: err = %v, want ErrUnknownReader", err)
	}
	p.Drain()
	wait()
	st := p.Stats()
	if st.ReportsRejected != 1 || st.ReportsIn != 0 {
		t.Fatalf("rejected/in = %d/%d, want 1/0", st.ReportsRejected, st.ReportsIn)
	}
}

func TestIngestAfterDrainFails(t *testing.T) {
	cfg, sc := testConfig(t)
	p, err := newFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	wait := drainFixes(p)
	p.Drain()
	wait()
	if err := p.Ingest(taglessReport(sc.Readers[0].ID, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after drain: err = %v, want ErrClosed", err)
	}
}

// TestOverloadDropOldest floods a one-worker pipeline whose compute is
// parked, and checks that ingest never blocks, the oldest snapshots
// are shed, and every report still completes through the assembler.
func TestOverloadDropOldest(t *testing.T) {
	cfg, sc := testConfig(t)
	cfg.Workers = 1
	cfg.QueueSize = 2
	cfg.Overload = DropOldest
	cfg.ExpectReaders = 1
	p, err := newFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	p.compute = func([][]complex128, *rf.Array, pmusic.Options) (*pmusic.Spectrum, error) {
		<-release
		return nil, errors.New("stub")
	}
	p.Start()
	wait := drainFixes(p)

	reader := sc.Readers[0].ID
	const reports = 10
	ingested := make(chan error, 1)
	go func() {
		for i := 0; i < reports; i++ {
			if err := p.Ingest(fakeReport(reader, uint32(i+1), 1)); err != nil {
				ingested <- err
				return
			}
		}
		ingested <- nil
	}()
	select {
	case err := <-ingested:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ingest blocked under DropOldest")
	}
	close(release)
	p.Drain()
	wait()

	st := p.Stats()
	if st.SnapshotsIn != reports {
		t.Fatalf("snapshots in = %d, want %d", st.SnapshotsIn, reports)
	}
	if st.SnapshotsDropped == 0 {
		t.Fatal("no snapshots dropped despite full queue")
	}
	// 2 baseline rounds, the rest online; every report (dropped or
	// not) must have completed sequence assembly.
	if got := st.Fixes + st.Misses; got != reports-2 {
		t.Fatalf("fused outcomes = %d, want %d", got, reports-2)
	}
	if st.PendingSequences != 0 {
		t.Fatalf("pending sequences = %d after drain, want 0", st.PendingSequences)
	}
}

// TestOverloadBlock checks the Block policy applies backpressure: with
// the queue and the single worker saturated, Ingest stalls until the
// worker frees space, and nothing is dropped.
func TestOverloadBlock(t *testing.T) {
	cfg, sc := testConfig(t)
	cfg.Workers = 1
	cfg.QueueSize = 1
	cfg.Overload = Block
	cfg.ExpectReaders = 1
	p, err := newFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	p.compute = func([][]complex128, *rf.Array, pmusic.Options) (*pmusic.Spectrum, error) {
		<-release
		return nil, errors.New("stub")
	}
	p.Start()
	wait := drainFixes(p)

	reader := sc.Readers[0].ID
	done := make(chan struct{})
	go func() {
		// 4 single-tag reports: worker holds 1, queue holds 1, the
		// rest must block.
		for i := 0; i < 4; i++ {
			if err := p.Ingest(fakeReport(reader, uint32(i+1), 1)); err != nil {
				t.Errorf("ingest: %v", err)
			}
		}
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("ingest did not block with a full queue under Block policy")
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ingest still blocked after workers released")
	}
	p.Drain()
	wait()
	if st := p.Stats(); st.SnapshotsDropped != 0 {
		t.Fatalf("Block policy dropped %d snapshots", st.SnapshotsDropped)
	}
}

// TestSequenceTTLEviction: sequences stuck waiting for a dead reader
// are evicted by the sweep and later reports for them are counted as
// late instead of resurrecting the group.
func TestSequenceTTLEviction(t *testing.T) {
	cfg, sc := testConfig(t)
	cfg.SeqTTL = time.Hour // sweep manually for determinism
	p, err := newFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	wait := drainFixes(p)
	alive, dead := sc.Readers[0].ID, sc.Readers[1].ID

	// Baseline both readers, then only `alive` keeps reporting.
	for round := 0; round < 2; round++ {
		seq := uint32(round + 1)
		if err := p.Ingest(taglessReport(alive, seq)); err != nil {
			t.Fatal(err)
		}
		if err := p.Ingest(taglessReport(dead, seq)); err != nil {
			t.Fatal(err)
		}
	}
	const stuck = 5
	for i := 0; i < stuck; i++ {
		if err := p.Ingest(taglessReport(alive, uint32(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	p.Drain()
	wait()

	if got := p.Stats().PendingSequences; got != stuck {
		t.Fatalf("pending before sweep = %d, want %d", got, stuck)
	}
	// The assembler has exited (Drain), so driving it directly is
	// race-free: a sweep past the TTL evicts everything.
	if n := p.asm.sweep(p.now().Add(2 * time.Hour)); n != stuck {
		t.Fatalf("sweep evicted %d, want %d", n, stuck)
	}
	st := p.Stats()
	if st.SequencesEvicted != stuck || st.PendingSequences != 0 {
		t.Fatalf("evicted/pending = %d/%d, want %d/0", st.SequencesEvicted, st.PendingSequences, stuck)
	}

	// A straggler report for an evicted sequence is counted as late.
	// The shards have exited, so submit applies it inline.
	p.asm.submit(&report{
		reader: dead, round: p.asm.seqs[dead].next, seq: 100,
		spectra: map[string]*pmusic.Spectrum{},
	})
	if got := p.Stats().LateReports; got != 1 {
		t.Fatalf("late reports = %d, want 1", got)
	}
}

// TestDeadReaderBoundedMemory is the regression test for the dwatchd
// s.online leak: with one reader dead, pending sequences are capped at
// MaxPendingSeqs no matter how many rounds the live reader streams.
func TestDeadReaderBoundedMemory(t *testing.T) {
	cfg, sc := testConfig(t)
	cfg.SeqTTL = time.Hour // the cap, not the TTL, must bound memory
	cfg.MaxPendingSeqs = 10
	p, err := newFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	wait := drainFixes(p)
	alive, dead := sc.Readers[0].ID, sc.Readers[1].ID
	for round := 0; round < 2; round++ {
		seq := uint32(round + 1)
		if err := p.Ingest(taglessReport(alive, seq)); err != nil {
			t.Fatal(err)
		}
		if err := p.Ingest(taglessReport(dead, seq)); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 500
	for i := 0; i < rounds; i++ {
		if err := p.Ingest(taglessReport(alive, uint32(10+i))); err != nil {
			t.Fatal(err)
		}
		if got := p.Stats().PendingSequences; got > cfg.MaxPendingSeqs {
			t.Fatalf("round %d: pending sequences %d exceeds cap %d", i, got, cfg.MaxPendingSeqs)
		}
	}
	p.Drain()
	wait()
	st := p.Stats()
	if st.PendingSequences > cfg.MaxPendingSeqs {
		t.Fatalf("pending = %d, want ≤ %d", st.PendingSequences, cfg.MaxPendingSeqs)
	}
	if want := uint64(rounds - cfg.MaxPendingSeqs); st.SequencesEvicted != want {
		t.Fatalf("evicted = %d, want %d", st.SequencesEvicted, want)
	}
	if got := p.asm.onlineLen(); got != cfg.MaxPendingSeqs {
		t.Fatalf("assembler holds %d groups, want %d", got, cfg.MaxPendingSeqs)
	}
}

// TestCloseAborts: Close unblocks a parked pipeline without waiting
// for in-flight work.
func TestCloseAborts(t *testing.T) {
	cfg, sc := testConfig(t)
	cfg.Workers = 1
	cfg.QueueSize = 1
	p, err := newFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.compute = func([][]complex128, *rf.Array, pmusic.Options) (*pmusic.Spectrum, error) {
		<-p.stop
		return nil, errors.New("aborted")
	}
	p.Start()
	wait := drainFixes(p)
	go p.Ingest(fakeReport(sc.Readers[0].ID, 1, 5))
	time.Sleep(20 * time.Millisecond)
	finished := make(chan struct{})
	go func() { p.Close(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}
	wait()
}

func TestOverloadPolicyString(t *testing.T) {
	if Block.String() != "block" || DropOldest.String() != "drop-oldest" {
		t.Fatalf("policy strings: %q %q", Block, DropOldest)
	}
	if s := OverloadPolicy(9).String(); s != "OverloadPolicy(9)" {
		t.Fatalf("unknown policy string %q", s)
	}
}
