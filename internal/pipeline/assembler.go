package pipeline

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dwatch/internal/dwatch"
	"dwatch/internal/loc"
	"dwatch/internal/pmusic"
	"dwatch/internal/rf"
	"dwatch/internal/tracing"
)

// report is one reader's completed acquisition report: every tag's
// spectrum computed (or failed/shed to nil and omitted), ready for
// round-ordered application. Workers produce one per job; the ingest
// path produces them directly for tagless reports.
type report struct {
	reader  string
	round   int
	seq     uint32
	spectra map[string]*pmusic.Spectrum
}

// seqGroup accumulates one acquisition sequence across readers.
type seqGroup struct {
	byReader map[string]map[string]*pmusic.Spectrum
	created  time.Time
}

// readerSeq is one reader's round sequencer: workers finish that
// reader's reports in arbitrary order, and submit applies them in
// round order under the per-reader lock — so baselines are built
// exactly as in the synchronous path, without funneling every reader
// through one goroutine.
type readerSeq struct {
	mu    sync.Mutex
	next  int
	ready map[int]*report
}

// assembler is stages 3+4, sharded: per-reader sequencers feed
// complete reports to seq%N shard goroutines that own the grouping
// state, so fusion for independent sequences runs in parallel. The
// fuser is shared under a read-write lock (baseline writes are rare
// and confined to startup; BuildView is read-only), and the grid-index
// cache is shared under its own lock since entries are immutable.
type assembler struct {
	p     *Pipeline
	fuser *dwatch.Fuser
	// fuserMu orders baseline mutation against concurrent BuildView
	// reads from the fusion shards. dwatch.Fuser itself is not
	// synchronized: AddBaseline/FinishBaseline take the write side,
	// BuildView the read side.
	fuserMu sync.RWMutex

	// seqs holds one round sequencer per deployed reader; the reader
	// set is fixed at construction, so the map itself is read-only.
	seqs map[string]*readerSeq

	shards  []*shard
	shardWG sync.WaitGroup
	// shardsStopped is closed after every shard goroutine has exited
	// (teardown); submission then applies reports inline, which keeps
	// post-Drain test driving and late flushes single-threaded-safe.
	shardsStopped chan struct{}

	// pending counts sequences mid-assembly across all shards — the
	// only assembler state Stats reads, and the cap gate for
	// MaxPendingSeqs (enforced globally, evict-before-insert, so the
	// count never exceeds the cap).
	pending atomic.Int64

	// baselineApplied counts baseline-round reports applied per
	// sequence so the sequence's trace can be finished (outcome
	// "baseline") once every expected reader's report landed.
	baselineMu      sync.Mutex
	baselineApplied map[uint32]int

	// gridIdx caches each array's cell→angle-bin table for the search
	// grid. GridIndex values are immutable and share-safe; the lock
	// only guards the map itself.
	gridMu  sync.Mutex
	gridIdx map[gridIdxKey]*loc.GridIndex
}

type gridIdxKey struct {
	arr  *rf.Array
	bins int
}

// shard owns the online/done grouping state for the sequences with
// seq % shards == index. Its goroutine consumes the shard channel,
// sweeps its own groups on a timer, and fuses independently of the
// other shards. The mutex exists for the two cross-shard paths —
// global cap eviction and post-teardown inline application — plus the
// Stats-adjacent test accessors.
type shard struct {
	a    *assembler
	ch   chan *report
	live chan struct{}

	mu     sync.Mutex
	online map[uint32]*seqGroup
	// done records sequences already fused or evicted (with the time
	// they finished) so late reports are counted instead of
	// resurrecting a group; pruned by the sweeper.
	done map[uint32]time.Time
}

func newAssembler(p *Pipeline, fuser *dwatch.Fuser) *assembler {
	a := &assembler{
		p:               p,
		fuser:           fuser,
		seqs:            map[string]*readerSeq{},
		shardsStopped:   make(chan struct{}),
		baselineApplied: map[uint32]int{},
		gridIdx:         map[gridIdxKey]*loc.GridIndex{},
	}
	for id := range p.cfg.Arrays {
		// Restored-baseline pipelines start every reader past the
		// baseline rounds (p.rounds is pre-seeded).
		a.seqs[id] = &readerSeq{next: p.rounds[id], ready: map[int]*report{}}
	}
	a.shards = make([]*shard, p.cfg.AssemblerShards)
	for i := range a.shards {
		a.shards[i] = &shard{
			a:      a,
			ch:     make(chan *report, 64),
			live:   make(chan struct{}, 1),
			online: map[uint32]*seqGroup{},
			done:   map[uint32]time.Time{},
		}
	}
	return a
}

// submit hands one completed report to the assembler. It buffers
// out-of-order rounds and applies in-order ones immediately, holding
// the reader's sequencer lock through application so no later round
// can overtake an earlier one mid-apply. Called from worker goroutines
// and (for tagless reports) from Ingest.
func (a *assembler) submit(g *report) error {
	rs := a.seqs[g.reader]
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.ready[g.round] = g
	for {
		next, ok := rs.ready[rs.next]
		if !ok {
			return nil
		}
		delete(rs.ready, rs.next)
		rs.next++
		if err := a.apply(next); err != nil {
			return err
		}
	}
}

// apply processes one in-order report: baseline rounds feed the fuser,
// online rounds route to their sequence's shard. Every applied
// spectrum also feeds the RF-health monitor — baseline rounds
// included, since channel statistics accrue regardless of phase.
func (a *assembler) apply(g *report) error {
	if a.p.cfg.Health != nil && len(g.spectra) > 0 {
		now := a.p.now()
		for epc, sp := range g.spectra {
			a.p.cfg.Health.Observe(g.reader, epc, sp, now)
		}
	}
	if g.round < a.p.cfg.BaselineRounds {
		a.applyBaseline(g)
		return nil
	}
	return a.route(g)
}

// applyBaseline folds one baseline-round report into the fuser under
// the write lock. The OnBaseline callback runs inside the critical
// section: callers (dwatchd state persistence) rely on exclusive fuser
// access while the callback executes.
func (a *assembler) applyBaseline(g *report) {
	confirm := g.round == a.p.cfg.BaselineRounds-1
	a.fuserMu.Lock()
	for epc, sp := range g.spectra {
		a.fuser.AddBaseline(g.reader, []byte(epc), sp)
	}
	if confirm {
		a.fuser.FinishBaseline()
		if a.p.cfg.OnBaseline != nil {
			a.p.cfg.OnBaseline(g.reader, len(g.spectra))
		}
	}
	a.fuserMu.Unlock()
	if confirm {
		a.p.c.baselinesConfirmed.Add(1)
		a.p.ins.baselineConfirmed(g.reader)
		if l := a.p.cfg.Logger; l != nil {
			l.Info("baseline confirmed", "reader", g.reader, "tags", len(g.spectra))
		}
	}
	// Baseline sequences never fuse; finish their trace once every
	// expected reader's report for this sequence has been applied.
	if a.p.cfg.Tracer != nil {
		a.baselineMu.Lock()
		a.baselineApplied[g.seq]++
		finished := a.baselineApplied[g.seq] >= a.p.cfg.ExpectReaders
		if finished {
			delete(a.baselineApplied, g.seq)
		}
		a.baselineMu.Unlock()
		if finished {
			a.p.cfg.Tracer.Finish(g.seq, tracing.OutcomeBaseline, a.p.now())
		}
	}
}

// route delivers an online report to its sequence's shard. After the
// shards have exited (teardown), the report is applied inline instead —
// at that point submission is single-threaded (post-Drain tests).
func (a *assembler) route(g *report) error {
	s := a.shards[int(g.seq)%len(a.shards)]
	select {
	case <-a.shardsStopped:
		s.accept(g)
		return nil
	default:
	}
	select {
	case s.ch <- g:
		return nil
	case <-a.shardsStopped:
		s.accept(g)
		return nil
	case <-a.p.stop:
		return ErrClosed
	}
}

// run is one shard goroutine: it consumes routed reports until the
// channel closes, sweeping its own stale sequences on a timer and
// re-evaluating the quorum gate when poked.
func (s *shard) run() {
	defer s.a.shardWG.Done()
	tick := time.NewTicker(sweepInterval(s.a.p.cfg.SeqTTL))
	defer tick.Stop()
	for {
		select {
		case g, ok := <-s.ch:
			if !ok {
				return
			}
			s.accept(g)
		case <-tick.C:
			s.sweep(s.a.p.now())
		case <-s.live:
			s.reevaluate()
		case <-s.a.p.stop:
			return
		}
	}
}

func sweepInterval(ttl time.Duration) time.Duration {
	iv := ttl / 4
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	return iv
}

// accept folds one online report into its sequence group and fuses the
// group once complete. Only this shard creates groups for its
// sequences, so the unlocked existence probe cannot race an insert —
// the lock is dropped around cap eviction to keep the cross-shard scan
// free of nested shard locks.
func (s *shard) accept(g *report) {
	a := s.a
	s.mu.Lock()
	_, dup := s.done[g.seq]
	_, exists := s.online[g.seq]
	s.mu.Unlock()
	if dup {
		a.p.c.lateReports.Add(1)
		a.p.ins.lateReport()
		return
	}
	if !exists {
		// Evict-before-insert: make room while the global pending
		// count sits at the cap, so it never exceeds MaxPendingSeqs.
		a.evictForCap()
	}
	s.mu.Lock()
	if _, dup := s.done[g.seq]; dup {
		// A cap eviction driven from another shard can have evicted
		// g.seq's existing group while the lock was dropped — recheck.
		s.mu.Unlock()
		a.p.c.lateReports.Add(1)
		a.p.ins.lateReport()
		return
	}
	grp := s.online[g.seq]
	if grp == nil {
		grp = &seqGroup{byReader: map[string]map[string]*pmusic.Spectrum{}, created: a.p.now()}
		s.online[g.seq] = grp
		a.pending.Add(1)
	}
	grp.byReader[g.reader] = g.spectra
	ready, degraded := s.takeIfReady(g.seq, grp)
	s.mu.Unlock()
	if ready {
		a.fuse(g.seq, grp, degraded)
	}
}

// takeIfReady checks the fusion gate for a pending group and, when it
// passes, removes the group and records its assembly — all under the
// shard lock. The caller fuses outside the lock.
func (s *shard) takeIfReady(seq uint32, grp *seqGroup) (ready, degraded bool) {
	a := s.a
	if len(grp.byReader) < a.p.cfg.ExpectReaders {
		if !a.quorumReady(grp) {
			return false, false
		}
		degraded = true
	}
	delete(s.online, seq)
	a.pending.Add(-1)
	now := a.p.now()
	s.done[seq] = now
	a.p.c.sequencesAssembled.Add(1)
	a.p.ins.sequenceAssembled()
	// The assemble span runs from the group's creation (first report
	// of the sequence) to completion: cross-reader skew, not CPU time.
	a.p.ins.span(stageAssemble, grp.created).EndAt(now)
	a.p.cfg.Tracer.Active(seq).Span(tracing.StageAssemble, "", "", grp.created, now, 0)
	return true, degraded
}

// quorumReady reports whether an incomplete sequence may fuse in
// degraded mode: a LiveReaders oracle is configured, every live
// expected reader has reported, and at least two of the reporting
// readers carry non-collinear arrays (Eq. 15's likelihood product
// needs two crossing bearing constraints to pin a point).
func (a *assembler) quorumReady(grp *seqGroup) bool {
	oracle := a.p.cfg.LiveReaders
	if oracle == nil {
		return false
	}
	for _, id := range oracle() {
		if _, expected := a.p.cfg.Arrays[id]; !expected {
			continue
		}
		if _, reported := grp.byReader[id]; !reported {
			return false
		}
	}
	arrs := make([]*rf.Array, 0, len(grp.byReader))
	for id := range grp.byReader {
		if arr := a.p.cfg.Arrays[id]; arr != nil {
			arrs = append(arrs, arr)
		}
	}
	for i := 0; i < len(arrs); i++ {
		for j := i + 1; j < len(arrs); j++ {
			if nonCollinear(arrs[i], arrs[j]) {
				return true
			}
		}
	}
	return false
}

// nonCollinear reports whether two arrays constrain two independent
// axes: their axes are not parallel, or they are parallel but offset
// sideways (two facing walls still triangulate; two arrays end-to-end
// on the same line do not).
func nonCollinear(a, b *rf.Array) bool {
	const eps = 1e-9
	if cz := a.Axis.X*b.Axis.Y - a.Axis.Y*b.Axis.X; cz > eps || cz < -eps {
		return true
	}
	d := b.Center().Sub(a.Center())
	oz := a.Axis.X*d.Y - a.Axis.Y*d.X
	return oz > eps || oz < -eps
}

// reevaluate re-runs the fusion gate over this shard's pending
// sequences; run when the live-reader set changes (a reader going down
// may make already-received evidence sufficient). Sequence order keeps
// a burst of unblocked sequences deterministic within the shard.
func (s *shard) reevaluate() {
	s.mu.Lock()
	pending := make([]uint32, 0, len(s.online))
	for seq := range s.online {
		pending = append(pending, seq)
	}
	s.mu.Unlock()
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	for _, seq := range pending {
		s.mu.Lock()
		grp := s.online[seq]
		var ready, degraded bool
		if grp != nil {
			ready, degraded = s.takeIfReady(seq, grp)
		}
		s.mu.Unlock()
		if ready {
			s.a.fuse(seq, grp, degraded)
		}
	}
}

// fuse builds drop views for one complete (or quorum-degraded)
// sequence and localizes. Runs on the owning shard's goroutine with no
// shard lock held; the fuser is read-locked for view building only.
func (a *assembler) fuse(seq uint32, grp *seqGroup, degraded bool) {
	start := a.p.now()
	span := a.p.ins.span(stageFuse, start)
	trc := a.p.cfg.Tracer.Active(seq)
	if degraded {
		trc.MarkDegraded()
		trc.Event(tracing.EventDegradedQuorum,
			fmt.Sprintf("%d/%d readers", len(grp.byReader), a.p.cfg.ExpectReaders), start)
		if l := a.p.cfg.Logger; l != nil {
			l.Warn("degraded fusion", "seq", seq, "trace", trc.ID(),
				"reported", len(grp.byReader), "expected", a.p.cfg.ExpectReaders)
		}
	}
	// Deterministic view order: likelihood products are commutative
	// but not associative in floating point, so a stable order keeps
	// fixes bit-identical across runs, worker counts, and shard counts.
	ids := make([]string, 0, len(grp.byReader))
	for id := range grp.byReader {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	a.fuserMu.RLock()
	var views []*loc.View
	for _, id := range ids {
		if v := a.fuser.BuildView(id, grp.byReader[id]); v != nil {
			views = append(views, v)
		}
	}
	a.fuserMu.RUnlock()
	fix := Fix{Seq: seq, Views: len(views), Readers: ids, Degraded: degraded, TraceID: trc.ID()}
	if len(views) < 2 {
		fix.Err = fmt.Errorf("pipeline: seq %d: evidence from only %d readers", seq, len(views))
	} else if res, err := a.localize(views); err != nil {
		fix.Err = err
	} else {
		fix.Pos = res.Pos
		fix.Confidence = res.Confidence
	}
	end := a.p.now()
	a.p.fuseHist.ObserveDuration(span.EndAt(end))
	trc.Span(tracing.StageFuse, "", "", start, end, 0)
	outcome := tracing.OutcomeFix
	if fix.Err != nil {
		outcome = tracing.OutcomeMiss
		trc.Event(tracing.EventMiss, fix.Err.Error(), end)
	}
	a.p.cfg.Tracer.Finish(seq, outcome, end)
	if fix.Err != nil {
		a.p.c.misses.Add(1)
	} else {
		a.p.c.fixes.Add(1)
		if degraded {
			a.p.c.degradedFixes.Add(1)
		}
	}
	a.p.ins.fix(fix.Err == nil, degraded)
	// Subscribers see every outcome before the channel send, so a
	// slow Fixes consumer cannot starve the live position feed.
	for _, fn := range a.p.fixSubs {
		fn(fix)
	}
	select {
	case a.p.fixes <- fix:
	case <-a.p.stop:
	}
}

// localize runs the grid search through the cached per-array
// GridIndex tables (bit-identical to loc.Localize), falling back to
// the direct search if a table cannot be built for some view. The
// cache lock covers only the map; the table walk runs unlocked since
// GridIndex values are immutable.
func (a *assembler) localize(views []*loc.View) (loc.Result, error) {
	indexes := make([]*loc.GridIndex, len(views))
	for i, v := range views {
		k := gridIdxKey{arr: v.Array, bins: len(v.Angles)}
		a.gridMu.Lock()
		g, ok := a.gridIdx[k]
		a.gridMu.Unlock()
		if !ok {
			var err error
			g, err = loc.NewGridIndex(v.Array, a.p.cfg.Grid, len(v.Angles))
			if err != nil {
				return loc.Localize(views, a.p.cfg.Grid, a.p.cfg.Loc)
			}
			a.gridMu.Lock()
			a.gridIdx[k] = g
			a.gridMu.Unlock()
		}
		indexes[i] = g
	}
	return loc.LocalizeIndexed(views, indexes, a.p.cfg.Grid, a.p.cfg.Loc)
}

// sweep evicts sequence groups older than SeqTTL across every shard
// and prunes the done sets. Returns how many groups were evicted.
// During normal operation each shard sweeps itself on its own timer;
// this aggregate exists for drained-pipeline driving (tests, final
// flush accounting).
func (a *assembler) sweep(now time.Time) int {
	n := 0
	for _, s := range a.shards {
		n += s.sweep(now)
	}
	return n
}

// sweep evicts this shard's sequence groups older than SeqTTL and
// prunes its done set. Bookkeeping runs under the shard lock; tracer
// and logger calls (internally synchronized) run after.
func (s *shard) sweep(now time.Time) int {
	a := s.a
	type evicted struct {
		seq uint32
		grp *seqGroup
	}
	var evs []evicted
	s.mu.Lock()
	for seq, grp := range s.online {
		if now.Sub(grp.created) >= a.p.cfg.SeqTTL {
			delete(s.online, seq)
			a.pending.Add(-1)
			s.done[seq] = now
			evs = append(evs, evicted{seq, grp})
		}
	}
	for seq, t := range s.done {
		if now.Sub(t) >= 4*a.p.cfg.SeqTTL {
			delete(s.done, seq)
		}
	}
	s.mu.Unlock()
	for _, ev := range evs {
		a.p.c.sequencesEvicted.Add(1)
		a.p.ins.sequenceEvicted("ttl")
		trc := a.p.cfg.Tracer.Active(ev.seq)
		trc.Event(tracing.EventTTLEvicted,
			fmt.Sprintf("%d/%d readers after %v", len(ev.grp.byReader), a.p.cfg.ExpectReaders, now.Sub(ev.grp.created)), now)
		a.p.cfg.Tracer.Finish(ev.seq, tracing.OutcomeEvicted, now)
		if l := a.p.cfg.Logger; l != nil {
			l.Warn("sequence evicted", "seq", ev.seq, "trace", trc.ID(), "reason", "ttl",
				"reported", len(ev.grp.byReader), "expected", a.p.cfg.ExpectReaders)
		}
	}
	return len(evs)
}

// evictForCap evicts globally-oldest pending groups while the pending
// count sits at MaxPendingSeqs — the memory backstop when a reader
// dies and TTL has not fired yet. Shards are scanned one at a time
// (never two shard locks at once), so there is no lock ordering to
// violate; losing a race to a concurrent fuse just means re-scanning.
func (a *assembler) evictForCap() {
	for int(a.pending.Load()) >= a.p.cfg.MaxPendingSeqs {
		var victim *shard
		var vseq uint32
		var vt time.Time
		found := false
		for _, s := range a.shards {
			s.mu.Lock()
			for seq, grp := range s.online {
				if !found || grp.created.Before(vt) {
					victim, vseq, vt, found = s, seq, grp.created, true
				}
			}
			s.mu.Unlock()
		}
		if !found {
			return
		}
		victim.evictCap(vseq)
	}
}

// evictCap removes one group by sequence for the pending-cap backstop;
// a no-op if the group fused or was evicted since the caller's scan.
func (s *shard) evictCap(seq uint32) {
	a := s.a
	s.mu.Lock()
	grp := s.online[seq]
	if grp == nil {
		s.mu.Unlock()
		return
	}
	delete(s.online, seq)
	a.pending.Add(-1)
	now := a.p.now()
	s.done[seq] = now
	s.mu.Unlock()
	a.p.c.sequencesEvicted.Add(1)
	a.p.ins.sequenceEvicted("cap")
	trc := a.p.cfg.Tracer.Active(seq)
	trc.Event(tracing.EventCapEvicted,
		fmt.Sprintf("pending over %d", a.p.cfg.MaxPendingSeqs), now)
	a.p.cfg.Tracer.Finish(seq, tracing.OutcomeEvicted, now)
	if l := a.p.cfg.Logger; l != nil {
		l.Warn("sequence evicted", "seq", seq, "trace", trc.ID(), "reason", "cap")
	}
}

// pendingSequences reports how many sequences are mid-assembly from
// the shared atomic — a properly synchronized read that may lag a
// shard's map by one in-flight mutation, and is exact once the
// pipeline is drained.
func (a *assembler) pendingSequences() int { return int(a.pending.Load()) }

// onlineLen counts pending groups straight from the shard maps — the
// exact (locked) companion to pendingSequences, for tests and
// post-drain inspection.
func (a *assembler) onlineLen() int {
	n := 0
	for _, s := range a.shards {
		s.mu.Lock()
		n += len(s.online)
		s.mu.Unlock()
	}
	return n
}
