package pipeline

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"dwatch/internal/dwatch"
	"dwatch/internal/loc"
	"dwatch/internal/pmusic"
	"dwatch/internal/rf"
	"dwatch/internal/tracing"
)

// reportAgg regroups the per-tag spectra of one report as they come
// back from the worker pool in arbitrary order.
type reportAgg struct {
	reader  string
	round   int
	seq     uint32
	expect  int
	got     int
	spectra map[string]*pmusic.Spectrum
}

// seqGroup accumulates one acquisition sequence across readers.
type seqGroup struct {
	byReader map[string]map[string]*pmusic.Spectrum
	created  time.Time
}

// assembler is stage 3+4: it owns the fuser and all grouping state, so
// everything here runs on one goroutine and needs no locks.
type assembler struct {
	p     *Pipeline
	fuser *dwatch.Fuser

	// agg collects in-flight reports by report index.
	agg map[uint64]*reportAgg
	// ready holds completed reports awaiting their turn in the
	// per-reader round order; nextRound is the round each reader
	// applies next. This restores the synchronous path's semantics:
	// baseline rounds feed AddBaseline in order even when their
	// spectra finished out of order across the pool.
	ready     map[string]map[int]*reportAgg
	nextRound map[string]int

	// online groups post-baseline reports by acquisition sequence.
	// pending is an atomic mirror of len(online), updated by the
	// assembler in the same breath as every map mutation: it is the
	// *only* assembler state other goroutines may read (via
	// pendingSequences), so Stats never touches the unlocked maps.
	online  map[uint32]*seqGroup
	pending atomic.Int64
	// done records sequences already fused or evicted (with the time
	// they finished) so late reports are counted instead of
	// resurrecting a group; pruned by the sweeper.
	done map[uint32]time.Time
	// baselineApplied counts baseline-round reports applied per
	// sequence so the sequence's trace can be finished (outcome
	// "baseline") once every expected reader's report landed —
	// baseline sequences never reach fusion, the usual finish point.
	baselineApplied map[uint32]int

	// gridIdx caches each array's cell→angle-bin table for the search
	// grid, keyed by array identity plus angle-grid size. Array
	// geometries and the grid are fixed for the pipeline's lifetime, so
	// entries never invalidate; single-goroutine access, no lock.
	gridIdx map[gridIdxKey]*loc.GridIndex
}

type gridIdxKey struct {
	arr  *rf.Array
	bins int
}

func newAssembler(p *Pipeline, fuser *dwatch.Fuser) *assembler {
	a := &assembler{
		p:               p,
		fuser:           fuser,
		agg:             map[uint64]*reportAgg{},
		ready:           map[string]map[int]*reportAgg{},
		nextRound:       map[string]int{},
		online:          map[uint32]*seqGroup{},
		done:            map[uint32]time.Time{},
		baselineApplied: map[uint32]int{},
		gridIdx:         map[gridIdxKey]*loc.GridIndex{},
	}
	for id, next := range p.rounds {
		// Restored-baseline pipelines start every reader past the
		// baseline rounds.
		a.nextRound[id] = next
	}
	return a
}

// run consumes worker results until the channel closes, sweeping stale
// sequences on a timer.
func (a *assembler) run() {
	defer close(a.p.fixes)
	tick := time.NewTicker(sweepInterval(a.p.cfg.SeqTTL))
	defer tick.Stop()
	for {
		select {
		case r, ok := <-a.p.results:
			if !ok {
				return
			}
			a.add(r)
		case <-tick.C:
			a.sweep(a.p.now())
		case <-a.p.liveCh:
			a.reevaluate()
		case <-a.p.stop:
			return
		}
	}
}

func sweepInterval(ttl time.Duration) time.Duration {
	iv := ttl / 4
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	return iv
}

// add folds one worker result into its report; completed reports are
// applied in per-reader round order.
func (a *assembler) add(r result) {
	g := a.agg[r.repIdx]
	if g == nil {
		g = &reportAgg{
			reader: r.reader, round: r.round, seq: r.seq,
			expect: r.expect, spectra: map[string]*pmusic.Spectrum{},
		}
		a.agg[r.repIdx] = g
	}
	if r.expect > 0 {
		g.got++
		if r.sp != nil {
			g.spectra[r.epc] = r.sp
		}
	}
	if g.got < g.expect {
		return
	}
	delete(a.agg, r.repIdx)
	perReader := a.ready[g.reader]
	if perReader == nil {
		perReader = map[int]*reportAgg{}
		a.ready[g.reader] = perReader
	}
	perReader[g.round] = g
	for {
		next, ok := perReader[a.nextRound[g.reader]]
		if !ok {
			return
		}
		delete(perReader, a.nextRound[g.reader])
		a.nextRound[g.reader]++
		a.apply(next)
	}
}

// apply processes one complete report: baseline rounds feed the fuser,
// online rounds join their sequence group. Every applied spectrum also
// feeds the RF-health monitor — baseline rounds included, since channel
// statistics accrue regardless of localization phase.
func (a *assembler) apply(g *reportAgg) {
	if a.p.cfg.Health != nil && len(g.spectra) > 0 {
		now := a.p.now()
		for epc, sp := range g.spectra {
			a.p.cfg.Health.Observe(g.reader, epc, sp, now)
		}
	}
	if g.round < a.p.cfg.BaselineRounds {
		for epc, sp := range g.spectra {
			a.fuser.AddBaseline(g.reader, []byte(epc), sp)
		}
		if g.round == a.p.cfg.BaselineRounds-1 {
			a.fuser.FinishBaseline()
			a.p.c.baselinesConfirmed.Add(1)
			a.p.ins.baselineConfirmed(g.reader)
			if a.p.cfg.OnBaseline != nil {
				a.p.cfg.OnBaseline(g.reader, len(g.spectra))
			}
			if l := a.p.cfg.Logger; l != nil {
				l.Info("baseline confirmed", "reader", g.reader, "tags", len(g.spectra))
			}
		}
		// Baseline sequences never fuse; finish their trace once every
		// expected reader's report for this sequence has been applied.
		if a.p.cfg.Tracer != nil {
			a.baselineApplied[g.seq]++
			if a.baselineApplied[g.seq] >= a.p.cfg.ExpectReaders {
				delete(a.baselineApplied, g.seq)
				a.p.cfg.Tracer.Finish(g.seq, tracing.OutcomeBaseline, a.p.now())
			}
		}
		return
	}
	if _, dup := a.done[g.seq]; dup {
		a.p.c.lateReports.Add(1)
		a.p.ins.lateReport()
		return
	}
	grp := a.online[g.seq]
	if grp == nil {
		grp = &seqGroup{byReader: map[string]map[string]*pmusic.Spectrum{}, created: a.p.now()}
		a.online[g.seq] = grp
		a.pending.Add(1)
		a.capPending()
	}
	grp.byReader[g.reader] = g.spectra
	a.tryFuse(g.seq, grp)
}

// tryFuse fuses a sequence when it is complete — or, with a
// LiveReaders oracle and a reader down, when the live quorum has
// reported. No-op otherwise (the group stays pending).
func (a *assembler) tryFuse(seq uint32, grp *seqGroup) {
	degraded := false
	if len(grp.byReader) < a.p.cfg.ExpectReaders {
		if !a.quorumReady(grp) {
			return
		}
		degraded = true
	}
	delete(a.online, seq)
	a.pending.Add(-1)
	now := a.p.now()
	a.done[seq] = now
	a.p.c.sequencesAssembled.Add(1)
	a.p.ins.sequenceAssembled()
	// The assemble span runs from the group's creation (first report
	// of the sequence) to completion: cross-reader skew, not CPU time.
	a.p.ins.span(stageAssemble, grp.created).EndAt(now)
	a.p.cfg.Tracer.Active(seq).Span(tracing.StageAssemble, "", "", grp.created, now, 0)
	a.fuse(seq, grp, degraded)
}

// quorumReady reports whether an incomplete sequence may fuse in
// degraded mode: a LiveReaders oracle is configured, every live
// expected reader has reported, and at least two of the reporting
// readers carry non-collinear arrays (Eq. 15's likelihood product
// needs two crossing bearing constraints to pin a point).
func (a *assembler) quorumReady(grp *seqGroup) bool {
	oracle := a.p.cfg.LiveReaders
	if oracle == nil {
		return false
	}
	for _, id := range oracle() {
		if _, expected := a.p.cfg.Arrays[id]; !expected {
			continue
		}
		if _, reported := grp.byReader[id]; !reported {
			return false
		}
	}
	arrs := make([]*rf.Array, 0, len(grp.byReader))
	for id := range grp.byReader {
		if arr := a.p.cfg.Arrays[id]; arr != nil {
			arrs = append(arrs, arr)
		}
	}
	for i := 0; i < len(arrs); i++ {
		for j := i + 1; j < len(arrs); j++ {
			if nonCollinear(arrs[i], arrs[j]) {
				return true
			}
		}
	}
	return false
}

// nonCollinear reports whether two arrays constrain two independent
// axes: their axes are not parallel, or they are parallel but offset
// sideways (two facing walls still triangulate; two arrays end-to-end
// on the same line do not).
func nonCollinear(a, b *rf.Array) bool {
	const eps = 1e-9
	if cz := a.Axis.X*b.Axis.Y - a.Axis.Y*b.Axis.X; cz > eps || cz < -eps {
		return true
	}
	d := b.Center().Sub(a.Center())
	oz := a.Axis.X*d.Y - a.Axis.Y*d.X
	return oz > eps || oz < -eps
}

// reevaluate re-runs the fusion gate over every pending sequence; run
// when the live-reader set changes (a reader going down may make
// already-received evidence sufficient).
func (a *assembler) reevaluate() {
	pending := make([]uint32, 0, len(a.online))
	for seq := range a.online {
		pending = append(pending, seq)
	}
	// Fuse in sequence order so a burst of unblocked sequences emits
	// deterministically.
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	for _, seq := range pending {
		if grp := a.online[seq]; grp != nil {
			a.tryFuse(seq, grp)
		}
	}
}

// fuse builds drop views for one complete (or quorum-degraded)
// sequence and localizes.
func (a *assembler) fuse(seq uint32, grp *seqGroup, degraded bool) {
	start := a.p.now()
	span := a.p.ins.span(stageFuse, start)
	trc := a.p.cfg.Tracer.Active(seq)
	if degraded {
		trc.MarkDegraded()
		trc.Event(tracing.EventDegradedQuorum,
			fmt.Sprintf("%d/%d readers", len(grp.byReader), a.p.cfg.ExpectReaders), start)
		if l := a.p.cfg.Logger; l != nil {
			l.Warn("degraded fusion", "seq", seq, "trace", trc.ID(),
				"reported", len(grp.byReader), "expected", a.p.cfg.ExpectReaders)
		}
	}
	// Deterministic view order: likelihood products are commutative
	// but not associative in floating point, so a stable order keeps
	// fixes bit-identical across runs and worker counts.
	ids := make([]string, 0, len(grp.byReader))
	for id := range grp.byReader {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var views []*loc.View
	for _, id := range ids {
		if v := a.fuser.BuildView(id, grp.byReader[id]); v != nil {
			views = append(views, v)
		}
	}
	fix := Fix{Seq: seq, Views: len(views), Readers: ids, Degraded: degraded, TraceID: trc.ID()}
	if len(views) < 2 {
		fix.Err = fmt.Errorf("pipeline: seq %d: evidence from only %d readers", seq, len(views))
	} else if res, err := a.localize(views); err != nil {
		fix.Err = err
	} else {
		fix.Pos = res.Pos
		fix.Confidence = res.Confidence
	}
	end := a.p.now()
	a.p.fuseHist.ObserveDuration(span.EndAt(end))
	trc.Span(tracing.StageFuse, "", "", start, end, 0)
	outcome := tracing.OutcomeFix
	if fix.Err != nil {
		outcome = tracing.OutcomeMiss
		trc.Event(tracing.EventMiss, fix.Err.Error(), end)
	}
	a.p.cfg.Tracer.Finish(seq, outcome, end)
	if fix.Err != nil {
		a.p.c.misses.Add(1)
	} else {
		a.p.c.fixes.Add(1)
		if degraded {
			a.p.c.degradedFixes.Add(1)
		}
	}
	a.p.ins.fix(fix.Err == nil, degraded)
	// Subscribers see every outcome before the channel send, so a
	// slow Fixes consumer cannot starve the live position feed.
	for _, fn := range a.p.fixSubs {
		fn(fix)
	}
	select {
	case a.p.fixes <- fix:
	case <-a.p.stop:
	}
}

// localize runs the grid search through the cached per-array
// GridIndex tables (bit-identical to loc.Localize), falling back to
// the direct search if a table cannot be built for some view.
func (a *assembler) localize(views []*loc.View) (loc.Result, error) {
	indexes := make([]*loc.GridIndex, len(views))
	for i, v := range views {
		k := gridIdxKey{arr: v.Array, bins: len(v.Angles)}
		g, ok := a.gridIdx[k]
		if !ok {
			var err error
			g, err = loc.NewGridIndex(v.Array, a.p.cfg.Grid, len(v.Angles))
			if err != nil {
				return loc.Localize(views, a.p.cfg.Grid, a.p.cfg.Loc)
			}
			a.gridIdx[k] = g
		}
		indexes[i] = g
	}
	return loc.LocalizeIndexed(views, indexes, a.p.cfg.Grid, a.p.cfg.Loc)
}

// sweep evicts sequence groups older than SeqTTL and prunes the done
// set. Returns how many groups were evicted.
func (a *assembler) sweep(now time.Time) int {
	evicted := 0
	for seq, grp := range a.online {
		if now.Sub(grp.created) >= a.p.cfg.SeqTTL {
			delete(a.online, seq)
			a.pending.Add(-1)
			a.done[seq] = now
			a.p.c.sequencesEvicted.Add(1)
			a.p.ins.sequenceEvicted("ttl")
			trc := a.p.cfg.Tracer.Active(seq)
			trc.Event(tracing.EventTTLEvicted,
				fmt.Sprintf("%d/%d readers after %v", len(grp.byReader), a.p.cfg.ExpectReaders, now.Sub(grp.created)), now)
			a.p.cfg.Tracer.Finish(seq, tracing.OutcomeEvicted, now)
			if l := a.p.cfg.Logger; l != nil {
				l.Warn("sequence evicted", "seq", seq, "trace", trc.ID(), "reason", "ttl",
					"reported", len(grp.byReader), "expected", a.p.cfg.ExpectReaders)
			}
			evicted++
		}
	}
	for seq, t := range a.done {
		if now.Sub(t) >= 4*a.p.cfg.SeqTTL {
			delete(a.done, seq)
		}
	}
	return evicted
}

// capPending enforces MaxPendingSeqs by evicting the oldest group —
// the memory backstop when a reader dies and TTL has not fired yet.
func (a *assembler) capPending() {
	for len(a.online) > a.p.cfg.MaxPendingSeqs {
		var oldest uint32
		var oldestT time.Time
		first := true
		for seq, grp := range a.online {
			if first || grp.created.Before(oldestT) {
				oldest, oldestT, first = seq, grp.created, false
			}
		}
		delete(a.online, oldest)
		a.pending.Add(-1)
		now := a.p.now()
		a.done[oldest] = now
		a.p.c.sequencesEvicted.Add(1)
		a.p.ins.sequenceEvicted("cap")
		trc := a.p.cfg.Tracer.Active(oldest)
		trc.Event(tracing.EventCapEvicted,
			fmt.Sprintf("pending over %d", a.p.cfg.MaxPendingSeqs), now)
		a.p.cfg.Tracer.Finish(oldest, tracing.OutcomeEvicted, now)
		if l := a.p.cfg.Logger; l != nil {
			l.Warn("sequence evicted", "seq", oldest, "trace", trc.ID(), "reason", "cap")
		}
	}
}

// pendingSequences reports how many sequences are mid-assembly from
// the atomic mirror — a properly synchronized read that may lag the
// assembler's map by one in-flight mutation, and is exact once the
// pipeline is drained.
func (a *assembler) pendingSequences() int { return int(a.pending.Load()) }
