package pipeline

import (
	"math"
	"sort"
	"testing"

	"dwatch/internal/calib"
	"dwatch/internal/channel"
	"dwatch/internal/dwatch"
	"dwatch/internal/geom"
	"dwatch/internal/llrp"
	"dwatch/internal/loc"
	"dwatch/internal/pmusic"
	"dwatch/internal/reader"
	"dwatch/internal/rf"
	"dwatch/internal/sim"
)

// genReports simulates the full acquisition chain once (2 baseline
// rounds, then onlineRounds with a target crossing the table) and
// returns the reports in arrival order. Generated once per scenario so
// the synchronous reference and every pipeline run see identical
// bytes.
func genReports(tb testing.TB, sc *sim.Scenario, onlineRounds, snapshots int) []*llrp.ROAccessReport {
	tb.Helper()
	var reports []*llrp.ROAccessReport
	seq := uint32(0)
	send := func(targets []channel.Target) {
		seq++
		for _, rd := range sc.Readers {
			snaps, err := rd.Acquire(sc.Env, sc.Tags, targets, reader.AcquireOptions{Snapshots: snapshots})
			if err != nil {
				tb.Fatal(err)
			}
			rep := &llrp.ROAccessReport{ReaderID: rd.ID, Seq: seq}
			for _, sn := range snaps {
				x, err := calib.Apply(sn.Data, rd.Offsets)
				if err != nil {
					tb.Fatal(err)
				}
				snapshot := make([][]complex128, x.Rows)
				for r := 0; r < x.Rows; r++ {
					snapshot[r] = append([]complex128(nil), x.Data[r*x.Cols:(r+1)*x.Cols]...)
				}
				rep.Reports = append(rep.Reports, llrp.TagReport{EPC: sn.Tag.EPC, Snapshot: snapshot})
			}
			reports = append(reports, rep)
		}
	}
	send(nil)
	send(nil)
	for k := 0; k < onlineRounds; k++ {
		f := float64(k+1) / float64(onlineRounds+1)
		pos := geom.Pt(sc.Cfg.Width*(0.3+0.4*f), sc.Cfg.Depth/2, sc.Cfg.ArrayZ)
		send([]channel.Target{channel.HumanTarget(pos)})
	}
	return reports
}

// syncFixes is the pre-pipeline synchronous reference: the exact
// ingest logic dwatchd/dwatch-replay ran inline, with views built in
// sorted reader order (the pipeline's deterministic order).
func syncFixes(tb testing.TB, sc *sim.Scenario, reports []*llrp.ROAccessReport) map[uint32]loc.Result {
	tb.Helper()
	arrays := map[string]*rf.Array{}
	for _, r := range sc.Readers {
		arrays[r.ID] = r.Array
	}
	fuser := dwatch.NewFuser(arrays, dwatch.Config{})
	rounds := map[string]int{}
	online := map[uint32]map[string]map[string]*pmusic.Spectrum{}
	fixes := map[uint32]loc.Result{}
	for _, rep := range reports {
		arr := arrays[rep.ReaderID]
		spectra := map[string]*pmusic.Spectrum{}
		for _, tr := range rep.Reports {
			x, err := dwatch.RawSnapshotsToMatrix(tr.Snapshot)
			if err != nil {
				continue
			}
			sp, err := pmusic.Compute(x, arr, pmusic.Options{})
			if err != nil {
				continue
			}
			spectra[string(tr.EPC)] = sp
		}
		round := rounds[rep.ReaderID]
		rounds[rep.ReaderID] = round + 1
		if round < 2 {
			for epc, sp := range spectra {
				fuser.AddBaseline(rep.ReaderID, []byte(epc), sp)
			}
			if round == 1 {
				fuser.FinishBaseline()
			}
			continue
		}
		bySeq := online[rep.Seq]
		if bySeq == nil {
			bySeq = map[string]map[string]*pmusic.Spectrum{}
			online[rep.Seq] = bySeq
		}
		bySeq[rep.ReaderID] = spectra
		if len(bySeq) < len(sc.Readers) {
			continue
		}
		delete(online, rep.Seq)
		ids := make([]string, 0, len(bySeq))
		for id := range bySeq {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		var views []*loc.View
		for _, id := range ids {
			if v := fuser.BuildView(id, bySeq[id]); v != nil {
				views = append(views, v)
			}
		}
		if len(views) < 2 {
			continue
		}
		res, err := loc.Localize(views, sc.Grid, loc.Options{})
		if err != nil {
			continue
		}
		fixes[rep.Seq] = res
	}
	return fixes
}

// pipelineFixes pumps the reports through a pipeline with the given
// worker count and returns the successful fixes by sequence.
func pipelineFixes(tb testing.TB, sc *sim.Scenario, reports []*llrp.ROAccessReport, workers int) map[uint32]Fix {
	return pipelineFixesSharded(tb, sc, reports, workers, 0)
}

// pipelineFixesSharded is pipelineFixes with an explicit fusion shard
// count (0 = default).
func pipelineFixesSharded(tb testing.TB, sc *sim.Scenario, reports []*llrp.ROAccessReport, workers, shards int) map[uint32]Fix {
	tb.Helper()
	arrays := map[string]*rf.Array{}
	for _, r := range sc.Readers {
		arrays[r.ID] = r.Array
	}
	p, err := newFromConfig(Config{Arrays: arrays, Grid: sc.Grid, Workers: workers, AssemblerShards: shards})
	if err != nil {
		tb.Fatal(err)
	}
	p.Start()
	wait := drainFixes(p)
	for _, rep := range reports {
		if err := p.Ingest(rep); err != nil {
			tb.Fatal(err)
		}
	}
	p.Drain()
	out := map[uint32]Fix{}
	for _, f := range wait() {
		if f.Err == nil {
			out[f.Seq] = f
		}
	}
	return out
}

// TestEndToEndMatchesSynchronous drives simulated reports through the
// full concurrent pipeline and asserts it emits the same fixes as the
// synchronous ingest path it replaced.
func TestEndToEndMatchesSynchronous(t *testing.T) {
	sc, err := sim.Build(sim.TableConfig())
	if err != nil {
		t.Fatal(err)
	}
	reports := genReports(t, sc, 3, 6)
	want := syncFixes(t, sc, reports)
	got := pipelineFixes(t, sc, reports, 4)

	if len(want) == 0 {
		t.Fatal("reference path produced no fixes — scenario too weak to compare")
	}
	if len(got) != len(want) {
		t.Fatalf("pipeline fixes = %d, reference = %d", len(got), len(want))
	}
	for seq, ref := range want {
		f, ok := got[seq]
		if !ok {
			t.Fatalf("seq %d: fixed by reference, missed by pipeline", seq)
		}
		if d := math.Hypot(f.Pos.X-ref.Pos.X, f.Pos.Y-ref.Pos.Y); d > 1e-9 {
			t.Fatalf("seq %d: pipeline fix (%.6f, %.6f) vs reference (%.6f, %.6f), drift %g",
				seq, f.Pos.X, f.Pos.Y, ref.Pos.X, ref.Pos.Y, d)
		}
		if math.Abs(f.Confidence-ref.Confidence) > 1e-9 {
			t.Fatalf("seq %d: confidence %v vs %v", seq, f.Confidence, ref.Confidence)
		}
	}
}

// TestWorkerCountIndependence: fixes must be bit-identical no matter
// how many workers race over the spectra.
func TestWorkerCountIndependence(t *testing.T) {
	sc, err := sim.Build(sim.TableConfig())
	if err != nil {
		t.Fatal(err)
	}
	reports := genReports(t, sc, 2, 6)
	one := pipelineFixes(t, sc, reports, 1)
	many := pipelineFixes(t, sc, reports, 8)
	if len(one) != len(many) {
		t.Fatalf("fix counts differ: 1 worker %d, 8 workers %d", len(one), len(many))
	}
	for seq, a := range one {
		b, ok := many[seq]
		if !ok {
			t.Fatalf("seq %d only fixed with 1 worker", seq)
		}
		if a.Pos != b.Pos || a.Confidence != b.Confidence {
			t.Fatalf("seq %d: 1-worker %+v != 8-worker %+v", seq, a, b)
		}
	}
}

// TestShardCountIndependence: fixes must be bit-identical no matter
// how many fusion shards split the sequence space — the shard mapping
// decides only which goroutine fuses a sequence, never the arithmetic
// (views are built in sorted reader order either way).
func TestShardCountIndependence(t *testing.T) {
	sc, err := sim.Build(sim.TableConfig())
	if err != nil {
		t.Fatal(err)
	}
	reports := genReports(t, sc, 2, 6)
	one := pipelineFixesSharded(t, sc, reports, 2, 1)
	many := pipelineFixesSharded(t, sc, reports, 2, 8)
	if len(one) == 0 {
		t.Fatal("no fixes to compare")
	}
	if len(one) != len(many) {
		t.Fatalf("fix counts differ: 1 shard %d, 8 shards %d", len(one), len(many))
	}
	for seq, a := range one {
		b, ok := many[seq]
		if !ok {
			t.Fatalf("seq %d only fixed with 1 shard", seq)
		}
		if a.Pos != b.Pos || a.Confidence != b.Confidence {
			t.Fatalf("seq %d: 1-shard %+v != 8-shard %+v", seq, a, b)
		}
	}
}

// TestRestoredBaselineSkipsBaselineRounds: a pipeline seeded with a
// previously-built fuser treats every report as online evidence and
// reproduces the original online fixes.
func TestRestoredBaselineSkipsBaselineRounds(t *testing.T) {
	sc, err := sim.Build(sim.TableConfig())
	if err != nil {
		t.Fatal(err)
	}
	reports := genReports(t, sc, 2, 6)
	arrays := map[string]*rf.Array{}
	for _, r := range sc.Readers {
		arrays[r.ID] = r.Array
	}

	// First pipeline: full run, keep its fuser and fixes.
	p1, err := newFromConfig(Config{Arrays: arrays, Grid: sc.Grid})
	if err != nil {
		t.Fatal(err)
	}
	p1.Start()
	wait1 := drainFixes(p1)
	for _, rep := range reports {
		if err := p1.Ingest(rep); err != nil {
			t.Fatal(err)
		}
	}
	p1.Drain()
	first := map[uint32]Fix{}
	for _, f := range wait1() {
		if f.Err == nil {
			first[f.Seq] = f
		}
	}

	// Second pipeline: restored fuser, online reports only.
	p2, err := newFromConfig(Config{Arrays: arrays, Grid: sc.Grid, Restored: p1.Fuser()})
	if err != nil {
		t.Fatal(err)
	}
	p2.Start()
	wait2 := drainFixes(p2)
	perReader := map[string]int{}
	for _, rep := range reports {
		if perReader[rep.ReaderID]++; perReader[rep.ReaderID] <= 2 {
			continue // skip the baseline rounds
		}
		if err := p2.Ingest(rep); err != nil {
			t.Fatal(err)
		}
	}
	p2.Drain()
	second := map[uint32]Fix{}
	for _, f := range wait2() {
		if f.Err == nil {
			second[f.Seq] = f
		}
	}
	if st := p2.Stats(); st.BaselinesConfirmed != 0 {
		t.Fatalf("restored pipeline confirmed %d baselines, want 0", st.BaselinesConfirmed)
	}
	if len(first) == 0 {
		t.Fatal("no fixes to compare")
	}
	if len(second) != len(first) {
		t.Fatalf("restored run fixes = %d, original = %d", len(second), len(first))
	}
	for seq, a := range first {
		b := second[seq]
		if a.Pos != b.Pos {
			t.Fatalf("seq %d: restored fix %+v != original %+v", seq, b, a)
		}
	}
}
