package pipeline

import (
	"time"

	"dwatch/internal/obs"
)

// Metric names the pipeline exports when a registry is attached.
// Label conventions: reader= is the deployment reader ID, result=
// discriminates outcomes inside one flow, stage= (on the shared
// obs.SpanFamily histograms) is ingest|spectrum|assemble|fuse.
const (
	metricReports          = "dwatch_pipeline_reports_total"
	metricReportsRejected  = "dwatch_pipeline_reports_rejected_total"
	metricSnapshots        = "dwatch_pipeline_snapshots_total"
	metricSnapshotsDropped = "dwatch_pipeline_snapshots_dropped_total"
	metricSpectra          = "dwatch_pipeline_spectra_total"
	metricBaselines        = "dwatch_pipeline_baselines_confirmed_total"
	metricSequences        = "dwatch_pipeline_sequences_total"
	metricLateReports      = "dwatch_pipeline_late_reports_total"
	metricFixes            = "dwatch_pipeline_fixes_total"
	metricQueueDepth       = "dwatch_pipeline_queue_depth"
	metricPendingSeqs      = "dwatch_pipeline_pending_sequences"
)

// Stage labels on the obs.SpanFamily duration histograms, in flow
// order. The assemble span measures first-report-to-complete per
// sequence, not goroutine work, so it reflects cross-reader skew.
const (
	stageIngest   = "ingest"
	stageSpectrum = "spectrum"
	stageAssemble = "assemble"
	stageFuse     = "fuse"
)

// instruments mirrors the pipeline's atomic counters onto an
// obs.Registry so a live deployment exposes them incrementally instead
// of only via end-of-run Stats dumps. All labeled children are
// resolved once at construction (the reader set is fixed for the
// pipeline's lifetime), so steady-state increments are single atomics
// with no registry locking. A nil *instruments (no registry attached)
// makes every method a no-op — the uninstrumented hot path pays one
// nil check per site.
type instruments struct {
	reg *obs.Registry

	reports   map[string]*obs.Counter // by reader ID
	rejected  *obs.Counter
	snaps     *obs.Counter
	snapsDrop *obs.Counter

	spectraOK     *obs.Counter
	spectraFailed *obs.Counter

	baselines    map[string]*obs.Counter // by reader ID
	seqAssembled *obs.Counter
	seqEvicted   *obs.Counter
	late         *obs.Counter
	fixOK        *obs.Counter
	fixDegraded  *obs.Counter
	fixMiss      *obs.Counter
}

// newInstruments registers the pipeline's metric families and gauges.
// Called from New after the assembler exists; returns nil when no
// registry is attached.
func newInstruments(reg *obs.Registry, p *Pipeline) *instruments {
	if reg == nil {
		return nil
	}
	in := &instruments{
		reg:       reg,
		reports:   map[string]*obs.Counter{},
		baselines: map[string]*obs.Counter{},
	}
	reports := reg.CounterVec(metricReports, "Reports accepted from known readers.", "reader")
	baselines := reg.CounterVec(metricBaselines, "Baseline confirmations per reader.", "reader")
	for id := range p.cfg.Arrays {
		in.reports[id] = reports.With(id)
		in.baselines[id] = baselines.With(id)
	}
	in.rejected = reg.Counter(metricReportsRejected, "Reports rejected (unknown reader).")
	in.snaps = reg.Counter(metricSnapshots, "Per-tag snapshot jobs enqueued.")
	in.snapsDrop = reg.Counter(metricSnapshotsDropped, "Snapshot jobs shed by the drop-oldest overload policy.")
	spectra := reg.CounterVec(metricSpectra, "P-MUSIC spectrum computations by result.", "result")
	in.spectraOK = spectra.With("ok")
	in.spectraFailed = spectra.With("failed")
	sequences := reg.CounterVec(metricSequences, "Acquisition sequences by outcome.", "outcome")
	in.seqAssembled = sequences.With("assembled")
	in.seqEvicted = sequences.With("evicted")
	in.late = reg.Counter(metricLateReports, "Reports for already-fused or evicted sequences.")
	fixes := reg.CounterVec(metricFixes, "Fusion outcomes.", "result")
	in.fixOK = fixes.With("fix")
	in.fixDegraded = fixes.With("degraded")
	in.fixMiss = fixes.With("miss")
	reg.GaugeFunc(metricQueueDepth, "Instantaneous report-queue occupancy.",
		func() float64 { return float64(len(p.jobs)) })
	reg.GaugeFunc(metricPendingSeqs, "Sequences currently mid-assembly.",
		func() float64 { return float64(p.asm.pendingSequences()) })
	return in
}

// span starts a stage span on the shared obs.SpanFamily histogram. On
// a nil receiver the span still measures (EndAt returns the elapsed
// time) but records nothing, so call sites can reuse its duration for
// the legacy Stats digests unconditionally.
func (in *instruments) span(stage string, start time.Time) obs.Span {
	if in == nil {
		return (*obs.Registry)(nil).StartSpanAt(stage, start)
	}
	return in.reg.StartSpanAt(stage, start)
}

func (in *instruments) reportAccepted(reader string) {
	if in == nil {
		return
	}
	in.reports[reader].Inc()
}

func (in *instruments) reportRejected() {
	if in == nil {
		return
	}
	in.rejected.Inc()
}

// snapshotsEnqueued counts a whole report's tags in one add — the
// batched-dispatch ingest path touches the counter once per report.
func (in *instruments) snapshotsEnqueued(n int) {
	if in == nil {
		return
	}
	in.snaps.Add(uint64(n))
}

// snapshotsDropped counts every tag of a shed report.
func (in *instruments) snapshotsDropped(n int) {
	if in == nil {
		return
	}
	in.snapsDrop.Add(uint64(n))
}

func (in *instruments) spectrum(ok bool) {
	if in == nil {
		return
	}
	if ok {
		in.spectraOK.Inc()
	} else {
		in.spectraFailed.Inc()
	}
}

func (in *instruments) baselineConfirmed(reader string) {
	if in == nil {
		return
	}
	in.baselines[reader].Inc()
}

func (in *instruments) sequenceAssembled() {
	if in == nil {
		return
	}
	in.seqAssembled.Inc()
}

// sequenceEvicted counts an eviction and records the cause (ttl or
// cap) as an event — the distinction Stats folds into one counter.
func (in *instruments) sequenceEvicted(cause string) {
	if in == nil {
		return
	}
	in.seqEvicted.Inc()
	in.reg.Event("sequence_evicted_" + cause)
}

func (in *instruments) lateReport() {
	if in == nil {
		return
	}
	in.late.Inc()
}

// fix counts a fusion outcome. A degraded fix (fused from the live
// quorum while a reader was down) lands in result="degraded" so
// dashboards can distinguish full-evidence from quorum fixes.
func (in *instruments) fix(ok, degraded bool) {
	if in == nil {
		return
	}
	switch {
	case !ok:
		in.fixMiss.Inc()
	case degraded:
		in.fixDegraded.Inc()
	default:
		in.fixOK.Inc()
	}
}
