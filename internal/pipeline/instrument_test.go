package pipeline

import (
	"sync"
	"testing"

	"dwatch/internal/obs"
	"dwatch/internal/rf"
	"dwatch/internal/sim"
)

// instrumentedRun pushes one simulated session through a pipeline with
// a registry attached and returns the pipeline, its registry, and the
// fixes.
func instrumentedRun(t *testing.T, workers int) (*Pipeline, *obs.Registry, []Fix) {
	t.Helper()
	sc, err := sim.Build(sim.TableConfig())
	if err != nil {
		t.Fatal(err)
	}
	reports := genReports(t, sc, 3, 6)
	arrays := map[string]*rf.Array{}
	for _, r := range sc.Readers {
		arrays[r.ID] = r.Array
	}
	reg := obs.NewRegistry()
	p, err := newFromConfig(Config{Arrays: arrays, Grid: sc.Grid, Workers: workers, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	wait := drainFixes(p)
	for _, rep := range reports {
		if err := p.Ingest(rep); err != nil {
			t.Fatal(err)
		}
	}
	p.Drain()
	return p, reg, wait()
}

// TestInstrumentsMirrorStats: after a drained run, every registry
// counter must agree exactly with the Stats snapshot — the two views
// are fed from the same sites.
func TestInstrumentsMirrorStats(t *testing.T) {
	p, reg, fixes := instrumentedRun(t, 4)
	if len(fixes) == 0 {
		t.Fatal("no fixes produced")
	}
	st := p.Stats()
	s := reg.Snapshot()

	var reports float64
	for id, v := range s {
		if len(id) > len(metricReports) && id[:len(metricReports)+1] == metricReports+"{" {
			reports += v
		}
	}
	if reports != float64(st.ReportsIn) {
		t.Fatalf("reports metric = %v, stats = %d", reports, st.ReportsIn)
	}
	checks := map[string]float64{
		metricSnapshots:                           float64(st.SnapshotsIn),
		metricSpectra + `{result="ok"}`:           float64(st.SpectraComputed),
		metricSpectra + `{result="failed"}`:       float64(st.SpectraFailed),
		metricSequences + `{outcome="assembled"}`: float64(st.SequencesAssembled),
		metricFixes + `{result="fix"}`:            float64(st.Fixes),
		metricFixes + `{result="miss"}`:           float64(st.Misses),
		metricQueueDepth:                          0,
		metricPendingSeqs:                         0,
	}
	for id, want := range checks {
		if got, ok := s[id]; !ok || got != want {
			t.Errorf("%s = %v (present %v), want %v", id, got, ok, want)
		}
	}
	// One baseline confirmation per reader.
	var baselines float64
	for id, v := range s {
		if len(id) > len(metricBaselines) && id[:len(metricBaselines)+1] == metricBaselines+"{" {
			baselines += v
		}
	}
	if baselines != float64(st.BaselinesConfirmed) {
		t.Fatalf("baseline metric = %v, stats = %d", baselines, st.BaselinesConfirmed)
	}
	// Every stage span family recorded samples.
	for _, stage := range []string{stageIngest, stageSpectrum, stageAssemble, stageFuse} {
		id := obs.SpanFamily + `_count{stage="` + stage + `"}`
		if s[id] == 0 {
			t.Errorf("stage %q recorded no spans (snapshot %v)", stage, s[id])
		}
	}
	// Spectrum spans and the Stats compute digest are the same
	// measurements.
	if got := s[obs.SpanFamily+`_count{stage="spectrum"}`]; got != float64(st.ComputeLatency.Count) {
		t.Fatalf("spectrum spans = %v, compute digest count = %d", got, st.ComputeLatency.Count)
	}
}

// TestUninstrumentedUnchanged: without a registry the pipeline still
// runs and Stats still counts — the nil-instrument path.
func TestUninstrumentedUnchanged(t *testing.T) {
	sc, err := sim.Build(sim.TableConfig())
	if err != nil {
		t.Fatal(err)
	}
	reports := genReports(t, sc, 2, 6)
	with := pipelineFixes(t, sc, reports, 2)
	if len(with) == 0 {
		t.Fatal("no fixes")
	}
}

// TestSubscribeFixes: subscribers observe every outcome, in assembler
// order, before the Fixes channel consumer needs to keep up.
func TestSubscribeFixes(t *testing.T) {
	sc, err := sim.Build(sim.TableConfig())
	if err != nil {
		t.Fatal(err)
	}
	reports := genReports(t, sc, 3, 6)
	arrays := map[string]*rf.Array{}
	for _, r := range sc.Readers {
		arrays[r.ID] = r.Array
	}
	p, err := newFromConfig(Config{Arrays: arrays, Grid: sc.Grid, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seen []Fix
	p.SubscribeFixes(func(f Fix) {
		mu.Lock()
		seen = append(seen, f)
		mu.Unlock()
	})
	p.Start()
	wait := drainFixes(p)
	for _, rep := range reports {
		if err := p.Ingest(rep); err != nil {
			t.Fatal(err)
		}
	}
	p.Drain()
	fromChan := wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(fromChan) {
		t.Fatalf("subscriber saw %d outcomes, channel delivered %d", len(seen), len(fromChan))
	}
	if len(seen) == 0 {
		t.Fatal("no outcomes at all")
	}
}

// TestSubscribeAfterStartPanics: the subscription list is read
// lock-free from the assembler, so late registration must refuse.
func TestSubscribeAfterStartPanics(t *testing.T) {
	sc, err := sim.Build(sim.TableConfig())
	if err != nil {
		t.Fatal(err)
	}
	arrays := map[string]*rf.Array{}
	for _, r := range sc.Readers {
		arrays[r.ID] = r.Array
	}
	p, err := newFromConfig(Config{Arrays: arrays, Grid: sc.Grid})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("SubscribeFixes after Start did not panic")
		}
	}()
	p.SubscribeFixes(func(Fix) {})
}

// TestStatsRaceWithAssembler hammers Stats (and the registry's gauge
// funcs, which read the same assembler mirror) from several goroutines
// while a full session streams through the pipeline. Run under
// -race this is the proof that PendingSequences and friends are
// properly synchronized against the assembler.
func TestStatsRaceWithAssembler(t *testing.T) {
	sc, err := sim.Build(sim.TableConfig())
	if err != nil {
		t.Fatal(err)
	}
	reports := genReports(t, sc, 3, 6)
	arrays := map[string]*rf.Array{}
	for _, r := range sc.Readers {
		arrays[r.ID] = r.Array
	}
	reg := obs.NewRegistry()
	p, err := newFromConfig(Config{Arrays: arrays, Grid: sc.Grid, Workers: 4, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	wait := drainFixes(p)

	stop := make(chan struct{})
	var rd sync.WaitGroup
	for i := 0; i < 4; i++ {
		rd.Add(1)
		go func() {
			defer rd.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := p.Stats()
				if st.PendingSequences < 0 {
					t.Error("negative pending sequences")
					return
				}
				reg.Snapshot() // exercises the gauge funcs too
			}
		}()
	}
	for _, rep := range reports {
		if err := p.Ingest(rep); err != nil {
			t.Fatal(err)
		}
	}
	p.Drain()
	close(stop)
	rd.Wait()
	wait()
	if st := p.Stats(); st.PendingSequences != 0 {
		t.Fatalf("pending sequences after drain = %d, want 0", st.PendingSequences)
	}
}
