package pipeline

import (
	"sync/atomic"

	"dwatch/internal/stats"
)

// counters is the pipeline's hot-path instrumentation: plain atomics,
// updated lock-free from every stage.
type counters struct {
	reportsIn          atomic.Uint64
	reportsRejected    atomic.Uint64
	snapshotsIn        atomic.Uint64
	snapshotsDropped   atomic.Uint64
	spectraComputed    atomic.Uint64
	spectraFailed      atomic.Uint64
	baselinesConfirmed atomic.Uint64
	sequencesAssembled atomic.Uint64
	sequencesEvicted   atomic.Uint64
	lateReports        atomic.Uint64
	fixes              atomic.Uint64
	degradedFixes      atomic.Uint64
	misses             atomic.Uint64
}

// Stats is a point-in-time snapshot of the pipeline's health: flow
// counters per stage, the current queue depth, and per-stage latency
// digests.
type Stats struct {
	// Ingest stage.
	ReportsIn        uint64 // reports accepted from known readers
	ReportsRejected  uint64 // reports from unknown readers
	SnapshotsIn      uint64 // per-tag snapshots enqueued (batched per report)
	SnapshotsDropped uint64 // snapshots shed by the DropOldest policy

	// Spectrum worker pool.
	SpectraComputed uint64 // successful P-MUSIC runs
	SpectraFailed   uint64 // decode or compute failures

	// Assembler / fusion.
	BaselinesConfirmed uint64 // readers whose baseline completed
	SequencesAssembled uint64 // sequences with evidence from every reader
	SequencesEvicted   uint64 // incomplete sequences dropped (TTL or cap)
	LateReports        uint64 // reports for already-fused/evicted sequences
	Fixes              uint64
	DegradedFixes      uint64 // fixes fused from the live quorum with a reader down
	Misses             uint64

	// QueueDepth is the instantaneous report-queue occupancy (whole
	// reports — dispatch is batched, one queue slot per report).
	QueueDepth int
	// PendingSequences is how many sequences are mid-assembly across
	// all fusion shards, sampled from the shared atomic mirror of the
	// shard group tables.
	PendingSequences int

	// ComputeLatency digests per-snapshot decode+P-MUSIC time (s).
	ComputeLatency stats.HistogramSummary
	// FuseLatency digests per-sequence view-building+localize time (s).
	FuseLatency stats.HistogramSummary
}

// Stats snapshots the pipeline counters. Safe to call at any time from
// any goroutine: every field is backed by an atomic or a lock — the
// fusion shards publish their pending-sequence count through a shared
// atomic mirror, so there is no unsynchronized read of shard state
// (TestStatsRaceWithAssembler drives this under the race detector).
// The snapshot is not a consistent cut across stages: counters are
// sampled independently while work is in flight, and only settle into
// a mutually consistent view after Drain.
func (p *Pipeline) Stats() Stats {
	return Stats{
		ReportsIn:          p.c.reportsIn.Load(),
		ReportsRejected:    p.c.reportsRejected.Load(),
		SnapshotsIn:        p.c.snapshotsIn.Load(),
		SnapshotsDropped:   p.c.snapshotsDropped.Load(),
		SpectraComputed:    p.c.spectraComputed.Load(),
		SpectraFailed:      p.c.spectraFailed.Load(),
		BaselinesConfirmed: p.c.baselinesConfirmed.Load(),
		SequencesAssembled: p.c.sequencesAssembled.Load(),
		SequencesEvicted:   p.c.sequencesEvicted.Load(),
		LateReports:        p.c.lateReports.Load(),
		Fixes:              p.c.fixes.Load(),
		DegradedFixes:      p.c.degradedFixes.Load(),
		Misses:             p.c.misses.Load(),
		QueueDepth:         len(p.jobs),
		PendingSequences:   p.asm.pendingSequences(),
		ComputeLatency:     p.decodeHist.Summary(),
		FuseLatency:        p.fuseHist.Summary(),
	}
}
