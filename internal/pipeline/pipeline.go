// Package pipeline is the concurrent streaming localization pipeline:
// the staged architecture that lets the D-Watch server keep up with
// many readers forwarding every backscatter packet (Section 5's
// deployment) instead of processing each RO_ACCESS_REPORT inline under
// one lock.
//
// Stages:
//
//  1. Ingest — Ingest validates a report against the deployment,
//     stamps it with the reader's round number, and enqueues the whole
//     report as one job on a bounded queue (one channel operation per
//     report, however many tags it carries). When the queue is full
//     the configured OverloadPolicy decides: Block applies
//     backpressure to the reader connection, DropOldest sheds the
//     stalest queued report so fresh evidence wins.
//  2. Spectrum workers — a pool of Workers goroutines decodes each
//     job's snapshots and runs P-MUSIC per tag; this is the dominant
//     cost and the stage that scales with cores.
//  3. Sequencing — each worker hands its completed report to the
//     owning reader's round sequencer (a per-reader lock, no shared
//     funnel), which applies reports in round order so baselines are
//     built exactly as in the synchronous path even when spectra
//     finish out of order across the pool.
//  4. Sharded fusion — online reports route to seq%N shard goroutines
//     that own the per-sequence grouping state. When a sequence has
//     evidence from every reader, its shard builds drop views and
//     runs the grid search, emitting a Fix — independent sequences
//     fuse in parallel instead of serializing behind one assembler.
//     Incomplete sequences are evicted after SeqTTL (and capped
//     globally at MaxPendingSeqs) so a dead reader cannot leak
//     memory; reports for evicted sequences are counted as late, not
//     crashed on.
//
// The pipeline exposes a Stats snapshot (counters, queue depth, and
// per-stage latency histograms) and a Start/Drain/Close lifecycle.
// The shared dwatch.Fuser is guarded by a read-write lock: baseline
// construction (startup-only) takes the write side, the shards'
// read-only BuildView calls the read side.
package pipeline

import (
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dwatch/internal/dwatch"
	"dwatch/internal/geom"
	"dwatch/internal/health"
	"dwatch/internal/llrp"
	"dwatch/internal/loc"
	"dwatch/internal/obs"
	"dwatch/internal/pmusic"
	"dwatch/internal/rf"
	"dwatch/internal/stats"
	"dwatch/internal/tracing"
)

// OverloadPolicy selects what Ingest does when the report queue is
// full.
type OverloadPolicy int

const (
	// Block makes Ingest wait for queue space: backpressure propagates
	// to the reader's TCP connection. The default.
	Block OverloadPolicy = iota
	// DropOldest sheds the oldest queued report to make room, so a
	// burst degrades evidence quality instead of latency. Shed reports
	// still complete (with no spectra) so sequence assembly never
	// stalls on a dropped one.
	DropOldest
)

func (p OverloadPolicy) String() string {
	switch p {
	case Block:
		return "block"
	case DropOldest:
		return "drop-oldest"
	default:
		return fmt.Sprintf("OverloadPolicy(%d)", int(p))
	}
}

// Config parameterizes a Pipeline.
type Config struct {
	// Arrays maps reader IDs to their array geometries — the
	// deployment knowledge. Reports from readers not listed here are
	// rejected. Required.
	Arrays map[string]*rf.Array
	// ExpectReaders is how many distinct readers must report a
	// sequence before it is fused. 0 = len(Arrays).
	ExpectReaders int
	// Grid is the localization search area. Required.
	Grid loc.Grid

	// Workers sizes the spectrum worker pool. 0 = GOMAXPROCS.
	Workers int
	// QueueSize bounds the report job queue. 0 = 256.
	QueueSize int
	// Overload selects the full-queue policy.
	Overload OverloadPolicy
	// AssemblerShards sizes the sharded fusion stage: sequences are
	// distributed seq%N across N shard goroutines, each owning its
	// groups' state, so independent sequences fuse in parallel.
	// 0 = GOMAXPROCS. 1 restores a single serialized fusion stage.
	AssemblerShards int

	// BaselineRounds is how many initial reports per reader feed the
	// baseline instead of online localization. 0 = 2 (the paper's
	// reference + confirmation rounds). Ignored when Restored is set.
	BaselineRounds int
	// Restored supplies a fuser with a previously saved baseline; all
	// readers then start directly in the online phase.
	Restored *dwatch.Fuser

	// SeqTTL evicts incomplete sequences older than this. 0 = 30 s.
	SeqTTL time.Duration
	// MaxPendingSeqs caps concurrently-assembling sequences across all
	// shards; at the cap the globally-oldest group is evicted before a
	// new one is admitted. 0 = 1024.
	MaxPendingSeqs int

	// Fuser tunes the evidence fuser (thresholds, drop floor).
	Fuser dwatch.Config
	// PMusic tunes the spectrum computation.
	PMusic pmusic.Options
	// Loc tunes the localizer.
	Loc loc.Options

	// OnBaseline, when set, is called after a reader's baseline is
	// confirmed, with the number of tags whose spectra fed the
	// confirmation round. It runs with the fuser held exclusively —
	// the fuser is safe to snapshot (state persistence) for the
	// duration of the callback.
	OnBaseline func(readerID string, tags int)

	// LiveReaders, when set, supplies the live-reader set (reader IDs,
	// any order) and enables quorum-degraded fusion: a sequence no
	// longer waits for ExpectReaders when a reader is down — it fuses
	// as soon as every *live* expected reader has reported, provided
	// at least two reporting readers have non-collinear arrays (a
	// collinear pair constrains only one axis and cannot localize).
	// Such fixes are marked Degraded. Call NotifyLiveChange after the
	// set changes. Nil preserves the strict ExpectReaders gate.
	LiveReaders func() []string

	// Obs, when set, attaches the pipeline to a metrics registry: the
	// flow counters feed labeled counter families incrementally, queue
	// depth and pending sequences become live gauges, and each stage
	// (ingest, spectrum, assemble, fuse) records an obs span — the
	// seam the internal/serve observability plane scrapes while the
	// pipeline runs. Nil disables instrumentation at zero cost beyond
	// one nil check per counter site.
	Obs *obs.Registry

	// Tracer, when set, records a per-sequence trace: a trace ID is
	// minted at first ingest of each acquisition sequence, every stage
	// records a span (with the queue-wait vs compute split for spectrum
	// work), and lifecycle events (drops, evictions, degraded fusion)
	// attach to the owning trace. The ID is stamped onto the emitted
	// Fix so a served position resolves back to its trace. Nil disables
	// tracing — every call site no-ops on the nil receiver.
	Tracer *tracing.Tracer

	// Health, when set, receives every applied tag spectrum: per-
	// (reader, tag) read rates, per-path power baselines with drift
	// detection, and calibration residuals. Nil disables RF-health
	// monitoring.
	Health *health.Monitor

	// Logger, when set, receives structured logs for operationally
	// interesting pipeline transitions (sequence evictions, degraded
	// fusion, baseline confirmation) with seq / reader / trace fields.
	// Nil silences them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.ExpectReaders == 0 {
		c.ExpectReaders = len(c.Arrays)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.AssemblerShards <= 0 {
		c.AssemblerShards = runtime.GOMAXPROCS(0)
	}
	if c.BaselineRounds == 0 {
		c.BaselineRounds = 2
	}
	if c.SeqTTL <= 0 {
		c.SeqTTL = 30 * time.Second
	}
	if c.MaxPendingSeqs <= 0 {
		c.MaxPendingSeqs = 1024
	}
	return c
}

// Fix is one fusion outcome: a localization fix when Err is nil,
// otherwise a miss (not enough evidence or no covered grid point).
type Fix struct {
	Seq        uint32
	Pos        geom.Point
	Confidence float64
	Views      int // readers that contributed usable evidence
	// Readers lists the readers whose reports joined this fusion,
	// sorted — under degraded operation a subset of the deployment.
	Readers []string
	// Degraded marks a fix fused from the live quorum while at least
	// one expected reader was down.
	Degraded bool
	// TraceID identifies this sequence's trace when a Tracer is
	// attached ("" otherwise); resolvable via Tracer.Get and the
	// /api/v1/traces/{id} endpoint.
	TraceID string
	Err     error
}

// Errors returned by Ingest.
var (
	ErrClosed        = errors.New("pipeline: closed")
	ErrUnknownReader = errors.New("pipeline: report from unknown reader")
)

// job is one whole report heading to the worker pool: batched
// dispatch, one queue operation per report regardless of tag count.
// The owning worker computes every tag's spectrum before handing the
// completed report to the sequencer.
type job struct {
	reader string
	arr    *rf.Array
	round  int
	seq    uint32
	tags   []llrp.TagReport
	enq    time.Time
}

// Pipeline is the streaming localization pipeline. Create with New,
// launch with Start, feed with Ingest, consume Fixes, and finish with
// Drain (graceful) or Close (abort).
type Pipeline struct {
	cfg Config

	jobs  chan job
	fixes chan Fix
	stop  chan struct{}

	workerWG sync.WaitGroup

	started atomic.Bool
	// ingestMu arbitrates shutdown against in-flight Ingest calls:
	// producers hold it shared while sending, Drain/Close hold it
	// exclusively to flip closed, so the jobs channel is never closed
	// under a concurrent send.
	ingestMu     sync.RWMutex
	closed       bool
	closeOnce    sync.Once
	teardownOnce sync.Once

	// ingest-side sequencing: per-reader round numbers.
	mu     sync.Mutex
	rounds map[string]int

	c counters
	// ins mirrors the counters onto the attached obs.Registry (nil
	// when Config.Obs is unset — every method is then a no-op).
	ins *instruments
	// fixSubs are invoked for every fix before the channel send;
	// registration is only allowed before Start. With more than one
	// assembler shard, callbacks for different sequences may run
	// concurrently and must be safe for that.
	fixSubs []func(Fix)

	decodeHist *stats.Histogram
	fuseHist   *stats.Histogram

	// compute and now are test seams. compute is nil in production:
	// each worker then decodes and runs P-MUSIC through its own
	// reusable per-array pmusic.Workspace (bit-identical to
	// pmusic.Compute, without the per-snapshot steering and scratch
	// allocations).
	compute func(snap [][]complex128, arr *rf.Array, opts pmusic.Options) (*pmusic.Spectrum, error)
	now     func() time.Time

	asm *assembler
}

// newFromConfig validates a full Config and builds a pipeline. Start
// must be called before Ingest. New is the public construction path;
// this is the shared validation core.
func newFromConfig(cfg Config) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Arrays) == 0 {
		return nil, errors.New("pipeline: no reader arrays configured")
	}
	if err := cfg.Grid.Validate(); err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:        cfg,
		jobs:       make(chan job, cfg.QueueSize),
		fixes:      make(chan Fix, 64),
		stop:       make(chan struct{}),
		rounds:     map[string]int{},
		decodeHist: stats.NewHistogram(stats.LatencyBounds()),
		fuseHist:   stats.NewHistogram(stats.LatencyBounds()),
		now:        time.Now,
	}
	fuser := cfg.Restored
	if fuser == nil {
		fuser = dwatch.NewFuser(cfg.Arrays, cfg.Fuser)
	} else {
		// A restored baseline puts every reader straight into the
		// online phase.
		for id := range cfg.Arrays {
			p.rounds[id] = cfg.BaselineRounds
		}
	}
	p.asm = newAssembler(p, fuser)
	p.ins = newInstruments(cfg.Obs, p)
	return p, nil
}

// SubscribeFixes registers fn to be invoked for every fusion outcome
// (fix or miss) before it is placed on the Fixes channel — the seam
// the observability plane uses for live position streaming without
// competing with the Fixes consumer. Callbacks run on the fusing
// shard's goroutine and must not block; with more than one shard they
// may run concurrently for different sequences. They may not be added
// after Start.
func (p *Pipeline) SubscribeFixes(fn func(Fix)) {
	if p.started.Load() {
		panic("pipeline: SubscribeFixes after Start")
	}
	p.fixSubs = append(p.fixSubs, fn)
}

// Start launches the worker pool and the fusion shards. It may be
// called once.
func (p *Pipeline) Start() {
	if !p.started.CompareAndSwap(false, true) {
		return
	}
	for i := 0; i < p.cfg.Workers; i++ {
		p.workerWG.Add(1)
		go p.worker()
	}
	for _, s := range p.asm.shards {
		p.asm.shardWG.Add(1)
		go s.run()
	}
}

// NotifyLiveChange pokes every fusion shard to re-evaluate its pending
// sequences against the current LiveReaders set. Cheap, non-blocking,
// safe from any goroutine (typically a session.Supervisor state
// callback); a no-op when no LiveReaders oracle is configured.
func (p *Pipeline) NotifyLiveChange() {
	for _, s := range p.asm.shards {
		select {
		case s.live <- struct{}{}:
		default:
		}
	}
}

// Fixes returns the output channel. It is closed after Drain once all
// in-flight work has flushed. Consumers should drain it promptly; the
// channel is buffered but shards block when it fills.
func (p *Pipeline) Fixes() <-chan Fix { return p.fixes }

// Ingest feeds one validated report into the pipeline. Safe for
// concurrent use by per-connection handler goroutines. Under the Block
// policy it waits for queue space; under DropOldest it never blocks on
// a full queue.
func (p *Pipeline) Ingest(rep *llrp.ROAccessReport) error {
	p.ingestMu.RLock()
	defer p.ingestMu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	arr := p.cfg.Arrays[rep.ReaderID]
	if arr == nil {
		p.c.reportsRejected.Add(1)
		p.ins.reportRejected()
		return fmt.Errorf("%w %q", ErrUnknownReader, rep.ReaderID)
	}
	p.c.reportsIn.Add(1)
	p.ins.reportAccepted(rep.ReaderID)

	p.mu.Lock()
	round := p.rounds[rep.ReaderID]
	p.rounds[rep.ReaderID] = round + 1
	p.mu.Unlock()

	now := p.now()
	// The trace for this acquisition sequence starts (or continues —
	// Begin is idempotent per live sequence) at ingest; each reader's
	// report contributes its own ingest span.
	trc := p.cfg.Tracer.Begin(rep.Seq, now)
	if len(rep.Reports) == 0 {
		// Tagless report: skip the workers but keep round accounting
		// and sequence membership alive.
		err := p.asm.submit(&report{
			reader: rep.ReaderID, round: round, seq: rep.Seq,
			spectra: map[string]*pmusic.Spectrum{},
		})
		trc.Span(tracing.StageIngest, rep.ReaderID, "", now, p.now(), 0)
		return err
	}
	// The ingest span covers validation-to-enqueued, including any
	// backpressure wait under the Block policy — that wait is the
	// signal the span exists to surface.
	sp := p.ins.span(stageIngest, now)
	err := p.enqueue(job{
		reader: rep.ReaderID,
		arr:    arr,
		round:  round,
		seq:    rep.Seq,
		tags:   rep.Reports,
		enq:    now,
	})
	if err != nil {
		return err
	}
	p.c.snapshotsIn.Add(uint64(len(rep.Reports)))
	p.ins.snapshotsEnqueued(len(rep.Reports))
	if p.ins != nil || trc != nil {
		end := p.now()
		if p.ins != nil {
			sp.EndAt(end)
		}
		trc.Span(tracing.StageIngest, rep.ReaderID, "", now, end, 0)
	}
	return nil
}

// enqueue places a report job on the queue honouring the overload
// policy.
func (p *Pipeline) enqueue(j job) error {
	if p.cfg.Overload == Block {
		select {
		case p.jobs <- j:
			return nil
		case <-p.stop:
			return ErrClosed
		}
	}
	for {
		select {
		case p.jobs <- j:
			return nil
		case <-p.stop:
			return ErrClosed
		default:
		}
		// Queue full: shed the oldest queued report and retry. The
		// shed report is forwarded with no spectra so it still
		// completes round accounting and sequence membership. Losing
		// the race to a worker just means space freed up — the retry
		// will succeed.
		select {
		case old := <-p.jobs:
			p.c.snapshotsDropped.Add(uint64(len(old.tags)))
			p.ins.snapshotsDropped(len(old.tags))
			trc := p.cfg.Tracer.Active(old.seq)
			for _, tr := range old.tags {
				trc.Event(tracing.EventSnapshotDropped,
					old.reader+"/"+hex.EncodeToString(tr.EPC), p.now())
			}
			if err := p.asm.submit(&report{
				reader: old.reader, round: old.round, seq: old.seq,
				spectra: map[string]*pmusic.Spectrum{},
			}); err != nil {
				return err
			}
		default:
		}
	}
}

// worker is one spectrum-pool goroutine: it decodes and runs P-MUSIC
// for every tag of a report job, then hands the completed report to
// the reader's round sequencer. Each worker owns one pmusic.Workspace
// per array geometry, so the correlation/smoothing/eigensolver scratch
// is reused across every snapshot it processes while the steering
// tables stay shared and read-only.
func (p *Pipeline) worker() {
	defer p.workerWG.Done()
	ws := map[*rf.Array]*pmusic.Workspace{}
	for j := range p.jobs {
		if p.asm.submit(p.runJob(ws, j)) != nil {
			return
		}
	}
}

// runJob computes every tag spectrum of one report job, recording a
// per-tag spectrum span with the queue-wait vs compute split.
func (p *Pipeline) runJob(ws map[*rf.Array]*pmusic.Workspace, j job) *report {
	g := &report{
		reader: j.reader, round: j.round, seq: j.seq,
		spectra: make(map[string]*pmusic.Spectrum, len(j.tags)),
	}
	trc := p.cfg.Tracer.Active(j.seq)
	for _, tr := range j.tags {
		start := p.now()
		span := p.ins.span(stageSpectrum, start)
		sp, err := p.computeSnapshot(ws, j.arr, tr.Snapshot)
		end := p.now()
		p.decodeHist.ObserveDuration(span.EndAt(end))
		// The trace span runs from enqueue to completion with the
		// wait before compute recorded separately, so Compute()
		// isolates the P-MUSIC cost from backlog-induced latency.
		trc.Span(tracing.StageSpectrum, j.reader, hex.EncodeToString(tr.EPC),
			j.enq, end, start.Sub(j.enq))
		if err != nil {
			p.c.spectraFailed.Add(1)
			p.ins.spectrum(false)
			trc.Event(tracing.EventSpectrumFailed, j.reader+": "+err.Error(), end)
			continue
		}
		p.c.spectraComputed.Add(1)
		p.ins.spectrum(true)
		g.spectra[string(tr.EPC)] = sp
	}
	return g
}

// computeSnapshot turns one raw snapshot into a P-MUSIC spectrum,
// through the test seam when set, otherwise through the worker's
// reusable workspace for the job's array (created on first use).
func (p *Pipeline) computeSnapshot(ws map[*rf.Array]*pmusic.Workspace, arr *rf.Array, snap [][]complex128) (*pmusic.Spectrum, error) {
	if p.compute != nil {
		return p.compute(snap, arr, p.cfg.PMusic)
	}
	x, err := dwatch.RawSnapshotsToMatrix(snap)
	if err != nil {
		return nil, err
	}
	w := ws[arr]
	if w == nil {
		if w, err = pmusic.NewWorkspace(arr, p.cfg.PMusic); err != nil {
			return nil, err
		}
		ws[arr] = w
	}
	return w.Compute(x)
}

// teardown runs the ordered shutdown exactly once: stop the intake,
// flush the workers, flush the shards, close the output. Safe to call
// from both Drain and Close; the second caller blocks until the first
// finishes.
func (p *Pipeline) teardown() {
	p.teardownOnce.Do(func() {
		close(p.jobs)
		p.workerWG.Wait()
		for _, s := range p.asm.shards {
			close(s.ch)
		}
		p.asm.shardWG.Wait()
		close(p.asm.shardsStopped)
		close(p.fixes)
	})
}

// Drain stops accepting new reports, waits for queued work to compute
// and fuse, and closes the Fixes channel. Callers must keep consuming
// Fixes while draining (or buffer permitting, after).
func (p *Pipeline) Drain() {
	if !p.started.Load() {
		return
	}
	p.markClosed()
	p.teardown()
}

// Close aborts the pipeline immediately: in-flight work is abandoned.
// Safe to call after Drain (it is then a no-op beyond bookkeeping).
func (p *Pipeline) Close() {
	p.closeOnce.Do(func() {
		// Unblock parked producers and stages first, then wait for
		// ingest rights before closing the channels.
		close(p.stop)
		p.markClosed()
		if p.started.Load() {
			p.teardown()
		}
	})
}

// markClosed flips the closed flag once no Ingest is mid-send and
// reports whether it was already set.
func (p *Pipeline) markClosed() bool {
	p.ingestMu.Lock()
	defer p.ingestMu.Unlock()
	already := p.closed
	p.closed = true
	return already
}

// Fuser exposes the pipeline's evidence fuser. Only safe to inspect
// after Drain (the assembler owns it while running).
func (p *Pipeline) Fuser() *dwatch.Fuser { return p.asm.fuser }
