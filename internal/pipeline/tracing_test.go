package pipeline

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"

	"dwatch/internal/health"
	"dwatch/internal/sim"
	"dwatch/internal/tracing"
)

// TestTracedEndToEnd runs the simulated acquisition chain through a
// fully instrumented pipeline and checks the trace and health planes:
// every fix carries a resolvable trace ID, each fixed sequence retains
// spans from all four stages with the spectrum queue/compute split, and
// the RF monitor saw every reader's tags.
func TestTracedEndToEnd(t *testing.T) {
	sc, err := sim.Build(sim.TableConfig())
	if err != nil {
		t.Fatal(err)
	}
	reports := genReports(t, sc, 3, 6)
	arrays, _ := testArrays(t)

	tracer := tracing.New(tracing.WithCapacity(64))
	mon := health.New(nil, health.Options{})
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))

	p, err := New(Deployment{Arrays: arrays, Grid: sc.Grid},
		WithWorkers(4), WithTracer(tracer), WithHealth(mon), WithLogger(logger))
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	wait := drainFixes(p)
	for _, rep := range reports {
		if err := p.Ingest(rep); err != nil {
			t.Fatal(err)
		}
	}
	p.Drain()
	fixes := wait()

	var fixed int
	for _, f := range fixes {
		if f.Err != nil {
			continue
		}
		fixed++
		if f.TraceID == "" {
			t.Fatalf("seq %d: fix has no trace ID", f.Seq)
		}
		d, ok := tracer.Get(f.TraceID)
		if !ok {
			t.Fatalf("seq %d: trace %s not retained", f.Seq, f.TraceID)
		}
		if d.Seq != f.Seq {
			t.Fatalf("trace %s: seq %d, want %d", f.TraceID, d.Seq, f.Seq)
		}
		if d.Outcome != tracing.OutcomeFix {
			t.Fatalf("trace %s: outcome %q, want fix", f.TraceID, d.Outcome)
		}
		stages := map[string]int{}
		for _, sp := range d.Spans {
			stages[sp.Stage]++
			if sp.End.Before(sp.Start) {
				t.Fatalf("trace %s: span %s ends before it starts", f.TraceID, sp.Stage)
			}
		}
		for _, st := range []string{tracing.StageIngest, tracing.StageSpectrum, tracing.StageAssemble, tracing.StageFuse} {
			if stages[st] == 0 {
				t.Fatalf("trace %s: no %s span (stages: %v)", f.TraceID, st, stages)
			}
		}
		// Two readers ingest each sequence; each spectrum span names
		// its reader and hex tag.
		if stages[tracing.StageIngest] != len(arrays) {
			t.Fatalf("trace %s: %d ingest spans, want %d", f.TraceID, stages[tracing.StageIngest], len(arrays))
		}
		for _, sp := range d.Spans {
			if sp.Stage == tracing.StageSpectrum && (sp.Reader == "" || sp.Tag == "") {
				t.Fatalf("trace %s: spectrum span missing reader/tag: %+v", f.TraceID, sp)
			}
		}
	}
	if fixed == 0 {
		t.Fatal("no fixes produced")
	}

	// Baseline sequences (the first two) finished with the baseline
	// outcome rather than leaking as active traces.
	var baselines int
	for _, s := range tracer.Traces() {
		if s.Outcome == tracing.OutcomeBaseline {
			baselines++
		}
	}
	if baselines != 2 {
		t.Fatalf("baseline-outcome traces = %d, want 2", baselines)
	}

	// The RF monitor saw both readers and their tags, with paths
	// tracked from the computed spectra.
	hs := mon.Snapshot()
	if len(hs.Readers) != len(arrays) {
		t.Fatalf("health readers = %d, want %d", len(hs.Readers), len(arrays))
	}
	for _, rh := range hs.Readers {
		if len(rh.Tags) == 0 {
			t.Fatalf("reader %s: no tags in health snapshot", rh.ID)
		}
		for _, th := range rh.Tags {
			if th.Reads == 0 || len(th.Paths) == 0 {
				t.Fatalf("reader %s tag %s: reads=%d paths=%d", rh.ID, th.EPC, th.Reads, len(th.Paths))
			}
		}
	}

	if !strings.Contains(logBuf.String(), `"msg":"baseline confirmed"`) {
		t.Fatalf("no baseline-confirmed log record in: %s", logBuf.String())
	}
}

// TestTracedTTLEviction checks the eviction path: an incomplete
// sequence swept past its TTL seals its trace with the evicted outcome
// and a ttl_evicted event, and logs a structured warning.
func TestTracedTTLEviction(t *testing.T) {
	cfg, sc := testConfig(t)
	cfg.SeqTTL = time.Hour // sweep manually for determinism
	tracer := tracing.New()
	cfg.Tracer = tracer
	var logBuf bytes.Buffer
	cfg.Logger = slog.New(slog.NewJSONHandler(&logBuf, nil))
	p, err := newFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	wait := drainFixes(p)
	alive, dead := sc.Readers[0].ID, sc.Readers[1].ID
	for round := 0; round < 2; round++ {
		seq := uint32(round + 1)
		if err := p.Ingest(taglessReport(alive, seq)); err != nil {
			t.Fatal(err)
		}
		if err := p.Ingest(taglessReport(dead, seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Ingest(taglessReport(alive, 100)); err != nil {
		t.Fatal(err)
	}
	p.Drain()
	wait()
	id := tracer.Active(100).ID()
	if id == "" {
		t.Fatal("no active trace for the stuck sequence")
	}
	if p.asm.sweep(p.now().Add(2*time.Hour)) != 1 {
		t.Fatal("sweep did not evict the stuck sequence")
	}
	d, ok := tracer.Get(id)
	if !ok {
		t.Fatal("evicted sequence's trace not retained")
	}
	if d.Outcome != tracing.OutcomeEvicted {
		t.Fatalf("outcome = %q, want evicted", d.Outcome)
	}
	found := false
	for _, ev := range d.Events {
		if ev.Name == tracing.EventTTLEvicted {
			found = true
		}
	}
	if !found {
		t.Fatalf("no ttl_evicted event: %+v", d.Events)
	}
	if !strings.Contains(logBuf.String(), `"msg":"sequence evicted"`) {
		t.Fatalf("no eviction log record in: %s", logBuf.String())
	}
}
