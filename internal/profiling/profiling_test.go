package profiling

import (
	"context"
	"io"
	"os"
	"testing"
	"time"

	"dwatch/internal/obs"
)

func testRing(t *testing.T, max int) (*Ring, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	r, err := Open(t.TempDir(), Options{
		Interval:    time.Second,
		CPUDuration: 20 * time.Millisecond,
		MaxProfiles: max,
		Obs:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, reg
}

// TestRingCapture: one round stores a CPU and a heap profile, both
// listable newest-first and fetchable by name.
func TestRingCapture(t *testing.T) {
	r, reg := testRing(t, 10)
	if err := r.CaptureOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	list := r.List()
	if len(list) != 2 {
		t.Fatalf("List() = %d profiles, want 2: %+v", len(list), list)
	}
	kinds := map[string]bool{}
	for _, p := range list {
		kinds[p.Kind] = true
		if p.Bytes <= 0 {
			t.Fatalf("profile %s has %d bytes", p.Name, p.Bytes)
		}
		rc, err := r.Open(p.Name)
		if err != nil {
			t.Fatalf("Open(%s): %v", p.Name, err)
		}
		data, err := io.ReadAll(rc)
		rc.Close()
		if err != nil || int64(len(data)) != p.Bytes {
			t.Fatalf("read %s: %d bytes, err %v, want %d", p.Name, len(data), err, p.Bytes)
		}
	}
	if !kinds["cpu"] || !kinds["heap"] {
		t.Fatalf("kinds = %v, want cpu and heap", kinds)
	}
	s := reg.Snapshot()
	if s[`dwatch_profiling_captures_total{kind="cpu"}`] != 1 ||
		s[`dwatch_profiling_captures_total{kind="heap"}`] != 1 {
		t.Fatalf("capture counters wrong: %v", s)
	}
	if s["dwatch_profiling_ring_files"] != 2 {
		t.Fatalf("ring_files = %v, want 2", s["dwatch_profiling_ring_files"])
	}
}

// TestRingEviction: the bound holds and evicts oldest-first, on disk
// as well as in the listing.
func TestRingEviction(t *testing.T) {
	r, reg := testRing(t, 3)
	for i := 0; i < 3; i++ {
		if err := r.CaptureOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	list := r.List()
	if len(list) != 3 {
		t.Fatalf("ring holds %d, want 3", len(list))
	}
	ents, err := os.ReadDir(r.dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 3 {
		t.Fatalf("disk holds %d files, want 3", len(ents))
	}
	// Newest-first listing: timestamps must be non-increasing.
	for i := 1; i < len(list); i++ {
		if list[i].Time.After(list[i-1].Time) {
			t.Fatalf("listing not newest-first: %+v", list)
		}
	}
	if reg.Snapshot()["dwatch_profiling_ring_files"] != 3 {
		t.Fatal("ring_files gauge disagrees with bound")
	}
}

// TestRingAdopt: reopening a directory adopts the previous process's
// profiles.
func TestRingAdopt(t *testing.T) {
	dir := t.TempDir()
	r1, err := Open(dir, Options{CPUDuration: 20 * time.Millisecond, Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.CaptureOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir, Options{Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r2.List()); got != 2 {
		t.Fatalf("adopted %d profiles, want 2", got)
	}
}

// TestRingOpenRejectsForeignNames: only ring-minted names resolve; a
// traversal attempt is not joined to the directory.
func TestRingOpenRejectsForeignNames(t *testing.T) {
	r, _ := testRing(t, 10)
	for _, name := range []string{"../../../etc/passwd", "cpu-1.pprof", "nope"} {
		if _, err := r.Open(name); err == nil {
			t.Fatalf("Open(%q) succeeded", name)
		}
	}
	var nilRing *Ring
	if nilRing.List() != nil {
		t.Fatal("nil ring lists profiles")
	}
	if err := nilRing.CaptureOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
}
