// Package profiling is the continuous-profiling ring: periodic CPU
// and heap pprof captures written into a bounded on-disk directory,
// oldest-first evicted, listable and fetchable over /api/v1/profiles.
// The point is incident forensics at fleet scale — when the gateway's
// federated metrics finger a hot node, the profile of the *moments
// before* is already on that node's disk; nobody has to reproduce the
// spike with a live profiler attached.
//
// Like the rest of the repo this is stdlib-only: runtime/pprof for
// capture, plain files for storage. File names are
// "<kind>-<unix-nanos>.pprof" so the ring orders lexically-ish by
// capture time and List never needs an index file.
package profiling

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dwatch/internal/obs"
)

// Info describes one stored profile.
type Info struct {
	Name  string    // file name, the fetch key
	Kind  string    // "cpu" or "heap"
	Time  time.Time // capture time
	Bytes int64
}

// Options configures a Ring.
type Options struct {
	// Interval between capture rounds (default 60s). Each round
	// writes one CPU and one heap profile.
	Interval time.Duration
	// CPUDuration is how long each CPU profile samples (default 5s,
	// clamped below Interval).
	CPUDuration time.Duration
	// MaxProfiles bounds the total files kept on disk (default 60;
	// oldest evicted first).
	MaxProfiles int
	// Obs, when set, registers dwatch_profiling_* metrics.
	Obs *obs.Registry
	// Logger for capture errors (nil = slog.Default).
	Logger *slog.Logger
	// Now overrides the clock (tests).
	Now func() time.Time
}

// Ring is a bounded on-disk profile store with a background capture
// loop. A nil *Ring is a no-op (List returns nil, Start returns).
type Ring struct {
	dir    string
	opts   Options
	logger *slog.Logger

	captures *obs.CounterVec // {kind}
	errors   *obs.Counter
	files    *obs.Gauge
	bytes    *obs.Gauge

	mu    sync.Mutex
	ring  []Info // oldest first
	total int64  // bytes on disk
}

// Open creates (or reopens) a ring rooted at dir. Existing *.pprof
// files are adopted into the ring so restarts keep history, and the
// bound is enforced immediately.
func Open(dir string, opts Options) (*Ring, error) {
	if opts.Interval <= 0 {
		opts.Interval = 60 * time.Second
	}
	if opts.CPUDuration <= 0 {
		opts.CPUDuration = 5 * time.Second
	}
	if opts.CPUDuration >= opts.Interval {
		opts.CPUDuration = opts.Interval / 2
	}
	if opts.MaxProfiles <= 0 {
		opts.MaxProfiles = 60
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("profiling: %w", err)
	}
	r := &Ring{dir: dir, opts: opts, logger: opts.Logger.With("component", "profiling")}
	if reg := opts.Obs; reg != nil {
		r.captures = reg.CounterVec("dwatch_profiling_captures_total",
			"Profiles captured into the on-disk ring.", "kind")
		r.errors = reg.Counter("dwatch_profiling_capture_errors_total",
			"Profile captures that failed.")
		r.files = reg.Gauge("dwatch_profiling_ring_files",
			"Profiles currently retained on disk.")
		r.bytes = reg.Gauge("dwatch_profiling_ring_bytes",
			"Bytes of profile data currently retained on disk.")
	}
	if err := r.adopt(); err != nil {
		return nil, err
	}
	r.evictLocked()
	r.publishLocked()
	return r, nil
}

// adopt scans dir for profiles left by a previous process.
func (r *Ring) adopt() error {
	ents, err := os.ReadDir(r.dir)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		info, ok := parseName(e.Name())
		if !ok {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		info.Bytes = fi.Size()
		r.ring = append(r.ring, info)
		r.total += info.Bytes
	}
	sort.Slice(r.ring, func(i, j int) bool { return r.ring[i].Time.Before(r.ring[j].Time) })
	return nil
}

// parseName decodes "<kind>-<unix-nanos>.pprof".
func parseName(name string) (Info, bool) {
	base, ok := strings.CutSuffix(name, ".pprof")
	if !ok {
		return Info{}, false
	}
	kind, ts, ok := strings.Cut(base, "-")
	if !ok || (kind != "cpu" && kind != "heap") {
		return Info{}, false
	}
	ns, err := strconv.ParseInt(ts, 10, 64)
	if err != nil {
		return Info{}, false
	}
	return Info{Name: name, Kind: kind, Time: time.Unix(0, ns)}, true
}

// Run captures on the configured interval until ctx is cancelled.
func (r *Ring) Run(ctx context.Context) {
	if r == nil {
		return
	}
	t := time.NewTicker(r.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := r.CaptureOnce(ctx); err != nil && ctx.Err() == nil {
				r.logger.Warn("profile capture failed", "err", err)
			}
		}
	}
}

// CaptureOnce takes one CPU profile (sampling for CPUDuration) and one
// heap profile, then enforces the ring bound. It is the loop body and
// the test seam.
func (r *Ring) CaptureOnce(ctx context.Context) error {
	if r == nil {
		return nil
	}
	now := r.opts.Now()
	var firstErr error
	if err := r.captureCPU(ctx, now); err != nil {
		firstErr = err
		r.errors.Inc()
	} else {
		r.captures.With("cpu").Inc()
	}
	if err := r.captureHeap(now); err != nil {
		if firstErr == nil {
			firstErr = err
		}
		r.errors.Inc()
	} else {
		r.captures.With("heap").Inc()
	}
	r.mu.Lock()
	r.evictLocked()
	r.publishLocked()
	r.mu.Unlock()
	return firstErr
}

func (r *Ring) captureCPU(ctx context.Context, now time.Time) error {
	name := fmt.Sprintf("cpu-%d.pprof", now.UnixNano())
	f, err := os.Create(filepath.Join(r.dir, name))
	if err != nil {
		return err
	}
	// StartCPUProfile fails if another CPU profile is running (e.g. a
	// live /debug/pprof/profile pull); that round is just skipped.
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	select {
	case <-ctx.Done():
	case <-time.After(r.opts.CPUDuration):
	}
	pprof.StopCPUProfile()
	return r.finish(f, name, "cpu", now)
}

func (r *Ring) captureHeap(now time.Time) error {
	name := fmt.Sprintf("heap-%d.pprof", now.UnixNano())
	f, err := os.Create(filepath.Join(r.dir, name))
	if err != nil {
		return err
	}
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	return r.finish(f, name, "heap", now)
}

// finish closes the profile file and admits it to the ring.
func (r *Ring) finish(f *os.File, name, kind string, now time.Time) error {
	fi, statErr := f.Stat()
	if err := f.Close(); err != nil {
		return err
	}
	if statErr != nil {
		return statErr
	}
	r.mu.Lock()
	r.ring = append(r.ring, Info{Name: name, Kind: kind, Time: now, Bytes: fi.Size()})
	r.total += fi.Size()
	r.mu.Unlock()
	return nil
}

// evictLocked removes oldest profiles beyond the bound.
func (r *Ring) evictLocked() {
	for len(r.ring) > r.opts.MaxProfiles {
		victim := r.ring[0]
		r.ring = r.ring[1:]
		r.total -= victim.Bytes
		if err := os.Remove(filepath.Join(r.dir, victim.Name)); err != nil && !os.IsNotExist(err) {
			r.logger.Warn("profile eviction failed", "name", victim.Name, "err", err)
		}
	}
}

func (r *Ring) publishLocked() {
	r.files.Set(float64(len(r.ring)))
	r.bytes.Set(float64(r.total))
}

// List returns the stored profiles, newest first.
func (r *Ring) List() []Info {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, len(r.ring))
	for i, p := range r.ring {
		out[len(out)-1-i] = p
	}
	return out
}

// Open returns a reader over one stored profile by name. Names not
// present in the ring are rejected, which doubles as path-traversal
// protection — the name is never joined to the directory unless the
// ring minted it.
func (r *Ring) Open(name string) (io.ReadCloser, error) {
	if r == nil {
		return nil, os.ErrNotExist
	}
	r.mu.Lock()
	found := false
	for _, p := range r.ring {
		if p.Name == name {
			found = true
			break
		}
	}
	r.mu.Unlock()
	if !found {
		return nil, os.ErrNotExist
	}
	return os.Open(filepath.Join(r.dir, name))
}
