// Package reader models the COTS RFID reader D-Watch runs on: an
// Impinj Speedway R420-class unit with four RF ports, extended through
// an antenna hub to an 8-element λ/2 linear array whose antennas are
// time-division multiplexed (~200 µs per antenna, Section 5). Each RF
// chain contributes a random phase offset (Fig. 3); the offsets are
// drawn once per power cycle and persist until Recalibrate-style state
// changes, exactly the behaviour the wireless calibration of Section
// 4.1 corrects for.
//
// A "snapshot" is one antenna-hub cycle: the tag's backscatter carrier
// phase is stable over the ~1.6 ms cycle, so the per-antenna samples of
// one cycle are mutually coherent even though they are captured
// sequentially — this is what makes AoA processing on a TDM hub
// possible at all, and the simulation preserves it.
package reader

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"dwatch/internal/calib"
	"dwatch/internal/channel"
	"dwatch/internal/cmatrix"
	"dwatch/internal/epcgen2"
	"dwatch/internal/rf"
	"dwatch/internal/tag"
)

// AntennaSlot is the hub dwell time per antenna (Section 5: ≈200 µs).
const AntennaSlot = 200 * time.Microsecond

// DefaultInterval is the reader's transmission interval (Section 5:
// 0.1 s is enough for localization without raising overhead).
const DefaultInterval = 100 * time.Millisecond

// ErrBadConfig is returned for invalid reader configuration.
var ErrBadConfig = errors.New("reader: bad configuration")

// Reader is one simulated reader + antenna array.
type Reader struct {
	ID      string
	Array   *rf.Array
	Offsets []float64 // per-antenna RF-chain phase offsets (radians)

	// Interval is the packet transmission interval; informational for
	// latency accounting.
	Interval time.Duration

	noiseStd float64
	rng      *rand.Rand
}

// Options configures New.
type Options struct {
	// NoiseStd is the per-element sample noise; 0 = channel.DefaultNoiseStd.
	NoiseStd float64
	// Offsets forces specific RF-chain offsets; nil draws random ones
	// (uniform over (−π, π], Fig. 3).
	Offsets []float64
	// Interval overrides the transmission interval; 0 = DefaultInterval.
	Interval time.Duration
}

// New creates a reader with the given array. The randomness source
// seeds both the offset draw and all subsequent acquisitions.
func New(id string, arr *rf.Array, rng *rand.Rand, opts Options) (*Reader, error) {
	if arr == nil {
		return nil, fmt.Errorf("%w: nil array", ErrBadConfig)
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadConfig)
	}
	offs := opts.Offsets
	if offs == nil {
		offs = calib.RandomOffsets(arr.Elements, rng)
	}
	if len(offs) != arr.Elements {
		return nil, fmt.Errorf("%w: %d offsets for %d elements", ErrBadConfig, len(offs), arr.Elements)
	}
	noise := opts.NoiseStd
	if noise == 0 {
		noise = channel.DefaultNoiseStd
	}
	interval := opts.Interval
	if interval == 0 {
		interval = DefaultInterval
	}
	return &Reader{
		ID:       id,
		Array:    arr,
		Offsets:  append([]float64(nil), offs...),
		Interval: interval,
		noiseStd: noise,
		rng:      rng,
	}, nil
}

// TagSnapshots is the acquisition result for one tag.
type TagSnapshots struct {
	Tag  tag.Tag
	Data *cmatrix.Matrix // N×M uncalibrated snapshots
	// RSSIcdBm is the peak received power in centi-dBm, derived from
	// the strongest per-element sample against a 0 dBm reference at
	// unit amplitude — the quantity a COTS reader reports per read.
	RSSIcdBm int16
}

// AcquireOptions configures Acquire.
type AcquireOptions struct {
	// Snapshots per tag (inventory cycles); 0 = 10 (the paper collects
	// 10 backscatter packets per tag).
	Snapshots int
	// RunInventory gates each tag's acquisition on Gen2 singulation: a
	// tag missed by the slotted-ALOHA inventory yields no snapshots that
	// cycle. Disabled (false) acquires every tag deterministically.
	RunInventory bool
	// InitialQ for the inventory simulation; 0 = 4.
	InitialQ uint8
}

// Acquire captures uncalibrated snapshot matrices for every readable
// tag in the population, with the given device-free targets present in
// the environment. The reader's RF-chain offsets are baked into the
// samples — downstream code must calibrate.
func (r *Reader) Acquire(env *channel.Env, pop *tag.Population, targets []channel.Target, opts AcquireOptions) ([]TagSnapshots, error) {
	if env == nil || pop == nil {
		return nil, fmt.Errorf("%w: nil env or population", ErrBadConfig)
	}
	n := opts.Snapshots
	if n == 0 {
		n = 10
	}
	readable := pop.Tags
	if opts.RunInventory {
		q := opts.InitialQ
		if q == 0 {
			q = 4
		}
		inv, err := epcgen2.RunInventory(pop.EPCs(), epcgen2.InventoryParams{InitialQ: q, Rng: r.rng})
		if err != nil {
			return nil, err
		}
		readable = readable[:0:0]
		for _, read := range inv.Reads {
			if t, ok := pop.ByEPC(read.EPC); ok {
				readable = append(readable, t)
			}
		}
	}
	out := make([]TagSnapshots, 0, len(readable))
	for _, t := range readable {
		x, _, err := env.Synthesize(t.Pos, r.Array, targets, channel.SynthOpts{
			Snapshots:    n,
			NoiseStd:     r.noiseStd,
			PhaseOffsets: r.Offsets,
			Rng:          r.rng,
		})
		if err != nil {
			return nil, fmt.Errorf("reader %s: tag %x: %w", r.ID, t.EPC, err)
		}
		out = append(out, TagSnapshots{Tag: t, Data: x, RSSIcdBm: peakRSSI(x)})
	}
	return out, nil
}

// peakRSSI converts the strongest sample magnitude to centi-dBm
// against a 0 dBm unit-amplitude reference, clamped to a plausible
// reader range of [-9000, 0].
func peakRSSI(x *cmatrix.Matrix) int16 {
	var maxP float64
	for _, v := range x.Data {
		p := real(v)*real(v) + imag(v)*imag(v)
		if p > maxP {
			maxP = p
		}
	}
	if maxP <= 0 {
		return -9000
	}
	c := 100 * 10 * math.Log10(maxP)
	if c < -9000 {
		c = -9000
	} else if c > 0 {
		c = 0
	}
	return int16(c)
}

// CycleDuration returns how long one full acquisition cycle takes on
// the air: per tag, Snapshots hub cycles of Elements antenna slots.
func (r *Reader) CycleDuration(tags, snapshots int) time.Duration {
	return time.Duration(tags*snapshots*r.Array.Elements) * AntennaSlot
}

// Drift applies a random-walk perturbation to the RF-chain offsets, a
// failure-injection hook modelling oscillator drift across power events
// or temperature swings: after enough drift the one-time calibration of
// Section 4.1 goes stale and localization degrades until the operator
// recalibrates (the paper's "one-time effort for one power on-off
// cycle" is exactly this boundary). std is the per-antenna drift in
// radians.
func (r *Reader) Drift(std float64) {
	for i := 1; i < len(r.Offsets); i++ {
		r.Offsets[i] = rf.WrapPhase(r.Offsets[i] + r.rng.NormFloat64()*std)
	}
}

// OffsetsDeg returns the RF-chain offsets in degrees, the unit of
// Fig. 3.
func (r *Reader) OffsetsDeg() []float64 {
	out := make([]float64, len(r.Offsets))
	for i, o := range r.Offsets {
		out[i] = rf.Deg(o)
	}
	return out
}
