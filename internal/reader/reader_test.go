package reader

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"dwatch/internal/channel"
	"dwatch/internal/geom"
	"dwatch/internal/rf"
	"dwatch/internal/tag"
)

func mkArray(t testing.TB) *rf.Array {
	t.Helper()
	a, err := rf.NewArray(geom.Pt(0, 0, 1.25), geom.Pt2(1, 0), 8)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	arr := mkArray(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := New("r1", nil, rng, Options{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil array: %v", err)
	}
	if _, err := New("r1", arr, nil, Options{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil rng: %v", err)
	}
	if _, err := New("r1", arr, rng, Options{Offsets: []float64{1}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad offsets: %v", err)
	}
}

func TestNewRandomOffsets(t *testing.T) {
	arr := mkArray(t)
	r, err := New("r1", arr, rand.New(rand.NewSource(2)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Offsets) != 8 || r.Offsets[0] != 0 {
		t.Errorf("offsets = %v", r.Offsets)
	}
	// Offsets are non-trivial (Fig. 3: spread across the full circle).
	var nonzero int
	for _, o := range r.Offsets[1:] {
		if math.Abs(o) > 0.01 {
			nonzero++
		}
	}
	if nonzero < 5 {
		t.Errorf("offsets suspiciously small: %v", r.Offsets)
	}
	deg := r.OffsetsDeg()
	for i := range deg {
		if math.Abs(deg[i]-rf.Deg(r.Offsets[i])) > 1e-9 {
			t.Errorf("OffsetsDeg[%d] = %v", i, deg[i])
		}
	}
}

func TestAcquireAllTags(t *testing.T) {
	arr := mkArray(t)
	r, err := New("r1", arr, rand.New(rand.NewSource(3)), Options{NoiseStd: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	env := channel.NewEnv(nil)
	pop, err := tag.RandomInRect(5, -2, 2, 2, 6, 1, 1.5, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := r.Acquire(env, pop, nil, AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 5 {
		t.Fatalf("snaps = %d", len(snaps))
	}
	for _, s := range snaps {
		if s.Data.Rows != 10 || s.Data.Cols != 8 {
			t.Errorf("snapshot shape %dx%d", s.Data.Rows, s.Data.Cols)
		}
	}
}

func TestAcquireWithInventory(t *testing.T) {
	arr := mkArray(t)
	r, err := New("r1", arr, rand.New(rand.NewSource(5)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	env := channel.NewEnv(nil)
	pop, err := tag.RandomInRect(21, -2, 2, 2, 6, 1, 1.5, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := r.Acquire(env, pop, nil, AcquireOptions{RunInventory: true, Snapshots: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Default inventory budget reads the whole population.
	if len(snaps) != 21 {
		t.Errorf("inventory read %d of 21 tags", len(snaps))
	}
}

func TestAcquireOffsetsBakedIn(t *testing.T) {
	// Two readers over the same channel with different offsets must see
	// different sample phases for the same tag.
	arr := mkArray(t)
	env := channel.NewEnv(nil)
	pop, err := tag.New([]geom.Point{geom.Pt(0.5, 4, 1.25)}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	offsA := make([]float64, 8)
	offsB := make([]float64, 8)
	for i := 1; i < 8; i++ {
		offsB[i] = 1.0
	}
	mk := func(offs []float64) *Reader {
		r, err := New("r", arr, rand.New(rand.NewSource(8)), Options{Offsets: offs, NoiseStd: 1e-15})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	sa, err := mk(offsA).Acquire(env, pop, nil, AcquireOptions{Snapshots: 1})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := mk(offsB).Acquire(env, pop, nil, AcquireOptions{Snapshots: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Element 0 (reference) identical, element 1 rotated by 1 rad.
	a0, b0 := sa[0].Data.At(0, 0), sb[0].Data.At(0, 0)
	a1, b1 := sa[0].Data.At(0, 1), sb[0].Data.At(0, 1)
	if d := cPhase(b0) - cPhase(a0); math.Abs(rf.WrapPhase(d)) > 1e-9 {
		t.Errorf("reference element rotated by %v", d)
	}
	if d := rf.WrapPhase(cPhase(b1) - cPhase(a1)); math.Abs(d-1.0) > 1e-9 {
		t.Errorf("element 1 rotation = %v, want 1.0", d)
	}
}

func cPhase(c complex128) float64 { return math.Atan2(imag(c), real(c)) }

func TestCycleDuration(t *testing.T) {
	arr := mkArray(t)
	r, err := New("r1", arr, rand.New(rand.NewSource(9)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := r.CycleDuration(21, 10)
	want := time.Duration(21*10*8) * AntennaSlot
	if got != want {
		t.Errorf("CycleDuration = %v, want %v", got, want)
	}
}

func TestAcquireValidation(t *testing.T) {
	arr := mkArray(t)
	r, err := New("r1", arr, rand.New(rand.NewSource(10)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Acquire(nil, nil, nil, AcquireOptions{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil env: %v", err)
	}
}

func TestPeakRSSIPlausible(t *testing.T) {
	arr := mkArray(t)
	r, err := New("r1", arr, rand.New(rand.NewSource(11)), Options{NoiseStd: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	env := channel.NewEnv(nil)
	near, err := tag.New([]geom.Point{geom.Pt(0.5, 2.5, 1.25)}, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	far, err := tag.New([]geom.Point{geom.Pt(0.5, 9, 1.25)}, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	sn, err := r.Acquire(env, near, nil, AcquireOptions{Snapshots: 4})
	if err != nil {
		t.Fatal(err)
	}
	sf, err := r.Acquire(env, far, nil, AcquireOptions{Snapshots: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sn[0].RSSIcdBm <= sf[0].RSSIcdBm {
		t.Errorf("near tag RSSI %d not above far tag %d", sn[0].RSSIcdBm, sf[0].RSSIcdBm)
	}
	// Backscatter power falls with d⁴: 2.5 m vs 9 m is ≈22 dB apart.
	gap := float64(sn[0].RSSIcdBm-sf[0].RSSIcdBm) / 100
	if gap < 15 || gap > 30 {
		t.Errorf("near-far RSSI gap %.1f dB, want ≈22", gap)
	}
	if sn[0].RSSIcdBm > 0 || sn[0].RSSIcdBm < -9000 {
		t.Errorf("RSSI %d outside clamp", sn[0].RSSIcdBm)
	}
}
