package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"dwatch/internal/channel"
	"dwatch/internal/dwatch"
	"dwatch/internal/geom"
	"dwatch/internal/llrp"
	"dwatch/internal/sim"
)

// LatencyResult holds the Section 8 latency measurements.
type LatencyResult struct {
	// Processing is the mean time to compute one localization fix from
	// already-acquired snapshots (paper: ≈57 ms on an i7-4790).
	Processing time.Duration
	// Network is the mean time to ship one reader's RO_ACCESS_REPORT
	// (21 tags × 10 snapshots × 8 antennas of I/Q) over loopback LLRP.
	Network time.Duration
	// EndToEnd approximates one full cycle: air-protocol acquisition
	// time (Gen2 TDM slots) + network + processing (paper: < 0.5 s).
	EndToEnd time.Duration
	Fixes    int
}

// Latency reproduces the Section 8 discussion: per-fix processing time
// and the end-to-end budget including the LLRP hop.
func Latency(opts Options) (*LatencyResult, error) {
	opts = opts.withDefaults()
	cfg := sim.HallConfig()
	cfg.Seed = opts.Seed
	s, err := buildSystem(cfg, dwatch.Config{})
	if err != nil {
		return nil, err
	}
	target := []channel.Target{channel.HumanTarget(geom.Pt(3.6, 5.2, 1.25))}

	// Processing: repeated Locate calls (acquisition is simulated inside
	// but dominated by the DSP pipeline, matching the paper's
	// "average processing time" measurement).
	fixes := 2 * opts.Reps
	start := time.Now()
	for i := 0; i < fixes; i++ {
		if _, err := s.Locate(target); err != nil && err.Error() == "" {
			return nil, err // unreachable; Locate errors are tolerated
		}
	}
	processing := time.Since(start) / time.Duration(fixes)

	// Network: loopback LLRP round trip with a realistic report payload.
	network, err := measureLLRP(s)
	if err != nil {
		return nil, err
	}

	// Air time: one acquisition cycle over the Gen2 TDM hub.
	air := s.Scenario.Readers[0].CycleDuration(s.Scenario.Tags.Len(), s.Config().Snapshots)

	return &LatencyResult{
		Processing: processing,
		Network:    network,
		EndToEnd:   air + network + processing,
		Fixes:      fixes,
	}, nil
}

// measureLLRP times shipping one full report over loopback.
func measureLLRP(s *dwatch.System) (time.Duration, error) {
	received := make(chan struct{}, 64)
	srv := &llrp.Server{Handler: llrp.HandlerFunc(func(conn *llrp.Conn, msg llrp.Message) error {
		if msg.Type == llrp.MsgROAccessReport {
			if _, err := llrp.UnmarshalROAccessReport(msg.Payload); err != nil {
				return err
			}
			received <- struct{}{}
		}
		return nil
	})}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	go srv.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	conn, err := llrp.Dial(ctx, addr.String())
	if err != nil {
		return 0, err
	}
	defer conn.Close()

	// Build a realistic report: every tag with a 10×8 snapshot matrix.
	rep := &llrp.ROAccessReport{ReaderID: "reader-1"}
	snap := make([][]complex128, 10)
	for i := range snap {
		snap[i] = make([]complex128, 8)
		for j := range snap[i] {
			snap[i][j] = complex(0.01*float64(i), -0.02*float64(j))
		}
	}
	for _, tg := range s.Scenario.Tags.Tags {
		rep.Reports = append(rep.Reports, llrp.TagReport{
			EPC: tg.EPC, AntennaID: 1, PeakRSSIcdBm: -6000, Snapshot: snap,
		})
	}
	payload, err := rep.Marshal()
	if err != nil {
		return 0, err
	}
	const rounds = 20
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := conn.Send(llrp.MsgROAccessReport, payload); err != nil {
			return 0, err
		}
		select {
		case <-received:
		case <-time.After(2 * time.Second):
			return 0, fmt.Errorf("experiments: LLRP report timed out")
		}
	}
	return time.Since(start) / rounds, nil
}

// Print renders the result.
func (r *LatencyResult) Print(w io.Writer) {
	printf(w, "Sec. 8 — latency\n")
	printf(w, "processing per fix : %8.1f ms (paper: ≈57 ms)\n", float64(r.Processing.Microseconds())/1000)
	printf(w, "llrp report (loop) : %8.2f ms\n", float64(r.Network.Microseconds())/1000)
	printf(w, "end-to-end (1 cyc) : %8.1f ms (paper: < 500 ms)\n\n", float64(r.EndToEnd.Microseconds())/1000)
}
