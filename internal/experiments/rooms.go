package experiments

import (
	"io"

	"dwatch/internal/channel"
	"dwatch/internal/dwatch"
	"dwatch/internal/geom"
	"dwatch/internal/sim"
	"dwatch/internal/stats"
)

// roomConfigs returns the three environment presets in the paper's
// multipath order: library (high), laboratory (medium), hall (low).
func roomConfigs() []sim.Config {
	return []sim.Config{sim.LibraryConfig(), sim.LaboratoryConfig(), sim.HallConfig()}
}

// runRoom localizes a human target at every test location and collects
// human-rule errors and coverage. Each attempt is a robust fix over
// `reps` acquisition rounds (median of fixes — the paper's repeated
// measurements per location serve the same purpose).
func runRoom(s *dwatch.System, locations []geom.Point, reps int) (*stats.Collector, error) {
	col := &stats.Collector{}
	for _, p := range locations {
		res, err := s.LocateRobust([]channel.Target{channel.HumanTarget(p)}, reps)
		if err != nil {
			col.AddMiss()
			continue
		}
		col.AddError(stats.HumanError(res.Pos.Dist2D(p)))
	}
	return col, nil
}

// ---------------------------------------------------------------------
// Fig. 14 — overall localization accuracy per environment.

// Fig14Env is one environment's result.
type Fig14Env struct {
	Name    string
	Summary stats.Summary
	CDF     []stats.CDFPoint
}

// Fig14Result holds all three environments.
type Fig14Result struct {
	Envs []Fig14Env
}

// Fig14Localization reproduces Fig. 14: human-target localization
// accuracy in the library, laboratory and hall. The paper's headline:
// the richest-multipath room (library) is the MOST accurate — "bad"
// multipaths are useful signal.
func Fig14Localization(opts Options) (*Fig14Result, error) {
	opts = opts.withDefaults()
	out := &Fig14Result{}
	for _, cfg := range roomConfigs() {
		cfg.Seed = opts.Seed
		s, err := buildSystem(cfg, dwatch.Config{})
		if err != nil {
			return nil, err
		}
		locs := subsample(s.Scenario.TestLocations(0.5), opts.MaxLocations)
		col, err := runRoom(s, locs, opts.Reps)
		if err != nil {
			return nil, err
		}
		sum, err := col.Summarize()
		if err != nil {
			return nil, err
		}
		out.Envs = append(out.Envs, Fig14Env{
			Name:    cfg.Name,
			Summary: sum,
			CDF:     stats.CDF(col.Errors()),
		})
	}
	return out, nil
}

// Print renders the figure as a table.
func (r *Fig14Result) Print(w io.Writer) {
	printf(w, "Fig. 14 — localization error by environment (cm)\n")
	printf(w, "env          median   mean    p90   coverage\n")
	for _, e := range r.Envs {
		printf(w, "%-11s  %6.1f  %5.1f  %5.1f  %7.0f%%\n",
			e.Name, 100*e.Summary.Median, 100*e.Summary.Mean, 100*e.Summary.P90, 100*e.Summary.Coverage)
	}
	printf(w, "(paper medians: library 16.5, laboratory 25.3, hall 32.1;\n")
	printf(w, " means 17.6 / 25.8 / 31.2 — richest multipath wins)\n\n")
}

// ---------------------------------------------------------------------
// Fig. 15 — impact of the number of antennas.

// Fig15Result holds mean error per environment per antenna count.
type Fig15Result struct {
	Antennas []int
	Envs     []string
	// MeanErr[e][a] is the mean error (m) of environment e with
	// Antennas[a] antennas; coverage likewise.
	MeanErr  [][]float64
	Coverage [][]float64
}

// Fig15Antennas reproduces Fig. 15: more antennas give finer AoA
// resolution and lower error (paper library: 54.3 / 35.6 / 17.6 cm for
// 4 / 6 / 8 antennas).
func Fig15Antennas(opts Options) (*Fig15Result, error) {
	opts = opts.withDefaults()
	ants := []int{4, 6, 8}
	if opts.Fast {
		ants = []int{4, 8}
	}
	out := &Fig15Result{Antennas: ants}
	for _, cfg := range roomConfigs() {
		out.Envs = append(out.Envs, cfg.Name)
		var row, cov []float64
		for _, m := range ants {
			c := cfg
			c.Seed = opts.Seed
			c.Antennas = m
			s, err := buildSystem(c, dwatch.Config{})
			if err != nil {
				return nil, err
			}
			locs := subsample(s.Scenario.TestLocations(0.5), opts.MaxLocations)
			col, err := runRoom(s, locs, opts.Reps)
			if err != nil {
				return nil, err
			}
			sum, err := col.Summarize()
			if err != nil {
				return nil, err
			}
			mean := sum.Mean
			if sum.N == 0 {
				mean = float64(c.Width) // nothing localized: report room-scale error
			}
			row = append(row, mean)
			cov = append(cov, sum.Coverage)
		}
		out.MeanErr = append(out.MeanErr, row)
		out.Coverage = append(out.Coverage, cov)
	}
	return out, nil
}

// Print renders the figure as a table.
func (r *Fig15Result) Print(w io.Writer) {
	printf(w, "Fig. 15 — mean error (cm) vs number of antennas\n")
	printf(w, "env         ")
	for _, a := range r.Antennas {
		printf(w, "  M=%d   ", a)
	}
	printf(w, "\n")
	for i, e := range r.Envs {
		printf(w, "%-11s ", e)
		for j := range r.Antennas {
			printf(w, " %6.1f ", 100*r.MeanErr[i][j])
		}
		printf(w, "\n")
	}
	printf(w, "(paper library: 54.3 / 35.6 / 17.6 cm for 4 / 6 / 8 antennas)\n\n")
}

// ---------------------------------------------------------------------
// Fig. 16 — impact of the number of reflectors (hall).

// Fig16Result holds error and coverage versus added reflectors.
type Fig16Result struct {
	Reflectors []int
	MeanErr    []float64
	Coverage   []float64
}

// Fig16Reflectors reproduces Fig. 16: adding reflectors to the sparse
// hall raises coverage and improves accuracy (paper: 31.2 → 20.8 cm
// mean error, coverage up sharply).
func Fig16Reflectors(opts Options) (*Fig16Result, error) {
	opts = opts.withDefaults()
	counts := []int{0, 2, 4, 6, 8, 10, 12}
	if opts.Fast {
		counts = []int{0, 8}
	}
	out := &Fig16Result{Reflectors: counts}
	for _, n := range counts {
		cfg := sim.HallConfig()
		cfg.Seed = opts.Seed
		sc, err := sim.Build(cfg)
		if err != nil {
			return nil, err
		}
		sc.AddReflectors(n)
		s := dwatch.New(sc)
		if err := s.Calibrate(); err != nil {
			return nil, err
		}
		if err := s.CollectBaseline(); err != nil {
			return nil, err
		}
		locs := subsample(sc.TestLocations(0.5), opts.MaxLocations)
		col, err := runRoom(s, locs, opts.Reps)
		if err != nil {
			return nil, err
		}
		sum, err := col.Summarize()
		if err != nil {
			return nil, err
		}
		mean := sum.Mean
		if sum.N == 0 {
			mean = cfg.Width
		}
		out.MeanErr = append(out.MeanErr, mean)
		out.Coverage = append(out.Coverage, sum.Coverage)
	}
	return out, nil
}

// Print renders the figure as a table.
func (r *Fig16Result) Print(w io.Writer) {
	printf(w, "Fig. 16 — hall accuracy vs added reflectors\n")
	printf(w, "reflectors  mean-err(cm)  coverage\n")
	for i, n := range r.Reflectors {
		printf(w, "%10d  %12.1f  %7.0f%%\n", n, 100*r.MeanErr[i], 100*r.Coverage[i])
	}
	printf(w, "(paper: 31.2 → 20.8 cm mean error, coverage rises with reflectors)\n\n")
}

// ---------------------------------------------------------------------
// Fig. 17 — impact of the number of tags (library).

// Fig17Result holds error and coverage versus tag count.
type Fig17Result struct {
	Tags     []int
	MeanErr  []float64
	Coverage []float64
}

// Fig17Tags reproduces Fig. 17: more tags create more blockable paths,
// raising coverage and accuracy in the library.
func Fig17Tags(opts Options) (*Fig17Result, error) {
	opts = opts.withDefaults()
	counts := []int{7, 12, 17, 22, 27, 32, 37, 42, 47}
	if opts.Fast {
		counts = []int{7, 27}
	}
	out := &Fig17Result{Tags: counts}
	for _, n := range counts {
		cfg := sim.LibraryConfig()
		cfg.Seed = opts.Seed
		cfg.Tags = n
		s, err := buildSystem(cfg, dwatch.Config{})
		if err != nil {
			return nil, err
		}
		locs := subsample(s.Scenario.TestLocations(0.5), opts.MaxLocations)
		col, err := runRoom(s, locs, opts.Reps)
		if err != nil {
			return nil, err
		}
		sum, err := col.Summarize()
		if err != nil {
			return nil, err
		}
		mean := sum.Mean
		if sum.N == 0 {
			mean = cfg.Width
		}
		out.MeanErr = append(out.MeanErr, mean)
		out.Coverage = append(out.Coverage, sum.Coverage)
	}
	return out, nil
}

// Print renders the figure as a table.
func (r *Fig17Result) Print(w io.Writer) {
	printf(w, "Fig. 17 — library accuracy vs number of tags\n")
	printf(w, "tags  mean-err(cm)  coverage\n")
	for i, n := range r.Tags {
		printf(w, "%4d  %12.1f  %7.0f%%\n", n, 100*r.MeanErr[i], 100*r.Coverage[i])
	}
	printf(w, "(paper: error falls and coverage rises with more tags)\n\n")
}

// ---------------------------------------------------------------------
// Fig. 18 — impact of tag-array height difference (library).

// Fig18Result holds error versus tag-array height difference.
type Fig18Result struct {
	HeightDiffCm []float64
	MeanErr      []float64
	Coverage     []float64
}

// Fig18Height reproduces Fig. 18: tags mounted above the array plane
// still work; error grows slowly with height difference (paper: ≈24 cm
// at 40 cm difference, ≈40 cm at 120 cm).
func Fig18Height(opts Options) (*Fig18Result, error) {
	opts = opts.withDefaults()
	diffs := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2}
	if opts.Fast {
		diffs = []float64{0, 0.8}
	}
	out := &Fig18Result{}
	for _, d := range diffs {
		cfg := sim.LibraryConfig()
		cfg.Seed = opts.Seed
		cfg.TagZMin = cfg.ArrayZ + d
		cfg.TagZMax = cfg.ArrayZ + d
		s, err := buildSystem(cfg, dwatch.Config{})
		if err != nil {
			return nil, err
		}
		locs := subsample(s.Scenario.TestLocations(0.5), opts.MaxLocations)
		col, err := runRoom(s, locs, opts.Reps)
		if err != nil {
			return nil, err
		}
		sum, err := col.Summarize()
		if err != nil {
			return nil, err
		}
		mean := sum.Mean
		if sum.N == 0 {
			mean = cfg.Width
		}
		out.HeightDiffCm = append(out.HeightDiffCm, d*100)
		out.MeanErr = append(out.MeanErr, mean)
		out.Coverage = append(out.Coverage, sum.Coverage)
	}
	return out, nil
}

// Print renders the figure as a table.
func (r *Fig18Result) Print(w io.Writer) {
	printf(w, "Fig. 18 — library accuracy vs tag-array height difference\n")
	printf(w, "diff(cm)  mean-err(cm)  coverage\n")
	for i, d := range r.HeightDiffCm {
		printf(w, "%8.0f  %12.1f  %7.0f%%\n", d, 100*r.MeanErr[i], 100*r.Coverage[i])
	}
	printf(w, "(paper: ≈24 cm at 40 cm difference, ≈40 cm at 120 cm)\n\n")
}
