package experiments

import (
	"io"
	"math"

	"dwatch/internal/calib"
	"dwatch/internal/channel"
	"dwatch/internal/doppler"
	"dwatch/internal/dwatch"
	"dwatch/internal/geom"
	"dwatch/internal/loc"
	"dwatch/internal/music"
	"dwatch/internal/optimize"
	"dwatch/internal/pmusic"
	"dwatch/internal/rf"
	"dwatch/internal/sim"
	"dwatch/internal/stats"
)

// Ablations probe the design choices DESIGN.md calls out; they are not
// paper figures but quantify why each mechanism exists.

// ---------------------------------------------------------------------
// Smoothing ablation: coherent multipath without spatial smoothing.

// AblationSmoothingResult compares path resolution with and without
// forward-backward spatial smoothing.
type AblationSmoothingResult struct {
	Trials          int
	ResolvedWith    int // trials where all 3 paths produced peaks
	ResolvedWithout int
}

// AblationSmoothing shows why Section 4.2 adopts spatial smoothing: the
// multipath copies of one tag's backscatter are fully coherent, and
// without smoothing the correlation matrix is rank-1, collapsing MUSIC.
func AblationSmoothing(opts Options) (*AblationSmoothingResult, error) {
	opts = opts.withDefaults()
	sc, err := newMicroScene(6)
	if err != nil {
		return nil, err
	}
	out := &AblationSmoothingResult{Trials: 4 * opts.Reps}
	for trial := 0; trial < out.Trials; trial++ {
		rng := rngFor(opts.Seed, int64(5000+trial))
		x, _, err := sc.env.Synthesize(sc.tagPos, sc.arr, nil, channel.SynthOpts{
			Snapshots: 10, NoiseStd: microNoiseStd, Rng: rng,
		})
		if err != nil {
			return nil, err
		}
		resolves := func(noSmoothing bool) (bool, error) {
			res, err := music.Compute(x, sc.arr, music.Options{Sources: 3, NoSmoothing: noSmoothing})
			if err != nil {
				return false, err
			}
			peaks := music.FindPeaks(res.Angles, res.Spectrum, 0.02)
			// Resolved means the three true paths are the spectrum's
			// dominant structure: each matched tightly by a peak, with
			// no more than one spurious extra peak.
			if len(peaks) > len(sc.paths)+1 {
				return false, nil
			}
			for _, p := range sc.paths {
				if _, ok := music.NearestPeak(peaks, p.AoA, rf.Rad(5)); !ok {
					return false, nil
				}
			}
			return true, nil
		}
		w, err := resolves(false)
		if err != nil {
			return nil, err
		}
		wo, err := resolves(true)
		if err != nil {
			return nil, err
		}
		if w {
			out.ResolvedWith++
		}
		if wo {
			out.ResolvedWithout++
		}
	}
	return out, nil
}

// Print renders the result.
func (r *AblationSmoothingResult) Print(w io.Writer) {
	printf(w, "Ablation — spatial smoothing (3 coherent paths resolved)\n")
	printf(w, "with smoothing    : %d/%d trials\n", r.ResolvedWith, r.Trials)
	printf(w, "without smoothing : %d/%d trials\n\n", r.ResolvedWithout, r.Trials)
}

// ---------------------------------------------------------------------
// Normalization ablation: P-MUSIC with and without Nor(B).

// AblationNormalizationResult compares power-estimation fidelity of the
// full P-MUSIC (Eq. 14) against the raw product PB·B without peak
// normalization.
type AblationNormalizationResult struct {
	// RatioErrWith/Without: mean |estimated/true − 1| of the power
	// ratio between path 1 and path 2 across trials.
	RatioErrWith    float64
	RatioErrWithout float64
	Trials          int
}

// AblationNormalization quantifies Eq. 14's Nor(·) term: without it,
// MUSIC's pseudo-probability peak heights distort per-path power.
func AblationNormalization(opts Options) (*AblationNormalizationResult, error) {
	opts = opts.withDefaults()
	sc, err := newMicroScene(6)
	if err != nil {
		return nil, err
	}
	if len(sc.paths) < 2 {
		return nil, errMicroPaths(len(sc.paths))
	}
	trueRatio := (sc.paths[0].Gain * sc.paths[0].Gain) / (sc.paths[1].Gain * sc.paths[1].Gain)
	out := &AblationNormalizationResult{Trials: 4 * opts.Reps}
	for trial := 0; trial < out.Trials; trial++ {
		rng := rngFor(opts.Seed, int64(6000+trial))
		x, _, err := sc.env.Synthesize(sc.tagPos, sc.arr, nil, channel.SynthOpts{
			Snapshots: 10, NoiseStd: microNoiseStd, Rng: rng,
		})
		if err != nil {
			return nil, err
		}
		sp, err := pmusic.Compute(x, sc.arr, pmusic.Options{Music: microMusicOpts})
		if err != nil {
			return nil, err
		}
		ratioAt := func(power []float64) float64 {
			peaks := music.FindPeaks(sp.Angles, power, 0.001)
			p0, ok0 := music.NearestPeak(peaks, sc.paths[0].AoA, pathMatchTol)
			p1, ok1 := music.NearestPeak(peaks, sc.paths[1].AoA, pathMatchTol)
			if !ok0 || !ok1 || p1.Amplitude == 0 {
				return math.Inf(1)
			}
			return p0.Amplitude / p1.Amplitude
		}
		// Full P-MUSIC.
		rw := ratioAt(sp.Power)
		// Without normalization: PB(θ)·B(θ) raw.
		raw := make([]float64, len(sp.Angles))
		for i := range raw {
			raw[i] = sp.Beam[i] * sp.Music.Spectrum[i]
		}
		rwo := ratioAt(raw)
		out.RatioErrWith += relErr(rw, trueRatio)
		out.RatioErrWithout += relErr(rwo, trueRatio)
	}
	out.RatioErrWith /= float64(out.Trials)
	out.RatioErrWithout /= float64(out.Trials)
	return out, nil
}

func relErr(got, want float64) float64 {
	if math.IsInf(got, 0) {
		return 10
	}
	return math.Abs(got/want - 1)
}

// Print renders the result.
func (r *AblationNormalizationResult) Print(w io.Writer) {
	printf(w, "Ablation — P-MUSIC peak normalization (power-ratio fidelity)\n")
	printf(w, "with Nor(B)    : mean ratio error %.2f\n", r.RatioErrWith)
	printf(w, "without Nor(B) : mean ratio error %.2f\n\n", r.RatioErrWithout)
}

// ---------------------------------------------------------------------
// Optimizer ablation: GD-only vs GA-only vs hybrid for Eq. 11.

// AblationOptimizerResult compares calibration error per optimizer.
type AblationOptimizerResult struct {
	GDOnly float64 // mean abs phase error, rad
	GAOnly float64
	Hybrid float64
	Trials int
}

// AblationOptimizer shows why Section 4.1 uses the GA+GD hybrid: the
// Eq. 11 objective is multimodal, so gradient descent from a random
// start stalls in local minima, while GA alone lacks final precision.
func AblationOptimizer(opts Options) (*AblationOptimizerResult, error) {
	opts = opts.withDefaults()
	arr, err := rf.NewArray(geom.Pt(0, 0, 1.25), geom.Pt2(1, 0), 8)
	if err != nil {
		return nil, err
	}
	// Multipath makes the Eq. 11 objective multimodal; in a clean LoS
	// room plain gradient descent already lands in the right basin.
	env := channel.NewEnv([]channel.Reflector{
		{Wall: geom.NewWall(-6, 9, 6, 9, 0, 2.5), Coeff: 0.6},
		{Wall: geom.NewWall(7, 0, 7, 9, 0, 2.5), Coeff: 0.6},
	})
	out := &AblationOptimizerResult{Trials: opts.Reps * 2}
	for trial := 0; trial < out.Trials; trial++ {
		rng := rngFor(opts.Seed, int64(7000+trial))
		truth := calib.RandomOffsets(arr.Elements, rng)
		var obs []calib.TagObs
		for i := 0; i < 6; i++ {
			pos := geom.Pt(-2+4*rng.Float64(), 2+6*rng.Float64(), 1.25)
			x, _, err := env.Synthesize(pos, arr, nil, channel.SynthOpts{
				Snapshots: 12, NoiseStd: 0.002, PhaseOffsets: truth, Rng: rng,
			})
			if err != nil {
				return nil, err
			}
			o, err := calib.NewTagObs(x, arr.SteeringAt(pos))
			if err != nil {
				return nil, err
			}
			obs = append(obs, o)
		}
		f := calib.Objective(arr, obs)
		n := arr.Elements - 1

		// GD-only from a random start.
		start := make([]float64, n)
		for i := range start {
			start[i] = rng.Float64()*2*math.Pi - math.Pi
		}
		gdX, _ := optimize.GradientDescent(f, start, optimize.GDOptions{})
		out.GDOnly += offsetsErr(gdX, truth)

		// GA-only.
		gaX, _, err := optimize.Genetic(f, n, optimize.GAOptions{Lo: -math.Pi, Hi: math.Pi, Rng: rng})
		if err != nil {
			return nil, err
		}
		out.GAOnly += offsetsErr(gaX, truth)

		// Hybrid.
		hyX, _, err := optimize.Hybrid(f, n, optimize.HybridOptions{
			GA: optimize.GAOptions{Lo: -math.Pi, Hi: math.Pi, Rng: rng},
		})
		if err != nil {
			return nil, err
		}
		out.Hybrid += offsetsErr(hyX, truth)
	}
	out.GDOnly /= float64(out.Trials)
	out.GAOnly /= float64(out.Trials)
	out.Hybrid /= float64(out.Trials)
	return out, nil
}

// offsetsErr converts an optimizer solution (β₂…β_M) to the Fig. 9 error
// metric against the true per-antenna offsets.
func offsetsErr(x, truth []float64) float64 {
	est := make([]float64, len(truth))
	for i := 1; i < len(truth); i++ {
		est[i] = rf.WrapPhase(x[i-1])
	}
	return calib.MeanAbsError(est, truth)
}

// Print renders the result.
func (r *AblationOptimizerResult) Print(w io.Writer) {
	printf(w, "Ablation — Eq. 11 optimizer (mean phase error, rad)\n")
	printf(w, "gradient descent only : %.4f\n", r.GDOnly)
	printf(w, "genetic only          : %.4f\n", r.GAOnly)
	printf(w, "hybrid GA+GD          : %.4f\n\n", r.Hybrid)
}

// ---------------------------------------------------------------------
// Grid-size ablation (footnote 3 of the paper).

// AblationGridResult compares localization accuracy and cost per grid
// cell size.
type AblationGridResult struct {
	CellCm   []float64
	MedianCm []float64
	Coverage []float64
}

// AblationGridSize sweeps the localization grid cell (the paper picks
// 5 cm for rooms as its accuracy/latency balance).
func AblationGridSize(opts Options) (*AblationGridResult, error) {
	opts = opts.withDefaults()
	cells := []float64{0.02, 0.05, 0.10, 0.20}
	if opts.Fast {
		cells = []float64{0.05, 0.20}
	}
	out := &AblationGridResult{}
	for _, cell := range cells {
		cfg := sim.LibraryConfig()
		cfg.Seed = opts.Seed
		cfg.Cell = cell
		s, err := buildSystem(cfg, dwatch.Config{})
		if err != nil {
			return nil, err
		}
		locs := subsample(s.Scenario.TestLocations(0.5), opts.MaxLocations)
		col, err := runRoom(s, locs, opts.Reps)
		if err != nil {
			return nil, err
		}
		sum, err := col.Summarize()
		if err != nil {
			return nil, err
		}
		med := sum.Median
		if sum.N == 0 {
			med = cfg.Width
		}
		out.CellCm = append(out.CellCm, cell*100)
		out.MedianCm = append(out.MedianCm, med*100)
		out.Coverage = append(out.Coverage, sum.Coverage)
	}
	return out, nil
}

// Print renders the result.
func (r *AblationGridResult) Print(w io.Writer) {
	printf(w, "Ablation — localization grid cell size (library)\n")
	printf(w, "cell(cm)  median(cm)  coverage\n")
	for i := range r.CellCm {
		printf(w, "%8.0f  %10.1f  %7.0f%%\n", r.CellCm[i], r.MedianCm[i], 100*r.Coverage[i])
	}
	printf(w, "\n")
}

// ---------------------------------------------------------------------
// Outlier-rejection ablation: likelihood fusion vs naive triangulation.

// AblationOutlierResult compares Eq. 15 likelihood fusion against naive
// first-pair triangulation without clustering. Medians are over each
// method's own successful fixes, so the fix counts matter: the naive
// method only even produces a candidate when its first two angles
// happen to intersect in the room.
type AblationOutlierResult struct {
	LikelihoodMedianCm float64
	LikelihoodFixes    int
	NaiveMedianCm      float64
	NaiveFixes         int
	NaiveP90Cm         float64
	LikelihoodP90Cm    float64
	Attempts           int
}

// AblationOutlierRejection quantifies Section 4.3's wrong-angle
// handling: naive triangulation of the first detected angle pair is
// badly polluted by reflection-leg blockings, while the likelihood
// product (and candidate clustering) suppresses them.
func AblationOutlierRejection(opts Options) (*AblationOutlierResult, error) {
	opts = opts.withDefaults()
	cfg := sim.LibraryConfig()
	cfg.Seed = opts.Seed
	s, err := buildSystem(cfg, dwatch.Config{})
	if err != nil {
		return nil, err
	}
	locs := subsample(s.Scenario.TestLocations(0.5), opts.MaxLocations)
	var likeErrs, naiveErrs []float64
	attempts := 0
	for _, p := range locs {
		attempts++
		tgt := []channel.Target{channel.HumanTarget(p)}
		views, err := s.Views(tgt)
		if err != nil {
			continue
		}
		// Likelihood fusion.
		if res, err := loc.Localize(views, s.Scenario.Grid, loc.Options{}); err == nil {
			likeErrs = append(likeErrs, stats.HumanError(res.Pos.Dist2D(p)))
		}
		// Naive: intersect the strongest drop angle of the first two
		// readers that saw anything, no clustering, no rejection.
		if fix, ok := naiveTriangulate(views, s); ok {
			naiveErrs = append(naiveErrs, stats.HumanError(fix.Dist2D(p)))
		}
	}
	out := &AblationOutlierResult{
		Attempts:        attempts,
		LikelihoodFixes: len(likeErrs),
		NaiveFixes:      len(naiveErrs),
	}
	if len(likeErrs) > 0 {
		m, _ := stats.Median(likeErrs)
		p, _ := stats.Percentile(likeErrs, 90)
		out.LikelihoodMedianCm = m * 100
		out.LikelihoodP90Cm = p * 100
	}
	if len(naiveErrs) > 0 {
		m, _ := stats.Median(naiveErrs)
		p, _ := stats.Percentile(naiveErrs, 90)
		out.NaiveMedianCm = m * 100
		out.NaiveP90Cm = p * 100
	}
	return out, nil
}

// naiveTriangulate intersects the strongest drop angles of the first
// two readers with any evidence, with no clustering or outlier
// rejection — the strawman Section 4.3 improves on.
func naiveTriangulate(views []*loc.View, s *dwatch.System) (geom.Point, bool) {
	var obs []loc.AngleObservation
	for _, v := range views {
		bi, bv := -1, 0.2
		for i, d := range v.Drop {
			if d > bv {
				bi, bv = i, d
			}
		}
		if bi < 0 {
			continue
		}
		obs = append(obs, loc.AngleObservation{Array: v.Array, Angle: v.Angles[bi]})
		if len(obs) == 2 {
			break
		}
	}
	if len(obs) < 2 {
		return geom.Point{}, false
	}
	pts := loc.Triangulate(obs[0], obs[1], s.Scenario.Grid)
	if len(pts) == 0 {
		return geom.Point{}, false
	}
	return pts[0], true
}

// Print renders the result.
func (r *AblationOutlierResult) Print(w io.Writer) {
	printf(w, "Ablation — wrong-angle handling (library, human-rule cm)\n")
	printf(w, "                             median    p90   fixes/attempts\n")
	printf(w, "likelihood fusion (Eq. 15) : %6.1f  %6.1f  %d/%d\n",
		r.LikelihoodMedianCm, r.LikelihoodP90Cm, r.LikelihoodFixes, r.Attempts)
	printf(w, "naive 2-angle triangulation: %6.1f  %6.1f  %d/%d\n\n",
		r.NaiveMedianCm, r.NaiveP90Cm, r.NaiveFixes, r.Attempts)
}

// ---------------------------------------------------------------------
// Second-order-bounce ablation.

// AblationSecondOrderResult compares coverage and error with one- vs
// two-bounce channel modelling.
type AblationSecondOrderResult struct {
	Envs          []string
	CoverageFirst []float64
	CoverageBoth  []float64
	MedianFirstCm []float64
	MedianBothCm  []float64
	P90FirstCm    []float64
	P90BothCm     []float64
}

// AblationSecondOrder quantifies what double bounces buy and cost:
// they thicken the blockable multipath (coverage rises, the paper's
// "bad multipath is useful" effect) but two of a double bounce's three
// legs produce wrong-angle evidence when blocked, so the error tail
// grows. The room presets therefore default to first-order only.
func AblationSecondOrder(opts Options) (*AblationSecondOrderResult, error) {
	opts = opts.withDefaults()
	out := &AblationSecondOrderResult{}
	for _, mk := range []func() sim.Config{sim.HallConfig, sim.LibraryConfig} {
		for _, second := range []bool{false, true} {
			cfg := mk()
			cfg.Seed = opts.Seed
			cfg.SecondOrder = second
			s, err := buildSystem(cfg, dwatch.Config{})
			if err != nil {
				return nil, err
			}
			locs := subsample(s.Scenario.TestLocations(0.5), opts.MaxLocations)
			col, err := runRoom(s, locs, opts.Reps)
			if err != nil {
				return nil, err
			}
			sum, err := col.Summarize()
			if err != nil {
				return nil, err
			}
			if !second {
				out.Envs = append(out.Envs, cfg.Name)
				out.CoverageFirst = append(out.CoverageFirst, sum.Coverage)
				out.MedianFirstCm = append(out.MedianFirstCm, 100*sum.Median)
				out.P90FirstCm = append(out.P90FirstCm, 100*sum.P90)
			} else {
				out.CoverageBoth = append(out.CoverageBoth, sum.Coverage)
				out.MedianBothCm = append(out.MedianBothCm, 100*sum.Median)
				out.P90BothCm = append(out.P90BothCm, 100*sum.P90)
			}
		}
	}
	return out, nil
}

// Print renders the result.
func (r *AblationSecondOrderResult) Print(w io.Writer) {
	printf(w, "Ablation — second-order bounces (coverage vs tail)\n")
	printf(w, "env         order  coverage  median(cm)  p90(cm)\n")
	for i, e := range r.Envs {
		printf(w, "%-11s 1st    %7.0f%%  %10.1f  %7.1f\n", e, 100*r.CoverageFirst[i], r.MedianFirstCm[i], r.P90FirstCm[i])
		printf(w, "%-11s 1st+2nd%7.0f%%  %10.1f  %7.1f\n", e, 100*r.CoverageBoth[i], r.MedianBothCm[i], r.P90BothCm[i])
	}
	printf(w, "\n")
}

// ---------------------------------------------------------------------
// Extension: Doppler speed estimation (Section 8).

// ExtensionDopplerResult compares estimated Doppler shifts against the
// bistatic ground truth across walking speeds.
type ExtensionDopplerResult struct {
	SpeedsMps []float64
	WantHz    []float64
	GotHz     []float64
	BoundMps  []float64
}

// ExtensionDoppler exercises the Section 8 extension: a scattering
// walker's Doppler shift, measured by pulse-pair on beamformed coherent
// bursts, tracks the bistatic range-rate ground truth and lower-bounds
// the walking speed.
func ExtensionDoppler(opts Options) (*ExtensionDopplerResult, error) {
	opts = opts.withDefaults()
	arr, err := rf.NewArray(geom.Pt(0, 0, 1.25), geom.Pt2(1, 0), 8)
	if err != nil {
		return nil, err
	}
	env := channel.NewEnv(nil)
	tagPos := geom.Pt(3, 6, 1.25)
	start := geom.Pt(2.0, 1.5, 1.25)
	speeds := []float64{0.5, 1.0, 1.5, 2.0}
	if opts.Fast {
		speeds = []float64{0.5, 1.5}
	}
	out := &ExtensionDopplerResult{SpeedsMps: speeds}
	for i, speed := range speeds {
		u1 := start.Sub(tagPos).Unit()
		u2 := start.Sub(arr.Center()).Unit()
		vel := u1.Add(u2).Unit().Scale(-speed)
		mt := channel.MovingTarget{Target: channel.HumanTarget(start), Vel: vel, ScatterCoeff: 0.25}
		const interval = 0.01
		x, err := env.SynthesizeMoving(tagPos, arr, []channel.MovingTarget{mt}, interval, channel.SynthOpts{
			Snapshots: 32, NoiseStd: 1e-4, Rng: rngFor(opts.Seed, int64(8000+i)),
		})
		if err != nil {
			return nil, err
		}
		est, err := doppler.EstimateShift(x, arr, arr.AngleTo(start), interval)
		if err != nil {
			return nil, err
		}
		out.WantHz = append(out.WantHz, -doppler.BistaticRate(tagPos, start, vel, arr.Center())/arr.Lambda)
		out.GotHz = append(out.GotHz, est.ShiftHz)
		out.BoundMps = append(out.BoundMps, est.SpeedLBMps)
	}
	return out, nil
}

// Print renders the result.
func (r *ExtensionDopplerResult) Print(w io.Writer) {
	printf(w, "Extension — Doppler speed estimation (Sec. 8)\n")
	printf(w, "speed(m/s)  want(Hz)  got(Hz)  bound(m/s)\n")
	for i := range r.SpeedsMps {
		printf(w, "%10.1f  %8.2f  %7.2f  %10.2f\n", r.SpeedsMps[i], r.WantHz[i], r.GotHz[i], r.BoundMps[i])
	}
	printf(w, "\n")
}
