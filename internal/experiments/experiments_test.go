package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// fast returns cheap options for smoke-level shape checks.
func fast() Options { return Options{Fast: true} }

func TestFig3Spread(t *testing.T) {
	r, err := Fig3PhaseOffsets(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.OffsetsDeg) != 16 {
		t.Fatalf("ports = %d", len(r.OffsetsDeg))
	}
	if r.OffsetsDeg[0] != 0 {
		t.Errorf("reference port offset = %v", r.OffsetsDeg[0])
	}
	// Fig. 3's point: the offsets are spread widely, not clustered.
	if r.MaxDeg-r.MinDeg < 90 {
		t.Errorf("offset spread only %.1f°", r.MaxDeg-r.MinDeg)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Fig. 3") {
		t.Error("Print missing header")
	}
}

func TestFig4MusicUnreliable(t *testing.T) {
	r, err := Fig4MusicBlocking(fast())
	if err != nil {
		t.Fatal(err)
	}
	// The blocked path must be present in baseline.
	if r.BaselinePeaks[r.BlockedIndex] != 1 {
		t.Fatalf("blocked path had no baseline peak")
	}
	// The paper's observation: blocking ONE path changes OTHER peaks too
	// (here: some unblocked peak moves by more than 30%).
	falseChange := false
	for i := range r.PathAnglesDeg {
		if i == r.BlockedIndex || r.BaselinePeaks[i] == 0 {
			continue
		}
		if math.Abs(r.OneBlockedPeaks[i]-1) > 0.3 {
			falseChange = true
		}
	}
	if !falseChange {
		t.Error("classic MUSIC looked reliable — expected false peak changes")
	}
}

func TestFig9CalibrationBeatsPhaser(t *testing.T) {
	r, err := Fig9Calibration(fast())
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.Tags) - 1
	if r.DWatch[last] >= r.Phaser[last] {
		t.Errorf("d-watch (%.3f) not better than phaser (%.3f) at %d tags",
			r.DWatch[last], r.Phaser[last], r.Tags[last])
	}
	// Paper: < 0.05 rad with enough tags (we allow a small margin).
	if r.DWatch[last] > 0.1 {
		t.Errorf("d-watch error %.3f rad at %d tags, want < 0.1", r.DWatch[last], r.Tags[last])
	}
}

func TestFig10CalibrationOrdering(t *testing.T) {
	r, err := Fig10AoAError(fast())
	if err != nil {
		t.Fatal(err)
	}
	if r.MedianDWatch > r.MedianNone {
		t.Errorf("calibrated AoA (%.1f°) worse than uncalibrated (%.1f°)", r.MedianDWatch, r.MedianNone)
	}
	if r.MedianDWatch > 6 {
		t.Errorf("d-watch median AoA error %.1f°, paper ≈ 2°", r.MedianDWatch)
	}
}

func TestFig12OnlyBlockedPeakDrops(t *testing.T) {
	r, err := Fig12PMusicBlocking(fast())
	if err != nil {
		t.Fatal(err)
	}
	if r.OneBlockedPeaks[r.BlockedIndex] > 0.3 {
		t.Errorf("blocked peak held %.2f of its power", r.OneBlockedPeaks[r.BlockedIndex])
	}
	for i := range r.PathAnglesDeg {
		if i == r.BlockedIndex || r.BaselinePeaks[i] == 0 {
			continue
		}
		if r.OneBlockedPeaks[i] < 0.6 {
			t.Errorf("unblocked path %d dropped to %.2f", i, r.OneBlockedPeaks[i])
		}
		if r.AllBlockedPeaks[i] > 0.3 {
			t.Errorf("all-blocked path %d held %.2f", i, r.AllBlockedPeaks[i])
		}
	}
}

func TestFig13PMusicBeatsMusic(t *testing.T) {
	r, err := Fig13DetectionRate(fast())
	if err != nil {
		t.Fatal(err)
	}
	// Compare at the far (well-conditioned) distance: P-MUSIC near
	// perfect, MUSIC poor — the paper's headline comparison.
	last := len(r.DistancesM) - 1
	if r.PMusicOne[last] < 0.9 {
		t.Errorf("p-music one-blocked detection %.2f at %v m", r.PMusicOne[last], r.DistancesM[last])
	}
	if r.PMusicAll[last] < 0.9 {
		t.Errorf("p-music all-blocked detection %.2f", r.PMusicAll[last])
	}
	if r.MusicOne[last] > r.PMusicOne[last]-0.3 {
		t.Errorf("music one-blocked %.2f too close to p-music %.2f", r.MusicOne[last], r.PMusicOne[last])
	}
}

func TestFig14DecimetreMedians(t *testing.T) {
	r, err := Fig14Localization(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Envs) != 3 {
		t.Fatalf("envs = %d", len(r.Envs))
	}
	for _, e := range r.Envs {
		if e.Summary.N == 0 {
			continue // tiny fast run may miss everywhere in one env
		}
		if e.Summary.Median > 0.5 {
			t.Errorf("%s median %.2f m, want decimetre-level", e.Name, e.Summary.Median)
		}
	}
}

func TestFig16MoreReflectorsMoreCoverage(t *testing.T) {
	r, err := Fig16Reflectors(fast())
	if err != nil {
		t.Fatal(err)
	}
	first, last := 0, len(r.Reflectors)-1
	if r.Coverage[last] < r.Coverage[first] {
		t.Errorf("coverage fell with reflectors: %.2f -> %.2f", r.Coverage[first], r.Coverage[last])
	}
}

func TestFig17MoreTagsMoreCoverage(t *testing.T) {
	r, err := Fig17Tags(fast())
	if err != nil {
		t.Fatal(err)
	}
	first, last := 0, len(r.Tags)-1
	if r.Coverage[last] < r.Coverage[first] {
		t.Errorf("coverage fell with tags: %.2f -> %.2f", r.Coverage[first], r.Coverage[last])
	}
}

func TestFig18HeightTolerance(t *testing.T) {
	r, err := Fig18Height(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.HeightDiffCm) < 2 {
		t.Fatal("no sweep")
	}
	// The system must keep producing fixes at moderate height offsets.
	if r.Coverage[0] == 0 {
		t.Error("no coverage at zero height difference")
	}
}

func TestFig19SeparableAndMerging(t *testing.T) {
	r, err := Fig19MultiTarget(fast())
	if err != nil {
		t.Fatal(err)
	}
	wide := r.Cases[0]
	if wide.Found < 2 {
		t.Errorf("wide separation found only %d bottles", wide.Found)
	}
	if wide.MaxErrCm > 40 {
		t.Errorf("wide-separation max error %.1f cm", wide.MaxErrCm)
	}
	tight := r.Cases[len(r.Cases)-1]
	if !tight.Merged {
		t.Error("20 cm separation did not merge — paper says it should")
	}
}

func TestFig21TracksGlyph(t *testing.T) {
	r, err := Fig21FistTracking(fast())
	if err != nil {
		t.Fatal(err)
	}
	g := r.Glyphs[0]
	if g.Points < 20 {
		t.Fatalf("tracked only %d points", g.Points)
	}
	if g.MedianCm > 25 {
		t.Errorf("tracking median %.1f cm, paper 5.8 cm — want same order", g.MedianCm)
	}
}

func TestLatencyBudget(t *testing.T) {
	r, err := Latency(fast())
	if err != nil {
		t.Fatal(err)
	}
	if r.Processing <= 0 || r.Network <= 0 {
		t.Fatalf("non-positive latency: %+v", r)
	}
	// Paper budget: end-to-end below 0.5 s. The test allows 2× headroom
	// so race-detector instrumentation (≈3-5× CPU cost) does not flake
	// it; the real-budget check lives in EXPERIMENTS.md's bench run.
	if r.EndToEnd.Seconds() > 1.0 {
		t.Errorf("end-to-end %.3f s far exceeds the paper's 0.5 s budget", r.EndToEnd.Seconds())
	}
}

func TestAblationSmoothingNecessary(t *testing.T) {
	r, err := AblationSmoothing(fast())
	if err != nil {
		t.Fatal(err)
	}
	if r.ResolvedWith <= r.ResolvedWithout {
		t.Errorf("smoothing did not help: with=%d without=%d", r.ResolvedWith, r.ResolvedWithout)
	}
	if r.ResolvedWith < r.Trials/2 {
		t.Errorf("smoothing resolved only %d/%d", r.ResolvedWith, r.Trials)
	}
}

func TestAblationNormalizationHelps(t *testing.T) {
	r, err := AblationNormalization(fast())
	if err != nil {
		t.Fatal(err)
	}
	if r.RatioErrWith >= r.RatioErrWithout {
		t.Errorf("normalization did not improve power fidelity: %.2f vs %.2f",
			r.RatioErrWith, r.RatioErrWithout)
	}
}

func TestAblationHybridOptimizerBest(t *testing.T) {
	r, err := AblationOptimizer(fast())
	if err != nil {
		t.Fatal(err)
	}
	// The hybrid must never be meaningfully worse than either component
	// (it often ties GD when the start basin is benign — the GA seeding
	// pays off only on adversarial starts, see optimize's Rastrigin test).
	const tol = 1e-3
	if r.Hybrid > r.GDOnly+tol || r.Hybrid > r.GAOnly+tol {
		t.Errorf("hybrid (%.4f) not best: gd=%.4f ga=%.4f", r.Hybrid, r.GDOnly, r.GAOnly)
	}
}

func TestAblationGridSizeRuns(t *testing.T) {
	r, err := AblationGridSize(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CellCm) < 2 {
		t.Fatal("no sweep")
	}
}

func TestAblationOutlierRejection(t *testing.T) {
	r, err := AblationOutlierRejection(fast())
	if err != nil {
		t.Fatal(err)
	}
	if r.Attempts == 0 {
		t.Fatal("no attempts")
	}
	// Likelihood fusion must not be worse than naive triangulation.
	if r.LikelihoodMedianCm > r.NaiveMedianCm+5 {
		t.Errorf("likelihood fusion (%.1f cm) worse than naive (%.1f cm)",
			r.LikelihoodMedianCm, r.NaiveMedianCm)
	}
}

func TestPrintersDoNotPanic(t *testing.T) {
	var buf bytes.Buffer
	o := fast()
	if r, err := Fig9Calibration(o); err == nil {
		r.Print(&buf)
	}
	if r, err := Fig13DetectionRate(o); err == nil {
		r.Print(&buf)
	}
	if r, err := Fig14Localization(o); err == nil {
		r.Print(&buf)
	}
	if r, err := Fig19MultiTarget(o); err == nil {
		r.Print(&buf)
	}
	if buf.Len() == 0 {
		t.Error("printers produced nothing")
	}
	// Printing to nil must be a no-op, not a panic.
	if r, err := Fig3PhaseOffsets(o); err == nil {
		r.Print(nil)
	}
}

func TestAblationSecondOrderCoverageRises(t *testing.T) {
	r, err := AblationSecondOrder(Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range r.Envs {
		if r.CoverageBoth[i]+0.15 < r.CoverageFirst[i] {
			t.Errorf("%s: second order reduced coverage %.2f -> %.2f", e, r.CoverageFirst[i], r.CoverageBoth[i])
		}
	}
}

func TestExtensionDopplerTracksSpeed(t *testing.T) {
	r, err := ExtensionDoppler(Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.SpeedsMps {
		if d := math.Abs(r.GotHz[i] - r.WantHz[i]); d > 0.4+0.1*r.WantHz[i] {
			t.Errorf("v=%.1f: got %.2f Hz, want %.2f", r.SpeedsMps[i], r.GotHz[i], r.WantHz[i])
		}
		if r.BoundMps[i] > r.SpeedsMps[i]+0.1 {
			t.Errorf("v=%.1f: bound %.2f exceeds speed", r.SpeedsMps[i], r.BoundMps[i])
		}
	}
	// The measured shift grows with speed.
	if math.Abs(r.GotHz[len(r.GotHz)-1]) <= math.Abs(r.GotHz[0]) {
		t.Error("doppler shift did not grow with speed")
	}
}

func TestCSVWriters(t *testing.T) {
	o := fast()
	var buf bytes.Buffer
	checks := 0
	write := func(cw CSVWriter, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		buf.Reset()
		if err := cw.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) < 2 {
			t.Fatalf("CSV has %d lines", len(lines))
		}
		// Every row has the header's column count.
		cols := strings.Count(lines[0], ",")
		for _, l := range lines[1:] {
			if strings.Count(l, ",") != cols {
				t.Fatalf("ragged CSV: %q vs header %q", l, lines[0])
			}
		}
		checks++
	}
	r3, err := Fig3PhaseOffsets(o)
	write(r3, err)
	r9, err := Fig9Calibration(o)
	write(r9, err)
	r13, err := Fig13DetectionRate(o)
	write(r13, err)
	r14, err := Fig14Localization(o)
	write(r14, err)
	r16, err := Fig16Reflectors(o)
	write(r16, err)
	r19, err := Fig19MultiTarget(o)
	write(r19, err)
	rd, err := ExtensionDoppler(o)
	write(rd, err)
	if checks != 7 {
		t.Fatalf("ran %d CSV checks", checks)
	}
}
